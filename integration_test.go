package repro

import (
	"context"
	"os"
	"testing"

	"repro/adds"
)

// loadListops loads the shared fixture program.
func loadListops(t testing.TB) *adds.Unit {
	t.Helper()
	src, err := os.ReadFile("testdata/listops.mini")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := adds.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	return unit
}

// TestListopsEndToEnd runs the full listops program in the interpreter and
// checks both its arithmetic result and that the heap it leaves behind
// still satisfies the TwoWayLL declaration (the addslint flow).
func TestListopsEndToEnd(t *testing.T) {
	unit := loadListops(t)
	in := unit.Interp()
	v, err := in.Call("main", adds.IntVal(10))
	if err != nil {
		t.Fatal(err)
	}
	// build 1..10, shift by hdr->data=1 -> 0..9, reverse -> 9..0,
	// removeAfter(hdr) drops 9, sum = 0+..+8 = 36.
	if v.Int != 36 {
		t.Errorf("main(10) = %d, want 36", v.Int)
	}
	if vs := unit.CheckHeap(in.Heap.Live()...); len(vs) != 0 {
		t.Fatalf("final heap violates the declaration: %v", vs[0])
	}
}

// TestListopsAnalyses runs the static side over every function of the
// fixture: the analyses terminate, the traversal loops are provably
// advancing, and the mutating functions end with a valid abstraction.
func TestListopsAnalyses(t *testing.T) {
	unit := loadListops(t)
	for _, fn := range []string{"build", "shift", "sum", "removeAfter", "reverse", "main"} {
		an, err := unit.AnalyzeOpt(context.Background(), fn)
		if err != nil {
			t.Fatal(err)
		}
		_ = an.ExitMatrix() // must not panic
	}

	shift := unit.MustAnalyze("shift")
	if shift.LoopMatrix(0).MayAlias("hd", "p") {
		t.Error("shift: hd/p separation lost")
	}
	if got := len(shift.Dependences(0, shift.GPMOracle()).CarriedMemEdges()); got != 0 {
		t.Errorf("shift: %d carried mem deps under GPM", got)
	}

	sum := unit.MustAnalyze("sum")
	im := sum.IterationMatrix(0)
	if im.MayAlias("p'", "p") {
		t.Error("sum: iterates falsely alias")
	}
}

// TestListopsShiftPipelines checks the fixture's shift loop goes through
// the whole transformation pipeline and still computes the right values on
// the VLIW machine.
func TestListopsShiftPipelines(t *testing.T) {
	unit := loadListops(t)
	an := unit.MustAnalyze("shift")
	prog, info, err := an.Pipeline(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if info.II != 1 {
		t.Errorf("II = %d", info.II)
	}

	// Build hdr -> 1..6 concretely, run pipelined shift, check each datum
	// decreased by hdr's value.
	h := adds.NewHeap()
	hdr := h.New("TwoWayLL")
	hdr.Ints["data"] = 5
	prev := hdr
	for i := 1; i <= 6; i++ {
		n := h.New("TwoWayLL")
		n.Ints["data"] = int64(10 * i)
		prev.Ptrs["next"] = n
		n.Ptrs["prev"] = prev
		prev = n
	}
	if _, err := adds.RunVLIW(prog, h, map[string]adds.Word{"hd": adds.RefWord(hdr)}); err != nil {
		t.Fatal(err)
	}
	i := int64(1)
	for n := hdr.Ptrs["next"]; n != nil; n = n.Ptrs["next"] {
		if n.Ints["data"] != 10*i-5 {
			t.Errorf("node %d: data = %d, want %d", i, n.Ints["data"], 10*i-5)
		}
		i++
	}
}

// TestListopsValidationFindsTemporaryBreaks: reverse breaks and repairs the
// abstraction as it runs; the interval report must reflect that it is not
// everywhere-valid but the program's effect (checked dynamically above) is
// a valid structure.
func TestListopsValidationFindsTemporaryBreaks(t *testing.T) {
	unit := loadListops(t)
	an := unit.MustAnalyze("reverse")
	valid := an.GPM.BeforeNode(an.Graph.Exit).Valid()
	// The loop body leaves violations outstanding across iterations
	// (conservative: repairs happen via different variables), so the
	// static verdict is "not valid" — which is exactly why MayAlias stays
	// conservative inside reverse, keeping the soundness tests green.
	_ = valid
	dg := an.Dependences(0, an.GPMOracle())
	if len(dg.CarriedMemEdges()) == 0 {
		t.Error("reverse must be treated conservatively (abstraction broken mid-loop)")
	}
}

// loadTreeops loads the binary search tree fixture.
func loadTreeops(t testing.TB) *adds.Unit {
	t.Helper()
	src, err := os.ReadFile("testdata/treeops.mini")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := adds.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	return unit
}

// TestTreeopsEndToEnd runs the BST program and validates the final heap
// against the PBinTree declaration.
func TestTreeopsEndToEnd(t *testing.T) {
	unit := loadTreeops(t)
	in := unit.Interp()
	v, err := in.Call("main", adds.IntVal(15))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int == 0 {
		t.Error("main returned zero — fixture degenerate")
	}
	if vs := unit.CheckHeap(in.Heap.Live()...); len(vs) != 0 {
		t.Fatalf("final tree violates the declaration: %v", vs[0])
	}
}

// TestTreeopsCoarseGrainDisjoint checks the paper's coarse-grain claim:
// after l = root->left and r = root->right, the two subtrees are provably
// disjoint (empty matrix entries, no alias), which is what licenses
// running scaleLeft and scaleRight in parallel.
func TestTreeopsCoarseGrainDisjoint(t *testing.T) {
	unit := loadTreeops(t)
	probe := adds.MustLoad(`
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
void probe(PBinTree *root) {
    PBinTree *l, *r, *ll, *rr;
    l = root->left;
    r = root->right;
    ll = l->left;
    rr = r->right;
}
`)
	an := probe.MustAnalyze("probe")
	m := an.ExitMatrix()
	for _, pair := range [][2]string{{"l", "r"}, {"ll", "rr"}, {"ll", "r"}, {"l", "rr"}} {
		if m.MayAlias(pair[0], pair[1]) {
			t.Errorf("%s and %s must be disjoint (Def 4.7/4.3)", pair[0], pair[1])
		}
	}
	_ = unit

	// The classic (no-ADDS) analysis cannot prove this.
	classic := probe.MustAnalyze("probe")
	cm := classic.ClassicOracle()
	if !cm.MayAlias(classic.Graph.Exit, "l", "r") {
		t.Error("classic analysis should NOT separate the subtrees")
	}
}

// TestTreeopsParentClimb: climbing parent pointers from a descended node
// is the backward-direction workout; the analysis terminates and the
// interpreter agrees with the declaration.
func TestTreeopsParentClimb(t *testing.T) {
	unit := loadTreeops(t)
	an := unit.MustAnalyze("depthOf")
	if an.Loops() != 1 {
		t.Fatalf("loops = %d", an.Loops())
	}
	im := an.IterationMatrix(0)
	if im.MayAlias("c'", "c") {
		t.Error("climbing parent never revisits a node (prev direction is acyclic)")
	}

	// Dynamically: depth of the min node in a known tree.
	in := unit.Interp()
	root := in.Heap.New("PBinTree")
	root.Ints["data"] = 50
	for _, k := range []int64{30, 20, 10, 70} {
		node := in.Heap.New("PBinTree")
		node.Ints["data"] = k
		cur := root
		for {
			if k < cur.Ints["data"] {
				if cur.Ptrs["left"] == nil {
					cur.Ptrs["left"] = node
					node.Ptrs["parent"] = cur
					break
				}
				cur = cur.Ptrs["left"]
			} else {
				if cur.Ptrs["right"] == nil {
					cur.Ptrs["right"] = node
					node.Ptrs["parent"] = cur
					break
				}
				cur = cur.Ptrs["right"]
			}
		}
	}
	min := root
	for min.Ptrs["left"] != nil {
		min = min.Ptrs["left"]
	}
	v, err := in.Call("depthOf", adds.PtrVal(min))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 3 {
		t.Errorf("depth = %d, want 3", v.Int)
	}
}

// TestTreeopsInsertValidation documents the validator's honest limits: the
// flag-controlled insert loop mixes the store with later iterations on
// abstract (infeasible) paths, so the static validator conservatively
// flags it — while a straight-line insertion of one node is proven valid,
// and the dynamically built trees always check out (TestTreeopsEndToEnd).
// The paper makes the same tradeoff: validation is conservative, with
// run-time checks as the debugging backstop.
func TestTreeopsInsertValidation(t *testing.T) {
	unit := loadTreeops(t)
	an := unit.MustAnalyze("insert")
	if an.GPM.BeforeNode(an.Graph.Exit).Valid() {
		t.Log("note: insert loop now proven valid — validator got more precise")
	}

	// Straight-line paired insertion is proven valid.
	straight := adds.MustLoad(`
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
void attachLeft(PBinTree *cur, int key) {
    PBinTree *node;
    if (cur->left == NULL) {
        node = new PBinTree;
        node->data = key;
        cur->left = node;
        node->parent = cur;
    }
}
`)
	san := straight.MustAnalyze("attachLeft")
	if !san.GPM.BeforeNode(san.Graph.Exit).Valid() {
		t.Errorf("straight-line paired insertion must be proven valid:\n%s",
			san.Validation().Report())
	}
}

// TestMatrixopsFixture exercises the orthogonal-list fixture: for-loop
// syntax, both traversal dimensions, backward rewinding, and the static
// facts the OrthL declaration supports.
func TestMatrixopsFixture(t *testing.T) {
	src, err := os.ReadFile("testdata/matrixops.mini")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := adds.Load(src)
	if err != nil {
		t.Fatal(err)
	}

	// Static: the row-scaling loop is provably advancing; its iterations
	// are independent.
	an := unit.MustAnalyze("scaleRow")
	if an.Loops() != 1 {
		t.Fatalf("loops = %d", an.Loops())
	}
	if an.IterationMatrix(0).MayAlias("e'", "e") {
		t.Error("row traversal must be provably advancing")
	}
	if got := len(an.Dependences(0, an.GPMOracle()).CarriedMemEdges()); got != 0 {
		t.Errorf("scaleRow: %d carried mem deps", got)
	}

	// Rewind uses the backward field; the iteration matrix still proves
	// advance (backward fields are acyclic too).
	rew := unit.MustAnalyze("rewind")
	if rew.IterationMatrix(0).MayAlias("p'", "p") {
		t.Error("rewinding must be provably advancing")
	}

	// Dynamic: a 3x3 matrix, scale row 1 by 10, check sums.
	h := adds.NewHeap()
	var rowHead [3]*adds.Node
	var colHead [3]*adds.Node
	var lastRow, lastCol [3]*adds.Node
	vals := [3][3]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			n := h.New("OrthL")
			n.Ints["data"] = vals[r][c]
			if lastRow[r] == nil {
				rowHead[r] = n
			} else {
				lastRow[r].Ptrs["across"] = n
				n.Ptrs["back"] = lastRow[r]
			}
			lastRow[r] = n
			if lastCol[c] == nil {
				colHead[c] = n
			} else {
				lastCol[c].Ptrs["down"] = n
				n.Ptrs["up"] = lastCol[c]
			}
			lastCol[c] = n
		}
	}
	in := unit.Interp()
	in.Heap = h
	if _, err := in.Call("scaleRow", adds.PtrVal(rowHead[1]), adds.IntVal(10)); err != nil {
		t.Fatal(err)
	}
	v, err := in.Call("colSum", adds.PtrVal(colHead[0]))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 1+40+7 {
		t.Errorf("colSum = %d, want 48", v.Int)
	}
	v, err = in.Call("rowSum", adds.PtrVal(rowHead[1]))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 40+50+60 {
		t.Errorf("rowSum = %d, want 150", v.Int)
	}
	v, err = in.Call("rewind", adds.PtrVal(lastRow[2]))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 2 {
		t.Errorf("rewind = %d, want 2", v.Int)
	}

	var roots []*adds.Node
	for _, n := range rowHead {
		roots = append(roots, n)
	}
	if vs := unit.CheckHeap(roots...); len(vs) != 0 {
		t.Fatalf("matrix violates declaration: %v", vs[0])
	}
}
