// Pipelining walks the full Section 5.2 derivation: hoist the invariant
// load, rename the pointer advance, hoist it speculatively above the exit
// test (legal because ADDS structures are speculatively traversable), then
// software-pipeline the loop for a VLIW machine — and measure the speedup
// the paper predicts ("a theoretical speedup of 5").
package main

import (
	"fmt"

	"repro/adds"
)

const src = `
type TwoWayLL [X] {
    int x;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->x = p->x - hd->x;
        p = p->next;
    }
}
`

func buildList(h *adds.Heap, n int) *adds.Node {
	var head, prev *adds.Node
	for i := 0; i < n; i++ {
		node := h.New("TwoWayLL")
		node.Ints["x"] = int64(i * 7)
		if prev == nil {
			head = node
		} else {
			prev.Ptrs["next"] = node
			node.Ptrs["prev"] = prev
		}
		prev = node
	}
	return head
}

func main() {
	unit := adds.MustLoad(src)
	an := unit.MustAnalyze("shift")

	fmt.Println("== original loop ==")
	fmt.Println(an.IR().String())

	// Why the transformation is legal: the analysis question.
	info := an.AnalyzePipeline(0, an.GPMOracle(), 8)
	fmt.Printf("under adds+gpm:      II=%d, theoretical speedup %.1f, legal=%v\n",
		info.II, info.Theoretic, info.OK)
	cons := an.AnalyzePipeline(0, an.ConservativeOracle(), 8)
	fmt.Printf("under conservative:  RecMII=%d, legal=%v (false carried deps)\n\n",
		cons.RecMII, cons.OK)

	prog, _, err := an.Pipeline(0, 8)
	if err != nil {
		panic(err)
	}
	fmt.Println("== software-pipelined VLIW code (width 8) ==")
	fmt.Println(prog.String())

	// Measure: the same list, the same semantics, far fewer cycles.
	const n = 1000
	h1 := adds.NewHeap()
	seq, err := adds.RunVLIW(adds.Sequentialize(an.IR()), h1,
		map[string]adds.Word{"hd": adds.RefWord(buildList(h1, n))})
	if err != nil {
		panic(err)
	}
	h2 := adds.NewHeap()
	hd2 := buildList(h2, n)
	pip, err := adds.RunVLIW(prog, h2, map[string]adds.Word{"hd": adds.RefWord(hd2)})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sequential issue: %6d cycles\n", seq.Cycles)
	fmt.Printf("pipelined:        %6d cycles\n", pip.Cycles)
	fmt.Printf("measured speedup: %.2fx (paper's theoretical: 5x)\n",
		float64(seq.Cycles)/float64(pip.Cycles))

	// The transformed list is still a valid TwoWayLL.
	if vs := unit.CheckHeap(hd2); len(vs) != 0 {
		panic(vs[0].String())
	}
	fmt.Println("post-run dynamic check: declaration still holds")
}
