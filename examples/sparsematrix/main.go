// Sparsematrix demonstrates the orthogonal list of Section 3.1 — the
// paper's sparse-matrix structure with two dependent dimensions — and the
// LOLS variant with independent dimensions, showing how the declaration
// changes what the analysis can prove about row-wise and column-wise
// traversals.
package main

import (
	"fmt"

	"repro/adds"
)

const src = `
// Dependent dimensions: a row walk and a column walk may meet (they do, at
// every element). The declaration therefore omits "where X || Y".
type OrthL [X] [Y] {
    int data;
    OrthL *across is uniquely forward along X;
    OrthL *back is backward along X;
    OrthL *down is uniquely forward along Y;
    OrthL *up is backward along Y;
};

// Independent dimensions: each node is reachable by exactly one forward
// route, so X || Y.
type LOLS [X] [Y] where X || Y {
    int data;
    LOLS *across is uniquely forward along X;
    LOLS *back is backward along X;
    LOLS *down is uniquely forward along Y;
    LOLS *up is backward along Y;
};

// Walk one row and one column of an orthogonal list.
void walkOrth(OrthL *rowhead, OrthL *colhead) {
    OrthL *r, *c;
    r = rowhead;
    while (r != NULL) {
        r = r->across;
    }
    c = colhead;
    while (c != NULL) {
        c = c->down;
    }
}

// Scale every element of a row (row heads chained by down in this layout).
void scaleRows(LOLS *m, int k) {
    LOLS *row, *e;
    row = m;
    while (row != NULL) {
        e = row;
        while (e != NULL) {
            e->data = e->data * k;
            e = e->across;
        }
        row = row->down;
    }
}
`

func main() {
	unit := adds.MustLoad(src)

	// Static contrast: derefs along dependent vs independent dimensions.
	fmt.Println("== dependent (OrthL) vs independent (LOLS) dimensions ==")
	probe := adds.MustLoad(src + `
void probeOrth(OrthL *m) {
    OrthL *a, *d;
    a = m->across;
    d = m->down;
    a = a->down;
    d = d->across;
}
void probeLols(LOLS *m) {
    LOLS *a, *d;
    a = m->across;
    d = m->down;
}
`)
	orth := probe.MustAnalyze("probeOrth").ExitMatrix()
	lols := probe.MustAnalyze("probeLols").ExitMatrix()
	fmt.Printf("OrthL: across-then-down vs down-then-across may alias: %v (they converge)\n",
		orth.MayAlias("a", "d"))
	fmt.Printf("LOLS:  across target vs down target may alias:        %v (Def 4.9)\n\n",
		lols.MayAlias("a", "d"))

	// The inner row loop of scaleRows is parallelizable: no carried deps.
	an := unit.MustAnalyze("scaleRows")
	inner := an.Dependences(1, an.GPMOracle())
	fmt.Printf("scaleRows inner loop carried memory deps under adds+gpm: %d\n",
		len(inner.CarriedMemEdges()))
	cons := an.Dependences(1, an.ConservativeOracle())
	fmt.Printf("                                  under conservative:    %d\n\n",
		len(cons.CarriedMemEdges()))

	// Run the walker on a real sparse matrix built node by node.
	h := adds.NewHeap()
	// 3x4 matrix with a diagonal-ish pattern.
	dense := [][]int64{
		{1, 0, 0, 2},
		{0, 3, 0, 0},
		{4, 0, 5, 0},
	}
	rows, cols := len(dense), len(dense[0])
	rowHead := make([]*adds.Node, rows)
	colHead := make([]*adds.Node, cols)
	lastRow := make([]*adds.Node, rows)
	lastCol := make([]*adds.Node, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if dense[r][c] == 0 {
				continue
			}
			n := h.New("OrthL")
			n.Ints["data"] = dense[r][c]
			if lastRow[r] == nil {
				rowHead[r] = n
			} else {
				lastRow[r].Ptrs["across"] = n
				n.Ptrs["back"] = lastRow[r]
			}
			lastRow[r] = n
			if lastCol[c] == nil {
				colHead[c] = n
			} else {
				lastCol[c].Ptrs["down"] = n
				n.Ptrs["up"] = lastCol[c]
			}
			lastCol[c] = n
		}
	}
	var roots []*adds.Node
	for _, n := range append(append([]*adds.Node{}, rowHead...), colHead...) {
		if n != nil {
			roots = append(roots, n)
		}
	}
	fmt.Printf("dynamic check of the sparse matrix: %d violations\n",
		len(unit.CheckHeap(roots...)))

	wan := unit.MustAnalyze("walkOrth")
	res, err := adds.RunScalar(wan.IR(), h, map[string]adds.Word{
		"rowhead": adds.RefWord(rowHead[0]),
		"colhead": adds.RefWord(colHead[0]),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("walked row 0 and column 0 in %d cycles\n", res.Cycles)
}
