// Treecode is the workload the paper's introduction motivates: the
// "so-called tree-codes" of hierarchical N-body simulation [App85, BH86].
// A space-partitioning binary tree carries body masses; computing each
// cell's total mass walks the two subtrees — which the ADDS declaration
// proves disjoint (Def 4.7), the coarse-grain parallelism the paper says
// tree-like properties enable.
package main

import (
	"fmt"

	"repro/adds"
)

const src = `
// A binary space partition: leaves are bodies (mass set at build time),
// internal cells accumulate the mass of their subtrees.
type Cell [down] {
    int mass;
    int com;
    Cell *left, *right is uniquely forward along down;
    Cell *parent is backward along down;
};

// summass computes, bottom-up, the total mass of every cell.
int summass(Cell *c) {
    int m;
    m = c->mass;
    if (c->left != NULL) {
        m = m + summass(c->left);
    }
    if (c->right != NULL) {
        m = m + summass(c->right);
    }
    c->mass = m;
    return m;
}

// walkup propagates a delta from a body to the root along parent pointers
// (the update path when one body moves).
void walkup(Cell *body, int delta) {
    Cell *c;
    c = body;
    while (c != NULL) {
        c->mass = c->mass + delta;
        c = c->parent;
    }
}
`

// buildSpace builds a perfect partition of the bodies (masses 1..n).
func buildSpace(h *adds.Heap, depth int, nextMass *int64) *adds.Node {
	c := h.New("Cell")
	if depth == 0 {
		*nextMass++
		c.Ints["mass"] = *nextMass
		return c
	}
	l := buildSpace(h, depth-1, nextMass)
	r := buildSpace(h, depth-1, nextMass)
	c.Ptrs["left"] = l
	c.Ptrs["right"] = r
	l.Ptrs["parent"] = c
	r.Ptrs["parent"] = c
	return c
}

func main() {
	unit := adds.MustLoad(src)

	// The static fact that licenses parallel subtree evaluation.
	probe := adds.MustLoad(src + `
void split(Cell *root) {
    Cell *l, *r;
    l = root->left;
    r = root->right;
}
`)
	m := probe.MustAnalyze("split").ExitMatrix()
	fmt.Println("== coarse-grain parallelism (Def 4.7) ==")
	fmt.Printf("left and right subtrees may alias: %v\n", m.MayAlias("l", "r"))
	fmt.Println("=> summass(c->left) and summass(c->right) touch disjoint cells;")
	fmt.Println("   a parallelizing compiler may run them as parallel code blocks.")

	// The update path: walking parent pointers never revisits a cell.
	an := unit.MustAnalyze("walkup")
	im := an.IterationMatrix(0)
	fmt.Printf("\nwalkup: successive cells may alias: %v (parent is acyclic)\n",
		im.MayAlias("c'", "c"))

	// Run it: 64 bodies, total mass must be 1+2+...+64.
	h := adds.NewHeap()
	var mass int64
	root := buildSpace(h, 6, &mass)
	if vs := unit.CheckHeap(root); len(vs) != 0 {
		panic(vs[0].String())
	}
	in := unit.Interp()
	in.Heap = h
	v, err := in.Call("summass", adds.PtrVal(root))
	if err != nil {
		panic(err)
	}
	want := mass * (mass + 1) / 2
	fmt.Printf("\ntotal mass over %d bodies: %d (want %d)\n", mass, v.Int, want)

	// Move one body: +5 along its root path.
	leaf := root
	for leaf.Ptrs["left"] != nil {
		leaf = leaf.Ptrs["left"]
	}
	if _, err := in.Call("walkup", adds.PtrVal(leaf), adds.IntVal(5)); err != nil {
		panic(err)
	}
	fmt.Printf("after walkup(+5): root mass = %d (want %d)\n",
		root.Ints["mass"], want+5)
	if vs := unit.CheckHeap(root); len(vs) != 0 {
		panic(vs[0].String())
	}
	fmt.Println("declaration still holds after the update")
}
