// Rangetree builds the paper's most intricate example — the
// two-dimensional range tree of Section 3.1 (a binary tree of binary
// trees with linked leaves, three dimensions, partial independence) — then
// runs a range query whose leaf-scan loop the analysis can parallelize.
package main

import (
	"fmt"

	"repro/adds"
)

const src = `
type TwoDRT [down] [sub] [leaves] where sub || down, sub || leaves {
    int data;
    TwoDRT *left, *right is uniquely forward along down;
    TwoDRT *subtree is uniquely forward along sub;
    TwoDRT *next is uniquely forward along leaves;
    TwoDRT *prev is backward along leaves;
};

// Scan the leaf list from a starting leaf, counting values <= hi.
int scan(TwoDRT *leaf, int hi) {
    TwoDRT *p;
    int count;
    count = 0;
    p = leaf;
    while (p != NULL && p->data <= hi) {
        count = count + 1;
        p = p->next;
    }
    return count;
}
`

// buildLeafChain builds a sorted leaf chain under a small tree spine.
func buildTree(h *adds.Heap, xs []int64) (*adds.Node, *adds.Node) {
	var build func(lo, hi int) (*adds.Node, []*adds.Node)
	build = func(lo, hi int) (*adds.Node, []*adds.Node) {
		n := h.New("TwoDRT")
		if hi-lo == 1 {
			n.Ints["data"] = xs[lo]
			return n, []*adds.Node{n}
		}
		mid := (lo + hi) / 2
		l, ll := build(lo, mid)
		r, rl := build(mid, hi)
		n.Ints["data"] = xs[mid-1]
		n.Ptrs["left"] = l
		n.Ptrs["right"] = r
		return n, append(ll, rl...)
	}
	root, leaves := build(0, len(xs))
	for i := 1; i < len(leaves); i++ {
		leaves[i-1].Ptrs["next"] = leaves[i]
		leaves[i].Ptrs["prev"] = leaves[i-1]
	}
	return root, leaves[0]
}

func main() {
	unit := adds.MustLoad(src)

	// Shape facts the declaration encodes.
	env := unit.Shapes()
	rt := env.Type("TwoDRT")
	fmt.Println("== declaration facts ==")
	fmt.Printf("dims: %v\n", rt.Dims)
	fmt.Printf("sub independent of down:   %v\n", rt.Independent("sub", "down"))
	fmt.Printf("sub independent of leaves: %v\n", rt.Independent("sub", "leaves"))
	fmt.Printf("down independent of leaves: %v (each leaf reachable along both)\n\n",
		rt.Independent("down", "leaves"))

	// The leaf-scan loop: provably advancing under the declaration.
	an := unit.MustAnalyze("scan")
	im := an.IterationMatrix(0)
	fmt.Printf("scan loop: successive p values may alias? %v (next is uniquely forward)\n",
		im.MayAlias("p'", "p"))
	dg := an.Dependences(0, an.GPMOracle())
	fmt.Printf("carried memory deps under adds+gpm: %d\n\n", len(dg.CarriedMemEdges()))

	// Build a real tree, check it dynamically, run the query.
	h := adds.NewHeap()
	xs := []int64{2, 3, 5, 7, 11, 13, 17, 19}
	root, firstLeaf := buildTree(h, xs)
	if vs := unit.CheckHeap(root); len(vs) != 0 {
		panic(vs[0].String())
	}
	fmt.Println("dynamic check: the range tree satisfies its declaration")

	in := unit.Interp()
	in.Heap = h // query over the nodes we built
	v, err := in.Call("scan", adds.PtrVal(firstLeaf), adds.IntVal(12))
	if err != nil {
		panic(err)
	}
	fmt.Printf("leaves with value <= 12: %d (want 5: 2,3,5,7,11)\n", v.Int)
}
