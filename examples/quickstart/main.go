// Quickstart: declare a two-way linked list with ADDS annotations, run
// general path matrix analysis on the paper's shift-origin loop, and watch
// the difference the declaration makes — exactly Section 5.1.2 of the
// paper.
package main

import (
	"fmt"

	"repro/adds"
)

const src = `
// The paper's Section 3.1 declaration: one dimension X, next walks it
// uniquely forward, prev walks it backward.
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};

// Shift the origin: subtract the head's datum from every later node.
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
`

func main() {
	unit := adds.MustLoad(src)
	an := unit.MustAnalyze("shift")

	fmt.Println("== pseudo-assembly (the paper's S1..S7) ==")
	fmt.Println(an.IR().String())

	fmt.Println("== path matrix at the loop's fixed point ==")
	m := an.LoopMatrix(0)
	fmt.Println(m.String())
	fmt.Printf("PM(hd, p) = %s   (paper: next+)\n", m.Entry("hd", "p"))
	fmt.Printf("may hd and p alias? %v   (paper: no)\n\n", m.MayAlias("hd", "p"))

	fmt.Println("== the same question under three analyses ==")
	for _, o := range []adds.Oracle{
		an.ConservativeOracle(), an.ClassicOracle(), an.GPMOracle(),
	} {
		dg := an.Dependences(0, o)
		fmt.Printf("%-14s carried memory dependences: %d\n",
			o.Name(), len(dg.CarriedMemEdges()))
	}
	fmt.Println("\nonly adds+gpm proves the iterations independent, which is")
	fmt.Println("what unlocks the transformations (see examples/pipelining).")

	// And the run-time side: build a real list, check the declaration.
	h := adds.NewHeap()
	var head, prev *adds.Node
	for i := 0; i < 5; i++ {
		n := h.New("TwoWayLL")
		n.Ints["data"] = int64(10 * i)
		if prev == nil {
			head = n
		} else {
			prev.Ptrs["next"] = n
			n.Ptrs["prev"] = prev
		}
		prev = n
	}
	fmt.Printf("\ndynamic check of a real 5-node list: %d violations\n",
		len(unit.CheckHeap(head)))

	res, err := adds.RunScalar(an.IR(), h, map[string]adds.Word{"hd": adds.RefWord(head)})
	if err != nil {
		panic(err)
	}
	fmt.Printf("executed shift on the scalar model: %d instructions, %d cycles\n",
		res.Instrs, res.Cycles)
}
