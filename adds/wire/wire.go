// Package wire defines the JSON request and response shapes of the adds
// daemon's /v1 API, promoted out of the server so clients can marshal and
// unmarshal them without importing internal packages. The daemon aliases
// these types (internal/service), so the wire format cannot drift between
// the server and a client built against this package; the encoded bytes are
// pinned by the goldens under adds/testdata/golden.
package wire

import (
	"encoding/json"

	"repro/adds"
)

// AnalyzeRequest asks for path matrix analysis of one function (Fn set) or
// every function of the source. The zero values select the defaults the
// CLIs use: the GPM oracle, one worker per CPU.
type AnalyzeRequest struct {
	Source  string `json:"source"`
	Fn      string `json:"fn,omitempty"`
	Oracle  string `json:"oracle,omitempty"` // gpm (default), classic, conservative, klimit
	K       int    `json:"k,omitempty"`      // k for the klimit oracle
	Workers int    `json:"workers,omitempty"`
}

// LoopResult is the per-loop slice of an analysis: the fixed-point matrix,
// the primed iteration matrix, and the dependence graph under the selected
// oracle.
type LoopResult struct {
	Index           int            `json:"index"`
	Matrix          *adds.Matrix   `json:"matrix"`
	Iteration       *adds.Matrix   `json:"iteration"`
	Dependences     *adds.DepGraph `json:"dependences"`
	CarriedMemEdges int            `json:"carriedMemEdges"`
}

// OracleComparison reports, per loop, how many carried memory dependences
// each oracle leaves — the paper's headline comparison.
type OracleComparison struct {
	Oracle          string `json:"oracle"`
	Loop            int    `json:"loop"`
	CarriedMemEdges int    `json:"carriedMemEdges"`
}

// ValidationResult summarizes the Section 5.1.1 abstraction validation.
type ValidationResult struct {
	ValidEverywhere bool     `json:"validEverywhere"`
	Intervals       []string `json:"intervals"`
}

// FunctionResult is one function's analysis artifacts.
type FunctionResult struct {
	Name       string             `json:"name"`
	Loops      int                `json:"loops"`
	Entry      *adds.Matrix       `json:"entryMatrix"`
	Exit       *adds.Matrix       `json:"exitMatrix"`
	LoopData   []LoopResult       `json:"loopResults"`
	Validation ValidationResult   `json:"validation"`
	Oracles    []OracleComparison `json:"oracleComparison"`
}

// AnalyzeResponse is the full analysis answer, stamped with the engine
// version that produced it.
type AnalyzeResponse struct {
	EngineVersion string           `json:"engineVersion"`
	Functions     []FunctionResult `json:"functions"`
}

// DepgraphRequest asks for the dependence graphs of one function's loops
// under an oracle — the standalone form of the per-loop graphs embedded in
// an AnalyzeResponse, for callers that want dependences without matrices.
type DepgraphRequest struct {
	Source string `json:"source"`
	Fn     string `json:"fn"`
	Loop   *int   `json:"loop,omitempty"` // nil = every loop
	Oracle string `json:"oracle,omitempty"`
	K      int    `json:"k,omitempty"`
}

// LoopDeps is one loop's dependence graph in a DepgraphResponse.
type LoopDeps struct {
	Index           int            `json:"index"`
	Dependences     *adds.DepGraph `json:"dependences"`
	CarriedMemEdges int            `json:"carriedMemEdges"`
}

// DepgraphResponse carries the requested loops' dependence graphs.
type DepgraphResponse struct {
	EngineVersion string     `json:"engineVersion"`
	Fn            string     `json:"fn"`
	Oracle        string     `json:"oracle"`
	Loops         []LoopDeps `json:"loops"`
}

// PipelineRequest asks for initiation-interval bounds and the pipelined
// VLIW schedule of one loop.
type PipelineRequest struct {
	Source string `json:"source"`
	Fn     string `json:"fn"`
	Loop   int    `json:"loop"`
	Width  int    `json:"width,omitempty"` // default 8
	Oracle string `json:"oracle,omitempty"`
	K      int    `json:"k,omitempty"`
}

// PipelineResponse carries the II bounds and, when the loop pipelines, the
// bundled VLIW code. A legal-but-unpipelinable loop is not an HTTP error:
// PipelineError says why and VLIW stays empty.
type PipelineResponse struct {
	EngineVersion string            `json:"engineVersion"`
	Fn            string            `json:"fn"`
	Loop          int               `json:"loop"`
	Width         int               `json:"width"`
	Info          adds.PipelineInfo `json:"info"`
	VLIW          string            `json:"vliw,omitempty"`
	PipelineError string            `json:"pipelineError,omitempty"`
}

// ExperimentDef is one registry row of GET /v1/experiments.
type ExperimentDef struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// OracleInfo is one registry row of GET /v1/oracles: an alias oracle the
// daemon can run, in the order the tools present them. AcceptsK marks the
// oracles whose precision is tuned by the request's "k" field.
type OracleInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	AcceptsK    bool   `json:"acceptsK"`
}

// ErrorEnvelope is the JSON error body every endpoint shares: a message
// plus optional locators (the offending JSON field for 400s, the source
// position for 422s). /v1/batch embeds it per item.
type ErrorEnvelope struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
}

// BatchRequest asks POST /v1/batch to analyze many programs in one request.
// Each item is a full AnalyzeRequest; results stream back as NDJSON, one
// BatchItemResult line per item, in item order, flushed as each completes.
type BatchRequest struct {
	Items []AnalyzeRequest `json:"items"`
}

// BatchItemResult is one NDJSON line of a /v1/batch response. Status is the
// HTTP status the item would have received as a standalone request; exactly
// one of Response and Error is set. The line carries no cache/shard
// telemetry on purpose: for a fixed item list the bytes are deterministic
// regardless of which shard answered or how warm its cache was.
type BatchItemResult struct {
	Index    int             `json:"index"`
	Status   int             `json:"status"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    *ErrorEnvelope  `json:"error,omitempty"`
}

// ReanalyzeRequest asks POST /v1/reanalyze to re-run whole-program analysis
// and report how much interprocedural summary work the content-addressed
// cache absorbed. Submitting a source, editing one function, and submitting
// again yields computed == 1 (the edited body re-keys) with every untouched
// function's summary reused.
type ReanalyzeRequest struct {
	Source  string `json:"source"`
	Workers int    `json:"workers,omitempty"`
}

// SummaryStats reports one run's summary-cache behavior: summaries computed
// (cache misses: new or changed function bodies) and reused (hits).
type SummaryStats struct {
	Computed int `json:"computed"`
	Reused   int `json:"reused"`
}

// ReanalyzeResponse names the functions analyzed and the summary-cache
// counters of this run. Unlike AnalyzeResponse it is never served from the
// daemon's response cache: the counters describe the run that produced them.
type ReanalyzeResponse struct {
	EngineVersion string       `json:"engineVersion"`
	Functions     []string     `json:"functions"`
	Summaries     SummaryStats `json:"summaries"`
}
