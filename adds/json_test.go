package adds

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden JSON files")

// checkGolden marshals v with indentation and compares it byte-for-byte to
// testdata/golden/<name>.json. Run `go test ./adds -run Golden -update` to
// regenerate after an intentional encoding change; the diff then documents
// exactly what the wire format change was.
func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", name+".json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v (run with -update to create)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: encoding drifted from golden file.\ngot:\n%s\nwant:\n%s\n(run with -update if intentional)", name, got, want)
	}

	// Goldens must also round-trip as generic JSON: the encodings are
	// consumed by clients that know nothing about our Go types.
	var generic any
	if err := json.Unmarshal(got, &generic); err != nil {
		t.Errorf("%s: golden output is not valid JSON: %v", name, err)
	}
}

func TestGoldenJSONEncodings(t *testing.T) {
	u := MustLoad(shiftSrc)
	an := u.MustAnalyze("shift")

	checkGolden(t, "shift_loop_matrix", an.LoopMatrix(0))
	checkGolden(t, "shift_iteration_matrix", an.IterationMatrix(0))
	checkGolden(t, "shift_depgraph_gpm", an.Dependences(0, an.GPMOracle()))
	checkGolden(t, "shift_depgraph_conservative", an.Dependences(0, an.ConservativeOracle()))

	_, info, err := an.Pipeline(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "shift_pipeline_info", info)
}

func TestGoldenExperimentReport(t *testing.T) {
	rep := Experiment("E6")
	if rep == nil {
		t.Fatal("experiment E6 missing from registry")
	}
	checkGolden(t, "experiment_e6", rep)
}

// TestGoldenDeterminism guards the sorted-cell invariant directly: two
// marshals of the same analysis must be identical even though the matrix is
// backed by maps.
func TestGoldenDeterminism(t *testing.T) {
	u := MustLoad(shiftSrc)
	for i := 0; i < 3; i++ {
		an := u.MustAnalyze("shift")
		a, err := json.Marshal(an.LoopMatrix(0))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(an.LoopMatrix(0))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("marshal not deterministic:\n%s\n%s", a, b)
		}
	}
}
