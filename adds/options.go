package adds

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core/pathmatrix"
	"repro/internal/ir"
	"repro/internal/norm"
	"repro/internal/obs"
)

// OracleKind selects an alias oracle by name instead of by constructing one
// from an Analysis, so callers can pick an oracle before analysis runs (and
// wire requests straight through to WithOracle).
type OracleKind int

// The oracle registry, in the paper's order of precision.
const (
	// GPM is the ADDS-informed general path matrix oracle (the paper's
	// analysis, and the default).
	GPM OracleKind = iota
	// Classic is the annotation-free path matrix oracle.
	Classic
	// Conservative is the worst-case baseline.
	Conservative
	// KLimited is the k-limited storage-graph baseline (see WithK).
	KLimited
)

// String names the oracle the way the CLIs spell it.
func (k OracleKind) String() string {
	switch k {
	case GPM:
		return "gpm"
	case Classic:
		return "classic"
	case Conservative:
		return "conservative"
	case KLimited:
		return "klimit"
	}
	return fmt.Sprintf("OracleKind(%d)", int(k))
}

// ParseOracle maps a CLI/API oracle name to its kind.
func ParseOracle(name string) (OracleKind, error) {
	switch strings.ToLower(name) {
	case "", "gpm":
		return GPM, nil
	case "classic":
		return Classic, nil
	case "conservative":
		return Conservative, nil
	case "klimit", "klimited":
		return KLimited, nil
	}
	return 0, fmt.Errorf("adds: unknown oracle %q (known: gpm, classic, conservative, klimit)", name)
}

// config collects the effect of the functional options.
type config struct {
	workers  int
	oracle   OracleKind
	k        int
	countCap int // 0 = package default
	maxSteps int // 0 = package default
	live     bool
	sum      bool // effective only when sumSet
	sumSet   bool
	tracer   *Tracer
}

func defaultConfig() config { return config{oracle: GPM, k: 2} }

// Option configures AnalyzeOpt and AnalyzeAllOpt.
type Option func(*config)

// WithWorkers bounds the analysis worker pool for AnalyzeAllOpt
// (n <= 0 means one worker per CPU). It has no effect on single-function
// analysis.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithOracle selects the default oracle the Analysis hands out from
// Oracle(); dependence and pipelining helpers that take an explicit Oracle
// are unaffected.
func WithOracle(o OracleKind) Option { return func(c *config) { c.oracle = o } }

// WithK sets k for the KLimited oracle (default 2).
func WithK(k int) Option { return func(c *config) { c.k = k } }

// WithCountCap overrides the engine's per-field traversal count cap
// (pathmatrix.CountCap) for this analysis. Overridden analyses serialize
// against every other analysis in the process, so reserve this for ablation
// runs, not the serving path.
func WithCountCap(k int) Option { return func(c *config) { c.countCap = k } }

// WithMaxSteps overrides the engine's path-length bound
// (pathmatrix.MaxSteps) for this analysis, with the same serialization
// caveat as WithCountCap.
func WithMaxSteps(n int) Option { return func(c *config) { c.maxSteps = n } }

// WithLiveness enables the engine's interleaved liveness pass
// (pathmatrix.Liveness) for this analysis: relations between dead pointer
// variables are dropped mid-fixpoint, bounding matrix growth on hostile
// programs at the cost of conservative answers for dead variables (the
// oracles fall back automatically). Same serialization caveat as
// WithCountCap: the flag is an engine global, so enabling it serializes
// against every other analysis in the process.
func WithLiveness() Option { return func(c *config) { c.live = true } }

// WithSummaries enables or disables compositional interprocedural analysis
// (pathmatrix.Summarize) for this analysis: calls to non-recursive in-program
// functions apply a cached per-function summary instead of the opaque havoc.
// On by default; WithSummaries(false) is the ablation escape hatch. Same
// serialization caveat as WithCountCap when the value differs from the
// process default: the flag is an engine global.
func WithSummaries(on bool) Option {
	return func(c *config) { c.sum, c.sumSet = on, true }
}

// WithTracer attaches a tracer to the analysis so every phase (parse and
// typecheck happen in LoadCtx; normalization, the per-statement fixpoint,
// IR building, and the transformation helpers here) lands as a span on one
// trace. It composes with a context that already carries a tracer (the
// daemon's request middleware); the option wins when both are set. Without
// either, instrumented code runs the nil-tracer fast path — one context
// lookup and one nil check per phase.
func WithTracer(t *Tracer) Option { return func(c *config) { c.tracer = t } }

// capMu guards the engine's ablation knobs (pathmatrix.CountCap/MaxSteps):
// analyses under default caps share a read lock; an analysis overriding
// them takes the write lock, so the globals never change mid-analysis.
var capMu sync.RWMutex

func withCaps(cfg config, f func() error) error {
	if cfg.countCap == 0 && cfg.maxSteps == 0 && !cfg.live &&
		(!cfg.sumSet || cfg.sum == pathmatrix.Summarize) {
		capMu.RLock()
		defer capMu.RUnlock()
		return f()
	}
	capMu.Lock()
	defer capMu.Unlock()
	oldCap, oldSteps := pathmatrix.CountCap, pathmatrix.MaxSteps
	oldLive := pathmatrix.Liveness
	oldSum := pathmatrix.Summarize
	defer func() {
		pathmatrix.CountCap, pathmatrix.MaxSteps = oldCap, oldSteps
		pathmatrix.Liveness = oldLive
		pathmatrix.Summarize = oldSum
	}()
	if cfg.countCap > 0 {
		pathmatrix.CountCap = cfg.countCap
	}
	if cfg.maxSteps > 0 {
		pathmatrix.MaxSteps = cfg.maxSteps
	}
	if cfg.live {
		pathmatrix.Liveness = true
	}
	if cfg.sumSet {
		pathmatrix.Summarize = cfg.sum
	}
	return f()
}

// AnalyzeOpt runs general path matrix analysis over one function. It is the
// context-first entry point the older Analyze wraps:
//
//	an, err := u.AnalyzeOpt(ctx, "shift",
//	    adds.WithOracle(adds.GPM), adds.WithCountCap(4))
//
// Cancelling ctx abandons the fixed-point computation and returns ctx's
// error. An unknown function name reports ErrUnknownFunction.
func (u *Unit) AnalyzeOpt(ctx context.Context, fn string, opts ...Option) (*Analysis, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	fi := u.Info.Func(fn)
	if fi == nil {
		return nil, fmt.Errorf("adds: %w: %q not declared", ErrUnknownFunction, fn)
	}
	if cfg.tracer != nil {
		ctx = obs.With(ctx, cfg.tracer)
	}
	var an *Analysis
	err := withCaps(cfg, func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, span := obs.Start(ctx, "normalize")
		span.SetAttr("fn", fn)
		g := norm.Build(fi, u.Info.Env)
		span.End()
		// Single-function analysis shares the program-wide summary table;
		// the content-addressed cache makes repeated computation cheap.
		var tab *pathmatrix.SummaryTable
		if pathmatrix.Summarize {
			t, err := pathmatrix.ComputeSummariesCtx(ctx, u.Info, u.Info.Env)
			if err != nil {
				return err
			}
			tab = t
		}
		r, err := pathmatrix.AnalyzeCtxWith(ctx, g, u.Info.Env, tab)
		if err != nil {
			return err
		}
		_, span = obs.Start(ctx, "ir")
		prog := ir.Build(fi, u.Info.Env)
		span.End()
		an = &Analysis{
			Unit: u, Fn: fi, Graph: g, GPM: r,
			prog: prog, cfg: cfg,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return an, nil
}

// AnalyzeAllOpt analyzes every function of the unit with a bounded worker
// pool (see WithWorkers). The result map is independent of worker count and
// scheduling; cancelling ctx abandons the remaining functions and returns
// ctx's error.
func (u *Unit) AnalyzeAllOpt(ctx context.Context, opts ...Option) (map[string]*Analysis, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tracer != nil {
		ctx = obs.With(ctx, cfg.tracer)
	}
	var out map[string]*Analysis
	err := withCaps(cfg, func() error {
		frs, err := pathmatrix.AnalyzeProgramCtx(ctx, u.Info, u.Info.Env, cfg.workers)
		if err != nil {
			return err
		}
		out = make(map[string]*Analysis, len(frs))
		for name, fr := range frs {
			_, span := obs.Start(ctx, "ir")
			span.SetAttr("fn", name)
			prog := ir.Build(fr.Info, u.Info.Env)
			span.End()
			out[name] = &Analysis{
				Unit: u, Fn: fr.Info, Graph: fr.Graph, GPM: fr.Result,
				prog: prog, cfg: cfg,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Oracle returns the oracle selected with WithOracle (GPM by default),
// constructed for this analysis.
func (a *Analysis) Oracle() Oracle {
	switch a.cfg.oracle {
	case Classic:
		return a.ClassicOracle()
	case Conservative:
		return a.ConservativeOracle()
	case KLimited:
		k := a.cfg.k
		if k <= 0 {
			k = 2
		}
		return a.KLimitedOracle(k)
	}
	return a.GPMOracle()
}

// CheckLoop reports ErrNoSuchLoop when i is not a loop index of the
// function. The positional accessors (LoopMatrix, Dependences, ...) assume
// a valid index; boundary-facing callers validate with CheckLoop first.
func (a *Analysis) CheckLoop(i int) error {
	if i < 0 || i >= a.Loops() {
		return fmt.Errorf("adds: %w: loop %d of function %s (has %d)",
			ErrNoSuchLoop, i, a.Fn.Decl.Name, a.Loops())
	}
	return nil
}

// checkWidth reports ErrBadWidth for a non-positive machine width.
func checkWidth(width int) error {
	if width < 1 {
		return fmt.Errorf("adds: %w: %d", ErrBadWidth, width)
	}
	return nil
}
