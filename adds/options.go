package adds

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/alias"
	"repro/internal/core/pathmatrix"
	"repro/internal/ir"
	"repro/internal/norm"
	"repro/internal/obs"
)

// ParseOracle validates a CLI/API oracle spelling against the registry and
// returns its canonical name ("" and aliases like "klimited" canonicalize;
// the empty name selects the default, gpm). Unknown names report an error
// listing every registered oracle.
func ParseOracle(name string) (string, error) {
	f, err := alias.Lookup(name)
	if err != nil {
		return "", fmt.Errorf("adds: %w", err)
	}
	return f.Name, nil
}

// OracleNames returns the canonical names of every registered oracle, in
// listing order — CLI usage strings and endpoint documentation derive from
// this so spellings can never drift from what ParseOracle accepts.
func OracleNames() []string { return alias.Names() }

// OracleInfo describes one registered oracle for listings (GET /v1/oracles).
type OracleInfo struct {
	// Name is the canonical spelling ParseOracle returns.
	Name string
	// Description is the one-line human summary.
	Description string
	// NeedsK reports whether the oracle consumes the -k flag / request K.
	NeedsK bool
}

// Oracles enumerates the registered oracles in listing order.
func Oracles() []OracleInfo {
	fs := alias.Factories()
	out := make([]OracleInfo, len(fs))
	for i, f := range fs {
		out[i] = OracleInfo{Name: f.Name, Description: f.Description, NeedsK: f.NeedsK}
	}
	return out
}

// config collects the effect of the functional options.
type config struct {
	workers  int
	oracle   string // canonical or raw oracle name; "" = default (gpm)
	k        int
	countCap int // 0 = package default
	maxSteps int // 0 = package default
	live     bool
	sum      bool // effective only when sumSet
	sumSet   bool
	tracer   *Tracer
}

func defaultConfig() config { return config{oracle: "gpm", k: 2} }

// Option configures AnalyzeOpt and AnalyzeAllOpt.
type Option func(*config)

// WithWorkers bounds the analysis worker pool for AnalyzeAllOpt
// (n <= 0 means one worker per CPU). It has no effect on single-function
// analysis.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithOracle selects, by registry name ("gpm", "classic", "conservative",
// "klimit", "smg", ...; see OracleNames), the default oracle the Analysis
// hands out from Oracle(); dependence and pipelining helpers that take an
// explicit Oracle are unaffected. Unknown names fall back to gpm at Oracle()
// time — boundary-facing callers validate with ParseOracle first.
func WithOracle(name string) Option { return func(c *config) { c.oracle = name } }

// WithK sets k for the k-limited oracle (default 2).
func WithK(k int) Option { return func(c *config) { c.k = k } }

// WithCountCap overrides the engine's per-field traversal count cap
// (pathmatrix.CountCap) for this analysis. Overridden analyses serialize
// against every other analysis in the process, so reserve this for ablation
// runs, not the serving path.
func WithCountCap(k int) Option { return func(c *config) { c.countCap = k } }

// WithMaxSteps overrides the engine's path-length bound
// (pathmatrix.MaxSteps) for this analysis, with the same serialization
// caveat as WithCountCap.
func WithMaxSteps(n int) Option { return func(c *config) { c.maxSteps = n } }

// WithLiveness enables the engine's interleaved liveness pass
// (pathmatrix.Liveness) for this analysis: relations between dead pointer
// variables are dropped mid-fixpoint, bounding matrix growth on hostile
// programs at the cost of conservative answers for dead variables (the
// oracles fall back automatically). Same serialization caveat as
// WithCountCap: the flag is an engine global, so enabling it serializes
// against every other analysis in the process.
func WithLiveness() Option { return func(c *config) { c.live = true } }

// WithSummaries enables or disables compositional interprocedural analysis
// (pathmatrix.Summarize) for this analysis: calls to non-recursive in-program
// functions apply a cached per-function summary instead of the opaque havoc.
// On by default; WithSummaries(false) is the ablation escape hatch. Same
// serialization caveat as WithCountCap when the value differs from the
// process default: the flag is an engine global.
func WithSummaries(on bool) Option {
	return func(c *config) { c.sum, c.sumSet = on, true }
}

// WithTracer attaches a tracer to the analysis so every phase (parse and
// typecheck happen in LoadCtx; normalization, the per-statement fixpoint,
// IR building, and the transformation helpers here) lands as a span on one
// trace. It composes with a context that already carries a tracer (the
// daemon's request middleware); the option wins when both are set. Without
// either, instrumented code runs the nil-tracer fast path — one context
// lookup and one nil check per phase.
func WithTracer(t *Tracer) Option { return func(c *config) { c.tracer = t } }

// capMu guards the engine's ablation knobs (pathmatrix.CountCap/MaxSteps):
// analyses under default caps share a read lock; an analysis overriding
// them takes the write lock, so the globals never change mid-analysis.
var capMu sync.RWMutex

func withCaps(cfg config, f func() error) error {
	if cfg.countCap == 0 && cfg.maxSteps == 0 && !cfg.live &&
		(!cfg.sumSet || cfg.sum == pathmatrix.Summarize) {
		capMu.RLock()
		defer capMu.RUnlock()
		return f()
	}
	capMu.Lock()
	defer capMu.Unlock()
	oldCap, oldSteps := pathmatrix.CountCap, pathmatrix.MaxSteps
	oldLive := pathmatrix.Liveness
	oldSum := pathmatrix.Summarize
	defer func() {
		pathmatrix.CountCap, pathmatrix.MaxSteps = oldCap, oldSteps
		pathmatrix.Liveness = oldLive
		pathmatrix.Summarize = oldSum
	}()
	if cfg.countCap > 0 {
		pathmatrix.CountCap = cfg.countCap
	}
	if cfg.maxSteps > 0 {
		pathmatrix.MaxSteps = cfg.maxSteps
	}
	if cfg.live {
		pathmatrix.Liveness = true
	}
	if cfg.sumSet {
		pathmatrix.Summarize = cfg.sum
	}
	return f()
}

// AnalyzeOpt runs general path matrix analysis over one function. It is the
// context-first entry point the older Analyze wraps:
//
//	an, err := u.AnalyzeOpt(ctx, "shift",
//	    adds.WithOracle("gpm"), adds.WithCountCap(4))
//
// Cancelling ctx abandons the fixed-point computation and returns ctx's
// error. An unknown function name reports ErrUnknownFunction.
func (u *Unit) AnalyzeOpt(ctx context.Context, fn string, opts ...Option) (*Analysis, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	fi := u.Info.Func(fn)
	if fi == nil {
		return nil, fmt.Errorf("adds: %w: %q not declared", ErrUnknownFunction, fn)
	}
	if cfg.tracer != nil {
		ctx = obs.With(ctx, cfg.tracer)
	}
	var an *Analysis
	err := withCaps(cfg, func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, span := obs.Start(ctx, "normalize")
		span.SetAttr("fn", fn)
		g := norm.Build(fi, u.Info.Env)
		span.End()
		// Single-function analysis shares the program-wide summary table;
		// the content-addressed cache makes repeated computation cheap.
		var tab *pathmatrix.SummaryTable
		if pathmatrix.Summarize {
			t, err := pathmatrix.ComputeSummariesCtx(ctx, u.Info, u.Info.Env)
			if err != nil {
				return err
			}
			tab = t
		}
		r, err := pathmatrix.AnalyzeCtxWith(ctx, g, u.Info.Env, tab)
		if err != nil {
			return err
		}
		_, span = obs.Start(ctx, "ir")
		prog := ir.Build(fi, u.Info.Env)
		span.End()
		an = &Analysis{
			Unit: u, Fn: fi, Graph: g, GPM: r,
			prog: prog, cfg: cfg,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return an, nil
}

// AnalyzeAllOpt analyzes every function of the unit with a bounded worker
// pool (see WithWorkers). The result map is independent of worker count and
// scheduling; cancelling ctx abandons the remaining functions and returns
// ctx's error.
func (u *Unit) AnalyzeAllOpt(ctx context.Context, opts ...Option) (map[string]*Analysis, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tracer != nil {
		ctx = obs.With(ctx, cfg.tracer)
	}
	var out map[string]*Analysis
	err := withCaps(cfg, func() error {
		frs, err := pathmatrix.AnalyzeProgramCtx(ctx, u.Info, u.Info.Env, cfg.workers)
		if err != nil {
			return err
		}
		out = make(map[string]*Analysis, len(frs))
		for name, fr := range frs {
			_, span := obs.Start(ctx, "ir")
			span.SetAttr("fn", name)
			prog := ir.Build(fr.Info, u.Info.Env)
			span.End()
			out[name] = &Analysis{
				Unit: u, Fn: fr.Info, Graph: fr.Graph, GPM: fr.Result,
				prog: prog, cfg: cfg,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Oracle returns the oracle selected with WithOracle (gpm by default),
// constructed for this analysis. Unregistered names fall back to gpm; use
// OracleNamed to get the typed error instead.
func (a *Analysis) Oracle() Oracle {
	o, err := a.OracleNamed(context.Background(), a.cfg.oracle, a.cfg.k)
	if err != nil {
		return a.GPMOracle()
	}
	return o
}

// OracleNamed builds the named registered oracle for this analysis (see
// OracleNames; "" selects gpm, k <= 0 the oracle's default k). The context
// carries the caller's tracer, so oracles that record obs spans land on the
// request trace. Unknown names report the registry's typed error.
func (a *Analysis) OracleNamed(ctx context.Context, name string, k int) (Oracle, error) {
	f, err := alias.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("adds: %w", err)
	}
	return f.Build(ctx, a.Graph, alias.BuildOpts{
		Env:       a.Unit.Info.Env,
		Info:      a.Unit.Info,
		Summaries: a.GPM.Summaries,
		K:         k,
	}), nil
}

// CheckLoop reports ErrNoSuchLoop when i is not a loop index of the
// function. The positional accessors (LoopMatrix, Dependences, ...) assume
// a valid index; boundary-facing callers validate with CheckLoop first.
func (a *Analysis) CheckLoop(i int) error {
	if i < 0 || i >= a.Loops() {
		return fmt.Errorf("adds: %w: loop %d of function %s (has %d)",
			ErrNoSuchLoop, i, a.Fn.Decl.Name, a.Loops())
	}
	return nil
}

// checkWidth reports ErrBadWidth for a non-positive machine width.
func checkWidth(width int) error {
	if width < 1 {
		return fmt.Errorf("adds: %w: %d", ErrBadWidth, width)
	}
	return nil
}
