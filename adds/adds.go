// Package adds is the public API of the ADDS reproduction: Abstractions for
// Recursive Pointer Data Structures (Hendren, Hummel, Nicolau, PLDI 1992).
//
// The package bundles the whole pipeline behind a small surface. The
// context-first entry points are the canonical ones:
//
//	unit, err := adds.Load(src)           // parse + type-check mini source
//	an, err := unit.AnalyzeOpt(ctx, "shift",
//	    adds.WithOracle("gpm"))           // general path matrix analysis
//	m := an.LoopMatrix(0)                 // PM at the loop's fixed point
//	dg := an.Dependences(0, an.Oracle())
//	pl, _ := an.Pipeline(0, 8)            // software-pipelined VLIW code
//
// Recoverable failures are typed (ErrUnknownFunction, ErrNoSuchLoop,
// ErrBadWidth, *SourceError) and match with errors.Is/As; MustLoad and
// MustAnalyze are test helpers that panic instead.
//
// Mini is a small C-like language whose type declarations carry the paper's
// ADDS annotations ("is uniquely forward along X", "where X || Y", ...).
// See the examples directory for complete programs.
package adds

import (
	"context"

	"repro/internal/alias"
	"repro/internal/alias/klimit"
	"repro/internal/alias/smg"
	"repro/internal/core/pathmatrix"
	"repro/internal/core/validation"
	"repro/internal/depgraph"
	"repro/internal/exper"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/shape"
	"repro/internal/source/ast"
	"repro/internal/source/parser"
	"repro/internal/source/types"
	"repro/internal/xform"
)

// Re-exported types, so callers need only this package.
type (
	// Program is a parsed mini compilation unit.
	Program = ast.Program
	// Info is the type-checked program information.
	Info = types.Info
	// ShapeEnv is the ADDS shape model of the program's declarations.
	ShapeEnv = shape.Env
	// Matrix is a general path matrix at a program point.
	Matrix = pathmatrix.Matrix
	// SummaryTable holds per-function interprocedural summaries (see
	// WithSummaries); its Computed/Reused fields report cache behavior.
	SummaryTable = pathmatrix.SummaryTable
	// DepGraph is a loop dependence graph.
	DepGraph = depgraph.Graph
	// Oracle answers may/must-alias and loop-carried queries.
	Oracle = alias.Oracle
	// IRProgram is pseudo-assembly for one function.
	IRProgram = ir.Program
	// VLIWProgram is bundled VLIW code.
	VLIWProgram = machine.VLIWProgram
	// Node is a concrete heap node.
	Node = interp.Node
	// Heap allocates concrete nodes.
	Heap = interp.Heap
	// Value is an interpreter value.
	Value = interp.Value
	// Word is a machine register value.
	Word = machine.Word
	// Report is a regenerated experiment table.
	Report = exper.Report
	// PipelineInfo summarizes a software-pipelining analysis.
	PipelineInfo = xform.PipelineInfo
	// CheckViolation is a dynamic ADDS-property violation.
	CheckViolation = interp.CheckViolation
	// Tracer collects phase spans for the whole pipeline; wire one in with
	// WithTracer (or an obs-carrying context) and read the finished traces
	// from its ring. See internal/obs for the span model.
	Tracer = obs.Tracer
	// Span is one timed phase of a trace; all methods are nil-safe.
	Span = obs.Span
)

// NewTracer returns a tracer whose ring keeps the last n finished traces
// (n <= 0 selects the obs default).
func NewTracer(n int) *Tracer { return obs.NewTracer(n) }

// Value and word constructors, re-exported.
var (
	IntVal  = interp.IntVal
	PtrVal  = interp.PtrVal
	IntWord = machine.IntWord
	RefWord = machine.RefWord
)

// NewHeap returns an empty concrete heap.
func NewHeap() *Heap { return interp.NewHeap() }

// Unit is a loaded (parsed and checked) program.
type Unit struct {
	Prog *Program
	Info *Info
}

// Load parses and type-checks mini source. Parse and type diagnostics are
// reported as a *SourceError carrying the first position (errors.As).
func Load(src []byte) (*Unit, error) {
	return LoadCtx(context.Background(), src)
}

// LoadCtx is Load under a context. When the context carries a tracer (see
// WithTracer and obs.With), the front-end phases land as "parse", "shape",
// and "typecheck" spans; otherwise the context costs three nil checks.
func LoadCtx(ctx context.Context, src []byte) (*Unit, error) {
	_, span := obs.Start(ctx, "parse")
	prog, err := parser.Parse(src)
	span.End()
	if err != nil {
		return nil, wrapParseErr(err)
	}
	info, errs := types.CheckCtx(ctx, prog)
	if len(errs) > 0 {
		return nil, wrapTypeErrs(errs)
	}
	return &Unit{Prog: prog, Info: info}, nil
}

// MustLoad is Load for fixed sources; it panics on error. It is a test and
// example helper only — serving paths and tools load with Load and report
// the typed error.
func MustLoad(src string) *Unit {
	u, err := Load([]byte(src))
	if err != nil {
		panic("adds.MustLoad: " + err.Error())
	}
	return u
}

// Shapes returns the ADDS shape environment of the unit's declarations.
func (u *Unit) Shapes() *ShapeEnv { return u.Info.Env }

// Interp returns an interpreter over a fresh heap for the unit.
func (u *Unit) Interp() *interp.Interp { return interp.New(u.Prog) }

// CheckHeap runs the dynamic ADDS property checks (Defs 4.2-4.9) against
// the heap reachable from roots.
func (u *Unit) CheckHeap(roots ...*Node) []CheckViolation {
	return interp.Check(u.Info.Env, roots...)
}

// Analysis bundles every static artifact for one function.
type Analysis struct {
	Unit  *Unit
	Fn    *types.FuncInfo
	Graph *norm.Graph
	GPM   *pathmatrix.Result

	prog *ir.Program
	cfg  config
}

// MustAnalyze panics on error. It is a test and example helper only —
// serving paths and tools use AnalyzeOpt and report the typed error.
func (u *Unit) MustAnalyze(fn string) *Analysis {
	a, err := u.AnalyzeOpt(context.Background(), fn)
	if err != nil {
		panic(err)
	}
	return a
}

// IR returns the function's pseudo-assembly.
func (a *Analysis) IR() *IRProgram { return a.prog }

// Loops returns the number of loops in the function.
func (a *Analysis) Loops() int { return len(a.prog.Loops) }

// EntryMatrix returns the path matrix at function entry.
func (a *Analysis) EntryMatrix() *Matrix { return a.GPM.AtEntry() }

// ExitMatrix returns the path matrix at function exit.
func (a *Analysis) ExitMatrix() *Matrix { return a.GPM.BeforeNode(a.Graph.Exit) }

// LoopMatrix returns the fixed-point matrix inside loop i (source order).
func (a *Analysis) LoopMatrix(i int) *Matrix {
	return a.GPM.LoopHead(a.Graph.Loops[i])
}

// IterationMatrix returns the primed-variable matrix for loop i: relations
// between the previous iteration's values (suffixed ') and the current.
func (a *Analysis) IterationMatrix(i int) *Matrix {
	return a.GPM.IterationMatrix(a.Graph.Loops[i])
}

// Validation exposes the abstraction-validation view of the analysis:
// per-point validity and broken/repaired intervals (Section 5.1.1).
func (a *Analysis) Validation() *validation.Result {
	return validation.FromResult(a.GPM)
}

// GPMOracle returns the ADDS-informed alias oracle (the paper's analysis).
// It inherits the analysis's interprocedural summary table, so call sites
// answer with the same precision the per-node matrices were computed with.
func (a *Analysis) GPMOracle() Oracle {
	return alias.NewGPMWith(a.Graph, a.Unit.Info.Env, a.GPM.Summaries)
}

// ClassicOracle returns the annotation-free path matrix oracle. When the
// analysis ran with summaries, the classic oracle gets its own table computed
// under the stripped environment (summary rows are environment-dependent).
func (a *Analysis) ClassicOracle() Oracle {
	env := a.Unit.Info.Env
	var tab *pathmatrix.SummaryTable
	if a.GPM.Summaries != nil {
		tab = pathmatrix.ComputeSummaries(a.Unit.Info, env.Stripped())
	}
	return alias.NewClassicWith(a.Graph, env, tab)
}

// SummaryTable exposes the interprocedural summary table the analysis ran
// with (nil for havoc-only runs). Its Computed and Reused fields report this
// run's summary-cache misses and hits.
func (a *Analysis) SummaryTable() *SummaryTable { return a.GPM.Summaries }

// ConservativeOracle returns the worst-case baseline.
func (a *Analysis) ConservativeOracle() Oracle { return alias.NewConservative(a.Graph) }

// KLimitedOracle returns the k-limited storage-graph baseline.
func (a *Analysis) KLimitedOracle(k int) Oracle {
	return klimit.Analyze(a.Graph, a.Unit.Info.Env, k)
}

// SMGOracle returns the SMG-lite symbolic-memory-graph oracle (Predator-
// style segments with materialization on strong update).
func (a *Analysis) SMGOracle() Oracle {
	return smg.Analyze(a.Graph, a.Unit.Info.Env)
}

// options builds dependence options for loop i under an oracle.
func (a *Analysis) options(i int, o Oracle) depgraph.Options {
	return depgraph.Options{
		Oracle:   o,
		NormLoop: a.Graph.Loops[a.prog.Loops[i].SrcID],
		Env:      a.Unit.Info.Env,
		VarTypes: a.Fn.Vars,
	}
}

// Dependences builds the dependence graph of loop i under the oracle.
func (a *Analysis) Dependences(i int, o Oracle) *DepGraph {
	return a.DependencesCtx(context.Background(), i, o)
}

// DependencesCtx is Dependences under a context: when the context carries
// a tracer, the build lands as a "depgraph" span with the loop index.
func (a *Analysis) DependencesCtx(ctx context.Context, i int, o Oracle) *DepGraph {
	_, span := obs.Start(ctx, "depgraph")
	defer span.End()
	span.SetAttr("loop", i)
	return depgraph.Build(a.prog, a.prog.Loops[i], a.options(i, o))
}

// AnalyzePipeline computes initiation-interval bounds for loop i under the
// oracle at the given machine width.
func (a *Analysis) AnalyzePipeline(i int, o Oracle, width int) PipelineInfo {
	return xform.AnalyzePipeline(a.prog, a.prog.Loops[i], a.options(i, o), width)
}

// Pipeline software-pipelines loop i for a VLIW of the given width using
// the ADDS-informed oracle, following the paper's Section 5.2 derivation.
// A bad loop index reports ErrNoSuchLoop, a non-positive width ErrBadWidth.
func (a *Analysis) Pipeline(i, width int) (*VLIWProgram, PipelineInfo, error) {
	return a.PipelineCtx(context.Background(), i, width)
}

// PipelineCtx is Pipeline under a context: with a tracer the derivation
// lands as a "pipeline" span carrying the loop index and width.
func (a *Analysis) PipelineCtx(ctx context.Context, i, width int) (*VLIWProgram, PipelineInfo, error) {
	if err := a.CheckLoop(i); err != nil {
		return nil, PipelineInfo{}, err
	}
	if err := checkWidth(width); err != nil {
		return nil, PipelineInfo{}, err
	}
	_, span := obs.Start(ctx, "pipeline")
	defer span.End()
	span.SetAttr("loop", i)
	span.SetAttr("width", width)
	pl, err := xform.EmitPipelined(a.prog, a.prog.Loops[i], a.options(i, a.GPMOracle()), width)
	if err != nil {
		return nil, PipelineInfo{}, err
	}
	return pl.Prog, pl.Info, nil
}

// Unroll returns loop i unrolled k times for the scalar machine. A bad loop
// index reports ErrNoSuchLoop.
func (a *Analysis) Unroll(i, k int) (*IRProgram, error) {
	return a.UnrollCtx(context.Background(), i, k)
}

// UnrollCtx is Unroll under a context: with a tracer the transformation
// lands as an "unroll" span.
func (a *Analysis) UnrollCtx(ctx context.Context, i, k int) (*IRProgram, error) {
	if err := a.CheckLoop(i); err != nil {
		return nil, err
	}
	_, span := obs.Start(ctx, "unroll")
	defer span.End()
	span.SetAttr("loop", i)
	span.SetAttr("factor", k)
	return xform.Unroll(a.prog, a.prog.Loops[i], k, a.options(i, a.GPMOracle()))
}

// LICM hoists loop-invariant loads of loop i under the oracle and returns
// the transformed program plus how many loads moved.
func (a *Analysis) LICM(i int, o Oracle) (*IRProgram, int) {
	return a.LICMCtx(context.Background(), i, o)
}

// LICMCtx is LICM under a context: with a tracer the pass lands as a
// "licm" span carrying the hoist count.
func (a *Analysis) LICMCtx(ctx context.Context, i int, o Oracle) (*IRProgram, int) {
	_, span := obs.Start(ctx, "licm")
	defer span.End()
	span.SetAttr("loop", i)
	p, _, hoisted := xform.LICM(a.prog, a.prog.Loops[i], a.options(i, o))
	span.SetAttr("hoisted", len(hoisted))
	return p, len(hoisted)
}

// Compact packs the function into VLIW bundles without pipelining.
func (a *Analysis) Compact(width int) *VLIWProgram {
	return xform.Compact(a.prog, width)
}

// RunScalar executes an IR program on the scalar machine model.
func RunScalar(p *IRProgram, heap *Heap, args map[string]Word) (*machine.Result, error) {
	return machine.RunScalar(p, machine.DefaultScalar(), heap, args)
}

// RunVLIW executes bundled code on the VLIW machine model (speculative,
// non-faulting loads enabled, as the paper's transformation requires).
func RunVLIW(p *VLIWProgram, heap *Heap, args map[string]Word) (*machine.Result, error) {
	return machine.RunVLIW(p, machine.DefaultVLIW(), heap, args)
}

// Sequentialize turns linear IR into one-op bundles (the unpipelined VLIW
// baseline).
func Sequentialize(p *IRProgram) *VLIWProgram { return machine.Sequentialize(p) }

// ExperimentDef names one experiment without running it.
type ExperimentDef = exper.Def

// ExperimentDefs returns the experiment registry (ids and titles) without
// running anything.
func ExperimentDefs() []ExperimentDef { return exper.Defs() }

// Experiments regenerates every table and figure of the paper's evaluation
// (the experiment index in DESIGN.md).
func Experiments() []*Report { return exper.All() }

// Experiment regenerates one experiment by id ("E1".."E10").
func Experiment(id string) *Report { return exper.ByID(id) }
