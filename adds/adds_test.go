package adds

import (
	"context"
	"strings"
	"testing"
)

const shiftSrc = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
`

func TestLoadErrors(t *testing.T) {
	if _, err := Load([]byte("void f() { x = ; }")); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := Load([]byte("void f() { q = NULL; }")); err == nil {
		t.Error("type error not reported")
	}
}

func TestFacadePipeline(t *testing.T) {
	u := MustLoad(shiftSrc)
	an := u.MustAnalyze("shift")

	if an.Loops() != 1 {
		t.Fatalf("loops = %d", an.Loops())
	}
	m := an.LoopMatrix(0)
	if got := m.Entry("hd", "p").String(); got != "next+" {
		t.Errorf("PM(hd,p) = %q", got)
	}
	im := an.IterationMatrix(0)
	if im.MayAlias("p'", "p") {
		t.Error("iterates falsely alias")
	}

	dgGPM := an.Dependences(0, an.GPMOracle())
	dgCons := an.Dependences(0, an.ConservativeOracle())
	if len(dgGPM.CarriedMemEdges()) != 0 {
		t.Error("GPM should remove carried mem deps")
	}
	if len(dgCons.CarriedMemEdges()) == 0 {
		t.Error("conservative should keep carried mem deps")
	}

	prog, info, err := an.Pipeline(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if info.Theoretic != 5.0 {
		t.Errorf("theoretical speedup = %v", info.Theoretic)
	}
	if !strings.Contains(prog.String(), "kernel") {
		t.Error("pipelined program missing kernel")
	}
}

func TestFacadeRunAndCheck(t *testing.T) {
	u := MustLoad(shiftSrc)
	an := u.MustAnalyze("shift")

	// Build a concrete list via the interpreter's heap helpers.
	h := NewHeap()
	var head, prev *Node
	for i := 0; i < 6; i++ {
		n := h.New("TwoWayLL")
		n.Ints["data"] = int64(i * 10)
		if prev == nil {
			head = n
		} else {
			prev.Ptrs["next"] = n
			n.Ptrs["prev"] = prev
		}
		prev = n
	}
	if vs := u.CheckHeap(head); len(vs) != 0 {
		t.Fatalf("heap invalid: %v", vs[0])
	}
	res, err := RunScalar(an.IR(), h, map[string]Word{"hd": RefWord(head)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("no cycles measured")
	}
	// Every later node had data reduced by head's 0... head data is 0, so
	// values unchanged; check the run executed by instruction count.
	if res.Instrs < 10 {
		t.Errorf("instrs = %d", res.Instrs)
	}
}

func TestFacadeInterp(t *testing.T) {
	u := MustLoad(shiftSrc + `
int sum(TwoWayLL *hd) {
    TwoWayLL *p;
    int s;
    s = 0;
    p = hd;
    while (p != NULL) {
        s = s + p->data;
        p = p->next;
    }
    return s;
}`)
	in := u.Interp()
	a := in.Heap.New("TwoWayLL")
	b := in.Heap.New("TwoWayLL")
	a.Ints["data"], b.Ints["data"] = 4, 5
	a.Ptrs["next"] = b
	b.Ptrs["prev"] = a
	v, err := in.Call("sum", PtrVal(a))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 9 {
		t.Errorf("sum = %d", v.Int)
	}
}

func TestFacadeUnrollAndCompact(t *testing.T) {
	u := MustLoad(shiftSrc)
	an := u.MustAnalyze("shift")
	up, err := an.Unroll(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if up == nil || len(up.Instrs) <= len(an.IR().Instrs) {
		t.Error("unrolled program should be longer")
	}
	c := an.Compact(4)
	if len(c.Bundles) == 0 {
		t.Error("compaction produced nothing")
	}
	if _, hoisted := an.LICM(0, an.GPMOracle()); hoisted != 1 {
		t.Errorf("LICM hoisted %d", hoisted)
	}
}

func TestFacadeOracles(t *testing.T) {
	u := MustLoad(shiftSrc)
	an := u.MustAnalyze("shift")
	for _, o := range []Oracle{
		an.GPMOracle(), an.ClassicOracle(), an.ConservativeOracle(), an.KLimitedOracle(2),
	} {
		if o.Name() == "" {
			t.Error("unnamed oracle")
		}
	}
}

func TestFacadeExperimentLookup(t *testing.T) {
	if r := Experiment("E4"); r == nil || !strings.Contains(r.Format(), "next+") {
		t.Error("E4 lookup failed")
	}
	if Experiment("nope") != nil {
		t.Error("bogus experiment id")
	}
}

func TestAnalyzeUnknownFunction(t *testing.T) {
	u := MustLoad(shiftSrc)
	if _, err := u.AnalyzeOpt(context.Background(), "nope"); err == nil {
		t.Error("unknown function not reported")
	}
}
