package adds

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTracedAnalysisPhases: loading and analyzing under a root span records
// every front-end and engine phase on one trace, the phase durations are
// explained by the root duration, and the fixpoint span carries its engine
// stats.
func TestTracedAnalysisPhases(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartRoot(context.Background(), "test", obs.TraceID{})

	u, err := LoadCtx(ctx, []byte(shiftSrc))
	if err != nil {
		t.Fatal(err)
	}
	an, err := u.AnalyzeOpt(ctx, "shift")
	if err != nil {
		t.Fatal(err)
	}
	an.DependencesCtx(ctx, 0, an.Oracle())
	root.End()

	trace := tr.Ring().Get(root.TraceID())
	if trace == nil {
		t.Fatal("root trace did not land in the ring")
	}
	names := map[string]bool{}
	for _, n := range obs.PhaseNames(trace) {
		names[n] = true
	}
	for _, want := range []string{"test", "parse", "shape", "typecheck", "normalize", "fixpoint", "ir", "depgraph"} {
		if !names[want] {
			t.Errorf("trace is missing phase %q (have %v)", want, obs.PhaseNames(trace))
		}
	}

	// The phase spans are disjoint children of the root, so their summed
	// duration cannot exceed the root's.
	totals := obs.PhaseTotals(trace)
	var phases time.Duration
	for name, d := range totals {
		if name != "test" {
			phases += d
		}
	}
	if phases > totals["test"] {
		t.Errorf("phases sum to %v, more than the root's %v", phases, totals["test"])
	}

	var iterations any
	for _, rec := range trace.Snapshot() {
		if rec.Name != "fixpoint" {
			continue
		}
		for _, a := range rec.Attrs {
			if a.Key == "iterations" {
				iterations = a.Value
			}
		}
	}
	if n, ok := iterations.(int); !ok || n < 1 {
		t.Errorf("fixpoint span iterations attr = %v, want a positive int", iterations)
	}
}

// TestWithTracerOption: the option alone (no context plumbing) is enough to
// get engine phases traced — the documented one-configuration path.
func TestWithTracerOption(t *testing.T) {
	u := MustLoad(shiftSrc)
	tr := NewTracer(8)
	if _, err := u.AnalyzeOpt(context.Background(), "shift", WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	// Without a surrounding root span each phase is its own trace; the ring
	// must have seen at least the fixpoint.
	if tr.Ring().Len() == 0 {
		t.Fatal("WithTracer recorded no traces")
	}
}

// TestUntracedContextIsFree: the nil-tracer fast path returns the same
// results with no tracer attached (guarding the zero-overhead claim; the
// perf half is BenchmarkAnalyzeShift).
func TestUntracedContextIsFree(t *testing.T) {
	u := MustLoad(shiftSrc)
	an, err := u.AnalyzeOpt(context.Background(), "shift")
	if err != nil {
		t.Fatal(err)
	}
	if an.Loops() != 1 {
		t.Fatalf("loops = %d, want 1", an.Loops())
	}
}
