package adds

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// Sentinel errors for the recoverable failure modes of the facade. Wrapped
// errors carry context (function name, loop index, width); match them with
// errors.Is. The CLIs map each to a distinct exit code via ExitCode, and
// addsd maps them to HTTP statuses.
var (
	// ErrUnknownFunction reports a function name not declared in the unit.
	ErrUnknownFunction = errors.New("unknown function")
	// ErrNoSuchLoop reports a loop index outside the function's loops.
	ErrNoSuchLoop = errors.New("no such loop")
	// ErrBadWidth reports a non-positive VLIW machine width.
	ErrBadWidth = errors.New("bad machine width")
	// ErrDivergence reports that a differential-testing campaign found at
	// least one oracle divergence — the run itself succeeded, but the tree
	// is buggy. addsfuzz exits with ExitDivergence so CI can distinguish
	// "found a bug" from "the fuzzer broke".
	ErrDivergence = errors.New("divergence found")
)

// SourceError is a parse or type error carrying its source position.
// Load wraps the first parser or checker diagnostic in one; retrieve it
// with errors.As to report positions structurally.
type SourceError struct {
	Line, Col int
	Msg       string
	More      int // additional diagnostics beyond the first
}

// Error renders the paper-tool style "line:col: message" diagnostic.
func (e *SourceError) Error() string {
	s := fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
	if e.More > 0 {
		s += fmt.Sprintf(" (and %d more errors)", e.More)
	}
	return s
}

// wrapParseErr converts the parser's error forms into *SourceError.
func wrapParseErr(err error) error {
	var list parser.ErrorList
	if errors.As(err, &list) && len(list) > 0 {
		return &SourceError{
			Line: list[0].Pos.Line, Col: list[0].Pos.Column,
			Msg: list[0].Msg, More: len(list) - 1,
		}
	}
	var pe *parser.Error
	if errors.As(err, &pe) {
		return &SourceError{Line: pe.Pos.Line, Col: pe.Pos.Column, Msg: pe.Msg}
	}
	return err
}

// wrapTypeErrs converts checker diagnostics into *SourceError.
func wrapTypeErrs(errs []*types.Error) error {
	if len(errs) == 0 {
		return nil
	}
	return &SourceError{
		Line: errs[0].Pos.Line, Col: errs[0].Pos.Column,
		Msg: errs[0].Msg, More: len(errs) - 1,
	}
}

// Exit codes shared by the CLIs: every tool reports the same failure class
// with the same status, so scripts can branch without parsing messages.
const (
	ExitOK       = 0
	ExitInternal = 1 // unclassified failure (I/O, internal error)
	ExitUsage    = 2 // flag or argument misuse
	ExitSource   = 3 // parse or type error in the input program
	ExitNoFunc   = 4 // ErrUnknownFunction
	ExitNoLoop   = 5 // ErrNoSuchLoop
	ExitWidth    = 6 // ErrBadWidth
	// ExitDivergence is addsfuzz's "the campaign worked and found bugs".
	ExitDivergence = 7 // ErrDivergence
)

// ExitCode maps an error to the shared CLI exit code for its class.
func ExitCode(err error) int {
	var se *SourceError
	switch {
	case err == nil:
		return ExitOK
	case errors.As(err, &se):
		return ExitSource
	case errors.Is(err, ErrUnknownFunction):
		return ExitNoFunc
	case errors.Is(err, ErrNoSuchLoop):
		return ExitNoLoop
	case errors.Is(err, ErrBadWidth):
		return ExitWidth
	case errors.Is(err, ErrDivergence):
		return ExitDivergence
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return ExitInternal
	}
	return ExitInternal
}
