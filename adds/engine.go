package adds

import "repro/internal/core/pathmatrix"

// Engine-level introspection and tuning, re-exported so observability and
// benchmarking tools never import internal packages directly.

// EngineStats is a snapshot of the analysis engine's process-wide counters:
// fixpoint iterations, matrix clones, transfer-memo hits and misses, shared
// and dropped rows. See pathmatrix.Stats for field semantics.
type EngineStats = pathmatrix.Stats

// ReadEngineStats returns the engine counters since process start.
func ReadEngineStats() EngineStats { return pathmatrix.ReadStats() }

// EngineVersion identifies the analysis engine semantics. It stamps API
// responses, content-addressed caches and benchmark files; two equal
// versions promise byte-identical analysis output for identical input.
func EngineVersion() string { return pathmatrix.EngineVersion }

// SetEngineMemo enables or disables the process-wide transfer-function memo
// and reports the previous setting. The memo is semantics-free (outputs are
// byte-identical either way); disabling it exists for benchmarks and
// differential harnesses. Not synchronized with running analyses: flip it
// only between runs.
func SetEngineMemo(on bool) (prev bool) {
	prev = pathmatrix.Memoize
	pathmatrix.Memoize = on
	return prev
}

// EngineMemoEnabled reports whether the transfer-function memo is on.
func EngineMemoEnabled() bool { return pathmatrix.Memoize }

// SetEngineLiveness enables or disables the engine's interleaved liveness
// pass globally and reports the previous setting. Unlike the memo this
// changes analysis results (dead-variable facts are dropped); prefer the
// per-analysis WithLiveness option, which also serializes correctly against
// concurrent analyses. Not synchronized: flip it only between runs.
func SetEngineLiveness(on bool) (prev bool) {
	prev = pathmatrix.Liveness
	pathmatrix.Liveness = on
	return prev
}
