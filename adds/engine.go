package adds

import "repro/internal/core/pathmatrix"

// Engine-level introspection and tuning, re-exported so observability and
// benchmarking tools never import internal packages directly.

// EngineStats is a snapshot of the analysis engine's process-wide counters:
// fixpoint iterations, matrix clones, transfer-memo hits and misses, shared
// and dropped rows. See pathmatrix.Stats for field semantics.
type EngineStats = pathmatrix.Stats

// ReadEngineStats returns the engine counters since process start.
func ReadEngineStats() EngineStats { return pathmatrix.ReadStats() }

// EngineVersion identifies the analysis engine semantics. It stamps API
// responses, content-addressed caches and benchmark files; two equal
// versions promise byte-identical analysis output for identical input.
func EngineVersion() string { return pathmatrix.EngineVersion }

// SetEngineMemo enables or disables the process-wide transfer-function memo
// and reports the previous setting. The memo is semantics-free (outputs are
// byte-identical either way); disabling it exists for benchmarks and
// differential harnesses. Not synchronized with running analyses: flip it
// only between runs.
func SetEngineMemo(on bool) (prev bool) {
	prev = pathmatrix.Memoize
	pathmatrix.Memoize = on
	return prev
}

// EngineMemoEnabled reports whether the transfer-function memo is on.
func EngineMemoEnabled() bool { return pathmatrix.Memoize }

// SetEngineSummaries enables or disables compositional interprocedural
// analysis globally (pathmatrix.Summarize) and reports the previous setting.
// With summaries off, every call statement applies the opaque all-args
// havoc. Changing this changes analysis results for multi-function programs;
// prefer the per-analysis WithSummaries option, which also serializes
// correctly against concurrent analyses. Not synchronized: flip it only
// between runs.
func SetEngineSummaries(on bool) (prev bool) {
	prev = pathmatrix.Summarize
	pathmatrix.Summarize = on
	return prev
}

// EngineSummariesEnabled reports whether interprocedural summaries are on.
func EngineSummariesEnabled() bool { return pathmatrix.Summarize }

// ResetEngineSummaryCache empties the process-wide content-addressed summary
// cache (cold-cache benchmarks and tests that assert cache-miss counts).
func ResetEngineSummaryCache() { pathmatrix.ResetSummaryCache() }

// SetEngineLiveness enables or disables the engine's interleaved liveness
// pass globally and reports the previous setting. Unlike the memo this
// changes analysis results (dead-variable facts are dropped); prefer the
// per-analysis WithLiveness option, which also serializes correctly against
// concurrent analyses. Not synchronized: flip it only between runs.
func SetEngineLiveness(on bool) (prev bool) {
	prev = pathmatrix.Liveness
	pathmatrix.Liveness = on
	return prev
}
