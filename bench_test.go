// Package repro's root benchmarks regenerate every experiment of the
// paper's evaluation (see DESIGN.md's experiment index). One benchmark per
// table/figure; simulated machine metrics are attached with
// b.ReportMetric, so `go test -bench=. -benchmem` prints both the cost of
// the analyses and the reproduced performance numbers.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/adds"
	"repro/internal/alias"
	"repro/internal/core/pathmatrix"
	"repro/internal/depgraph"
	"repro/internal/exper"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
	"repro/internal/structures"
	"repro/internal/xform"
)

// fixtureFor compiles the shift program once per benchmark.
type fixture struct {
	info *types.Info
	fi   *types.FuncInfo
	g    *norm.Graph
	an   *adds.Analysis
}

func loadShift(b *testing.B) *fixture {
	b.Helper()
	unit := adds.MustLoad(exper.ShiftSrc)
	an := unit.MustAnalyze("shift")
	info := types.MustCheck(parser.MustParse(exper.ShiftSrc))
	fi := info.Func("shift")
	return &fixture{info: info, fi: fi, g: norm.Build(fi, info.Env), an: an}
}

// BenchmarkE1AliasOracles measures the three analyses answering Figure 1's
// questions on the list-add loop.
func BenchmarkE1AliasOracles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.E1()
		if len(r.Rows) != 3 {
			b.Fatal("bad E1")
		}
	}
}

// BenchmarkE2InvariantCheck measures dynamic validation of all six paper
// structures (Defs 4.2-4.9) at size 1000.
func BenchmarkE2InvariantCheck(b *testing.B) {
	env := structures.Env()
	heaps := map[string][]*interp.Node{}
	h := interp.NewHeap()
	for _, name := range structures.Names() {
		roots, err := structures.Random(h, newRand(7), name, 300)
		if err != nil {
			b.Fatal(err)
		}
		heaps[name] = roots
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range structures.Names() {
			if vs := interp.Check(env, heaps[name]...); len(vs) != 0 {
				b.Fatalf("%s: %v", name, vs[0])
			}
		}
	}
}

// BenchmarkE3ConservativeMatrix regenerates the Section 5.1.2 alias matrix.
func BenchmarkE3ConservativeMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exper.E3() == nil {
			b.Fatal("bad E3")
		}
	}
}

// BenchmarkE4PathMatrix measures the general path matrix analysis of the
// shift loop to its fixed point — the core cost of the paper's technique.
func BenchmarkE4PathMatrix(b *testing.B) {
	unit := adds.MustLoad(exper.ShiftSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := unit.MustAnalyze("shift")
		if an.LoopMatrix(0).Entry("hd", "p").String() != "next+" {
			b.Fatal("fixed point wrong")
		}
	}
}

// BenchmarkE5DepGraph measures Figure 2's dependence graph construction
// under both oracles.
func BenchmarkE5DepGraph(b *testing.B) {
	f := loadShift(b)
	gpm := f.an.GPMOracle()
	cons := f.an.ConservativeOracle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.an.Dependences(0, gpm).CarriedMemEdges()) != 0 {
			b.Fatal("gpm carried deps")
		}
		if len(f.an.Dependences(0, cons).CarriedMemEdges()) == 0 {
			b.Fatal("cons carried deps")
		}
	}
}

// BenchmarkE6Pipeline measures the full Section 5.2 derivation plus a
// simulated execution, reporting the measured speedup.
func BenchmarkE6Pipeline(b *testing.B) {
	f := loadShift(b)
	prog, info, err := f.an.Pipeline(0, 8)
	if err != nil {
		b.Fatal(err)
	}
	n := 500
	var seqCycles, pipCycles int64
	for i := 0; i < b.N; i++ {
		h1 := interp.NewHeap()
		hd1 := structures.TwoWayList(h1, nil, n)
		seq, err := machine.RunVLIW(machine.Sequentialize(f.an.IR()), machine.DefaultVLIW(),
			h1, map[string]machine.Word{"hd": machine.RefWord(hd1)})
		if err != nil {
			b.Fatal(err)
		}
		h2 := interp.NewHeap()
		hd2 := structures.TwoWayList(h2, nil, n)
		pip, err := machine.RunVLIW(prog, machine.DefaultVLIW(), h2,
			map[string]machine.Word{"hd": machine.RefWord(hd2)})
		if err != nil {
			b.Fatal(err)
		}
		seqCycles, pipCycles = seq.Cycles, pip.Cycles
	}
	b.ReportMetric(info.Theoretic, "theoretical-speedup")
	b.ReportMetric(float64(seqCycles)/float64(pipCycles), "measured-speedup")
	b.ReportMetric(float64(pipCycles)/float64(n), "cycles/node")
}

// BenchmarkE7Unroll measures [HG92]'s 3-unrolling of the init loop at list
// length 100 on the scalar machine, reporting the speedup.
func BenchmarkE7Unroll(b *testing.B) {
	unit := adds.MustLoad(exper.InitSrc)
	an := unit.MustAnalyze("initlist")
	u3, err := an.Unroll(0, 3)
	if err != nil {
		b.Fatal(err)
	}
	n := 100
	var baseCycles, fastCycles int64
	for i := 0; i < b.N; i++ {
		h1 := interp.NewHeap()
		hd1 := structures.TwoWayList(h1, nil, n)
		base, err := machine.RunScalar(an.IR(), machine.DefaultScalar(), h1,
			map[string]machine.Word{"p": machine.RefWord(hd1)})
		if err != nil {
			b.Fatal(err)
		}
		h2 := interp.NewHeap()
		hd2 := structures.TwoWayList(h2, nil, n)
		fast, err := machine.RunScalar(u3, machine.DefaultScalar(), h2,
			map[string]machine.Word{"p": machine.RefWord(hd2)})
		if err != nil {
			b.Fatal(err)
		}
		baseCycles, fastCycles = base.Cycles, fast.Cycles
	}
	b.ReportMetric((float64(baseCycles)/float64(fastCycles)-1)*100, "speedup-pct")
}

// BenchmarkE8KLimited measures the k-limited analysis on the build-and-
// traverse program against GPM.
func BenchmarkE8KLimited(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.E8()
		if len(r.Rows) != 4 {
			b.Fatal("bad E8")
		}
	}
}

// BenchmarkE9Validation measures the abstraction-validation analysis of the
// subtree move.
func BenchmarkE9Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.E9()
		if len(r.Rows) == 0 {
			b.Fatal("bad E9")
		}
	}
}

// BenchmarkE10VLIW measures the width sweep's best configuration.
func BenchmarkE10VLIW(b *testing.B) {
	f := loadShift(b)
	opt := depgraph.Options{
		Oracle:   alias.NewGPM(f.g, f.info.Env),
		NormLoop: f.g.Loops[0],
		Env:      f.info.Env,
		VarTypes: f.fi.Vars,
	}
	n := 500
	var cycles int64
	for i := 0; i < b.N; i++ {
		pl, err := xform.EmitPipelined(f.an.IR(), f.an.IR().Loops[0], opt, 8)
		if err != nil {
			b.Fatal(err)
		}
		h := interp.NewHeap()
		hd := structures.TwoWayList(h, nil, n)
		res, err := machine.RunVLIW(pl.Prog, machine.DefaultVLIW(), h,
			map[string]machine.Word{"hd": machine.RefWord(hd)})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(n), "cycles/node")
}

// newRand gives each benchmark a deterministic generator.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// manyFuncsSrc generates a program with n distinct two-loop functions, the
// whole-program workload for the serial-vs-parallel engine benchmarks.
func manyFuncsSrc(n int) string {
	var b strings.Builder
	b.WriteString(exper.TwoWayDecl)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `
void work%d(TwoWayLL *hd, TwoWayLL *q) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
    p = q;
    while (p != NULL) {
        p->data = 0;
        p = p->prev;
    }
}
`, i)
	}
	return b.String()
}

func benchAnalyzeProgram(b *testing.B, workers int) {
	info := types.MustCheck(parser.MustParse(manyFuncsSrc(8)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := pathmatrix.AnalyzeProgramCtx(context.Background(), info, info.Env, workers)
		if err != nil || len(out) != 8 {
			b.Fatalf("analyzed %d functions, err %v", len(out), err)
		}
	}
}

// BenchmarkAnalyzeProgramSerial analyzes an 8-function program on one worker.
func BenchmarkAnalyzeProgramSerial(b *testing.B) { benchAnalyzeProgram(b, 1) }

// BenchmarkAnalyzeProgramParallel analyzes the same program with one worker
// per CPU. With GOMAXPROCS >= 4 this should run well over 2x faster than
// BenchmarkAnalyzeProgramSerial (per-function analyses are independent).
func BenchmarkAnalyzeProgramParallel(b *testing.B) { benchAnalyzeProgram(b, 0) }

// BenchmarkAnalyzeShift compares the path-matrix engine with and without
// hash-consing: the interned mode memoizes path renderings and shares
// canonical slices, and should allocate far less per analysis.
func BenchmarkAnalyzeShift(b *testing.B) {
	info := types.MustCheck(parser.MustParse(exper.ShiftSrc))
	fi := info.Func("shift")
	for _, mode := range []struct {
		name   string
		intern bool
	}{{"interned", true}, {"naive", false}} {
		b.Run(mode.name, func(b *testing.B) {
			old := pathmatrix.Interning
			pathmatrix.Interning = mode.intern
			defer func() { pathmatrix.Interning = old }()
			g := norm.Build(fi, info.Env)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r := pathmatrix.Analyze(g, info.Env); r == nil {
					b.Fatal("nil result")
				}
			}
		})
	}
}

// BenchmarkAnalyzeShiftMemo isolates the transfer-function memo: warm
// repeated analyses of the same function (the addsd serving pattern when the
// response cache misses but the program shape repeats) against the
// unmemoized engine. The memo must win here or it is pure overhead.
func BenchmarkAnalyzeShiftMemo(b *testing.B) {
	info := types.MustCheck(parser.MustParse(exper.ShiftSrc))
	g := norm.Build(info.Func("shift"), info.Env)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"memo-on", true}, {"memo-off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			old := pathmatrix.Memoize
			pathmatrix.Memoize = mode.on
			defer func() { pathmatrix.Memoize = old }()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r := pathmatrix.Analyze(g, info.Env); r == nil {
					b.Fatal("nil result")
				}
			}
		})
	}
}
