package soundness

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/core/pathmatrix"
	"repro/internal/interp"
	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/token"
	"repro/internal/source/types"
	"repro/internal/structures"
)

// checkAllObserved executes fuzzed on a small list and requires GPM to
// admit every dynamically observed alias — the shared body of the
// regression tests below (each a shrunk addsfuzz campaign finding).
func checkAllObserved(t *testing.T, src string) {
	t.Helper()
	checkAllObservedOn(t, src, func(h *interp.Heap) *interp.Node {
		return structures.TwoWayList(h, nil, 2)
	})
}

func checkAllObservedOn(t *testing.T, src string, build func(h *interp.Heap) *interp.Node) {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	info, errs := types.Check(prog)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	fi := info.Func("fuzzed")
	g := norm.Build(fi, info.Env)
	o := alias.NewGPM(g, info.Env)
	in := interp.New(prog)
	tr := &tracer{ptrVars: fi.PointerVars(), observed: map[token.Pos]map[[2]string]bool{}}
	in.Tracer = tr
	hd := build(in.Heap)
	if _, err := in.Call("fuzzed", interp.PtrVal(hd)); err != nil {
		t.Fatal(err)
	}
	for pos, pairs := range tr.observed {
		n := nodeAtPos(g, pos)
		if n == nil {
			continue
		}
		for pair := range pairs {
			if !o.MayAlias(n, pair[0], pair[1]) {
				t.Errorf("GPM misses real alias %s==%s before %s", pair[0], pair[1], pos)
			}
		}
	}
}

// TestRegressCyclicRepairWithRelatedValue: overwriting a known-cyclic edge
// with a value whose relation to the base was derived DURING the broken
// window (here @t = c->next, loaded through the cyclic edge itself) must
// not restore validity — the relation can hide an alias. Shrunk from
// addsfuzz list-profile seed 4226.
func TestRegressCyclicRepairWithRelatedValue(t *testing.T) {
	checkAllObserved(t, twoWayLL+`
void fuzzed(TwoWayLL *a) {
    TwoWayLL *b, *c, *d;
    b = a;
    d = a;
    d->next = a;
    c = b->next;
    d->next = c->next;
    c->next = d;
    b = b;
}
`)
}

// TestRegressViolationSurvivesReassignment: after d = new, a store through
// the fresh d overwrites a different node's edge and must not "repair" the
// violation recorded while d named the cyclic node. Also shrunk from
// addsfuzz seed 4226.
func TestRegressViolationSurvivesReassignment(t *testing.T) {
	checkAllObserved(t, twoWayLL+`
void fuzzed(TwoWayLL *a) {
    TwoWayLL *b, *c, *d;
    b = a;
    d = a;
    d->next = a;
    c = b->next;
    d = new TwoWayLL;
    d->next = c->next;
    c->next = d;
    b = b;
}
`)
}

// TestRegressBackwardEdgeSurvivesUnlink: overwriting d->next drops the
// forward relation to the old target, but the target's prev edge still
// reaches d's node in the heap, so c = c->prev can re-alias c with d.
// The dropped relation must demote to the unknown relation, not vanish —
// an empty entry claims the alias impossible. Shrunk from addsfuzz
// mixed-profile seed 4560.
func TestRegressBackwardEdgeSurvivesUnlink(t *testing.T) {
	checkAllObserved(t, twoWayLL+`
void fuzzed(TwoWayLL *a) {
    TwoWayLL *c, *d;
    c = a;
    d = c;
    c = c->next;
    d->next = NULL;
    c = c->prev;
    a = a;
}
`)
}

// TestRegressTopRelationMirroredOnUnlink: the tree counterpart. The store
// b->right = a demotes dropped relations to the unknown relation; that
// demotion must go through addRel so Top lands in BOTH cells — the load
// rules skip Entry(src, x) alias/Top relations as "mirrored", so a
// one-sided Top vanishes on the next load and the derived pointers claim
// non-alias. Shrunk from addsfuzz tree-profile seed 3182.
func TestRegressTopRelationMirroredOnUnlink(t *testing.T) {
	src := `
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
void fuzzed(PBinTree *a) {
    PBinTree *b, *c, *d;
    int i;
    c = a;
    d = a;
    i = 2;
    while (i > 0 && c != NULL) {
        c->data = c->data + 1;
        c = c->right;
        i = i - 1;
    }
    b = d;
    if (b != NULL && b->right == NULL) {
        a = new PBinTree;
        b->right = a;
        a->parent = b;
    }
    if (a != NULL) {
        d = a->right;
    }
    d = d->right;
    b = b;
}
`
	checkAllObservedOn(t, src, func(h *interp.Heap) *interp.Node {
		return structures.PerfectTree(h, 2)
	})
}

// TestRegressDepartureCanClimbBack: a path that leaves src through a
// sibling field but then takes a backward step can climb back out of the
// sibling subtree and re-enter fld's (left.parent.right from a left child
// IS src->right), so it must not count as a provably disjoint departure —
// the subtree arguments of Defs 4.7-4.9 only apply to descending paths.
// Shrunk from addsfuzz readonly-profile seed 12409.
func TestRegressDepartureCanClimbBack(t *testing.T) {
	src := `
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
void fuzzed(PBinTree *a) {
    PBinTree *b, *d;
    d = a;
    b = d->left;
    a = d->right;
    b = b->parent;
    b = b->right;
    d = d;
}
`
	checkAllObservedOn(t, src, func(h *interp.Heap) *interp.Node {
		return structures.PerfectTree(h, 2)
	})
}

// TestRegressDeletionIdiomStaysValid guards the precision side of the fix:
// from a valid state, the node-deletion idiom p->next = p->next->next uses
// the same matrix pattern (base forward-reaches src at store time) and
// must stay violation-free.
func TestRegressDeletionIdiomStaysValid(t *testing.T) {
	src := twoWayLL + `
void fuzzed(TwoWayLL *p) {
    TwoWayLL *t;
    if (p != NULL) {
        t = p->next;
        if (t != NULL) {
            p->next = t->next;
        }
    }
}
`
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	info, errs := types.Check(prog)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	fi := info.Func("fuzzed")
	g := norm.Build(fi, info.Env)
	res := pathmatrix.Analyze(g, info.Env)
	for _, n := range g.Nodes {
		if n.Kind != norm.NodeStmt {
			continue
		}
		if m := res.BeforeNode(n); !m.Valid() {
			t.Errorf("deletion idiom flagged invalid before %s: %v", n.Stmt.Pos, m.Violations())
		}
	}
}

// TestRegressMergeDespiteStaleRelation: the store transfer's structure
// merge must record the new composite path even when the two sides are
// already related — here a junk (b,c) relation from the preceding join
// made related(c,b) true, so `a->next = b` skipped the merge, PM(c,b)
// stayed empty, and the analysis refuted the real alias b==d after
// `b = b->prev; d = c->next` on a fully valid heap. Shrunk from the
// repair-profile campaign (addsfuzz -seed 11, program seed 734).
func TestRegressMergeDespiteStaleRelation(t *testing.T) {
	checkAllObserved(t, twoWayLL+`
void fuzzed(TwoWayLL *a) {
    TwoWayLL *b, *c, *d;
    b = a;
    c = a;
    d = a;
    if (c != NULL) {
        a = new TwoWayLL;
        a->next = c->next;
        if (a->next != NULL) {
            a->next->prev = a;
        }
        c->next = a;
        a->prev = c;
    }
    if (a != NULL) {
        b = new TwoWayLL;
        b->next = a->next;
        if (b->next != NULL) {
            b->next->prev = b;
        }
        a->next = b;
        b->prev = a;
    }
    if (b != NULL) {
        b = b->prev;
    }
    if (c != NULL && c->next != NULL) {
        d = c->next;
        c->next = d->next;
        if (c->next != NULL) {
            c->next->prev = c;
        }
    }
}
`)
}
