package soundness

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/klimit"
	"repro/internal/interp"
	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/token"
	"repro/internal/source/types"
	"repro/internal/structures"
)

// genProgram builds a random mini function over TwoWayLL: assignments,
// guarded dereferences in both directions, guarded stores (which may
// temporarily or permanently break the declared abstraction — the
// validation machinery must keep the analysis sound regardless), fresh
// allocations, and bounded traversal loops.
func genProgram(rng *rand.Rand, nStmts int) string {
	vars := []string{"a", "b", "c", "d"}
	pick := func() string { return vars[rng.Intn(len(vars))] }
	field := func() string {
		if rng.Intn(2) == 0 {
			return "next"
		}
		return "prev"
	}

	var b strings.Builder
	b.WriteString(twoWayLL)
	b.WriteString(`
void fuzzed(TwoWayLL *a) {
    TwoWayLL *b, *c, *d;
    int i;
    b = a;
    c = a;
    d = a;
`)
	for s := 0; s < nStmts; s++ {
		switch rng.Intn(8) {
		case 0:
			fmt.Fprintf(&b, "    %s = %s;\n", pick(), pick())
		case 1:
			fmt.Fprintf(&b, "    %s = NULL;\n", pick())
		case 2:
			fmt.Fprintf(&b, "    %s = new TwoWayLL;\n", pick())
		case 3:
			src := pick()
			fmt.Fprintf(&b, "    if (%s != NULL) { %s = %s->%s; }\n",
				src, pick(), src, field())
		case 4:
			base := pick()
			fmt.Fprintf(&b, "    if (%s != NULL) { %s->%s = %s; }\n",
				base, base, field(), pick())
		case 5:
			base := pick()
			fmt.Fprintf(&b, "    if (%s != NULL) { %s->%s = NULL; }\n",
				base, base, field())
		case 6:
			v := pick()
			fmt.Fprintf(&b, `    i = %d;
    while (i > 0 && %s != NULL) {
        %s = %s->next;
        i = i - 1;
    }
`, rng.Intn(5)+1, v, v, v)
		case 7:
			base := pick()
			fmt.Fprintf(&b, "    if (%s != NULL) { %s->data = %d; }\n",
				base, base, rng.Intn(100))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// TestFuzzOracleSoundness generates random pointer-shuffling programs,
// executes them, and verifies every dynamically observed alias is admitted
// by every oracle. This covers states the hand-written fixtures cannot:
// arbitrary interleavings of abstraction breaks and repairs.
func TestFuzzOracleSoundness(t *testing.T) {
	const programs = 150
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := genProgram(rng, 6+rng.Intn(10))

		prog, err := parser.Parse([]byte(src))
		if err != nil {
			t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, src)
		}
		info, errs := types.Check(prog)
		if len(errs) > 0 {
			t.Fatalf("seed %d: generated program does not check: %v\n%s", seed, errs[0], src)
		}
		fi := info.Func("fuzzed")
		g := norm.Build(fi, info.Env)

		oracles := []alias.Oracle{
			alias.NewGPM(g, info.Env),
			alias.NewClassic(g, info.Env),
			alias.NewConservative(g),
			klimit.Analyze(g, info.Env, 2),
		}

		for run := 0; run < 3; run++ {
			in := interp.New(prog)
			in.MaxSteps = 1 << 16
			tr := &tracer{
				ptrVars:  fi.PointerVars(),
				observed: map[token.Pos]map[[2]string]bool{},
			}
			in.Tracer = tr
			hd := structures.TwoWayList(in.Heap, nil, 3+run*2)
			if _, err := in.Call("fuzzed", interp.PtrVal(hd)); err != nil {
				// Mutations can create cycles whose traversal exhausts the
				// step budget, or dangling NULL derefs the guards missed;
				// partial executions still produced valid observations.
				if !strings.Contains(err.Error(), "step budget") &&
					!strings.Contains(err.Error(), "NULL") {
					t.Fatalf("seed %d: %v\n%s", seed, err, src)
				}
			}

			for pos, pairs := range tr.observed {
				n := nodeAtPos(g, pos)
				if n == nil {
					continue
				}
				for pair := range pairs {
					for _, o := range oracles {
						if !o.MayAlias(n, pair[0], pair[1]) {
							t.Errorf("seed %d run %d: oracle %s misses real alias %s==%s before %s\n%s",
								seed, run, o.Name(), pair[0], pair[1], pos, src)
						}
					}
				}
			}
		}
	}
}

// TestFuzzAnalysisTermination stresses the fixed-point machinery with
// larger random programs: the analysis must terminate and never panic.
func TestFuzzAnalysisTermination(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := genProgram(rng, 40)
		prog, err := parser.Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		info, errs := types.Check(prog)
		if len(errs) > 0 {
			t.Fatal(errs[0])
		}
		fi := info.Func("fuzzed")
		g := norm.Build(fi, info.Env)
		o := alias.NewGPM(g, info.Env)
		// Exercise loop-carried queries on every loop too.
		for _, l := range g.Loops {
			o.LoopCarried(l, "a", "b")
			o.LoopCarried(l, "b", "b")
		}
	}
}

// genTreeProgram builds a random PBinTree-shuffling function: guarded
// child/parent dereferences and child stores with parent back-links —
// exercising the combined-group (Defs 4.7-4.8) and backward (Def 4.6)
// rules far beyond the fixed fixtures.
func genTreeProgram(rng *rand.Rand, nStmts int) string {
	vars := []string{"a", "b", "c", "d"}
	pick := func() string { return vars[rng.Intn(len(vars))] }
	child := func() string {
		if rng.Intn(2) == 0 {
			return "left"
		}
		return "right"
	}

	var sb strings.Builder
	sb.WriteString(pBinTree)
	sb.WriteString(`
void fuzzed(PBinTree *a) {
    PBinTree *b, *c, *d;
    int i;
    b = a;
    c = a;
    d = a;
`)
	for s := 0; s < nStmts; s++ {
		switch rng.Intn(7) {
		case 0:
			fmt.Fprintf(&sb, "    %s = %s;\n", pick(), pick())
		case 1:
			src := pick()
			fmt.Fprintf(&sb, "    if (%s != NULL) { %s = %s->%s; }\n",
				src, pick(), src, child())
		case 2:
			src := pick()
			fmt.Fprintf(&sb, "    if (%s != NULL) { %s = %s->parent; }\n",
				src, pick(), src)
		case 3:
			base := pick()
			fmt.Fprintf(&sb, "    if (%s != NULL) { %s->%s = %s; }\n",
				base, base, child(), pick())
		case 4:
			base := pick()
			fmt.Fprintf(&sb, "    if (%s != NULL) { %s->parent = %s; }\n",
				base, base, pick())
		case 5:
			fmt.Fprintf(&sb, "    %s = new PBinTree;\n", pick())
		case 6:
			v := pick()
			fmt.Fprintf(&sb, `    i = %d;
    while (i > 0 && %s != NULL) {
        %s = %s->%s;
        i = i - 1;
    }
`, rng.Intn(4)+1, v, v, v, child())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// TestFuzzTreeOracleSoundness is the tree counterpart of the list fuzzer.
func TestFuzzTreeOracleSoundness(t *testing.T) {
	const programs = 150
	for seed := int64(1000); seed < 1000+programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := genTreeProgram(rng, 6+rng.Intn(10))

		prog, err := parser.Parse([]byte(src))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		info, errs := types.Check(prog)
		if len(errs) > 0 {
			t.Fatalf("seed %d: %v\n%s", seed, errs[0], src)
		}
		fi := info.Func("fuzzed")
		g := norm.Build(fi, info.Env)

		oracles := []alias.Oracle{
			alias.NewGPM(g, info.Env),
			alias.NewClassic(g, info.Env),
			alias.NewConservative(g),
			klimit.Analyze(g, info.Env, 2),
		}

		for run := 0; run < 3; run++ {
			in := interp.New(prog)
			in.MaxSteps = 1 << 16
			tr := &tracer{
				ptrVars:  fi.PointerVars(),
				observed: map[token.Pos]map[[2]string]bool{},
			}
			in.Tracer = tr
			root := structures.PerfectTree(in.Heap, 3+run)
			if _, err := in.Call("fuzzed", interp.PtrVal(root)); err != nil {
				if !strings.Contains(err.Error(), "step budget") &&
					!strings.Contains(err.Error(), "NULL") {
					t.Fatalf("seed %d: %v\n%s", seed, err, src)
				}
			}
			for pos, pairs := range tr.observed {
				n := nodeAtPos(g, pos)
				if n == nil {
					continue
				}
				for pair := range pairs {
					for _, o := range oracles {
						if !o.MayAlias(n, pair[0], pair[1]) {
							t.Errorf("seed %d run %d: oracle %s misses real alias %s==%s before %s\n%s",
								seed, run, o.Name(), pair[0], pair[1], pos, src)
						}
					}
				}
			}
		}
	}
}
