package soundness

import (
	"flag"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/klimit"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/token"
	"repro/internal/source/types"
	"repro/internal/structures"
)

// fuzzSeed offsets every seed range below, so a campaign failure found by
// addsfuzz replays here directly:
//
//	go test ./internal/soundness/ -addsfuzz.seed=4217
//
// The ADDS_FUZZ_SEED environment variable is the CI-friendly spelling;
// the flag wins when both are set.
var fuzzSeed = flag.Int64("addsfuzz.seed", 0, "base seed for the soundness fuzz tests")

func baseSeed(t *testing.T) int64 {
	if *fuzzSeed != 0 {
		return *fuzzSeed
	}
	if env := os.Getenv("ADDS_FUZZ_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("ADDS_FUZZ_SEED: %v", err)
		}
		return v
	}
	return 0
}

// loadGenerated renders and loads one generated program, failing the test
// on any generator regression.
func loadGenerated(t *testing.T, seed int64, pr gen.Profile) (*types.Info, []byte) {
	t.Helper()
	src := gen.Generate(seed, pr).Source()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, src)
	}
	info, errs := types.Check(prog)
	if len(errs) > 0 {
		t.Fatalf("seed %d: generated program does not check: %v\n%s", seed, errs[0], src)
	}
	return info, src
}

// runSoundness executes fuzzed against the given roots and checks every
// observed alias against every oracle — the shared body of the list and
// tree fuzzers, now driven by internal/gen instead of per-test generators.
func runSoundness(t *testing.T, seed int64, pr gen.Profile, build func(h *interp.Heap, run int) *interp.Node) {
	t.Helper()
	info, src := loadGenerated(t, seed, pr)
	fi := info.Func("fuzzed")
	g := norm.Build(fi, info.Env)

	oracles := []alias.Oracle{
		alias.NewGPM(g, info.Env),
		alias.NewClassic(g, info.Env),
		alias.NewConservative(g),
		klimit.Analyze(g, info.Env, 2),
	}

	for run := 0; run < 3; run++ {
		in := interp.New(info.Prog)
		in.MaxSteps = 1 << 16
		tr := &tracer{
			ptrVars:  fi.PointerVars(),
			observed: map[token.Pos]map[[2]string]bool{},
		}
		in.Tracer = tr
		root := build(in.Heap, run)
		if _, err := in.Call("fuzzed", interp.PtrVal(root)); err != nil {
			// Mutations can create cycles whose traversal exhausts the
			// step budget, or dangling NULL derefs the guards missed;
			// partial executions still produced valid observations.
			if !strings.Contains(err.Error(), "step budget") &&
				!strings.Contains(err.Error(), "NULL") {
				t.Fatalf("seed %d: %v\n%s", seed, err, src)
			}
		}
		for pos, pairs := range tr.observed {
			n := nodeAtPos(g, pos)
			if n == nil {
				continue
			}
			for pair := range pairs {
				for _, o := range oracles {
					if !o.MayAlias(n, pair[0], pair[1]) {
						t.Errorf("seed %d run %d: oracle %s misses real alias %s==%s before %s\n%s",
							seed, run, o.Name(), pair[0], pair[1], pos, src)
					}
				}
			}
		}
	}
}

// TestFuzzOracleSoundness generates random pointer-shuffling list programs
// (via internal/gen, the same generator addsfuzz campaigns use), executes
// them, and verifies every dynamically observed alias is admitted by every
// oracle. This covers states the hand-written fixtures cannot: arbitrary
// interleavings of abstraction breaks and repairs.
func TestFuzzOracleSoundness(t *testing.T) {
	const programs = 150
	pr, err := gen.ProfileByName("list")
	if err != nil {
		t.Fatal(err)
	}
	base := baseSeed(t)
	for seed := base; seed < base+programs; seed++ {
		runSoundness(t, seed, pr, func(h *interp.Heap, run int) *interp.Node {
			return structures.TwoWayList(h, nil, 3+run*2)
		})
	}
}

// TestFuzzTreeOracleSoundness is the tree counterpart: combined-group
// (Defs 4.7-4.8) and backward (Def 4.6) rules far beyond the fixtures.
func TestFuzzTreeOracleSoundness(t *testing.T) {
	const programs = 150
	pr, err := gen.ProfileByName("tree")
	if err != nil {
		t.Fatal(err)
	}
	base := baseSeed(t) + 1000
	for seed := base; seed < base+programs; seed++ {
		runSoundness(t, seed, pr, func(h *interp.Heap, run int) *interp.Node {
			return structures.PerfectTree(h, 3+run)
		})
	}
}

// TestFuzzAnalysisTermination stresses the fixed-point machinery with
// larger random programs: the analysis must terminate and never panic.
func TestFuzzAnalysisTermination(t *testing.T) {
	big := gen.Profile{Name: "big-list", Structure: "TwoWayLL", MinStmts: 40, MaxStmts: 40, Mutate: true}
	base := baseSeed(t) + 100
	for seed := base; seed < base+30; seed++ {
		info, _ := loadGenerated(t, seed, big)
		fi := info.Func("fuzzed")
		g := norm.Build(fi, info.Env)
		o := alias.NewGPM(g, info.Env)
		// Exercise loop-carried queries on every loop too.
		for _, l := range g.Loops {
			o.LoopCarried(l, "a", "b")
			o.LoopCarried(l, "b", "b")
		}
	}
}
