// Package soundness cross-validates every static alias oracle against
// ground truth: mini programs run in the interpreter with a tracer that
// records, before each statement, which pointer variables actually point to
// the same node. Each observed alias must be admitted (MayAlias) by every
// oracle at the corresponding program point — the paper's core soundness
// claim for the path matrix ("an empty entry guarantees that the two
// pointers are not aliases").
package soundness

import (
	"math/rand"
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/klimit"
	"repro/internal/interp"
	"repro/internal/norm"
	"repro/internal/source/ast"
	"repro/internal/source/parser"
	"repro/internal/source/token"
	"repro/internal/source/types"
	"repro/internal/structures"
)

// fixture is one program + input setup.
type fixture struct {
	name string
	src  string
	fn   string
	// build returns the arguments for fn given a fresh heap.
	build func(h *interp.Heap, rng *rand.Rand) []interp.Value
}

const twoWayLL = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

const pBinTree = `
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
`

const cirL = `
type CirL [X] {
    int data;
    CirL *next is circular along X;
};
`

func listArg(n int) func(*interp.Heap, *rand.Rand) []interp.Value {
	return func(h *interp.Heap, rng *rand.Rand) []interp.Value {
		return []interp.Value{interp.PtrVal(structures.TwoWayList(h, nil, n))}
	}
}

var fixtures = []fixture{
	{
		name: "shift-origin",
		src: twoWayLL + `
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}`,
		fn:    "shift",
		build: listArg(12),
	},
	{
		name: "reverse-in-place",
		src: twoWayLL + `
void reverse(TwoWayLL *hd) {
    TwoWayLL *prev, *cur, *nxt;
    prev = NULL;
    cur = hd;
    while (cur != NULL) {
        nxt = cur->next;
        cur->next = prev;
        cur->prev = nxt;
        prev = cur;
        cur = nxt;
    }
}`,
		fn:    "reverse",
		build: listArg(9),
	},
	{
		name: "walk-back-and-forth",
		src: twoWayLL + `
void zigzag(TwoWayLL *hd) {
    TwoWayLL *p, *q;
    p = hd;
    while (p->next != NULL) {
        p = p->next;
    }
    q = p;
    while (q != NULL) {
        q->data = q->data + 1;
        q = q->prev;
    }
}`,
		fn:    "zigzag",
		build: listArg(7),
	},
	{
		name: "tree-find",
		src: pBinTree + `
void find(PBinTree *root, int key) {
    PBinTree *c, *last;
    c = root;
    last = NULL;
    while (c != NULL) {
        last = c;
        if (c->data < key) {
            c = c->right;
        } else {
            c = c->left;
        }
    }
}`,
		fn: "find",
		build: func(h *interp.Heap, rng *rand.Rand) []interp.Value {
			keys := make([]int64, 15)
			for i := range keys {
				keys[i] = rng.Int63n(100)
			}
			return []interp.Value{
				interp.PtrVal(structures.BinTree(h, keys)),
				interp.IntVal(rng.Int63n(100)),
			}
		},
	},
	{
		name: "subtree-move",
		src: pBinTree + `
void move(PBinTree *root) {
    PBinTree *dest, *src, *t;
    dest = root->left;
    src = root->right;
    t = src->left;
    dest->left = NULL;
    dest->left = t;
    src->left = NULL;
    if (t != NULL) {
        t->parent = dest;
    }
}`,
		fn: "move",
		build: func(h *interp.Heap, rng *rand.Rand) []interp.Value {
			return []interp.Value{interp.PtrVal(structures.PerfectTree(h, 4))}
		},
	},
	{
		name: "circular-walk",
		src: cirL + `
void walk(CirL *start, int n) {
    CirL *p;
    p = start;
    while (n > 0) {
        p->data = p->data + 1;
        p = p->next;
        n = n - 1;
    }
}`,
		fn: "walk",
		build: func(h *interp.Heap, rng *rand.Rand) []interp.Value {
			return []interp.Value{
				interp.PtrVal(structures.Circular(h, 5)),
				interp.IntVal(13),
			}
		},
	},
	{
		name: "build-and-traverse",
		src: twoWayLL + `
void buildwalk(int n) {
    TwoWayLL *hd, *p, *tmp;
    hd = NULL;
    while (n > 0) {
        tmp = new TwoWayLL;
        tmp->data = n;
        tmp->next = hd;
        if (hd != NULL) {
            hd->prev = tmp;
        }
        hd = tmp;
        n = n - 1;
    }
    p = hd;
    while (p != NULL) {
        p = p->next;
    }
}`,
		fn: "buildwalk",
		build: func(h *interp.Heap, rng *rand.Rand) []interp.Value {
			return []interp.Value{interp.IntVal(8)}
		},
	},
	{
		name: "two-runners",
		src: twoWayLL + `
void race(TwoWayLL *hd) {
    TwoWayLL *slow, *fast;
    slow = hd;
    fast = hd;
    while (fast != NULL && fast->next != NULL) {
        slow = slow->next;
        fast = fast->next->next;
    }
}`,
		fn:    "race",
		build: listArg(11),
	},
}

// tracer records observed aliases keyed by statement position.
type tracer struct {
	ptrVars []string
	// observed[pos] = set of aliased pairs seen before a statement at pos.
	observed map[token.Pos]map[[2]string]bool
}

func (tr *tracer) AtStmt(s ast.Stmt, vars map[string]interp.Value) {
	pos := s.Pos()
	for i, p := range tr.ptrVars {
		vp, ok := vars[p]
		if !ok || !vp.IsPtr || vp.Ptr == nil {
			continue
		}
		for _, q := range tr.ptrVars[i+1:] {
			vq, ok := vars[q]
			if !ok || !vq.IsPtr || vq.Ptr == nil {
				continue
			}
			if vp.Ptr == vq.Ptr {
				if tr.observed[pos] == nil {
					tr.observed[pos] = map[[2]string]bool{}
				}
				tr.observed[pos][[2]string{p, q}] = true
			}
		}
	}
}

// nodesAtPos returns the earliest norm CFG node lowered from a statement at
// the position (the point "before the statement").
func nodeAtPos(g *norm.Graph, pos token.Pos) *norm.Node {
	for _, n := range g.Nodes {
		if n.Kind == norm.NodeStmt && n.Stmt.Pos == pos {
			return n
		}
	}
	return nil
}

func TestOraclesSoundAgainstExecution(t *testing.T) {
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			prog := parser.MustParse(fx.src)
			info := types.MustCheck(prog)
			fi := info.Func(fx.fn)
			g := norm.Build(fi, info.Env)

			oracles := []alias.Oracle{
				alias.NewGPM(g, info.Env),
				alias.NewClassic(g, info.Env),
				alias.NewConservative(g),
				klimit.Analyze(g, info.Env, 2),
			}

			for seed := int64(1); seed <= 5; seed++ {
				in := interp.New(prog)
				tr := &tracer{
					ptrVars:  fi.PointerVars(),
					observed: map[token.Pos]map[[2]string]bool{},
				}
				in.Tracer = tr
				rng := rand.New(rand.NewSource(seed))
				args := fx.build(in.Heap, rng)
				if _, err := in.Call(fx.fn, args...); err != nil {
					t.Fatalf("seed %d: execution failed: %v", seed, err)
				}

				for pos, pairs := range tr.observed {
					n := nodeAtPos(g, pos)
					if n == nil {
						continue // statement with no pointer-relevant lowering
					}
					for pair := range pairs {
						for _, o := range oracles {
							if !o.MayAlias(n, pair[0], pair[1]) {
								t.Errorf("seed %d: oracle %s misses real alias %s==%s before %s",
									seed, o.Name(), pair[0], pair[1], pos)
							}
						}
					}
				}
			}
		})
	}
}

// TestPrecisionOrdering documents the expected precision relationships on
// the shift loop: ADDS+GPM is strictly more precise than classic, which is
// at most as precise as conservative.
func TestPrecisionOrdering(t *testing.T) {
	fx := fixtures[0]
	prog := parser.MustParse(fx.src)
	info := types.MustCheck(prog)
	fi := info.Func(fx.fn)
	g := norm.Build(fi, info.Env)

	gpm := alias.NewGPM(g, info.Env)
	classic := alias.NewClassic(g, info.Env)
	cons := alias.NewConservative(g)

	falseCount := func(o alias.Oracle) int {
		c := 0
		vars := fi.PointerVars()
		for _, n := range g.Nodes {
			if n.Kind != norm.NodeStmt {
				continue
			}
			for i, p := range vars {
				for _, q := range vars[i+1:] {
					if !o.MayAlias(n, p, q) {
						c++
					}
				}
			}
		}
		return c
	}
	ng, nc, nv := falseCount(gpm), falseCount(classic), falseCount(cons)
	if !(ng > nc) {
		t.Errorf("GPM (%d no-alias answers) should beat classic (%d)", ng, nc)
	}
	if nc < nv {
		t.Errorf("classic (%d) should not be worse than conservative (%d)", nc, nv)
	}
}
