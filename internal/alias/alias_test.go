package alias

import (
	"testing"

	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const twoWayLL = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

const shiftSrc = twoWayLL + `
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
`

func buildGraph(t *testing.T, src, fn string) (*norm.Graph, *types.Info) {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("func %s missing", fn)
	}
	return norm.Build(fi, info.Env), info
}

func TestConservativeOracle(t *testing.T) {
	g, _ := buildGraph(t, shiftSrc, "shift")
	o := NewConservative(g)
	if o.Name() != "conservative" {
		t.Errorf("name = %q", o.Name())
	}
	n := g.Entry
	if !o.MayAlias(n, "hd", "p") {
		t.Error("conservative: same-type pointers may alias")
	}
	if o.MustAlias(n, "hd", "p") {
		t.Error("conservative: never must-alias distinct vars")
	}
	if !o.MustAlias(n, "hd", "hd") {
		t.Error("reflexive must")
	}
	if !o.LoopCarried(g.Loops[0], "p", "p") {
		t.Error("conservative: carried self-alias possible")
	}
	if !o.Valid(n) {
		t.Error("conservative oracle is always valid")
	}
}

func TestGPMOracleShiftLoop(t *testing.T) {
	g, info := buildGraph(t, shiftSrc, "shift")
	o := NewGPM(g, info.Env)
	loop := g.Loops[0]
	head := loop.Branch.Succs[0]

	if o.MayAlias(head, "hd", "p") {
		t.Error("gpm: hd and p must not alias inside the loop")
	}
	if o.LoopCarried(loop, "p", "p") {
		t.Error("gpm: p advances every iteration (next is uniquely forward)")
	}
	if o.LoopCarried(loop, "p", "hd") {
		t.Error("gpm: p never reaches back to hd")
	}
	if !o.LoopCarried(loop, "hd", "hd") {
		t.Error("gpm: hd is loop-invariant, so it aliases itself across iterations")
	}
	if !o.Valid(head) {
		t.Error("gpm: shift loop keeps the abstraction valid")
	}
	if o.Result() == nil {
		t.Error("Result accessor")
	}
}

func TestClassicOracleConservativeOnSameLoop(t *testing.T) {
	g, info := buildGraph(t, shiftSrc, "shift")
	o := NewClassic(g, info.Env)
	loop := g.Loops[0]
	head := loop.Branch.Succs[0]
	if !o.MayAlias(head, "hd", "p") {
		t.Error("classic (no ADDS): hd and p are possible aliases")
	}
	if !o.LoopCarried(loop, "p", "p") {
		t.Error("classic: cannot prove the loop advances")
	}
	if o.Name() != "classic-pm" {
		t.Errorf("name = %q", o.Name())
	}
}

func TestOracleContrastIsTheHeadlineResult(t *testing.T) {
	// The paper's core claim in one test: the same program, the same
	// engine; with ADDS the false loop-carried dependence disappears.
	g, info := buildGraph(t, shiftSrc, "shift")
	adds := NewGPM(g, info.Env)
	classic := NewClassic(g, info.Env)
	cons := NewConservative(g)
	loop := g.Loops[0]

	carried := func(o Oracle) bool { return o.LoopCarried(loop, "p", "p") }
	if carried(adds) {
		t.Error("adds+gpm should prove iterations independent")
	}
	if !carried(classic) || !carried(cons) {
		t.Error("baselines should both fail to prove independence")
	}
}

func TestGPMIterationMatrixCached(t *testing.T) {
	g, info := buildGraph(t, shiftSrc, "shift")
	o := NewGPM(g, info.Env)
	loop := g.Loops[0]
	o.LoopCarried(loop, "p", "p")
	if len(o.iters) != 1 {
		t.Error("iteration matrix should be cached")
	}
	o.LoopCarried(loop, "hd", "p")
	if len(o.iters) != 1 {
		t.Error("cache reused")
	}
}

func TestDifferentRecordTypesNeverAliasConservative(t *testing.T) {
	src := twoWayLL + `
type Other [Y] {
    Other *kid is forward along Y;
};
void f(TwoWayLL *a, Other *b) { a = a; }
`
	g, _ := buildGraph(t, src, "f")
	o := NewConservative(g)
	if o.MayAlias(g.Entry, "a", "b") {
		t.Error("different record types cannot alias even conservatively")
	}
}
