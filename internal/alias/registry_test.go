package alias_test

// The registry tests live in an external test package that imports both
// subpackage registrants, so they see the registry exactly as the tools do
// (every oracle registered).

import (
	"context"
	"strings"
	"testing"

	"repro/internal/alias"
	_ "repro/internal/alias/klimit"
	_ "repro/internal/alias/smg"
	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

func TestRegistryNamesOrdered(t *testing.T) {
	got := alias.Names()
	want := []string{"gpm", "classic", "conservative", "klimit", "smg"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	for spelling, canonical := range map[string]string{
		"":             "gpm",
		"gpm":          "gpm",
		"GPM":          "gpm",
		"classic":      "classic",
		"conservative": "conservative",
		"klimit":       "klimit",
		"klimited":     "klimit", // legacy alias
		"smg":          "smg",
	} {
		f, err := alias.Lookup(spelling)
		if err != nil {
			t.Errorf("Lookup(%q): %v", spelling, err)
			continue
		}
		if f.Name != canonical {
			t.Errorf("Lookup(%q) = %q, want %q", spelling, f.Name, canonical)
		}
	}
	_, err := alias.Lookup("psychic")
	if err == nil {
		t.Fatal("unknown oracle should error")
	}
	for _, name := range alias.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error should enumerate %q: %v", name, err)
		}
	}
}

func TestRegistryBuildsEveryOracle(t *testing.T) {
	src := `
type List [X] {
    int data;
    List *next is uniquely forward along X;
};
void f(List *p) {
    List *q;
    q = p;
}
`
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func("f")
	g := norm.Build(fi, info.Env)
	for _, f := range alias.Factories() {
		o := f.Build(context.Background(), g, alias.BuildOpts{Env: info.Env, Info: info, K: 2})
		if o == nil {
			t.Fatalf("%s: Build returned nil", f.Name)
		}
		if o.Name() == "" {
			t.Fatalf("%s: empty oracle name", f.Name)
		}
		// A fresh copy of an unknown input is an alias under every oracle.
		if !o.MayAlias(g.Exit, "p", "q") {
			t.Errorf("%s: p and q must may-alias", f.Name)
		}
	}
}
