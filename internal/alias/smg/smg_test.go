package smg

import (
	"testing"

	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const listDecl = `
type List [X] {
    int data;
    List *next is uniquely forward along X;
};
`

func analyze(t *testing.T, src, fn string) (*Analysis, *norm.Graph) {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("func %s missing", fn)
	}
	g := norm.Build(fi, info.Env)
	return Analyze(g, info.Env), g
}

const buildTraverse = listDecl + `
void f(int n) {
    List *hd, *p, *tmp;
    hd = NULL;
    while (n > 0) {
        tmp = new List;
        tmp->next = hd;
        hd = tmp;
        n = n - 1;
    }
    p = hd;
    while (p != NULL) {
        p = p->next;
    }
}
`

func TestLoopBuildFoldsSegment(t *testing.T) {
	a, g := analyze(t, buildTraverse, "f")
	if a.SegmentsFolded == 0 {
		t.Errorf("a loop-built list should fold into a segment:\n%s", a.stateAt(g.Exit))
	}
	st := a.stateAt(g.Exit)
	seg := false
	for n, k := range st.kind {
		if k == kindSeg {
			seg = true
			_ = n
		}
	}
	if !seg {
		t.Errorf("exit state should contain a segment node:\n%s", st)
	}
}

func TestFreshNodesDistinct(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f() {
    List *a, *b;
    a = new List;
    b = new List;
}`, "f")
	if a.MayAlias(g.Exit, "a", "b") {
		t.Error("two straight-line allocations are distinct regions")
	}
	if !a.MustAlias(g.Exit, "a", "a") {
		t.Error("reflexive must-alias")
	}
}

func TestCopyIsMustAlias(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f() {
    List *a, *b;
    a = new List;
    b = a;
}`, "f")
	if !a.MustAlias(g.Exit, "a", "b") {
		t.Errorf("copy of a fresh region is a must-alias:\n%s", a.stateAt(g.Exit))
	}
}

func TestStrongUpdate(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f() {
    List *a, *b, *c, *x;
    a = new List;
    b = new List;
    c = new List;
    a->next = b;
    a->next = c;
    x = a->next;
}`, "f")
	if a.MayAlias(g.Exit, "x", "b") {
		t.Error("strong update must remove the overwritten edge to b")
	}
	if !a.MustAlias(g.Exit, "x", "c") {
		t.Error("singleton region target gives must-alias")
	}
}

func TestUnknownParamsAlias(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f(List *a, List *b) {
    a = a;
}`, "f")
	if !a.MayAlias(g.Exit, "a", "b") {
		t.Error("unknown inputs of one type must be possible aliases")
	}
	if a.MustAlias(g.Exit, "a", "b") {
		t.Error("external regions never justify must-alias")
	}
}

func TestUnknownTraversalStaysUnknown(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f(List *hd) {
    List *p;
    p = hd->next;
}`, "f")
	if !a.MayAlias(g.Exit, "hd", "p") {
		t.Error("hd and hd->next may alias inside the external region")
	}
}

// Materialization: writing through a pointer whose only target is a segment
// carves out a concrete region, and the write is strong on it. The segment
// is manufactured deterministically: a two-node run whose tail loses its
// variable reference folds at the next control-flow join.
func TestMaterializationOnStrongUpdate(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f(int c) {
    List *a, *b, *x;
    a = new List;
    b = new List;
    a->next = b;
    b = NULL;
    if (c > 0) {
        c = 1;
    } else {
        c = 2;
    }
    a->next = NULL;
    x = a->next;
}`, "f")
	if a.SegmentsFolded == 0 {
		t.Fatalf("the unreferenced run tail should fold at the join:\n%s", a.stateAt(g.Exit))
	}
	if a.Materializations == 0 {
		t.Fatalf("store through the folded segment should materialize:\n%s", a.stateAt(g.Exit))
	}
	// The materialized region took the strong update: a->next is nil, so x
	// can alias nothing.
	if a.MayAlias(g.Exit, "x", "a") {
		t.Errorf("materialized strong update lost:\n%s", a.stateAt(g.Exit))
	}
}

func TestBranchJoin(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f(int c) {
    List *a, *b, *p;
    a = new List;
    b = new List;
    if (c > 0) {
        p = a;
    } else {
        p = b;
    }
}`, "f")
	if !a.MayAlias(g.Exit, "p", "a") || !a.MayAlias(g.Exit, "p", "b") {
		t.Error("join must union points-to sets")
	}
	if a.MustAlias(g.Exit, "p", "a") {
		t.Error("p is not definitely a")
	}
}

func TestNilRefinement(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f(List *p) {
    List *q;
    q = p;
    if (q == NULL) {
        q = q;
    }
}`, "f")
	for _, n := range g.Nodes {
		if n.Kind != norm.NodeBranch || n.Cond == nil || n.Cond.Kind != norm.CondNilEQ {
			continue
		}
		taken := a.Before[n.Succs[0].ID]
		if taken == nil {
			continue
		}
		for x := range taken.vars["q"] {
			if x != nilLabel {
				t.Errorf("q must be nil-only on the NULL edge, has %q", x)
			}
		}
	}
}

// A loop that advances through distinct fresh regions does not loop-carry
// against the anchored head — the precision GPM gets from uniquely-forward,
// recovered here from region distinctness plus canonical representatives.
func TestLoopCarriedAdvance(t *testing.T) {
	a, g := analyze(t, buildTraverse, "f")
	// Traversal loop: p = p->next. p against hd across iterations: hd stays
	// at the head, p advances past it; conservatively they may still carry
	// (the fold merges the run into one segment), but p with itself via a
	// cyclic-free advance through the *external* region must stay possible.
	loop := g.Loops[1]
	// The folded segment makes p-vs-p a may: both iterations sit in the
	// same segment node. That is the documented precision delta vs GPM;
	// what must hold is soundness, not the refutation.
	_ = a.LoopCarried(loop, "p", "p")
}

// Opaque calls havoc what they can reach, but cannot move caller locals.
func TestCallHavocKeepsLocalBinding(t *testing.T) {
	a, g := analyze(t, listDecl+`
void cb(List *x) {
    x = x;
}
void f() {
    List *a, *b;
    a = new List;
    b = a;
    cb(a);
}`, "f")
	if !a.MustAlias(g.Exit, "a", "b") {
		t.Errorf("a call cannot change which object a local points at:\n%s", a.stateAt(g.Exit))
	}
}

// After a call, a reached node's fields may point to callee allocations
// (the external region) — dereferences must admit them.
func TestCallHavocOpensFields(t *testing.T) {
	a, g := analyze(t, listDecl+`
void cb(List *x) {
    x = x;
}
void f(List *q) {
    List *a, *y;
    a = new List;
    cb(a);
    y = a->next;
}`, "f")
	if !a.MayAlias(g.Exit, "y", "q") {
		t.Errorf("after havoc a->next may be anything of the type:\n%s", a.stateAt(g.Exit))
	}
}

func TestStatsAccumulate(t *testing.T) {
	before := ReadStats()
	analyze(t, buildTraverse, "f")
	after := ReadStats()
	if after.Analyses <= before.Analyses {
		t.Error("analyses counter did not move")
	}
	if after.Nodes <= before.Nodes {
		t.Error("nodes counter did not move")
	}
	if after.Segments <= before.Segments {
		t.Error("segments counter did not move")
	}
}

// Shrunk from the list-profile differential campaign (seed 474): `c->next`
// loads NULL from a fresh node, so the `a != NULL` branch is infeasible.
// refine once propagated that contradiction as an ordinary state whose
// *other* variables kept their pre-branch bindings; the join resurrected
// the pre-load value of a and the guard then pruned the honest {nil},
// leaving a spurious must-alias a==c inside the dead branch.
func TestInfeasibleBranchIsBottom(t *testing.T) {
	a, g := analyze(t, `
type TwoWay [X] {
    int data;
    TwoWay *next is uniquely forward along X;
    TwoWay *prev is backward along X;
};
void f(TwoWay *b) {
    TwoWay *a, *c;
    a = new TwoWay;
    c = a;
    if (c != NULL) {
        a = c->next;
    }
    if (a != NULL) {
        a->prev = b;
    }
}`, "f")
	checked := false
	for _, n := range g.Nodes {
		if n.Kind != norm.NodeStmt || n.Stmt == nil || n.Stmt.Op != norm.StorePtr {
			continue
		}
		checked = true
		if a.MustAlias(n, "a", "c") {
			t.Errorf("must-alias(a,c) in a dead branch is a stale-value leak:\n%s", a.stateAt(n))
		}
		if a.Before[n.ID] != nil {
			t.Errorf("the a != NULL branch is infeasible, want unreachable, got:\n%s", a.Before[n.ID])
		}
	}
	if !checked {
		t.Fatal("no StorePtr node found")
	}
}

// The sibling direction: a variable holding only non-nil values makes the
// == NULL edge infeasible, and the values assigned on feasible paths must
// not be diluted by the dead edge's bindings.
func TestNilEqOnNonNilIsBottom(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f() {
    List *a, *b;
    a = new List;
    b = new List;
    if (a == NULL) {
        b = a;
    }
}`, "f")
	if !a.MustAlias(g.Exit, "b", "b") {
		t.Fatal("reflexive must-alias")
	}
	if a.MayAlias(g.Exit, "a", "b") {
		t.Errorf("the a == NULL branch is dead; b stays the second allocation:\n%s", a.stateAt(g.Exit))
	}
}
