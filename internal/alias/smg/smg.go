// Package smg implements an SMG-lite alias oracle in the style of the
// Predator shape analyser ("Algorithmic Details behind the Predator Shape
// Analyser"): the abstract heap is a symbolic memory graph whose nodes are
// concrete regions plus segment summary nodes, connected by has-value edges
// labelled with record field names.
//
// The domain is deliberately small but keeps the two moves that make SMGs a
// genuinely different abstraction from path matrices and from plain
// k-limiting:
//
//   - Materialization: a strong update through a pointer whose only target
//     is a segment first carves a fresh concrete region out of the segment
//     (the one element the pointer denotes), redirects the pointer to it,
//     and then updates that region strongly. Everything else that could
//     reach the segment may also reach the carved-out element, so the
//     partition of concrete objects among abstract nodes is preserved.
//   - Folding: at control-flow joins, an uninterrupted run — a node whose
//     only incoming reference is a single has-value edge — is absorbed into
//     its predecessor, which becomes a segment (a list segment when the run
//     follows one field, a tree segment when several fields fold into it).
//
// Distinct abstract nodes always denote disjoint sets of concrete objects,
// which is what makes the oracle's answers cheap to read off the final
// graph: MayAlias is points-to-set intersection, MustAlias is "both sets
// are the same singleton concrete region". Loop-carried queries compare
// canonical representatives (a union-find over every fold/materialization
// this analysis performed), since an object's node can be renamed by those
// operations between iterations.
//
// Unknown inputs are per-type external regions closed over their fields —
// the same "assume the worst about callers" boundary the k-limited oracle
// uses — and opaque calls havoc everything reachable from their arguments.
package smg

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/shape"
	"repro/internal/source/types"
)

// nilLabel is the distinguished "points nowhere" value inside points-to
// sets. It is not a node: it never has edges, a kind, or a type.
const nilLabel = "nil"

// allocCap bounds how many distinct regions one allocation site
// materializes before further allocations merge into the site's segment.
const allocCap = 3

// matCap bounds how many regions may be carved out of one segment label,
// and materialization depth is bounded too; both keep the label universe
// (and with it the abstract state space) finite.
const matCap = 3

type nodeKind uint8

const (
	// kindRegion is a concrete region: exactly one object per concrete
	// state, so strong updates and must-alias facts are sound on it.
	kindRegion nodeKind = iota
	// kindSeg is a segment summary node abstracting one or more objects of
	// a folded run (or the overflow of an allocation site).
	kindSeg
	// kindExt is the per-type external region standing for every object
	// the function did not allocate itself.
	kindExt
)

// valSet is a set of abstract values: node labels and possibly nilLabel.
type valSet map[string]bool

func (s valSet) clone() valSet {
	out := make(valSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s valSet) sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s valSet) equal(o valSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// State is one symbolic memory graph: variable bindings plus has-value
// edges between nodes.
type State struct {
	vars   map[string]valSet            // variable -> values
	edges  map[string]map[string]valSet // node -> field -> values
	kind   map[string]nodeKind          // node -> kind
	typeOf map[string]string            // node -> record type name
}

// NewState returns the empty graph.
func NewState() *State {
	return &State{
		vars:   map[string]valSet{},
		edges:  map[string]map[string]valSet{},
		kind:   map[string]nodeKind{},
		typeOf: map[string]string{},
	}
}

// Clone deep-copies the state.
func (g *State) Clone() *State {
	out := NewState()
	for v, s := range g.vars {
		out.vars[v] = s.clone()
	}
	for n, rows := range g.edges {
		nr := make(map[string]valSet, len(rows))
		for f, s := range rows {
			nr[f] = s.clone()
		}
		out.edges[n] = nr
	}
	for n, k := range g.kind {
		out.kind[n] = k
	}
	for n, t := range g.typeOf {
		out.typeOf[n] = t
	}
	return out
}

func (g *State) addEdge(n, f, t string) {
	rows := g.edges[n]
	if rows == nil {
		rows = map[string]valSet{}
		g.edges[n] = rows
	}
	s := rows[f]
	if s == nil {
		s = valSet{}
		rows[f] = s
	}
	s[t] = true
}

// join unions two states pointwise. Kinds and types of a shared label
// always agree: a label's kind is fixed by the construction that names it.
func join(a, b *State) *State {
	out := a.Clone()
	for v, s := range b.vars {
		if out.vars[v] == nil {
			out.vars[v] = valSet{}
		}
		for n := range s {
			out.vars[v][n] = true
		}
	}
	for n, rows := range b.edges {
		for f, s := range rows {
			for t := range s {
				out.addEdge(n, f, t)
			}
		}
	}
	for n, k := range b.kind {
		out.kind[n] = k
	}
	for n, t := range b.typeOf {
		out.typeOf[n] = t
	}
	return out
}

// equal compares states for fixed-point detection.
func (g *State) equal(o *State) bool {
	if len(g.vars) != len(o.vars) || len(g.kind) != len(o.kind) ||
		len(g.typeOf) != len(o.typeOf) {
		return false
	}
	for v, s := range g.vars {
		if !s.equal(o.vars[v]) {
			return false
		}
	}
	for n, k := range g.kind {
		ok, present := o.kind[n]
		if !present || ok != k {
			return false
		}
	}
	for n, rows := range g.edges {
		orows := o.edges[n]
		for f, s := range rows {
			if !s.equal(orows[f]) {
				return false
			}
		}
	}
	for n, rows := range o.edges {
		grows := g.edges[n]
		for f, s := range rows {
			if len(grows[f]) != len(s) {
				return false
			}
		}
	}
	return true
}

// String renders the graph for diagnostics.
func (g *State) String() string {
	var b strings.Builder
	vars := make([]string, 0, len(g.vars))
	for v := range g.vars {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		fmt.Fprintf(&b, "%s -> {%s}\n", v, strings.Join(g.vars[v].sorted(), ", "))
	}
	nodes := make([]string, 0, len(g.kind))
	for n := range g.kind {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		tag := ""
		switch g.kind[n] {
		case kindSeg:
			tag = " (seg)"
		case kindExt:
			tag = " (ext)"
		}
		fields := make([]string, 0, len(g.edges[n]))
		for f := range g.edges[n] {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			fmt.Fprintf(&b, "%s%s .%s -> {%s}\n", n, tag, f,
				strings.Join(g.edges[n][f].sorted(), ", "))
		}
	}
	return b.String()
}

// Analysis is the SMG analysis result for one function.
type Analysis struct {
	Graph  *norm.Graph
	Env    *shape.Env
	Before []*State // per CFG node; nil = unreachable

	// canon is a union-find over node labels: every rename a fold or a
	// materialization performs unions the two labels, so an object's
	// representative is stable across the whole analysis modulo find().
	// LoopCarried compares representatives for exactly this reason.
	canon map[string]string

	// bailed is the sound escape hatch: if the fixpoint failed to converge
	// within the step budget (never observed; strong updates make the
	// transfer non-monotone in principle), every query degrades to the
	// conservative answer.
	bailed bool

	// Per-analysis counter snapshots (also accumulated process-wide).
	NodesCreated     int
	SegmentsFolded   int
	Materializations int
}

// Analyze runs the SMG analysis. See AnalyzeCtx.
func Analyze(g *norm.Graph, env *shape.Env) *Analysis {
	return AnalyzeCtx(context.Background(), g, env)
}

// AnalyzeCtx runs the SMG analysis over one function. When the context
// carries a tracer the run lands as an "smg" span whose attributes report
// the engine counters (nodes created, segments folded, materializations).
func AnalyzeCtx(ctx context.Context, g *norm.Graph, env *shape.Env) *Analysis {
	_, span := obs.Start(ctx, "smg")
	defer span.End()
	span.SetAttr("fn", g.Fn.Decl.Name)

	a := &Analysis{
		Graph:  g,
		Env:    env,
		Before: make([]*State, len(g.Nodes)),
		canon:  map[string]string{},
	}

	entry := NewState()
	for _, p := range g.Fn.Decl.Params {
		if !p.Pointer {
			continue
		}
		u := a.ensureExt(entry, p.TypeName)
		entry.vars[p.Name] = valSet{u: true, nilLabel: true}
	}

	out := make([][]*State, len(g.Nodes))
	upd := make([][]int, len(g.Nodes))
	for i, n := range g.Nodes {
		out[i] = make([]*State, len(n.Succs))
		upd[i] = make([]int, len(n.Succs))
	}
	// widenAt is the per-edge update count after which new out-states are
	// joined with the old ones, forcing monotone growth (and with the
	// finite label universe, convergence).
	const widenAt = 16
	steps, maxSteps := 0, 4096+512*len(g.Nodes)

	work := []*norm.Node{g.Entry}
	inWork := map[int]bool{g.Entry.ID: true}
	for len(work) > 0 {
		if steps++; steps > maxSteps {
			a.bailed = true
			break
		}
		n := work[0]
		work = work[1:]
		inWork[n.ID] = false

		var before *State
		if n == g.Entry {
			before = entry.Clone()
		} else {
			joins := 0
			for _, p := range n.Preds {
				for si, s := range p.Succs {
					if s != n || out[p.ID][si] == nil {
						continue
					}
					if before == nil {
						before = out[p.ID][si].Clone()
					} else {
						before = join(before, out[p.ID][si])
					}
					joins++
				}
			}
			if before == nil {
				continue
			}
			if joins > 1 {
				// Joins are where runs appear (a loop's back edge merging
				// the grown list into the head state): garbage-collect,
				// then fold uninterrupted runs into segments.
				a.gc(before)
				a.fold(before)
			}
		}
		a.Before[n.ID] = before
		after := before.Clone()
		if n.Kind == norm.NodeStmt {
			a.apply(after, n)
		}
		for si, succ := range n.Succs {
			st := after
			if n.Kind == norm.NodeBranch && n.Cond != nil {
				st = refine(after, n.Cond, si == 0)
				if st == nil {
					// Infeasible edge: nothing flows to this successor.
					// An earlier, coarser out-state may linger from a
					// previous iteration; keeping it only over-approximates.
					continue
				}
			}
			if out[n.ID][si] != nil && out[n.ID][si].equal(st) {
				continue
			}
			if upd[n.ID][si]++; upd[n.ID][si] > widenAt && out[n.ID][si] != nil {
				st = join(out[n.ID][si], st)
				if out[n.ID][si].equal(st) {
					continue
				}
			}
			out[n.ID][si] = st
			if !inWork[succ.ID] {
				work = append(work, succ)
				inWork[succ.ID] = true
			}
		}
	}

	stats.analyses.Add(1)
	stats.nodes.Add(uint64(a.NodesCreated))
	stats.folds.Add(uint64(a.SegmentsFolded))
	stats.mats.Add(uint64(a.Materializations))
	span.SetAttr("nodes", a.NodesCreated)
	span.SetAttr("segments", a.SegmentsFolded)
	span.SetAttr("materializations", a.Materializations)
	return a
}

// newNode installs a node with every declared pointer field nil-initialized
// (mini's new zeroes records).
func (a *Analysis) newNode(g *State, label string, k nodeKind, typeName string) {
	g.kind[label] = k
	g.typeOf[label] = typeName
	rows := map[string]valSet{}
	if t := a.Env.Type(typeName); t != nil {
		for _, f := range t.Fields {
			rows[f.Name] = valSet{nilLabel: true}
		}
	}
	g.edges[label] = rows
	a.NodesCreated++
}

// ensureExt returns the per-type external region, creating it (closed over
// its fields: an unknown object's fields point to unknown objects or nil)
// on first use.
func (a *Analysis) ensureExt(g *State, typeName string) string {
	label := "ext:" + typeName
	if _, ok := g.kind[label]; ok {
		return label
	}
	g.kind[label] = kindExt
	g.typeOf[label] = typeName
	g.edges[label] = map[string]valSet{}
	a.NodesCreated++
	if t := a.Env.Type(typeName); t != nil {
		for _, f := range t.Fields {
			target := a.ensureExt(g, f.Target)
			g.edges[label][f.Name] = valSet{target: true, nilLabel: true}
		}
	}
	return label
}

// refine narrows the state along one branch edge. A nil result means the
// edge is infeasible: the condition contradicts everything the tracked
// variable could hold, so no concrete state flows there. Bottom must not
// be propagated as an ordinary state — every *other* variable still
// carries its pre-branch binding, and letting those stale values reach a
// join smuggles dead-path facts past the guard (a fresh node's NULL field
// pruned by `!= NULL` would resurrect as the pre-load value and turn
// into a spurious must-alias).
func refine(g *State, c *norm.Cond, taken bool) *State {
	kind := c.Kind
	if !taken {
		switch kind {
		case norm.CondNilEQ:
			kind = norm.CondNilNE
		case norm.CondNilNE:
			kind = norm.CondNilEQ
		default:
			return g
		}
	}
	s, tracked := g.vars[c.Var]
	switch kind {
	case norm.CondNilEQ:
		if tracked && !s[nilLabel] {
			return nil
		}
		out := g.Clone()
		out.vars[c.Var] = valSet{nilLabel: true}
		return out
	case norm.CondNilNE:
		if !tracked {
			// Untracked means "anything", which includes non-nil values;
			// there is nothing to narrow.
			return g
		}
		ns := s.clone()
		delete(ns, nilLabel)
		if len(ns) == 0 {
			return nil
		}
		out := g.Clone()
		out.vars[c.Var] = ns
		return out
	}
	return g
}

func (a *Analysis) apply(g *State, n *norm.Node) {
	s := n.Stmt
	switch s.Op {
	case norm.Assign:
		g.vars[s.Dst] = g.vars[s.Src].clone()
	case norm.AssignNil:
		g.vars[s.Dst] = valSet{nilLabel: true}
	case norm.AssignNew:
		g.vars[s.Dst] = valSet{a.allocate(g, n.ID, s.TypeName): true}
	case norm.Deref:
		g.vars[s.Dst] = a.targets(g, g.vars[s.Src], s.Field)
	case norm.StorePtr:
		a.store(g, s)
	case norm.Free:
		// Conservative no-op: the variable keeps its targets, so a
		// dangling pointer still admits every alias it admitted before.
	case norm.Call:
		a.havoc(g, s.Args)
	}
}

// targets unions the field's has-value edges over every non-nil base.
func (a *Analysis) targets(g *State, bases valSet, field string) valSet {
	out := valSet{}
	for b := range bases {
		if b == nilLabel {
			continue
		}
		for t := range g.edges[b][field] {
			out[t] = true
		}
	}
	return out
}

// allocate returns the node for an allocation site: the first allocCap
// executions materialize distinct regions s<site>.<i>; beyond that the
// per-site segment absorbs them (its fields weakly gain nil, the new
// object's initial value).
func (a *Analysis) allocate(g *State, site int, typeName string) string {
	for i := 0; i < allocCap; i++ {
		label := fmt.Sprintf("s%d.%d", site, i)
		if _, ok := g.kind[label]; !ok {
			a.newNode(g, label, kindRegion, typeName)
			return label
		}
	}
	label := fmt.Sprintf("s%d.sum", site)
	if _, ok := g.kind[label]; !ok {
		a.newNode(g, label, kindSeg, typeName)
	} else if t := a.Env.Type(typeName); t != nil {
		for _, f := range t.Fields {
			g.addEdge(label, f.Name, nilLabel)
		}
	}
	return label
}

func (a *Analysis) store(g *State, s *norm.Stmt) {
	var vals valSet
	if s.Src != "" {
		vals = g.vars[s.Src].clone()
	} else {
		vals = valSet{nilLabel: true}
	}
	var bases []string
	for b := range g.vars[s.Base] {
		if b != nilLabel {
			bases = append(bases, b)
		}
	}
	if len(bases) == 1 {
		b := bases[0]
		switch g.kind[b] {
		case kindRegion:
			// Strong update: the unique concrete region is known.
			if g.edges[b] == nil {
				g.edges[b] = map[string]valSet{}
			}
			g.edges[b][s.Field] = vals
			return
		case kindSeg:
			// Materialize the one element the pointer denotes, then
			// update it strongly.
			if m := a.materialize(g, b); m != "" {
				g.vars[s.Base] = valSet{m: true}
				g.edges[m][s.Field] = vals
				return
			}
		}
	}
	// Weak update: add edges from every possible base.
	for _, b := range bases {
		for t := range vals {
			g.addEdge(b, s.Field, t)
		}
	}
}

// materialize carves a fresh concrete region out of a segment: the carved
// region copies the segment's has-value edges (run-internal links may now
// also reach the new region), and every other reference that could denote
// the segment's elements may denote the carved one too — so the partition
// of concrete objects among nodes is preserved, just refined. Returns ""
// when the materialization budget for this segment is exhausted (the
// caller falls back to a weak update).
func (a *Analysis) materialize(g *State, seg string) string {
	if strings.Count(seg, "!m") >= 2 {
		return ""
	}
	var m string
	for i := 0; ; i++ {
		if i >= matCap {
			return ""
		}
		cand := fmt.Sprintf("%s!m%d", seg, i)
		if _, ok := g.kind[cand]; !ok {
			m = cand
			break
		}
	}
	g.kind[m] = kindRegion
	g.typeOf[m] = g.typeOf[seg]
	rows := map[string]valSet{}
	for f, s := range g.edges[seg] {
		ns := s.clone()
		if ns[seg] {
			ns[m] = true
		}
		rows[f] = ns
	}
	g.edges[m] = rows
	for _, s := range g.vars {
		if s[seg] {
			s[m] = true
		}
	}
	for n, nrows := range g.edges {
		if n == m {
			continue
		}
		for _, s := range nrows {
			if s[seg] {
				s[m] = true
			}
		}
	}
	a.union(m, seg)
	a.NodesCreated++
	a.Materializations++
	return m
}

// havoc models an opaque call: everything reachable from the arguments may
// be rewired by the callee — any reached field may now point to any
// reachable object of the field's type, to a callee-allocated object (the
// external region), or to nil. Variable bindings and node kinds survive: a
// callee cannot change which object a caller-local points at.
func (a *Analysis) havoc(g *State, args []string) {
	reach := map[string]bool{}
	var stack []string
	add := func(n string) {
		if n != nilLabel && !reach[n] {
			reach[n] = true
			stack = append(stack, n)
		}
	}
	for _, arg := range args {
		for n := range g.vars[arg] {
			add(n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, set := range g.edges[n] {
			for t := range set {
				add(t)
			}
		}
	}
	// The callee can also link its own allocations to reached objects, so
	// the external regions of every reached field type join the pool that
	// gets fully connected.
	pool := make([]string, 0, len(reach))
	for n := range reach {
		pool = append(pool, n)
	}
	for i := 0; i < len(pool); i++ {
		t := a.Env.Type(g.typeOf[pool[i]])
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			ext := a.ensureExt(g, f.Target)
			if !reach[ext] {
				reach[ext] = true
				pool = append(pool, ext)
			}
		}
	}
	for _, n := range pool {
		t := a.Env.Type(g.typeOf[n])
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			g.addEdge(n, f.Name, nilLabel)
			for _, m := range pool {
				if g.typeOf[m] == f.Target {
					g.addEdge(n, f.Name, m)
				}
			}
		}
	}
}

// gc drops nodes unreachable from any variable; their labels become
// available again, and fixed-point states stay small.
func (a *Analysis) gc(g *State) {
	reach := map[string]bool{}
	var stack []string
	add := func(n string) {
		if n != nilLabel && !reach[n] {
			reach[n] = true
			stack = append(stack, n)
		}
	}
	for _, s := range g.vars {
		for n := range s {
			add(n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, set := range g.edges[n] {
			for t := range set {
				add(t)
			}
		}
	}
	for n := range g.kind {
		if !reach[n] {
			delete(g.kind, n)
			delete(g.typeOf, n)
			delete(g.edges, n)
		}
	}
}

// fold absorbs uninterrupted runs into segments: a node t whose only
// incoming reference in the whole graph is a single has-value edge h.f
// (no variable names it, nothing else points at it) is merged into h,
// and h becomes a segment. The run's internal link turns into h's
// self-edge; repeated folding collapses a loop-built list into one
// segment node. Deterministic: candidates are visited in sorted order.
func (a *Analysis) fold(g *State) {
	for {
		inVars := map[string]bool{}
		for _, s := range g.vars {
			for n := range s {
				inVars[n] = true
			}
		}
		counts := map[string]int{}
		owner := map[string]string{}
		for h, rows := range g.edges {
			for _, s := range rows {
				for t := range s {
					counts[t]++
					owner[t] = h
				}
			}
		}
		cands := make([]string, 0, len(g.kind))
		for n := range g.kind {
			cands = append(cands, n)
		}
		sort.Strings(cands)
		merged := false
		for _, t := range cands {
			if counts[t] != 1 || inVars[t] || g.kind[t] == kindExt {
				continue
			}
			h := owner[t]
			if h == t || g.kind[h] == kindExt || g.typeOf[h] != g.typeOf[t] {
				continue
			}
			a.merge(g, t, h)
			merged = true
			break
		}
		if !merged {
			return
		}
	}
}

// merge folds node t into h: every reference to t now names h, t's
// has-value edges union into h's, and h becomes a segment.
func (a *Analysis) merge(g *State, t, h string) {
	for _, s := range g.vars {
		if s[t] {
			delete(s, t)
			s[h] = true
		}
	}
	for _, rows := range g.edges {
		for _, s := range rows {
			if s[t] {
				delete(s, t)
				s[h] = true
			}
		}
	}
	for f, s := range g.edges[t] {
		for x := range s {
			g.addEdge(h, f, x)
		}
	}
	delete(g.edges, t)
	delete(g.kind, t)
	delete(g.typeOf, t)
	g.kind[h] = kindSeg
	a.union(t, h)
	a.SegmentsFolded++
}

// union-find over labels; find flattens paths as it walks.
func (a *Analysis) union(x, y string) {
	rx, ry := a.find(x), a.find(y)
	if rx != ry {
		a.canon[rx] = ry
	}
}

func (a *Analysis) find(x string) string {
	r := x
	for {
		p, ok := a.canon[r]
		if !ok {
			break
		}
		r = p
	}
	for x != r {
		a.canon[x], x = r, a.canon[x]
	}
	return r
}

// stateAt returns the state before node n (empty if unreachable).
func (a *Analysis) stateAt(n *norm.Node) *State {
	if g := a.Before[n.ID]; g != nil {
		return g
	}
	return NewState()
}

func (a *Analysis) sameType(p, q string) bool {
	tp, tq := a.Graph.VarTypes[p], a.Graph.VarTypes[q]
	return tp.Kind == types.KindPointer && tq.Kind == types.KindPointer &&
		tp.Record == tq.Record
}

// Name implements alias.Oracle.
func (a *Analysis) Name() string { return "smg" }

// MayAlias implements alias.Oracle: the points-to sets share a non-nil
// value. Distinct nodes denote disjoint objects, so an empty intersection
// really means "never the same object".
func (a *Analysis) MayAlias(n *norm.Node, p, q string) bool {
	if p == q {
		return true
	}
	if a.bailed {
		return a.sameType(p, q)
	}
	g := a.stateAt(n)
	for x := range g.vars[p] {
		if x != nilLabel && g.vars[q][x] {
			return true
		}
	}
	return false
}

// MustAlias implements alias.Oracle: both variables have exactly one
// possible value, it is the same one, and it is a concrete region (a
// segment or external node covers many objects; nil is not an object).
func (a *Analysis) MustAlias(n *norm.Node, p, q string) bool {
	if p == q {
		return true
	}
	if a.bailed {
		return false
	}
	g := a.stateAt(n)
	sp, sq := g.vars[p], g.vars[q]
	if len(sp) != 1 || len(sq) != 1 {
		return false
	}
	for x := range sp {
		return sq[x] && x != nilLabel && g.kind[x] == kindRegion
	}
	return false
}

// MayBeNil reports whether the variable can hold NULL before n. Untracked
// variables (never assigned on any path, or analysis bailed) may be
// anything, nil included. Differential harnesses use this to separate a
// genuine must/may conflict from the vacuous case where a path-matrix
// "must-alias" (same value) is satisfied by both variables being NULL —
// which is not an object alias, so the SMG rightly refutes may.
func (a *Analysis) MayBeNil(n *norm.Node, p string) bool {
	if a.bailed {
		return true
	}
	g := a.stateAt(n)
	s, ok := g.vars[p]
	if !ok || len(s) == 0 {
		return true
	}
	return s[nilLabel]
}

// LoopCarried implements alias.Oracle. At the loop-head fixed point the
// points-to sets cover every iteration, but a fold or materialization
// between iterations can rename the node an object lives in — so values
// are compared through their canonical representatives, which those
// operations keep stable.
func (a *Analysis) LoopCarried(l *norm.Loop, p, q string) bool {
	if len(l.Branch.Succs) == 0 {
		return true
	}
	if a.bailed {
		return p == q || a.sameType(p, q)
	}
	g := a.stateAt(l.Branch.Succs[0])
	roots := map[string]bool{}
	for x := range g.vars[p] {
		if x != nilLabel {
			roots[a.find(x)] = true
		}
	}
	for x := range g.vars[q] {
		if x != nilLabel && roots[a.find(x)] {
			return true
		}
	}
	return false
}

// Valid implements alias.Oracle: SMGs assert no ADDS abstraction, so there
// is never a violated one to protect.
func (a *Analysis) Valid(*norm.Node) bool { return true }

// ---------------------------------------------------------------------------
// Process-wide engine counters (exported to /metrics as addsd_engine_smg_*).

var stats struct {
	analyses atomic.Uint64
	nodes    atomic.Uint64
	folds    atomic.Uint64
	mats     atomic.Uint64
}

// Stats is a snapshot of the process-wide SMG engine counters.
type Stats struct {
	// Analyses counts completed SMG analyses.
	Analyses uint64
	// Nodes counts abstract nodes created (regions, segments, externals).
	Nodes uint64
	// Segments counts fold operations (runs absorbed into segments).
	Segments uint64
	// Materializations counts regions carved out of segments for strong
	// updates.
	Materializations uint64
}

// ReadStats snapshots the process-wide counters.
func ReadStats() Stats {
	return Stats{
		Analyses:         stats.analyses.Load(),
		Nodes:            stats.nodes.Load(),
		Segments:         stats.folds.Load(),
		Materializations: stats.mats.Load(),
	}
}
