package smg

import (
	"context"

	"repro/internal/alias"
	"repro/internal/norm"
)

// The SMG oracle plugs into the shared registry, which is the single
// registration point: linking this package in makes -oracle smg, the /v1
// endpoints, GET /v1/oracles, and the fuzzing harness all see it.
func init() {
	alias.Register(alias.Factory{
		Name:        "smg",
		Description: "SMG-lite symbolic memory graphs (Predator-style segments with materialization)",
		Rank:        4,
		Build: func(ctx context.Context, g *norm.Graph, opts alias.BuildOpts) alias.Oracle {
			return AnalyzeCtx(ctx, g, opts.Env)
		},
	})
}
