// Package klimit implements the k-limited storage-graph baseline the paper
// compares against (Section 1.2): a structure-estimation alias analysis in
// the tradition of Jones & Muchnick [JM81] and Chase, Wegman & Zadeck
// [CWZ90].
//
// The abstract heap is a graph of abstract locations. Allocation sites
// materialize up to k distinct nodes (the k-limit); further allocations from
// the same site merge into a per-site summary node. Merging is what dooms
// the approach on recursive structures: the summary node acquires self-edges
// (a "cycle in the abstraction"), after which a list built by a loop can no
// longer be distinguished from a truly cyclic structure — the analysis must
// admit that successive traversal steps may revisit a node, which is exactly
// the false dependence the paper's Figure 2 shows. ADDS declarations have no
// counterpart here: an unknown input is a fully-connected summary region.
package klimit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/norm"
	"repro/internal/shape"
)

// DefaultK is the customary small limit.
const DefaultK = 2

// nodeSet is a set of abstract location labels.
type nodeSet map[string]bool

func (s nodeSet) clone() nodeSet {
	out := make(nodeSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s nodeSet) sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Heap is one abstract storage graph.
type Heap struct {
	vars    map[string]nodeSet
	edges   map[string]map[string]nodeSet // node -> field -> targets
	summary map[string]bool
	typeOf  map[string]string // node -> record type name
}

// NewHeap returns an empty heap.
func NewHeap() *Heap {
	return &Heap{
		vars:    map[string]nodeSet{},
		edges:   map[string]map[string]nodeSet{},
		summary: map[string]bool{},
		typeOf:  map[string]string{},
	}
}

// Clone deep-copies the heap.
func (h *Heap) Clone() *Heap {
	out := NewHeap()
	for v, s := range h.vars {
		out.vars[v] = s.clone()
	}
	for n, fs := range h.edges {
		m := map[string]nodeSet{}
		for f, s := range fs {
			m[f] = s.clone()
		}
		out.edges[n] = m
	}
	for n := range h.summary {
		out.summary[n] = true
	}
	for n, t := range h.typeOf {
		out.typeOf[n] = t
	}
	return out
}

func (h *Heap) ensureNode(label, typeName string, summary bool) {
	if _, ok := h.typeOf[label]; !ok {
		h.typeOf[label] = typeName
		h.edges[label] = map[string]nodeSet{}
	}
	if summary {
		h.summary[label] = true
	}
}

func (h *Heap) addEdge(from, field, to string) {
	fs := h.edges[from]
	if fs == nil {
		fs = map[string]nodeSet{}
		h.edges[from] = fs
	}
	if fs[field] == nil {
		fs[field] = nodeSet{}
	}
	fs[field][to] = true
}

// targets returns the nodes reachable from set via field.
func (h *Heap) targets(set nodeSet, field string) nodeSet {
	out := nodeSet{}
	for n := range set {
		for t := range h.edges[n][field] {
			out[t] = true
		}
	}
	return out
}

// join unions two heaps.
func join(a, b *Heap) *Heap {
	out := a.Clone()
	for v, s := range b.vars {
		if out.vars[v] == nil {
			out.vars[v] = nodeSet{}
		}
		for n := range s {
			out.vars[v][n] = true
		}
	}
	for n, fs := range b.edges {
		for f, s := range fs {
			for t := range s {
				out.addEdge(n, f, t)
			}
		}
	}
	for n := range b.summary {
		out.summary[n] = true
	}
	for n, t := range b.typeOf {
		out.typeOf[n] = t
	}
	return out
}

// equal compares heaps for fixed-point detection.
func (h *Heap) equal(o *Heap) bool {
	if len(h.vars) != len(o.vars) || len(h.summary) != len(o.summary) ||
		len(h.typeOf) != len(o.typeOf) {
		return false
	}
	for v, s := range h.vars {
		os := o.vars[v]
		if len(os) != len(s) {
			return false
		}
		for n := range s {
			if !os[n] {
				return false
			}
		}
	}
	for n := range h.summary {
		if !o.summary[n] {
			return false
		}
	}
	for n, fs := range h.edges {
		ofs := o.edges[n]
		for f, s := range fs {
			os := ofs[f]
			if len(os) != len(s) {
				return false
			}
			for t := range s {
				if !os[t] {
					return false
				}
			}
		}
	}
	for n, fs := range o.edges {
		hfs := h.edges[n]
		for f, s := range fs {
			if len(hfs[f]) != len(s) {
				return false
			}
		}
	}
	return true
}

// String renders the heap for diagnostics.
func (h *Heap) String() string {
	var b strings.Builder
	vars := make([]string, 0, len(h.vars))
	for v := range h.vars {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		fmt.Fprintf(&b, "%s -> {%s}\n", v, strings.Join(h.vars[v].sorted(), ", "))
	}
	nodes := make([]string, 0, len(h.edges))
	for n := range h.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		tag := ""
		if h.summary[n] {
			tag = " (summary)"
		}
		fields := make([]string, 0, len(h.edges[n]))
		for f := range h.edges[n] {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			fmt.Fprintf(&b, "%s%s .%s -> {%s}\n", n, tag, f,
				strings.Join(h.edges[n][f].sorted(), ", "))
		}
	}
	return b.String()
}

// Analysis is the k-limited analysis result for one function.
type Analysis struct {
	K      int
	Graph  *norm.Graph
	Env    *shape.Env
	Before []*Heap // per CFG node
}

// Analyze runs the k-limited storage-graph analysis.
func Analyze(g *norm.Graph, env *shape.Env, k int) *Analysis {
	if k <= 0 {
		k = DefaultK
	}
	a := &Analysis{K: k, Graph: g, Env: env, Before: make([]*Heap, len(g.Nodes))}

	init := NewHeap()
	for _, p := range g.Fn.Decl.Params {
		if !p.Pointer {
			continue
		}
		u := a.unknownNode(init, p.TypeName)
		init.vars[p.Name] = nodeSet{u: true}
	}

	out := make([][]*Heap, len(g.Nodes))
	for i, n := range g.Nodes {
		out[i] = make([]*Heap, len(n.Succs))
	}
	work := []*norm.Node{g.Entry}
	inWork := map[int]bool{g.Entry.ID: true}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n.ID] = false

		var before *Heap
		if n == g.Entry {
			before = init.Clone()
		} else {
			for _, p := range n.Preds {
				for si, s := range p.Succs {
					if s != n || out[p.ID][si] == nil {
						continue
					}
					if before == nil {
						before = out[p.ID][si].Clone()
					} else {
						before = join(before, out[p.ID][si])
					}
				}
			}
			if before == nil {
				continue
			}
		}
		a.Before[n.ID] = before
		after := before.Clone()
		if n.Kind == norm.NodeStmt {
			a.apply(after, n)
		}
		for si, succ := range n.Succs {
			st := after
			if n.Kind == norm.NodeBranch && n.Cond != nil {
				st = refine(after, n.Cond, si == 0)
			}
			if out[n.ID][si] != nil && out[n.ID][si].equal(st) {
				continue
			}
			out[n.ID][si] = st
			if !inWork[succ.ID] {
				work = append(work, succ)
				inWork[succ.ID] = true
			}
		}
	}
	return a
}

// unknownNode materializes the fully-connected summary region representing
// an unknown input of the given type, returning its label.
func (a *Analysis) unknownNode(h *Heap, typeName string) string {
	label := "unknown:" + typeName
	if _, ok := h.typeOf[label]; ok {
		return label
	}
	h.ensureNode(label, typeName, true)
	// Close the region over every pointer field transitively.
	t := a.Env.Type(typeName)
	if t != nil {
		for _, f := range t.Fields {
			target := a.unknownNode(h, f.Target)
			h.addEdge(label, f.Name, target)
			// The unknown region is maximally connected: the target's
			// fields may point back as well (handled by its own closure).
		}
	}
	return label
}

func refine(h *Heap, c *norm.Cond, taken bool) *Heap {
	kind := c.Kind
	if !taken {
		switch kind {
		case norm.CondNilEQ:
			kind = norm.CondNilNE
		case norm.CondNilNE:
			kind = norm.CondNilEQ
		default:
			return h
		}
	}
	if kind == norm.CondNilEQ {
		out := h.Clone()
		out.vars[c.Var] = nodeSet{}
		return out
	}
	return h
}

func (a *Analysis) apply(h *Heap, n *norm.Node) {
	s := n.Stmt
	switch s.Op {
	case norm.Assign:
		h.vars[s.Dst] = h.vars[s.Src].clone()
	case norm.AssignNil:
		h.vars[s.Dst] = nodeSet{}
	case norm.AssignNew:
		h.vars[s.Dst] = nodeSet{a.allocate(h, n.ID, s.TypeName): true}
	case norm.Deref:
		h.vars[s.Dst] = h.targets(h.vars[s.Src], s.Field)
	case norm.StorePtr:
		a.store(h, s)
	case norm.Free:
		h.vars[s.Base] = nodeSet{}
	case norm.Call:
		a.havoc(h, s.Args)
	}
}

// allocate returns the abstract node for an allocation: the first k
// executions of a site materialize distinct nodes site:<id>:<i>; beyond
// that the per-site summary absorbs them. A site re-executed in a loop
// therefore always ends in the summary — this is where the k-limit bites.
func (a *Analysis) allocate(h *Heap, site int, typeName string) string {
	for i := 0; i < a.K; i++ {
		label := fmt.Sprintf("site%d:%d", site, i)
		if _, ok := h.typeOf[label]; !ok {
			h.ensureNode(label, typeName, false)
			return label
		}
	}
	label := fmt.Sprintf("site%d:sum", site)
	h.ensureNode(label, typeName, true)
	return label
}

func (a *Analysis) store(h *Heap, s *norm.Stmt) {
	bases := h.vars[s.Base]
	var targets nodeSet
	if s.Src != "" {
		targets = h.vars[s.Src].clone()
	} else {
		targets = nodeSet{}
	}
	if len(bases) == 1 {
		for b := range bases {
			if !h.summary[b] {
				// Strong update: the unique concrete location is known.
				if h.edges[b] == nil {
					h.edges[b] = map[string]nodeSet{}
				}
				h.edges[b][s.Field] = targets
				return
			}
		}
	}
	// Weak update: add edges from every possible base.
	for b := range bases {
		for t := range targets {
			h.addEdge(b, s.Field, t)
		}
	}
}

// havoc connects everything reachable from the arguments into one
// conservatively-cyclic region.
func (a *Analysis) havoc(h *Heap, args []string) {
	reach := nodeSet{}
	var stack []string
	for _, arg := range args {
		for n := range h.vars[arg] {
			if !reach[n] {
				reach[n] = true
				stack = append(stack, n)
			}
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, set := range h.edges[n] {
			for t := range set {
				if !reach[t] {
					reach[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	for n := range reach {
		h.summary[n] = true
		t := a.Env.Type(h.typeOf[n])
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			for m := range reach {
				if h.typeOf[m] == f.Target {
					h.addEdge(n, f.Name, m)
				}
			}
		}
	}
}

// heapAt returns the heap before node n (empty if unreachable).
func (a *Analysis) heapAt(n *norm.Node) *Heap {
	if h := a.Before[n.ID]; h != nil {
		return h
	}
	return NewHeap()
}

// Name implements alias.Oracle.
func (a *Analysis) Name() string { return fmt.Sprintf("klimit(k=%d)", a.K) }

// MayAlias implements alias.Oracle: the points-to sets intersect.
func (a *Analysis) MayAlias(n *norm.Node, p, q string) bool {
	if p == q {
		return true
	}
	h := a.heapAt(n)
	for x := range h.vars[p] {
		if h.vars[q][x] {
			return true
		}
	}
	return false
}

// MustAlias implements alias.Oracle: both point to the same unique
// non-summary location.
func (a *Analysis) MustAlias(n *norm.Node, p, q string) bool {
	if p == q {
		return true
	}
	h := a.heapAt(n)
	sp, sq := h.vars[p], h.vars[q]
	if len(sp) != 1 || len(sq) != 1 {
		return false
	}
	for x := range sp {
		return sq[x] && !h.summary[x]
	}
	return false
}

// LoopCarried implements alias.Oracle: at the loop-head fixed point the
// points-to sets summarize all iterations, so any shared abstract node means
// values from different iterations may coincide. A shared summary node is
// the classic k-limited failure: the analysis cannot tell the loop advances.
func (a *Analysis) LoopCarried(l *norm.Loop, p, q string) bool {
	if len(l.Branch.Succs) == 0 {
		return true
	}
	h := a.heapAt(l.Branch.Succs[0])
	for x := range h.vars[p] {
		if h.vars[q][x] {
			return true
		}
	}
	return false
}

// Valid implements alias.Oracle: no abstraction to validate.
func (a *Analysis) Valid(*norm.Node) bool { return true }
