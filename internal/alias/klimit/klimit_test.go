package klimit

import (
	"strings"
	"testing"

	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const listDecl = `
type List [X] {
    int data;
    List *next is uniquely forward along X;
};
`

func analyze(t *testing.T, src, fn string, k int) (*Analysis, *norm.Graph) {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("func %s missing", fn)
	}
	g := norm.Build(fi, info.Env)
	return Analyze(g, info.Env, k), g
}

// build-then-traverse: the scenario of experiment E8.
const buildTraverse = listDecl + `
void f(int n) {
    List *hd, *p, *tmp;
    hd = NULL;
    while (n > 0) {
        tmp = new List;
        tmp->next = hd;
        hd = tmp;
        n = n - 1;
    }
    p = hd;
    while (p != NULL) {
        p = p->next;
    }
}
`

func TestSummaryNodeAppears(t *testing.T) {
	a, g := analyze(t, buildTraverse, "f", 2)
	h := a.heapAt(g.Exit)
	found := false
	for n := range h.summary {
		if strings.Contains(n, "sum") {
			found = true
		}
	}
	if !found {
		t.Errorf("allocation in a loop must produce a summary node:\n%s", h)
	}
}

func TestKLimitedCannotProveAdvance(t *testing.T) {
	a, g := analyze(t, buildTraverse, "f", 2)
	// The traversal loop is the second one.
	loop := g.Loops[1]
	if !a.LoopCarried(loop, "p", "p") {
		t.Error("k-limited analysis must admit that p may revisit a node " +
			"(summary self-cycle) — this is the paper's criticism")
	}
}

func TestUnknownParamsAlias(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f(List *a, List *b) {
    a = a;
}`, "f", 2)
	if !a.MayAlias(g.Exit, "a", "b") {
		t.Error("unknown inputs of one type must be possible aliases")
	}
}

func TestUnknownTraversalStaysUnknown(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f(List *hd) {
    List *p;
    p = hd->next;
}`, "f", 2)
	if !a.MayAlias(g.Exit, "hd", "p") {
		t.Error("k-limited analysis cannot refine an unknown input: " +
			"hd and hd->next may alias")
	}
}

func TestFreshNodesDistinct(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f() {
    List *a, *b;
    a = new List;
    b = new List;
}`, "f", 2)
	if a.MayAlias(g.Exit, "a", "b") {
		t.Error("two straight-line allocations are distinct abstract nodes")
	}
	if !a.MustAlias(g.Exit, "a", "a") {
		t.Error("reflexive must-alias")
	}
}

func TestStrongUpdate(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f() {
    List *a, *b, *c, *x;
    a = new List;
    b = new List;
    c = new List;
    a->next = b;
    a->next = c;
    x = a->next;
}`, "f", 4)
	if a.MayAlias(g.Exit, "x", "b") {
		t.Error("strong update must remove the overwritten edge to b")
	}
	if !a.MayAlias(g.Exit, "x", "c") {
		t.Error("x must point where c points")
	}
	if !a.MustAlias(g.Exit, "x", "c") {
		t.Error("singleton non-summary targets give must-alias")
	}
}

func TestWeakUpdateOnSummary(t *testing.T) {
	a, g := analyze(t, buildTraverse+`
void g2(int n) {
    f(n);
}`, "f", 1)
	// With k=1 the builder merges immediately; stores become weak and the
	// summary keeps both next targets.
	h := a.heapAt(g.Exit)
	weak := false
	for n, fs := range h.edges {
		if h.summary[n] && len(fs["next"]) >= 1 {
			weak = true
		}
	}
	if !weak {
		t.Errorf("summary node should carry next edges:\n%s", h)
	}
}

func TestAssignAndNil(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f() {
    List *a, *b;
    a = new List;
    b = a;
    a = NULL;
}`, "f", 2)
	if !a.MayAlias(g.Exit, "b", "b") {
		t.Error("b retains its node")
	}
	if a.MayAlias(g.Exit, "a", "b") {
		t.Error("a was nulled")
	}
}

func TestBranchJoin(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f(int c) {
    List *a, *b, *p;
    a = new List;
    b = new List;
    if (c > 0) {
        p = a;
    } else {
        p = b;
    }
}`, "f", 4)
	if !a.MayAlias(g.Exit, "p", "a") || !a.MayAlias(g.Exit, "p", "b") {
		t.Error("join must union points-to sets")
	}
	if a.MustAlias(g.Exit, "p", "a") {
		t.Error("p is not definitely a")
	}
}

func TestNilRefinement(t *testing.T) {
	a, g := analyze(t, listDecl+`
void f(List *p) {
    List *q;
    q = p;
    if (q == NULL) {
        q = q;
    }
}`, "f", 2)
	for _, n := range g.Nodes {
		if n.Kind == norm.NodeBranch {
			h := a.Before[n.Succs[0].ID]
			if h != nil && len(h.vars["q"]) != 0 {
				t.Error("q must be empty on the NULL edge")
			}
			return
		}
	}
}

func TestCallHavoc(t *testing.T) {
	a, g := analyze(t, listDecl+`
void callee(List *x) { x = x; }
void f() {
    List *a, *b;
    a = new List;
    b = new List;
    a->next = b;
    callee(a);
}`, "f", 4)
	h := a.heapAt(g.Exit)
	// After the call, the region reachable from a is summarized.
	for n := range h.vars["a"] {
		if !h.summary[n] {
			t.Error("nodes reachable from call args must be summarized")
		}
	}
}

func TestHeapString(t *testing.T) {
	a, g := analyze(t, buildTraverse, "f", 2)
	s := a.heapAt(g.Exit).String()
	if !strings.Contains(s, "hd ->") || !strings.Contains(s, ".next ->") {
		t.Errorf("heap rendering incomplete:\n%s", s)
	}
	if a.Name() != "klimit(k=2)" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestDefaultK(t *testing.T) {
	a, _ := analyze(t, buildTraverse, "f", 0)
	if a.K != DefaultK {
		t.Errorf("K = %d, want %d", a.K, DefaultK)
	}
}

func TestDeeperKDelaysMerge(t *testing.T) {
	// With a large k, three straight-line allocations all stay distinct.
	a, g := analyze(t, listDecl+`
void f() {
    List *a, *b, *c;
    a = new List;
    b = new List;
    c = new List;
    a->next = b;
    b->next = c;
}`, "f", 8)
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		if a.MayAlias(g.Exit, pair[0], pair[1]) {
			t.Errorf("%v must be distinct with k=8", pair)
		}
	}
}
