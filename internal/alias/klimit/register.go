package klimit

import (
	"context"

	"repro/internal/alias"
	"repro/internal/norm"
)

// The k-limited oracle plugs into the shared registry so -oracle klimit,
// the /v1 endpoints, and the fuzzing harness all find it by name. The
// legacy "klimited" spelling stays accepted as an alias.
func init() {
	alias.Register(alias.Factory{
		Name:        "klimit",
		Description: "k-limited storage graphs (Jones & Muchnick); -k bounds per-site materialization",
		NeedsK:      true,
		Rank:        3,
		Aliases:     []string{"klimited"},
		Build: func(_ context.Context, g *norm.Graph, opts alias.BuildOpts) alias.Oracle {
			k := opts.K
			if k <= 0 {
				k = DefaultK
			}
			return Analyze(g, opts.Env, k)
		},
	})
}
