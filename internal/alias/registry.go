package alias

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core/pathmatrix"
	"repro/internal/norm"
	"repro/internal/shape"
	"repro/internal/source/types"
)

// BuildOpts carries everything a Factory may need to construct its oracle
// for one function. Factories ignore the fields they have no use for: the
// conservative baseline only reads the graph, the path-matrix oracles use
// Env/Info/Summaries, the storage-graph analyses use Env and K.
type BuildOpts struct {
	// Env is the ADDS shape environment of the unit's declarations.
	Env *shape.Env
	// Info is the type-checked program (summary-table computation needs the
	// whole unit, not just the function under analysis).
	Info *types.Info
	// Summaries is the interprocedural summary table the surrounding
	// analysis ran with; nil selects the opaque call havoc. Factories whose
	// tables are environment-dependent (classic) recompute their own.
	Summaries *pathmatrix.SummaryTable
	// K bounds per-site materialization for k-limited oracles (<= 0 selects
	// the oracle's default).
	K int
}

// Factory describes one registered oracle: its canonical name, what the
// flag/endpoint documentation should say about it, and how to build it.
// Oracles self-register from their package's init, so linking a package in
// is all it takes to make its oracle selectable everywhere — CLI -oracle
// flags, /v1 request validation, GET /v1/oracles, and the fuzzing harness
// all enumerate this registry.
type Factory struct {
	// Name is the canonical spelling ("gpm", "klimit", ...).
	Name string
	// Description is the one-line human summary shown by GET /v1/oracles.
	Description string
	// NeedsK reports whether the oracle consumes BuildOpts.K (-k).
	NeedsK bool
	// Rank orders listings and error messages; the historical four keep
	// their documented order (gpm, classic, conservative, klimit) and new
	// oracles append after them.
	Rank int
	// Aliases are accepted alternate spellings ("klimited").
	Aliases []string
	// Build constructs the oracle for one function. The context carries the
	// caller's tracer so analyses that record obs spans land on the request
	// trace.
	Build func(ctx context.Context, g *norm.Graph, opts BuildOpts) Oracle
}

var registry = struct {
	sync.RWMutex
	byName map[string]*Factory // canonical names and aliases, lowercase
	all    []*Factory
}{byName: map[string]*Factory{}}

// Register adds a factory to the oracle registry. It panics on a duplicate
// or empty name — registration happens in package inits, where a conflict
// is a programming error, not a runtime condition.
func Register(f Factory) {
	if f.Name == "" || f.Build == nil {
		panic("alias: Register: factory needs a Name and a Build func")
	}
	registry.Lock()
	defer registry.Unlock()
	fc := f
	for _, name := range append([]string{fc.Name}, fc.Aliases...) {
		key := strings.ToLower(name)
		if _, dup := registry.byName[key]; dup {
			panic("alias: Register: duplicate oracle name " + name)
		}
		registry.byName[key] = &fc
	}
	registry.all = append(registry.all, &fc)
	sort.SliceStable(registry.all, func(i, j int) bool {
		a, b := registry.all[i], registry.all[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Name < b.Name
	})
}

// Lookup resolves a CLI/API oracle spelling (case-insensitive; aliases
// accepted; "" selects the default, gpm). Unknown names report an error
// listing every registered oracle.
func Lookup(name string) (*Factory, error) {
	registry.RLock()
	defer registry.RUnlock()
	key := strings.ToLower(name)
	if key == "" {
		key = "gpm"
	}
	if f, ok := registry.byName[key]; ok {
		return f, nil
	}
	names := namesLocked()
	return nil, fmt.Errorf("unknown oracle %q (known: %s)", name, strings.Join(names, ", "))
}

// Names returns the canonical registered names in listing order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, len(registry.all))
	for i, f := range registry.all {
		out[i] = f.Name
	}
	return out
}

// Factories returns the registered factories in listing order. The slice is
// fresh; the pointed-to factories are shared and must not be mutated.
func Factories() []*Factory {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Factory, len(registry.all))
	copy(out, registry.all)
	return out
}

// The path-matrix oracles and the conservative baseline live in this
// package, so they register here; klimit and smg register from their own
// package inits.
func init() {
	Register(Factory{
		Name:        "gpm",
		Description: "general path matrix analysis with ADDS declarations (the paper's analysis; default)",
		Rank:        0,
		Build: func(_ context.Context, g *norm.Graph, opts BuildOpts) Oracle {
			return NewGPMWith(g, opts.Env, opts.Summaries)
		},
	})
	Register(Factory{
		Name:        "classic",
		Description: "path matrix analysis with the ADDS declarations stripped",
		Rank:        1,
		Build: func(_ context.Context, g *norm.Graph, opts BuildOpts) Oracle {
			// Summary rows are environment-dependent; the classic oracle
			// needs a table computed under the stripped environment, never
			// the ADDS-informed one the caller ran with.
			var tab *pathmatrix.SummaryTable
			if opts.Summaries != nil && opts.Info != nil {
				tab = pathmatrix.ComputeSummaries(opts.Info, opts.Env.Stripped())
			}
			return NewClassicWith(g, opts.Env, tab)
		},
	})
	Register(Factory{
		Name:        "conservative",
		Description: "worst-case baseline: same-type pointers may always alias",
		Rank:        2,
		Build: func(_ context.Context, g *norm.Graph, _ BuildOpts) Oracle {
			return NewConservative(g)
		},
	})
}
