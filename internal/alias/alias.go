// Package alias defines the alias-oracle interface that dependence testing
// and the transformations consume, plus the paper's comparison analyses:
//
//   - Conservative: every pair of same-type pointers may alias (the "assume
//     the worst" baseline of Section 1.2, producing the all-"=?" alias
//     matrix of Section 5.1.2).
//   - GPM: general path matrix analysis with ADDS declarations (the paper's
//     approach).
//   - Classic: the same engine with the ADDS information stripped, modelling
//     the original path matrix analysis applied without declarations.
//
// The k-limited storage-graph baseline lives in the klimit subpackage.
package alias

import (
	"context"

	"repro/internal/core/pathmatrix"
	"repro/internal/norm"
	"repro/internal/shape"
	"repro/internal/source/types"
)

// Oracle answers alias questions about pointer variables of one function.
// All queries are about variable values at a program point (a CFG node):
// MayAlias/MustAlias compare values before node n executes; LoopCarried
// compares p's value at the start of one iteration of l with q's value at
// the start of the next.
type Oracle interface {
	// Name identifies the analysis in reports.
	Name() string
	// MayAlias reports whether p and q may point to the same node before n.
	MayAlias(n *norm.Node, p, q string) bool
	// MustAlias reports whether p and q definitely point to the same node.
	MustAlias(n *norm.Node, p, q string) bool
	// LoopCarried reports whether p at iteration i may point to the same
	// node as q at iteration i+1 of loop l.
	LoopCarried(l *norm.Loop, p, q string) bool
	// Valid reports whether the declared abstraction is intact before n
	// (always true for analyses without validation).
	Valid(n *norm.Node) bool
}

// ---------------------------------------------------------------------------
// Conservative baseline

// Conservative is the no-analysis baseline: any two pointers of the same
// record type are possible aliases everywhere.
type Conservative struct {
	g *norm.Graph
}

// NewConservative returns the conservative oracle for a function.
func NewConservative(g *norm.Graph) *Conservative { return &Conservative{g: g} }

// Name implements Oracle.
func (c *Conservative) Name() string { return "conservative" }

func (c *Conservative) sameType(p, q string) bool {
	tp, tq := c.g.VarTypes[p], c.g.VarTypes[q]
	return tp.Kind == types.KindPointer && tq.Kind == types.KindPointer &&
		tp.Record == tq.Record
}

// MayAlias implements Oracle: same record type means possible alias.
func (c *Conservative) MayAlias(_ *norm.Node, p, q string) bool {
	return p == q || c.sameType(p, q)
}

// MustAlias implements Oracle: only a variable with itself.
func (c *Conservative) MustAlias(_ *norm.Node, p, q string) bool { return p == q }

// LoopCarried implements Oracle: always possible for same-type pointers.
// Note p with itself across iterations may alias too (the conservative
// analysis cannot rule out a cyclic structure).
func (c *Conservative) LoopCarried(_ *norm.Loop, p, q string) bool {
	return p == q || c.sameType(p, q)
}

// Valid implements Oracle: the conservative analysis asserts nothing about
// shape, so there is never a violated abstraction to protect.
func (c *Conservative) Valid(*norm.Node) bool { return true }

// ---------------------------------------------------------------------------
// General path matrix oracles

// GPM adapts a path matrix analysis result to the Oracle interface.
type GPM struct {
	name  string
	res   *pathmatrix.Result
	iters map[*norm.Loop]*pathmatrix.Matrix
}

// NewGPM runs general path matrix analysis with the full ADDS environment.
func NewGPM(g *norm.Graph, env *shape.Env) *GPM {
	return NewGPMWith(g, env, nil)
}

// NewGPMWith is NewGPM with an interprocedural summary table (see
// pathmatrix.ComputeSummaries); nil falls back to the opaque call havoc.
func NewGPMWith(g *norm.Graph, env *shape.Env, tab *pathmatrix.SummaryTable) *GPM {
	res, err := pathmatrix.AnalyzeCtxWith(context.Background(), g, env, tab)
	if err != nil {
		// Background contexts never expire; this is unreachable.
		panic("alias: " + err.Error())
	}
	return &GPM{
		name:  "adds+gpm",
		res:   res,
		iters: map[*norm.Loop]*pathmatrix.Matrix{},
	}
}

// NewClassic runs the engine with directions stripped, modelling path matrix
// analysis without ADDS declarations.
func NewClassic(g *norm.Graph, env *shape.Env) *GPM {
	return NewClassicWith(g, env, nil)
}

// NewClassicWith is NewClassic with an interprocedural summary table. The
// table must have been computed under env.Stripped() — summary rows depend
// on the environment they were derived in, and mixing them across
// environments would smuggle ADDS-informed facts into the classic oracle.
func NewClassicWith(g *norm.Graph, env *shape.Env, tab *pathmatrix.SummaryTable) *GPM {
	res, err := pathmatrix.AnalyzeCtxWith(context.Background(), g, env.Stripped(), tab)
	if err != nil {
		// Background contexts never expire; this is unreachable.
		panic("alias: " + err.Error())
	}
	return &GPM{
		name:  "classic-pm",
		res:   res,
		iters: map[*norm.Loop]*pathmatrix.Matrix{},
	}
}

// Name implements Oracle.
func (o *GPM) Name() string { return o.name }

// Result exposes the underlying analysis result (for reports that print the
// matrices themselves).
func (o *GPM) Result() *pathmatrix.Result { return o.res }

// liveAt reports whether both variables are live entering n. When the
// analysis ran with liveness-based row dropping (Result.Live non-nil),
// facts about dead variables may have been discarded, so queries involving
// them must fall back to conservative answers. Without dropping, Live is
// nil and everything counts as live.
func (o *GPM) liveAt(n *norm.Node, p, q string) bool {
	if o.res.Live == nil {
		return true
	}
	return o.res.Live.LiveIn(n.ID, p) && o.res.Live.LiveIn(n.ID, q)
}

// MayAlias implements Oracle.
func (o *GPM) MayAlias(n *norm.Node, p, q string) bool {
	if !o.liveAt(n, p, q) {
		return true // dropped facts: assume the worst
	}
	return o.res.BeforeNode(n).MayAlias(p, q)
}

// MustAlias implements Oracle.
func (o *GPM) MustAlias(n *norm.Node, p, q string) bool {
	if !o.liveAt(n, p, q) {
		return p == q // dropped facts: only trivial must-aliasing remains
	}
	return o.res.BeforeNode(n).MustAlias(p, q)
}

// LoopCarried implements Oracle: query the primed-variable matrix. The
// liveness check anchors at the loop body's entry, where the iteration
// matrix's base state lives.
func (o *GPM) LoopCarried(l *norm.Loop, p, q string) bool {
	if len(l.Branch.Succs) > 0 && !o.liveAt(l.Branch.Succs[0], p, q) {
		return true
	}
	im, ok := o.iters[l]
	if !ok {
		im = o.res.IterationMatrix(l)
		o.iters[l] = im
	}
	return im.MayAlias(p+pathmatrix.Shadow, q)
}

// Valid implements Oracle.
func (o *GPM) Valid(n *norm.Node) bool {
	return o.res.BeforeNode(n).Valid()
}
