package norm

// Backward live-variable analysis over the normalized CFG.
//
// A variable is live at a point when some path from that point reads it
// before (or without) redefining it. The path matrix engine uses the result
// to drop rows for provably dead pointers mid-fixpoint ("Generalizing the
// Liveness Based Points-to Analysis" motivates the same reduction for
// points-to facts), and the alias oracles use it to answer conservatively
// for variables whose facts were dropped.

// Liveness holds per-node live-variable sets for one Graph, as bitsets over
// a fixed variable order. Queries about variables the analysis does not
// track answer true: an unknown name must never be reported dead.
type Liveness struct {
	vars []string
	idx  map[string]int
	in   []bitset // live before the node executes, indexed by node ID
	out  []bitset // live after the node executes, indexed by node ID
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) add(i int)      { b[i/64] |= 1 << (i % 64) }

// orWith ors o into b and reports whether b changed.
func (b bitset) orWith(o bitset) bool {
	changed := false
	for i, w := range o {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

// useDef reports the variables a node reads and the one it writes ("" when
// none). Reads and writes of heap fields count as uses of the base pointer
// only: the pointed-to node's identity is what the analysis tracks.
func useDef(n *Node, use func(string)) (def string) {
	switch n.Kind {
	case NodeBranch:
		switch n.Cond.Kind {
		case CondNilEQ, CondNilNE:
			use(n.Cond.Var)
		case CondPtrEQ, CondPtrNE:
			use(n.Cond.Var)
			use(n.Cond.Var2)
		}
		return ""
	case NodeStmt:
		s := n.Stmt
		switch s.Op {
		case Assign:
			use(s.Src)
			return s.Dst
		case AssignNil, AssignNew:
			return s.Dst
		case Deref:
			use(s.Src)
			return s.Dst
		case StorePtr:
			use(s.Base)
			use(s.Src) // "" (NULL) is filtered by the caller
		case ScalarRead, ScalarWrite:
			use(s.Base)
		case Free:
			use(s.Base)
		case Call:
			for _, a := range s.Args {
				use(a)
			}
		}
	}
	return ""
}

// ComputeLiveness runs the standard backward dataflow to a fixed point:
// out[n] = ∪ in[succ], in[n] = use[n] ∪ (out[n] − def[n]).
func ComputeLiveness(g *Graph) *Liveness {
	vars := g.PointerVars()
	l := &Liveness{
		vars: vars,
		idx:  make(map[string]int, len(vars)),
		in:   make([]bitset, len(g.Nodes)),
		out:  make([]bitset, len(g.Nodes)),
	}
	for i, v := range vars {
		l.idx[v] = i
	}
	nv := len(vars)

	use := make([]bitset, len(g.Nodes))
	def := make([]int, len(g.Nodes)) // var index defined, or -1
	for _, n := range g.Nodes {
		u := newBitset(nv)
		d := useDef(n, func(v string) {
			if i, ok := l.idx[v]; ok {
				u.add(i)
			}
		})
		use[n.ID] = u
		def[n.ID] = -1
		if i, ok := l.idx[d]; ok && d != "" {
			def[n.ID] = i
		}
		l.in[n.ID] = newBitset(nv)
		l.out[n.ID] = newBitset(nv)
	}

	// Seed the worklist with every node in reverse ID order (IDs roughly
	// follow control flow, so reverse order converges in few passes).
	work := make([]*Node, 0, len(g.Nodes))
	inWork := make([]bool, len(g.Nodes))
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		work = append(work, g.Nodes[i])
		inWork[g.Nodes[i].ID] = true
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n.ID] = false

		out := l.out[n.ID]
		for _, s := range n.Succs {
			out.orWith(l.in[s.ID])
		}
		// in = use ∪ (out − def)
		in := l.in[n.ID]
		changed := false
		di := def[n.ID]
		for w := range in {
			nw := out[w]
			if di >= 0 && di/64 == w {
				nw &^= 1 << (di % 64)
			}
			nw |= use[n.ID][w]
			if nw|in[w] != in[w] {
				in[w] |= nw
				changed = true
			}
		}
		if !changed {
			continue
		}
		for _, p := range n.Preds {
			if !inWork[p.ID] {
				work = append(work, p)
				inWork[p.ID] = true
			}
		}
	}
	return l
}

// Vars returns the tracked variables in index order.
func (l *Liveness) Vars() []string { return l.vars }

// LiveIn reports whether v may be read before being redefined on some path
// starting at node id (inclusive of the node itself). Unknown variables are
// conservatively live.
func (l *Liveness) LiveIn(id int, v string) bool {
	i, ok := l.idx[v]
	if !ok || id < 0 || id >= len(l.in) {
		return true
	}
	return l.in[id].has(i)
}

// LiveOut reports whether v is live immediately after node id executes.
// Unknown variables are conservatively live.
func (l *Liveness) LiveOut(id int, v string) bool {
	i, ok := l.idx[v]
	if !ok || id < 0 || id >= len(l.out) {
		return true
	}
	return l.out[id].has(i)
}
