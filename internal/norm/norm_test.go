package norm

import (
	"strings"
	"testing"

	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const listDecl = `
type List [X] {
    int data;
    List *next is uniquely forward along X;
    List *prev is backward along X;
};
`

func build(t *testing.T, src, fn string) *Graph {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("function %s not found", fn)
	}
	return Build(fi, info.Env)
}

// stmts collects the normalized statements in node order.
func stmts(g *Graph) []*Stmt {
	var out []*Stmt
	for _, n := range g.Nodes {
		if n.Kind == NodeStmt {
			out = append(out, n.Stmt)
		}
	}
	return out
}

func stmtStrings(g *Graph) []string {
	var out []string
	for _, s := range stmts(g) {
		out = append(out, s.String())
	}
	return out
}

func TestSimpleAssigns(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p, List *q) {
    p = q;
    p = NULL;
    p = new List;
    p = q->next;
    p->next = q;
    p->next = NULL;
}`, "f")
	got := stmtStrings(g)
	want := []string{
		"p = q",
		"p = NULL",
		"p = new List",
		"p = q->next",
		"p->next = q",
		"p->next = NULL",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stmt %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestMultiDerefIntroducesTemps(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p, List *q) {
    p = q->next->next;
}`, "f")
	got := stmtStrings(g)
	want := []string{"@t1 = q->next", "p = @t1->next"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v want %v", got, want)
	}
	if !IsTemp("@t1") || IsTemp("p") {
		t.Error("IsTemp misclassifies")
	}
}

func TestStoreThroughPath(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p, List *q) {
    p->next->next = q;
}`, "f")
	got := stmtStrings(g)
	want := []string{"@t1 = p->next", "@t1->next = q"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestScalarAccesses(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p, List *hd) {
    p->data = p->data - hd->data;
}`, "f")
	got := stmtStrings(g)
	want := []string{"read p->data", "read hd->data", "write p->data"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestShiftOriginCFGShape(t *testing.T) {
	g := build(t, listDecl+`
void shift(List *hd) {
    List *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}`, "shift")

	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d", len(g.Loops))
	}
	loop := g.Loops[0]
	if loop.Branch.Cond.Kind != CondNilNE || loop.Branch.Cond.Var != "p" {
		t.Errorf("loop cond = %v", loop.Branch.Cond)
	}
	// The loop body must contain the scalar ops and the advance.
	var bodyStmts []string
	for _, n := range g.Nodes {
		if n.Kind == NodeStmt && loop.Body[n] {
			bodyStmts = append(bodyStmts, n.Stmt.String())
		}
	}
	want := []string{"read p->data", "read hd->data", "write p->data", "p = p->next"}
	if strings.Join(bodyStmts, ";") != strings.Join(want, ";") {
		t.Errorf("body = %v", bodyStmts)
	}
	// The advance statement's tail links back to the loop head.
	if loop.Head.Loop != loop {
		t.Error("head not linked to loop")
	}
}

func TestBranchEdgesOrdered(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p) {
    if (p == NULL) {
        p = new List;
    } else {
        p = p->next;
    }
    p = NULL;
}`, "f")
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == NodeBranch {
			br = n
			break
		}
	}
	if br == nil {
		t.Fatal("no branch node")
	}
	if br.Cond.Kind != CondNilEQ {
		t.Fatalf("cond = %v", br.Cond)
	}
	if len(br.Succs) != 2 {
		t.Fatalf("branch has %d succs", len(br.Succs))
	}
	// True edge (p == NULL) leads eventually to the allocation.
	if !reaches(br.Succs[0], func(n *Node) bool {
		return n.Kind == NodeStmt && n.Stmt.Op == AssignNew
	}, 5) {
		t.Error("true edge does not reach allocation")
	}
	if !reaches(br.Succs[1], func(n *Node) bool {
		return n.Kind == NodeStmt && n.Stmt.Op == Deref
	}, 5) {
		t.Error("false edge does not reach deref")
	}
}

// reaches does a bounded DFS.
func reaches(n *Node, pred func(*Node) bool, depth int) bool {
	if depth < 0 {
		return false
	}
	if pred(n) {
		return true
	}
	for _, s := range n.Succs {
		if reaches(s, pred, depth-1) {
			return true
		}
	}
	return false
}

func TestPtrEqCondition(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p, List *q) {
    if (p == q) {
        p = NULL;
    }
}`, "f")
	for _, n := range g.Nodes {
		if n.Kind == NodeBranch {
			if n.Cond.Kind != CondPtrEQ || n.Cond.Var != "p" || n.Cond.Var2 != "q" {
				t.Errorf("cond = %v", n.Cond)
			}
			return
		}
	}
	t.Fatal("no branch")
}

func TestPaperNEQSpelling(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p) {
    while (p <> NULL) {
        p = p->next;
    }
}`, "f")
	if g.Loops[0].Branch.Cond.Kind != CondNilNE {
		t.Errorf("cond = %v", g.Loops[0].Branch.Cond)
	}
}

func TestReturnTerminates(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p) {
    return;
    p = NULL;
}`, "f")
	// The assignment after return is unreachable and must not be lowered.
	for _, s := range stmts(g) {
		if s.Op == AssignNil {
			t.Error("unreachable statement was lowered")
		}
	}
}

func TestCallArgs(t *testing.T) {
	g := build(t, listDecl+`
void callee(List *a, int n) { n = n; }
void f(List *p) {
    callee(p, 3);
}`, "f")
	var call *Stmt
	for _, s := range stmts(g) {
		if s.Op == Call {
			call = s
		}
	}
	if call == nil {
		t.Fatal("no call stmt")
	}
	if len(call.Args) != 1 || call.Args[0] != "p" {
		t.Errorf("args = %v", call.Args)
	}
}

func TestFree(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p) {
    free(p);
}`, "f")
	ss := stmts(g)
	if len(ss) != 1 || ss[0].Op != Free || ss[0].Base != "p" {
		t.Errorf("stmts = %v", stmtStrings(g))
	}
}

func TestPointerVarsIncludeTemps(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p) {
    p = p->next->next;
}`, "f")
	pv := g.PointerVars()
	found := false
	for _, v := range pv {
		if v == "@t1" {
			found = true
		}
	}
	if !found {
		t.Errorf("PointerVars = %v, missing @t1", pv)
	}
}

func TestNestedLoops(t *testing.T) {
	g := build(t, `
type Orth [X] [Y] {
    int data;
    Orth *across is uniquely forward along X;
    Orth *down is uniquely forward along Y;
};
void f(Orth *m) {
    Orth *r, *c;
    r = m;
    while (r != NULL) {
        c = r;
        while (c != NULL) {
            c->data = 0;
            c = c->across;
        }
        r = r->down;
    }
}`, "f")
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d", len(g.Loops))
	}
	outer, inner := g.Loops[0], g.Loops[1]
	// Inner loop's nodes must also be in the outer loop's body.
	for n := range inner.Body {
		if !outer.Body[n] {
			t.Fatalf("inner node %d not in outer body", n.ID)
		}
	}
	if outer.Body[outer.Head] {
		t.Error("loop head should not be inside its own body set")
	}
}

func TestCondHeapReadsInsideLoopBody(t *testing.T) {
	g := build(t, listDecl+`
void f(List *p) {
    while (p->data > 0) {
        p = p->next;
    }
}`, "f")
	loop := g.Loops[0]
	foundRead := false
	for n := range loop.Body {
		if n.Kind == NodeStmt && n.Stmt.Op == ScalarRead {
			foundRead = true
		}
	}
	if !foundRead {
		t.Error("condition heap read not in loop body")
	}
}

func TestGraphString(t *testing.T) {
	g := build(t, listDecl+`void f(List *p) { p = p->next; }`, "f")
	s := g.String()
	if !strings.Contains(s, "p = p->next") || !strings.Contains(s, "entry") {
		t.Errorf("String() = %q", s)
	}
}
