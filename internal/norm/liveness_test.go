package norm

import (
	"testing"

	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const livenessSrc = `
type L [X] {
    int data;
    L *next is uniquely forward along X;
};

void f(L *a, L *b) {
    L *t;
    L *u;
    t = a->next;
    u = t;
    a = u;
    a->data = 1;
}
`

func buildLiveness(t *testing.T, src, fn string) (*Graph, *Liveness) {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("function %s missing", fn)
	}
	g := Build(fi, info.Env)
	return g, ComputeLiveness(g)
}

// findStmt returns the first statement node whose rendering matches.
func findStmt(t *testing.T, g *Graph, render string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Kind == NodeStmt && n.Stmt.String() == render {
			return n
		}
	}
	t.Fatalf("no statement %q in:\n%s", render, g)
	return nil
}

func TestLivenessStraightLine(t *testing.T) {
	g, l := buildLiveness(t, livenessSrc, "f")

	// b is never read: dead everywhere, including function entry.
	if l.LiveIn(g.Entry.ID, "b") {
		t.Errorf("b live at entry; it is never used")
	}
	// a is read by the first statement, so it is live at entry.
	if !l.LiveIn(g.Entry.ID, "a") {
		t.Errorf("a dead at entry; t = a->next reads it")
	}

	deref := findStmt(t, g, "t = a->next")
	// t is live right after its definition (u = t reads it) ...
	if !l.LiveOut(deref.ID, "t") {
		t.Errorf("t dead after its definition; u = t reads it")
	}
	// ... and a is dead after the deref until its redefinition.
	if l.LiveOut(deref.ID, "a") {
		t.Errorf("a live after t = a->next; next read is after a = u")
	}

	assign := findStmt(t, g, "a = u")
	// t's last read was u = t: dead after a = u.
	if l.LiveOut(assign.ID, "t") {
		t.Errorf("t live after a = u")
	}
	// a was just written and write a->data reads it.
	if !l.LiveOut(assign.ID, "a") {
		t.Errorf("a dead after a = u; write a->data reads it")
	}
}

func TestLivenessLoop(t *testing.T) {
	src := `
type L [X] {
    int data;
    L *next is uniquely forward along X;
};

void walk(L *hd) {
    L *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
`
	g, l := buildLiveness(t, src, "walk")
	// hd is read inside the loop body every iteration: live at the loop
	// branch and across the back edge.
	for _, loop := range g.Loops {
		if !l.LiveIn(loop.Branch.ID, "hd") {
			t.Errorf("hd dead at loop branch; the body reads hd->data")
		}
		if !l.LiveIn(loop.Branch.ID, "p") {
			t.Errorf("p dead at loop branch; the condition tests it")
		}
	}
	// p is dead before its first definition.
	if l.LiveIn(g.Entry.ID, "p") {
		t.Errorf("p live at entry; it is written before any read")
	}
}

func TestLivenessUnknownVarConservative(t *testing.T) {
	g, l := buildLiveness(t, livenessSrc, "f")
	if !l.LiveIn(g.Entry.ID, "nosuch") || !l.LiveOut(g.Exit.ID, "nosuch") {
		t.Errorf("unknown variables must be conservatively live")
	}
}
