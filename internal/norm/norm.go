// Package norm lowers a checked mini function into a control-flow graph of
// normalized statements. Every pointer effect is reduced to one of the
// canonical forms the paper's analysis rules speak about:
//
//	p = q          (Assign)
//	p = NULL       (AssignNil)
//	p = new T      (AssignNew)
//	p = q->f       (Deref)
//	p->f = q       (StorePtr, q may be NULL)
//	free(p)        (Free)
//
// plus scalar heap accesses (ScalarRead/ScalarWrite) that the alias analyses
// ignore but the dependence tests need, opaque calls, and pointer condition
// tests that let the analyses refine facts on branch outcomes. Multi-level
// dereference chains are flattened with compiler temporaries (@t1, @t2, ...).
package norm

import (
	"fmt"
	"strings"

	"repro/internal/shape"
	"repro/internal/source/ast"
	"repro/internal/source/token"
	"repro/internal/source/types"
)

// Op is the kind of a normalized statement.
type Op int

// Normalized statement kinds.
const (
	Assign      Op = iota // Dst = Src
	AssignNil             // Dst = NULL
	AssignNew             // Dst = new TypeName
	Deref                 // Dst = Src->Field
	StorePtr              // Base->Field = Src ("" means NULL)
	ScalarRead            // int read of Base->Field
	ScalarWrite           // int write of Base->Field
	ScalarOp              // computation on scalars only; no heap access
	Free                  // free(Base)
	Call                  // opaque call; may mutate anything reachable via args
)

func (o Op) String() string {
	switch o {
	case Assign:
		return "assign"
	case AssignNil:
		return "assign-nil"
	case AssignNew:
		return "new"
	case Deref:
		return "deref"
	case StorePtr:
		return "store-ptr"
	case ScalarRead:
		return "scalar-read"
	case ScalarWrite:
		return "scalar-write"
	case ScalarOp:
		return "scalar-op"
	case Free:
		return "free"
	case Call:
		return "call"
	}
	return "?"
}

// Stmt is one normalized statement.
type Stmt struct {
	Op       Op
	Dst      string // Assign*, Deref: destination pointer variable
	Src      string // Assign, Deref, StorePtr: source pointer variable
	Base     string // Deref uses Src; StorePtr/Scalar*/Free use Base
	Field    string
	TypeName string    // AssignNew: allocated type; others: record type of Base/Src
	Args     []string  // Call: pointer arguments (escaping roots), deduplicated
	Callee   string    // Call: callee name
	Bind     []string  // Call: variable bound to each callee argument position ("" = NULL or scalar)
	Pos      token.Pos // original source position
}

// String renders the statement in source-like form.
func (s *Stmt) String() string {
	switch s.Op {
	case Assign:
		return fmt.Sprintf("%s = %s", s.Dst, s.Src)
	case AssignNil:
		return fmt.Sprintf("%s = NULL", s.Dst)
	case AssignNew:
		return fmt.Sprintf("%s = new %s", s.Dst, s.TypeName)
	case Deref:
		return fmt.Sprintf("%s = %s->%s", s.Dst, s.Src, s.Field)
	case StorePtr:
		src := s.Src
		if src == "" {
			src = "NULL"
		}
		return fmt.Sprintf("%s->%s = %s", s.Base, s.Field, src)
	case ScalarRead:
		return fmt.Sprintf("read %s->%s", s.Base, s.Field)
	case ScalarWrite:
		return fmt.Sprintf("write %s->%s", s.Base, s.Field)
	case ScalarOp:
		return "scalar-op"
	case Free:
		return fmt.Sprintf("free(%s)", s.Base)
	case Call:
		return fmt.Sprintf("call %s(%s)", s.Callee, strings.Join(s.Args, ", "))
	}
	return "?"
}

// CondKind classifies a branch condition for refinement purposes.
type CondKind int

// Branch condition kinds. Opaque conditions give the analyses nothing to
// refine on; nil tests and pointer equality tests do.
const (
	CondOpaque CondKind = iota
	CondNilEQ           // Var == NULL on the true edge
	CondNilNE           // Var != NULL on the true edge
	CondPtrEQ           // Var == Var2 on the true edge
	CondPtrNE           // Var != Var2 on the true edge
)

// Cond is the condition attached to a branch node.
type Cond struct {
	Kind CondKind
	Var  string
	Var2 string
}

func (c *Cond) String() string {
	switch c.Kind {
	case CondNilEQ:
		return c.Var + " == NULL"
	case CondNilNE:
		return c.Var + " != NULL"
	case CondPtrEQ:
		return c.Var + " == " + c.Var2
	case CondPtrNE:
		return c.Var + " != " + c.Var2
	}
	return "<opaque>"
}

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds. Branch nodes have exactly two successors: Succs[0] taken when
// the condition is true, Succs[1] when false.
const (
	NodeEntry NodeKind = iota
	NodeExit
	NodeStmt
	NodeBranch
	NodeJoin // including loop heads
)

// Node is a CFG node.
type Node struct {
	ID    int
	Kind  NodeKind
	Stmt  *Stmt // for NodeStmt
	Cond  *Cond // for NodeBranch
	Succs []*Node
	Preds []*Node
	Loop  *Loop // for loop-head joins
}

// Loop records a while loop: its head join node (the dataflow fixed point
// target), the branch that tests the condition, the set of body nodes, and
// the source statement it was lowered from (for cross-referencing with
// other IRs).
type Loop struct {
	Head   *Node
	Branch *Node
	Body   map[*Node]bool
	While  *ast.WhileStmt
}

// Graph is the normalized CFG of one function.
type Graph struct {
	Fn       *types.FuncInfo
	Entry    *Node
	Exit     *Node
	Nodes    []*Node
	Loops    []*Loop // outermost first, in source order
	VarTypes map[string]types.Type
	ntemp    int
}

// PointerVars returns all pointer variables including generated temporaries,
// parameters and locals first, in a stable order.
func (g *Graph) PointerVars() []string {
	out := g.Fn.PointerVars()
	for i := 1; i <= g.ntemp; i++ {
		name := tempName(i)
		if g.VarTypes[name].Kind == types.KindPointer {
			out = append(out, name)
		}
	}
	return out
}

func tempName(i int) string { return fmt.Sprintf("@t%d", i) }

// IsTemp reports whether the variable name is a generated temporary.
func IsTemp(name string) bool { return strings.HasPrefix(name, "@t") }

func (g *Graph) newNode(kind NodeKind) *Node {
	n := &Node{ID: len(g.Nodes), Kind: kind}
	g.Nodes = append(g.Nodes, n)
	return n
}

func link(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// Build lowers the function into a CFG.
func Build(fi *types.FuncInfo, env *shape.Env) *Graph {
	g := &Graph{Fn: fi, VarTypes: map[string]types.Type{}}
	for v, t := range fi.Vars {
		g.VarTypes[v] = t
	}
	b := &builder{g: g, env: env}
	g.Entry = g.newNode(NodeEntry)
	g.Exit = g.newNode(NodeExit)
	cur := b.block(fi.Decl.Body, g.Entry)
	if cur != nil {
		link(cur, g.Exit)
	}
	return g
}

type builder struct {
	g   *Graph
	env *shape.Env
}

func (b *builder) temp(t types.Type) string {
	b.g.ntemp++
	name := tempName(b.g.ntemp)
	b.g.VarTypes[name] = t
	return name
}

// emit appends a statement node after cur and returns the new tail.
func (b *builder) emit(cur *Node, s *Stmt) *Node {
	n := b.g.newNode(NodeStmt)
	n.Stmt = s
	link(cur, n)
	return n
}

// block lowers a block; returns the tail node, or nil if control never falls
// through (all paths return).
func (b *builder) block(blk *ast.Block, cur *Node) *Node {
	for _, s := range blk.Stmts {
		if cur == nil {
			return nil // unreachable code after return
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *builder) stmt(s ast.Stmt, cur *Node) *Node {
	switch s := s.(type) {
	case *ast.Block:
		return b.block(s, cur)
	case *ast.AssignStmt:
		return b.assign(s, cur)
	case *ast.WhileStmt:
		return b.while(s, cur)
	case *ast.IfStmt:
		return b.ifStmt(s, cur)
	case *ast.ReturnStmt:
		if s.Value != nil {
			cur = b.evalScalar(s.Value, cur)
		}
		link(cur, b.g.Exit)
		return nil
	case *ast.CallStmt:
		return b.call(s.Call, cur)
	case *ast.FreeStmt:
		v, cur2 := b.evalPointer(s.Target, cur)
		return b.emit(cur2, &Stmt{Op: Free, Base: v, Pos: s.FreePos})
	}
	return cur
}

// varType returns the type of a variable (including temps).
func (b *builder) varType(name string) types.Type { return b.g.VarTypes[name] }

// pathType types a prefix of a field path.
func (b *builder) pathType(p *ast.Path, nFields int) types.Type {
	t := b.varType(p.Var)
	for i := 0; i < nFields; i++ {
		if t.Kind != types.KindPointer {
			return types.Invalid
		}
		st := b.env.Type(t.Record)
		if st == nil {
			return types.Invalid
		}
		if st.HasIntField(p.Fields[i]) {
			t = types.Int
		} else if pf := st.Field(p.Fields[i]); pf != nil {
			t = types.PointerTo(pf.Target)
		} else {
			return types.Invalid
		}
	}
	return t
}

// resolveBase lowers the first n-1 dereferences of a path into temporaries
// and returns the variable that the n-th field access should use as its
// base. With n == 1 (or n == 0) no temporaries are needed and the path's
// root variable is returned directly.
func (b *builder) resolveBase(p *ast.Path, n int, cur *Node) (string, *Node) {
	base := p.Var
	for i := 0; i < n-1; i++ {
		t := b.pathType(p, i+1)
		tmp := b.temp(t)
		cur = b.emit(cur, &Stmt{
			Op: Deref, Dst: tmp, Src: base, Field: p.Fields[i],
			TypeName: b.recordOf(base), Pos: p.VarPos,
		})
		base = tmp
	}
	return base, cur
}

func (b *builder) recordOf(varName string) string {
	t := b.varType(varName)
	if t.Kind == types.KindPointer {
		return t.Record
	}
	return ""
}

// evalPointer lowers a pointer-valued expression and returns a variable
// holding its value ("" for NULL).
func (b *builder) evalPointer(e ast.Expr, cur *Node) (string, *Node) {
	switch e := e.(type) {
	case *ast.NullLit:
		return "", cur
	case *ast.NewExpr:
		tmp := b.temp(types.PointerTo(e.TypeName))
		cur = b.emit(cur, &Stmt{Op: AssignNew, Dst: tmp, TypeName: e.TypeName, Pos: e.NewPos})
		return tmp, cur
	case *ast.Path:
		if e.IsVar() {
			return e.Var, cur
		}
		base, cur2 := b.resolveBase(e, len(e.Fields), cur)
		t := b.pathType(e, len(e.Fields))
		tmp := b.temp(t)
		cur3 := b.emit(cur2, &Stmt{
			Op: Deref, Dst: tmp, Src: base, Field: e.Fields[len(e.Fields)-1],
			TypeName: b.recordOf(base), Pos: e.VarPos,
		})
		return tmp, cur3
	}
	// Type checker guarantees we never get here.
	return "", cur
}

// evalScalar lowers an int-valued expression, emitting ScalarRead for every
// heap read (with Deref temps for intermediate pointers), then one ScalarOp.
func (b *builder) evalScalar(e ast.Expr, cur *Node) *Node {
	cur = b.scalarReads(e, cur)
	return b.emit(cur, &Stmt{Op: ScalarOp, Pos: e.Pos()})
}

// scalarReads emits the heap reads of an int expression without the final
// ScalarOp (used when the caller will emit a write or branch).
func (b *builder) scalarReads(e ast.Expr, cur *Node) *Node {
	switch e := e.(type) {
	case *ast.Path:
		if e.IsVar() {
			return cur
		}
		base, cur2 := b.resolveBase(e, len(e.Fields), cur)
		last := e.Fields[len(e.Fields)-1]
		t := b.pathType(e, len(e.Fields))
		if t.Kind == types.KindInt {
			return b.emit(cur2, &Stmt{
				Op: ScalarRead, Base: base, Field: last,
				TypeName: b.recordOf(base), Pos: e.VarPos,
			})
		}
		// Pointer-valued path inside an int expression (comparisons):
		// materialize it so the analyses see the traversal.
		tmp := b.temp(t)
		return b.emit(cur2, &Stmt{
			Op: Deref, Dst: tmp, Src: base, Field: last,
			TypeName: b.recordOf(base), Pos: e.VarPos,
		})
	case *ast.BinExpr:
		cur = b.scalarReads(e.X, cur)
		return b.scalarReads(e.Y, cur)
	case *ast.UnExpr:
		return b.scalarReads(e.X, cur)
	case *ast.CallExpr:
		return b.callExpr(e, cur)
	}
	return cur
}

func (b *builder) assign(s *ast.AssignStmt, cur *Node) *Node {
	lt := b.pathType(s.LHS, len(s.LHS.Fields))

	if lt.Kind == types.KindPointer {
		if s.LHS.IsVar() {
			dst := s.LHS.Var
			switch rhs := s.RHS.(type) {
			case *ast.NullLit:
				return b.emit(cur, &Stmt{Op: AssignNil, Dst: dst, Pos: s.LHS.VarPos})
			case *ast.NewExpr:
				return b.emit(cur, &Stmt{Op: AssignNew, Dst: dst, TypeName: rhs.TypeName, Pos: s.LHS.VarPos})
			case *ast.Path:
				if rhs.IsVar() {
					return b.emit(cur, &Stmt{Op: Assign, Dst: dst, Src: rhs.Var, Pos: s.LHS.VarPos})
				}
				base, cur2 := b.resolveBase(rhs, len(rhs.Fields), cur)
				return b.emit(cur2, &Stmt{
					Op: Deref, Dst: dst, Src: base, Field: rhs.Fields[len(rhs.Fields)-1],
					TypeName: b.recordOf(base), Pos: s.LHS.VarPos,
				})
			}
			src, cur2 := b.evalPointer(s.RHS, cur)
			return b.emit(cur2, &Stmt{Op: Assign, Dst: dst, Src: src, Pos: s.LHS.VarPos})
		}
		// p->...->f = pointer rhs
		src, cur2 := b.evalPointer(s.RHS, cur)
		base, cur3 := b.resolveBase(s.LHS, len(s.LHS.Fields), cur2)
		return b.emit(cur3, &Stmt{
			Op: StorePtr, Base: base, Field: s.LHS.Fields[len(s.LHS.Fields)-1],
			Src: src, TypeName: b.recordOf(base), Pos: s.LHS.VarPos,
		})
	}

	// Scalar assignment.
	cur = b.scalarReads(s.RHS, cur)
	if s.LHS.IsVar() {
		return b.emit(cur, &Stmt{Op: ScalarOp, Pos: s.LHS.VarPos})
	}
	base, cur2 := b.resolveBase(s.LHS, len(s.LHS.Fields), cur)
	return b.emit(cur2, &Stmt{
		Op: ScalarWrite, Base: base, Field: s.LHS.Fields[len(s.LHS.Fields)-1],
		TypeName: b.recordOf(base), Pos: s.LHS.VarPos,
	})
}

// cond lowers a condition expression to a branch node, returning it. Heap
// reads inside the condition are emitted before the branch.
func (b *builder) cond(e ast.Expr, cur *Node) (*Node, *Node) {
	c := &Cond{Kind: CondOpaque}
	if bin, ok := e.(*ast.BinExpr); ok && (bin.Op == token.EQ || bin.Op == token.NEQ) {
		xPath, xIsPath := bin.X.(*ast.Path)
		yPath, yIsPath := bin.Y.(*ast.Path)
		_, xIsNull := bin.X.(*ast.NullLit)
		_, yIsNull := bin.Y.(*ast.NullLit)

		isPtrVar := func(p *ast.Path) bool {
			return p.IsVar() && b.varType(p.Var).Kind == types.KindPointer
		}
		switch {
		case xIsPath && isPtrVar(xPath) && yIsNull:
			c = &Cond{Kind: CondNilEQ, Var: xPath.Var}
		case yIsPath && isPtrVar(yPath) && xIsNull:
			c = &Cond{Kind: CondNilEQ, Var: yPath.Var}
		case xIsPath && yIsPath && isPtrVar(xPath) && isPtrVar(yPath):
			c = &Cond{Kind: CondPtrEQ, Var: xPath.Var, Var2: yPath.Var}
		}
		if c.Kind != CondOpaque && bin.Op == token.NEQ {
			switch c.Kind {
			case CondNilEQ:
				c.Kind = CondNilNE
			case CondPtrEQ:
				c.Kind = CondPtrNE
			}
		}
	}
	if c.Kind == CondOpaque {
		cur = b.scalarReads(e, cur)
	}
	br := b.g.newNode(NodeBranch)
	br.Cond = c
	link(cur, br)
	return br, cur
}

func (b *builder) while(s *ast.WhileStmt, cur *Node) *Node {
	head := b.g.newNode(NodeJoin)
	link(cur, head)
	firstBody := len(b.g.Nodes) // condition nodes re-execute every iteration
	br, _ := b.cond(s.Cond, head)

	loop := &Loop{Head: head, Branch: br, Body: map[*Node]bool{}, While: s}
	head.Loop = loop
	b.g.Loops = append(b.g.Loops, loop)
	bodyEntry := b.g.newNode(NodeJoin)
	br.Succs = append(br.Succs, bodyEntry) // true edge
	bodyEntry.Preds = append(bodyEntry.Preds, br)
	tail := b.block(bodyOf(s.Body), bodyEntry)
	if tail != nil {
		link(tail, head) // back edge
	}
	for _, n := range b.g.Nodes[firstBody:] {
		loop.Body[n] = true
	}

	after := b.g.newNode(NodeJoin)
	br.Succs = append(br.Succs, after) // false edge
	after.Preds = append(after.Preds, br)
	return after
}

// bodyOf wraps a non-block loop/if body in a synthetic block.
func bodyOf(s ast.Stmt) *ast.Block {
	if blk, ok := s.(*ast.Block); ok {
		return blk
	}
	return &ast.Block{Stmts: []ast.Stmt{s}}
}

func (b *builder) ifStmt(s *ast.IfStmt, cur *Node) *Node {
	br, _ := b.cond(s.Cond, cur)

	thenEntry := b.g.newNode(NodeJoin)
	br.Succs = append(br.Succs, thenEntry)
	thenEntry.Preds = append(thenEntry.Preds, br)
	thenTail := b.block(bodyOf(s.Then), thenEntry)

	elseEntry := b.g.newNode(NodeJoin)
	br.Succs = append(br.Succs, elseEntry)
	elseEntry.Preds = append(elseEntry.Preds, br)
	var elseTail *Node = elseEntry
	if s.Else != nil {
		elseTail = b.block(bodyOf(s.Else), elseEntry)
	}

	if thenTail == nil && elseTail == nil {
		return nil
	}
	join := b.g.newNode(NodeJoin)
	if thenTail != nil {
		link(thenTail, join)
	}
	if elseTail != nil {
		link(elseTail, join)
	}
	return join
}

func (b *builder) call(call *ast.CallExpr, cur *Node) *Node {
	return b.callExpr(call, cur)
}

// callExpr lowers a call. Every pointer-valued argument is reduced to a
// variable (field paths via a Deref temp, allocations via AssignNew) and
// recorded positionally in Bind so the call transfer knows exactly which
// caller value reaches which callee formal; Args is the deduplicated set of
// those variables — the escaping roots the opaque-call havoc operates on.
func (b *builder) callExpr(call *ast.CallExpr, cur *Node) *Node {
	bind := make([]string, len(call.Args))
	var ptrArgs []string
	seen := map[string]bool{}
	for i, a := range call.Args {
		isPtr := false
		switch arg := a.(type) {
		case *ast.NullLit:
			continue // binds as "": nothing escapes
		case *ast.NewExpr:
			isPtr = true
		case *ast.Path:
			isPtr = b.pathType(arg, len(arg.Fields)).Kind == types.KindPointer
		}
		if !isPtr {
			cur = b.scalarReads(a, cur)
			continue
		}
		v, cur2 := b.evalPointer(a, cur)
		cur = cur2
		bind[i] = v
		if v != "" && !seen[v] {
			seen[v] = true
			ptrArgs = append(ptrArgs, v)
		}
	}
	return b.emit(cur, &Stmt{Op: Call, Callee: call.Name, Args: ptrArgs, Bind: bind, Pos: call.NamePos})
}

// String renders the CFG for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, n := range g.Nodes {
		var desc string
		switch n.Kind {
		case NodeEntry:
			desc = "entry"
		case NodeExit:
			desc = "exit"
		case NodeStmt:
			desc = n.Stmt.String()
		case NodeBranch:
			desc = "branch " + n.Cond.String()
		case NodeJoin:
			desc = "join"
			if n.Loop != nil {
				desc = "loop-head"
			}
		}
		var succs []string
		for _, s := range n.Succs {
			succs = append(succs, fmt.Sprintf("%d", s.ID))
		}
		fmt.Fprintf(&sb, "%3d: %-30s -> %s\n", n.ID, desc, strings.Join(succs, ","))
	}
	return sb.String()
}
