package pathmatrix

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// dumpProgram renders every function's analysis — entry/exit matrices plus
// each loop's fixed-point and iteration matrices — as one deterministic
// string, for byte-level comparison between engine configurations.
func dumpProgram(t *testing.T, results map[string]*FuncResult) string {
	t.Helper()
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fr := results[name]
		b.WriteString("=== " + name + " ===\n")
		b.WriteString(fr.Result.String())
		for _, l := range fr.Graph.Loops {
			b.WriteString("loop head:\n")
			b.WriteString(fr.Result.LoopHead(l).String())
			if len(l.Branch.Succs) > 0 {
				b.WriteString("iteration matrix:\n")
				b.WriteString(fr.Result.IterationMatrix(l).String())
			}
		}
	}
	return b.String()
}

// TestParallelDeterminism: serial and parallel AnalyzeProgram must produce
// byte-identical matrix renderings for every testdata program.
func TestParallelDeterminism(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "..", "testdata", "*.mini"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			info, errs := types.Check(prog)
			if len(errs) > 0 {
				t.Fatal(errs[0])
			}
			serial, err := AnalyzeProgramCtx(context.Background(), info, info.Env, 1)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := AnalyzeProgramCtx(context.Background(), info, info.Env, 8)
			if err != nil {
				t.Fatal(err)
			}
			ds, dp := dumpProgram(t, serial), dumpProgram(t, parallel)
			if ds != dp {
				t.Errorf("serial and parallel dumps differ:\n--- serial ---\n%s\n--- parallel ---\n%s", ds, dp)
			}
		})
	}
}

// TestAnalyzeProgramMatchesLegacy: the pooled parallel engine must agree
// with a freshly normalized serial run function by function.
func TestAnalyzeProgramMatchesLegacy(t *testing.T) {
	src := `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
void zero(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = 0;
        p = p->next;
    }
}
`
	info := types.MustCheck(parser.MustParse(src))
	results := AnalyzeProgram(info, info.Env)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for name, fr := range results {
		g := norm.Build(info.Funcs[name], info.Env)
		want := Analyze(g, info.Env)
		if got, w := fr.Result.String(), want.String(); got != w {
			t.Errorf("%s: program analysis differs from direct analysis:\n%s\nvs\n%s", name, got, w)
		}
	}
}

// TestAnalyzeCtxCancel: a cancelled context aborts the fixed-point run with
// the context's error instead of spinning to completion.
func TestAnalyzeCtxCancel(t *testing.T) {
	info := types.MustCheck(parser.MustParse(shiftOrigin))
	fi := info.Func("shift")
	g := norm.Build(fi, info.Env)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts
	if _, err := AnalyzeCtx(ctx, g, info.Env); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeCtx error = %v, want context.Canceled", err)
	}
	if _, err := AnalyzeProgramCtx(ctx, info, info.Env, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeProgramCtx error = %v, want context.Canceled", err)
	}

	// An expired deadline behaves the same way.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := AnalyzeCtx(dctx, g, info.Env); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AnalyzeCtx error = %v, want context.DeadlineExceeded", err)
	}
}
