package pathmatrix

import (
	"testing"

	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// setBounds temporarily overrides the domain bounds.
func setBounds(t testing.TB, countCap, maxSteps, entrySize int) {
	t.Helper()
	oc, om, oe := CountCap, MaxSteps, EntrySize
	CountCap, MaxSteps, EntrySize = countCap, maxSteps, entrySize
	t.Cleanup(func() { CountCap, MaxSteps, EntrySize = oc, om, oe })
}

// TestAblationCountCapOne: even with the tightest count widening the shift
// loop converges to the same qualitative answer (next+ and no alias); the
// cap only controls how many exact counts are distinguished first.
func TestAblationCountCapOne(t *testing.T) {
	setBounds(t, 1, 4, 8)
	r, g := analyzeFn(t, shiftOrigin, "shift")
	m := r.LoopHead(g.Loops[0])
	if e := m.Entry("hd", "p").String(); e != "next+" {
		t.Errorf("PM(hd,p) = %q under CountCap=1", e)
	}
	if m.MayAlias("hd", "p") {
		t.Error("soundly-no alias answer must survive tight widening")
	}
}

// TestAblationMaxStepsOne: with single-step paths only, multi-field facts
// degrade to Top — precision is lost (the tree siblings become possible
// aliases) but never in the unsound direction.
func TestAblationMaxStepsOne(t *testing.T) {
	baseline := func() (bool, bool) {
		r, g := analyzeFn(t, pBinTree+`
void f(PBinTree *root) {
    PBinTree *l, *rg, *gl;
    l = root->left;
    rg = root->right;
    gl = l->left;
}`, "f")
		m := r.BeforeNode(g.Exit)
		return m.MayAlias("l", "rg"), m.MayAlias("root", "gl")
	}

	sibs, rootGl := baseline()
	if sibs {
		t.Fatal("default bounds should separate siblings")
	}
	if rootGl {
		t.Fatal("default bounds should separate root from grandchild")
	}

	setBounds(t, 4, 1, 8)
	sibs1, _ := baseline()
	// Sibling disjointness is a one-step fact (group rule) and survives;
	// what matters is nothing flips from may-alias to no-alias unsoundly.
	_ = sibs1
}

// TestAblationEntrySaturation: a tiny entry cap forces early Top collapse;
// the analysis stays terminating and conservative.
func TestAblationEntrySaturation(t *testing.T) {
	setBounds(t, 4, 4, 1)
	r, g := analyzeFn(t, pBinTree+`
void find(PBinTree *root, int key) {
    PBinTree *c;
    c = root;
    while (c != NULL) {
        if (c->data < key) {
            c = c->right;
        } else {
            c = c->left;
        }
    }
}`, "find")
	m := r.LoopHead(g.Loops[0])
	// With entries collapsing to Top, root/c must (conservatively) alias.
	if !m.MayAlias("root", "c") {
		t.Error("saturated entries must answer may-alias")
	}
}

// TestAblationSoundnessUnderAllBounds re-runs the headline no-alias checks
// under a grid of bounds: answers may get weaker (more may-alias) but a
// no-alias verdict, when given, must match the default analysis.
func TestAblationSoundnessUnderAllBounds(t *testing.T) {
	for _, cc := range []int{1, 2, 4} {
		for _, ms := range []int{1, 2, 4} {
			for _, es := range []int{2, 4, 8} {
				setBounds(t, cc, ms, es)
				r, g := analyzeFn(t, shiftOrigin, "shift")
				m := r.LoopHead(g.Loops[0])
				// hd/p separation relies only on single-field facts, so it
				// must hold under every configuration.
				if m.MayAlias("hd", "p") {
					t.Errorf("cc=%d ms=%d es=%d: lost hd/p separation", cc, ms, es)
				}
			}
		}
	}
}

// BenchmarkAblationBounds measures analysis cost across domain bounds on a
// two-loop program (the design-choice ablation DESIGN.md calls out).
func BenchmarkAblationBounds(b *testing.B) {
	src := twoWayLL + pBinTree + `
void work(TwoWayLL *hd, PBinTree *root) {
    TwoWayLL *p;
    PBinTree *c;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
    c = root;
    while (c != NULL) {
        if (c->data > 0) {
            c = c->left;
        } else {
            c = c->right;
        }
    }
}
`
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func("work")
	g := norm.Build(fi, info.Env)

	for _, cfg := range []struct {
		name       string
		cc, ms, es int
	}{
		{"tight-1-1-2", 1, 1, 2},
		{"default-4-4-8", 4, 4, 8},
		{"loose-8-8-16", 8, 8, 16},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			setBounds(b, cfg.cc, cfg.ms, cfg.es)
			for i := 0; i < b.N; i++ {
				Analyze(g, info.Env)
			}
		})
	}
}
