package pathmatrix

import "sync"

// Interning enables hash-consing of path expressions: structurally equal
// paths share one canonical backing slice with precomputed key, display, and
// signature strings, so set-membership and join stop re-rendering identical
// expressions. It is a variable (not a constant) only so the benchmarks can
// compare the interned engine against the naive one; production code should
// leave it alone. Toggling it while analyses are running is not safe.
var Interning = true

// internShardCount shards the intern table to keep lock contention low when
// AnalyzeProgram runs functions in parallel. Must be a power of two.
const internShardCount = 64

// pathMeta is one canonical path expression with its memoized renderings.
// The path slice is immutable once published: every analysis goroutine may
// hold references to it.
type pathMeta struct {
	path Path
	key  string // Path.Key(): canonical map key, '~' markers kept
	str  string // Path.String(): the paper's display form
	sig  string // field signature with counts erased (see sigKey)
}

// internShard is one lock-striped slice of the table. Buckets chain metas
// whose paths collide on the 64-bit hash; lookups compare structurally.
type internShard struct {
	mu     sync.RWMutex
	byHash map[uint64][]*pathMeta
}

type pathInterner struct {
	shards [internShardCount]internShard
	// canon indexes published metas by the address of their first step, so
	// looking up a path that is already canonical costs one lock-free load
	// instead of re-hashing the content. Entries are only ever added.
	canon sync.Map // *Step -> *pathMeta
}

// metaOf returns the canonical meta for p. Canonical slices hit the pointer
// index; everything else goes through the content-addressed table. The length
// check rejects prefix subslices that share a canonical backing array.
func (in *pathInterner) metaOf(p Path) *pathMeta {
	if v, ok := in.canon.Load(&p[0]); ok {
		if m := v.(*pathMeta); len(m.path) == len(p) {
			return m
		}
	}
	return in.intern(p)
}

var interner = newPathInterner()

// singleCache maps a field name to its canonical one-step path (see single).
var singleCache sync.Map // string -> Path

func newPathInterner() *pathInterner {
	in := &pathInterner{}
	for i := range in.shards {
		in.shards[i].byHash = map[uint64][]*pathMeta{}
	}
	return in
}

// hashPath is FNV-1a over the steps. It allocates nothing, so probing the
// table with a stack-built candidate path stays allocation-free on hits.
func hashPath(p Path) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range p {
		for i := 0; i < len(s.Field); i++ {
			h ^= uint64(s.Field[i])
			h *= prime64
		}
		h ^= uint64(s.Min)
		h *= prime64
		if s.Plus {
			h ^= 0x2b
		}
		h *= prime64
	}
	return h
}

// find returns the canonical meta for p, or nil. The bucket slice is copied
// out under the read lock; its published elements are immutable.
func (in *pathInterner) find(h uint64, p Path) *pathMeta {
	sh := &in.shards[h&(internShardCount-1)]
	sh.mu.RLock()
	bucket := sh.byHash[h]
	sh.mu.RUnlock()
	for _, m := range bucket {
		if m.path.Equal(p) {
			return m
		}
	}
	return nil
}

// intern returns the canonical meta for p, creating it on first sight. The
// copy and the string renderings happen outside the lock; a racing insert of
// the same path is resolved by the re-check under the write lock.
func (in *pathInterner) intern(p Path) *pathMeta {
	h := hashPath(p)
	if m := in.find(h, p); m != nil {
		return m
	}
	cp := make(Path, len(p))
	copy(cp, p)
	m := &pathMeta{path: cp, key: cp.computeKey(), str: cp.computeString(), sig: cp.computeSig()}
	sh := &in.shards[h&(internShardCount-1)]
	sh.mu.Lock()
	for _, o := range sh.byHash[h] {
		if o.path.Equal(p) {
			sh.mu.Unlock()
			return o
		}
	}
	sh.byHash[h] = append(sh.byHash[h], m)
	sh.mu.Unlock()
	in.canon.Store(&cp[0], m)
	return m
}

// Intern returns the canonical copy of p: the same backing slice for every
// structurally equal path, so equality degenerates to comparing the slice
// header (see Path.Equal's fast path). Interned paths must never be mutated
// in place. The empty path interns to itself.
func Intern(p Path) Path {
	if !Interning || len(p) == 0 {
		return p
	}
	return interner.metaOf(p).path
}

// InternerStats reports the number of distinct paths in the intern table,
// for tests and capacity debugging. The bounded path domain (MaxSteps,
// CountCap) keeps the table small for any fixed set of field names.
func InternerStats() (paths int) {
	for i := range interner.shards {
		sh := &interner.shards[i]
		sh.mu.RLock()
		for _, bucket := range sh.byHash {
			paths += len(bucket)
		}
		sh.mu.RUnlock()
	}
	return paths
}
