package pathmatrix

import (
	"context"
	"testing"

	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// summaryProgram checks src and returns its type info plus the lowered
// graph of fn.
func summaryProgram(t *testing.T, src, fn string) (*types.Info, *norm.Graph) {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("function %s missing", fn)
	}
	return info, norm.Build(fi, info.Env)
}

// TestSummaryMorePreciseThanHavoc pins the headline precision win: at a
// call site whose callee provably mutates nothing, the summarized transfer
// keeps q = p->next a pure path relation and the matrix valid, where the
// havoc smears Top over the pair (admitting an alias) and taints validity.
func TestSummaryMorePreciseThanHavoc(t *testing.T) {
	src := twoWayLL + `
void reader(TwoWayLL *x) {
    int k;
    k = x->data;
}
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = p->next;
    reader(p);
}`
	info, g := summaryProgram(t, src, "f")

	hm := exitMatrix(Analyze(g, info.Env), g)
	if !hm.MayAlias("p", "q") || hm.Valid() {
		t.Fatal("havoc left the call site unscathed; the precision claim below is vacuous")
	}

	tab := ComputeSummaries(info, info.Env)
	r, err := AnalyzeCtxWith(context.Background(), g, info.Env, tab)
	if err != nil {
		t.Fatal(err)
	}
	m := exitMatrix(r, g)
	if m.MayAlias("p", "q") {
		t.Error("summarized call to a mutation-free callee must keep q = p->next alias-free")
	}
	if !m.Valid() {
		t.Error("mutation-free callee must not taint validity")
	}
}

// TestRecursiveShapeMutatorFallsBack: a recursive callee that stores
// pointer fields has no summary; its call sites take the havoc AND taint
// the caller's validity (the callee's stores were never validated).
func TestRecursiveShapeMutatorFallsBack(t *testing.T) {
	src := twoWayLL + `
void chop(TwoWayLL *x, int d) {
    if (x != NULL && d > 0) {
        x->next = NULL;
        chop(x, d - 1);
    }
}
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = p->next;
    chop(p, 3);
}`
	info, g := summaryProgram(t, src, "f")
	tab := ComputeSummaries(info, info.Env)
	if !tab.Recursive("chop") {
		t.Fatal("chop must be marked recursive")
	}
	if tab.Lookup("chop") != nil {
		t.Fatal("recursive functions must not get row summaries")
	}
	eff := tab.Effects("chop")
	if eff == nil || !eff.ShapeMut {
		t.Fatalf("chop effects = %+v, want shape-mutating", eff)
	}

	before := ReadStats().SummaryFallbacks
	r, err := AnalyzeCtxWith(context.Background(), g, info.Env, tab)
	if err != nil {
		t.Fatal(err)
	}
	if ReadStats().SummaryFallbacks == before {
		t.Error("recursive shape mutator must count a summary fallback")
	}
	m := exitMatrix(r, g)
	if !m.MayAlias("p", "q") {
		t.Error("fallback havoc must degrade the relations of escaping args")
	}
	if m.Valid() {
		t.Error("a never-validated shape mutator must taint the caller's validity")
	}
}

// TestRecursiveDataOnlyCalleeIsNoOp: recursion alone is no reason to lose
// precision — a recursive callee whose whole call component performs no
// pointer store or free leaves the matrix (and validity) untouched.
func TestRecursiveDataOnlyCalleeIsNoOp(t *testing.T) {
	src := twoWayLL + `
void mark(TwoWayLL *x, int d) {
    if (x != NULL && d > 0) {
        x->data = d;
        mark(x->next, d - 1);
    }
}
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = p;
    mark(p, 3);
}`
	info, g := summaryProgram(t, src, "f")
	tab := ComputeSummaries(info, info.Env)
	if eff := tab.Effects("mark"); eff == nil || eff.ShapeMut {
		t.Fatalf("mark effects = %+v, want data-only", eff)
	}
	r, err := AnalyzeCtxWith(context.Background(), g, info.Env, tab)
	if err != nil {
		t.Fatal(err)
	}
	m := exitMatrix(r, g)
	if !m.MustAlias("p", "q") || !m.Valid() {
		t.Error("data-only recursive callee must be a path-matrix no-op")
	}
}

// TestAliasedActualsTaintValidity reproduces the divergence the calls-
// profile fuzz campaign found: a callee that links its two arguments
// (p->next = q; q->prev = p) validates cleanly under the generic unrelated
// entry, but called with aliased actuals it creates self-loops the caller
// would otherwise never suspect. The call must taint the caller's validity
// so every later derivation stays conservative.
func TestAliasedActualsTaintValidity(t *testing.T) {
	src := twoWayLL + `
void link(TwoWayLL *x, TwoWayLL *y) {
    if (x != NULL && y != NULL) {
        x->next = y;
        y->prev = x;
    }
}
void f(TwoWayLL *p) {
    TwoWayLL *q, *d;
    q = p;
    link(q, p);
    d = q->prev;
}`
	info, g := summaryProgram(t, src, "f")
	tab := ComputeSummaries(info, info.Env)
	if sum := tab.Lookup("link"); sum == nil || sum.ExitInvalid {
		t.Fatalf("link must summarize exit-valid under the generic entry (sum=%+v)", sum)
	}
	r, err := AnalyzeCtxWith(context.Background(), g, info.Env, tab)
	if err != nil {
		t.Fatal(err)
	}
	m := exitMatrix(r, g)
	if m.Valid() {
		t.Fatal("aliased actuals must taint validity at the call site")
	}
	// With validity gone, the runtime self-loop q->prev == q stays covered.
	if !m.MayAlias("q", "d") {
		t.Error("d = q->prev after the self-loop store must stay a may-alias")
	}
}

// TestUnrelatedActualsKeepValidity is the counterpart: the same two-arg
// mutator called with provably unrelated actuals satisfies its summary's
// generic-entry assumptions, so the caller keeps validity and gains the
// instantiated rows instead of havoc.
func TestUnrelatedActualsKeepValidity(t *testing.T) {
	src := twoWayLL + `
void link(TwoWayLL *x, TwoWayLL *y) {
    if (x != NULL && y != NULL) {
        x->next = y;
        y->prev = x;
    }
}
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = new TwoWayLL;
    link(p, q);
}`
	info, g := summaryProgram(t, src, "f")
	tab := ComputeSummaries(info, info.Env)
	before := ReadStats().SummaryApplied
	r, err := AnalyzeCtxWith(context.Background(), g, info.Env, tab)
	if err != nil {
		t.Fatal(err)
	}
	if ReadStats().SummaryApplied == before {
		t.Error("unrelated actuals must take the summary path")
	}
	if !exitMatrix(r, g).Valid() {
		t.Error("generic-entry-compatible call must keep the caller valid")
	}
}

// TestSummaryCacheRecomputesOnlyChangedBodies is the engine-level contract
// behind POST /v1/reanalyze: resubmitting a program with one leaf function
// edited recomputes exactly that function's summary and reuses the rest.
func TestSummaryCacheRecomputesOnlyChangedBodies(t *testing.T) {
	base := twoWayLL + `
void sever(TwoWayLL *x) {
    if (x != NULL) {
        x->next = NULL;
    }
}
void touch(TwoWayLL *x) {
    if (x != NULL) {
        x->data = 1;
    }
}`
	edited := twoWayLL + `
void sever(TwoWayLL *x) {
    if (x != NULL) {
        x->prev = NULL;
    }
}
void touch(TwoWayLL *x) {
    if (x != NULL) {
        x->data = 1;
    }
}`
	ResetSummaryCache()
	info1 := types.MustCheck(parser.MustParse(base))
	tab1 := ComputeSummaries(info1, info1.Env)
	if tab1.Computed != 2 || tab1.Reused != 0 {
		t.Fatalf("cold run: computed=%d reused=%d, want 2/0", tab1.Computed, tab1.Reused)
	}

	info2 := types.MustCheck(parser.MustParse(edited))
	tab2 := ComputeSummaries(info2, info2.Env)
	if tab2.Computed != 1 || tab2.Reused != 1 {
		t.Fatalf("edited run: computed=%d reused=%d, want 1/1", tab2.Computed, tab2.Reused)
	}
	if tab1.Hash("touch") != tab2.Hash("touch") {
		t.Error("unchanged function must keep its summary hash")
	}
	if tab1.Hash("sever") == tab2.Hash("sever") {
		t.Error("edited function must re-key")
	}
}

// TestCalleeEffectChangeReKeysCaller pins the cache-key subtlety for
// unsummarized (recursive) callees: their contribution to a caller's key is
// their effects fingerprint, so an edit that changes the callee's effects
// re-keys the caller, while an effect-preserving edit keeps the caller's
// cached summary.
func TestCalleeEffectChangeReKeysCaller(t *testing.T) {
	mk := func(recBody string) string {
		return twoWayLL + `
void spin(TwoWayLL *x, int d) {
    if (x != NULL && d > 0) {
        ` + recBody + `
        spin(x, d - 1);
    }
}
void f(TwoWayLL *p) {
    spin(p, 2);
}`
	}
	ResetSummaryCache()
	infoA := types.MustCheck(parser.MustParse(mk("x->data = 1;")))
	tabA := ComputeSummaries(infoA, infoA.Env)

	// Effect-preserving edit of the recursive callee: f's summary is reused.
	infoB := types.MustCheck(parser.MustParse(mk("x->data = 2;")))
	tabB := ComputeSummaries(infoB, infoB.Env)
	if tabB.Computed != 0 || tabB.Reused != 1 {
		t.Errorf("effect-preserving edit: computed=%d reused=%d, want 0/1", tabB.Computed, tabB.Reused)
	}
	if tabA.Hash("f") != tabB.Hash("f") {
		t.Error("caller must keep its summary when the callee's effects are unchanged")
	}

	// Effect-changing edit (data write becomes a pointer store): f re-keys.
	infoC := types.MustCheck(parser.MustParse(mk("x->next = NULL;")))
	tabC := ComputeSummaries(infoC, infoC.Env)
	if tabC.Computed != 1 {
		t.Errorf("effect-changing edit: computed=%d, want 1", tabC.Computed)
	}
	if tabA.Hash("f") == tabC.Hash("f") {
		t.Error("caller must re-key when the callee's effects change")
	}
}

// TestSummaryTableDeterministic: a warm cache changes speed, never results —
// cold and warm tables produce byte-identical analysis output.
func TestSummaryTableDeterministic(t *testing.T) {
	src := twoWayLL + `
void link(TwoWayLL *x, TwoWayLL *y) {
    if (x != NULL && y != NULL) {
        x->next = y;
        y->prev = x;
    }
}
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = new TwoWayLL;
    link(p, q);
    q = p->next;
}`
	render := func() string {
		info, g := summaryProgram(t, src, "f")
		tab := ComputeSummaries(info, info.Env)
		r, err := AnalyzeCtxWith(context.Background(), g, info.Env, tab)
		if err != nil {
			t.Fatal(err)
		}
		return exitMatrix(r, g).String()
	}
	ResetSummaryCache()
	cold := render()
	warm := render()
	if cold != warm {
		t.Errorf("cold/warm mismatch:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}
