package pathmatrix

import (
	"crypto/sha256"
	"sort"
	"strings"
)

// Structural hashing of matrices, one level up from Path interning: each
// matrix carries a lazily computed content fingerprint over its rows and
// violations. The fingerprint is pure content — no per-run identifiers — so
// it is valid across analysis runs and is the row-set component of the
// transfer-function memo key. Every mutator invalidates the cached value;
// Clone carries it (a clone has identical content by construction).

// entryCanon renders an entry in canonical form: sorted relation keys, each
// followed by a certainty mark. Rel.key() already encodes kind, path and via
// provenance; certainty is the only identity component it omits.
func entryCanon(e Entry, b *strings.Builder) {
	var kbuf [8]string
	keys := kbuf[:0]
	for k := range e {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		b.WriteString(k)
		if e[k].Certain {
			b.WriteByte('\x02')
		}
		b.WriteByte('\x1d')
	}
}

// fingerprint returns the matrix's content hash, computing and caching it on
// first use. Rows (cells grouped by source variable) are rendered in sorted
// order, and violations with every identity field spelled out explicitly
// (Violation.String omits Partner). The variable list is deliberately
// excluded: transfer functions read only cells and violations, so two
// matrices with equal fingerprints transfer identically even when declared
// over different variable sets.
//
// When tab is non-nil, each canonical row is also interned there so the run
// can report how many rows it encountered that were structurally identical
// to rows already seen.
func (m *Matrix) fingerprint(tab *rowTable) string {
	if m.fp != "" {
		return m.fp
	}
	rows := make(map[string][]string, len(m.cells))
	for k, e := range m.cells {
		if len(e) == 0 {
			continue
		}
		var b strings.Builder
		b.WriteString(k[1])
		b.WriteByte('\x1f')
		entryCanon(e, &b)
		rows[k[0]] = append(rows[k[0]], b.String())
	}
	rowStrs := make([]string, 0, len(rows))
	for src, cells := range rows {
		sort.Strings(cells)
		rowStrs = append(rowStrs, src+"\x1e"+strings.Join(cells, "\x1e"))
	}
	sort.Strings(rowStrs)
	if tab != nil {
		for _, r := range rowStrs {
			tab.intern(r)
		}
	}

	var b strings.Builder
	for _, r := range rowStrs {
		b.WriteString(r)
		b.WriteByte('\x00')
	}
	b.WriteByte('\x01')
	if len(m.viols) > 0 {
		vs := make([]string, 0, len(m.viols))
		for v := range m.viols {
			vs = append(vs, v.Prop+"\x1f"+v.Field+"\x1f"+v.Partner+"\x1f"+v.Base+"\x1f"+v.Other)
		}
		sort.Strings(vs)
		for _, v := range vs {
			b.WriteString(v)
			b.WriteByte('\x00')
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	m.fp = string(sum[:])
	return m.fp
}

// rowTable interns canonical row strings for one analysis run, assigning
// dense ids. It exists for observability: dedupRows counts rows whose exact
// content had already appeared earlier in the run (the redundancy the shared
// rows and memo layers exploit). Fingerprints never embed the per-run ids —
// that would tie them to one run and break the cross-run memo.
type rowTable struct {
	ids  map[string]int
	dups int
}

func newRowTable() *rowTable { return &rowTable{ids: map[string]int{}} }

// intern returns the dense id for a canonical row, counting repeats.
func (t *rowTable) intern(row string) int {
	if id, ok := t.ids[row]; ok {
		t.dups++
		engineStats.dedupRows.Add(1)
		return id
	}
	id := len(t.ids)
	t.ids[row] = id
	return id
}
