package pathmatrix

import (
	"context"
	"strings"
	"testing"

	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const twoWayLL = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

const pBinTree = `
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
`

const cirL = `
type CirL [X] {
    int data;
    CirL *next is circular along X;
};
`

// analyzeFn parses, checks, normalizes and analyzes one function.
func analyzeFn(t *testing.T, src, fn string) (*Result, *norm.Graph) {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("function %s missing", fn)
	}
	g := norm.Build(fi, info.Env)
	return Analyze(g, info.Env), g
}

// analyzeFnSum analyzes fn compositionally, under a summary table computed
// for the whole program.
func analyzeFnSum(t *testing.T, src, fn string) (*Result, *norm.Graph) {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("function %s missing", fn)
	}
	g := norm.Build(fi, info.Env)
	r, err := AnalyzeCtxWith(context.Background(), g, info.Env, ComputeSummaries(info, info.Env))
	if err != nil {
		t.Fatal(err)
	}
	return r, g
}

// analyzeStripped runs the annotation-free (classic) analysis.
func analyzeStripped(t *testing.T, src, fn string) (*Result, *norm.Graph) {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	g := norm.Build(fi, info.Env)
	return Analyze(g, info.Env.Stripped()), g
}

// exitMatrix returns the matrix at function exit.
func exitMatrix(r *Result, g *norm.Graph) *Matrix { return r.BeforeNode(g.Exit) }

// afterStmt returns the matrix right after the i-th normalized statement
// (counting statement nodes in node order).
func afterStmt(r *Result, g *norm.Graph, i int) *Matrix {
	count := 0
	for _, n := range g.Nodes {
		if n.Kind == norm.NodeStmt {
			if count == i {
				return r.AfterNode(n)
			}
			count++
		}
	}
	return nil
}

// shiftOrigin is the paper's Section 5.1.2 program.
const shiftOrigin = twoWayLL + `
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
`

// TestPaperSection512BeforeLoop reproduces the first path matrix of
// Section 5.1.2: just before the loop, PM(hd, p) = next (one link).
func TestPaperSection512BeforeLoop(t *testing.T) {
	r, g := analyzeFn(t, shiftOrigin, "shift")
	m := afterStmt(r, g, 0) // after p = hd->next
	e := m.Entry("hd", "p")
	if e.String() != "next" {
		t.Errorf("PM(hd,p) = %q, want %q", e.String(), "next")
	}
	if m.MayAlias("hd", "p") {
		t.Error("hd and p must not alias after one deref of a uniquely forward field")
	}
}

// TestPaperSection512FixedPoint reproduces the fixed-point matrix: inside
// the loop PM(hd, p) = next+ and hd, p are never aliases.
func TestPaperSection512FixedPoint(t *testing.T) {
	r, g := analyzeFn(t, shiftOrigin, "shift")
	loop := g.Loops[0]
	m := r.LoopHead(loop)
	e := m.Entry("hd", "p")
	if e.String() != "next+" {
		t.Errorf("PM(hd,p) at fixed point = %q, want %q", e.String(), "next+")
	}
	for _, re := range e.rels() {
		if !re.Certain {
			t.Error("next+ should be a definite path at the fixed point")
		}
	}
	if m.MayAlias("hd", "p") {
		t.Error("false alias hd/p at fixed point")
	}
	if !m.Valid() {
		t.Errorf("abstraction should be valid; violations: %v", m.Violations())
	}
}

// TestPaperSection512Primed reproduces the primed-variable entries:
// PM(p', p) = next (successive iterates one link apart), PM(hd', p) = next+,
// and no aliasing between hd and any iterate of p.
func TestPaperSection512Primed(t *testing.T) {
	r, g := analyzeFn(t, shiftOrigin, "shift")
	im := r.IterationMatrix(g.Loops[0])

	if e := im.Entry("p"+Shadow, "p"); e.String() != "next" {
		t.Errorf("PM(p',p) = %q, want next", e.String())
	}
	// After the body runs once more, p is at least two links past hd (the
	// paper displays the looser next+).
	if e := im.Entry("hd"+Shadow, "p"); e.String() != "next^2+" {
		t.Errorf("PM(hd',p) = %q, want next^2+", e.String())
	}
	if im.MayAlias("p"+Shadow, "p") {
		t.Error("successive iterates of p falsely alias")
	}
	if im.MayAlias("hd", "p") || im.MayAlias("hd"+Shadow, "p") {
		t.Error("hd falsely aliases iterate of p")
	}
}

// TestClassicAnalysisConservative shows the contrast the paper draws: with
// the ADDS information stripped (all fields unknown), hd and p are possible
// aliases everywhere in the loop.
func TestClassicAnalysisConservative(t *testing.T) {
	r, g := analyzeStripped(t, shiftOrigin, "shift")
	m := r.LoopHead(g.Loops[0])
	if !m.MayAlias("hd", "p") {
		t.Error("classic analysis must conservatively alias hd and p")
	}
}

func TestParamsMayAlias(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *a, TwoWayLL *b) {
    a = a;
}`, "f")
	m := r.AtEntry()
	if !m.MayAlias("a", "b") {
		t.Error("same-type parameters must initially be possible aliases")
	}
	_ = g
}

func TestDifferentTypesNeverAlias(t *testing.T) {
	r, _ := analyzeFn(t, twoWayLL+pBinTree+`
void f(TwoWayLL *a, PBinTree *b) {
    a = a;
}`, "f")
	if r.AtEntry().MayAlias("a", "b") {
		t.Error("pointers to different record types cannot alias in mini")
	}
}

func TestAssignCreatesMustAlias(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = p;
}`, "f")
	m := exitMatrix(r, g)
	if !m.MustAlias("p", "q") {
		t.Errorf("q = p must make them definite aliases; PM(p,q)=%q PM(q,p)=%q",
			m.Entry("p", "q"), m.Entry("q", "p"))
	}
}

func TestNilKills(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = p;
    q = NULL;
}`, "f")
	m := exitMatrix(r, g)
	if m.MayAlias("p", "q") {
		t.Error("q = NULL must clear q's aliases")
	}
}

func TestNewIsUnrelated(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = new TwoWayLL;
}`, "f")
	m := exitMatrix(r, g)
	if m.MayAlias("p", "q") {
		t.Error("a fresh node cannot alias an existing pointer")
	}
}

// TestBinTreeSubtreesDisjoint exercises Def 4.7: left and right children of
// one node are unrelated (disjoint subtrees).
func TestBinTreeSubtreesDisjoint(t *testing.T) {
	r, g := analyzeFn(t, pBinTree+`
void f(PBinTree *root) {
    PBinTree *l, *rg;
    l = root->left;
    rg = root->right;
}`, "f")
	m := exitMatrix(r, g)
	if m.MayAlias("l", "rg") {
		t.Error("left and right subtrees must be disjoint (Def 4.7)")
	}
	// No alias relation may appear in either direction (a true sibling
	// path like parent.right is fine).
	if m.Entry("l", "rg").hasAliasInfo() || m.Entry("rg", "l").hasAliasInfo() {
		t.Errorf("alias info between siblings: %q / %q", m.Entry("l", "rg"), m.Entry("rg", "l"))
	}
	if m.MayAlias("root", "l") || m.MayAlias("root", "rg") {
		t.Error("children must not alias the root")
	}
}

// TestParentPointerShortens exercises Def 4.6: descending then taking the
// parent pointer returns to the original node.
func TestParentPointerShortens(t *testing.T) {
	r, g := analyzeFn(t, pBinTree+`
void f(PBinTree *root) {
    PBinTree *c, *back;
    c = root->left;
    back = c->parent;
}`, "f")
	m := exitMatrix(r, g)
	// back->left == c and back == root (may): PM(root, back) should admit
	// aliasing, and back should not falsely alias c.
	if !m.MayAlias("root", "back") {
		t.Error("parent of child may be the root")
	}
	if m.MayAlias("c", "back") {
		t.Error("child and its parent cannot alias (tree is acyclic)")
	}
}

// TestTwoWayListPrevReturns: q = p->next; r = q->prev means r may be p.
func TestTwoWayListPrevReturns(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *p) {
    TwoWayLL *q, *r;
    q = p->next;
    r = q->prev;
}`, "f")
	m := exitMatrix(r, g)
	if !m.MayAlias("p", "r") {
		t.Error("next then prev must admit returning to p (Def 4.6)")
	}
	if m.MayAlias("q", "r") {
		t.Error("q and its prev cannot alias")
	}
}

// TestCircularConservative reproduces Section 3.1's CirL discussion: with a
// circular field, p = q->next forces the compiler to assume p and q alias.
func TestCircularConservative(t *testing.T) {
	r, g := analyzeFn(t, cirL+`
void f(CirL *q) {
    CirL *p;
    p = q->next;
}`, "f")
	m := exitMatrix(r, g)
	if !m.MayAlias("p", "q") {
		t.Error("circular next must make p and q possible aliases")
	}
}

// TestCircularLoopStillSound: traversing a circular list in a loop keeps
// every pair a possible alias.
func TestCircularLoopStillSound(t *testing.T) {
	r, g := analyzeFn(t, cirL+`
void f(CirL *hd) {
    CirL *p;
    p = hd->next;
    while (p != hd) {
        p = p->next;
    }
}`, "f")
	m := r.LoopHead(g.Loops[0])
	if !m.MayAlias("hd", "p") {
		t.Error("circular traversal must keep hd/p as possible aliases")
	}
}

// TestUnknownDefaultConservative: a declaration with no ADDS clause behaves
// like CirL (the paper: "equivalent to saying nothing at all").
func TestUnknownDefaultConservative(t *testing.T) {
	r, g := analyzeFn(t, `
type L {
    int data;
    L *next;
};
void f(L *q) {
    L *p;
    p = q->next;
}`, "f")
	m := exitMatrix(r, g)
	if !m.MayAlias("p", "q") {
		t.Error("unannotated field must be treated conservatively")
	}
}

// TestValidationSubtreeMove reproduces Section 5.1.1's example: moving a
// subtree breaks tree-ness until the source edge is nulled.
func TestValidationSubtreeMove(t *testing.T) {
	r, g := analyzeFn(t, pBinTree+`
void move(PBinTree *dest, PBinTree *src) {
    dest->left = src->left;
    src->left = NULL;
}`, "move")

	// After the first store the abstraction must be invalid (shared
	// subtree: two left edges into one node).
	m1 := afterStmt(r, g, 1) // @t = src->left ; dest->left = @t
	if m1.Valid() {
		t.Fatal("abstraction should be invalid after dest->left = src->left")
	}
	found := false
	for _, v := range m1.Violations() {
		if v.Prop == "group-disjoint" || v.Prop == "unique" {
			found = true
		}
	}
	if !found {
		t.Errorf("want a disjointness violation, got %v", m1.Violations())
	}

	// After src->left = NULL the violation must be repaired.
	m2 := exitMatrix(r, g)
	if !m2.Valid() {
		t.Errorf("abstraction should be valid again, got %v", m2.Violations())
	}
}

// TestValidationCycleStore: storing an edge that may close a cycle on an
// acyclic field is flagged.
func TestValidationCycleStore(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = p->next;
    q->next = p;
}`, "f")
	m := exitMatrix(r, g)
	if m.Valid() {
		t.Fatal("q->next = p closes a cycle and must be flagged")
	}
	hasAcyclic := false
	for _, v := range m.Violations() {
		if v.Prop == "acyclic" {
			hasAcyclic = true
		}
	}
	if !hasAcyclic {
		t.Errorf("want acyclic violation, got %v", m.Violations())
	}
}

// TestListAppendValid: the standard append idiom keeps the abstraction
// valid: fresh node, link forward, link backward.
func TestListAppendValid(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void append(TwoWayLL *tail) {
    TwoWayLL *n;
    n = new TwoWayLL;
    n->next = NULL;
    tail->next = n;
    n->prev = tail;
}`, "append")
	m := exitMatrix(r, g)
	if !m.Valid() {
		t.Errorf("append idiom should keep abstraction valid, got %v", m.Violations())
	}
	if e := m.Entry("tail", "n").String(); !strings.Contains(e, "next") {
		t.Errorf("PM(tail,n) = %q, want a next path", e)
	}
}

// TestBackwardFirstThenForward: linking prev before next temporarily breaks
// Def 4.6, then repairs it.
func TestBackwardFirstThenForward(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void link(TwoWayLL *tail) {
    TwoWayLL *n;
    n = new TwoWayLL;
    n->prev = tail;
    tail->next = n;
}`, "link")
	m1 := afterStmt(r, g, 1) // after n->prev = tail
	if m1.Valid() {
		t.Error("n->prev = tail before tail->next = n must be flagged (Def 4.6)")
	}
	m2 := exitMatrix(r, g)
	if !m2.Valid() {
		t.Errorf("tail->next = n must repair the backward violation, got %v", m2.Violations())
	}
}

// TestStoreOverwriteRemovesPath: overwriting an edge must drop the old
// certain path so MustAlias does not lie.
func TestStoreOverwriteRemovesPath(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *p) {
    TwoWayLL *x, *y;
    x = p->next;
    p->next = NULL;
    y = p->next;
}`, "f")
	m := exitMatrix(r, g)
	// y reads the new (NULL) edge; x holds the old target. They must not be
	// reported as definite aliases.
	if m.MustAlias("x", "y") {
		t.Error("x and y must not be definite aliases after the edge changed")
	}
}

func TestBranchNilRefinement(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = p;
    if (q == NULL) {
        q = q;
    } else {
        q = q;
    }
}`, "f")
	// Find the branch node's true edge target and check q was killed there.
	for _, n := range g.Nodes {
		if n.Kind == norm.NodeBranch {
			trueSide := r.BeforeNode(n.Succs[0])
			if trueSide.MayAlias("p", "q") {
				t.Error("on q == NULL edge, q must alias nothing")
			}
			falseSide := r.BeforeNode(n.Succs[1])
			if !falseSide.MustAlias("p", "q") {
				t.Error("on q != NULL edge, q still aliases p")
			}
			return
		}
	}
	t.Fatal("no branch found")
}

func TestPtrEqRefinement(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *a, TwoWayLL *b) {
    if (a == b) {
        a = a;
    }
}`, "f")
	for _, n := range g.Nodes {
		if n.Kind == norm.NodeBranch {
			trueSide := r.BeforeNode(n.Succs[0])
			if !trueSide.MustAlias("a", "b") {
				t.Error("on a == b edge they must be definite aliases")
			}
			falseSide := r.BeforeNode(n.Succs[1])
			if falseSide.MustAlias("a", "b") {
				t.Error("on a != b edge they must not be definite aliases")
			}
			return
		}
	}
	t.Fatal("no branch found")
}

func TestCallHavocs(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void callee(TwoWayLL *x) { x = x; }
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = p->next;
    callee(p);
}`, "f")
	m := exitMatrix(r, g)
	if !m.MayAlias("p", "q") {
		t.Error("after a call taking p, its relations must be conservative")
	}
}

func TestCallDoesNotTouchUnrelated(t *testing.T) {
	// Under a summary table the callee is known mutation-free, so the call
	// leaves every relation (and validity) untouched.
	r, g := analyzeFnSum(t, twoWayLL+`
void callee(TwoWayLL *x) { x = x; }
void f(TwoWayLL *p) {
    TwoWayLL *q, *other;
    other = new TwoWayLL;
    q = p->next;
    callee(p);
}`, "f")
	m := exitMatrix(r, g)
	if m.MayAlias("other", "p") || m.MayAlias("other", "q") {
		t.Error("call must not affect provably separate structures")
	}
	if !m.related("p", "q") {
		t.Error("q = p->next must survive a mutation-free call")
	}
	if !m.Valid() {
		t.Error("a mutation-free callee cannot break the abstraction")
	}
}

// TestCallWithoutSummariesTaintsValidity pins the havoc-only contract: with
// no information about the callee, the analysis cannot keep claiming the
// declared abstraction holds after the call — the callee may have broken it
// in ways havoc relations do not express (e.g. a backward self-loop).
func TestCallWithoutSummariesTaintsValidity(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void callee(TwoWayLL *x) { x = x; }
void f(TwoWayLL *p) {
    callee(p);
}`, "f")
	if exitMatrix(r, g).Valid() {
		t.Error("opaque call must taint validity")
	}
}

func TestFreeKills(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *p) {
    TwoWayLL *q;
    q = p;
    free(q);
}`, "f")
	m := exitMatrix(r, g)
	if m.MayAlias("p", "q") {
		t.Error("freed pointer's relations must be dropped")
	}
}

// TestIndependentDimsDisjoint exercises Def 4.9 on the LOLS declaration.
func TestIndependentDimsDisjoint(t *testing.T) {
	r, g := analyzeFn(t, `
type LOLS [X] [Y] where X || Y {
    int data;
    LOLS *across is uniquely forward along X;
    LOLS *back is backward along X;
    LOLS *down is uniquely forward along Y;
    LOLS *up is backward along Y;
};
void f(LOLS *m) {
    LOLS *a, *d;
    a = m->across;
    d = m->down;
}`, "f")
	mx := exitMatrix(r, g)
	if mx.MayAlias("a", "d") {
		t.Error("across/down targets must be disjoint for independent dims (Def 4.9)")
	}
}

// TestDependentDimsConservative: OrthL's dims are dependent, so the same
// derefs must admit convergence.
func TestDependentDimsConservative(t *testing.T) {
	r, g := analyzeFn(t, `
type OrthL [X] [Y] {
    int data;
    OrthL *across is uniquely forward along X;
    OrthL *back is backward along X;
    OrthL *down is uniquely forward along Y;
    OrthL *up is backward along Y;
};
void f(OrthL *m) {
    OrthL *a, *d;
    a = m->across;
    d = m->down;
    a = a->down;
    d = d->across;
}`, "f")
	mx := exitMatrix(r, g)
	if !mx.MayAlias("a", "d") {
		t.Error("dependent dimensions must admit convergence (orthogonal list)")
	}
}

// TestTreeLoopTraversal: descending a binary tree in a loop never aliases
// the root.
func TestTreeLoopTraversal(t *testing.T) {
	r, g := analyzeFn(t, pBinTree+`
void find(PBinTree *root, int key) {
    PBinTree *c;
    c = root;
    while (c != NULL) {
        if (c->data < key) {
            c = c->right;
        } else {
            c = c->left;
        }
    }
}`, "find")
	// In-loop matrix: c may equal root on the first iteration, so PM must
	// admit alias OR a down-path; after one step it is strictly below.
	im := r.IterationMatrix(g.Loops[0])
	if im.MayAlias("root", "c") {
		// c after one body execution is strictly below root'. root' == root
		// only if root was never reassigned; here root is loop-invariant.
		t.Error("after one descent step, c cannot alias root")
	}
}

func TestMatrixString(t *testing.T) {
	r, g := analyzeFn(t, shiftOrigin, "shift")
	s := r.LoopHead(g.Loops[0]).String()
	if !strings.Contains(s, "next+") || !strings.Contains(s, "hd") {
		t.Errorf("matrix rendering missing entries:\n%s", s)
	}
}

func TestAnalyzeProgramAllFuncs(t *testing.T) {
	info := types.MustCheck(parser.MustParse(twoWayLL + `
void a(TwoWayLL *p) { p = p->next; }
void b(TwoWayLL *p) { p = NULL; }
`))
	res := AnalyzeProgram(info, info.Env)
	if len(res) != 2 || res["a"] == nil || res["b"] == nil {
		t.Fatalf("results = %v", res)
	}
}

// TestTerminationLongChain guards the widening: a straight-line chain of
// many derefs must converge (counts cap at CountCap).
func TestTerminationLongChain(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(twoWayLL + "\nvoid f(TwoWayLL *p) {\n")
	for i := 0; i < 30; i++ {
		sb.WriteString("    p = p->next;\n")
	}
	sb.WriteString("}\n")
	r, g := analyzeFn(t, sb.String(), "f")
	_ = exitMatrix(r, g) // must not hang or panic
}

// TestTerminationNestedLoops guards fixed-point convergence with nesting.
func TestTerminationNestedLoops(t *testing.T) {
	r, g := analyzeFn(t, twoWayLL+`
void f(TwoWayLL *hd) {
    TwoWayLL *p, *q;
    p = hd;
    while (p != NULL) {
        q = p;
        while (q != NULL) {
            q = q->next;
        }
        p = p->next;
    }
}`, "f")
	m := r.LoopHead(g.Loops[0])
	if m.MayAlias("hd", "q") && len(m.Entry("hd", "q")) == 0 {
		t.Error("inconsistent state")
	}
	_ = m
}

// TestTerminationSelfLoopStores pins fuzzer seed 1468: self-loop stores
// ("a->left = a") plus parent churn once made the fixed point oscillate;
// the node-visit widening must terminate the analysis with a sound,
// fully conservative result.
func TestTerminationSelfLoopStores(t *testing.T) {
	r, g := analyzeFn(t, pBinTree+`
void f(PBinTree *a) {
    PBinTree *b, *c, *d;
    int i;
    b = a;
    c = a;
    d = a;
    if (a != NULL) { a->parent = c; }
    i = 1;
    while (i > 0 && b != NULL) {
        b = b->right;
        i = i - 1;
    }
    b = a;
    a = new PBinTree;
    a = b;
    if (c != NULL) { c->parent = d; }
    if (d != NULL) { a = d->parent; }
    if (b != NULL) { d = b->parent; }
    while (i > 0 && c != NULL) {
        c = c->right;
        i = i - 1;
    }
    i = 3;
    while (i > 0 && d != NULL) {
        d = d->left;
        i = i - 1;
    }
    if (a != NULL) { a->left = a; }
    if (d != NULL) { d->parent = d; }
    d = b;
    if (d != NULL) { a = d->right; }
    d = new PBinTree;
}`, "f")
	// Must terminate (no panic) and be conservative at exit: the self-loop
	// stores broke the abstraction, so everything may alias.
	m := exitMatrix(r, g)
	if !m.MayAlias("a", "b") {
		t.Error("widened/broken state must stay conservative")
	}
	// Iteration matrices over every loop must terminate too.
	for _, l := range g.Loops {
		_ = r.IterationMatrix(l)
	}
}
