package pathmatrix

import (
	"sort"

	"repro/internal/norm"
	"repro/internal/shape"
)

// stepInfo resolves a path step field to its direction and dimension,
// handling dimension pseudo-fields (forward along their dimension).
func stepInfo(st *shape.Type, field string) (dir shape.Direction, dim string, ok bool) {
	if IsDimField(field) {
		return shape.Forward, field[1:], true
	}
	f := st.Field(field)
	if f == nil {
		return shape.None, "", false
	}
	return f.Dir, f.Dim, true
}

// forwardish reports whether the direction moves away from the origin.
func forwardish(d shape.Direction) bool {
	return d == shape.Forward || d == shape.UniquelyForward
}

// widenPath merges adjacent steps over different forward fields of the same
// dimension into a dimension pseudo-step — the paper's "down" widening for
// trees. Without it, tree-walking loops accumulate unboundedly many distinct
// left/right interleavings and the entry saturates to Top.
func widenPath(p Path, st *shape.Type) Path {
	if st == nil {
		return p
	}
	merges := false
	for i := 1; i < len(p); i++ {
		if mergeableSteps(st, p[i-1], p[i]) {
			merges = true
			break
		}
	}
	if !merges {
		return p
	}
	out := make(Path, 0, len(p))
	for _, s := range p {
		if n := len(out); n > 0 && mergeableSteps(st, out[n-1], s) {
			_, dim, _ := stepInfo(st, s.Field)
			prev := out[n-1]
			out[n-1] = Step{
				Field: DimField(dim),
				Min:   prev.Min + s.Min,
				Plus:  prev.Plus || s.Plus,
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// mergeableSteps reports whether two adjacent steps over different fields
// may be widened into one dimension pseudo-step.
func mergeableSteps(st *shape.Type, a, b Step) bool {
	if a.Field == b.Field {
		return false // canon handles same-field merging precisely
	}
	da, dima, oka := stepInfo(st, a.Field)
	db, dimb, okb := stepInfo(st, b.Field)
	return oka && okb && dima == dimb && forwardish(da) && forwardish(db)
}

// normConcat concatenates, widens and canonicalizes; ok=false means the
// result must degrade to Top.
func normConcat(st *shape.Type, a, b Path) (Path, bool) {
	joined, ok := concat(a, b)
	if !ok {
		return nil, false
	}
	return canon(widenPath(joined, st))
}

// transferer applies normalized statements to matrices, consulting the shape
// environment for the ADDS-informed rules of Section 5.1. A transferer is
// used by one analysis goroutine at a time; scratch is the reusable pending-
// relation buffer for deref (its contents never outlive one statement).
type transferer struct {
	env     *shape.Env
	scratch []pending

	// Interprocedural state (see summary.go): the program's summary table
	// and the pointer-variable → record-type map of the graph under
	// analysis (shadow variables included). Both nil for havoc-only runs.
	summaries *SummaryTable
	varRecord map[string]string

	// Memo-key caches (see memo.go): the run-invariant key prefix, and the
	// canonical statement renderings keyed by statement pointer.
	memoPrefix string
	stmtKeys   map[*norm.Stmt]string
}

// apply mutates m according to stmt.
func (t *transferer) apply(m *Matrix, s *norm.Stmt) {
	switch s.Op {
	case norm.Assign:
		t.assign(m, s.Dst, s.Src)
	case norm.AssignNil, norm.AssignNew:
		// A fresh node is unrelated to everything; NULL aliases nothing.
		m.kill(s.Dst)
	case norm.Deref:
		t.deref(m, s.Dst, s.Src, s.Field, s.TypeName)
	case norm.StorePtr:
		t.store(m, s.Base, s.Field, s.Src, s.TypeName)
	case norm.Free:
		m.kill(s.Base)
	case norm.Call:
		t.call(m, s)
	case norm.ScalarRead, norm.ScalarWrite, norm.ScalarOp:
		// No pointer effect.
	}
}

func (t *transferer) assign(m *Matrix, dst, src string) {
	if dst == src {
		return
	}
	m.kill(dst)
	m.copyRelations(dst, src)
	m.addRel(dst, src, Rel{Kind: RelAlias, Certain: true})
}

// pending is a relation to install after the whole statement has been
// derived from the pre-state.
type pending struct {
	p, q string
	rel  Rel
}

// deref applies p = q->f (dst = src->field), the central ADDS-informed rule.
// All derivations read the pre-state; dst's old value dies first.
func (t *transferer) deref(m *Matrix, dst, src, field, record string) {
	st := t.env.Type(record)
	var fld *shape.Field
	if st != nil {
		fld = st.Field(field)
	}

	adds := t.scratch[:0]
	defer func() { t.scratch = adds[:0] }()
	add := func(p, q string, r Rel) { adds = append(adds, pending{p, q, r}) }

	// Unknown or circular traversal: the paper's conservative case — the
	// target may be any node of the structure, so dst may alias src and
	// every variable related to src.
	if st == nil || fld == nil || !fld.Acyclic() {
		add(src, dst, Rel{Kind: RelTop})
		for _, x := range m.relatedVars(src) {
			add(x, dst, Rel{Kind: RelTop})
		}
		t.install(m, dst, src, adds)
		return
	}

	if fld.Dir == shape.Backward {
		t.derefBackward(m, dst, src, fld, st, add)
		t.install(m, dst, src, adds)
		return
	}

	// Forward or uniquely forward: Def 4.2 — the target is one step deeper
	// and was never visited before.
	add(src, dst, Rel{Kind: RelPath, Certain: true, Path: single(field)})
	if fld.Dir == shape.UniquelyForward {
		if bp := st.BackwardPartner(field); bp != nil {
			// Def 4.6: dst->b is src or NULL.
			add(dst, src, Rel{Kind: RelPath, Path: single(bp.Name)})
		}
	}

	for _, x := range m.relatedVars(src) {
		if x == dst {
			continue // dst's old value dies; ignore stale relations
		}
		for _, r := range m.Entry(x, src).rels() {
			switch r.Kind {
			case RelAlias:
				// x == src, so x->f == dst.
				add(x, dst, Rel{Kind: RelPath, Certain: r.Certain, Path: single(field)})
			case RelTop:
				add(x, dst, Rel{Kind: RelTop})
			case RelPath:
				if ext, ok := normConcat(st, r.Path, single(field)); ok {
					add(x, dst, Rel{Kind: RelPath, Certain: r.Certain, Path: ext})
				} else {
					add(x, dst, Rel{Kind: RelTop})
				}
			}
		}
		for _, r := range m.Entry(src, x).rels() {
			switch r.Kind {
			case RelAlias, RelTop:
				// Mirrored in Entry(x, src); handled above.
			case RelPath:
				t.derefForwardOut(x, r, fld, st, add)
			}
		}
	}
	t.install(m, dst, src, adds)
}

// derefForwardOut handles a path src -> x while deriving dst = src->f:
// what relation does dst have with x?
func (t *transferer) derefForwardOut(x string, r Rel, fld *shape.Field, st *shape.Type, add func(string, string, Rel)) {
	field := fld.Name
	if r.Path.startsWith(field) {
		// Field dereference is functional: src->f is a single node, so a
		// one-step must-path means dst IS x's node.
		for _, sr := range stripLeading(r.Path, field) {
			if !sr.ok {
				continue
			}
			if sr.alias {
				add("", x, Rel{Kind: RelAlias, Certain: r.Certain && exactOneStep(r.Path, field)})
			} else {
				add("", x, Rel{Kind: RelPath, Certain: r.Certain && !headIsPlus(r.Path, field), Path: sr.path})
			}
		}
		return
	}
	// A path starting with the dimension pseudo-field of fld's dimension
	// may begin with fld itself: strip one widened step, everything
	// uncertain (the pseudo-step does not say which sibling was taken).
	if df := DimField(fld.Dim); r.Path.startsWith(df) {
		for _, sr := range stripLeading(r.Path, df) {
			if !sr.ok {
				continue
			}
			if sr.alias {
				add("", x, Rel{Kind: RelAlias})
			} else {
				add("", x, Rel{Kind: RelPath, Path: sr.path})
			}
		}
		return
	}
	// Path leaves src through a different field g. Decide, using the ADDS
	// declaration, whether the f-subtree and the g-reachable region are
	// provably disjoint.
	if t.disjointDeparture(r.Path, fld, st) {
		return // provably unrelated: leave the entry empty
	}
	add("", x, Rel{Kind: RelTop})
}

// exactOneStep reports whether the path is exactly field^1.
func exactOneStep(p Path, field string) bool {
	return len(p) == 1 && p[0].Field == field && p[0].Min == 1 && !p[0].Plus
}

// headIsPlus reports whether the leading step has a "+" multiplicity, which
// makes any strip outcome uncertain.
func headIsPlus(p Path, field string) bool {
	return len(p) > 0 && p[0].Field == field && p[0].Plus
}

// disjointDeparture reports whether a path beginning with a field other than
// fld provably cannot reach the node fld points to:
//
//   - the first step is a combined-group sibling of fld and the path keeps
//     descending (Defs 4.7-4.8: disjoint substructures),
//   - the last step is a combined-group sibling of fld (Def 4.8: unique
//     incoming group edge),
//   - every step is backward along fld's dimension (strict ancestors),
//   - every step is forward along a dimension independent of fld's (Def 4.9a).
func (t *transferer) disjointDeparture(p Path, fld *shape.Field, st *shape.Type) bool {
	if len(p) == 0 {
		return false
	}
	firstDir, firstDim, ok := stepInfo(st, p[0].Field)
	if !ok {
		return false
	}
	// Classify the whole path once. The subtree arguments below are only
	// valid when the path cannot climb back out: a backward step after the
	// departure re-enters the region above src, from where a forward step
	// can descend into fld's subtree (left.parent.right from a left child
	// IS src->right).
	descending := true // every step forward, along fld's dim or one independent of it
	ascending := true  // every step backward along fld's dim
	for _, step := range p {
		dir, dim, ok := stepInfo(st, step.Field)
		if !ok {
			return false
		}
		if !forwardish(dir) || !(dim == fld.Dim || st.Independent(dim, fld.Dim)) {
			descending = false
		}
		if dir != shape.Backward || dim != fld.Dim {
			ascending = false
		}
	}
	// Departure through a sibling of fld's combined group stays in the
	// sibling's subtree, disjoint from fld's (Defs 4.7-4.8) — as long as
	// the path keeps descending.
	if fld.Dir == shape.UniquelyForward && st.SameGroup(fld.Name, p[0].Field) && descending {
		return true
	}
	// A pure ascent reaches strict ancestors of src, never fld's subtree.
	if firstDir == shape.Backward && firstDim == fld.Dim && ascending {
		return true
	}
	// A walk whose FINAL step is a combined-group sibling g of fld cannot
	// land on dst no matter where its middle wanders: within a combined
	// uniquely-forward group every node has at most one incoming group
	// edge, and dst's is fld (from src), so a node entered through g is a
	// different node. This is what keeps parent.right from a left child
	// disjoint from src->left while parent.right from a right child (which
	// ends in fld itself) stays Top.
	if fld.Dir == shape.UniquelyForward {
		if last := p[len(p)-1].Field; last != fld.Name && st.SameGroup(fld.Name, last) {
			return true
		}
	}
	// Forward moves entirely along independent dimensions preserve the
	// position along fld's dimension, which dst's extra step changed.
	allIndependentForward := true
	for _, step := range p {
		dir, dim, ok := stepInfo(st, step.Field)
		if !ok || !forwardish(dir) || !st.Independent(dim, fld.Dim) {
			allIndependentForward = false
			break
		}
	}
	return allIndependentForward
}

// derefBackward applies dst = src->b for a backward field (Def 4.6): dst is
// the unique-forward predecessor of src along b's dimension.
func (t *transferer) derefBackward(m *Matrix, dst, src string, fld *shape.Field, st *shape.Type, add func(string, string, Rel)) {
	partners := st.ForwardPartners(fld.Name)
	if len(partners) == 0 {
		// No unique-forward partner at all: treat like unknown.
		add(src, dst, Rel{Kind: RelTop})
		for _, x := range m.relatedVars(src) {
			add(x, dst, Rel{Kind: RelTop})
		}
		return
	}
	// With one partner f, dst->f == src exactly (Def 4.6). With a combined
	// group (e.g. parent vs left/right), dst->g == src for exactly one
	// group member g, so every derived relation is uncertain.
	grouped := len(partners) > 1
	for _, p := range partners {
		add(dst, src, Rel{Kind: RelPath, Certain: !grouped, Path: single(p.Name)})
	}

	// If the backward edge itself was recorded (a store y->b = z through a
	// must-alias of src), the target is known directly: dst aliases z.
	for k, e := range m.cells {
		y, z := k[0], k[1]
		if y != src && !m.MustAlias(y, src) {
			continue
		}
		for _, r := range e.rels() {
			if r.Kind == RelPath && exactOneStep(r.Path, fld.Name) {
				add("", z, Rel{Kind: RelAlias, Certain: r.Certain && m.MustAlias(y, src)})
			}
		}
		_ = z
	}

	for _, x := range m.relatedVars(src) {
		if x == dst {
			continue
		}
		for _, r := range m.Entry(x, src).rels() {
			switch r.Kind {
			case RelAlias:
				// x == src: dst->uf == x for one of the partners.
				for _, p := range partners {
					add(dst, x, Rel{Kind: RelPath, Certain: r.Certain && !grouped, Path: single(p.Name)})
				}
			case RelTop:
				add(x, dst, Rel{Kind: RelTop})
			case RelPath:
				t.backwardIn(x, r, partners, add)
			}
		}
		for _, r := range m.Entry(src, x).rels() {
			switch r.Kind {
			case RelAlias, RelTop:
				// Mirrored; handled above.
			case RelPath:
				// dst --uf--> src --path--> x, for one of the partners.
				for _, p := range partners {
					if ext, ok := normConcat(st, single(p.Name), r.Path); ok {
						add(dst, x, Rel{Kind: RelPath, Certain: r.Certain && !grouped, Path: ext})
					} else {
						add(dst, x, Rel{Kind: RelTop})
					}
				}
			}
		}
	}
}

// backwardIn derives dst's relation with x from a path x --π--> src while
// computing dst = src->b: dst is src's forward predecessor, so π minus its
// trailing forward step leads from x to dst. A trailing dimension
// pseudo-step of the partners' dimension also strips (uncertainly).
func (t *transferer) backwardIn(x string, r Rel, partners []*shape.Field, add func(string, string, Rel)) {
	if df := DimField(partners[0].Dim); r.Path.endsWith(df) {
		for _, sr := range stripTrailing(r.Path, df) {
			if !sr.ok {
				continue
			}
			if sr.alias {
				add(x, "", Rel{Kind: RelAlias})
			} else {
				add(x, "", Rel{Kind: RelPath, Path: sr.path})
			}
		}
		return
	}
	matched := false
	for _, p := range partners {
		uf := p.Name
		if !r.Path.endsWith(uf) {
			continue
		}
		matched = true
		tailExact := !r.Path[len(r.Path)-1].Plus && r.Path[len(r.Path)-1].Min == 1
		for _, sr := range stripTrailing(r.Path, uf) {
			if !sr.ok {
				continue
			}
			if sr.alias {
				// x's forward child is src, so x IS src's predecessor —
				// certain even for grouped partners (Def 4.6 per member).
				add(x, "", Rel{Kind: RelAlias,
					Certain: r.Certain && tailExact && len(r.Path) == 1})
			} else {
				add(x, "", Rel{Kind: RelPath, Certain: false, Path: sr.path})
			}
		}
	}
	if !matched {
		// Reaches src by some other final step; its relation to src's
		// forward predecessor is unknown.
		add(x, "", Rel{Kind: RelTop})
	}
}

// install kills dst and applies pending relations, resolving the "" marker
// used by derefForwardOut for the destination.
func (t *transferer) install(m *Matrix, dst, src string, adds []pending) {
	m.kill(dst)
	for _, a := range adds {
		p, q := a.p, a.q
		if p == "" {
			p = dst
		}
		if q == "" {
			q = dst
		}
		m.addRel(p, q, a.rel)
	}
	_ = src
}

// ---------------------------------------------------------------------------
// Stores and validation (Section 5.1.1)

// store applies base->field = src (src == "" for NULL): edge removal,
// abstraction validation, edge addition, and structure-merge completeness.
func (t *transferer) store(m *Matrix, base, field, src, record string) {
	st := t.env.Type(record)
	var fld *shape.Field
	if st != nil {
		fld = st.Field(field)
	}

	// An outstanding acyclicity violation on the edge being overwritten
	// poisons the repair: every relation derived since the break may hide
	// an alias (the broken-window facts were computed by rules that assume
	// the declaration). Remember it before clearing, so re-validation of
	// the new edge can refuse to trust those relations.
	suspectCycle := false
	if src != "" {
		for v := range m.viols {
			if v.Prop == "acyclic" && v.Field == field &&
				(v.Base == base || m.MustAlias(v.Base, base)) {
				suspectCycle = m.related(src, base)
			}
		}
	}

	t.removeOverwrittenEdge(m, base, field, st)
	t.clearRepairedViolations(m, base, field, st)

	if st != nil && fld != nil {
		t.validateStore(m, base, field, src, suspectCycle, fld, st)
	}

	if src == "" {
		return
	}

	// The new edge: base --field--> src's node.
	m.addRel(base, src, Rel{
		Kind: RelPath, Certain: true, Path: single(field),
		Via: Via{Var: base, Field: field},
	})

	// Structure merge: everything related to base joins everything related
	// to src. Record the composite path when both halves are known paths;
	// otherwise a Top relation keeps the completeness invariant (two
	// pointers into one structure always share a recorded relation).
	//
	// The merge must run even for pairs that are already related: the new
	// edge creates a new x → base → field → src → y path the existing
	// entry knows nothing about. Skipping such pairs (as this code once
	// did) left stale relations masking the fresh path — the repair-profile
	// campaign shrank that to a doubly-linked splice where PM(c,b) stayed
	// empty across `a->next = b` because a junk (b,c) entry from an earlier
	// join made related(c,b) true, and the analysis went on to refute a
	// real alias downstream.
	xs := append(m.relatedVars(base), base)
	ys := append(m.relatedVars(src), src)
	for _, x := range xs {
		for _, y := range ys {
			if x == y {
				continue
			}
			if x == base && y == src {
				continue
			}
			t.mergeRelation(m, x, y, base, field, src, st)
		}
	}
}

// mergeRelation relates x (on base's side) with y (on src's side) after the
// store base->field = src.
func (t *transferer) mergeRelation(m *Matrix, x, y, base, field, src string, st *shape.Type) {
	via := Via{Var: base, Field: field}
	toBase := pathOrAlias(m, x, base)
	fromSrc := pathOrAlias(m, src, y)
	if toBase == nil || fromSrc == nil {
		m.addRel(x, y, Rel{Kind: RelTop})
		return
	}
	full := append(append(Path{}, toBase...), Step{Field: field, Min: 1})
	full = append(full, fromSrc...)
	if p, ok := canon(widenPath(full, st)); ok {
		m.addRel(x, y, Rel{Kind: RelPath, Path: p, Via: via})
	} else {
		m.addRel(x, y, Rel{Kind: RelTop})
	}
}

// pathOrAlias returns a path from p to q derivable from the matrix: the
// empty (zero-length) path when they must alias, a recorded path, or nil
// when no path form exists. A non-nil zero-length result uses an empty Path.
func pathOrAlias(m *Matrix, p, q string) Path {
	if p == q {
		return Path{}
	}
	e := m.Entry(p, q)
	var best Path
	found := false
	for _, r := range e.rels() {
		switch r.Kind {
		case RelAlias:
			return Path{}
		case RelPath:
			if !found || len(r.Path) < len(best) {
				best, found = r.Path, true
			}
		}
	}
	if found {
		return best
	}
	return nil
}

// removeOverwrittenEdge drops relations that described the old value of
// base->field: paths leaving a must-alias of base through field, and
// relations tagged Via{base, field}. Relations merely containing field
// elsewhere lose certainty.
//
// When field has a backward partner the dropped relations demote to the
// unknown (Top) relation instead of vanishing: the old targets keep their
// backward edges, whose chain still reaches base's node in the heap, so a
// later backward load can re-alias them with base. An empty entry would
// claim that alias impossible.
func (t *transferer) removeOverwrittenEdge(m *Matrix, base, field string, st *shape.Type) {
	backLinked := st != nil && st.BackwardPartner(field) != nil
	var demote [][2]string
	for k, e := range m.cells {
		var out Entry
		changed := false
		for _, r := range e.rels() {
			drop := false
			if r.Kind == RelPath {
				fromMust := k[0] == base || m.MustAlias(k[0], base)
				if fromMust && r.Path.startsWith(field) {
					drop = true
				}
				if r.Via.Var == base && r.Via.Field == field && !r.Via.Stale {
					drop = true
				}
				if !drop && r.Certain && pathUsesField(r.Path, field) {
					r.Certain = false
					changed = true
				}
				// Paths from a possible (not certain) alias of base
				// starting with field may also be stale.
				if !drop && !fromMust && r.Certain &&
					r.Path.startsWith(field) && m.MayAlias(k[0], base) {
					r.Certain = false
					changed = true
				}
			}
			if drop {
				changed = true
				if backLinked {
					demote = append(demote, k)
				}
				continue
			}
			out = out.add(r)
		}
		if changed {
			m.set(k[0], k[1], out)
		}
	}
	// Outside the scan: addRel mirrors Top into the opposite cell, and the
	// load rules rely on that symmetry ("mirrored; handled above").
	for _, k := range demote {
		m.addRel(k[0], k[1], Rel{Kind: RelTop})
	}
}

func pathUsesField(p Path, field string) bool {
	for _, s := range p {
		if s.Field == field {
			return true
		}
	}
	return false
}

// clearRepairedViolations removes violations whose broken edge is being
// overwritten (the paper: "if another program statement fixes the
// relationship between these two fields, the entry is removed"). A store
// to any member of the partner's combined group counts as touching it.
func (t *transferer) clearRepairedViolations(m *Matrix, base, field string, st *shape.Type) {
	sameOrGrouped := func(f string) bool {
		if f == field {
			return true
		}
		return st != nil && st.SameGroup(f, field)
	}
	for v := range m.viols {
		touchesVar := v.Base == base || v.Other == base ||
			m.MustAlias(v.Base, base) || (v.Other != "" && m.MustAlias(v.Other, base))
		if touchesVar && (sameOrGrouped(v.Field) || (v.Partner != "" && sameOrGrouped(v.Partner))) {
			m.deleteViolation(v)
		}
	}
}

// validateStore checks the store against the declaration and records
// violations (Defs 4.2-4.9 encoded as path matrix conditions).
// suspectCycle reports that the overwritten edge carried an outstanding
// acyclicity violation AND the new value was related to base in the
// pre-store matrix, which sharpens the cycle re-check below.
func (t *transferer) validateStore(m *Matrix, base, field, src string, suspectCycle bool, fld *shape.Field, st *shape.Type) {
	if src == "" {
		return // removing an edge cannot break acyclicity or uniqueness
	}

	// Acyclicity (Def 4.2): a forward edge into a node that reaches base
	// along the same forward dimension closes a pure forward cycle.
	// Backward edges point at ancestors by design and are governed by the
	// Def 4.6 check below. Following the paper, only relationships the
	// matrix explicitly denotes trigger a violation; the unknown (Top)
	// relation between, say, two parameters does not.
	if fld.Dir == shape.Forward || fld.Dir == shape.UniquelyForward {
		// While the overwritten edge is known-cyclic, any recorded relation
		// between src and base may be a disguised alias (it was derived
		// while the abstraction was broken, e.g. a load through the cyclic
		// edge), so overwriting with a related value cannot prove the cycle
		// gone. From a valid state the same pattern is the ordinary node
		// deletion idiom (p->next = p->next->next) and stays violation-free.
		if forwardCycleRisk(m, src, base, fld, st) || suspectCycle {
			m.addViolation(Violation{Prop: "acyclic", Field: field, Base: base, Other: src})
		}
	}

	// Uniqueness and group disjointness (Defs 4.3, 4.7, 4.8): no other
	// recorded edge over the group's fields may already enter src's node.
	if fld.Dir == shape.UniquelyForward {
		group := st.GroupOf(field)
		prop := "unique"
		if len(group) > 1 {
			prop = "group-disjoint"
		}
		for k, e := range m.cells {
			y, z := k[0], k[1]
			if y == base || m.MustAlias(y, base) {
				continue // overwritten edge was already removed
			}
			if z != src && !explicitAlias(m, z, src) {
				continue
			}
			for _, r := range e.rels() {
				if r.Kind != RelPath {
					continue
				}
				last := r.Path[len(r.Path)-1]
				for _, g := range group {
					if last.Field == g && last.Min == 1 && !last.Plus && len(r.Path) == 1 {
						m.addViolation(Violation{
							Prop: prop, Field: field, Base: base, Other: y,
						})
					}
				}
			}
		}
	}

	// Backward consistency (Def 4.6).
	switch fld.Dir {
	case shape.Backward:
		// base->b = src is valid only if src is known to reach base by one
		// step of SOME forward partner (for grouped partners like
		// left/right, any member suffices). Anything weaker — including an
		// alias, which would make the backward edge a self-loop and is
		// definitely broken — records a (repairable) violation. This
		// conservatism is what keeps the mirror-based derivation rules
		// sound: they may rely on Def 4.6 only while no violation is
		// outstanding.
		partners := st.ForwardPartners(field)
		if len(partners) > 0 {
			e := m.Entry(src, base)
			ok := false
			first := partners[0]
			for _, r := range e.rels() {
				if r.Kind != RelPath || !r.Certain {
					continue // only a definite one-step path proves consistency
				}
				for _, uf := range partners {
					if exactOneStep(r.Path, uf.Name) {
						ok = true
					}
				}
				if exactOneStep(r.Path, DimField(first.Dim)) {
					ok = true // one widened forward step along the dimension
				}
			}
			if !ok {
				m.addViolation(Violation{
					Prop: "backward", Field: field, Partner: first.Name,
					Base: base, Other: src,
				})
			}
		}
	case shape.UniquelyForward, shape.Forward:
		// base->f = src: src's backward partner, if known, must point back
		// at base.
		if bp := st.BackwardPartner(field); bp != nil {
			for k, e := range m.cells {
				if k[0] != src && !m.MustAlias(k[0], src) {
					continue
				}
				z := k[1]
				if z == base || m.MayAlias(z, base) {
					continue
				}
				for _, r := range e.rels() {
					if r.Kind == RelPath && r.Certain && exactOneStep(r.Path, bp.Name) {
						m.addViolation(Violation{
							Prop: "backward", Field: bp.Name, Partner: field,
							Base: base, Other: src,
						})
					}
				}
			}
		}
	}
}

// explicitAlias reports whether the matrix explicitly denotes p and q as
// (possible) aliases — an "=" or "=?" entry, not the unknown Top relation.
func explicitAlias(m *Matrix, p, q string) bool {
	for _, e := range []Entry{m.Entry(p, q), m.Entry(q, p)} {
		if _, ok := e["="]; ok {
			return true
		}
	}
	return false
}

// forwardCycleRisk reports whether the matrix explicitly denotes that src's
// node reaches base's node purely along fld's forward dimension (or equals
// it), so that storing base->fld = src would close a forward cycle.
func forwardCycleRisk(m *Matrix, src, base string, fld *shape.Field, st *shape.Type) bool {
	if src == base {
		return true
	}
	for _, e := range []Entry{m.Entry(src, base), m.Entry(base, src)} {
		if _, ok := e["="]; ok {
			return true
		}
	}
	for _, r := range m.Entry(src, base).rels() {
		if r.Kind != RelPath {
			continue
		}
		pure := true
		for _, s := range r.Path {
			dir, dim, ok := stepInfo(st, s.Field)
			if !ok || dim != fld.Dim || !forwardish(dir) {
				pure = false
				break
			}
		}
		if pure {
			return true
		}
	}
	return false
}

// call transfers a call statement: a no-op for callees known not to mutate
// shape, compositionally via the callee's summary when one is available and
// the call site satisfies its entry assumptions, otherwise by the opaque
// havoc. Independently of which transfer runs, the call taints the caller's
// validity (an unrepairable "call" violation) whenever the callee could
// leave the structure breaking its declaration without that break being
// visible here — see callBreakRisk.
func (t *transferer) call(m *Matrix, s *norm.Stmt) {
	var eff *FuncEffects
	if t.summaries != nil {
		eff = t.summaries.Effects(s.Callee)
	}
	if eff != nil && !eff.ShapeMut {
		// The callee (and everything it calls, even recursively) performs
		// no pointer store or free: data writes cannot change pointer
		// relations or break the declared abstraction, and by-value
		// arguments mean caller bindings are untouched. The matrix carries
		// through the call verbatim.
		engineStats.summaryApplied.Add(1)
		return
	}
	risky := t.callBreakRisk(m, s, eff)
	if sum := t.callSummary(m, s); sum != nil {
		t.applySummary(m, s, sum, eff)
	} else {
		if t.summaries != nil {
			engineStats.summaryFallbacks.Add(1)
		}
		t.callHavoc(m, s.Args)
	}
	if risky {
		m.addViolation(Violation{Prop: "call", Base: s.Callee})
	}
}

// callBreakRisk reports whether the callee could leave caller-reachable
// structure violating its declaration in a way neither summary rows nor
// havoc represent (both only describe relations, not validity). The
// callee's own store validation ran under the generic entry state, where
// only explicitly denoted relations trigger violations; its exit-valid
// verdict therefore transfers to a call site only when the actuals are no
// more related than that generic state denotes — i.e. pairwise provably
// unrelated. Everything else is conservative: an unknown or recursive
// shape-mutating callee was never validated at all, and an exit-invalid
// one provably breaks even generic entries. Judged on the PRE-call matrix
// (the havoc relates every argument pair, which would make the test
// vacuous). The resulting "call" violation is deliberately unrepairable by
// later stores — the caller cannot know which links the callee broke.
func (t *transferer) callBreakRisk(m *Matrix, s *norm.Stmt, eff *FuncEffects) bool {
	if len(s.Args) == 0 {
		return false // no caller-reachable node escapes into the callee
	}
	if eff == nil {
		return true // havoc-only mode or out-of-program callee: nothing known
	}
	// eff.ShapeMut holds here; data-only calls returned before the risk test.
	sum := t.summaries.Lookup(s.Callee)
	if sum == nil || sum.ExitInvalid {
		return true // recursive (never validated) or breaks generic entries
	}
	if !m.Valid() {
		return true // absence of an entry no longer proves unrelatedness
	}
	for _, pos := range sum.FormalPos {
		if pos >= len(s.Bind) {
			return true // arity mismatch; the checker rejects this upstream
		}
	}
	for i := range sum.Formals {
		ai := s.Bind[sum.FormalPos[i]]
		if ai == "" {
			continue
		}
		for j := i + 1; j < len(sum.Formals); j++ {
			aj := s.Bind[sum.FormalPos[j]]
			if aj == "" {
				continue
			}
			if ai == aj || m.related(ai, aj) {
				return true
			}
		}
	}
	return false
}

// callSummary returns the callee's summary when the call site satisfies the
// summary's entry assumptions, nil to fall back to havoc:
//
//   - the callee must be summarized (non-recursive, in-program);
//   - the caller matrix must be violation-free — while the abstraction is
//     broken, an absent entry no longer proves two pointers unrelated, and
//     both preconditions below read absence as proof;
//   - actuals bound to formals of DIFFERENT record types must be provably
//     unrelated, because the generic entry state the summary was computed
//     from relates only same-record formals (initParams).
func (t *transferer) callSummary(m *Matrix, s *norm.Stmt) *FuncSummary {
	sum := t.summaries.Lookup(s.Callee)
	if sum == nil || !m.Valid() {
		return nil
	}
	for _, pos := range sum.FormalPos {
		if pos >= len(s.Bind) {
			return nil // arity mismatch; the checker rejects this upstream
		}
	}
	for i := range sum.Formals {
		ai := s.Bind[sum.FormalPos[i]]
		if ai == "" {
			continue
		}
		for j := i + 1; j < len(sum.Formals); j++ {
			if sum.FormalRecord[i] == sum.FormalRecord[j] {
				continue
			}
			aj := s.Bind[sum.FormalPos[j]]
			if aj != "" && m.related(ai, aj) {
				return nil
			}
		}
	}
	return sum
}

// typeTainted reports whether v's reachable type closure intersects the
// callee's write set — i.e. whether any path leaving v could route through
// a node the callee mutated. Unknown variables answer true.
func (t *transferer) typeTainted(v string, eff *FuncEffects) bool {
	rec, ok := t.varRecord[v]
	if !ok {
		return true
	}
	return t.summaries.reachIntersects(rec, eff.Writes)
}

// applySummary instantiates the callee's summary at the call site.
//
// Caller variable bindings are untouched by the call (by-value arguments,
// no globals, no pointer returns), so alias relations between caller
// variables are exactly preserved everywhere. Paths can change only by
// routing through a mutated node, and every node on a path from v has a
// type reachable from v's record type, so a pair both of whose sides are
// type-untainted is preserved verbatim. For pairs with a tainted side:
//
//   - pairs of actuals are REPLACED (both directions) by the callee's exit
//     rows between the corresponding entry-value shadows, alias relations
//     taken from the caller's own entries, which are exact;
//   - every other pair inside the affected set (arguments plus their
//     related variables, the same set the havoc touches) degrades to the
//     unknown relation, alias knowledge preserved — exactly the havoc's
//     per-pair effect.
//
// Pairs are always updated symmetrically: the load rules assume Alias/Top
// mirroring across directed cells. Pairs with an unaffected side need no
// update: an absent relation to every argument proves (violation-free
// matrix, checked by callSummary) the variable's structure is disjoint from
// everything the callee could reach.
func (t *transferer) applySummary(m *Matrix, s *norm.Stmt, sum *FuncSummary, eff *FuncEffects) {
	engineStats.summaryApplied.Add(1)

	act := make([]string, len(sum.Formals))
	isActual := map[string]bool{}
	for i, pos := range sum.FormalPos {
		act[i] = s.Bind[pos]
		if act[i] != "" {
			isActual[act[i]] = true
		}
	}

	affected := map[string]bool{}
	for _, a := range s.Args {
		affected[a] = true
		for _, x := range m.relatedVars(a) {
			affected[x] = true
		}
	}
	vars := make([]string, 0, len(affected))
	for v := range affected {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	taint := make(map[string]bool, len(vars))
	for _, v := range vars {
		taint[v] = t.typeTainted(v, eff)
	}

	// Non-actual pairs (and actual/non-actual pairs): havoc-equivalent
	// degrade when either side is tainted.
	for i, x := range vars {
		for _, y := range vars[i+1:] {
			if isActual[x] && isActual[y] {
				continue
			}
			if taint[x] || taint[y] {
				m.addRel(x, y, Rel{Kind: RelTop})
			}
		}
	}

	// Actual pairs: instantiate the exit rows, both directions at once.
	for i, ai := range act {
		for j := i + 1; j < len(act); j++ {
			aj := act[j]
			if ai == "" || aj == "" || ai == aj {
				continue
			}
			if !taint[ai] && !taint[aj] {
				continue
			}
			t.instantiateRows(m, ai, aj,
				sum.Rows[[2]string{sum.Formals[i], sum.Formals[j]}],
				sum.Rows[[2]string{sum.Formals[j], sum.Formals[i]}])
		}
	}
}

// instantiateRows replaces the (ai, aj) and (aj, ai) entries with the
// callee's exit rows, keeping the caller's own alias relations (exact under
// value semantics) and dropping the rows' (weaker, generic-entry-derived)
// alias facts and callee-local Via provenance. If either rebuilt entry
// saturates to Top, the other gains Top too, preserving the mirroring
// invariant the load rules rely on.
func (t *transferer) instantiateRows(m *Matrix, ai, aj string, rowIJ, rowJI Entry) {
	build := func(old, row Entry) Entry {
		ne := Entry{}
		for _, r := range old.rels() {
			if r.Kind == RelAlias {
				ne = ne.add(r)
			}
		}
		for _, r := range row.rels() {
			if r.Kind != RelAlias {
				ne = ne.add(r)
			}
		}
		return ne
	}
	a := build(m.Entry(ai, aj), rowIJ)
	b := build(m.Entry(aj, ai), rowJI)
	if _, topA := a["??"]; topA {
		b = b.add(Rel{Kind: RelTop})
	} else if _, topB := b["??"]; topB {
		a = a.add(Rel{Kind: RelTop})
	}
	m.set(ai, aj, a)
	m.set(aj, ai, b)
}

// callHavoc havocs everything reachable from the pointer arguments: the
// callee may rearrange those structures arbitrarily. Havoc alone says
// nothing about whether the declaration still holds on return — that half
// of the call's effect is callBreakRisk's violation in call().
func (t *transferer) callHavoc(m *Matrix, args []string) {
	affected := map[string]bool{}
	for _, a := range args {
		affected[a] = true
		for _, x := range m.relatedVars(a) {
			affected[x] = true
		}
	}
	vars := make([]string, 0, len(affected))
	for v := range affected {
		vars = append(vars, v)
	}
	for i, x := range vars {
		for _, y := range vars[i+1:] {
			m.addRel(x, y, Rel{Kind: RelTop})
		}
	}
}
