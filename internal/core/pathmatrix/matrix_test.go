package pathmatrix

import (
	"strings"
	"testing"
)

func alias(certain bool) Rel { return Rel{Kind: RelAlias, Certain: certain} }
func pathRel(f string, certain bool) Rel {
	return Rel{Kind: RelPath, Certain: certain, Path: single(f)}
}

func TestMatrixAddAndQuery(t *testing.T) {
	m := NewMatrix([]string{"a", "b", "c"})
	m.addRel("a", "b", alias(true))
	if !m.MustAlias("a", "b") || !m.MustAlias("b", "a") {
		t.Error("alias must be symmetric")
	}
	m.addRel("a", "c", pathRel("next", true))
	if m.MayAlias("a", "c") {
		t.Error("a path is not an alias")
	}
	if !m.related("a", "c") || m.related("b", "c") {
		t.Error("related wrong")
	}
	if got := m.relatedVars("a"); len(got) != 2 {
		t.Errorf("relatedVars = %v", got)
	}
}

func TestMatrixSelfCellIgnored(t *testing.T) {
	m := NewMatrix([]string{"a"})
	m.addRel("a", "a", alias(true))
	if len(m.cells) != 0 {
		t.Error("diagonal must not be stored")
	}
	if !m.MustAlias("a", "a") {
		t.Error("reflexive must-alias is implicit")
	}
}

func TestMatrixKillAndStaleVia(t *testing.T) {
	m := NewMatrix([]string{"a", "b", "c"})
	m.addRel("a", "b", Rel{Kind: RelPath, Path: single("f"),
		Via: Via{Var: "c", Field: "f"}})
	m.kill("c")
	// The relation survives but its via is stale (c's old value is gone).
	e := m.Entry("a", "b")
	if len(e) != 1 {
		t.Fatalf("entry = %v", e)
	}
	for _, r := range e {
		if !r.Via.Stale {
			t.Error("via should be stale after killing its variable")
		}
	}

	m.addRel("a", "c", alias(false))
	m.kill("a")
	if m.related("a", "b") || m.related("a", "c") {
		t.Error("kill must drop all relations of the variable")
	}
}

func TestMatrixCopyRelations(t *testing.T) {
	m := NewMatrix([]string{"a", "b", "c"})
	m.addRel("a", "b", pathRel("next", true))
	m.addRel("c", "a", pathRel("prev", false))
	m.copyRelations("d", "a")
	if m.Entry("d", "b").String() != "next" {
		t.Errorf("copied out-relation = %q", m.Entry("d", "b"))
	}
	if m.Entry("c", "d").String() != "prev?" {
		t.Errorf("copied in-relation = %q", m.Entry("c", "d"))
	}
}

func TestJoinDropsOneSidedCertainty(t *testing.T) {
	a := NewMatrix([]string{"p", "q"})
	a.addRel("p", "q", alias(true))
	b := NewMatrix([]string{"p", "q"})
	j := Join(a, b)
	if j.MustAlias("p", "q") {
		t.Error("one-sided alias must demote")
	}
	if !j.MayAlias("p", "q") {
		t.Error("may-alias info must survive the join")
	}
}

func TestJoinUnionsViolations(t *testing.T) {
	a := NewMatrix([]string{"p"})
	a.addViolation(Violation{Prop: "acyclic", Field: "next", Base: "p"})
	b := NewMatrix([]string{"p"})
	j := Join(a, b)
	if j.Valid() {
		t.Error("violations must union at joins")
	}
	if len(j.Violations()) != 1 {
		t.Errorf("violations = %v", j.Violations())
	}
}

func TestInvalidMatrixIsFullyConservative(t *testing.T) {
	m := NewMatrix([]string{"p", "q"})
	if m.MayAlias("p", "q") {
		t.Error("no relations, valid: not aliases")
	}
	m.addViolation(Violation{Prop: "unique", Field: "next", Base: "p"})
	if !m.MayAlias("p", "q") {
		t.Error("while invalid, everything may alias")
	}
}

func TestMatrixEqual(t *testing.T) {
	a := NewMatrix([]string{"p", "q"})
	a.addRel("p", "q", pathRel("next", true))
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone must be equal")
	}
	b.addRel("p", "q", alias(false))
	if a.Equal(b) {
		t.Error("different entries must differ")
	}
	c := a.Clone()
	c.addViolation(Violation{Prop: "acyclic", Field: "next", Base: "p"})
	if a.Equal(c) {
		t.Error("violations participate in equality")
	}
}

func TestMatrixCloneIsDeep(t *testing.T) {
	a := NewMatrix([]string{"p", "q"})
	a.addRel("p", "q", pathRel("next", true))
	b := a.Clone()
	b.kill("p")
	if len(a.Entry("p", "q")) == 0 {
		t.Error("clone aliased the original's cells")
	}
}

func TestMatrixStringHidesBareTemps(t *testing.T) {
	m := NewMatrix([]string{"p", "@t1", "@t2"})
	m.addRel("p", "@t1", pathRel("next", true))
	s := m.String()
	if !strings.Contains(s, "@t1") {
		t.Error("temp with relations must display")
	}
	if strings.Contains(s, "@t2") {
		t.Error("relation-free temp must be hidden")
	}
}

// BenchmarkMatrixJoin measures the join cost on realistic small matrices.
func BenchmarkMatrixJoin(b *testing.B) {
	a := NewMatrix([]string{"hd", "p", "q", "r"})
	a.addRel("hd", "p", pathRel("next", true))
	a.addRel("hd", "q", pathRel("next", false))
	a.addRel("p", "q", alias(false))
	c := a.Clone()
	c.addRel("q", "r", pathRel("prev", true))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(a, c)
	}
}
