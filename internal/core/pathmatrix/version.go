package pathmatrix

import "sync/atomic"

// EngineVersion stamps analysis results produced by this package. It is part
// of the content-addressed cache key in internal/service: bump it whenever a
// change alters analysis output for the same input (transfer functions, join,
// widening, path canonicalization), so stale cached results can never be
// served for the new engine.
const EngineVersion = "gpm-2"

// Stats is a snapshot of engine-wide counters since process start. The
// counters are monotone and cheap (one atomic add per event); they feed the
// service /metrics endpoint and capacity debugging.
type Stats struct {
	Analyses      uint64 // completed AnalyzeCtx runs
	Iterations    uint64 // fixed-point worklist iterations across all runs
	Widenings     uint64 // nodes forcibly widened after exhausting the budget
	Clones        uint64 // COW matrix clones across all runs
	InternedPaths uint64 // distinct paths in the intern table (gauge)
}

var engineStats struct {
	analyses   atomic.Uint64
	iterations atomic.Uint64
	widenings  atomic.Uint64
	clones     atomic.Uint64
}

// ReadStats returns the engine counters. InternedPaths is read from the
// intern table at call time, so it reflects the current table size rather
// than a running total.
func ReadStats() Stats {
	return Stats{
		Analyses:      engineStats.analyses.Load(),
		Iterations:    engineStats.iterations.Load(),
		Widenings:     engineStats.widenings.Load(),
		Clones:        engineStats.clones.Load(),
		InternedPaths: uint64(InternerStats()),
	}
}
