package pathmatrix

import "sync/atomic"

// EngineVersion stamps analysis results produced by this package. It is part
// of the content-addressed cache key in internal/service AND of the transfer
// memo key in memo.go: bump it whenever a change alters analysis output for
// the same input (transfer functions, join, widening, path canonicalization),
// so stale cached results can never be served for the new engine.
//
// gpm-3: multi-level deduplication (shared join entries, memoized transfer
// functions, optional liveness-based row dropping). Output is byte-identical
// to gpm-2 with default settings, but cache keys now embed engine tunables
// and the bump keeps pre-dedup daemon caches from being replayed.
//
// gpm-4: compositional interprocedural analysis. Calls to summarized callees
// apply a per-function entry-shape → exit-effect summary instead of the
// all-args havoc (summary.go), the call transfer binds every pointer-valued
// argument (field-path arguments previously escaped the havoc), and call
// statements carry their callee name. Output changes for multi-function
// programs, so pre-summary caches must not be replayed.
//
// gpm-5: the store transfer's structure merge no longer skips pairs that
// were already related — an existing entry says nothing about the new path
// through the just-written edge, and the skip let stale relations mask real
// aliases (soundness bug found by the repair-profile differential campaign;
// see store in transfer.go). Entries can gain relations, so matrices, wire
// bodies, and report digests change for programs with re-linking stores.
const EngineVersion = "gpm-5"

// Stats is a snapshot of engine-wide counters since process start. The
// counters are monotone and cheap (one atomic add per event) unless noted;
// they feed the service /metrics endpoint and capacity debugging.
type Stats struct {
	Analyses      uint64 // completed AnalyzeCtx runs
	Iterations    uint64 // fixed-point worklist iterations across all runs
	Widenings     uint64 // nodes forcibly widened after exhausting the budget
	Clones        uint64 // COW matrix clones across all runs
	InternedPaths uint64 // distinct paths in the intern table (gauge)
	MemoHits      uint64 // transfer results served from the memo
	MemoMisses    uint64 // transfer results computed and cached
	MemoEntries   uint64 // cached transfer results right now (gauge)
	SharedRows    uint64 // join cells shared pointer-equal with a parent
	DedupRows     uint64 // fingerprinted rows structurally seen before in-run
	DroppedRows   uint64 // dead-variable rows dropped by the liveness pass

	SummaryComputed  uint64 // function summaries computed (cache misses)
	SummaryReused    uint64 // function summaries served from the cache
	SummaryEntries   uint64 // cached function summaries right now (gauge)
	SummaryApplied   uint64 // call sites transferred via a summary
	SummaryFallbacks uint64 // call sites that fell back to havoc (recursion, preconditions)
}

var engineStats struct {
	analyses    atomic.Uint64
	iterations  atomic.Uint64
	widenings   atomic.Uint64
	clones      atomic.Uint64
	memoHits    atomic.Uint64
	memoMisses  atomic.Uint64
	sharedRows  atomic.Uint64
	dedupRows   atomic.Uint64
	droppedRows atomic.Uint64

	summaryComputed  atomic.Uint64
	summaryReused    atomic.Uint64
	summaryApplied   atomic.Uint64
	summaryFallbacks atomic.Uint64
}

// ReadStats returns the engine counters. InternedPaths and MemoEntries are
// read from their tables at call time, so they reflect current sizes rather
// than running totals.
func ReadStats() Stats {
	return Stats{
		Analyses:      engineStats.analyses.Load(),
		Iterations:    engineStats.iterations.Load(),
		Widenings:     engineStats.widenings.Load(),
		Clones:        engineStats.clones.Load(),
		InternedPaths: uint64(InternerStats()),
		MemoHits:      engineStats.memoHits.Load(),
		MemoMisses:    engineStats.memoMisses.Load(),
		MemoEntries:   uint64(memoLen()),
		SharedRows:    engineStats.sharedRows.Load(),
		DedupRows:     engineStats.dedupRows.Load(),
		DroppedRows:   engineStats.droppedRows.Load(),

		SummaryComputed:  engineStats.summaryComputed.Load(),
		SummaryReused:    engineStats.summaryReused.Load(),
		SummaryEntries:   uint64(summaryCacheLen()),
		SummaryApplied:   engineStats.summaryApplied.Load(),
		SummaryFallbacks: engineStats.summaryFallbacks.Load(),
	}
}
