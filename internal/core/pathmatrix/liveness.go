package pathmatrix

// Interleaved liveness-based row dropping: after each transfer the engine
// can delete relations between variables that are dead at that point,
// bounding matrix growth on programs that touch many short-lived pointers
// ("Generalizing the Liveness Based Points-to Analysis" motivates the same
// reduction for points-to facts).

// Liveness gates the dropping. Off by default: dropping is an opt-in size
// lever, kept out of the byte-identical default configuration. The policy
// below is witness-preserving — see dropDead — so oracle answers about live
// pairs and abstraction validity match the full analysis on everything the
// test corpus exercises; pathological programs can still lose a violation
// witness that ran exclusively through dead-dead cells, so validation under
// Liveness is documented as best-effort. Callers that query dead variables
// must fall back to conservative answers (internal/alias does, via
// Result.Live).
var Liveness = false

// deadVars is a precomputed per-point dead-variable set.
type deadVars struct {
	set map[string]bool
}

// dropDead deletes cells whose BOTH endpoints are dead, keeping any cell
// that records a definite alias. The restriction is what keeps the rest of
// the engine honest:
//
//   - every transfer derivation, violation check and repair match reasons
//     from a live variable (the statement's operands are live by
//     definition), so cells with at least one live endpoint must survive;
//   - must-alias links are consulted by violation re-anchoring when a dead
//     variable is eventually redefined, so certain "=" cells survive even
//     between dead pairs.
//
// Everything else between two dead variables is unreadable by construction:
// both names will be redefined (killing the cell anyway) before any
// statement can mention them again. Returns the number of cells dropped.
func (m *Matrix) dropDead(d *deadVars) int {
	if d == nil || len(d.set) == 0 {
		return 0
	}
	var doomed [][2]string
	for k, e := range m.cells {
		if !d.set[k[0]] || !d.set[k[1]] {
			continue
		}
		if r, ok := e["="]; ok && r.Certain {
			continue // must-alias link: re-anchoring may still need it
		}
		doomed = append(doomed, k)
	}
	if len(doomed) == 0 {
		return 0 // no mutation: the cached fingerprint stays valid
	}
	m.ensureCells()
	m.fp = ""
	for _, k := range doomed {
		delete(m.cells, k)
		if m.owned != nil {
			delete(m.owned, k)
		}
	}
	engineStats.droppedRows.Add(uint64(len(doomed)))
	return len(doomed)
}
