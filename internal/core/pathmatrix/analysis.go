package pathmatrix

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/shape"
	"repro/internal/source/types"
)

// Result holds the analysis output for one function: a matrix before and
// after every CFG node, keyed by node ID.
type Result struct {
	Graph  *norm.Graph
	Env    *shape.Env
	Before []*Matrix
	After  []*Matrix // per node; for branches this is the pre-refinement state
	// Live is the backward liveness result when the run interleaved
	// dead-row dropping (Liveness enabled), nil otherwise. Oracles must
	// answer conservatively about variables that are not live at the query
	// point: their rows may have been dropped.
	Live *norm.Liveness
	// Summaries is the interprocedural summary table the run transferred
	// calls with, nil for havoc-only runs. IterationMatrix reuses it so the
	// primed-variable view stays consistent with the per-node matrices.
	Summaries *SummaryTable
	trans     *transferer
}

// maxIterations bounds the fixed-point computation; the bounded domain
// converges long before this, but a safety valve beats an infinite loop.
const maxIterations = 100000

// ctxCheckMask controls how often the fixed-point loop polls the context:
// every (ctxCheckMask+1) iterations. Must be a power of two minus one.
const ctxCheckMask = 63

// nodeVisitBudget bounds how often one CFG node is reprocessed before its
// state is forcibly widened to the fully conservative matrix. Pathological
// programs (e.g. stores building self-loops, which churn certainty flags
// and via tags) can make the otherwise-finite domain oscillate; widening
// restores guaranteed termination at the cost of precision, soundly: the
// widened matrix admits every alias and carries a standing violation, so
// no transformation-enabling fact survives.
const nodeVisitBudget = 64

// widenedIterationMatrix extends the widened matrix with the primed shadow
// variables used by IterationMatrix.
func widenedIterationMatrix(g *norm.Graph) *Matrix {
	m := widenedMatrix(g)
	base := g.PointerVars()
	vars := append([]string(nil), base...)
	for _, v := range base {
		vars = append(vars, v+Shadow)
	}
	out := NewMatrix(vars)
	for _, p := range base {
		tp := g.VarTypes[p]
		for _, q := range base {
			tq := g.VarTypes[q]
			if tp.Kind != types.KindPointer || tq.Kind != types.KindPointer ||
				tp.Record != tq.Record {
				continue
			}
			if p != q {
				out.addRel(p, q, Rel{Kind: RelTop})
			}
			out.addRel(p+Shadow, q, Rel{Kind: RelTop})
			out.addRel(p+Shadow, q+Shadow, Rel{Kind: RelTop})
		}
	}
	for _, v := range m.Violations() {
		out.addViolation(v)
	}
	m.release()
	return out
}

// widenedMatrix is the terminal conservative state for a function: every
// pair of same-record pointers may alias, and a standing (uncleareable)
// violation keeps MayAlias fully conservative.
func widenedMatrix(g *norm.Graph) *Matrix {
	vars := g.PointerVars()
	m := NewMatrix(vars)
	for i, p := range vars {
		tp := g.VarTypes[p]
		for _, q := range vars[i+1:] {
			tq := g.VarTypes[q]
			if tp.Kind == types.KindPointer && tq.Kind == types.KindPointer &&
				tp.Record == tq.Record {
				m.addRel(p, q, Rel{Kind: RelTop})
			}
		}
	}
	m.addViolation(Violation{Prop: "widened"})
	return m
}

// Analyze runs general path matrix analysis over a normalized CFG. The env
// is the ADDS shape environment; pass env.Stripped() to model the classic,
// annotation-free analysis.
func Analyze(g *norm.Graph, env *shape.Env) *Result {
	res, err := AnalyzeCtx(context.Background(), g, env)
	if err != nil {
		// Background contexts never expire; this is unreachable.
		panic("pathmatrix: " + err.Error())
	}
	return res
}

// AnalyzeCtx is Analyze with cancellation: the fixed-point loop polls ctx
// periodically and abandons the run with ctx's error when it is done. The
// partial result is discarded — analysis state is not resumable.
func AnalyzeCtx(ctx context.Context, g *norm.Graph, env *shape.Env) (*Result, error) {
	return analyzeFull(ctx, g, env, nil)
}

// AnalyzeCtxWith is AnalyzeCtx with an interprocedural summary table: call
// statements to summarized callees apply the callee's entry-shape →
// exit-effect summary instead of the all-args havoc. A nil table is the
// plain havoc analysis.
func AnalyzeCtxWith(ctx context.Context, g *norm.Graph, env *shape.Env, tab *SummaryTable) (*Result, error) {
	if tab == nil {
		return analyzeFull(ctx, g, env, nil)
	}
	return analyzeFull(ctx, g, env, &analyzeOpts{tab: tab})
}

// analyzeOpts configures one analyzeFull run beyond the public knobs.
type analyzeOpts struct {
	// tab enables summary-based call transfer.
	tab *SummaryTable
	// shadowFormals runs the summary-computation variant: the variable set
	// is extended with a primed shadow per pointer formal, seeded as a
	// certain alias of its formal and never assigned, so exit rows between
	// shadows relate the formals' ENTRY values. Liveness dropping is
	// disabled (shadows are never "used" by any statement, and the rows are
	// read at exit).
	shadowFormals bool
}

// analyzeFull is the fixed-point engine behind AnalyzeCtx, AnalyzeCtxWith
// and summary computation.
func analyzeFull(ctx context.Context, g *norm.Graph, env *shape.Env, opts *analyzeOpts) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	shadowed := opts != nil && opts.shadowFormals
	// The fixpoint span covers the whole per-statement worklist run. When no
	// tracer rides the context this is one nil check; when one does, the
	// engine stats land as span attributes so a slow analysis can name its
	// cost (clone counts are process-wide deltas: exact when serial,
	// indicative under concurrent analyses).
	_, span := obs.Start(ctx, "fixpoint")
	clones0 := engineStats.clones.Load()
	memoHits0 := engineStats.memoHits.Load()
	sharedRows0 := engineStats.sharedRows.Load()
	droppedRows0 := engineStats.droppedRows.Load()
	summaryApplied0 := engineStats.summaryApplied.Load()
	summaryFallbacks0 := engineStats.summaryFallbacks.Load()
	widenings := 0
	res := &Result{
		Graph:  g,
		Env:    env,
		Before: make([]*Matrix, len(g.Nodes)),
		After:  make([]*Matrix, len(g.Nodes)),
		trans:  &transferer{env: env},
	}
	if opts != nil && opts.tab != nil {
		res.Summaries = opts.tab
		res.trans.summaries = opts.tab
		res.trans.varRecord = recordsOf(g)
	}
	rt := newRowTable()

	vars := g.PointerVars()
	if shadowed {
		vars = shadowFormalVars(g)
	}
	init := NewMatrix(vars)
	initParams(init, g)
	if shadowed {
		seedFormalShadows(init, g)
	}

	// With liveness-based dropping enabled, precompute per-node dead sets
	// once: the set of pointer variables not live after the node executes.
	var deadOut []*deadVars
	if Liveness && !shadowed {
		live := norm.ComputeLiveness(g)
		res.Live = live
		deadOut = make([]*deadVars, len(g.Nodes))
		for _, n := range g.Nodes {
			dv := &deadVars{set: map[string]bool{}}
			for _, v := range vars {
				if !live.LiveOut(n.ID, v) {
					dv.set[v] = true
				}
			}
			deadOut[n.ID] = dv
		}
	}

	// Edge states: for each node, the state flowing out along each
	// successor edge (branches refine differently per edge). The per-node
	// slices are carved from one backing array.
	totalSuccs := 0
	for _, n := range g.Nodes {
		totalSuccs += len(n.Succs)
	}
	edgeOut := make([][]*Matrix, len(g.Nodes))
	edgeBuf := make([]*Matrix, totalSuccs)
	for i, n := range g.Nodes {
		edgeOut[i], edgeBuf = edgeBuf[:len(n.Succs):len(n.Succs)], edgeBuf[len(n.Succs):]
	}

	inState := func(n *norm.Node) *Matrix {
		if n == g.Entry {
			return init.Clone()
		}
		var acc *Matrix
		for _, p := range n.Preds {
			for si, s := range p.Succs {
				if s != n {
					continue
				}
				st := edgeOut[p.ID][si]
				if st == nil {
					continue
				}
				if acc == nil {
					acc = st.Clone()
				} else {
					joined := Join(acc, st)
					acc.release()
					acc = joined
				}
			}
		}
		if acc == nil {
			acc = NewMatrix(vars) // unreachable so far
		}
		return acc
	}

	// The FIFO worklist is a slice drained by index and compacted in place
	// once the drained prefix dominates, so steady-state processing appends
	// into existing capacity instead of reallocating.
	work := make([]*norm.Node, 1, 4*len(g.Nodes)+64)
	work[0] = g.Entry
	head := 0
	inWork := make([]bool, len(g.Nodes))
	inWork[g.Entry.ID] = true
	visits := make([]int, len(g.Nodes))
	var widened *Matrix
	var dead []*Matrix
	iter := 0
	for head < len(work) {
		if iter++; iter > maxIterations {
			panic("pathmatrix: fixed point not reached")
		}
		if iter&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				span.SetAttr("cancelled", true)
				span.End()
				return nil, err
			}
		}
		if head > 32 && head*2 >= len(work) {
			n := copy(work, work[head:])
			work, head = work[:n], 0
		}
		n := work[head]
		head++
		inWork[n.ID] = false

		var before, after *Matrix
		if visits[n.ID]++; visits[n.ID] > nodeVisitBudget {
			if visits[n.ID] == nodeVisitBudget+1 {
				engineStats.widenings.Add(1)
				widenings++
			}
			if widened == nil {
				if shadowed {
					widened = widenedFormalsMatrix(g)
				} else {
					widened = widenedMatrix(g)
				}
			}
			before, after = widened, widened
		} else {
			before = inState(n)
			if n.Kind == norm.NodeStmt {
				after = res.trans.applyMemo(before, n.Stmt, rt)
			} else {
				after = before.Clone()
			}
			if deadOut != nil {
				after.dropDead(deadOut[n.ID])
			}
		}
		res.Before[n.ID] = before
		res.After[n.ID] = after

		// Matrices superseded on this node's out-edges. Their only remaining
		// references (this node's edgeOut slots and the res slots overwritten
		// above) are gone once the loop below finishes, so they can be
		// recycled — except the shared widened matrix and the current after.
		dead = dead[:0]
		for si, succ := range n.Succs {
			out := after
			if n.Kind == norm.NodeBranch && visits[n.ID] <= nodeVisitBudget {
				out = refine(after, n.Cond, si == 0)
			}
			old := edgeOut[n.ID][si]
			if old != nil && old.Equal(out) {
				if out != after && out != widened {
					out.release() // freshly refined, discarded, unreferenced
				}
				continue
			}
			edgeOut[n.ID][si] = out
			if old != nil && old != after && old != widened {
				dead = append(dead, old)
			}
			if !inWork[succ.ID] {
				work = append(work, succ)
				inWork[succ.ID] = true
			}
		}
		for i, d := range dead {
			still := false
			for _, e := range edgeOut[n.ID] {
				if e == d {
					still = true
				}
			}
			for _, e := range dead[:i] {
				if e == d {
					still = true // duplicate edge state, released already
				}
			}
			if !still {
				d.release()
			}
		}
	}
	engineStats.analyses.Add(1)
	engineStats.iterations.Add(uint64(iter))
	if span != nil {
		span.SetAttr("fn", g.Fn.Decl.Name)
		span.SetAttr("nodes", len(g.Nodes))
		span.SetAttr("iterations", iter)
		span.SetAttr("widenings", widenings)
		span.SetAttr("matrixClones", engineStats.clones.Load()-clones0)
		span.SetAttr("internedPaths", InternerStats())
		span.SetAttr("memoHits", engineStats.memoHits.Load()-memoHits0)
		span.SetAttr("sharedRows", engineStats.sharedRows.Load()-sharedRows0)
		span.SetAttr("dedupRows", rt.dups)
		span.SetAttr("droppedRows", engineStats.droppedRows.Load()-droppedRows0)
		if res.trans.summaries != nil {
			span.SetAttr("summaryApplied", engineStats.summaryApplied.Load()-summaryApplied0)
			span.SetAttr("summaryFallbacks", engineStats.summaryFallbacks.Load()-summaryFallbacks0)
		}
		span.End()
	}
	return res, nil
}

// shadowFormalVars extends the function's pointer variables with one primed
// shadow per pointer formal, for the summary-computation runs.
func shadowFormalVars(g *norm.Graph) []string {
	vars := append([]string(nil), g.PointerVars()...)
	for _, p := range g.Fn.Decl.Params {
		if p.Pointer {
			vars = append(vars, p.Name+Shadow)
		}
	}
	return vars
}

// recordsOf maps every pointer variable of the graph — and its potential
// shadow — to its record type name, for the summary call transfer's
// type-taint test.
func recordsOf(g *norm.Graph) map[string]string {
	out := make(map[string]string, 2*len(g.VarTypes))
	for v, t := range g.VarTypes {
		if t.Kind != types.KindPointer {
			continue
		}
		out[v] = t.Record
		out[v+Shadow] = t.Record
	}
	return out
}

// seedFormalShadows records each pointer formal's shadow as a certain alias
// of the formal at entry, generically related (like initParams) to every
// other same-record formal and that formal's shadow. The shadows are never
// assigned, so at exit they still denote the formals' entry values.
func seedFormalShadows(m *Matrix, g *norm.Graph) {
	params := g.Fn.Decl.Params
	for i, a := range params {
		if !a.Pointer {
			continue
		}
		sh := a.Name + Shadow
		m.addRel(sh, a.Name, Rel{Kind: RelAlias, Certain: true})
		for j, b := range params {
			if j == i || !b.Pointer || b.TypeName != a.TypeName {
				continue
			}
			m.addRel(sh, b.Name, Rel{Kind: RelTop})
			if j > i {
				m.addRel(sh, b.Name+Shadow, Rel{Kind: RelTop})
			}
		}
	}
}

// widenedFormalsMatrix is widenedMatrix over the shadow-extended variable
// set of a summary-computation run.
func widenedFormalsMatrix(g *norm.Graph) *Matrix {
	rec := recordsOf(g)
	vars := shadowFormalVars(g)
	m := NewMatrix(vars)
	for i, p := range vars {
		rp, okp := rec[p]
		if !okp {
			continue
		}
		for _, q := range vars[i+1:] {
			if rq, okq := rec[q]; okq && rp == rq {
				m.addRel(p, q, Rel{Kind: RelTop})
			}
		}
	}
	m.addViolation(Violation{Prop: "widened"})
	return m
}

// initParams seeds the entry matrix: pointer parameters of the same record
// type may alias or be connected in unknown ways (the callee knows nothing
// about its inputs beyond their declarations).
func initParams(m *Matrix, g *norm.Graph) {
	params := g.Fn.Decl.Params
	for i, a := range params {
		if !a.Pointer {
			continue
		}
		for _, b := range params[i+1:] {
			if b.Pointer && a.TypeName == b.TypeName {
				m.addRel(a.Name, b.Name, Rel{Kind: RelTop})
			}
		}
	}
}

// refine applies a branch condition to the matrix along one edge.
func refine(m *Matrix, c *norm.Cond, taken bool) *Matrix {
	kind := c.Kind
	if !taken {
		switch kind {
		case norm.CondNilEQ:
			kind = norm.CondNilNE
		case norm.CondNilNE:
			kind = norm.CondNilEQ
		case norm.CondPtrEQ:
			kind = norm.CondPtrNE
		case norm.CondPtrNE:
			kind = norm.CondPtrEQ
		default:
			return m
		}
	}
	switch kind {
	case norm.CondNilEQ:
		// Var is NULL here: it aliases nothing and reaches nothing.
		out := m.Clone()
		out.kill(c.Var)
		return out
	case norm.CondPtrEQ:
		out := m.Clone()
		// The two pointers are equal: each inherits the other's relations.
		for _, x := range out.relatedVars(c.Var) {
			if x == c.Var2 {
				continue
			}
			for _, r := range out.Entry(c.Var, x).rels() {
				out.addRel(c.Var2, x, r)
			}
			for _, r := range out.Entry(x, c.Var).rels() {
				out.addRel(x, c.Var2, r)
			}
		}
		for _, x := range out.relatedVars(c.Var2) {
			if x == c.Var {
				continue
			}
			for _, r := range out.Entry(c.Var2, x).rels() {
				out.addRel(c.Var, x, r)
			}
			for _, r := range out.Entry(x, c.Var2).rels() {
				out.addRel(x, c.Var, r)
			}
		}
		out.addRel(c.Var, c.Var2, Rel{Kind: RelAlias, Certain: true})
		return out
	case norm.CondPtrNE:
		// Provably distinct: drop alias relations, keep paths.
		out := m.Clone()
		for _, pair := range [][2]string{{c.Var, c.Var2}, {c.Var2, c.Var}} {
			e := out.Entry(pair[0], pair[1])
			if e == nil {
				continue
			}
			ne := Entry{}
			for _, r := range e.rels() {
				if r.Kind == RelAlias {
					continue
				}
				ne = ne.add(r)
			}
			out.set(pair[0], pair[1], ne)
		}
		return out
	}
	return m
}

// AtEntry returns the matrix at function entry.
func (r *Result) AtEntry() *Matrix { return r.Before[r.Graph.Entry.ID] }

// BeforeNode and AfterNode return the matrices around a node; they return an
// empty matrix for unreachable nodes.
func (r *Result) BeforeNode(n *norm.Node) *Matrix {
	if m := r.Before[n.ID]; m != nil {
		return m
	}
	return NewMatrix(r.Graph.PointerVars())
}

// AfterNode returns the matrix after a node executes.
func (r *Result) AfterNode(n *norm.Node) *Matrix {
	if m := r.After[n.ID]; m != nil {
		return m
	}
	return NewMatrix(r.Graph.PointerVars())
}

// LoopHead returns the fixed-point matrix at a loop's head (inside the loop,
// after the condition has been found true).
func (r *Result) LoopHead(l *norm.Loop) *Matrix {
	// Body entry is Succs[0] of the branch.
	if len(l.Branch.Succs) > 0 {
		return r.BeforeNode(l.Branch.Succs[0])
	}
	return r.BeforeNode(l.Head)
}

// Shadow is the suffix given to previous-iteration variables in the
// cross-iteration matrix (the paper's primed variables, e.g. p').
const Shadow = "'"

// IterationMatrix computes the paper's primed-variable view for a loop: the
// matrix relating each pointer variable's value at the start of iteration i
// (suffixed with Shadow) to every variable's value after the body has
// executed once (unsuffixed). PM(p', p) = next means each iteration advances
// p by exactly one next link.
func (r *Result) IterationMatrix(l *norm.Loop) *Matrix {
	base := r.LoopHead(l)

	// Extend the variable set with shadows and copy all relations, making
	// shadow x' an exact alias of x.
	vars := append([]string(nil), base.vars...)
	for _, v := range base.vars {
		vars = append(vars, v+Shadow)
	}
	m := NewMatrix(vars)
	for k, e := range base.cells {
		m.set(k[0], k[1], e.clone())
	}
	for _, v := range base.Violations() {
		m.addViolation(v)
	}
	for _, v := range base.vars {
		sh := v + Shadow
		m.copyRelations(sh, v)
		m.addRel(sh, v, Rel{Kind: RelAlias, Certain: true})
	}

	// Run one symbolic body execution as a localized dataflow over the body
	// subgraph: inner branches join properly, inner loops reach their own
	// fixed points. Body nodes only write unshadowed variables, so shadows
	// keep their iteration-start values. States flowing along back edges
	// into the loop head are joined to form the result.
	bodyEntry := l.Branch.Succs[0]
	// A fresh transferer: r.trans carries per-goroutine scratch state, and
	// IterationMatrix may be called concurrently on one Result. It inherits
	// the run's summary table so calls in the body transfer the same way.
	trans := &transferer{env: r.Env, summaries: r.Summaries}
	if r.Summaries != nil {
		trans.varRecord = recordsOf(r.Graph)
	}
	states := map[int]*Matrix{bodyEntry.ID: m}
	edgeOut := map[int][]*Matrix{}
	work := []*norm.Node{bodyEntry}
	inWork := map[int]bool{bodyEntry.ID: true}
	visits := map[int]int{}
	var widened *Matrix
	var result *Matrix
	iter := 0
	for len(work) > 0 {
		if iter++; iter > maxIterations {
			panic("pathmatrix: iteration matrix fixed point not reached")
		}
		n := work[0]
		work = work[1:]
		inWork[n.ID] = false

		forceWiden := false
		if visits[n.ID]++; visits[n.ID] > nodeVisitBudget {
			forceWiden = true
		}
		before := states[n.ID]
		if n != bodyEntry {
			before = nil
			for _, p := range n.Preds {
				if !l.Body[p] {
					continue
				}
				for si, s := range p.Succs {
					if s != n || edgeOut[p.ID] == nil || edgeOut[p.ID][si] == nil {
						continue
					}
					if before == nil {
						before = edgeOut[p.ID][si].Clone()
					} else {
						joined := Join(before, edgeOut[p.ID][si])
						before.release()
						before = joined
					}
				}
			}
			if before == nil {
				continue
			}
		}
		var after *Matrix
		if forceWiden {
			if widened == nil {
				widened = widenedIterationMatrix(r.Graph)
			}
			after = widened
		} else if n.Kind == norm.NodeStmt {
			after = trans.applyMemo(before, n.Stmt, nil)
		} else {
			after = before.Clone()
		}
		if edgeOut[n.ID] == nil {
			edgeOut[n.ID] = make([]*Matrix, len(n.Succs))
		}
		for si, succ := range n.Succs {
			out := after
			if n.Kind == norm.NodeBranch && !forceWiden {
				out = refine(after, n.Cond, si == 0)
			}
			if succ == l.Head {
				// Back edge: this state describes the end of the iteration.
				if result == nil {
					result = out.Clone()
				} else {
					joined := Join(result, out)
					result.release()
					result = joined
				}
				continue
			}
			if !l.Body[succ] {
				continue // exits the loop (break-like edge)
			}
			old := edgeOut[n.ID][si]
			if old != nil && old.Equal(out) {
				continue
			}
			edgeOut[n.ID][si] = out
			if !inWork[succ.ID] {
				work = append(work, succ)
				inWork[succ.ID] = true
			}
		}
	}
	if result == nil {
		return m // body never completes (always returns/exits)
	}
	return result
}

// FuncResult bundles per-function results for a whole program.
type FuncResult struct {
	Info   *types.FuncInfo
	Graph  *norm.Graph
	Result *Result
}

// AnalyzeProgram runs the analysis over every function of a checked program,
// using one worker per available CPU. The result is independent of worker
// count and scheduling (per-function analysis is deterministic).
func AnalyzeProgram(info *types.Info, env *shape.Env) map[string]*FuncResult {
	out, err := AnalyzeProgramCtx(context.Background(), info, env, 0)
	if err != nil {
		// Background contexts never expire; this is unreachable.
		panic("pathmatrix: " + err.Error())
	}
	return out
}

// AnalyzeProgramCtx analyzes every function of a checked program with a
// bounded worker pool. workers <= 0 means GOMAXPROCS. Cancelling ctx stops
// the remaining work and returns ctx's error.
func AnalyzeProgramCtx(ctx context.Context, info *types.Info, env *shape.Env, workers int) (map[string]*FuncResult, error) {
	names := make([]string, 0, len(info.Funcs))
	for name := range info.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}

	// The summary table is computed serially up front (bottom-up over the
	// call graph) and then shared read-only by all workers, so the result is
	// independent of worker count and scheduling.
	var opts *analyzeOpts
	if Summarize {
		tab, err := ComputeSummariesCtx(ctx, info, env)
		if err != nil {
			return nil, err
		}
		opts = &analyzeOpts{tab: tab}
	}

	analyzeOne := func(name string) (*FuncResult, error) {
		fi := info.Funcs[name]
		fctx, span := obs.Start(ctx, "analyze")
		span.SetAttr("fn", name)
		g := norm.Build(fi, info.Env)
		r, err := analyzeFull(fctx, g, env, opts)
		span.End()
		if err != nil {
			return nil, err
		}
		return &FuncResult{Info: fi, Graph: g, Result: r}, nil
	}

	out := make(map[string]*FuncResult, len(names))
	if workers <= 1 {
		for _, name := range names {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			fr, err := analyzeOne(name)
			if err != nil {
				return nil, err
			}
			out[name] = fr
		}
		return out, nil
	}

	// Results are slotted by position in the sorted name list, so the output
	// map is identical regardless of which worker analyzed which function.
	results := make([]*FuncResult, len(names))
	errs := make([]error, workers)
	panics := make([]any, workers)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(names) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				fr, err := analyzeOne(names[i])
				if err != nil {
					errs[w] = err
					return
				}
				results[i] = fr
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p) // surface worker panics on the calling goroutine
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, name := range names {
		out[name] = results[i]
	}
	return out, nil
}

// String renders a short summary of the result (entry and exit matrices).
func (r *Result) String() string {
	return fmt.Sprintf("entry:\n%s\nexit:\n%s",
		r.BeforeNode(r.Graph.Entry), r.BeforeNode(r.Graph.Exit))
}
