// Package pathmatrix implements general path matrix analysis, the paper's
// core contribution (Section 5.1): a flow-sensitive alias analysis that
// tracks, for every pair of live pointer variables, the explicit paths and
// aliases between the nodes they point to, and consults the ADDS shape
// declaration to avoid manufacturing spurious cycles.
//
// The matrix entry PM(p, q) is a small set of relations: a definite alias
// ("="), a possible alias ("=?"), or a path expression such as "next+"
// meaning one or more next links lead from p's node to q's node. Empty
// entries are meaningful: as in the paper, all possible aliases are recorded
// explicitly, so an empty entry (in both directions) proves the two pointers
// are not aliases while the abstraction is valid.
package pathmatrix

import (
	"fmt"
	"strings"
)

// CountCap is the widening bound on per-field traversal counts: a path with
// more than CountCap repetitions of a field widens to "field^CountCap+".
// It is a variable (not a constant) so the ablation benchmarks can study
// the precision/cost tradeoff; production code should leave it alone.
var CountCap = 4

// MaxSteps bounds the number of distinct steps in a path expression. Longer
// paths degrade to the Top relation (possible alias, unknown path), which is
// sound but imprecise. Variable for the same ablation reason as CountCap.
var MaxSteps = 4

// Step is one component of a path expression: Field traversed Min times,
// "or more" when Plus is set. Min is at least 1.
//
// A Field beginning with '~' is a dimension pseudo-field: "~down" means one
// forward step along dimension down by any of its forward fields. This is
// the paper's Section 5.1 widening for trees ("down is a conservative
// approximation for going either left or right").
type Step struct {
	Field string
	Min   int
	Plus  bool
}

// DimField returns the pseudo-field name for a forward step along dim.
func DimField(dim string) string { return "~" + dim }

// IsDimField reports whether the field is a dimension pseudo-field.
func IsDimField(f string) bool { return len(f) > 0 && f[0] == '~' }

// displayField renders the field: dimension pseudo-fields print as the bare
// dimension name, matching the paper's notation.
func displayField(f string) string {
	if IsDimField(f) {
		return f[1:]
	}
	return f
}

// String renders the step: next, next^2, next+, next^2+.
func (s Step) String() string {
	f := displayField(s.Field)
	switch {
	case s.Min == 1 && !s.Plus:
		return f
	case s.Min == 1 && s.Plus:
		return f + "+"
	case s.Plus:
		return fmt.Sprintf("%s^%d+", f, s.Min)
	default:
		return fmt.Sprintf("%s^%d", f, s.Min)
	}
}

// Path is a sequence of steps: "next^2.down+" means two next links then one
// or more down links. The zero-length path never appears in a relation
// (a zero-length path is an alias).
type Path []Step

// String renders the path with "." separators. Interned paths return their
// memoized rendering.
func (p Path) String() string {
	if Interning && len(p) > 0 {
		return interner.metaOf(p).str
	}
	return p.computeString()
}

func (p Path) computeString() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, ".")
}

// Equal reports structural equality. Interned paths share one backing
// slice, so the slice-header comparison short-circuits the common case.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	if len(p) > 0 && &p[0] == &q[0] {
		return true
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical map key for the path. Unlike String it keeps the
// '~' marker of dimension pseudo-fields, so a pseudo-field never collides
// with a real field that happens to share the dimension's name. Interned
// paths return their memoized key.
func (p Path) Key() string {
	if Interning && len(p) > 0 {
		return interner.metaOf(p).key
	}
	return p.computeKey()
}

func (p Path) computeKey() string {
	parts := make([]string, len(p))
	for i, s := range p {
		switch {
		case s.Min == 1 && !s.Plus:
			parts[i] = s.Field
		case s.Plus:
			parts[i] = fmt.Sprintf("%s^%d+", s.Field, s.Min)
		default:
			parts[i] = fmt.Sprintf("%s^%d", s.Field, s.Min)
		}
	}
	return strings.Join(parts, ".")
}

// sig returns the path's field signature with counts erased (the sigKey
// grouping). Interned paths return their memoized signature.
func (p Path) sig() string {
	if Interning && len(p) > 0 {
		return interner.metaOf(p).sig
	}
	return p.computeSig()
}

func (p Path) computeSig() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.Field
	}
	return strings.Join(parts, ".")
}

// single returns the one-step path f^1, interned. One-step paths are the
// most common path expression the transfer function builds, so they get
// their own field-keyed cache in front of the intern table.
func single(field string) Path {
	if !Interning {
		return Path{{Field: field, Min: 1}}
	}
	if v, ok := singleCache.Load(field); ok {
		return v.(Path)
	}
	p := Intern(Path{{Field: field, Min: 1}})
	singleCache.Store(field, p)
	return p
}

// canon merges adjacent steps over the same field and applies the count cap.
// It returns ok=false when the path exceeds MaxSteps and the caller must
// degrade to Top. Already-canonical paths (the common case once expressions
// are interned) pass through without rebuilding.
func canon(p Path) (Path, bool) {
	isCanon := len(p) <= MaxSteps
	for i := 0; isCanon && i < len(p); i++ {
		if p[i].Min > CountCap || (i > 0 && p[i-1].Field == p[i].Field) {
			isCanon = false
		}
	}
	if isCanon {
		return Intern(p), true
	}
	out := make(Path, 0, len(p))
	for _, s := range p {
		if n := len(out); n > 0 && out[n-1].Field == s.Field {
			out[n-1].Min += s.Min
			out[n-1].Plus = out[n-1].Plus || s.Plus
		} else {
			out = append(out, s)
		}
	}
	for i := range out {
		if out[i].Min > CountCap {
			out[i].Min = CountCap
			out[i].Plus = true
		}
	}
	if len(out) > MaxSteps {
		return nil, false
	}
	return Intern(out), true
}

// concat appends q to p and canonicalizes. ok=false means Top.
func concat(p, q Path) (Path, bool) {
	joined := make(Path, 0, len(p)+len(q))
	joined = append(joined, p...)
	joined = append(joined, q...)
	return canon(joined)
}

// stripResult describes what remains of a path after removing one traversal
// of a field from one end.
type stripResult struct {
	alias bool // removal may leave a zero-length path (nodes equal)
	path  Path // non-empty remainder, nil if none
	ok    bool // false: the path cannot lose that field from that end
}

// stripLeading removes one leading traversal of field from the path
// (used for p = q->f given a path from q). For a leading step f^k the
// remainder starts with f^(k-1); f^1 exactly disappears; f+ yields both the
// alias possibility (k was 1) and the remainder f+ shortened by one, i.e.
// f^0+ which we render as "maybe-alias plus f+ path".
func stripLeading(p Path, field string) []stripResult {
	if len(p) == 0 || p[0].Field != field {
		return []stripResult{{ok: false}}
	}
	head, rest := p[0], p[1:]
	var out []stripResult
	switch {
	case head.Min == 1 && !head.Plus:
		if len(rest) == 0 {
			out = append(out, stripResult{alias: true, ok: true})
		} else {
			out = append(out, stripResult{path: Intern(rest), ok: true})
		}
	case head.Min == 1 && head.Plus:
		// One step consumed: either that was the last (alias with rest),
		// or at least one more remains (f+ again).
		if len(rest) == 0 {
			out = append(out, stripResult{alias: true, ok: true})
		} else {
			out = append(out, stripResult{path: Intern(rest), ok: true})
		}
		remainder := append(Path{{Field: field, Min: 1, Plus: true}}, rest...)
		out = append(out, stripResult{path: Intern(remainder), ok: true})
	default: // Min >= 2
		remainder := append(Path{{Field: field, Min: head.Min - 1, Plus: head.Plus}}, rest...)
		out = append(out, stripResult{path: Intern(remainder), ok: true})
		if head.Plus {
			// Min-1 could also be exceeded; already covered by Plus remainder.
			_ = remainder
		}
	}
	return out
}

// stripTrailing removes one trailing traversal of field (used for backward
// steps: p = q->b where paths into q end with the forward partner).
func stripTrailing(p Path, field string) []stripResult {
	if len(p) == 0 || p[len(p)-1].Field != field {
		return []stripResult{{ok: false}}
	}
	reversed := reversePath(p)
	var out []stripResult
	for _, r := range stripLeading(reversed, field) {
		if !r.ok {
			out = append(out, r)
			continue
		}
		out = append(out, stripResult{alias: r.alias, path: Intern(reversePath(r.path)), ok: true})
	}
	return out
}

func reversePath(p Path) Path {
	if p == nil {
		return nil
	}
	out := make(Path, len(p))
	for i, s := range p {
		out[len(p)-1-i] = s
	}
	return out
}

// startsWith reports whether the path begins by traversing field.
func (p Path) startsWith(field string) bool {
	return len(p) > 0 && p[0].Field == field
}

// endsWith reports whether the path ends by traversing field.
func (p Path) endsWith(field string) bool {
	return len(p) > 0 && p[len(p)-1].Field == field
}

// Fields returns the set of fields the path traverses.
func (p Path) Fields() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range p {
		if !seen[s.Field] {
			seen[s.Field] = true
			out = append(out, s.Field)
		}
	}
	return out
}
