package pathmatrix

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/shape"
	"repro/internal/source/ast"
	"repro/internal/source/types"
)

// Compositional interprocedural analysis: per-function summaries.
//
// A summary describes one function as an entry-shape → exit-effect
// abstraction, computed once per function body from a generic entry state
// (the same "parameters of one record type may be arbitrarily related"
// assumption initParams makes for every analysis). The trick is the paper's
// primed-variable device from the iteration matrix, applied at function
// granularity: each pointer formal p gets a shadow p' seeded as a certain
// alias of p and never assigned, so at exit the matrix rows between shadows
// relate the ENTRY values of the formals — exactly the values the caller's
// actuals hold at the call site.
//
// Soundness rests on three properties of the mini language: arguments are
// passed by value, there are no globals, and functions cannot return
// pointers. A call therefore never changes any caller variable binding —
// only heap links reachable from the actuals. Aliasing between caller
// variables is exactly preserved across any call, and a caller entry (x, y)
// can change only if a path between them routes through a mutated node.
// Every mutated link emanates from a node whose record type the callee
// wrote (the summary's Writes set), and every node on a path from x has a
// type reachable from x's record type, so an entry whose source variable's
// reachable types are disjoint from Writes is untouched. That is the
// type-taint test the call transfer applies (transfer.go, applySummary).
//
// Recursive functions (any call cycle, including self-calls) get no
// summary; calls to them keep the sound all-args havoc. The same fallback
// guards two call-site preconditions the generic entry state bakes in: the
// caller matrix must be violation-free (absent entries are only "provably
// unrelated" then), and actuals bound to formals of different record types
// must be provably unrelated (the generic entry assumes exactly that).
//
// Alongside the row summaries, the table records per-function EFFECTS for
// every in-program function, recursive ones included: the record types the
// function may shape-mutate and whether it shape-mutates at all. Effects
// make two call-site judgements possible that rows alone cannot: a call to
// a function that never stores a pointer field is a path-matrix no-op, and
// a call to a shape mutator whose generic-entry validation does not cover
// the call site's actual aliasing must taint the caller's validity (the
// callee may have broken the declared abstraction without its own analysis
// noticing — store validation only triggers on explicitly denoted
// relations, and the generic entry denotes none).

// Summarize gates summary-based call transfer in AnalyzeProgramCtx and the
// facade. Exposed as a variable so ablation harnesses (addsfuzz -summaries,
// addsbench) can compare against the pure-havoc engine.
var Summarize = true

// SummaryCap bounds the process-wide summary cache (whole summaries, not
// bytes; summaries are a few matrix rows each).
var SummaryCap = 1024

// FuncSummary is the cached entry-shape → exit-effect abstraction of one
// function. It is frozen after construction and may be shared by any number
// of concurrent analyses.
type FuncSummary struct {
	Fn           string
	Formals      []string // pointer formal names, declaration order
	FormalPos    []int    // argument position of each pointer formal
	FormalRecord []string // record type of each pointer formal

	// Rows holds the exit relations between the entry values of each
	// ordered pair of pointer formals, keyed by formal name pair. Alias
	// relations are ignored at instantiation (caller aliasing is exactly
	// preserved by value semantics); Via provenance is stripped (it names
	// callee-local stores). A missing key means provably unrelated.
	Rows map[[2]string]Entry

	// ExitInvalid reports that the generic-entry exit state carried
	// outstanding violations (or never reached the exit): the function may
	// leave structures breaking their declarations on ANY entry state, so
	// every call site must taint the caller's validity.
	ExitInvalid bool

	hash string // content-addressed cache key
}

// FuncEffects describes what one function's execution can do to heap state
// reachable from its arguments, computed for every in-program function —
// recursive ones included — as the union over its strongly connected call
// component. Unlike row summaries, effects are recomputed per table (they
// are cheap) and never enter the process-wide cache.
type FuncEffects struct {
	// Writes is the set of record types whose nodes the function or any
	// transitive callee may shape-mutate (pointer stores and frees;
	// out-of-program callees contribute the full reachable closure of their
	// argument types).
	Writes map[string]bool
	// ShapeMut reports whether the function or any transitive callee
	// performs any shape mutation at all. When false the call is a
	// path-matrix no-op: data writes cannot change pointer relations or
	// break a declared abstraction.
	ShapeMut bool
}

// SummaryTable holds the summaries for one program under one shape
// environment. It is immutable after ComputeSummariesCtx returns and is
// shared read-only by all analysis goroutines.
type SummaryTable struct {
	env       *shape.Env
	byFn      map[string]*FuncSummary
	effects   map[string]*FuncEffects
	recursive map[string]bool
	reach     map[string]map[string]bool // record type → reachable record types (incl. itself)

	// Computed and Reused count this table's cache misses and hits; the
	// /v1/reanalyze endpoint reports them per request.
	Computed int
	Reused   int
}

// Lookup returns the summary for fn, or nil (recursive or unknown).
func (t *SummaryTable) Lookup(fn string) *FuncSummary {
	if t == nil {
		return nil
	}
	return t.byFn[fn]
}

// Effects returns fn's effects, or nil for a function outside the program.
func (t *SummaryTable) Effects(fn string) *FuncEffects {
	if t == nil {
		return nil
	}
	return t.effects[fn]
}

// Recursive reports whether fn sits on a call cycle (and thus has no
// summary by design, as opposed to being unknown).
func (t *SummaryTable) Recursive(fn string) bool { return t != nil && t.recursive[fn] }

// Len returns the number of summarized functions.
func (t *SummaryTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.byFn)
}

// Hash returns the content hash of fn's summary ("" if none).
func (t *SummaryTable) Hash(fn string) string {
	if s := t.Lookup(fn); s != nil {
		return s.hash
	}
	return ""
}

// reachIntersects reports whether any record type reachable from rec is in
// writes. Unknown record types answer true: never claim disjointness
// without a declaration to back it.
func (t *SummaryTable) reachIntersects(rec string, writes map[string]bool) bool {
	set, ok := t.reach[rec]
	if !ok {
		return true
	}
	for r := range set {
		if writes[r] {
			return true
		}
	}
	return false
}

// reachClosure computes, for every declared record type, the set of record
// types reachable through pointer fields (including itself).
func reachClosure(env *shape.Env) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(env.Types))
	for name := range env.Types {
		set := map[string]bool{}
		var visit func(string)
		visit = func(n string) {
			if set[n] {
				return
			}
			set[n] = true
			if st := env.Type(n); st != nil {
				for _, f := range st.Fields {
					visit(f.Target)
				}
			}
		}
		visit(name)
		out[name] = set
	}
	return out
}

// ---------------------------------------------------------------------------
// Call graph

// callGraph returns each function's distinct in-program callees (sorted) in
// one map, built from the AST so it matches what the normalizer will lower.
func callGraph(prog *ast.Program) map[string][]string {
	out := make(map[string][]string, len(prog.Funcs))
	for _, fd := range prog.Funcs {
		seen := map[string]bool{}
		var callees []string
		ast.WalkExprs(fd.Body, func(e ast.Expr) {
			c, ok := e.(*ast.CallExpr)
			if !ok || seen[c.Name] {
				return
			}
			seen[c.Name] = true
			if prog.FuncByName(c.Name) != nil {
				callees = append(callees, c.Name)
			}
		})
		sort.Strings(callees)
		out[fd.Name] = callees
	}
	return out
}

// callOrder returns the strongly connected call components in bottom-up
// order (callees before callers, via Tarjan's SCC algorithm, which emits
// components in reverse topological order) and the set of names on a call
// cycle.
func callOrder(prog *ast.Program, callees map[string][]string) (sccs [][]string, recursive map[string]bool) {
	recursive = map[string]bool{}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0

	var connect func(v string)
	connect = func(v string) {
		next++
		index[v], low[v] = next, next
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range callees[v] {
			if _, seen := index[w]; !seen {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] != index[v] {
			return
		}
		// v roots an SCC: pop it.
		var scc []string
		for {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			onStack[w] = false
			scc = append(scc, w)
			if w == v {
				break
			}
		}
		selfCall := false
		for _, c := range callees[v] {
			if c == v {
				selfCall = true
			}
		}
		if len(scc) > 1 || selfCall {
			for _, w := range scc {
				recursive[w] = true
			}
		}
		sort.Strings(scc) // deterministic within a component
		sccs = append(sccs, scc)
	}
	for _, fd := range prog.Funcs {
		if _, seen := index[fd.Name]; !seen {
			connect(fd.Name)
		}
	}
	return sccs, recursive
}

// ---------------------------------------------------------------------------
// Content-addressed summary cache

type summaryCacheEntry struct {
	key string
	sum *FuncSummary
}

var summaryCache struct {
	mu  sync.Mutex
	ent map[string]*list.Element
	lru list.List // front = most recent; values are *summaryCacheEntry
}

func init() {
	summaryCache.ent = make(map[string]*list.Element)
	summaryCache.lru.Init()
}

func summaryCacheGet(key string) (*FuncSummary, bool) {
	summaryCache.mu.Lock()
	defer summaryCache.mu.Unlock()
	el, ok := summaryCache.ent[key]
	if !ok {
		return nil, false
	}
	summaryCache.lru.MoveToFront(el)
	return el.Value.(*summaryCacheEntry).sum, true
}

func summaryCachePut(key string, sum *FuncSummary) {
	summaryCache.mu.Lock()
	defer summaryCache.mu.Unlock()
	if el, ok := summaryCache.ent[key]; ok {
		summaryCache.lru.MoveToFront(el) // concurrent miss on the same key
		return
	}
	summaryCache.ent[key] = summaryCache.lru.PushFront(&summaryCacheEntry{key: key, sum: sum})
	limit := SummaryCap
	if limit < 1 {
		limit = 1
	}
	for summaryCache.lru.Len() > limit {
		back := summaryCache.lru.Back()
		summaryCache.lru.Remove(back)
		delete(summaryCache.ent, back.Value.(*summaryCacheEntry).key)
	}
}

func summaryCacheLen() int {
	summaryCache.mu.Lock()
	defer summaryCache.mu.Unlock()
	return len(summaryCache.ent)
}

// ResetSummaryCache empties the process-wide summary cache (tests and the
// cold-cache benchmark).
func ResetSummaryCache() {
	summaryCache.mu.Lock()
	defer summaryCache.mu.Unlock()
	summaryCache.ent = make(map[string]*list.Element)
	summaryCache.lru.Init()
}

// enginePrefix is the run-invariant part of every content-addressed engine
// key: version, environment fingerprint, and the tunables that change
// transfer output or representation. Shared by the transfer memo and the
// summary cache.
func enginePrefix(env *shape.Env) string {
	return EngineVersion + "\x1f" + env.Fingerprint() + "\x1f" +
		fmt.Sprintf("%d,%d,%d,%t", CountCap, MaxSteps, EntrySize, Interning) + "\x1f"
}

// summaryKey builds the content-addressed cache key for one function:
// SHA-256 over the engine prefix, the canonical function source, and the
// sorted callee contributions — a callee's own summary hash when it has
// one, its effects fingerprint otherwise. The fingerprint is what an
// unsummarized callee's body contributes to this function's analysis (the
// fallback havoc-or-no-op and the validity taint read only effects), so a
// recursive callee edit that changes its effects re-keys its callers while
// an effect-preserving edit keeps their cached summaries valid. Summaries
// re-key transitively when any summarized callee's body changes.
func summaryKey(env *shape.Env, fd *ast.FuncDecl, callees []string, tab *SummaryTable) string {
	var b strings.Builder
	b.WriteString(enginePrefix(env))
	b.WriteString(ast.FuncString(fd))
	for _, c := range callees {
		b.WriteByte('\x1e')
		if s := tab.byFn[c]; s != nil {
			b.WriteString(s.hash)
		} else {
			b.WriteString("eff:" + c + "\x1f" + tab.effects[c].fingerprint())
		}
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256([]byte(b.String())))
}

// fingerprint renders the effects canonically for key material.
func (e *FuncEffects) fingerprint() string {
	if e == nil {
		return "?"
	}
	recs := make([]string, 0, len(e.Writes))
	for r := range e.Writes {
		recs = append(recs, r)
	}
	sort.Strings(recs)
	return fmt.Sprintf("%t|%s", e.ShapeMut, strings.Join(recs, ","))
}

// ---------------------------------------------------------------------------
// Summary computation

// ComputeSummaries is ComputeSummariesCtx with a background context.
func ComputeSummaries(info *types.Info, env *shape.Env) *SummaryTable {
	tab, err := ComputeSummariesCtx(context.Background(), info, env)
	if err != nil {
		// Background contexts never expire; this is unreachable.
		panic("pathmatrix: " + err.Error())
	}
	return tab
}

// ComputeSummariesCtx builds the summary table for a checked program:
// functions in bottom-up call order, recursive cycles skipped, every
// summary served from the process-wide content-addressed cache when its
// key — SHA-256(canonical body, callee summary hashes, engine version,
// knobs, environment fingerprint) — has been computed before, by any run
// of any program.
func ComputeSummariesCtx(ctx context.Context, info *types.Info, env *shape.Env) (*SummaryTable, error) {
	_, span := obs.Start(ctx, "summaries")
	tab := &SummaryTable{
		env:       env,
		byFn:      map[string]*FuncSummary{},
		effects:   map[string]*FuncEffects{},
		recursive: map[string]bool{},
		reach:     reachClosure(env),
	}
	callees := callGraph(info.Prog)
	sccs, recursive := callOrder(info.Prog, callees)
	functions := 0
	for _, scc := range sccs {
		functions += len(scc)
		tab.computeEffects(scc, info)
		for _, name := range scc {
			if recursive[name] {
				tab.recursive[name] = true
				continue
			}
			fi := info.Funcs[name]
			if fi == nil {
				continue
			}
			key := summaryKey(env, fi.Decl, callees[name], tab)
			if sum, ok := summaryCacheGet(key); ok {
				tab.byFn[name] = sum
				tab.Reused++
				engineStats.summaryReused.Add(1)
				continue
			}
			sum, err := tab.computeSummary(ctx, fi, info)
			if err != nil {
				span.SetAttr("cancelled", true)
				span.End()
				return nil, err
			}
			sum.hash = key
			summaryCachePut(key, sum)
			tab.byFn[name] = sum
			tab.Computed++
			engineStats.summaryComputed.Add(1)
		}
	}
	if span != nil {
		span.SetAttr("functions", functions)
		span.SetAttr("computed", tab.Computed)
		span.SetAttr("reused", tab.Reused)
		span.End()
	}
	return tab, nil
}

// computeSummary runs the shadow-formal fixpoint for one function and
// extracts the summary. Callee summaries already in tab (bottom-up order)
// make inner call sites compositional too.
func (tab *SummaryTable) computeSummary(ctx context.Context, fi *types.FuncInfo, info *types.Info) (*FuncSummary, error) {
	g := norm.Build(fi, info.Env)
	res, err := analyzeFull(ctx, g, tab.env, &analyzeOpts{tab: tab, shadowFormals: true})
	if err != nil {
		return nil, err
	}

	sum := &FuncSummary{Fn: fi.Decl.Name, Rows: map[[2]string]Entry{}}
	for pos, p := range fi.Decl.Params {
		if !p.Pointer {
			continue
		}
		sum.Formals = append(sum.Formals, p.Name)
		sum.FormalPos = append(sum.FormalPos, pos)
		sum.FormalRecord = append(sum.FormalRecord, p.TypeName)
	}
	// Exit rows between the entry-value shadows. An invalid exit state
	// (outstanding violations, or an exit the function never reaches) may
	// be missing derived relations, so every row degrades to include Top —
	// the havoc-equivalent unknown — and the call transfer must taint every
	// call site's validity (ExitInvalid).
	exit := res.Before[g.Exit.ID]
	valid := exit != nil && exit.Valid()
	sum.ExitInvalid = !valid
	for i, p := range sum.Formals {
		for j, q := range sum.Formals {
			if i == j {
				continue
			}
			var e Entry
			if exit != nil {
				for _, r := range exit.Entry(p+Shadow, q+Shadow).rels() {
					r.Via = Via{} // callee-local provenance
					e = e.add(r)
				}
			}
			if !valid {
				e = e.add(Rel{Kind: RelTop})
			}
			if e != nil {
				sum.Rows[[2]string{p, q}] = e
			}
		}
	}
	return sum, nil
}

// computeEffects scans the lowered bodies of one strongly connected call
// component and records the shared effects for every member: pointer stores
// and frees contribute the base's record type; calls outside the component
// contribute their callee's (already computed, bottom-up order) effects;
// calls within the component contribute nothing extra — every write a
// recursive descent performs happens in some member body and is already in
// the union. Calls to functions outside the program contribute the full
// reachable closure of every pointer argument's record type and count as
// shape-mutating.
func (tab *SummaryTable) computeEffects(scc []string, info *types.Info) {
	eff := &FuncEffects{Writes: map[string]bool{}}
	inSCC := make(map[string]bool, len(scc))
	for _, name := range scc {
		inSCC[name] = true
	}
	addReach := func(rec string) {
		if set, ok := tab.reach[rec]; ok {
			for r := range set {
				eff.Writes[r] = true
			}
		} else if rec != "" {
			eff.Writes[rec] = true
		}
	}
	for _, name := range scc {
		fi := info.Funcs[name]
		if fi == nil {
			continue
		}
		g := norm.Build(fi, info.Env)
		for _, n := range g.Nodes {
			if n.Kind != norm.NodeStmt {
				continue
			}
			s := n.Stmt
			switch s.Op {
			case norm.StorePtr, norm.Free:
				eff.ShapeMut = true
				if rec := g.VarTypes[s.Base].Record; rec != "" {
					eff.Writes[rec] = true
				}
			case norm.Call:
				if inSCC[s.Callee] {
					continue
				}
				if ce := tab.effects[s.Callee]; ce != nil {
					if ce.ShapeMut {
						eff.ShapeMut = true
					}
					for r := range ce.Writes {
						eff.Writes[r] = true
					}
				} else if len(s.Args) > 0 {
					eff.ShapeMut = true
					for _, a := range s.Args {
						addReach(g.VarTypes[a].Record)
					}
				}
			}
		}
	}
	for _, name := range scc {
		tab.effects[name] = eff
	}
}
