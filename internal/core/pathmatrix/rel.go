package pathmatrix

import (
	"fmt"
	"strings"
)

// RelKind classifies a matrix relation.
type RelKind int

// Relation kinds. Alias with Certain is the paper's "=", without Certain
// "=?". Top subsumes everything: possible alias and unknown paths.
const (
	RelAlias RelKind = iota
	RelPath
	RelTop
)

// Via identifies the store instruction family that materialized an
// edge-derived relation: a store through variable Var's field Field. When a
// later statement overwrites that edge (Var->Field = ...), relations tagged
// with the same Via are removed — this is the paper's Section 5.1.1
// mechanism for noticing that a temporarily broken abstraction has been
// repaired. A Via whose variable has since been reassigned is marked stale
// (Stale) and never removed.
type Via struct {
	Var   string
	Field string
	Stale bool
}

func (v Via) zero() bool { return v.Var == "" && v.Field == "" }

// Rel is one relation in a matrix entry.
type Rel struct {
	Kind    RelKind
	Certain bool // definite (present on all executions reaching here)
	Path    Path // for RelPath
	Via     Via  // optional provenance for edge-derived relations
}

// String renders the relation in the paper's notation.
func (r Rel) String() string {
	switch r.Kind {
	case RelAlias:
		if r.Certain {
			return "="
		}
		return "=?"
	case RelTop:
		return "??"
	case RelPath:
		s := r.Path.String()
		if !r.Certain {
			s += "?"
		}
		return s
	}
	return "<bad rel>"
}

// key returns a canonical identity for set membership; certainty is not part
// of identity (two relations differing only in certainty merge).
func (r Rel) key() string {
	switch r.Kind {
	case RelAlias:
		return "="
	case RelTop:
		return "??"
	default:
		k := r.Path.Key()
		if !r.Via.zero() {
			k += "|via:" + r.Via.Var + "." + r.Via.Field
			if r.Via.Stale {
				k += "!"
			}
		}
		return k
	}
}

// Entry is a set of relations between two pointers. The nil entry means "no
// relation": provably not aliases (while the abstraction is valid).
type Entry map[string]Rel

// EntrySize caps relation sets; larger entries collapse to Top. Variable
// only so the ablation benchmarks can study the tradeoff.
var EntrySize = 8

func (e Entry) clone() Entry {
	if e == nil {
		return nil
	}
	out := make(Entry, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// add inserts a relation, merging certainty (certain wins on same key) and
// collapsing to Top when the entry grows too large. Alias relations and
// certain path relations survive saturation: Top means "unknown paths may
// exist", which cancels neither a known equality nor an edge a store
// provably created. Keeping certain paths is what lets Def 4.6 backward
// validation succeed right after the forward half of a doubly-linked store
// pair even between Top-related pointers (e.g. a summary's generic formal
// entry). It returns the updated entry (possibly freshly allocated).
func (e Entry) add(r Rel) Entry {
	if e == nil {
		e = Entry{}
	}
	if _, isTop := e["??"]; isTop && !r.survivesTop() {
		return e // saturated; only alias and certain-path facts still matter
	}
	if r.Kind == RelTop {
		return e.saturate()
	}
	k := r.key()
	if old, ok := e[k]; ok {
		if r.Certain && !old.Certain {
			e[k] = r
		}
		return e
	}
	e[k] = r
	if _, isTop := e["??"]; !isTop && len(e) > EntrySize {
		return e.saturate()
	}
	return e
}

// survivesTop reports whether the relation carries information Top cannot
// subsume: a known equality, or a definitely-present path.
func (r Rel) survivesTop() bool {
	return r.Kind == RelAlias || (r.Kind == RelPath && r.Certain)
}

// saturate collapses the entry to Top plus the facts Top cannot cancel.
func (e Entry) saturate() Entry {
	out := Entry{"??": {Kind: RelTop}}
	for k, r := range e {
		if r.survivesTop() {
			out[k] = r
		}
	}
	return out
}

// hasAliasInfo reports whether the entry admits aliasing (alias or top).
func (e Entry) hasAliasInfo() bool {
	for _, r := range e {
		if r.Kind == RelAlias || r.Kind == RelTop {
			return true
		}
	}
	return false
}

// mustAlias reports whether the entry contains a definite alias. Other
// relations (paths, Top) describe possible extra connections and do not
// weaken a known equality.
func (e Entry) mustAlias() bool {
	r, ok := e["="]
	return ok && r.Certain
}

// rels returns the relations in a stable order. Entries are small (EntrySize
// caps them at 8 by default), so the keys are sorted in a stack buffer by
// insertion sort; only the returned slice is heap-allocated.
func (e Entry) rels() []Rel {
	switch len(e) {
	case 0:
		return nil
	case 1:
		for _, r := range e {
			return []Rel{r}
		}
	}
	var kbuf [8]string
	keys := kbuf[:0]
	for k := range e {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]Rel, len(keys))
	for i, k := range keys {
		out[i] = e[k]
	}
	return out
}

// String renders the entry as a comma-separated relation list.
func (e Entry) String() string {
	if len(e) == 0 {
		return ""
	}
	var parts []string
	for _, r := range e.rels() {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ",")
}

// sigKey returns the path's field signature (counts erased): the join
// matches relations by signature so that, e.g., next^1 on one branch and
// next^2 on the other merge into a certain next+ rather than two uncertain
// entries — exactly the paper's fixed-point entry for the shift loop.
func sigKey(r Rel) string {
	switch r.Kind {
	case RelAlias:
		return "="
	case RelTop:
		return "??"
	}
	k := r.Path.sig()
	if !r.Via.zero() {
		k += "|via:" + r.Via.Var + "." + r.Via.Field
		if r.Via.Stale {
			k += "!"
		}
	}
	return k
}

// mergePaths widens two same-signature paths: per-step minimum count, plus
// whenever the steps differ or either had plus. Identical (interned) paths
// merge to themselves without rebuilding.
func mergePaths(a, b Path) Path {
	if len(a) > 0 && len(a) == len(b) && &a[0] == &b[0] {
		return a
	}
	out := make(Path, len(a))
	for i := range a {
		min := a[i].Min
		if b[i].Min < min {
			min = b[i].Min
		}
		out[i] = Step{
			Field: a[i].Field,
			Min:   min,
			Plus:  a[i].Plus || b[i].Plus || a[i].Min != b[i].Min,
		}
	}
	return Intern(out)
}

// sigRel pairs a relation with its signature key. Entries are small, so the
// join below matches signatures by linear scan over slices whose backing
// arrays live on the caller's stack, instead of building two throwaway maps.
type sigRel struct {
	sig string
	rel Rel
}

// bySignature folds an entry into signature-canonical form, appending to
// buf: same-signature path relations merge (certain if any constituent was
// certain, since each asserted a path of that signature).
func bySignature(e Entry, buf []sigRel) []sigRel {
	for _, r := range e {
		k := sigKey(r)
		merged := false
		for i := range buf {
			if buf[i].sig != k {
				continue
			}
			old := buf[i].rel
			if r.Kind == RelPath {
				r.Path = mergePaths(old.Path, r.Path)
			}
			r.Certain = r.Certain || old.Certain
			buf[i].rel = r
			merged = true
			break
		}
		if !merged {
			buf = append(buf, sigRel{k, r})
		}
	}
	return buf
}

// joinEntries merges two entries at a control-flow join. Relations are
// matched by signature: present on both sides stays certain if certain on
// both; present on one side only becomes uncertain.
func joinEntries(a, b Entry) Entry {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	var abuf, bbuf [8]sigRel
	sa := bySignature(a, abuf[:0])
	sb := bySignature(b, bbuf[:0])
	out := Entry{}
	for _, pa := range sa {
		ra := pa.rel
		var rb Rel
		ok := false
		for _, pb := range sb {
			if pb.sig == pa.sig {
				rb, ok = pb.rel, true
				break
			}
		}
		if !ok {
			ra.Certain = false
			out = out.add(ra)
			continue
		}
		merged := ra
		if ra.Kind == RelPath {
			merged.Path = mergePaths(ra.Path, rb.Path)
		}
		merged.Certain = ra.Certain && rb.Certain
		out = out.add(merged)
	}
	for _, pb := range sb {
		found := false
		for _, pa := range sa {
			if pa.sig == pb.sig {
				found = true
				break
			}
		}
		if !found {
			rb := pb.rel
			rb.Certain = false
			out = out.add(rb)
		}
	}
	return out
}

// equalEntries compares entries for fixed-point detection.
func equalEntries(a, b Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for k, r := range a {
		o, ok := b[k]
		if !ok || o.Certain != r.Certain {
			return false
		}
	}
	return true
}

// Violation records a detected break of the declared abstraction, tagged
// with the field whose property is violated so a repairing store can clear
// it (Section 5.1.1).
type Violation struct {
	Prop    string // "unique", "acyclic", "group-disjoint", "backward", "call"
	Field   string
	Partner string // paired field (Def 4.6); a store to it also repairs
	Base    string // variable whose store caused the violation; callee name for "call"
	Other   string // second variable involved, if any
}

// String renders the violation in !prop(detail) form.
func (v Violation) String() string {
	detail := v.Field
	if v.Other != "" {
		detail += ";" + v.Base + "," + v.Other
	} else if detail == "" {
		detail = v.Base // "call" violations carry only the callee
	}
	return fmt.Sprintf("!%s(%s)", v.Prop, detail)
}
