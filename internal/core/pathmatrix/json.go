package pathmatrix

import (
	"encoding/json"
	"sort"
)

// relJSON is the wire form of one relation. Kind is "alias", "path", or
// "top"; Path carries the paper's display form ("next^2", "next+") for path
// relations only.
type relJSON struct {
	Kind    string `json:"kind"`
	Certain bool   `json:"certain"`
	Path    string `json:"path,omitempty"`
}

// cellJSON is the wire form of one non-empty matrix cell PM(p, q).
type cellJSON struct {
	P    string    `json:"p"`
	Q    string    `json:"q"`
	Rels []relJSON `json:"rels"`
}

// matrixJSON is the wire form of a Matrix.
type matrixJSON struct {
	Vars       []string   `json:"vars"`
	Cells      []cellJSON `json:"cells"`
	Violations []string   `json:"violations,omitempty"`
	Valid      bool       `json:"valid"`
}

func relToJSON(r Rel) relJSON {
	switch r.Kind {
	case RelAlias:
		return relJSON{Kind: "alias", Certain: r.Certain}
	case RelTop:
		return relJSON{Kind: "top"}
	default:
		return relJSON{Kind: "path", Certain: r.Certain, Path: r.Path.String()}
	}
}

// MarshalJSON renders the matrix deterministically: display variables in
// declaration order, non-empty cells sorted by (p, q), relations in the
// package's stable order, violations sorted by their rendering. It is the
// one encoding shared by the addsd responses and addsc -format json.
func (m *Matrix) MarshalJSON() ([]byte, error) {
	out := matrixJSON{
		Vars:  m.displayVars(),
		Cells: []cellJSON{},
		Valid: m.Valid(),
	}
	keys := make([][2]string, 0, len(m.cells))
	for k, e := range m.cells {
		if len(e) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rels := m.cells[k].rels()
		rj := make([]relJSON, len(rels))
		for i, r := range rels {
			rj[i] = relToJSON(r)
		}
		out.Cells = append(out.Cells, cellJSON{P: k[0], Q: k[1], Rels: rj})
	}
	for _, v := range m.Violations() {
		out.Violations = append(out.Violations, v.String())
	}
	return json.Marshal(out)
}
