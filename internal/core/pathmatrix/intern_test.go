package pathmatrix

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// randPath builds a random path over a small field universe, spanning the
// whole domain the analysis can produce (dimension pseudo-fields included).
func randPath(rng *rand.Rand) Path {
	fields := []string{"next", "prev", "left", "right", "parent", "~down", "~X"}
	n := rng.Intn(MaxSteps) + 1
	p := make(Path, n)
	for i := range p {
		p[i] = Step{
			Field: fields[rng.Intn(len(fields))],
			Min:   rng.Intn(CountCap) + 1,
			Plus:  rng.Intn(2) == 0,
		}
	}
	return p
}

// sameSlice reports whether two paths share one backing slice — the
// pointer-identity notion of equality interning is supposed to establish.
func sameSlice(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// TestInternProperty: Intern(p) == Intern(q) (pointer identity) iff
// p.Equal(q) (structural equality), across randomly generated paths.
func TestInternProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		p, q := randPath(rng), randPath(rng)
		ip, iq := Intern(p), Intern(q)
		if !ip.Equal(p) || !iq.Equal(q) {
			t.Fatalf("interning changed the value: %v -> %v, %v -> %v", p, ip, q, iq)
		}
		if got, want := sameSlice(ip, iq), p.Equal(q); got != want {
			t.Fatalf("Intern(%v) identical to Intern(%v) = %v, want %v (Equal=%v)",
				p, q, got, want, p.Equal(q))
		}
	}
}

// TestInternIdempotent: interning a canonical path returns the same slice,
// and the memoized renderings match the computed ones.
func TestInternIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		p := randPath(rng)
		ip := Intern(p)
		if !sameSlice(Intern(ip), ip) {
			t.Fatalf("Intern not idempotent for %v", p)
		}
		if ip.String() != p.computeString() {
			t.Fatalf("memoized String %q != computed %q", ip.String(), p.computeString())
		}
		if ip.Key() != p.computeKey() {
			t.Fatalf("memoized Key %q != computed %q", ip.Key(), p.computeKey())
		}
		if ip.sig() != p.computeSig() {
			t.Fatalf("memoized sig %q != computed %q", ip.sig(), p.computeSig())
		}
	}
}

// TestInternConcurrent hammers the table from several goroutines with
// overlapping path sets: every goroutine must observe the same canonical
// slice for the same value (the race detector checks the locking).
func TestInternConcurrent(t *testing.T) {
	workers := runtime.GOMAXPROCS(0) * 4
	canon := make([][]Path, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(42)) // same seed: same sequence
			out := make([]Path, 500)
			for i := range out {
				out[i] = Intern(randPath(rng))
			}
			canon[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range canon[w] {
			if !sameSlice(canon[0][i], canon[w][i]) {
				t.Fatalf("worker %d got a different canonical slice for path %d", w, i)
			}
		}
	}
	if InternerStats() == 0 {
		t.Fatal("interner table unexpectedly empty")
	}
}
