package pathmatrix

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// loadMini parses and checks one testdata program.
func loadMini(t *testing.T, file string) *types.Info {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, errs := types.Check(prog)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	return info
}

func miniFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "..", "testdata", "*.mini"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	return files
}

// TestMemoDeterminism: serial/parallel × memo-on/memo-off must all produce
// byte-identical matrix renderings — the memo is a pure cache. Each memo-on
// configuration runs twice, once against a cold memo and once warm, so both
// the miss and the hit path are pinned against the unmemoized engine.
func TestMemoDeterminism(t *testing.T) {
	defer func(prev bool) { Memoize = prev }(Memoize)
	for _, file := range miniFiles(t) {
		t.Run(filepath.Base(file), func(t *testing.T) {
			info := loadMini(t, file)

			Memoize = false
			baseline, err := AnalyzeProgramCtx(context.Background(), info, info.Env, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := dumpProgram(t, baseline)

			Memoize = true
			memoReset()
			for _, cfg := range []struct {
				name    string
				workers int
			}{
				{"serial-cold", 1}, {"serial-warm", 1},
				{"parallel-warm", 8},
			} {
				got, err := AnalyzeProgramCtx(context.Background(), info, info.Env, cfg.workers)
				if err != nil {
					t.Fatal(err)
				}
				if d := dumpProgram(t, got); d != want {
					t.Errorf("%s: memoized dump differs from unmemoized baseline", cfg.name)
				}
			}
		})
	}
}

// TestMemoHitsOnRepeat: re-analyzing the same program must be served almost
// entirely from the memo — the cache is content-keyed and process-wide, not
// per-run.
func TestMemoHitsOnRepeat(t *testing.T) {
	defer func(prev bool) { Memoize = prev }(Memoize)
	Memoize = true
	memoReset()
	info := loadMini(t, miniFiles(t)[0])

	if _, err := AnalyzeProgramCtx(context.Background(), info, info.Env, 1); err != nil {
		t.Fatal(err)
	}
	h0, m0 := engineStats.memoHits.Load(), engineStats.memoMisses.Load()
	if _, err := AnalyzeProgramCtx(context.Background(), info, info.Env, 1); err != nil {
		t.Fatal(err)
	}
	hits := engineStats.memoHits.Load() - h0
	misses := engineStats.memoMisses.Load() - m0
	if hits == 0 {
		t.Fatalf("second run over identical input had no memo hits (misses=%d)", misses)
	}
	if misses != 0 {
		t.Errorf("second run recomputed %d transfers; all keys should be cached (hits=%d)", misses, hits)
	}
}

// TestMemoCapBounded: the LRU must never hold more than MemoCap entries
// (plus shard rounding slack).
func TestMemoCapBounded(t *testing.T) {
	defer func(prevM bool, prevC int) { Memoize, MemoCap = prevM, prevC; memoReset() }(Memoize, MemoCap)
	Memoize = true
	MemoCap = 32
	memoReset()
	for _, file := range miniFiles(t) {
		info := loadMini(t, file)
		if _, err := AnalyzeProgramCtx(context.Background(), info, info.Env, 1); err != nil {
			t.Fatal(err)
		}
	}
	if n := memoLen(); n > MemoCap {
		t.Fatalf("memo holds %d entries, cap is %d", n, MemoCap)
	}
}

// TestFingerprintInvalidation: every mutator must clear the cached hash, and
// Clone must carry it.
func TestFingerprintInvalidation(t *testing.T) {
	m := NewMatrix([]string{"p", "q", "r"})
	m.addRel("p", "q", Rel{Kind: RelAlias, Certain: true})
	fp1 := m.fingerprint(nil)
	if fp1 == "" || m.fp != fp1 {
		t.Fatal("fingerprint not cached")
	}

	c := m.Clone()
	if c.fp != fp1 {
		t.Error("Clone dropped the fingerprint")
	}
	if c.fingerprint(nil) != fp1 {
		t.Error("clone fingerprint differs from donor")
	}

	steps := []struct {
		name string
		mut  func(*Matrix)
	}{
		{"addRel", func(m *Matrix) { m.addRel("p", "r", Rel{Kind: RelTop}) }},
		{"kill", func(m *Matrix) { m.kill("q") }},
		{"addViolation", func(m *Matrix) { m.addViolation(Violation{Prop: "unique", Field: "next", Base: "p"}) }},
		{"deleteViolation", func(m *Matrix) { m.deleteViolation(Violation{Prop: "unique", Field: "next", Base: "p"}) }},
	}
	for _, s := range steps {
		x := m.Clone()
		x.fingerprint(nil)
		s.mut(x)
		if x.fp != "" {
			t.Errorf("%s left a stale fingerprint", s.name)
		}
	}

	// Distinct content must hash distinctly; recomputed equal content must
	// hash equally.
	n := NewMatrix([]string{"p", "q", "r"})
	n.addRel("p", "q", Rel{Kind: RelAlias, Certain: true})
	if n.fingerprint(nil) != fp1 {
		t.Error("equal content, different fingerprint")
	}
	n.addRel("p", "q", Rel{Kind: RelTop})
	if n.fingerprint(nil) == fp1 {
		t.Error("different content, same fingerprint")
	}

	// Certainty is content: "=" vs "=?" must hash differently.
	u := NewMatrix([]string{"p", "q"})
	u.addRel("p", "q", Rel{Kind: RelAlias})
	v := NewMatrix([]string{"p", "q"})
	v.addRel("p", "q", Rel{Kind: RelAlias, Certain: true})
	if u.fingerprint(nil) == v.fingerprint(nil) {
		t.Error("certainty not part of the fingerprint")
	}
}

// TestJoinSharesEntries: joining a matrix with an equal-content sibling must
// share the unchanged entries pointer-equal while staying contentwise
// identical to the slow joinEntries path, and a later write to a shared cell
// must COW rather than corrupt the donor.
func TestJoinSharesEntries(t *testing.T) {
	mk := func() *Matrix {
		m := NewMatrix([]string{"p", "q", "r"})
		m.addRel("p", "q", Rel{Kind: RelAlias, Certain: true})
		m.addRel("p", "r", Rel{Kind: RelPath, Certain: true, Path: Intern(Path{{Field: "next", Min: 1}})})
		return m
	}
	a, b := mk(), mk()
	shared0 := engineStats.sharedRows.Load()
	out := Join(a, b)
	if got := engineStats.sharedRows.Load() - shared0; got == 0 {
		t.Fatal("join of identical matrices shared no entries")
	}
	for _, k := range [][2]string{{"p", "q"}, {"q", "p"}, {"p", "r"}} {
		ea, eo := a.Entry(k[0], k[1]), out.Entry(k[0], k[1])
		if len(ea) == 0 {
			continue
		}
		if reflect.ValueOf(eo).Pointer() != reflect.ValueOf(ea).Pointer() {
			t.Fatalf("entry %v not shared pointer-equal", k)
		}
		if !equalEntries(joinEntries(ea, b.Entry(k[0], k[1])), eo) {
			t.Fatalf("shared entry %v differs from joinEntries result", k)
		}
	}

	// Mutating the join result must not touch the donors.
	before := a.Entry("p", "q").String()
	out.addRel("p", "q", Rel{Kind: RelTop})
	if a.Entry("p", "q").String() != before || b.Entry("p", "q").String() != before {
		t.Fatal("mutation of shared entry leaked into donor matrix")
	}

	// Non-sig-canonical entries (same signature, different counts) must NOT
	// be shared: joining them folds the relations.
	c := NewMatrix([]string{"p", "q"})
	c.addRel("p", "q", Rel{Kind: RelPath, Certain: true, Path: Intern(Path{{Field: "next", Min: 1}})})
	c.addRel("p", "q", Rel{Kind: RelPath, Certain: true, Path: Intern(Path{{Field: "next", Min: 2}})})
	d := c.Clone()
	j := Join(c, d)
	if want := joinEntries(c.Entry("p", "q"), d.Entry("p", "q")); !equalEntries(j.Entry("p", "q"), want) {
		t.Fatalf("non-canonical entry shared: got %s want %s", j.Entry("p", "q"), want)
	}
}

// TestLivenessDropsDeadRows: with the liveness pass enabled, analyses over
// the testdata programs must drop at least one dead row, and every
// MayAlias/MustAlias/Valid answer about pairs that are LIVE at the query
// point must be unchanged from the full analysis.
func TestLivenessDropsDeadRows(t *testing.T) {
	defer func(prev bool) { Liveness = prev }(Liveness)
	var totalDropped uint64
	for _, file := range miniFiles(t) {
		t.Run(filepath.Base(file), func(t *testing.T) {
			info := loadMini(t, file)
			for name, fi := range info.Funcs {
				g := norm.Build(fi, info.Env)

				Liveness = false
				full := Analyze(g, info.Env)
				Liveness = true
				d0 := engineStats.droppedRows.Load()
				lite := Analyze(g, info.Env)
				totalDropped += engineStats.droppedRows.Load() - d0

				if lite.Live == nil {
					t.Fatalf("%s: liveness-enabled result has no Live info", name)
				}
				vars := g.PointerVars()
				for _, n := range g.Nodes {
					fm, lm := full.BeforeNode(n), lite.BeforeNode(n)
					if fm.Valid() != lm.Valid() {
						// Dropping can only add conservatism: a lost repair
						// or re-anchored violation keeps Valid false longer.
						if !fm.Valid() && lm.Valid() {
							t.Errorf("%s node %d: liveness run reports valid where full run does not", name, n.ID)
						}
						continue
					}
					for _, p := range vars {
						if !lite.Live.LiveIn(n.ID, p) {
							continue
						}
						for _, q := range vars {
							if !lite.Live.LiveIn(n.ID, q) {
								continue
							}
							if fm.MayAlias(p, q) != lm.MayAlias(p, q) {
								t.Errorf("%s node %d: MayAlias(%s,%s) changed for live pair", name, n.ID, p, q)
							}
							if !fm.MustAlias(p, q) && lm.MustAlias(p, q) {
								t.Errorf("%s node %d: MustAlias(%s,%s) strengthened under liveness", name, n.ID, p, q)
							}
						}
					}
				}
			}
		})
	}
	if totalDropped == 0 {
		t.Fatal("liveness pass dropped no rows across all testdata programs")
	}
}
