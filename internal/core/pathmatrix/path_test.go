package pathmatrix

import "testing"

func step(f string, min int, plus bool) Step { return Step{Field: f, Min: min, Plus: plus} }

func TestStepString(t *testing.T) {
	cases := []struct {
		s    Step
		want string
	}{
		{step("next", 1, false), "next"},
		{step("next", 1, true), "next+"},
		{step("next", 3, false), "next^3"},
		{step("next", 2, true), "next^2+"},
		{step("~down", 2, true), "down^2+"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestCanonMergesSameField(t *testing.T) {
	p, ok := canon(Path{step("f", 1, false), step("f", 2, true), step("g", 1, false)})
	if !ok {
		t.Fatal("canon failed")
	}
	if p.String() != "f^3+.g" {
		t.Errorf("canon = %q", p.String())
	}
}

func TestCanonCountCap(t *testing.T) {
	p, ok := canon(Path{step("f", CountCap+3, false)})
	if !ok {
		t.Fatal("canon failed")
	}
	if p[0].Min != CountCap || !p[0].Plus {
		t.Errorf("cap not applied: %+v", p[0])
	}
}

func TestCanonMaxSteps(t *testing.T) {
	long := Path{}
	for i := 0; i < MaxSteps+1; i++ {
		long = append(long, step(string(rune('a'+i)), 1, false))
	}
	if _, ok := canon(long); ok {
		t.Error("over-long path should degrade")
	}
}

func TestConcat(t *testing.T) {
	p, ok := concat(single("f"), single("f"))
	if !ok || p.String() != "f^2" {
		t.Errorf("concat = %q ok=%v", p.String(), ok)
	}
	q, ok := concat(single("f"), single("g"))
	if !ok || q.String() != "f.g" {
		t.Errorf("concat = %q", q.String())
	}
}

func TestStripLeadingExact(t *testing.T) {
	rs := stripLeading(single("f"), "f")
	if len(rs) != 1 || !rs[0].ok || !rs[0].alias {
		t.Errorf("strip f^1 = %+v", rs)
	}
}

func TestStripLeadingCount(t *testing.T) {
	rs := stripLeading(Path{step("f", 3, false)}, "f")
	if len(rs) != 1 || !rs[0].ok || rs[0].alias {
		t.Fatalf("strip f^3 = %+v", rs)
	}
	if rs[0].path.String() != "f^2" {
		t.Errorf("remainder = %q", rs[0].path.String())
	}
}

func TestStripLeadingPlus(t *testing.T) {
	// f+ strips to: alias (was exactly one) OR f+ again (was two or more).
	rs := stripLeading(Path{step("f", 1, true)}, "f")
	var alias, again bool
	for _, r := range rs {
		if !r.ok {
			t.Fatalf("bad result %+v", r)
		}
		if r.alias {
			alias = true
		} else if r.path.String() == "f+" {
			again = true
		}
	}
	if !alias || !again {
		t.Errorf("strip f+ = %+v", rs)
	}
}

func TestStripLeadingPlusWithTail(t *testing.T) {
	rs := stripLeading(Path{step("f", 1, true), step("g", 1, false)}, "f")
	var sawTail, sawBoth bool
	for _, r := range rs {
		switch r.path.String() {
		case "g":
			sawTail = true
		case "f+.g":
			sawBoth = true
		}
	}
	if !sawTail || !sawBoth {
		t.Errorf("strip f+.g = %+v", rs)
	}
}

func TestStripLeadingWrongField(t *testing.T) {
	rs := stripLeading(single("g"), "f")
	if len(rs) != 1 || rs[0].ok {
		t.Errorf("wrong-field strip = %+v", rs)
	}
}

func TestStripTrailing(t *testing.T) {
	rs := stripTrailing(Path{step("g", 1, false), step("f", 1, false)}, "f")
	if len(rs) != 1 || !rs[0].ok || rs[0].alias {
		t.Fatalf("strip = %+v", rs)
	}
	if rs[0].path.String() != "g" {
		t.Errorf("remainder = %q", rs[0].path.String())
	}
	if rs2 := stripTrailing(single("f"), "f"); !rs2[0].alias {
		t.Errorf("strip trailing f^1 = %+v", rs2)
	}
}

func TestStartsEndsWith(t *testing.T) {
	p := Path{step("f", 1, false), step("g", 2, false)}
	if !p.startsWith("f") || p.startsWith("g") {
		t.Error("startsWith wrong")
	}
	if !p.endsWith("g") || p.endsWith("f") {
		t.Error("endsWith wrong")
	}
	if Path(nil).startsWith("f") || Path(nil).endsWith("f") {
		t.Error("nil path")
	}
}

func TestPathFieldsAndEqual(t *testing.T) {
	p := Path{step("f", 1, false), step("g", 1, false), step("f", 2, false)}
	fs := p.Fields()
	if len(fs) != 2 || fs[0] != "f" || fs[1] != "g" {
		t.Errorf("Fields = %v", fs)
	}
	if !p.Equal(p) || p.Equal(p[:2]) {
		t.Error("Equal wrong")
	}
}

func TestDimFieldHelpers(t *testing.T) {
	if DimField("down") != "~down" || !IsDimField("~down") || IsDimField("down") {
		t.Error("dim field helpers wrong")
	}
	// Key keeps the marker, String drops it.
	p := Path{step("~down", 1, true)}
	if p.Key() != "~down^1+" {
		t.Errorf("Key = %q", p.Key())
	}
	if p.String() != "down+" {
		t.Errorf("String = %q", p.String())
	}
}

func TestEntryAddSaturation(t *testing.T) {
	var e Entry
	e = e.add(Rel{Kind: RelAlias, Certain: true})
	for i := 0; i < EntrySize+2; i++ {
		e = e.add(Rel{Kind: RelPath, Path: Path{step("f", i+1, false)}})
	}
	if _, top := e["??"]; !top {
		t.Error("entry should saturate to Top")
	}
	if !e.mustAlias() {
		t.Error("certain alias must survive saturation")
	}
}

func TestJoinEntriesSignatureMerge(t *testing.T) {
	a := Entry{}.add(Rel{Kind: RelPath, Certain: true, Path: single("next")})
	b := Entry{}.add(Rel{Kind: RelPath, Certain: true, Path: Path{step("next", 2, false)}})
	j := joinEntries(a, b)
	if j.String() != "next+" {
		t.Errorf("join = %q, want next+", j.String())
	}
	for _, r := range j.rels() {
		if !r.Certain {
			t.Error("same-signature certain paths must join certain")
		}
	}
}

func TestJoinEntriesOneSidedLosesCertainty(t *testing.T) {
	a := Entry{}.add(Rel{Kind: RelAlias, Certain: true})
	j := joinEntries(a, nil)
	if j.mustAlias() {
		t.Error("one-sided alias must demote to =?")
	}
	if !j.hasAliasInfo() {
		t.Error("alias info must survive as =?")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Prop: "unique", Field: "next", Base: "p", Other: "q"}
	if v.String() != "!unique(next;p,q)" {
		t.Errorf("violation = %q", v.String())
	}
}
