package pathmatrix

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"repro/internal/norm"
)

// Process-wide transfer-function memo. A transfer function is pure: its
// output is determined by the input matrix content, the statement, the shape
// environment and the engine configuration. The memo is keyed on exactly
// those — engine version, environment fingerprint, tunable caps, statement
// content, input-matrix fingerprint — so a hit may be served across
// analysis runs, across functions, and across goroutines. That is where the
// wins are: a single fixed-point run rarely revisits a node with an input it
// has seen before (the worklist already skips unchanged states), but
// repeated analyses of the same or similar code hit constantly.

// Memoize gates the transfer memo. Exposed as a variable so the
// determinism harnesses and ablation benchmarks can compare both modes;
// outputs are byte-identical either way.
var Memoize = true

// MemoCap bounds the number of cached transfer results (across all shards).
// Evicted entries are dropped to the garbage collector, never recycled into
// the matrix pools: their cell maps may be shared with live results.
var MemoCap = 4096

const memoShards = 16

type memoShard struct {
	mu  sync.Mutex
	ent map[string]*list.Element
	lru list.List // front = most recent; values are *memoEntry
}

type memoEntry struct {
	key string
	m   *Matrix // frozen: shared flags set, never mutated, never released
}

var memo [memoShards]memoShard

func init() {
	for i := range memo {
		memo[i].ent = make(map[string]*list.Element)
		memo[i].lru.Init()
	}
}

// memoShardOf picks a shard by the key's last byte. Keys end with the raw
// input fingerprint digest, so the low byte is uniformly distributed.
func memoShardOf(key string) *memoShard {
	if len(key) == 0 {
		return &memo[0]
	}
	return &memo[key[len(key)-1]%memoShards]
}

func memoGet(key string) (*Matrix, bool) {
	s := memoShardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.ent[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*memoEntry).m, true
}

func memoPut(key string, m *Matrix) {
	s := memoShardOf(key)
	perShard := MemoCap / memoShards
	if perShard < 1 {
		perShard = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.ent[key]; ok {
		s.lru.MoveToFront(el) // concurrent miss on the same key; keep first
		return
	}
	s.ent[key] = s.lru.PushFront(&memoEntry{key: key, m: m})
	for s.lru.Len() > perShard {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.ent, back.Value.(*memoEntry).key)
	}
}

// memoLen returns the current number of cached transfer results.
func memoLen() int {
	n := 0
	for i := range memo {
		memo[i].mu.Lock()
		n += len(memo[i].ent)
		memo[i].mu.Unlock()
	}
	return n
}

// memoReset empties the memo (tests and ablation benchmarks).
func memoReset() {
	for i := range memo {
		memo[i].mu.Lock()
		memo[i].ent = make(map[string]*list.Element)
		memo[i].lru.Init()
		memo[i].mu.Unlock()
	}
}

// cloneFrozen builds a COW view of a cached matrix without writing the
// donor. The normal Clone marks the donor shared, which would race when many
// goroutines hit the same cached entry; frozen matrices already have their
// shared flags set permanently, so only the new header is written. The
// caller's variable list is substituted: fingerprints ignore variables, so a
// hit may come from a function with a different declaration order.
func cloneFrozen(m *Matrix, vars []string) *Matrix {
	engineStats.clones.Add(1)
	out := getMatrix()
	*out = Matrix{
		vars:        vars,
		cells:       m.cells,
		viols:       m.viols,
		sharedCells: true,
		sharedViols: true,
		fp:          m.fp,
	}
	return out
}

// memoKeyPrefix builds the run-invariant part of the memo key once per
// transferer: engine version, environment fingerprint, and every tunable
// that changes transfer output or representation (shared with the summary
// cache key, see enginePrefix).
func (t *transferer) memoKeyPrefix() string {
	if t.memoPrefix == "" {
		t.memoPrefix = enginePrefix(t.env)
	}
	return t.memoPrefix
}

// stmtKey renders a statement's transfer-relevant content canonically,
// cached per statement pointer (statements are immutable after Build).
func (t *transferer) stmtKey(s *norm.Stmt) string {
	if k, ok := t.stmtKeys[s]; ok {
		return k
	}
	k := strconv.Itoa(int(s.Op)) + "\x1e" + s.Dst + "\x1e" + s.Src + "\x1e" +
		s.Base + "\x1e" + s.Field + "\x1e" + s.TypeName + "\x1e" +
		strings.Join(s.Args, "\x1d") + "\x1e" + s.Callee + "\x1e" +
		strings.Join(s.Bind, "\x1d")
	if t.stmtKeys == nil {
		t.stmtKeys = make(map[*norm.Stmt]string, 16)
	}
	t.stmtKeys[s] = k
	return k
}

// applyMemo returns the transfer of stmt over before as a fresh COW matrix,
// serving from the memo when possible. The caller keeps ownership of before
// and owns the returned matrix. tab, when non-nil, collects per-run row
// dedup stats during fingerprinting.
//
// With a summary table active, call statements bypass the memo entirely: the
// summary CONTENT the transfer consults is not part of the key (only the
// callee name is), so a hit could replay another program's — or a stale —
// summary effect. That covers fallback-havoc calls too: whether a call
// havocs or summarizes is itself table-dependent. Havoc-only runs keep
// memoizing calls; the havoc depends only on the statement and the matrix.
func (t *transferer) applyMemo(before *Matrix, s *norm.Stmt, tab *rowTable) *Matrix {
	if !Memoize || (s.Op == norm.Call && t.summaries != nil) {
		after := before.Clone()
		t.apply(after, s)
		return after
	}
	key := t.memoKeyPrefix() + t.stmtKey(s) + "\x1f" + before.fingerprint(tab)
	if hit, ok := memoGet(key); ok {
		engineStats.memoHits.Add(1)
		return cloneFrozen(hit, before.vars)
	}
	engineStats.memoMisses.Add(1)
	after := before.Clone()
	t.apply(after, s)
	memoPut(key, after.Clone())
	return after
}
