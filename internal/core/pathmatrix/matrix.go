package pathmatrix

import (
	"fmt"
	"sort"
	"strings"
)

// Matrix is a path matrix at one program point: relations between every
// ordered pair of live pointer variables, plus the set of currently
// outstanding abstraction violations. Alias relations (RelAlias, RelTop) are
// stored symmetrically in both cells; path relations are directional.
type Matrix struct {
	vars  []string // display order
	cells map[[2]string]Entry
	viols map[Violation]bool
}

// NewMatrix returns an empty matrix over the variables.
func NewMatrix(vars []string) *Matrix {
	return &Matrix{
		vars:  append([]string(nil), vars...),
		cells: map[[2]string]Entry{},
		viols: map[Violation]bool{},
	}
}

// Vars returns the variables, in display order.
func (m *Matrix) Vars() []string { return m.vars }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{
		vars:  m.vars,
		cells: make(map[[2]string]Entry, len(m.cells)),
		viols: make(map[Violation]bool, len(m.viols)),
	}
	for k, v := range m.cells {
		out.cells[k] = v.clone()
	}
	for k := range m.viols {
		out.viols[k] = true
	}
	return out
}

// Entry returns PM(p, q); nil means no relation.
func (m *Matrix) Entry(p, q string) Entry { return m.cells[[2]string{p, q}] }

// set replaces PM(p, q).
func (m *Matrix) set(p, q string, e Entry) {
	k := [2]string{p, q}
	if len(e) == 0 {
		delete(m.cells, k)
		return
	}
	m.cells[k] = e
}

// addRel inserts one relation into PM(p, q). Alias and Top relations are
// mirrored into PM(q, p). Self-cells are never stored.
func (m *Matrix) addRel(p, q string, r Rel) {
	if p == q {
		return
	}
	m.set(p, q, m.Entry(p, q).add(r))
	if r.Kind == RelAlias || r.Kind == RelTop {
		m.set(q, p, m.Entry(q, p).add(r))
	}
}

// kill removes every relation involving v (v was redefined or nulled), and
// marks stale any Via tags that reference v so later stores do not remove
// relations belonging to the variable's previous value.
func (m *Matrix) kill(v string) {
	for k := range m.cells {
		if k[0] == v || k[1] == v {
			delete(m.cells, k)
		}
	}
	m.staleVia(v)
}

// staleVia marks Via tags naming v as stale.
func (m *Matrix) staleVia(v string) {
	for k, e := range m.cells {
		var changed Entry
		for rk, r := range e {
			if r.Via.Var == v && !r.Via.Stale {
				if changed == nil {
					changed = e.clone()
				}
				delete(changed, rk)
				r.Via.Stale = true
				changed = changed.add(r)
			}
		}
		if changed != nil {
			m.cells[k] = changed
		}
	}
}

// copyRelations makes dst's relations identical to src's (dst = src).
func (m *Matrix) copyRelations(dst, src string) {
	type upd struct {
		p, q string
		e    Entry
	}
	var updates []upd
	for k, e := range m.cells {
		switch {
		case k[0] == src && k[1] != dst:
			updates = append(updates, upd{dst, k[1], e.clone()})
		case k[1] == src && k[0] != dst:
			updates = append(updates, upd{k[0], dst, e.clone()})
		}
	}
	for _, u := range updates {
		m.set(u.p, u.q, u.e)
	}
}

// related reports whether p and q have any recorded relation in either
// direction.
func (m *Matrix) related(p, q string) bool {
	return len(m.Entry(p, q)) > 0 || len(m.Entry(q, p)) > 0
}

// relatedVars returns every variable related to p (excluding p itself), in
// stable order.
func (m *Matrix) relatedVars(p string) []string {
	set := map[string]bool{}
	for k := range m.cells {
		if k[0] == p {
			set[k[1]] = true
		}
		if k[1] == p {
			set[k[0]] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// addViolation records an abstraction violation.
func (m *Matrix) addViolation(v Violation) { m.viols[v] = true }

// Violations returns outstanding violations in stable order.
func (m *Matrix) Violations() []Violation {
	out := make([]Violation, 0, len(m.viols))
	for v := range m.viols {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Valid reports whether the abstraction is currently valid (no outstanding
// violations) — the paper's precondition for using ADDS-derived facts in
// transformations.
func (m *Matrix) Valid() bool { return len(m.viols) == 0 }

// MayAlias reports whether p and q may point to the same node. Identical
// names trivially alias. The empty-entry rule applies only while the
// abstraction is valid; with outstanding violations every related pair is
// suspect, and we conservatively also treat unrelated pairs as possible
// aliases because derived facts may be missing.
func (m *Matrix) MayAlias(p, q string) bool {
	if p == q {
		return true
	}
	if !m.Valid() {
		return true
	}
	return m.Entry(p, q).hasAliasInfo() || m.Entry(q, p).hasAliasInfo()
}

// MustAlias reports whether p and q definitely point to the same node.
func (m *Matrix) MustAlias(p, q string) bool {
	if p == q {
		return true
	}
	return m.Entry(p, q).mustAlias() && m.Entry(q, p).mustAlias()
}

// Join merges two matrices (control-flow join).
func Join(a, b *Matrix) *Matrix {
	out := NewMatrix(a.vars)
	keys := map[[2]string]bool{}
	for k := range a.cells {
		keys[k] = true
	}
	for k := range b.cells {
		keys[k] = true
	}
	for k := range keys {
		out.set(k[0], k[1], joinEntries(a.cells[k], b.cells[k]))
	}
	for v := range a.viols {
		out.viols[v] = true
	}
	for v := range b.viols {
		out.viols[v] = true
	}
	return out
}

// Equal compares matrices for fixed-point detection.
func (m *Matrix) Equal(o *Matrix) bool {
	if len(m.cells) != len(o.cells) || len(m.viols) != len(o.viols) {
		return false
	}
	for k, e := range m.cells {
		if !equalEntries(e, o.cells[k]) {
			return false
		}
	}
	for v := range m.viols {
		if !o.viols[v] {
			return false
		}
	}
	return true
}

// String renders the matrix as an aligned table in the paper's style, using
// only variables that have at least one relation (plus all declared vars
// when small). Temporaries with no relations are omitted.
func (m *Matrix) String() string {
	vars := m.displayVars()
	width := 3
	for _, v := range vars {
		if len(v) > width {
			width = len(v)
		}
	}
	cell := func(s string) string { return fmt.Sprintf(" %-*s |", width+3, s) }
	var b strings.Builder
	b.WriteString(cell(""))
	for _, q := range vars {
		b.WriteString(cell(q))
	}
	b.WriteByte('\n')
	for _, p := range vars {
		b.WriteString(cell(p))
		for _, q := range vars {
			if p == q {
				b.WriteString(cell("="))
				continue
			}
			b.WriteString(cell(m.Entry(p, q).String()))
		}
		b.WriteByte('\n')
	}
	if len(m.viols) > 0 {
		b.WriteString("violations:")
		for _, v := range m.Violations() {
			b.WriteString(" " + v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// displayVars returns declared variables plus any temporaries that carry
// relations.
func (m *Matrix) displayVars() []string {
	used := map[string]bool{}
	for k, e := range m.cells {
		if len(e) > 0 {
			used[k[0]] = true
			used[k[1]] = true
		}
	}
	var out []string
	for _, v := range m.vars {
		if !strings.HasPrefix(v, "@t") || used[v] {
			out = append(out, v)
		}
	}
	return out
}
