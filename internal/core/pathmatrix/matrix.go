package pathmatrix

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Matrix is a path matrix at one program point: relations between every
// ordered pair of live pointer variables, plus the set of currently
// outstanding abstraction violations. Alias relations (RelAlias, RelTop) are
// stored symmetrically in both cells; path relations are directional.
//
// Matrices are copy-on-write: Clone is O(1) and shares the cell and
// violation maps with the original. The first structural write after a
// Clone copies the shared map shallowly (entries still shared), and an
// individual Entry is cloned only when it is about to be mutated. All
// mutation therefore goes through set/addRel/addViolation/deleteViolation,
// which maintain the sharing flags and the per-entry ownership marks.
type Matrix struct {
	vars  []string // display order
	cells map[[2]string]Entry
	viols map[Violation]bool

	sharedCells bool // cells map may be referenced by another matrix
	sharedViols bool // viols map may be referenced by another matrix
	// owned marks entries this matrix created after the last map copy and
	// may therefore mutate in place. nil means no entry is owned.
	owned map[[2]string]bool

	// fp caches the structural content hash (see fingerprint.go). "" means
	// not computed. Every mutator clears it; Clone carries it.
	fp string
}

// matrixPool recycles Matrix headers, and cellsPool their cell maps, across
// the millions of intermediate states a fixed-point run creates. Only
// provably private objects are ever returned (see release). matrixPool has
// no New: a miss falls through to slab allocation.
var (
	matrixPool = sync.Pool{}
	cellsPool  = sync.Pool{New: func() any { return make(map[[2]string]Entry, 8) }}
	ownedPool  = sync.Pool{New: func() any { return make(map[[2]string]bool, 8) }}
)

// recycleOwned returns the matrix's ownership map to the pool. Safe whenever
// the matrix is about to drop its mutation rights: the owned map is never
// shared between matrices.
func (m *Matrix) recycleOwned() {
	if m.owned != nil {
		clear(m.owned)
		ownedPool.Put(m.owned)
		m.owned = nil
	}
}

// matrixSlab batch-allocates Matrix headers. Most headers stay live inside a
// returned Result and can never be recycled, so allocating them one by one
// makes every Clone an allocation; carving them from slabs amortizes that to
// one allocation per slabSize clones.
type matrixSlab struct {
	buf  []Matrix
	next int
}

const slabSize = 64

var slabPool = sync.Pool{New: func() any { return &matrixSlab{buf: make([]Matrix, slabSize)} }}

// getMatrix returns a zeroed Matrix header: a recycled one when available,
// otherwise the next header from a slab.
func getMatrix() *Matrix {
	if v := matrixPool.Get(); v != nil {
		return v.(*Matrix)
	}
	s := slabPool.Get().(*matrixSlab)
	if s.next >= len(s.buf) {
		s = &matrixSlab{buf: make([]Matrix, slabSize)}
	}
	m := &s.buf[s.next]
	s.next++
	slabPool.Put(s)
	return m
}

// newMatrix builds a pooled matrix sharing the caller's vars slice (vars are
// never mutated, so sharing is safe package-internally).
func newMatrix(vars []string) *Matrix {
	m := getMatrix()
	m.vars = vars
	m.cells = cellsPool.Get().(map[[2]string]Entry)
	m.viols = nil // lazily allocated on the first violation
	m.sharedCells, m.sharedViols = false, false
	m.owned = nil
	m.fp = ""
	return m
}

// NewMatrix returns an empty matrix over the variables.
func NewMatrix(vars []string) *Matrix {
	return newMatrix(append([]string(nil), vars...))
}

// release returns the matrix header — and its cells map, when not shared —
// to the pools. The caller must guarantee no other reference to the header
// exists. Entries are never recycled: they may be shared with live clones.
func (m *Matrix) release() {
	if m == nil {
		return
	}
	if !m.sharedCells && m.cells != nil {
		clear(m.cells)
		cellsPool.Put(m.cells)
	}
	m.recycleOwned()
	*m = Matrix{}
	matrixPool.Put(m)
}

// Vars returns the variables, in display order.
func (m *Matrix) Vars() []string { return m.vars }

// Clone returns a logically deep copy in O(1): both matrices drop in-place
// mutation rights and copy on their next write.
func (m *Matrix) Clone() *Matrix {
	engineStats.clones.Add(1)
	m.sharedCells, m.sharedViols = true, true
	m.recycleOwned()
	out := getMatrix()
	*out = Matrix{
		vars:        m.vars,
		cells:       m.cells,
		viols:       m.viols,
		sharedCells: true,
		sharedViols: true,
		fp:          m.fp, // identical content, identical hash
	}
	return out
}

// ensureCells makes the cells map private (entries remain shared).
func (m *Matrix) ensureCells() {
	if !m.sharedCells {
		return
	}
	nc := cellsPool.Get().(map[[2]string]Entry)
	for k, v := range m.cells {
		nc[k] = v
	}
	m.cells = nc
	m.sharedCells = false
	m.owned = nil
}

// ensureViols makes the violations map private and non-nil.
func (m *Matrix) ensureViols() {
	if !m.sharedViols {
		if m.viols == nil {
			m.viols = map[Violation]bool{}
		}
		return
	}
	nv := make(map[Violation]bool, len(m.viols))
	for v := range m.viols {
		nv[v] = true
	}
	m.viols = nv
	m.sharedViols = false
}

// Entry returns PM(p, q); nil means no relation. The returned entry must be
// treated as read-only; use mutableEntry to derive a writable one.
func (m *Matrix) Entry(p, q string) Entry { return m.cells[[2]string{p, q}] }

// mutableEntry returns an entry for PM(p, q) that the caller may mutate and
// hand back to set: the stored entry when owned, a clone otherwise.
func (m *Matrix) mutableEntry(p, q string) Entry {
	k := [2]string{p, q}
	e := m.cells[k]
	if e == nil || (m.owned != nil && m.owned[k]) {
		return e
	}
	return e.clone()
}

// set replaces PM(p, q). The entry must be exclusively owned by the caller
// (freshly built or obtained from mutableEntry); set records that ownership.
func (m *Matrix) set(p, q string, e Entry) {
	m.ensureCells()
	m.fp = ""
	k := [2]string{p, q}
	if len(e) == 0 {
		delete(m.cells, k)
		if m.owned != nil {
			delete(m.owned, k)
		}
		return
	}
	m.cells[k] = e
	if m.owned == nil {
		m.owned = ownedPool.Get().(map[[2]string]bool)
	}
	m.owned[k] = true
}

// addRel inserts one relation into PM(p, q). Alias and Top relations are
// mirrored into PM(q, p). Self-cells are never stored.
func (m *Matrix) addRel(p, q string, r Rel) {
	if p == q {
		return
	}
	m.set(p, q, m.mutableEntry(p, q).add(r))
	if r.Kind == RelAlias || r.Kind == RelTop {
		m.set(q, p, m.mutableEntry(q, p).add(r))
	}
}

// kill removes every relation involving v (v was redefined or nulled), and
// marks stale any Via tags that reference v so later stores do not remove
// relations belonging to the variable's previous value.
func (m *Matrix) kill(v string) {
	m.reanchorViolations(v)
	m.ensureCells()
	m.fp = ""
	for k := range m.cells {
		if k[0] == v || k[1] == v {
			delete(m.cells, k)
			if m.owned != nil {
				delete(m.owned, k)
			}
		}
	}
	m.staleVia(v)
}

// deadName marks a violation participant whose variable was reassigned with
// no surviving must-alias. '$' cannot appear in a source identifier, so the
// name can never match a store base again: the violation becomes permanent
// for this path (the broken edge still exists in the heap, we just lost our
// name for its node).
const deadName = "dead$"

// reanchorViolations renames v inside outstanding violations before v is
// reassigned. Violations describe broken heap edges through the variable
// that named the node at store time; once that variable means a different
// node, a store through it must NOT count as repairing the old edge. A
// surviving must-alias keeps the violation repairable under its name;
// otherwise the participant goes dead. Must run before v's cells are
// removed (the must-alias lookup needs them).
func (m *Matrix) reanchorViolations(v string) {
	var renamed []Violation
	for viol := range m.viols {
		if viol.Base == v || viol.Other == v {
			renamed = append(renamed, viol)
		}
	}
	if len(renamed) == 0 {
		return
	}
	alias := deadName
	for _, x := range m.relatedVars(v) {
		if m.MustAlias(v, x) {
			alias = x
			break
		}
	}
	m.ensureViols()
	m.fp = ""
	for _, viol := range renamed {
		delete(m.viols, viol)
		if viol.Base == v {
			viol.Base = alias
		}
		if viol.Other == v {
			viol.Other = alias
		}
		m.viols[viol] = true
	}
}

// staleVia marks Via tags naming v as stale.
func (m *Matrix) staleVia(v string) {
	for k, e := range m.cells {
		var changed Entry
		for rk, r := range e {
			if r.Via.Var == v && !r.Via.Stale {
				if changed == nil {
					changed = e.clone()
				}
				delete(changed, rk)
				r.Via.Stale = true
				changed = changed.add(r)
			}
		}
		if changed != nil {
			m.set(k[0], k[1], changed)
		}
	}
}

// copyRelations makes dst's relations identical to src's (dst = src).
func (m *Matrix) copyRelations(dst, src string) {
	type upd struct {
		p, q string
		e    Entry
	}
	var updates []upd
	for k, e := range m.cells {
		switch {
		case k[0] == src && k[1] != dst:
			updates = append(updates, upd{dst, k[1], e.clone()})
		case k[1] == src && k[0] != dst:
			updates = append(updates, upd{k[0], dst, e.clone()})
		}
	}
	for _, u := range updates {
		m.set(u.p, u.q, u.e)
	}
}

// related reports whether p and q have any recorded relation in either
// direction.
func (m *Matrix) related(p, q string) bool {
	return len(m.Entry(p, q)) > 0 || len(m.Entry(q, p)) > 0
}

// relatedVars returns every variable related to p (excluding p itself), in
// stable order.
func (m *Matrix) relatedVars(p string) []string {
	set := map[string]bool{}
	for k := range m.cells {
		if k[0] == p {
			set[k[1]] = true
		}
		if k[1] == p {
			set[k[0]] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// addViolation records an abstraction violation.
func (m *Matrix) addViolation(v Violation) {
	m.ensureViols()
	m.fp = ""
	m.viols[v] = true
}

// deleteViolation removes a violation (a repairing store was seen).
func (m *Matrix) deleteViolation(v Violation) {
	m.ensureViols()
	m.fp = ""
	delete(m.viols, v)
}

// Violations returns outstanding violations in stable order.
func (m *Matrix) Violations() []Violation {
	out := make([]Violation, 0, len(m.viols))
	for v := range m.viols {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Valid reports whether the abstraction is currently valid (no outstanding
// violations) — the paper's precondition for using ADDS-derived facts in
// transformations.
func (m *Matrix) Valid() bool { return len(m.viols) == 0 }

// MayAlias reports whether p and q may point to the same node. Identical
// names trivially alias. The empty-entry rule applies only while the
// abstraction is valid; with outstanding violations every related pair is
// suspect, and we conservatively also treat unrelated pairs as possible
// aliases because derived facts may be missing.
func (m *Matrix) MayAlias(p, q string) bool {
	if p == q {
		return true
	}
	if !m.Valid() {
		return true
	}
	return m.Entry(p, q).hasAliasInfo() || m.Entry(q, p).hasAliasInfo()
}

// MustAlias reports whether p and q definitely point to the same node.
func (m *Matrix) MustAlias(p, q string) bool {
	if p == q {
		return true
	}
	return m.Entry(p, q).mustAlias() && m.Entry(q, p).mustAlias()
}

// sigCanonical reports whether every relation in the entry has a distinct
// signature. joinEntries folds same-signature relations (next^1 and next^2
// merge to next+), so joining a non-canonical entry with itself does NOT
// yield itself; only sig-canonical entries are safe to share at a join.
func sigCanonical(e Entry) bool {
	if len(e) <= 1 {
		return true
	}
	var buf [8]string
	sigs := buf[:0]
	for _, r := range e {
		k := sigKey(r)
		for _, s := range sigs {
			if s == k {
				return false
			}
		}
		sigs = append(sigs, k)
	}
	return true
}

// setShared installs an entry owned by another matrix without granting
// mutation rights: a later write to this cell goes through mutableEntry,
// which clones unowned entries first. Entries are never recycled by release,
// so the donor matrix being pooled later cannot invalidate the reference.
func (m *Matrix) setShared(k [2]string, e Entry) {
	m.ensureCells()
	m.fp = ""
	m.cells[k] = e
}

// Join merges two matrices (control-flow join). Cells whose entries are
// structurally equal on both sides — the overwhelmingly common case at the
// joins of a converging fixpoint — share the left entry pointer-equal
// instead of rebuilding it, so a join that changes one cell shares every
// other with its parents. Sharing requires sig-canonical entries (see
// sigCanonical): for those, signature matching pairs each relation with
// itself, merges paths to identical content and keeps certainty, so the
// joined entry is contentwise the shared one.
func Join(a, b *Matrix) *Matrix {
	out := newMatrix(a.vars)
	keys := map[[2]string]bool{}
	for k := range a.cells {
		keys[k] = true
	}
	for k := range b.cells {
		keys[k] = true
	}
	for k := range keys {
		ea, eb := a.cells[k], b.cells[k]
		if ea != nil && equalEntries(ea, eb) && sigCanonical(ea) {
			out.setShared(k, ea)
			engineStats.sharedRows.Add(1)
			continue
		}
		out.set(k[0], k[1], joinEntries(ea, eb))
	}
	for v := range a.viols {
		out.addViolation(v)
	}
	for v := range b.viols {
		out.addViolation(v)
	}
	return out
}

// Equal compares matrices for fixed-point detection.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.fp != "" && o.fp != "" {
		return m.fp == o.fp // content hashes decide in either direction
	}
	if len(m.cells) != len(o.cells) || len(m.viols) != len(o.viols) {
		return false
	}
	for k, e := range m.cells {
		if !equalEntries(e, o.cells[k]) {
			return false
		}
	}
	for v := range m.viols {
		if !o.viols[v] {
			return false
		}
	}
	return true
}

// String renders the matrix as an aligned table in the paper's style, using
// only variables that have at least one relation (plus all declared vars
// when small). Temporaries with no relations are omitted.
func (m *Matrix) String() string {
	vars := m.displayVars()
	width := 3
	for _, v := range vars {
		if len(v) > width {
			width = len(v)
		}
	}
	cell := func(s string) string { return fmt.Sprintf(" %-*s |", width+3, s) }
	var b strings.Builder
	b.WriteString(cell(""))
	for _, q := range vars {
		b.WriteString(cell(q))
	}
	b.WriteByte('\n')
	for _, p := range vars {
		b.WriteString(cell(p))
		for _, q := range vars {
			if p == q {
				b.WriteString(cell("="))
				continue
			}
			b.WriteString(cell(m.Entry(p, q).String()))
		}
		b.WriteByte('\n')
	}
	if len(m.viols) > 0 {
		b.WriteString("violations:")
		for _, v := range m.Violations() {
			b.WriteString(" " + v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// displayVars returns declared variables plus any temporaries that carry
// relations.
func (m *Matrix) displayVars() []string {
	used := map[string]bool{}
	for k, e := range m.cells {
		if len(e) > 0 {
			used[k[0]] = true
			used[k[1]] = true
		}
	}
	var out []string
	for _, v := range m.vars {
		if !strings.HasPrefix(v, "@t") || used[v] {
			out = append(out, v)
		}
	}
	return out
}
