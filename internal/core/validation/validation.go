// Package validation exposes the paper's Section 5.1.1 abstraction
// validation analysis as a standalone pass: for each program point of a
// function, is the declared ADDS abstraction currently valid, and if not,
// which store broke it and which statement repaired it?
//
// The violation tracking itself lives inside the path matrix transfer
// functions (violations are matrix entries, as the paper prescribes); this
// package runs the analysis and reorganizes the results into per-point
// verdicts and break/repair intervals that tools can report.
package validation

import (
	"fmt"
	"strings"

	"repro/internal/core/pathmatrix"
	"repro/internal/norm"
	"repro/internal/shape"
)

// Interval is one contiguous region of statements where the abstraction is
// broken: from the statement that broke it (inclusive) to the statement
// that repaired it (exclusive), in CFG node-id order.
type Interval struct {
	BrokenBy   *norm.Node // statement whose effect introduced a violation
	RepairedBy *norm.Node // first later statement after which it is valid; nil if never repaired
	Violations []pathmatrix.Violation
}

// String renders the interval.
func (iv *Interval) String() string {
	broke := "?"
	if iv.BrokenBy != nil && iv.BrokenBy.Stmt != nil {
		broke = iv.BrokenBy.Stmt.String()
	}
	fixed := "never repaired"
	if iv.RepairedBy != nil && iv.RepairedBy.Stmt != nil {
		fixed = "repaired by " + iv.RepairedBy.Stmt.String()
	}
	var vs []string
	for _, v := range iv.Violations {
		vs = append(vs, v.String())
	}
	return fmt.Sprintf("broken by %q (%s), %s", broke, strings.Join(vs, " "), fixed)
}

// Result is the validation verdict for one function.
type Result struct {
	Graph *norm.Graph
	PM    *pathmatrix.Result
}

// Analyze runs the validation analysis over a normalized CFG.
func Analyze(g *norm.Graph, env *shape.Env) *Result {
	return &Result{Graph: g, PM: pathmatrix.Analyze(g, env)}
}

// FromResult wraps an existing path matrix result.
func FromResult(r *pathmatrix.Result) *Result {
	return &Result{Graph: r.Graph, PM: r}
}

// ValidBefore reports whether the abstraction is valid just before node n.
func (r *Result) ValidBefore(n *norm.Node) bool {
	return r.PM.BeforeNode(n).Valid()
}

// ValidAfter reports whether the abstraction is valid just after node n.
func (r *Result) ValidAfter(n *norm.Node) bool {
	return r.PM.AfterNode(n).Valid()
}

// ValidEverywhere reports whether no statement ever leaves the abstraction
// broken (transformations relying on ADDS facts are safe everywhere).
func (r *Result) ValidEverywhere() bool {
	for _, n := range r.Graph.Nodes {
		if n.Kind == norm.NodeStmt && !r.ValidAfter(n) {
			return false
		}
	}
	return true
}

// ViolationsAfter returns the outstanding violations after node n.
func (r *Result) ViolationsAfter(n *norm.Node) []pathmatrix.Violation {
	return r.PM.AfterNode(n).Violations()
}

// Intervals scans statements in node-id order (source order for
// straight-line code) and reports the broken regions. Inside loops a
// violation raised late in the body flows around the back edge and is
// outstanding at every body point, so the interval's BrokenBy names the
// first body statement rather than the culprit store; the attached
// Violations still identify the offending field and variables.
func (r *Result) Intervals() []*Interval {
	var out []*Interval
	var open *Interval
	for _, n := range r.Graph.Nodes {
		if n.Kind != norm.NodeStmt {
			continue
		}
		valid := r.ValidAfter(n)
		switch {
		case !valid && open == nil:
			open = &Interval{BrokenBy: n, Violations: r.ViolationsAfter(n)}
		case valid && open != nil:
			open.RepairedBy = n
			out = append(out, open)
			open = nil
		}
	}
	if open != nil {
		out = append(out, open)
	}
	return out
}

// Report renders a human-readable summary.
func (r *Result) Report() string {
	var b strings.Builder
	ivs := r.Intervals()
	if len(ivs) == 0 {
		b.WriteString("abstraction valid at every program point\n")
		return b.String()
	}
	for _, iv := range ivs {
		fmt.Fprintf(&b, "%s\n", iv)
	}
	return b.String()
}
