package validation

import (
	"strings"
	"testing"

	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const pBinTree = `
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
`

const twoWayLL = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

func analyze(t *testing.T, src, fn string) *Result {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("func %s missing", fn)
	}
	return Analyze(norm.Build(fi, info.Env), info.Env)
}

func TestSubtreeMoveInterval(t *testing.T) {
	r := analyze(t, pBinTree+`
void move(PBinTree *dest, PBinTree *src) {
    dest->left = src->left;
    src->left = NULL;
}`, "move")

	ivs := r.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("intervals = %d: %s", len(ivs), r.Report())
	}
	iv := ivs[0]
	if iv.BrokenBy.Stmt.String() != "dest->left = @t1" {
		t.Errorf("broken by %q", iv.BrokenBy.Stmt.String())
	}
	if iv.RepairedBy == nil || iv.RepairedBy.Stmt.String() != "src->left = NULL" {
		t.Errorf("repaired by %v", iv.RepairedBy)
	}
	if len(iv.Violations) == 0 {
		t.Error("interval missing violations")
	}
	if r.ValidEverywhere() {
		t.Error("ValidEverywhere should be false")
	}
	if !strings.Contains(iv.String(), "group-disjoint") {
		t.Errorf("interval string = %q", iv.String())
	}
}

func TestNeverRepaired(t *testing.T) {
	r := analyze(t, twoWayLL+`
void cyc(TwoWayLL *p) {
    TwoWayLL *q;
    q = p->next;
    q->next = p;
}`, "cyc")
	ivs := r.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if ivs[0].RepairedBy != nil {
		t.Error("cycle store is never repaired")
	}
	if !strings.Contains(ivs[0].String(), "never repaired") {
		t.Errorf("string = %q", ivs[0].String())
	}
}

func TestCleanProgramValidEverywhere(t *testing.T) {
	r := analyze(t, twoWayLL+`
void append(TwoWayLL *tail) {
    TwoWayLL *n;
    n = new TwoWayLL;
    tail->next = n;
    n->prev = tail;
}`, "append")
	if !r.ValidEverywhere() {
		t.Errorf("append should be valid everywhere:\n%s", r.Report())
	}
	if len(r.Intervals()) != 0 {
		t.Errorf("intervals = %v", r.Intervals())
	}
	if !strings.Contains(r.Report(), "valid at every program point") {
		t.Errorf("report = %q", r.Report())
	}
}

func TestTemporaryBackwardBreak(t *testing.T) {
	r := analyze(t, twoWayLL+`
void link(TwoWayLL *tail) {
    TwoWayLL *n;
    n = new TwoWayLL;
    n->prev = tail;
    tail->next = n;
}`, "link")
	ivs := r.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("intervals = %d:\n%s", len(ivs), r.Report())
	}
	if ivs[0].RepairedBy == nil {
		t.Error("tail->next = n should repair the Def 4.6 break")
	}
}

func TestValidBeforeAfter(t *testing.T) {
	r := analyze(t, pBinTree+`
void move(PBinTree *dest, PBinTree *src) {
    dest->left = src->left;
    src->left = NULL;
}`, "move")
	var breaking *norm.Node
	for _, n := range r.Graph.Nodes {
		if n.Kind == norm.NodeStmt && n.Stmt.String() == "dest->left = @t1" {
			breaking = n
		}
	}
	if breaking == nil {
		t.Fatal("breaking statement not found")
	}
	if !r.ValidBefore(breaking) {
		t.Error("valid before the breaking store")
	}
	if r.ValidAfter(breaking) {
		t.Error("invalid after the breaking store")
	}
}

func TestFromResult(t *testing.T) {
	r := analyze(t, twoWayLL+`void f(TwoWayLL *p) { p = p->next; }`, "f")
	wrapped := FromResult(r.PM)
	if !wrapped.ValidEverywhere() {
		t.Error("wrapper broken")
	}
}
