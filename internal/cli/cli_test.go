package cli

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"

	"repro/adds"
)

func TestUsageErrorExitCode(t *testing.T) {
	if got := ExitCode(Usagef("bad flag %q", "x")); got != adds.ExitUsage {
		t.Fatalf("usage error exit = %d, want %d", got, adds.ExitUsage)
	}
	if got := ExitCode(adds.ErrNoSuchLoop); got != adds.ExitNoLoop {
		t.Fatalf("non-usage error exit = %d, want %d", got, adds.ExitNoLoop)
	}
	// Wrapped usage errors still classify.
	wrapped := errors.Join(Usagef("inner"), errors.New("outer"))
	if got := ExitCode(wrapped); got != adds.ExitUsage {
		t.Fatalf("wrapped usage error exit = %d, want %d", got, adds.ExitUsage)
	}
}

func TestLogFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	lf := RegisterLogFlags(fs, "text")
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	lg, err := lf.Logger(&b)
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("visible")
	if !strings.Contains(b.String(), `"msg":"visible"`) {
		t.Errorf("debug line missing: %q", b.String())
	}

	lf.Level = "loud"
	if _, err := lf.Logger(io.Discard); ExitCode(err) != adds.ExitUsage {
		t.Errorf("bad level should be a usage error, got %v", err)
	}
	lf.Level, lf.Format = "info", "xml"
	if _, err := lf.Logger(io.Discard); ExitCode(err) != adds.ExitUsage {
		t.Errorf("bad format should be a usage error, got %v", err)
	}
}

func TestOracleFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	of := RegisterOracleFlags(fs)
	if err := fs.Parse([]string{"-oracle", "klimit", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
	name, err := of.Canonical()
	if err != nil || name != "klimit" || of.K != 3 {
		t.Fatalf("name=%q k=%d err=%v", name, of.K, err)
	}
	// The legacy alias canonicalizes.
	of.Name = "klimited"
	if name, err := of.Canonical(); err != nil || name != "klimit" {
		t.Fatalf("alias name=%q err=%v", name, err)
	}
	of.Name = "psychic"
	_, err = of.Canonical()
	if ExitCode(err) != adds.ExitUsage {
		t.Errorf("unknown oracle should be a usage error, got %v", err)
	}
	// The error enumerates the registry, so new oracles appear without
	// anyone editing a literal.
	for _, want := range adds.OracleNames() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("usage error should list %q: %v", want, err)
		}
	}
	// The flag's usage text derives from the registry too.
	if u := fs.Lookup("oracle").Usage; !strings.Contains(u, "smg") {
		t.Errorf("-oracle usage should list registered oracles, got %q", u)
	}
}

func TestFormatVocabulary(t *testing.T) {
	if err := CheckFormat("addsc", "json", "text", "json"); err != nil {
		t.Fatal(err)
	}
	err := CheckFormat("addsc", "yaml", "text", "json")
	if ExitCode(err) != adds.ExitUsage {
		t.Fatalf("unknown format should be a usage error, got %v", err)
	}
	if !strings.Contains(err.Error(), "yaml") {
		t.Errorf("error should name the bad value: %v", err)
	}
}
