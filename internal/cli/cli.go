// Package cli holds the flag vocabulary shared by the adds tools, so
// addsc, addsd, addsbench, and addsfuzz spell their common knobs the same
// way: -oracle, -format, -par, -log-level, -log-format. Each helper
// registers the flag with one canonical help string and validates it into
// a typed *UsageError, which ExitCode maps to the shared usage status
// (exit 2) — the tools report flag misuse identically without any of them
// owning the parsing.
package cli

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"flag"

	"repro/adds"
	"repro/internal/obs"
)

// UsageError reports flag or argument misuse: a value outside the flag's
// vocabulary, a missing operand. The CLIs print it one-line and exit with
// adds.ExitUsage.
type UsageError struct{ Msg string }

func (e *UsageError) Error() string { return e.Msg }

// Usagef builds a *UsageError the fmt way.
func Usagef(format string, args ...any) error {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// ExitCode maps an error to the shared CLI exit code: usage errors to
// adds.ExitUsage, everything else through adds.ExitCode.
func ExitCode(err error) int {
	var ue *UsageError
	if errors.As(err, &ue) {
		return adds.ExitUsage
	}
	return adds.ExitCode(err)
}

// LogFlags carries the shared logging knobs. Register the flags, parse,
// then build the tool's logger with Logger.
type LogFlags struct {
	Level  string
	Format string
}

// RegisterLogFlags adds -log-level and -log-format to the flag set with
// the given default format ("text" for interactive tools, "json" for the
// daemon).
func RegisterLogFlags(fs *flag.FlagSet, defaultFormat string) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Level, "log-level", "info", "log level: debug, info, warn, error")
	fs.StringVar(&lf.Format, "log-format", defaultFormat, "log format: text or json")
	return lf
}

// Logger builds the slog logger the flags describe, writing to w. Bad
// spellings are a *UsageError.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	lg, err := obs.NewLogger(w, lf.Level, lf.Format)
	if err != nil {
		return nil, &UsageError{Msg: err.Error()}
	}
	return lg, nil
}

// OracleFlags carries the shared oracle selection (-oracle and its -k).
type OracleFlags struct {
	Name string
	K    int
}

// RegisterOracleFlags adds -oracle and -k to the flag set. The usage text
// enumerates the oracle registry, so a newly registered oracle shows up in
// every tool's -help without touching the tools.
func RegisterOracleFlags(fs *flag.FlagSet) *OracleFlags {
	of := &OracleFlags{}
	fs.StringVar(&of.Name, "oracle", "gpm", "alias oracle: "+strings.Join(adds.OracleNames(), ", "))
	fs.IntVar(&of.K, "k", 2, "k for the k-limited oracle")
	return of
}

// Canonical validates the oracle spelling against the registry and returns
// its canonical name; unknown names are a *UsageError listing the
// registered oracles.
func (of *OracleFlags) Canonical() (string, error) {
	name, err := adds.ParseOracle(of.Name)
	if err != nil {
		return "", &UsageError{Msg: err.Error()}
	}
	return name, nil
}

// RegisterFormat adds the shared -format flag with the given default and
// vocabulary (conventionally "text" and "json").
func RegisterFormat(fs *flag.FlagSet, def string, allowed ...string) *string {
	return fs.String("format", def, "output format: "+strings.Join(allowed, " or "))
}

// CheckFormat validates a -format value against the tool's vocabulary.
func CheckFormat(tool, got string, allowed ...string) error {
	for _, a := range allowed {
		if got == a {
			return nil
		}
	}
	return Usagef("%s: unknown -format %q (known: %s)", tool, got, strings.Join(allowed, ", "))
}

// RegisterPar adds the shared -par worker-count flag (0 = one per CPU).
func RegisterPar(fs *flag.FlagSet, what string) *int {
	return fs.Int("par", 0, what+" worker count (0 = one per CPU, 1 = serial)")
}
