package gen

import (
	"bytes"
	"testing"

	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// FuzzGenerate drives the generator itself: whatever (seed, profile) the
// fuzzer reaches, the emitted program must parse, type-check, and be
// deterministic. The seed corpus under testdata/fuzz pins one seed per
// profile.
func FuzzGenerate(f *testing.F) {
	for i, pr := range Profiles() {
		f.Add(int64(i*37), pr.Name)
	}
	f.Fuzz(func(t *testing.T, seed int64, profile string) {
		pr, err := ProfileByName(profile)
		if err != nil {
			t.Skip()
		}
		p := Generate(seed, pr)
		src := p.Source()
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if _, errs := types.Check(prog); len(errs) > 0 {
			t.Fatalf("seed %d: check: %v\n%s", seed, errs[0], src)
		}
		if !bytes.Equal(src, Generate(seed, pr).Source()) {
			t.Fatalf("seed %d: non-deterministic source", seed)
		}
	})
}
