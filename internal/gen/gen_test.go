package gen

import (
	"bytes"
	"regexp"
	"testing"

	"repro/internal/shape"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// TestGeneratedProgramsWellTyped is the generator's basic contract: every
// program parses and type-checks, for every profile over many seeds.
func TestGeneratedProgramsWellTyped(t *testing.T) {
	for _, pr := range Profiles() {
		for seed := int64(0); seed < 200; seed++ {
			p := Generate(seed, pr)
			src := p.Source()
			prog, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("profile %s seed %d: parse: %v\n%s", pr.Name, seed, err, src)
			}
			if _, errs := types.Check(prog); len(errs) > 0 {
				t.Fatalf("profile %s seed %d: check: %v\n%s", pr.Name, seed, errs[0], src)
			}
			if prog.FuncByName(p.Entry()) == nil || prog.FuncByName(p.Main()) == nil {
				t.Fatalf("profile %s seed %d: missing entry or main", pr.Name, seed)
			}
		}
	}
}

// TestGenerateDeterministic: identical seed + profile means byte-identical
// source — the property every repro workflow rests on.
func TestGenerateDeterministic(t *testing.T) {
	for _, pr := range Profiles() {
		for seed := int64(0); seed < 50; seed++ {
			a := Generate(seed, pr).Source()
			b := Generate(seed, pr).Source()
			if !bytes.Equal(a, b) {
				t.Fatalf("profile %s seed %d: non-deterministic source", pr.Name, seed)
			}
		}
	}
}

// TestReadonlyProfileHasNoStores: the readonly profile must never emit a
// pointer-field store, so the final heap provably satisfies the declaration
// (the lint check depends on this).
func TestReadonlyProfileHasNoStores(t *testing.T) {
	pr, err := ProfileByName("readonly")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, pr)
		var walk func(s Stmt)
		var bad []string
		walk = func(s Stmt) {
			for _, l := range s.Head {
				if containsPtrStore(l) {
					bad = append(bad, l)
				}
			}
			for _, inner := range s.Body {
				walk(inner)
			}
		}
		for _, s := range p.Stmts {
			walk(s)
		}
		if len(bad) > 0 {
			t.Fatalf("seed %d: readonly profile emitted stores: %v", seed, bad)
		}
	}
}

// containsPtrStore detects "x->field = ..." where field is not data.
func containsPtrStore(line string) bool {
	i := bytes.Index([]byte(line), []byte("->"))
	if i < 0 {
		return false
	}
	eq := bytes.Index([]byte(line), []byte("="))
	if eq < 0 || eq < i {
		return false // comparison or deref on the RHS only
	}
	return !bytes.Contains([]byte(line[:eq]), []byte("->data"))
}

// checkedType generates one program for the profile, type-checks it, and
// returns the checked shape model of its structure — the metadata the
// property tests assert against (never the source text).
func checkedType(t *testing.T, profile string) *shape.Type {
	t.Helper()
	pr, err := ProfileByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	p := Generate(1, pr)
	prog, err := parser.Parse(p.Source())
	if err != nil {
		t.Fatalf("profile %s: parse: %v", profile, err)
	}
	info, errs := types.Check(prog)
	if len(errs) > 0 {
		t.Fatalf("profile %s: check: %v", profile, errs[0])
	}
	ty := info.Env.Types[p.TypeName]
	if ty == nil {
		t.Fatalf("profile %s: type %s missing from shape env", profile, p.TypeName)
	}
	return ty
}

// TestSkipListShapeMetadata: the skip-list structure really advertises what
// the profile promises — at least two forward link fields, at distinct
// dimensions.
func TestSkipListShapeMetadata(t *testing.T) {
	ty := checkedType(t, "skiplist")
	fwdDims := map[string]bool{}
	for _, f := range ty.Fields {
		if f.Dir == shape.Forward || f.Dir == shape.UniquelyForward {
			fwdDims[f.Dim] = true
		}
	}
	if len(fwdDims) < 2 {
		t.Fatalf("skip list needs >=2 forward fields at distinct dimensions, got dims %v", fwdDims)
	}
}

// TestThreadedTreeShapeMetadata: the threaded tree carries a combined
// uniquely-forward group, a backward parent along the same dimension, and
// an undeclared (unknown-direction) thread field.
func TestThreadedTreeShapeMetadata(t *testing.T) {
	ty := checkedType(t, "ptree")
	l, r := ty.Field("left"), ty.Field("right")
	if l == nil || r == nil || l.Group < 0 || l.Group != r.Group {
		t.Fatalf("left/right must form one combined group, got %+v and %+v", l, r)
	}
	if l.Dir != shape.UniquelyForward || r.Dir != shape.UniquelyForward {
		t.Fatalf("combined group must be uniquely forward, got %v/%v", l.Dir, r.Dir)
	}
	par := ty.Field("parent")
	if par == nil || par.Dir != shape.Backward || par.Dim != l.Dim {
		t.Fatalf("parent must be backward along the group's dimension, got %+v", par)
	}
	th := ty.Field("thread")
	if th == nil || th.Dir != shape.Unknown {
		t.Fatalf("thread must carry no ADDS clause (unknown direction), got %+v", th)
	}
}

// TestRingLOLShapeMetadata: the circular list of lists is circular in both
// directions along one dimension and a two-way list along an independent
// one.
func TestRingLOLShapeMetadata(t *testing.T) {
	ty := checkedType(t, "ringlol")
	next, prev := ty.Field("next"), ty.Field("prev")
	if next == nil || prev == nil || next.Dir != shape.Circular || prev.Dir != shape.Circular || next.Dim != prev.Dim {
		t.Fatalf("next/prev must both be circular along one dimension, got %+v and %+v", next, prev)
	}
	down, up := ty.Field("down"), ty.Field("up")
	if down == nil || up == nil || down.Dir != shape.UniquelyForward || up.Dir != shape.Backward || down.Dim != up.Dim {
		t.Fatalf("down/up must be a forward/backward pair along one dimension, got %+v and %+v", down, up)
	}
	if !ty.Independent(next.Dim, down.Dim) {
		t.Fatalf("dimensions %s and %s must be declared independent", next.Dim, down.Dim)
	}
}

// TestRepairProfileEmitsRepairIdioms: the repair profile's weighted grammar
// actually produces both halves of the break-then-repair pattern — splices
// (a ->prev back-link repair on plain variables) and unlinks (the
// double-guarded successor removal) — across a modest seed range.
func TestRepairProfileEmitsRepairIdioms(t *testing.T) {
	pr, err := ProfileByName("repair")
	if err != nil {
		t.Fatal(err)
	}
	spliceRE := regexp.MustCompile(`(?m)^\s+[a-d]->prev = [a-d];$`)
	unlinkRE := regexp.MustCompile(`(?m)^\s+if \([a-d] != NULL && [a-d]->next != NULL\) \{$`)
	splices, unlinks := 0, 0
	for seed := int64(0); seed < 50; seed++ {
		src := Generate(seed, pr).Source()
		if spliceRE.Match(src) {
			splices++
		}
		if unlinkRE.Match(src) {
			unlinks++
		}
	}
	if splices == 0 || unlinks == 0 {
		t.Fatalf("repair idioms missing over 50 seeds: splices=%d unlinks=%d", splices, unlinks)
	}
}

// TestWithStmtsRerenders: the shrinker's step function produces a program
// whose source reflects exactly the new statement list.
func TestWithStmtsRerenders(t *testing.T) {
	p := Generate(1, Profiles()[0])
	q := p.WithStmts(p.Stmts[:1])
	if q.NumStmts() != 1 {
		t.Fatalf("NumStmts = %d, want 1", q.NumStmts())
	}
	if bytes.Equal(p.Source(), q.Source()) {
		t.Fatal("source did not change")
	}
	if _, err := parser.Parse(q.Source()); err != nil {
		t.Fatalf("shrunk program does not parse: %v\n%s", err, q.Source())
	}
}

// TestProfileByNameUnknown reports a typed error for unknown names.
func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("want error")
	}
}
