package gen

import (
	"bytes"
	"testing"

	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// TestGeneratedProgramsWellTyped is the generator's basic contract: every
// program parses and type-checks, for every profile over many seeds.
func TestGeneratedProgramsWellTyped(t *testing.T) {
	for _, pr := range Profiles() {
		for seed := int64(0); seed < 200; seed++ {
			p := Generate(seed, pr)
			src := p.Source()
			prog, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("profile %s seed %d: parse: %v\n%s", pr.Name, seed, err, src)
			}
			if _, errs := types.Check(prog); len(errs) > 0 {
				t.Fatalf("profile %s seed %d: check: %v\n%s", pr.Name, seed, errs[0], src)
			}
			if prog.FuncByName(p.Entry()) == nil || prog.FuncByName(p.Main()) == nil {
				t.Fatalf("profile %s seed %d: missing entry or main", pr.Name, seed)
			}
		}
	}
}

// TestGenerateDeterministic: identical seed + profile means byte-identical
// source — the property every repro workflow rests on.
func TestGenerateDeterministic(t *testing.T) {
	for _, pr := range Profiles() {
		for seed := int64(0); seed < 50; seed++ {
			a := Generate(seed, pr).Source()
			b := Generate(seed, pr).Source()
			if !bytes.Equal(a, b) {
				t.Fatalf("profile %s seed %d: non-deterministic source", pr.Name, seed)
			}
		}
	}
}

// TestReadonlyProfileHasNoStores: the readonly profile must never emit a
// pointer-field store, so the final heap provably satisfies the declaration
// (the lint check depends on this).
func TestReadonlyProfileHasNoStores(t *testing.T) {
	pr, err := ProfileByName("readonly")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, pr)
		var walk func(s Stmt)
		var bad []string
		walk = func(s Stmt) {
			for _, l := range s.Head {
				if containsPtrStore(l) {
					bad = append(bad, l)
				}
			}
			for _, inner := range s.Body {
				walk(inner)
			}
		}
		for _, s := range p.Stmts {
			walk(s)
		}
		if len(bad) > 0 {
			t.Fatalf("seed %d: readonly profile emitted stores: %v", seed, bad)
		}
	}
}

// containsPtrStore detects "x->field = ..." where field is not data.
func containsPtrStore(line string) bool {
	i := bytes.Index([]byte(line), []byte("->"))
	if i < 0 {
		return false
	}
	eq := bytes.Index([]byte(line), []byte("="))
	if eq < 0 || eq < i {
		return false // comparison or deref on the RHS only
	}
	return !bytes.Contains([]byte(line[:eq]), []byte("->data"))
}

// TestWithStmtsRerenders: the shrinker's step function produces a program
// whose source reflects exactly the new statement list.
func TestWithStmtsRerenders(t *testing.T) {
	p := Generate(1, Profiles()[0])
	q := p.WithStmts(p.Stmts[:1])
	if q.NumStmts() != 1 {
		t.Fatalf("NumStmts = %d, want 1", q.NumStmts())
	}
	if bytes.Equal(p.Source(), q.Source()) {
		t.Fatal("source did not change")
	}
	if _, err := parser.Parse(q.Source()); err != nil {
		t.Fatalf("shrunk program does not parse: %v\n%s", err, q.Source())
	}
}

// TestProfileByNameUnknown reports a typed error for unknown names.
func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("want error")
	}
}
