// Package gen is the generative half of the addsfuzz subsystem: a
// declaration-aware random program generator that emits well-typed mini
// source over the paper's ADDS structures — two-way lists, parent-pointer
// trees (combined uniquely-forward groups), circular lists, and
// independent-dimension lists of lists (`where X || Y`) — including guarded
// mutations that temporarily or permanently break the declared abstraction
// and insertion idioms that break and then repair it.
//
// Beyond the paper's structures, the hostile profiles target the corners
// where segment-summarizing analyses are weakest: threaded parent-pointer
// trees (an undeclared cross-link field), skip lists (two forward fields at
// distinct levels), doubly-linked circular lists of lists, and a
// repair-weighted two-way-list grammar whose programs are mostly
// break-then-repair splice/unlink sequences.
//
// Generation is fully deterministic: one seed plus one Profile yields one
// byte-identical program, so every failure a downstream harness finds
// reproduces from its seed alone. Programs keep their statement structure
// (a tree of Stmt values) alongside the rendered source, which is what the
// difftest shrinker delta-debugs over.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Profile parameterizes generation. The zero value is not useful; start
// from ProfileByName or Profiles.
type Profile struct {
	// Name identifies the profile in reports and corpus metadata.
	Name string
	// Structure is the record type generated programs shuffle (any name
	// from Structures). Empty means rotate per seed across the paper's four
	// structures (the "mixed" profile; the rotation list is pinned so mixed
	// programs stay byte-stable as structures are added).
	Structure string
	// MinStmts/MaxStmts bound the number of top-level statements in the
	// fuzzed function's body.
	MinStmts, MaxStmts int
	// Mutate permits pointer-field stores: guarded link updates that may
	// temporarily or permanently violate the declared abstraction, plus
	// break-and-repair insertion idioms. Without it programs only read the
	// structure (and allocate unlinked nodes), so the final heap must still
	// satisfy every declaration — the lint check exploits that.
	Mutate bool
	// Calls renders a family of helper callees before the fuzzed function —
	// a data-only writer, an aliasing link mutator, and a recursive walker —
	// and mixes calls to them (variable-only pointer arguments) into the
	// fuzzed body. This is the interprocedural profile: it exercises the
	// summary instantiation path, the write-set taint, and the recursive
	// fallback against the interpreter and the havoc-only oracles.
	Calls bool
	// Repair reweights the TwoWayLL grammar toward break-then-repair
	// sequences: most statements become splice or unlink idioms whose
	// intermediate states violate the two-way invariant, with reads and
	// walks interleaved so oracles are queried mid-repair.
	Repair bool
}

// Profiles returns the built-in profiles, in a stable order.
func Profiles() []Profile {
	return []Profile{
		{Name: "list", Structure: "TwoWayLL", MinStmts: 6, MaxStmts: 16, Mutate: true},
		{Name: "tree", Structure: "PBinTree", MinStmts: 6, MaxStmts: 16, Mutate: true},
		{Name: "circular", Structure: "CirL", MinStmts: 6, MaxStmts: 14, Mutate: true},
		{Name: "lols", Structure: "LOLS", MinStmts: 6, MaxStmts: 16, Mutate: true},
		{Name: "readonly", Structure: "", MinStmts: 6, MaxStmts: 16, Mutate: false},
		{Name: "mixed", Structure: "", MinStmts: 6, MaxStmts: 16, Mutate: true},
		{Name: "calls", Structure: "", MinStmts: 6, MaxStmts: 16, Mutate: true, Calls: true},
		{Name: "ptree", Structure: "ThreadTree", MinStmts: 6, MaxStmts: 16, Mutate: true},
		{Name: "skiplist", Structure: "SkipL", MinStmts: 6, MaxStmts: 16, Mutate: true},
		{Name: "ringlol", Structure: "CirLOL", MinStmts: 6, MaxStmts: 14, Mutate: true},
		{Name: "repair", Structure: "TwoWayLL", MinStmts: 6, MaxStmts: 16, Mutate: true, Repair: true},
	}
}

// ProfileByName resolves a built-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("unknown profile %q", name)
}

// Stmt is one generated statement of the fuzzed function: either a simple
// statement (Head holds its rendered lines, Body is nil) or a compound one
// — a bounded loop or a guard — whose Body the shrinker can unwrap.
type Stmt struct {
	// Head holds the opening source lines (everything for a simple
	// statement; e.g. "i = 3;" and "while (...) {" for a loop).
	Head []string
	// Body holds the nested statements of a compound statement.
	Body []Stmt
	// Tail closes a compound statement ("}"); empty for simple ones.
	Tail string
}

// Count returns the number of Stmt nodes in the subtree (the statement
// count divergence repros are measured in).
func (s Stmt) Count() int {
	n := 1
	for _, b := range s.Body {
		n += b.Count()
	}
	return n
}

func simple(lines ...string) Stmt { return Stmt{Head: lines} }

// Program is one generated compilation unit: the structure declaration, a
// mini-language builder, the random fuzzed function (as a statement tree),
// and a main wrapper, rendered on demand by Source.
type Program struct {
	Profile  Profile
	Seed     int64
	TypeName string
	// Stmts is the top-level statement list of the fuzzed function's body.
	Stmts []Stmt

	shape *structureSpec
}

// Generate builds the program for the seed under the profile. Identical
// (seed, profile) pairs yield identical programs.
func Generate(seed int64, pr Profile) *Program {
	rng := rand.New(rand.NewSource(seed))
	spec := specFor(structureForSeed(seed, pr))
	n := pr.MinStmts
	if pr.MaxStmts > pr.MinStmts {
		n += rng.Intn(pr.MaxStmts - pr.MinStmts + 1)
	}
	p := &Program{Profile: pr, Seed: seed, TypeName: spec.typeName, shape: spec}
	// The alias seeds are ordinary statements, not a fixed prologue, so the
	// shrinker can remove them like anything else.
	for _, v := range []string{"b", "c", "d"} {
		p.Stmts = append(p.Stmts, simple(fmt.Sprintf("%s = a;", v)))
	}
	for i := 0; i < n; i++ {
		// Call statements are drawn here rather than inside the per-structure
		// grammars so profiles without Calls consume the rng identically to
		// before the profile existed (their programs stay byte-stable).
		if pr.Calls && rng.Intn(4) == 0 {
			p.Stmts = append(p.Stmts, callStmt(rng))
			continue
		}
		p.Stmts = append(p.Stmts, spec.emit(rng, pr))
	}
	return p
}

// structureForSeed picks the concrete structure: the profile's own, or a
// per-seed rotation when the profile leaves it open.
func structureForSeed(seed int64, pr Profile) string {
	if pr.Structure != "" {
		return pr.Structure
	}
	names := []string{"TwoWayLL", "PBinTree", "CirL", "LOLS"}
	i := seed % int64(len(names))
	if i < 0 {
		i += int64(len(names))
	}
	return names[i]
}

// WithStmts returns a copy of the program with a different statement list
// (the shrinker's step function).
func (p *Program) WithStmts(stmts []Stmt) *Program {
	q := *p
	q.Stmts = stmts
	return &q
}

// NumStmts counts the statements of the fuzzed body, nested ones included.
func (p *Program) NumStmts() int {
	n := 0
	for _, s := range p.Stmts {
		n += s.Count()
	}
	return n
}

// Entry returns the name of the randomly generated function.
func (p *Program) Entry() string { return "fuzzed" }

// Main returns the name of the self-contained entry point (takes one int:
// the structure size), runnable by addslint and the interpreter.
func (p *Program) Main() string { return "main" }

// Source renders the complete compilation unit.
func (p *Program) Source() []byte {
	var b strings.Builder
	b.WriteString(p.shape.decl)
	b.WriteString(p.shape.builder)
	if p.Profile.Calls {
		// Callees precede the fuzzed function: definitions come before uses,
		// matching the builder functions. They render whether or not the
		// shrinker kept any call — an uncalled helper is just one more
		// analyzed function.
		b.WriteString(p.shape.helpers())
	}
	fmt.Fprintf(&b, "void fuzzed(%s *a) {\n", p.TypeName)
	fmt.Fprintf(&b, "    %s *b, *c, *d;\n", p.TypeName)
	b.WriteString("    int i;\n")
	for _, s := range p.Stmts {
		renderStmt(&b, s, 1)
	}
	b.WriteString("}\n")
	b.WriteString(p.shape.mainSrc)
	return []byte(b.String())
}

func renderStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, l := range s.Head {
		b.WriteString(ind)
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, inner := range s.Body {
		renderStmt(b, inner, depth+1)
	}
	if s.Tail != "" {
		b.WriteString(ind)
		b.WriteString(s.Tail)
		b.WriteByte('\n')
	}
}
