package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// structureSpec bundles everything structure-specific: the ADDS declaration
// (kept verbatim in sync with internal/structures.Decls), a mini builder
// that constructs a valid instance, the main wrapper, and the statement
// grammar of the fuzzed function.
type structureSpec struct {
	typeName string
	decl     string
	builder  string
	mainSrc  string
	// emit produces one random top-level statement. It must only emit
	// pointer-field stores (shape mutations) when the profile allows them.
	emit func(rng *rand.Rand, pr Profile) Stmt
	// callFwd/callBack are the link fields the call-profile helpers mutate
	// and traverse: a forward field and, where the structure has one, its
	// backward companion (empty for CirL).
	callFwd, callBack string
}

// helpers renders the call-profile callee family for the structure:
//
//   - hbump: data-only writer — its summary taints no pointer relations, so
//     summarized analysis stays strictly more precise than the havoc.
//   - hlink: aliasing link mutator — stores one argument's address into the
//     other's forward field (and back-link when the structure has one),
//     exercising cross-argument summary instantiation.
//   - hrec: self-recursive walker — the engine refuses to summarize it, so
//     every call site takes the havoc fallback path.
func (s *structureSpec) helpers() string {
	var b strings.Builder
	fmt.Fprintf(&b, "void hbump(%s *p) {\n    if (p != NULL) {\n        p->data = p->data + 1;\n    }\n}\n", s.typeName)
	fmt.Fprintf(&b, "void hlink(%s *p, %s *q) {\n    if (p != NULL && q != NULL) {\n        p->%s = q;\n", s.typeName, s.typeName, s.callFwd)
	if s.callBack != "" {
		fmt.Fprintf(&b, "        q->%s = p;\n", s.callBack)
	}
	b.WriteString("    }\n}\n")
	fmt.Fprintf(&b, "void hrec(%s *p, int d) {\n    if (p != NULL && d > 0) {\n        p->data = d;\n        hrec(p->%s, d - 1);\n    }\n}\n", s.typeName, s.callFwd)
	return b.String()
}

// callStmt emits one call to a helper with variable-only pointer arguments.
// hlink is weighted up: two-argument calls are where summary instantiation
// can go wrong.
func callStmt(rng *rand.Rand) Stmt {
	switch rng.Intn(4) {
	case 0:
		return simple(fmt.Sprintf("hbump(%s);", pickVar(rng)))
	case 1, 2:
		return simple(fmt.Sprintf("hlink(%s, %s);", pickVar(rng), pickVar(rng)))
	default:
		return simple(fmt.Sprintf("hrec(%s, %d);", pickVar(rng), rng.Intn(4)+1))
	}
}

var vars = []string{"a", "b", "c", "d"}

func pickVar(rng *rand.Rand) string { return vars[rng.Intn(len(vars))] }

func pickOf(rng *rand.Rand, of []string) string { return of[rng.Intn(len(of))] }

// copyStmt, nullStmt, newStmt are the structure-independent statements.
func copyStmt(rng *rand.Rand) Stmt {
	return simple(fmt.Sprintf("%s = %s;", pickVar(rng), pickVar(rng)))
}

func nullStmt(rng *rand.Rand) Stmt {
	return simple(fmt.Sprintf("%s = NULL;", pickVar(rng)))
}

func newStmt(rng *rand.Rand, typeName string) Stmt {
	return simple(fmt.Sprintf("%s = new %s;", pickVar(rng), typeName))
}

// derefStmt emits a guarded pointer-field read: if (x != NULL) { y = x->f; }
func derefStmt(rng *rand.Rand, fields []string) Stmt {
	src := pickVar(rng)
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL) {", src)},
		Body: []Stmt{simple(fmt.Sprintf("%s = %s->%s;", pickVar(rng), src, pickOf(rng, fields)))},
		Tail: "}",
	}
}

// storeStmt emits a guarded pointer-field write (possibly breaking the
// declared abstraction — the analyses must stay sound regardless).
func storeStmt(rng *rand.Rand, fields []string) Stmt {
	base := pickVar(rng)
	rhs := pickVar(rng)
	if rng.Intn(3) == 0 {
		rhs = "NULL"
	}
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL) {", base)},
		Body: []Stmt{simple(fmt.Sprintf("%s->%s = %s;", base, pickOf(rng, fields), rhs))},
		Tail: "}",
	}
}

// dataStmt emits a guarded int-field write (never a shape mutation).
func dataStmt(rng *rand.Rand) Stmt {
	base := pickVar(rng)
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL) {", base)},
		Body: []Stmt{simple(fmt.Sprintf("%s->data = %d;", base, rng.Intn(100)))},
		Tail: "}",
	}
}

// walkStmt emits a bounded traversal loop along one field.
func walkStmt(rng *rand.Rand, fields []string) Stmt {
	v := pickVar(rng)
	f := pickOf(rng, fields)
	body := []Stmt{simple(fmt.Sprintf("%s = %s->%s;", v, v, f))}
	if rng.Intn(3) == 0 {
		body = append([]Stmt{simple(fmt.Sprintf("%s->data = %s->data + 1;", v, v))}, body...)
	}
	body = append(body, simple("i = i - 1;"))
	return Stmt{
		Head: []string{
			fmt.Sprintf("i = %d;", rng.Intn(5)+1),
			fmt.Sprintf("while (i > 0 && %s != NULL) {", v),
		},
		Body: body,
		Tail: "}",
	}
}

// ---------------------------------------------------------------------------
// TwoWayLL

const twoWayDecl = `type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

const twoWayBuilder = `void build(TwoWayLL *hd, int n) {
    TwoWayLL *tail, *node;
    int k;
    tail = hd;
    k = 1;
    while (k < n) {
        node = new TwoWayLL;
        node->data = k;
        tail->next = node;
        node->prev = tail;
        tail = node;
        k = k + 1;
    }
}
`

const twoWayMain = `int main(int n) {
    TwoWayLL *root;
    root = new TwoWayLL;
    root->data = 0;
    build(root, n);
    fuzzed(root);
    return 0;
}
`

// insertList is the break-and-repair idiom: splice a fresh node after b.
// Between the first store and the last, the two-way invariant is violated
// and then restored — the temporary-violation pattern of Section 5.1.1.
func insertList(rng *rand.Rand) Stmt {
	base := pickVar(rng)
	tmp := pickVar(rng)
	if tmp == base {
		tmp = "d"
	}
	if tmp == base { // base was d
		tmp = "c"
	}
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL) {", base)},
		Body: []Stmt{
			simple(fmt.Sprintf("%s = new TwoWayLL;", tmp)),
			simple(fmt.Sprintf("%s->next = %s->next;", tmp, base)),
			{
				Head: []string{fmt.Sprintf("if (%s->next != NULL) {", tmp)},
				Body: []Stmt{simple(fmt.Sprintf("%s->next->prev = %s;", tmp, tmp))},
				Tail: "}",
			},
			simple(fmt.Sprintf("%s->next = %s;", base, tmp)),
			simple(fmt.Sprintf("%s->prev = %s;", tmp, base)),
		},
		Tail: "}",
	}
}

// unlinkList is the deletion half of the repair idioms: remove the node
// after base, re-linking next and then prev. Between the two stores the
// removed node's prev still points into the list — backward is broken
// exactly while forward is already repaired.
func unlinkList(rng *rand.Rand) Stmt {
	base := pickVar(rng)
	tmp := pickVar(rng)
	if tmp == base {
		tmp = "d"
	}
	if tmp == base {
		tmp = "c"
	}
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL && %s->next != NULL) {", base, base)},
		Body: []Stmt{
			simple(fmt.Sprintf("%s = %s->next;", tmp, base)),
			simple(fmt.Sprintf("%s->next = %s->next;", base, tmp)),
			{
				Head: []string{fmt.Sprintf("if (%s->next != NULL) {", base)},
				Body: []Stmt{simple(fmt.Sprintf("%s->next->prev = %s;", base, base))},
				Tail: "}",
			},
		},
		Tail: "}",
	}
}

func emitList(rng *rand.Rand, pr Profile) Stmt {
	fields := []string{"next", "prev"}
	if pr.Repair {
		// The repair profile trades breadth for depth: half the draws are
		// splice or unlink sequences, the rest are the reads and walks that
		// query oracles against the mid-repair heap.
		switch rng.Intn(8) {
		case 0:
			return copyStmt(rng)
		case 1:
			return derefStmt(rng, fields)
		case 2:
			return walkStmt(rng, fields)
		case 3:
			return newStmt(rng, "TwoWayLL")
		case 4, 5:
			return insertList(rng)
		default:
			return unlinkList(rng)
		}
	}
	max := 7
	if pr.Mutate {
		max = 10
	}
	switch rng.Intn(max) {
	case 0:
		return copyStmt(rng)
	case 1:
		return nullStmt(rng)
	case 2:
		return newStmt(rng, "TwoWayLL")
	case 3, 4:
		return derefStmt(rng, fields)
	case 5:
		return dataStmt(rng)
	case 6:
		return walkStmt(rng, fields)
	case 7, 8:
		return storeStmt(rng, fields)
	default:
		return insertList(rng)
	}
}

// ---------------------------------------------------------------------------
// PBinTree

const treeDecl = `type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
`

const treeBuilder = `void grow(PBinTree *t, int d) {
    PBinTree *l, *r;
    if (d > 0) {
        l = new PBinTree;
        l->data = d;
        t->left = l;
        l->parent = t;
        grow(l, d - 1);
        r = new PBinTree;
        r->data = d;
        t->right = r;
        r->parent = t;
        grow(r, d - 1);
    }
}
`

const treeMain = `int main(int n) {
    PBinTree *root;
    root = new PBinTree;
    root->data = 0;
    grow(root, n);
    fuzzed(root);
    return 0;
}
`

// attachLeaf grows a fresh leaf under b with its parent back-link — a
// combined-group (Defs 4.7-4.8) mutation that keeps the declaration intact.
func attachLeaf(rng *rand.Rand) Stmt {
	base := pickVar(rng)
	tmp := pickVar(rng)
	if tmp == base {
		tmp = "d"
	}
	if tmp == base {
		tmp = "c"
	}
	child := pickOf(rng, []string{"left", "right"})
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL && %s->%s == NULL) {", base, base, child)},
		Body: []Stmt{
			simple(fmt.Sprintf("%s = new PBinTree;", tmp)),
			simple(fmt.Sprintf("%s->%s = %s;", base, child, tmp)),
			simple(fmt.Sprintf("%s->parent = %s;", tmp, base)),
		},
		Tail: "}",
	}
}

func emitTree(rng *rand.Rand, pr Profile) Stmt {
	down := []string{"left", "right"}
	all := []string{"left", "right", "parent"}
	max := 7
	if pr.Mutate {
		max = 10
	}
	switch rng.Intn(max) {
	case 0:
		return copyStmt(rng)
	case 1:
		return nullStmt(rng)
	case 2:
		return newStmt(rng, "PBinTree")
	case 3, 4:
		return derefStmt(rng, all)
	case 5:
		return dataStmt(rng)
	case 6:
		return walkStmt(rng, down)
	case 7, 8:
		return storeStmt(rng, all)
	default:
		return attachLeaf(rng)
	}
}

// ---------------------------------------------------------------------------
// CirL

const cirDecl = `type CirL [X] {
    int data;
    CirL *next is circular along X;
};
`

const cirBuilder = `void build(CirL *first, int n) {
    CirL *cur, *node;
    int k;
    cur = first;
    k = 1;
    while (k < n) {
        node = new CirL;
        node->data = k;
        cur->next = node;
        cur = node;
        k = k + 1;
    }
    cur->next = first;
}
`

const cirMain = `int main(int n) {
    CirL *root;
    root = new CirL;
    root->data = 0;
    build(root, n);
    fuzzed(root);
    return 0;
}
`

// insertRing splices a fresh node into the ring after b, preserving
// circularity end to end.
func insertRing(rng *rand.Rand) Stmt {
	base := pickVar(rng)
	tmp := pickVar(rng)
	if tmp == base {
		tmp = "d"
	}
	if tmp == base {
		tmp = "c"
	}
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL) {", base)},
		Body: []Stmt{
			simple(fmt.Sprintf("%s = new CirL;", tmp)),
			simple(fmt.Sprintf("%s->next = %s->next;", tmp, base)),
			simple(fmt.Sprintf("%s->next = %s;", base, tmp)),
		},
		Tail: "}",
	}
}

func emitCir(rng *rand.Rand, pr Profile) Stmt {
	fields := []string{"next"}
	max := 7
	if pr.Mutate {
		max = 10
	}
	switch rng.Intn(max) {
	case 0:
		return copyStmt(rng)
	case 1:
		return nullStmt(rng)
	case 2:
		return newStmt(rng, "CirL")
	case 3, 4:
		return derefStmt(rng, fields)
	case 5:
		return dataStmt(rng)
	case 6:
		return walkStmt(rng, fields)
	case 7, 8:
		return storeStmt(rng, fields)
	default:
		return insertRing(rng)
	}
}

// ---------------------------------------------------------------------------
// LOLS (list of lists, where X || Y)

const lolsDecl = `type LOLS [X] [Y] where X || Y {
    int data;
    LOLS *across is uniquely forward along X;
    LOLS *back is backward along X;
    LOLS *down is uniquely forward along Y;
    LOLS *up is backward along Y;
};
`

const lolsBuilder = `void row(LOLS *hd, int n) {
    LOLS *cur, *node;
    int k;
    cur = hd;
    k = 1;
    while (k < n) {
        node = new LOLS;
        node->data = k;
        cur->across = node;
        node->back = cur;
        cur = node;
        k = k + 1;
    }
}
void build(LOLS *first, int n) {
    LOLS *cur, *node;
    int k;
    row(first, n);
    cur = first;
    k = 1;
    while (k < n) {
        node = new LOLS;
        node->data = k;
        row(node, n);
        cur->down = node;
        node->up = cur;
        cur = node;
        k = k + 1;
    }
}
`

const lolsMain = `int main(int n) {
    LOLS *root;
    root = new LOLS;
    root->data = 0;
    build(root, n);
    fuzzed(root);
    return 0;
}
`

func emitLols(rng *rand.Rand, pr Profile) Stmt {
	fwd := []string{"across", "down"}
	all := []string{"across", "back", "down", "up"}
	max := 7
	if pr.Mutate {
		max = 9
	}
	switch rng.Intn(max) {
	case 0:
		return copyStmt(rng)
	case 1:
		return nullStmt(rng)
	case 2:
		return newStmt(rng, "LOLS")
	case 3, 4:
		return derefStmt(rng, all)
	case 5:
		return dataStmt(rng)
	case 6:
		return walkStmt(rng, fwd)
	default:
		return storeStmt(rng, all)
	}
}

// ---------------------------------------------------------------------------
// ThreadTree (parent-pointer tree with an undeclared threading cross-link)

// The thread field carries no ADDS clause, so its direction is unknown: the
// builder strings it across subtrees (each node threads to an ancestor's
// thread), giving the analyses a field the declaration says nothing about
// next to a fully declared combined group.
const ptreeDecl = `type ThreadTree [down] {
    int data;
    ThreadTree *left, *right is uniquely forward along down;
    ThreadTree *parent is backward along down;
    ThreadTree *thread;
};
`

const ptreeBuilder = `void grow(ThreadTree *t, int d) {
    ThreadTree *l, *r;
    if (d > 0) {
        l = new ThreadTree;
        l->data = d;
        t->left = l;
        l->parent = t;
        l->thread = t;
        grow(l, d - 1);
        r = new ThreadTree;
        r->data = d;
        t->right = r;
        r->parent = t;
        r->thread = t->thread;
        grow(r, d - 1);
    }
}
`

const ptreeMain = `int main(int n) {
    ThreadTree *root;
    root = new ThreadTree;
    root->data = 0;
    grow(root, n);
    fuzzed(root);
    return 0;
}
`

// attachThreaded grows a fresh leaf under base with its parent back-link,
// then threads it to the inherited cross-link — the combined-group mutation
// of attachLeaf plus an undeclared-field alias.
func attachThreaded(rng *rand.Rand) Stmt {
	base := pickVar(rng)
	tmp := pickVar(rng)
	if tmp == base {
		tmp = "d"
	}
	if tmp == base {
		tmp = "c"
	}
	child := pickOf(rng, []string{"left", "right"})
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL && %s->%s == NULL) {", base, base, child)},
		Body: []Stmt{
			simple(fmt.Sprintf("%s = new ThreadTree;", tmp)),
			simple(fmt.Sprintf("%s->%s = %s;", base, child, tmp)),
			simple(fmt.Sprintf("%s->parent = %s;", tmp, base)),
			simple(fmt.Sprintf("%s->thread = %s->thread;", tmp, base)),
		},
		Tail: "}",
	}
}

func emitPTree(rng *rand.Rand, pr Profile) Stmt {
	walk := []string{"left", "right", "thread"}
	all := []string{"left", "right", "parent", "thread"}
	max := 7
	if pr.Mutate {
		max = 10
	}
	switch rng.Intn(max) {
	case 0:
		return copyStmt(rng)
	case 1:
		return nullStmt(rng)
	case 2:
		return newStmt(rng, "ThreadTree")
	case 3, 4:
		return derefStmt(rng, all)
	case 5:
		return dataStmt(rng)
	case 6:
		return walkStmt(rng, walk)
	case 7, 8:
		return storeStmt(rng, all)
	default:
		return attachThreaded(rng)
	}
}

// ---------------------------------------------------------------------------
// SkipL (two-level skip list: forward fields at distinct dimensions)

const skipDecl = `type SkipL [L0] [L1] {
    int data;
    SkipL *next0 is uniquely forward along L0;
    SkipL *next1 is forward along L1;
};
`

// The express lane links every third node, so next1 hops over next0 runs —
// the lane structure segment summaries tend to collapse.
const skipBuilder = `void build(SkipL *hd, int n) {
    SkipL *tail, *top, *node;
    int k, j;
    tail = hd;
    top = hd;
    j = 0;
    k = 1;
    while (k < n) {
        node = new SkipL;
        node->data = k;
        tail->next0 = node;
        tail = node;
        j = j + 1;
        if (j > 1) {
            top->next1 = node;
            top = node;
            j = 0;
        }
        k = k + 1;
    }
}
`

const skipMain = `int main(int n) {
    SkipL *root;
    root = new SkipL;
    root->data = 0;
    build(root, n);
    fuzzed(root);
    return 0;
}
`

// descendSkip is the search step: ride the express lane while it lasts,
// drop to the base lane otherwise — a bounded walk that mixes the levels.
func descendSkip(rng *rand.Rand) Stmt {
	v := pickVar(rng)
	return Stmt{
		Head: []string{
			fmt.Sprintf("i = %d;", rng.Intn(4)+1),
			fmt.Sprintf("while (i > 0 && %s != NULL) {", v),
		},
		Body: []Stmt{
			{
				Head: []string{fmt.Sprintf("if (%s->next1 != NULL) {", v)},
				Body: []Stmt{simple(fmt.Sprintf("%s = %s->next1;", v, v))},
				Tail: "}",
			},
			{
				Head: []string{fmt.Sprintf("if (%s != NULL) {", v)},
				Body: []Stmt{simple(fmt.Sprintf("%s = %s->next0;", v, v))},
				Tail: "}",
			},
			simple("i = i - 1;"),
		},
		Tail: "}",
	}
}

// promoteSkip lifts a base-lane successor into the express lane — a
// level-crossing store that makes next1 skip past fresh next0 nodes.
func promoteSkip(rng *rand.Rand) Stmt {
	base := pickVar(rng)
	tmp := pickVar(rng)
	if tmp == base {
		tmp = "d"
	}
	if tmp == base {
		tmp = "c"
	}
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL && %s->next0 != NULL) {", base, base)},
		Body: []Stmt{
			simple(fmt.Sprintf("%s = %s->next0;", tmp, base)),
			simple(fmt.Sprintf("%s->next1 = %s->next0;", base, tmp)),
		},
		Tail: "}",
	}
}

func emitSkip(rng *rand.Rand, pr Profile) Stmt {
	fields := []string{"next0", "next1"}
	max := 7
	if pr.Mutate {
		max = 10
	}
	switch rng.Intn(max) {
	case 0:
		return copyStmt(rng)
	case 1:
		return nullStmt(rng)
	case 2:
		return newStmt(rng, "SkipL")
	case 3, 4:
		return derefStmt(rng, fields)
	case 5:
		return dataStmt(rng)
	case 6:
		return descendSkip(rng)
	case 7, 8:
		return storeStmt(rng, fields)
	default:
		return promoteSkip(rng)
	}
}

// ---------------------------------------------------------------------------
// CirLOL (doubly-linked circular list of lists, where X || Y)

const cirLolDecl = `type CirLOL [X] [Y] where X || Y {
    int data;
    CirLOL *next is circular along X;
    CirLOL *prev is circular along X;
    CirLOL *down is uniquely forward along Y;
    CirLOL *up is backward along Y;
};
`

const cirLolBuilder = `void rung(CirLOL *hd, int n) {
    CirLOL *cur, *node;
    int k;
    cur = hd;
    k = 1;
    while (k < n) {
        node = new CirLOL;
        node->data = k;
        cur->down = node;
        node->up = cur;
        cur = node;
        k = k + 1;
    }
}
void build(CirLOL *first, int n) {
    CirLOL *cur, *node;
    int k;
    rung(first, n);
    cur = first;
    k = 1;
    while (k < n) {
        node = new CirLOL;
        node->data = k;
        rung(node, n);
        cur->next = node;
        node->prev = cur;
        cur = node;
        k = k + 1;
    }
    cur->next = first;
    first->prev = cur;
}
`

const cirLolMain = `int main(int n) {
    CirLOL *root;
    root = new CirLOL;
    root->data = 0;
    build(root, n);
    fuzzed(root);
    return 0;
}
`

// spliceRingLOL splices a fresh node into the ring after base, repairing
// both circular links; between the stores the ring is inconsistent in both
// directions at once.
func spliceRingLOL(rng *rand.Rand) Stmt {
	base := pickVar(rng)
	tmp := pickVar(rng)
	if tmp == base {
		tmp = "d"
	}
	if tmp == base {
		tmp = "c"
	}
	return Stmt{
		Head: []string{fmt.Sprintf("if (%s != NULL && %s->next != NULL) {", base, base)},
		Body: []Stmt{
			simple(fmt.Sprintf("%s = new CirLOL;", tmp)),
			simple(fmt.Sprintf("%s->next = %s->next;", tmp, base)),
			simple(fmt.Sprintf("%s->prev = %s;", tmp, base)),
			simple(fmt.Sprintf("%s->next->prev = %s;", base, tmp)),
			simple(fmt.Sprintf("%s->next = %s;", base, tmp)),
		},
		Tail: "}",
	}
}

func emitCirLol(rng *rand.Rand, pr Profile) Stmt {
	fwd := []string{"next", "down"}
	all := []string{"next", "prev", "down", "up"}
	max := 7
	if pr.Mutate {
		max = 10
	}
	switch rng.Intn(max) {
	case 0:
		return copyStmt(rng)
	case 1:
		return nullStmt(rng)
	case 2:
		return newStmt(rng, "CirLOL")
	case 3, 4:
		return derefStmt(rng, all)
	case 5:
		return dataStmt(rng)
	case 6:
		return walkStmt(rng, fwd)
	case 7, 8:
		return storeStmt(rng, all)
	default:
		return spliceRingLOL(rng)
	}
}

// ---------------------------------------------------------------------------

var specs = map[string]*structureSpec{
	"TwoWayLL":   {typeName: "TwoWayLL", decl: twoWayDecl, builder: twoWayBuilder, mainSrc: twoWayMain, emit: emitList, callFwd: "next", callBack: "prev"},
	"PBinTree":   {typeName: "PBinTree", decl: treeDecl, builder: treeBuilder, mainSrc: treeMain, emit: emitTree, callFwd: "left", callBack: "parent"},
	"CirL":       {typeName: "CirL", decl: cirDecl, builder: cirBuilder, mainSrc: cirMain, emit: emitCir, callFwd: "next"},
	"LOLS":       {typeName: "LOLS", decl: lolsDecl, builder: lolsBuilder, mainSrc: lolsMain, emit: emitLols, callFwd: "down", callBack: "up"},
	"ThreadTree": {typeName: "ThreadTree", decl: ptreeDecl, builder: ptreeBuilder, mainSrc: ptreeMain, emit: emitPTree, callFwd: "left", callBack: "parent"},
	"SkipL":      {typeName: "SkipL", decl: skipDecl, builder: skipBuilder, mainSrc: skipMain, emit: emitSkip, callFwd: "next0"},
	"CirLOL":     {typeName: "CirLOL", decl: cirLolDecl, builder: cirLolBuilder, mainSrc: cirLolMain, emit: emitCirLol, callFwd: "down", callBack: "up"},
}

func specFor(name string) *structureSpec {
	s, ok := specs[name]
	if !ok {
		panic("gen: unknown structure " + name)
	}
	return s
}

// Structures lists the structure names Generate can produce: the paper's
// four, then the hostile additions.
func Structures() []string {
	return []string{"TwoWayLL", "PBinTree", "CirL", "LOLS", "ThreadTree", "SkipL", "CirLOL"}
}
