package service

// Lifecycle and overload tests for the detached-flight singleflight: the
// fault-injection seam (Server.computeHook) stands in slow, failing, and
// hanging computations so the tests control exactly when a flight finishes,
// while requests are driven in-process with per-request contexts playing
// the disconnecting clients.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// doCtx drives one in-process request under ctx and returns the recorder.
// ServeHTTP runs synchronously, so cancelling ctx from another goroutine is
// exactly a client disconnect: the handler notices and writes its status.
func doCtx(s *Server, ctx context.Context, method, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func analyzeBody(t *testing.T, source string) []byte {
	t.Helper()
	b, err := json.Marshal(AnalyzeRequest{Source: source})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// waitFor spins until cond holds (refcounts, gauges, goroutine counts).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertGoroutinesDrain fails if the goroutine count does not return to the
// baseline (goleak-style final accounting; +2 tolerates runtime helpers).
func assertGoroutinesDrain(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoalescedWaitersSurviveLeaderDisconnect is the acceptance regression:
// 3-worker pool, one slow flight; the leader's client disconnects
// mid-computation and every coalesced waiter still gets 200 with
// X-Cache: coalesced. Afterwards the flight refcount returns to zero and
// no goroutine outlives the requests.
func TestCoalescedWaitersSurviveLeaderDisconnect(t *testing.T) {
	const waiters = 4
	s := New(Config{Workers: 3})
	release := make(chan struct{})
	started := make(chan struct{})
	var startedOnce sync.Once
	s.computeHook = func(endpoint string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			startedOnce.Do(func() { close(started) })
			select {
			case <-release:
				return map[string]string{"answer": "survived"}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	base := runtime.NumGoroutine()
	body := analyzeBody(t, "leader-disconnect")

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderRec := make(chan *httptest.ResponseRecorder, 1)
	go func() { leaderRec <- doCtx(s, leaderCtx, "POST", "/v1/analyze", body) }()
	<-started

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = doCtx(s, context.Background(), "POST", "/v1/analyze", body)
		}(i)
	}
	waitFor(t, "all waiters on the flight", func() bool {
		return s.metrics.FlightRefsFor("analyze") == waiters+1
	})

	// The leader's client disconnects: it gets 499 itself, the flight
	// keeps running for the waiters.
	cancelLeader()
	if rec := <-leaderRec; rec.Code != StatusClientClosedRequest {
		t.Fatalf("leader status = %d, want %d", rec.Code, StatusClientClosedRequest)
	}
	if got := s.metrics.FlightRefsFor("analyze"); got != waiters {
		t.Fatalf("flight refs after leader left = %d, want %d", got, waiters)
	}

	close(release)
	wg.Wait()
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Errorf("waiter %d status = %d, body %s", i, rec.Code, rec.Body)
		}
		if got := rec.Header().Get("X-Cache"); got != "coalesced" {
			t.Errorf("waiter %d X-Cache = %q, want coalesced", i, got)
		}
		if !bytes.Contains(rec.Body.Bytes(), []byte("survived")) {
			t.Errorf("waiter %d body = %s, want the computed answer", i, rec.Body)
		}
	}
	waitFor(t, "flight refs drain to zero", func() bool {
		return s.metrics.FlightRefsFor("analyze") == 0
	})
	assertGoroutinesDrain(t, base)
}

// TestWaiterCancelReturns499Promptly: a waiter's own disconnect answers 499
// immediately and leaves the shared flight running for the leader.
func TestWaiterCancelReturns499Promptly(t *testing.T) {
	s := New(Config{Workers: 3})
	release := make(chan struct{})
	s.computeHook = func(endpoint string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			select {
			case <-release:
				return map[string]string{"answer": "ok"}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	body := analyzeBody(t, "waiter-cancel")

	leaderRec := make(chan *httptest.ResponseRecorder, 1)
	go func() { leaderRec <- doCtx(s, context.Background(), "POST", "/v1/analyze", body) }()
	waitFor(t, "leader on the flight", func() bool {
		return s.metrics.FlightRefsFor("analyze") == 1
	})

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterRec := make(chan *httptest.ResponseRecorder, 1)
	go func() { waiterRec <- doCtx(s, waiterCtx, "POST", "/v1/analyze", body) }()
	waitFor(t, "waiter on the flight", func() bool {
		return s.metrics.FlightRefsFor("analyze") == 2
	})

	cancelWaiter()
	select {
	case rec := <-waiterRec:
		if rec.Code != StatusClientClosedRequest {
			t.Fatalf("waiter status = %d, want %d", rec.Code, StatusClientClosedRequest)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not get its 499 promptly")
	}

	close(release)
	if rec := <-leaderRec; rec.Code != http.StatusOK {
		t.Fatalf("leader status = %d (waiter's cancel must not kill the flight), body %s",
			rec.Code, rec.Body)
	}
}

// TestOverloadShedsWith429 is the acceptance overload test: with the run
// slot held and no queue, the next request is shed with 429 + Retry-After
// well inside the request timeout, and addsd_shed_total increments.
func TestOverloadShedsWith429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: -1, RequestTimeout: 30 * time.Second})
	release := make(chan struct{})
	started := make(chan struct{})
	var startedOnce sync.Once
	s.computeHook = func(endpoint string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			startedOnce.Do(func() { close(started) })
			select {
			case <-release:
				return map[string]string{"slow": "done"}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	slowBody := analyzeBody(t, "slow")
	slowRec := make(chan *httptest.ResponseRecorder, 1)
	defer func() { <-slowRec }() // drain the slow flight before the test ends
	defer close(release)
	go func() {
		slowRec <- doCtx(s, context.Background(), "POST", "/v1/analyze", slowBody)
	}()
	<-started

	start := time.Now()
	rec := doCtx(s, context.Background(), "POST", "/v1/analyze", analyzeBody(t, "shed-me"))
	elapsed := time.Since(start)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got == "" {
		t.Error("429 response missing Retry-After")
	}
	if elapsed >= s.cfg.RequestTimeout {
		t.Errorf("shed took %v, want < RequestTimeout %v", elapsed, s.cfg.RequestTimeout)
	}
	if got := s.metrics.ShedTotal(); got != 1 {
		t.Errorf("ShedTotal = %d, want 1", got)
	}

	// The shed is visible on the scrape, per endpoint and in aggregate.
	mrec := doCtx(s, context.Background(), "GET", "/metrics", nil)
	for _, want := range []string{
		"addsd_shed_total 1",
		`addsd_endpoint_shed_total{endpoint="analyze"} 1`,
		"addsd_queue_capacity 0",
	} {
		if !bytes.Contains(mrec.Body.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %q\n%s", want, mrec.Body)
		}
	}
}

// TestOverloadQueueAdmitsThenSheds: a queue of depth 1 absorbs the first
// extra flight (which completes fine) and sheds the second.
func TestOverloadQueueAdmitsThenSheds(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.computeHook = func(endpoint string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			select {
			case <-release:
				return map[string]string{"ok": "1"}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		body := analyzeBody(t, string(rune('a'+i)))
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			recs[i] = doCtx(s, context.Background(), "POST", "/v1/analyze", body)
		}(i, body)
	}
	waitFor(t, "one running and one queued flight", func() bool {
		return s.pool.inUse() == 1 && s.pool.queued() == 1
	})

	rec := doCtx(s, context.Background(), "POST", "/v1/analyze", analyzeBody(t, "third"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429", rec.Code)
	}

	close(release)
	wg.Wait()
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Errorf("request %d status = %d, want 200 (queued work must complete)", i, rec.Code)
		}
	}
}

// TestFailingFlightFansOutErrorOnce: a failing computation reports its real
// error to the waiters of that flight only; nothing is cached and the next
// request recomputes.
func TestFailingFlightFansOutErrorOnce(t *testing.T) {
	s := New(Config{Workers: 2})
	var calls atomic.Int32
	s.computeHook = func(endpoint string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			if calls.Add(1) == 1 {
				return nil, errors.New("injected failure")
			}
			return map[string]string{"second": "try"}, nil
		}
	}
	body := analyzeBody(t, "fails-once")
	if rec := doCtx(s, context.Background(), "POST", "/v1/analyze", body); rec.Code != http.StatusInternalServerError {
		t.Fatalf("first status = %d, want 500", rec.Code)
	}
	rec := doCtx(s, context.Background(), "POST", "/v1/analyze", body)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("second = %d/%q, want 200/miss (errors are not cached)",
			rec.Code, rec.Header().Get("X-Cache"))
	}
}

// TestHangingFlightBoundedByTimeout: a computation that ignores every
// signal until its context fires is still bounded by the flight budget, and
// the waiter gets 504 — the flight's deadline, not its own.
func TestHangingFlightBoundedByTimeout(t *testing.T) {
	s := New(Config{Workers: 1, RequestTimeout: 30 * time.Millisecond})
	s.computeHook = func(endpoint string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			<-ctx.Done() // hang until the flight budget expires
			return nil, ctx.Err()
		}
	}
	rec := doCtx(s, context.Background(), "POST", "/v1/analyze", analyzeBody(t, "hang"))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", rec.Code, rec.Body)
	}
}

// TestExperimentDisconnectResultReused covers the handleExperiment leak
// fix: the computation (like exper.ByID) ignores cancellation, the only
// client disconnects mid-run, and the finished result is still cached so
// the next identical request is a hit — the work is reused, not leaked and
// not rerun.
func TestExperimentDisconnectResultReused(t *testing.T) {
	s := New(Config{})
	release := make(chan struct{})
	started := make(chan struct{})
	var calls atomic.Int32
	s.computeHook = func(endpoint string) func(context.Context) (any, error) {
		if endpoint != "experiment:E4" {
			return nil
		}
		return func(ctx context.Context) (any, error) {
			calls.Add(1)
			close(started)
			<-release // not context-aware, exactly like exper.ByID
			return map[string]string{"id": "E4"}, nil
		}
	}
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	recc := make(chan *httptest.ResponseRecorder, 1)
	go func() { recc <- doCtx(s, ctx, "GET", "/v1/experiments/E4", nil) }()
	<-started
	cancel()
	if rec := <-recc; rec.Code != StatusClientClosedRequest {
		t.Fatalf("disconnected client status = %d, want %d", rec.Code, StatusClientClosedRequest)
	}

	// The detached computation finishes on its own and lands in the cache.
	close(release)
	waitFor(t, "abandoned result cached", func() bool { return s.cache.Len() == 1 })
	rec := doCtx(s, context.Background(), "GET", "/v1/experiments/E4", nil)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("retry = %d/%q, want 200/hit", rec.Code, rec.Header().Get("X-Cache"))
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("experiment computed %d times, want 1 (reused, not rerun)", got)
	}
	assertGoroutinesDrain(t, base)
}

// TestSingleKeyStressWithClientKills hammers one key from many clients
// while killing a random half mid-flight, across several rounds. Survivors
// must always get the computed answer (never a peer's cancellation), and
// every round must drain its refcounts and goroutines. Run under -race this
// is the ISSUE's fault-injection stress.
func TestSingleKeyStressWithClientKills(t *testing.T) {
	const clients = 16
	rng := rand.New(rand.NewSource(1))
	s := New(Config{Workers: 3, CacheEntries: 1})
	s.computeHook = func(endpoint string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			select {
			case <-time.After(20 * time.Millisecond):
				return map[string]string{"answer": "stress"}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	base := runtime.NumGoroutine()

	for round := 0; round < 5; round++ {
		// One key per round; CacheEntries=1 evicts it next round, so every
		// round exercises a live flight rather than a cache hit.
		body := analyzeBody(t, string(rune('a'+round)))
		var wg sync.WaitGroup
		cancels := make([]context.CancelFunc, clients)
		killed := make([]bool, clients)
		recs := make([]*httptest.ResponseRecorder, clients)
		for i := 0; i < clients; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			cancels[i] = cancel
			killed[i] = rng.Intn(2) == 0
			wg.Add(1)
			go func(i int, ctx context.Context) {
				defer wg.Done()
				recs[i] = doCtx(s, ctx, "POST", "/v1/analyze", body)
			}(i, ctx)
		}
		for i, kill := range killed {
			if kill {
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				cancels[i]()
			}
		}
		wg.Wait()
		for i := range cancels {
			cancels[i]()
		}
		for i, rec := range recs {
			if killed[i] {
				// A killed client may have finished before its cancel
				// landed; both 200 and 499 are legal. 5xx is not.
				if rec.Code != http.StatusOK && rec.Code != StatusClientClosedRequest {
					t.Errorf("round %d killed client %d: status = %d", round, i, rec.Code)
				}
				continue
			}
			if rec.Code != http.StatusOK {
				t.Errorf("round %d surviving client %d: status = %d, body %s",
					round, i, rec.Code, rec.Body)
			} else if !bytes.Contains(rec.Body.Bytes(), []byte("stress")) {
				t.Errorf("round %d client %d: wrong body %s", round, i, rec.Body)
			}
		}
		waitFor(t, "round refcount drain", func() bool {
			return s.metrics.FlightRefsFor("analyze") == 0
		})
	}
	assertGoroutinesDrain(t, base)
}
