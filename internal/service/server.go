package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"repro/adds"
	"repro/internal/core/pathmatrix"
	"repro/internal/exper"
)

// maxBodyBytes bounds request bodies; mini sources are small, and the cap
// keeps a hostile client from ballooning the cache key hashing.
const maxBodyBytes = 4 << 20

// StatusClientClosedRequest reports a request whose context was cancelled
// by the client (nginx's 499 convention; Go has no named constant).
const StatusClientClosedRequest = 499

// Config sizes the server. Zero values select the defaults.
type Config struct {
	CacheEntries   int           // bound on cached results (default 512)
	Workers        int           // concurrent analyses (default GOMAXPROCS)
	QueueDepth     int           // flights queued for a slot before shedding (default 4×workers; <0 = no queue)
	RequestTimeout time.Duration // per-flight analysis budget (default 30s)
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Server is the addsd daemon core: handlers plus the cache, pool, and
// metrics they share. Construct with New and mount Handler.
type Server struct {
	cfg     Config
	cache   *Cache
	pool    *pool
	metrics *Metrics
	mux     *http.ServeMux

	// computeHook, when non-nil, replaces an endpoint's compute function.
	// It is a fault-injection seam for tests (slow, failing, or hanging
	// computations); returning nil keeps the real compute. Never set in
	// production.
	computeHook func(endpoint string) func(ctx context.Context) (any, error)
}

// New builds a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries),
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
	}
	// Flights run detached from any single request's context; the request
	// timeout bounds the shared computation, not the wait of one client.
	s.cache.FlightTimeout = cfg.RequestTimeout
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/pipeline", s.handlePipeline)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Metrics exposes the registry (cmd/addsd logs a summary on shutdown).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the daemon's root handler: the route mux wrapped with the
// inflight/latency middleware.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.RequestStarted()
		defer s.metrics.RequestDone()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.mux.ServeHTTP(sw, r)
		s.metrics.ObserveRequest(endpointLabel(r.URL.Path), sw.code, time.Since(start))
	})
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming responses (pprof
// traces, long profiles) are not buffered until EOF by the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// discovers Flusher/Hijacker/etc. through it.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// endpointLabel buckets paths into a bounded label set so metrics
// cardinality cannot grow with traffic.
func endpointLabel(path string) string {
	switch {
	case path == "/v1/analyze":
		return "analyze"
	case path == "/v1/pipeline":
		return "pipeline"
	case path == "/v1/experiments" || len(path) > len("/v1/experiments/") && path[:len("/v1/experiments/")] == "/v1/experiments/":
		return "experiments"
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	case len(path) >= len("/debug/pprof") && path[:len("/debug/pprof")] == "/debug/pprof":
		return "pprof"
	}
	return "other"
}

// errorBody is the JSON error envelope every endpoint shares.
type errorBody struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
}

// writeError maps an error to its HTTP status and writes the envelope.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	body := errorBody{Error: err.Error()}
	var se *adds.SourceError
	var ufe *UnknownFieldError
	switch {
	case errors.As(err, &se):
		code = http.StatusUnprocessableEntity
		body.Line, body.Col = se.Line, se.Col
	case errors.As(err, &ufe):
		code = http.StatusBadRequest
		body.Field = ufe.Field
	case errors.Is(err, ErrBadRequest), errors.Is(err, adds.ErrBadWidth):
		code = http.StatusBadRequest
	case errors.Is(err, adds.ErrUnknownFunction), errors.Is(err, adds.ErrNoSuchLoop),
		errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = StatusClientClosedRequest
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

// decodeBody parses a JSON request body into v. Unknown fields are a 400,
// not a silent default: a typoed "orcale" key must fail loudly instead of
// answering for the default oracle.
func decodeBody(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return fmt.Errorf("%w: reading body: %v", ErrBadRequest, err)
	}
	if len(body) > maxBodyBytes {
		return fmt.Errorf("%w: body exceeds %d bytes", ErrBadRequest, maxBodyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		// encoding/json reports the offender only in the message, as
		// `json: unknown field "name"`; surface it as a typed error so the
		// envelope can echo the field.
		if rest, ok := strings.CutPrefix(err.Error(), `json: unknown field "`); ok {
			return &UnknownFieldError{Field: strings.TrimSuffix(rest, `"`)}
		}
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// serveCached answers one POST endpoint through the content-addressed
// cache: canonicalize the request, derive the key, and on miss run compute
// as a detached flight — on a pool slot charged to the flight, under the
// flight timeout, alive as long as any waiter remains. The handler itself
// only waits, selecting on its own request context, so one client's
// disconnect never decides another client's answer. The cached value is the
// marshaled response body, so hits cost one map lookup and one write.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint string, req any, compute func(ctx context.Context) (any, error)) {
	if s.computeHook != nil {
		if h := s.computeHook(endpoint); h != nil {
			compute = h
		}
	}
	canonical, err := json.Marshal(req)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	key := Key(endpoint, pathmatrix.EngineVersion, string(canonical))

	label := endpointLabel(r.URL.Path)
	val, outcome, err := s.cache.Do(r.Context(), key, func(ctx context.Context) ([]byte, error) {
		if err := s.pool.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.pool.release()
		resp, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	}, func(delta int) { s.metrics.FlightRefs(label, delta) })
	s.metrics.ObserveCache(outcome)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.ObserveShed(label)
		}
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", outcome.String())
	w.WriteHeader(http.StatusOK)
	w.Write(val) //nolint:errcheck
	if len(val) == 0 || val[len(val)-1] != '\n' {
		io.WriteString(w, "\n") //nolint:errcheck
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveCached(w, r, "analyze", &req, func(ctx context.Context) (any, error) {
		return BuildAnalyze(ctx, &req)
	})
}

func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	var req PipelineRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveCached(w, r, "pipeline", &req, func(ctx context.Context) (any, error) {
		return BuildPipeline(ctx, &req)
	})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	defs := []ExperimentDef{}
	for _, d := range adds.ExperimentDefs() {
		defs = append(defs, ExperimentDef{ID: d.ID, Title: d.Title})
	}
	writeJSON(w, http.StatusOK, defs)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Experiments take no input, so the id plus engine version is the whole
	// content address. exper.ByID is not context-aware, but the flight it
	// runs on already is the detachment mechanism: a client that gives up
	// waiting leaves the flight, the computation finishes on its own
	// goroutine, and the result is cached for (or coalesced with) the next
	// identical request — reused, never leaked per-request.
	s.serveCached(w, r, "experiment:"+id, struct{}{}, func(ctx context.Context) (any, error) {
		rep := exper.ByID(id)
		if rep == nil {
			return nil, fmt.Errorf("%w: experiment %q (known: E1..E10)", ErrNotFound, id)
		}
		return rep, nil
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status": "ok",
		"engine": pathmatrix.EngineVersion,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteProm(w, s.cache.Len(), s.pool.inUse(), s.pool.capacity(),
		s.pool.queued(), s.pool.queueCapacity())
}
