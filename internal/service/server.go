package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/adds"
	"repro/internal/core/pathmatrix"
	"repro/internal/exper"
	"repro/internal/obs"
)

// DefaultMaxBodyBytes bounds request bodies when Config.MaxBodyBytes is
// zero; mini sources are small, and the cap keeps a hostile client from
// ballooning the cache key hashing. Oversized bodies are a 413 with a typed
// TooLargeError envelope, rejected before the JSON decoder runs.
const DefaultMaxBodyBytes = 4 << 20

// DefaultMaxBatchItems bounds /v1/batch item counts when
// Config.MaxBatchItems is zero.
const DefaultMaxBatchItems = 256

// StatusClientClosedRequest reports a request whose context was cancelled
// by the client (nginx's 499 convention; Go has no named constant).
const StatusClientClosedRequest = 499

// Config sizes the server. Zero values select the defaults.
type Config struct {
	CacheEntries   int           // bound on cached results (default 512)
	Workers        int           // concurrent analyses (default GOMAXPROCS)
	QueueDepth     int           // flights queued for a slot before shedding (default 4×workers; <0 = no queue)
	RequestTimeout time.Duration // per-flight analysis budget (default 30s)
	MaxBodyBytes   int64         // request-body bound, 413 beyond it (default DefaultMaxBodyBytes)
	MaxBatchItems  int           // /v1/batch item bound, 413 beyond it (default DefaultMaxBatchItems)
	BatchParallel  int           // per-batch concurrent items (default min(Workers, 4))

	// Peers enables cluster shard/proxy mode: the full peer list (host:port,
	// this process included as Self). Each request's content-address key is
	// placed on a consistent-hash ring over Peers; a request for a key
	// another shard owns is answered by peeking that shard's cache, then
	// forwarding, then — if the owner is unreachable — computing locally.
	Peers       []string
	Self        string        // this process's advertised addr within Peers
	PeerTimeout time.Duration // per peer-attempt budget (default cluster.DefaultPeerTimeout)

	Logger    *slog.Logger // access + lifecycle log (default: discard)
	Tracer    *obs.Tracer  // request tracer (default: fresh tracer over TraceRing)
	TraceRing int          // finished traces kept for /debug/trace/{id} (default obs.DefaultRingSize)
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxBatchItems == 0 {
		c.MaxBatchItems = DefaultMaxBatchItems
	}
	if c.BatchParallel == 0 {
		c.BatchParallel = min(c.Workers, 4)
	}
	if c.BatchParallel < 1 {
		c.BatchParallel = 1
	}
	return c
}

// Server is the addsd daemon core: handlers plus the cache, pool, and
// metrics they share. Construct with New and mount Handler.
type Server struct {
	cfg     Config
	cache   *Cache
	pool    *pool
	metrics *Metrics
	logger  *slog.Logger
	tracer  *obs.Tracer
	mux     *http.ServeMux

	// cluster is non-nil in shard/proxy mode (Config.Peers). clusterErr
	// records a misconfiguration (self missing from the peer list, bad
	// ring): the server still serves single-process, but /readyz reports
	// not-ready so no proxy routes to a shard with a broken ring view.
	cluster    *clusterState
	clusterErr string

	// computeHook, when non-nil, replaces an endpoint's compute function.
	// It is a fault-injection seam for tests (slow, failing, or hanging
	// computations); returning nil keeps the real compute. Never set in
	// production.
	computeHook func(endpoint string) func(ctx context.Context) (any, error)
}

// New builds a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries),
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		metrics: NewMetrics(),
		logger:  cfg.Logger,
		tracer:  cfg.Tracer,
		mux:     http.NewServeMux(),
	}
	if s.logger == nil {
		s.logger = obs.Nop()
	}
	s.cluster, s.clusterErr = newClusterState(cfg)
	if s.cluster != nil {
		s.metrics.SetRingPeers(s.cluster.ring.Len())
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(cfg.TraceRing)
	}
	// Every finished span feeds the per-phase duration histograms (and the
	// fixpoint spans their iteration counts); a tracer the caller passed in
	// keeps its own OnEnd hook chained ahead of ours.
	prev := s.tracer.OnEnd
	s.tracer.OnEnd = func(rec obs.SpanRecord) {
		if prev != nil {
			prev(rec)
		}
		s.observeSpan(rec)
	}
	// Flights run detached from any single request's context; the request
	// timeout bounds the shared computation, not the wait of one client.
	s.cache.FlightTimeout = cfg.RequestTimeout

	// The versioned API, plus the pre-versioning paths as deprecated
	// aliases onto the same handlers (same cache keys, so the bodies are
	// byte-identical — only the Deprecation/Link headers differ).
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/depgraph", s.handleDepgraph)
	s.mux.HandleFunc("POST /v1/pipeline", s.handlePipeline)
	s.mux.HandleFunc("POST /v1/reanalyze", s.handleReanalyze)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCachePeek)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("GET /v1/oracles", s.handleOracleList)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("POST /analyze", legacy(s.handleAnalyze))
	s.mux.HandleFunc("POST /depgraph", legacy(s.handleDepgraph))
	s.mux.HandleFunc("POST /pipeline", legacy(s.handlePipeline))
	s.mux.HandleFunc("GET /experiments", legacy(s.handleExperimentList))
	s.mux.HandleFunc("GET /experiments/{id}", legacy(s.handleExperiment))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// legacy wraps a /v1 handler for its pre-versioning path: the answer is the
// v1 answer plus the RFC 8594 Deprecation header and a successor-version
// Link pointing at the /v1 spelling.
func legacy(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		h(w, r)
	}
}

// Metrics exposes the registry (cmd/addsd logs a summary on shutdown).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer exposes the request tracer (cmd/addsd shares it with facade-level
// options; tests reach the trace ring through it).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// observeSpan feeds a finished span into the phase-duration histograms.
// Root request spans are excluded — request latency already has its own
// endpoint-labeled histogram.
func (s *Server) observeSpan(rec obs.SpanRecord) {
	if strings.HasPrefix(rec.Name, "http ") {
		return
	}
	s.metrics.ObservePhase(rec.Name, rec.Dur)
	if rec.Name != "fixpoint" {
		return
	}
	for _, a := range rec.Attrs {
		if a.Key != "iterations" {
			continue
		}
		switch n := a.Value.(type) {
		case int:
			s.metrics.ObserveFixpointIters(n)
		case int64:
			s.metrics.ObserveFixpointIters(int(n))
		case uint64:
			s.metrics.ObserveFixpointIters(int(n))
		}
	}
}

// traced reports whether requests to this endpoint get a root span. Infra
// scrapes (health checks, metrics, pprof, the trace viewer itself) do not:
// a 10s healthz poll would churn the whole trace ring between two requests
// anyone cares about.
func traced(label string) bool {
	switch label {
	case "analyze", "batch", "depgraph", "pipeline", "reanalyze", "experiments":
		return true
	}
	return false
}

// reqStats is the per-request channel from serveCached back to the access
// log: which cache outcome answered, how long the flight queued for a pool
// slot, and whether admission shed the request. Mutex-guarded because the
// leader's flight writes queueWait from its own goroutine.
type reqStats struct {
	mu         sync.Mutex
	outcome    string // cache outcome, possibly cluster-qualified (peer-hit, forwarded, fallback-miss)
	hasOutcome bool
	queueWait  time.Duration
	shed       bool
}

type reqStatsKey struct{}

func reqStatsFrom(ctx context.Context) *reqStats {
	rs, _ := ctx.Value(reqStatsKey{}).(*reqStats)
	return rs
}

func (rs *reqStats) setOutcome(o string) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.outcome, rs.hasOutcome = o, true
	rs.mu.Unlock()
}

func (rs *reqStats) setQueueWait(d time.Duration) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.queueWait = d
	rs.mu.Unlock()
}

func (rs *reqStats) setShed() {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.shed = true
	rs.mu.Unlock()
}

func (rs *reqStats) snapshot() (o string, has bool, wait time.Duration, shed bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.outcome, rs.hasOutcome, rs.queueWait, rs.shed
}

// Handler returns the daemon's root handler: the route mux wrapped with
// request-id/traceparent ingest, the root span, the typed 404/405
// envelope, the inflight/latency metrics, and one structured access-log
// line per request.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.RequestStarted()
		defer s.metrics.RequestDone()
		start := time.Now()
		label := endpointLabel(r.URL.Path)

		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = obs.NewSpanID().String()
		}
		w.Header().Set("X-Request-Id", reqID)

		var root *obs.Span
		rs := &reqStats{}
		ctx := context.WithValue(r.Context(), reqStatsKey{}, rs)
		if traced(label) {
			var traceID obs.TraceID
			if h := r.Header.Get("Traceparent"); h != "" {
				if tp, err := obs.ParseTraceparent(h); err == nil {
					traceID = tp.TraceID
				}
			}
			ctx, root = s.tracer.StartRoot(ctx, "http "+label, traceID)
			root.SetAttr("requestId", reqID)
			root.SetAttr("method", r.Method)
			root.SetAttr("path", r.URL.Path)
			w.Header().Set("Traceparent",
				obs.Traceparent{TraceID: root.TraceID(), Parent: root.ID(), Flags: 0x01}.Format())
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if h, pattern := s.mux.Handler(r); pattern == "" {
			writeRouteError(sw, r, h)
		} else {
			s.mux.ServeHTTP(sw, r)
		}

		dur := time.Since(start)
		if root != nil {
			root.SetAttr("status", sw.code)
			root.End()
		}
		s.metrics.ObserveRequest(label, sw.code, dur)

		outcome, hasOutcome, queueWait, shed := rs.snapshot()
		attrs := []slog.Attr{
			slog.String("requestId", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", label),
			slog.Int("status", sw.code),
			slog.Duration("duration", dur),
		}
		if root != nil {
			attrs = append(attrs, slog.String("traceId", root.TraceID().String()))
		}
		if hasOutcome {
			attrs = append(attrs,
				slog.String("cache", outcome),
				slog.Duration("queueWait", queueWait))
		}
		if shed {
			attrs = append(attrs, slog.Bool("shed", true))
		}
		s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
	})
}

// headerRecorder captures what the mux's built-in error handler would have
// answered (404, or 405 with an Allow header) so the middleware can rewrite
// it as the typed JSON envelope.
type headerRecorder struct {
	header http.Header
	code   int
}

func (h *headerRecorder) Header() http.Header         { return h.header }
func (h *headerRecorder) Write(p []byte) (int, error) { return len(p), nil }
func (h *headerRecorder) WriteHeader(code int)        { h.code = code }

// writeRouteError serves an unrouted request (no pattern matched) through
// the JSON error envelope instead of net/http's plain-text defaults.
func writeRouteError(w http.ResponseWriter, r *http.Request, h http.Handler) {
	rec := &headerRecorder{header: make(http.Header), code: http.StatusNotFound}
	h.ServeHTTP(rec, r)
	if rec.code == http.StatusMethodNotAllowed {
		if allow := rec.header.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		writeJSON(w, http.StatusMethodNotAllowed,
			errorBody{Error: fmt.Sprintf("method %s not allowed on %s", r.Method, r.URL.Path)})
		return
	}
	writeJSON(w, http.StatusNotFound,
		errorBody{Error: fmt.Sprintf("no such endpoint: %s %s", r.Method, r.URL.Path)})
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming responses (pprof
// traces, long profiles) are not buffered until EOF by the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// discovers Flusher/Hijacker/etc. through it.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// endpointLabel buckets paths into a bounded label set so metrics
// cardinality cannot grow with traffic. The /v1 and legacy spellings share
// labels.
func endpointLabel(path string) string {
	p := strings.TrimPrefix(path, "/v1")
	switch {
	case p == "/analyze":
		return "analyze"
	case p == "/batch":
		return "batch"
	case p == "/depgraph":
		return "depgraph"
	case p == "/pipeline":
		return "pipeline"
	case p == "/reanalyze":
		return "reanalyze"
	case p == "/experiments" || strings.HasPrefix(p, "/experiments/"):
		return "experiments"
	case p == "/oracles":
		return "oracles"
	case strings.HasPrefix(p, "/cache/"):
		return "cache"
	case path == "/healthz":
		return "healthz"
	case path == "/readyz":
		return "readyz"
	case path == "/metrics":
		return "metrics"
	case strings.HasPrefix(path, "/debug/trace"):
		return "trace"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "pprof"
	}
	return "other"
}

// errorBody is the JSON error envelope every endpoint shares, promoted to
// the public wire package so /v1/batch can embed it per item.
type errorBody = ErrorEnvelope

// statusFor maps an error to its HTTP status and envelope. Shared by
// writeError and the per-item envelopes of /v1/batch.
func statusFor(err error) (int, errorBody) {
	code := http.StatusInternalServerError
	body := errorBody{Error: err.Error()}
	var se *adds.SourceError
	var ufe *UnknownFieldError
	var tle *TooLargeError
	switch {
	case errors.As(err, &se):
		code = http.StatusUnprocessableEntity
		body.Line, body.Col = se.Line, se.Col
	case errors.As(err, &ufe):
		code = http.StatusBadRequest
		body.Field = ufe.Field
	case errors.As(err, &tle):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrBadRequest), errors.Is(err, adds.ErrBadWidth):
		code = http.StatusBadRequest
	case errors.Is(err, adds.ErrUnknownFunction), errors.Is(err, adds.ErrNoSuchLoop),
		errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = StatusClientClosedRequest
	}
	return code, body
}

// writeError maps an error to its HTTP status and writes the envelope.
func writeError(w http.ResponseWriter, err error) {
	code, body := statusFor(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

// decodeBody parses a JSON request body into v. Unknown fields are a 400,
// not a silent default: a typoed "orcale" key must fail loudly instead of
// answering for the default oracle. Bodies over the configured -max-body
// bound are a 413 with a typed TooLargeError, rejected before the decoder
// reads unbounded input.
func (s *Server) decodeBody(r *http.Request, v any) error {
	limit := s.cfg.MaxBodyBytes
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return fmt.Errorf("%w: reading body: %v", ErrBadRequest, err)
	}
	if int64(len(body)) > limit {
		return &TooLargeError{What: "body", Limit: limit}
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		// encoding/json reports the offender only in the message, as
		// `json: unknown field "name"`; surface it as a typed error so the
		// envelope can echo the field.
		if rest, ok := strings.CutPrefix(err.Error(), `json: unknown field "`); ok {
			return &UnknownFieldError{Field: strings.TrimSuffix(rest, `"`)}
		}
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// serveCached answers one POST endpoint through the content-addressed
// cache: canonicalize the request, derive the key, and on miss run compute
// as a detached flight — on a pool slot charged to the flight, under the
// flight timeout, alive as long as any waiter remains. The handler itself
// only waits, selecting on its own request context, so one client's
// disconnect never decides another client's answer. The cached value is the
// marshaled response body, so hits cost one map lookup and one write.
//
// The leader's flight adopts the trace of the request that started it, so
// compute-side spans (queue wait, analysis phases) land on that request's
// trace; coalesced waiters keep only their own root span.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint string, req any, compute func(ctx context.Context) (any, error)) {
	if s.computeHook != nil {
		if h := s.computeHook(endpoint); h != nil {
			compute = h
		}
	}
	canonical, err := json.Marshal(req)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	key := Key(endpoint, pathmatrix.EngineVersion, string(canonical))
	label := endpointLabel(r.URL.Path)
	res := s.resolve(r.Context(), label, endpoint, key, canonical, isForwarded(r), compute)
	if res.err != nil {
		writeError(w, res.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", res.cache)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck
	if len(res.body) == 0 || res.body[len(res.body)-1] != '\n' {
		io.WriteString(w, "\n") //nolint:errcheck
	}
}

// resolved is the outcome of resolving one content-addressed request:
// either err (mapped through statusFor), or status plus the response body —
// which for a forwarded 4xx is the owning peer's error envelope, relayed
// verbatim so single-process and cluster answers stay byte-identical.
type resolved struct {
	status int
	body   []byte
	cache  string // X-Cache value: hit|miss|coalesced, peer-hit|forwarded, or fallback-*
	err    error
}

// resolve serves one request through the cluster (when configured) and the
// local cache. A key another shard owns is answered by peeking that shard's
// cache, then forwarding the canonical request; if the owner is unreachable
// or shedding, the request is computed locally — availability beats
// placement. A request that already made a hop (ForwardedHeader) is always
// local, so disagreeing ring views can never bounce it a second time.
func (s *Server) resolve(ctx context.Context, label, endpoint, key string, canonical []byte, forwarded bool, compute func(ctx context.Context) (any, error)) resolved {
	if s.cluster != nil && !forwarded {
		if owner := s.cluster.ring.Owner(key); owner != s.cluster.self {
			if res, ok := s.viaPeer(ctx, owner, endpoint, key, canonical); ok {
				rs := reqStatsFrom(ctx)
				rs.setOutcome(res.cache)
				return res
			}
			return s.localResolve(ctx, label, key, "fallback-", compute)
		}
	}
	return s.localResolve(ctx, label, key, "", compute)
}

// localResolve is the single-process path: the content-addressed cache with
// singleflight, computing on a pool slot behind the admission queue. prefix
// qualifies the cache outcome when this is a cluster fallback.
func (s *Server) localResolve(reqCtx context.Context, label, key, prefix string, compute func(ctx context.Context) (any, error)) resolved {
	rs := reqStatsFrom(reqCtx)
	val, outcome, err := s.cache.Do(reqCtx, key, func(ctx context.Context) ([]byte, error) {
		ctx = obs.Adopt(ctx, reqCtx)
		qstart := time.Now()
		_, qspan := obs.Start(ctx, "queue")
		if err := s.pool.acquire(ctx); err != nil {
			qspan.SetAttr("shed", true)
			qspan.End()
			return nil, err
		}
		qspan.End()
		rs.setQueueWait(time.Since(qstart))
		defer s.pool.release()
		resp, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	}, func(delta int) { s.metrics.FlightRefs(label, delta) })
	s.metrics.ObserveCache(outcome)
	rs.setOutcome(prefix + outcome.String())
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.ObserveShed(label)
			rs.setShed()
		}
		return resolved{err: err}
	}
	return resolved{status: http.StatusOK, body: val, cache: prefix + outcome.String()}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := s.decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveCached(w, r, "analyze", &req, func(ctx context.Context) (any, error) {
		return BuildAnalyze(ctx, &req)
	})
}

func (s *Server) handleDepgraph(w http.ResponseWriter, r *http.Request) {
	var req DepgraphRequest
	if err := s.decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveCached(w, r, "depgraph", &req, func(ctx context.Context) (any, error) {
		return BuildDepgraph(ctx, &req)
	})
}

func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	var req PipelineRequest
	if err := s.decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveCached(w, r, "pipeline", &req, func(ctx context.Context) (any, error) {
		return BuildPipeline(ctx, &req)
	})
}

// handleReanalyze runs whole-program analysis uncached: the response's
// summary counters are per-run facts (how much the content-addressed summary
// cache absorbed THIS time), so serving a cached body would be wrong by
// construction. It still runs on a pool slot under the request timeout, with
// the same queue span and shed accounting as the cached endpoints.
func (s *Server) handleReanalyze(w http.ResponseWriter, r *http.Request) {
	var req ReanalyzeRequest
	if err := s.decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx := r.Context()
	rs := reqStatsFrom(ctx)
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	qstart := time.Now()
	_, qspan := obs.Start(ctx, "queue")
	if err := s.pool.acquire(ctx); err != nil {
		qspan.SetAttr("shed", true)
		qspan.End()
		if errors.Is(err, ErrOverloaded) {
			s.metrics.ObserveShed("reanalyze")
			rs.setShed()
		}
		writeError(w, err)
		return
	}
	qspan.End()
	rs.setQueueWait(time.Since(qstart))
	defer s.pool.release()
	resp, err := BuildReanalyze(ctx, &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	defs := []ExperimentDef{}
	for _, d := range adds.ExperimentDefs() {
		defs = append(defs, ExperimentDef{ID: d.ID, Title: d.Title})
	}
	writeJSON(w, http.StatusOK, defs)
}

// handleOracleList answers GET /v1/oracles with the alias-oracle registry,
// in registry (rank) order — the same list the -oracle flag accepts and the
// analyze/depgraph "oracle" field validates against. The rows derive from
// the registry, so a newly registered oracle appears here without a server
// change.
func (s *Server) handleOracleList(w http.ResponseWriter, _ *http.Request) {
	infos := []OracleInfo{}
	for _, o := range adds.Oracles() {
		infos = append(infos, OracleInfo{Name: o.Name, Description: o.Description, AcceptsK: o.NeedsK})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Experiments take no input, so the id plus engine version is the whole
	// content address. exper.ByID is not context-aware, but the flight it
	// runs on already is the detachment mechanism: a client that gives up
	// waiting leaves the flight, the computation finishes on its own
	// goroutine, and the result is cached for (or coalesced with) the next
	// identical request — reused, never leaked per-request.
	s.serveCached(w, r, "experiment:"+id, struct{}{}, func(ctx context.Context) (any, error) {
		rep := exper.ByID(id)
		if rep == nil {
			return nil, fmt.Errorf("%w: experiment %q (known: E1..E10)", ErrNotFound, id)
		}
		return rep, nil
	})
}

// handleTrace serves one finished trace from the ring, as the span-tree
// JSON by default or the addsc -trace text rendering with ?format=text.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := obs.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	t := s.tracer.Ring().Get(id)
	if t == nil {
		writeError(w, fmt.Errorf("%w: trace %s (ring keeps the last %d finished traces)",
			ErrNotFound, id, s.tracer.Ring().Len()))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		obs.WriteTree(w, t)
		return
	}
	writeJSON(w, http.StatusOK, obs.ToJSON(t))
}

// handleHealthz is liveness only: 200 whenever the process is serving,
// regardless of load. Routing decisions (queue saturation, ring
// configuration) belong to /readyz — a saturated shard is alive but must
// not receive new traffic.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status": "ok",
		"engine": pathmatrix.EngineVersion,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteProm(w, s.cache.Len(), s.pool.inUse(), s.pool.capacity(),
		s.pool.queued(), s.pool.queueCapacity())
}
