package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core/pathmatrix"
	"repro/internal/obs"
)

// clusterState is the shard/proxy wiring of one addsd process: the ring
// every peer agrees on, this process's own address on it, and the client
// that speaks to the others.
type clusterState struct {
	ring   *cluster.Ring
	self   string
	client *cluster.Client
}

// newClusterState builds the cluster wiring from the config. A
// misconfiguration (bad peer list, self missing from it) does not kill the
// server — it keeps answering single-process — but the returned error
// string makes /readyz report not-ready, so a proxy never routes through a
// shard whose ring view is broken.
func newClusterState(cfg Config) (*clusterState, string) {
	if len(cfg.Peers) == 0 {
		return nil, ""
	}
	ring, err := cluster.New(cfg.Peers, 0)
	if err != nil {
		return nil, err.Error()
	}
	if cfg.Self == "" {
		return nil, "cluster: peers configured without a self address"
	}
	if !ring.Has(cfg.Self) {
		return nil, fmt.Sprintf("cluster: self %q is not in the peer list %v", cfg.Self, ring.Peers())
	}
	return &clusterState{ring: ring, self: cfg.Self, client: cluster.NewClient(cfg.PeerTimeout)}, ""
}

// isForwarded reports whether the request already made a cluster hop.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(cluster.ForwardedHeader) != ""
}

// forwardRoute maps a cache-key endpoint to the method and /v1 path a
// forwarded request uses, whatever spelling (legacy, batch item) the
// original arrived under.
func forwardRoute(endpoint string) (method, path string) {
	if id, ok := strings.CutPrefix(endpoint, "experiment:"); ok {
		return http.MethodGet, "/v1/experiments/" + id
	}
	return http.MethodPost, "/v1/" + endpoint
}

// viaPeer answers a request whose key the owner shard holds: first a cache
// peek (GET /v1/cache/{key} — one map lookup on the owner), then a full
// forward so the owner computes and caches it in its own keyspace
// partition. Returns ok=false when the owner is unreachable after the
// client's single retry, or is shedding (429) — the caller computes locally
// rather than failing the request. The hop runs under a "proxy" span whose
// traceparent rides the outbound request, so the owner's phases land on
// this request's distributed trace.
func (s *Server) viaPeer(ctx context.Context, owner, endpoint, key string, canonical []byte) (resolved, bool) {
	ctx, span := obs.Start(ctx, "proxy")
	defer span.End()
	span.SetAttr("peer", owner)
	span.SetAttr("endpoint", endpoint)

	hdr := http.Header{}
	if tp := obs.Outbound(ctx); tp != "" {
		hdr.Set("Traceparent", tp)
	}

	if body, found, err := s.cluster.client.Peek(ctx, owner, key, hdr); err == nil && found {
		s.metrics.ClusterPeerHit()
		span.SetAttr("outcome", "peer-hit")
		return resolved{status: http.StatusOK, body: body, cache: "peer-hit"}, true
	} else if err == nil {
		s.metrics.ClusterPeerMiss()
	}
	// A peek transport error is not yet a fallback: Forward retries with its
	// own budget, and only its failure demotes the request to local compute.

	method, path := forwardRoute(endpoint)
	var reqBody []byte
	if method != http.MethodGet {
		reqBody = canonical
	}
	status, body, err := s.cluster.client.Forward(ctx, owner, method, path, reqBody, hdr)
	if err != nil || status == http.StatusTooManyRequests {
		s.metrics.ClusterFallback()
		span.SetAttr("outcome", "fallback")
		return resolved{}, false
	}
	s.metrics.ClusterForwarded()
	span.SetAttr("outcome", "forwarded")
	return resolved{status: status, body: body, cache: "forwarded"}, true
}

// handleCachePeek serves GET /v1/cache/{key}: the owner side of the peek
// protocol. 200 with the cached response body on a hit, the typed 404
// envelope on a miss — never a computation, so a peek storm costs map
// lookups only.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if val, ok := s.cache.Peek(key); ok {
		s.metrics.ClusterPeekServed(true)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.WriteHeader(http.StatusOK)
		w.Write(val) //nolint:errcheck
		if len(val) == 0 || val[len(val)-1] != '\n' {
			io.WriteString(w, "\n") //nolint:errcheck
		}
		return
	}
	s.metrics.ClusterPeekServed(false)
	writeError(w, fmt.Errorf("%w: no cached result for key %.16s…", ErrNotFound, key))
}

// readiness is the /readyz body: the routing-relevant state of this shard.
type readiness struct {
	Status        string `json:"status"` // "ok" or "unavailable"
	Reason        string `json:"reason,omitempty"`
	Engine        string `json:"engine"`
	QueueDepth    int    `json:"queueDepth"`
	QueueCapacity int    `json:"queueCapacity"`
	Workers       int    `json:"workers"`
	Peers         int    `json:"peers,omitempty"`
	Self          string `json:"self,omitempty"`
}

// handleReadyz is the routing gate, split from /healthz: liveness says "the
// process is up" (always 200 while serving), readiness says "sending a
// request here right now will not be shed". It returns 503 while the
// admission queue is saturated — the state in which /healthz's 200 used to
// lure proxies into guaranteed 429s — and while the cluster ring is
// misconfigured, so a proxy never routes to a shard with a broken ring view.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := readiness{
		Status:        "ok",
		Engine:        pathmatrix.EngineVersion,
		QueueDepth:    s.pool.queued(),
		QueueCapacity: s.pool.queueCapacity(),
		Workers:       s.pool.capacity(),
	}
	if s.cluster != nil {
		body.Peers = s.cluster.ring.Len()
		body.Self = s.cluster.self
	}
	code := http.StatusOK
	switch {
	case s.clusterErr != "":
		code = http.StatusServiceUnavailable
		body.Status, body.Reason = "unavailable", s.clusterErr
	case s.pool.saturated():
		code = http.StatusServiceUnavailable
		body.Status, body.Reason = "unavailable", "admission queue full"
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, body)
}
