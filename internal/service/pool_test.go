package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestPoolAcquireRelease(t *testing.T) {
	p := newPool(2, 0)
	ctx := context.Background()
	if err := p.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.inUse(); got != 2 {
		t.Fatalf("inUse = %d, want 2", got)
	}
	p.release()
	p.release()
	if got := p.inUse(); got != 0 {
		t.Fatalf("inUse = %d, want 0", got)
	}
	if p.capacity() != 2 || p.queueCapacity() != 0 {
		t.Fatalf("capacity = %d/%d, want 2/0", p.capacity(), p.queueCapacity())
	}
}

func TestPoolShedsWhenQueueFull(t *testing.T) {
	p := newPool(1, 1)
	ctx := context.Background()
	if err := p.acquire(ctx); err != nil { // takes the run slot
		t.Fatal(err)
	}

	// One caller fits in the queue...
	queuedErr := make(chan error, 1)
	qctx, qcancel := context.WithCancel(ctx)
	defer qcancel()
	go func() { queuedErr <- p.acquire(qctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for p.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 1", p.queued())
		}
		time.Sleep(time.Millisecond)
	}

	// ...and the next is shed immediately, without blocking.
	start := time.Now()
	if err := p.acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v, want immediate", d)
	}

	// Releasing the slot hands it to the queued caller.
	p.release()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued acquire = %v, want nil", err)
	}
	p.release()
}

func TestPoolQueuedCallerCancels(t *testing.T) {
	p := newPool(1, 2)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for p.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 1", p.queued())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancelled caller must give its admission ticket back.
	deadline = time.Now().Add(5 * time.Second)
	for p.queued() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d after cancel, want 0", p.queued())
		}
		time.Sleep(time.Millisecond)
	}
	p.release()
}
