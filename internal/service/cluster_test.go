package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core/pathmatrix"
)

// startCluster launches n in-process shards that share one peer list, each
// bound to a pre-allocated ephemeral port so every ring is built over the
// final addresses. Returns the shards and their base URLs.
func startCluster(t *testing.T, n int, mut func(i int, cfg *Config)) ([]*Server, []string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	servers := make([]*Server, n)
	urls := make([]string, n)
	for i := range servers {
		cfg := Config{Peers: addrs, Self: addrs[i], PeerTimeout: 2 * time.Second}
		if mut != nil {
			mut(i, &cfg)
		}
		servers[i] = New(cfg)
		ts := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: servers[i].Handler()},
		}
		ts.Start()
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return servers, urls
}

func postAnalyze(t *testing.T, base, source string) (*http.Response, []byte) {
	t.Helper()
	req, _ := json.Marshal(map[string]string{"source": source})
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

// A 3-shard cluster must answer byte-identically to a single process, from
// every shard, whatever the routing path (local, forwarded, peer-hit).
func TestClusterByteIdenticalToSingleProcess(t *testing.T) {
	_, single := newTestServer(t, Config{})
	_, urls := startCluster(t, 3, nil)

	sources := []string{
		shiftSrc,
		shiftSrc + "\nvoid probe(TwoWayLL *q) { if (q != NULL) { q->data = 1; } }\n",
	}
	for si, src := range sources {
		resp, want := postAnalyze(t, single.URL, src)
		if resp.StatusCode != 200 {
			t.Fatalf("single-process analyze = %d %s", resp.StatusCode, want)
		}
		for round := 0; round < 2; round++ {
			for ni, u := range urls {
				resp, got := postAnalyze(t, u, src)
				if resp.StatusCode != 200 {
					t.Fatalf("source %d node %d round %d: status %d %s", si, ni, round, resp.StatusCode, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("source %d node %d round %d: cluster answer differs from single process\ncluster: %s\nsingle:  %s",
						si, ni, round, got, want)
				}
			}
		}
	}
}

// The first non-owner request forwards to the owner (planting the key in
// the owner's cache); every later non-owner request must be answered by the
// peek protocol as a peer hit.
func TestClusterPeerCacheHit(t *testing.T) {
	servers, urls := startCluster(t, 3, nil)

	// Post to the non-owners first: placement depends on the ephemeral
	// ports, and a request that lands on the owner forwards nothing.
	src := shiftSrc
	canonical, _ := json.Marshal(&AnalyzeRequest{Source: src})
	key := Key("analyze", pathmatrix.EngineVersion, string(canonical))
	owner := servers[0].cluster.ring.Owner(key)
	order := make([]string, 0, len(urls))
	for i, s := range servers {
		if s.cluster.self != owner {
			order = append(order, urls[i])
		}
	}
	for i, s := range servers {
		if s.cluster.self == owner {
			order = append(order, urls[i])
		}
	}
	for _, u := range order {
		if resp, body := postAnalyze(t, u, src); resp.StatusCode != 200 {
			t.Fatalf("analyze = %d %s", resp.StatusCode, body)
		}
	}
	var peerHits, forwards uint64
	for _, s := range servers {
		peerHits += s.Metrics().ClusterPeerHits()
		forwards += s.Metrics().ClusterForwards()
	}
	if forwards == 0 {
		t.Error("no request was forwarded to its owning shard")
	}
	if peerHits == 0 {
		t.Error("no request was served from a peer's cache (peek protocol)")
	}
	// And the serving side: someone answered a peek.
	var peekHits uint64
	for _, s := range servers {
		peekHits += s.Metrics().peekHits.Load()
	}
	if peekHits == 0 {
		t.Error("no shard served a cache peek")
	}
}

// X-Cache must name the cluster path taken so operators can see routing.
func TestClusterXCacheHeaders(t *testing.T) {
	servers, urls := startCluster(t, 2, nil)

	// Find which node owns shiftSrc's key by asking the ring directly.
	canonical, _ := json.Marshal(&AnalyzeRequest{Source: shiftSrc})
	key := Key("analyze", pathmatrix.EngineVersion, string(canonical))
	owner := servers[0].cluster.ring.Owner(key)
	ownerIdx, otherIdx := 0, 1
	if servers[1].cluster.self == owner {
		ownerIdx, otherIdx = 1, 0
	}

	resp, _ := postAnalyze(t, urls[otherIdx], shiftSrc)
	if got := resp.Header.Get("X-Cache"); got != "forwarded" {
		t.Errorf("first non-owner request X-Cache = %q, want forwarded", got)
	}
	resp, _ = postAnalyze(t, urls[otherIdx], shiftSrc)
	if got := resp.Header.Get("X-Cache"); got != "peer-hit" {
		t.Errorf("second non-owner request X-Cache = %q, want peer-hit", got)
	}
	resp, _ = postAnalyze(t, urls[ownerIdx], shiftSrc)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("owner request X-Cache = %q, want hit", got)
	}
}

// When the owning shard is dead, requests for its keys must still be
// answered — computed locally after the timeout+retry, marked fallback.
func TestClusterDeadPeerFallback(t *testing.T) {
	// A real listener for shard 0, a dead address for shard 1.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	peers := []string{ln.Addr().String(), deadAddr}
	s := New(Config{Peers: peers, Self: ln.Addr().String(), PeerTimeout: 300 * time.Millisecond})
	ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: s.Handler()}}
	ts.Start()
	t.Cleanup(ts.Close)

	// Generate sources until one's key is owned by the dead peer.
	var src string
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("no generated key landed on the dead peer")
		}
		src = shiftSrc + fmt.Sprintf("\nvoid probe%d(TwoWayLL *q) { q = NULL; }\n", i)
		canonical, _ := json.Marshal(&AnalyzeRequest{Source: src})
		key := Key("analyze", pathmatrix.EngineVersion, string(canonical))
		if s.cluster.ring.Owner(key) == deadAddr {
			break
		}
	}

	resp, body := postAnalyze(t, ts.URL, src)
	if resp.StatusCode != 200 {
		t.Fatalf("fallback analyze = %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "fallback-miss" {
		t.Errorf("X-Cache = %q, want fallback-miss", got)
	}
	if s.Metrics().ClusterFallbacks() == 0 {
		t.Error("fallback counter did not move")
	}
	// The local cache now holds the result: repeat is a fallback-hit, no
	// second peer round-trip cost beyond the peek/forward attempts.
	resp, _ = postAnalyze(t, ts.URL, src)
	if got := resp.Header.Get("X-Cache"); got != "fallback-hit" {
		t.Errorf("repeat X-Cache = %q, want fallback-hit", got)
	}
}

// A forwarded request must always be answered locally, even by a shard
// whose ring says another peer owns the key — one hop maximum.
func TestClusterForwardedRequestStaysLocal(t *testing.T) {
	servers, urls := startCluster(t, 2, nil)
	canonical, _ := json.Marshal(&AnalyzeRequest{Source: shiftSrc})
	key := Key("analyze", pathmatrix.EngineVersion, string(canonical))
	// Pick the NON-owner and send it a pre-forwarded request.
	idx := 0
	if servers[0].cluster.ring.Owner(key) == servers[0].cluster.self {
		idx = 1
	}
	req, _ := http.NewRequest(http.MethodPost, urls[idx]+"/v1/analyze", bytes.NewReader(canonical))
	req.Header.Set("X-Adds-Forwarded", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded request = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("forwarded request X-Cache = %q, want miss (local compute)", got)
	}
	if servers[idx].Metrics().ClusterForwards() != 0 {
		t.Error("forwarded request made a second hop")
	}
}

func TestCachePeekEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Miss before anything is cached.
	resp, err := http.Get(ts.URL + "/v1/cache/0000000000000000000000000000000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("peek of empty cache = %d, want 404", resp.StatusCode)
	}

	// Populate, then peek the exact key.
	aresp, want := postAnalyze(t, ts.URL, shiftSrc)
	if aresp.StatusCode != 200 {
		t.Fatalf("analyze = %d", aresp.StatusCode)
	}
	canonical, _ := json.Marshal(&AnalyzeRequest{Source: shiftSrc})
	key := Key("analyze", pathmatrix.EngineVersion, string(canonical))
	resp, err = http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("peek = %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("peek body differs from analyze body:\npeek:    %s\nanalyze: %s", got, want)
	}
	if s.metrics.peekHits.Load() != 1 || s.metrics.peekMisses.Load() != 1 {
		t.Errorf("peek counters = %d hits %d misses, want 1/1",
			s.metrics.peekHits.Load(), s.metrics.peekMisses.Load())
	}
}

func TestReadyzStates(t *testing.T) {
	// Plain server: ready.
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("readyz = %d %s", resp.StatusCode, body)
	}

	// Misconfigured ring (self not in peers): alive but not ready.
	_, tsBad := newTestServer(t, Config{Peers: []string{"a:1", "b:2"}, Self: "c:3"})
	resp, err = http.Get(tsBad.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "not in the peer list") {
		t.Fatalf("misconfigured readyz = %d %s, want 503 naming the config error", resp.StatusCode, body)
	}
	resp, err = http.Get(tsBad.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz of misconfigured server = %d, want 200 (liveness)", resp.StatusCode)
	}
}

// While the admission queue is saturated, /healthz must stay 200 (alive)
// and /readyz must flip to 503 — the split this PR exists to fix.
func TestReadyzQueueSaturation(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.computeHook = func(string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			select {
			case <-release:
				return map[string]string{"ok": "true"}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	defer close(release)

	// Fill the 1 worker slot + 1 queue ticket with distinct keys. Errors
	// stay off this goroutine: t.Fatal must not be called from these.
	for i := 0; i < 2; i++ {
		go func(i int) {
			body, _ := json.Marshal(map[string]string{"source": fmt.Sprintf("void f%d() { }", i)})
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !s.pool.saturated() {
		if time.Now().After(deadline) {
			t.Fatal("pool never saturated")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "admission queue full") {
		t.Fatalf("saturated readyz = %d %s, want 503 admission queue full", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("saturated healthz = %d, want 200 (liveness only)", resp.StatusCode)
	}
}

// Cluster metrics must appear on the scrape.
func TestClusterMetricsExposition(t *testing.T) {
	_, urls := startCluster(t, 2, nil)
	for _, u := range urls {
		postAnalyze(t, u, shiftSrc)
	}
	resp, err := http.Get(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"addsd_cluster_peer_hit_total",
		"addsd_cluster_forwarded_total",
		"addsd_cluster_fallback_total",
		"addsd_cluster_peek_hit_total",
		"addsd_cluster_ring_peers 2",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
