package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/core/pathmatrix"
)

// handleBatch serves POST /v1/batch: many analyze requests in one call,
// answered as NDJSON — one BatchItemResult line per item, flushed as soon
// as it is ready, always in item order. Items run concurrently, bounded by
// Config.BatchParallel so one batch cannot monopolize the admission queue;
// each item then passes through exactly the same resolve path as a
// standalone /v1/analyze (cluster routing, peer peek, cache, singleflight,
// pool admission), so per-item failures come back as per-item error
// envelopes — a parse error in item 3 never costs items 0–2 their answers.
//
// The emitted bytes are deterministic for a fixed item list: lines carry no
// cache or shard telemetry, and in-order emission makes the whole response
// byte-identical whether results landed hot, cold, or on another shard.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := s.decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	n := len(req.Items)
	if n == 0 {
		writeError(w, fmt.Errorf("%w: batch has no items", ErrBadRequest))
		return
	}
	if n > s.cfg.MaxBatchItems {
		writeError(w, &TooLargeError{What: "batch items", Size: int64(n), Limit: int64(s.cfg.MaxBatchItems)})
		return
	}
	s.metrics.BatchRequest(n)

	ctx := r.Context()
	forwarded := isForwarded(r)
	lines := make([][]byte, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, s.cfg.BatchParallel)
	for i := range req.Items {
		go func(i int) {
			defer close(done[i])
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return // the emitter stopped with the client; no line needed
			}
			lines[i] = s.batchLine(ctx, i, &req.Items[i], forwarded)
		}(i)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	for i := 0; i < n; i++ {
		select {
		case <-done[i]:
		case <-ctx.Done():
			return
		}
		if lines[i] == nil {
			return
		}
		w.Write(lines[i])     //nolint:errcheck
		w.Write([]byte{'\n'}) //nolint:errcheck
		rc.Flush()            //nolint:errcheck
	}
}

// batchLine resolves one batch item and renders its NDJSON line.
func (s *Server) batchLine(ctx context.Context, idx int, item *AnalyzeRequest, forwarded bool) []byte {
	compute := func(c context.Context) (any, error) { return BuildAnalyze(c, item) }
	if s.computeHook != nil {
		if h := s.computeHook("analyze"); h != nil {
			compute = h
		}
	}
	var res resolved
	if canonical, err := json.Marshal(item); err != nil {
		res = resolved{err: fmt.Errorf("%w: %v", ErrBadRequest, err)}
	} else {
		key := Key("analyze", pathmatrix.EngineVersion, string(canonical))
		res = s.resolve(ctx, "batch", "analyze", key, canonical, forwarded, compute)
	}

	out := BatchItemResult{Index: idx}
	switch {
	case res.err != nil:
		code, env := statusFor(res.err)
		out.Status, out.Error = code, &env
	case res.status >= 400:
		// A peer relayed its error envelope; re-embed it typed so the line
		// shape matches locally-resolved failures byte for byte.
		env := errorBody{}
		if err := json.Unmarshal(bytes.TrimSpace(res.body), &env); err != nil || env.Error == "" {
			env = errorBody{Error: strings.TrimSpace(string(res.body))}
		}
		out.Status, out.Error = res.status, &env
	default:
		out.Status = res.status
		out.Response = json.RawMessage(bytes.TrimRight(res.body, "\n"))
	}
	line, err := json.Marshal(out)
	if err != nil {
		// Marshal of our own structs cannot fail; keep the stream coherent
		// if it somehow does.
		line, _ = json.Marshal(BatchItemResult{Index: idx, Status: http.StatusInternalServerError,
			Error: &errorBody{Error: "encoding batch line: " + err.Error()}})
	}
	return line
}
