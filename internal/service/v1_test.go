package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/adds/wire"
	"repro/internal/core/pathmatrix"
	"repro/internal/obs"
)

// syncBuffer is a concurrency-safe bytes.Buffer for capturing the access
// log (the handler goroutines write while the test reads).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func do(t *testing.T, method, url string, body []byte, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestLegacyAliasesByteIdentical: every legacy path answers with the exact
// bytes of its /v1 spelling (same handlers, same cache keys) plus the
// Deprecation and successor-version Link headers.
func TestLegacyAliasesByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	analyzeBody, _ := json.Marshal(AnalyzeRequest{Source: shiftSrc, Fn: "shift"})
	depgraphBody, _ := json.Marshal(DepgraphRequest{Source: shiftSrc, Fn: "shift"})
	pipelineBody, _ := json.Marshal(PipelineRequest{Source: shiftSrc, Fn: "shift", Loop: 0})

	cases := []struct {
		method, v1, legacy string
		body               []byte
	}{
		{"POST", "/v1/analyze", "/analyze", analyzeBody},
		{"POST", "/v1/depgraph", "/depgraph", depgraphBody},
		{"POST", "/v1/pipeline", "/pipeline", pipelineBody},
		{"GET", "/v1/experiments", "/experiments", nil},
		{"GET", "/v1/experiments/E4", "/experiments/E4", nil},
	}
	for _, tc := range cases {
		t.Run(tc.legacy, func(t *testing.T) {
			v1Resp, v1Data := do(t, tc.method, ts.URL+tc.v1, tc.body, nil)
			lgResp, lgData := do(t, tc.method, ts.URL+tc.legacy, tc.body, nil)
			if v1Resp.StatusCode != http.StatusOK || lgResp.StatusCode != http.StatusOK {
				t.Fatalf("status v1=%d legacy=%d", v1Resp.StatusCode, lgResp.StatusCode)
			}
			if !bytes.Equal(v1Data, lgData) {
				t.Errorf("legacy body differs from /v1 body:\n--- v1 ---\n%s\n--- legacy ---\n%s", v1Data, lgData)
			}
			if got := lgResp.Header.Get("Deprecation"); got != "true" {
				t.Errorf("legacy Deprecation = %q, want true", got)
			}
			wantLink := fmt.Sprintf("<%s>; rel=\"successor-version\"", tc.v1)
			if got := lgResp.Header.Get("Link"); got != wantLink {
				t.Errorf("legacy Link = %q, want %q", got, wantLink)
			}
			if got := v1Resp.Header.Get("Deprecation"); got != "" {
				t.Errorf("/v1 answered with Deprecation = %q", got)
			}
		})
	}
}

// TestRouteErrorsJSON: unrouted requests (no such path, wrong method) get
// the typed JSON envelope, not net/http's plain-text defaults.
func TestRouteErrorsJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := do(t, "GET", ts.URL+"/nope", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var body errorBody
	if err := json.Unmarshal(data, &body); err != nil || body.Error == "" {
		t.Fatalf("404 body is not the error envelope: %v %q", err, data)
	}

	resp, data = do(t, "GET", ts.URL+"/v1/analyze", nil, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Errorf("Allow = %q, want POST listed", allow)
	}
	if err := json.Unmarshal(data, &body); err != nil || !strings.Contains(body.Error, "not allowed") {
		t.Fatalf("405 body is not the error envelope: %v %q", err, data)
	}
}

// TestDepgraphEndpoint: the standalone dependence-graph endpoint answers
// with per-loop graphs and validates its selectors.
func TestDepgraphEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := postJSON(t, ts.URL+"/v1/depgraph", DepgraphRequest{Source: shiftSrc, Fn: "shift"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var dg struct {
		EngineVersion string `json:"engineVersion"`
		Fn            string `json:"fn"`
		Oracle        string `json:"oracle"`
		Loops         []struct {
			Index           int             `json:"index"`
			Dependences     json.RawMessage `json:"dependences"`
			CarriedMemEdges int             `json:"carriedMemEdges"`
		} `json:"loops"`
	}
	if err := json.Unmarshal(data, &dg); err != nil {
		t.Fatal(err)
	}
	if dg.Fn != "shift" || dg.Oracle != "gpm" || len(dg.Loops) != 1 {
		t.Fatalf("fn=%q oracle=%q loops=%d", dg.Fn, dg.Oracle, len(dg.Loops))
	}
	if len(dg.Loops[0].Dependences) == 0 {
		t.Fatal("loop 0 has no dependence graph")
	}

	resp, _ = postJSON(t, ts.URL+"/v1/depgraph", DepgraphRequest{Source: shiftSrc, Fn: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fn status = %d, want 404", resp.StatusCode)
	}
	bad := 7
	resp, _ = postJSON(t, ts.URL+"/v1/depgraph", DepgraphRequest{Source: shiftSrc, Fn: "shift", Loop: &bad})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad loop status = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/depgraph", DepgraphRequest{Source: shiftSrc})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing fn status = %d, want 400", resp.StatusCode)
	}
}

// accessRecords parses the captured JSON access log and returns the records
// for one endpoint.
func accessRecords(t *testing.T, logs *syncBuffer, endpoint string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line is not JSON: %v\n%s", err, line)
		}
		if rec["msg"] == "request" && rec["endpoint"] == endpoint {
			out = append(out, rec)
		}
	}
	return out
}

// waitAccessRecords polls for n access-log records on the endpoint — the
// line is written after the response body, so the client can be ahead of
// the logger for a moment.
func waitAccessRecords(t *testing.T, logs *syncBuffer, endpoint string, n int) []map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := accessRecords(t, logs, endpoint)
		if len(recs) >= n {
			return recs
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d access records for %s:\n%s", len(recs), n, endpoint, logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getTraceJSON polls /debug/trace/{id} until the trace lands in the ring
// (the root span ends after the response is written).
func getTraceJSON(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, data := do(t, "GET", base+"/debug/trace/"+id, nil, nil)
		if resp.StatusCode == http.StatusOK {
			var tr map[string]any
			if err := json.Unmarshal(data, &tr); err != nil {
				t.Fatalf("trace body: %v\n%s", err, data)
			}
			return tr
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared: %d %s", id, resp.StatusCode, data)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// spanNames flattens a TraceJSON span forest into its span names.
func spanNames(tr map[string]any) []string {
	var names []string
	var walk func(any)
	walk = func(v any) {
		sp, ok := v.(map[string]any)
		if !ok {
			return
		}
		if n, ok := sp["name"].(string); ok {
			names = append(names, n)
		}
		if kids, ok := sp["children"].([]any); ok {
			for _, k := range kids {
				walk(k)
			}
		}
	}
	if spans, ok := tr["spans"].([]any); ok {
		for _, s := range spans {
			walk(s)
		}
	}
	return names
}

// TestTraceparentPropagation drives the miss, hit, and coalesced cache
// paths each under its own W3C traceparent and checks that (a) the
// response echoes the trace id, (b) the access log carries the request id
// and trace id as JSON, and (c) /debug/trace/{id} serves the span tree —
// with analysis-phase spans on the leader's trace only.
func TestTraceparentPropagation(t *testing.T) {
	logs := &syncBuffer{}
	lg, err := obs.NewLogger(logs, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Logger: lg})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.computeHook = func(endpoint string) func(ctx context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return map[string]string{"ok": "yes"}, nil
		}
	}
	ts := newHTTPServer(t, s)

	const (
		missID  = "0af7651916cd43dd8448eb211c80319c"
		coalID  = "1bf7651916cd43dd8448eb211c80319c"
		hitID   = "2cf7651916cd43dd8448eb211c80319c"
		someone = "b7ad6b7169203331"
	)
	body, _ := json.Marshal(AnalyzeRequest{Source: shiftSrc, Fn: "shift"})
	tp := func(id string) map[string]string {
		return map[string]string{"traceparent": "00-" + id + "-" + someone + "-01"}
	}

	type result struct {
		resp *http.Response
	}
	leader := make(chan result, 1)
	go func() {
		resp, _ := do(t, "POST", ts+"/v1/analyze", body, tp(missID))
		leader <- result{resp}
	}()
	<-started // the leader's flight is computing; the next request coalesces
	follower := make(chan result, 1)
	go func() {
		resp, _ := do(t, "POST", ts+"/v1/analyze", body, tp(coalID))
		follower <- result{resp}
	}()
	// Wait for the follower to join the flight, then release the compute.
	time.Sleep(50 * time.Millisecond)
	close(release)

	missResp := (<-leader).resp
	coalResp := (<-follower).resp
	if got := missResp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("leader X-Cache = %q, want miss", got)
	}
	if got := coalResp.Header.Get("X-Cache"); got != "coalesced" {
		t.Fatalf("follower X-Cache = %q, want coalesced", got)
	}
	hitResp, _ := do(t, "POST", ts+"/v1/analyze", body, tp(hitID))
	if got := hitResp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("third X-Cache = %q, want hit", got)
	}

	// (a) every response echoes its own trace id and carries a request id.
	for _, tc := range []struct {
		resp *http.Response
		id   string
	}{{missResp, missID}, {coalResp, coalID}, {hitResp, hitID}} {
		if got := tc.resp.Header.Get("Traceparent"); !strings.Contains(got, tc.id) {
			t.Errorf("response traceparent = %q, want trace id %s", got, tc.id)
		}
		if tc.resp.Header.Get("X-Request-Id") == "" {
			t.Error("response has no X-Request-Id")
		}
	}

	// (b) three JSON access-log records, each with requestId + traceId.
	recs := waitAccessRecords(t, logs, "analyze", 3)
	seen := map[string]map[string]any{}
	for _, rec := range recs {
		if rec["requestId"] == "" || rec["requestId"] == nil {
			t.Errorf("access record without requestId: %v", rec)
		}
		if id, ok := rec["traceId"].(string); ok {
			seen[id] = rec
		}
	}
	for _, id := range []string{missID, coalID, hitID} {
		if seen[id] == nil {
			t.Errorf("no access record for trace %s:\n%s", id, logs.String())
		}
	}
	if got := seen[missID]["cache"]; got != "miss" {
		t.Errorf("leader access record cache = %v, want miss", got)
	}
	if got := seen[coalID]["cache"]; got != "coalesced" {
		t.Errorf("follower access record cache = %v, want coalesced", got)
	}

	// (c) the leader's trace has the flight-side spans; the coalesced and
	// hit traces only their own root span.
	missTrace := getTraceJSON(t, ts, missID)
	names := spanNames(missTrace)
	if !contains(names, "http analyze") || !contains(names, "queue") {
		t.Errorf("leader trace spans = %v, want http analyze + queue", names)
	}
	for _, id := range []string{coalID, hitID} {
		tr := getTraceJSON(t, ts, id)
		names := spanNames(tr)
		if contains(names, "queue") {
			t.Errorf("trace %s has flight spans %v; they belong to the leader", id, names)
		}
		if !contains(names, "http analyze") {
			t.Errorf("trace %s is missing its root span: %v", id, names)
		}
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestTraceRealAnalysisSpans runs a real (unhooked) analysis and checks the
// fixpoint phase span — with its iteration count attribute — lands on the
// request trace, and that the text rendering works.
func TestTraceRealAnalysisSpans(t *testing.T) {
	s := New(Config{})
	base := newHTTPServer(t, s)

	const id = "3df7651916cd43dd8448eb211c80319c"
	body, _ := json.Marshal(AnalyzeRequest{Source: shiftSrc, Fn: "shift"})
	resp, data := do(t, "POST", base+"/v1/analyze", body,
		map[string]string{"traceparent": "00-" + id + "-b7ad6b7169203331-01"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, data)
	}
	tr := getTraceJSON(t, base, id)
	names := spanNames(tr)
	for _, want := range []string{"http analyze", "queue", "parse", "typecheck", "shape", "normalize", "fixpoint", "ir"} {
		if !contains(names, want) {
			t.Errorf("trace is missing %q span: %v", want, names)
		}
	}

	resp, text := do(t, "GET", base+"/debug/trace/"+id+"?format=text", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text trace: %d %s", resp.StatusCode, text)
	}
	if !strings.Contains(string(text), "trace "+id) || !strings.Contains(string(text), "fixpoint") {
		t.Errorf("text rendering missing header or fixpoint span:\n%s", text)
	}

	// The fixpoint histogram observed the iteration count.
	mresp, metrics := do(t, "GET", base+"/metrics", nil, nil)
	if mresp.StatusCode != http.StatusOK {
		t.Fatal("metrics scrape failed")
	}
	for _, want := range []string{"addsd_phase_duration_seconds", "addsd_fixpoint_iterations_count", "addsd_engine_matrix_clones_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}

	resp, _ = do(t, "GET", base+"/debug/trace/ffffffffffffffffffffffffffffffff", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", resp.StatusCode)
	}
	resp, _ = do(t, "GET", base+"/debug/trace/zzz", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad trace id status = %d, want 400", resp.StatusCode)
	}
}

// newHTTPServer mounts an already-constructed Server (so tests can install
// hooks first) and returns its base URL.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestReanalyzeIncremental drives the incremental contract end to end over
// HTTP: the first POST /v1/reanalyze computes every function's summary; a
// second POST with exactly one (caller-free) function edited recomputes only
// that one and reuses the rest; and /metrics exposes the engine's summary
// counters for scrapers.
func TestReanalyzeIncremental(t *testing.T) {
	const llType = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};`
	base := llType + `
void drain(TwoWayLL *h) {
    while (h != NULL) {
        h->data = 0;
        h = h->next;
    }
}
void detach(TwoWayLL *h) {
    if (h != NULL) {
        h->next = NULL;
    }
}`
	edited := llType + `
void drain(TwoWayLL *h) {
    while (h != NULL) {
        h->data = 0;
        h = h->next;
    }
}
void detach(TwoWayLL *h) {
    if (h != NULL) {
        h->prev = NULL;
    }
}`
	pathmatrix.ResetSummaryCache()
	_, ts := newTestServer(t, Config{})

	post := func(src string) wire.ReanalyzeResponse {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/reanalyze", ReanalyzeRequest{Source: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, data)
		}
		var out wire.ReanalyzeResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, data)
		}
		return out
	}

	cold := post(base)
	if len(cold.Functions) != 2 {
		t.Fatalf("functions = %v, want drain and detach", cold.Functions)
	}
	if cold.Summaries.Computed != 2 || cold.Summaries.Reused != 0 {
		t.Fatalf("cold run: computed=%d reused=%d, want 2/0", cold.Summaries.Computed, cold.Summaries.Reused)
	}

	warm := post(edited)
	if warm.Summaries.Computed != 1 || warm.Summaries.Reused != 1 {
		t.Fatalf("edited run: computed=%d reused=%d, want 1/1", warm.Summaries.Computed, warm.Summaries.Reused)
	}

	resp, body := do(t, "GET", ts.URL+"/metrics", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	for _, metric := range []string{
		"addsd_engine_summary_computed_total",
		"addsd_engine_summary_reused_total",
		"addsd_engine_summary_entries",
		"addsd_engine_summary_applied_total",
		"addsd_engine_summary_fallbacks_total",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
	if !strings.Contains(string(body), `addsd_requests_total{endpoint="reanalyze",code="200"} 2`) {
		t.Errorf("/metrics missing reanalyze request counter:\n%s", body)
	}
}
