// Package service is the analysis-as-a-service layer behind cmd/addsd: a
// content-addressed result cache with singleflight deduplication, a bounded
// worker pool, HTTP handlers for the whole pipeline (analyze, software
// pipelining, experiments), and a Prometheus-text observability surface.
//
// The cache key is the SHA-256 of the request's canonical encoding plus the
// engine version (pathmatrix.EngineVersion), so a result can never outlive
// the engine that produced it, and two requests differing only in field
// order still share one entry.
package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Outcome classifies how a cache lookup was served.
type Outcome int

// Lookup outcomes. Coalesced requests joined an in-flight computation for
// the same key: the analysis ran once for the whole group.
const (
	Hit Outcome = iota
	Miss
	Coalesced
)

// String names the outcome for the X-Cache response header.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	}
	return "?"
}

// Key derives the content address for the given parts: SHA-256 over the
// parts with NUL separators (parts are length-prefixed by the separator
// discipline only; callers pass canonical encodings, never raw user input
// containing NULs that must stay distinct from separators).
func Key(parts ...string) string {
	h := sha256.New()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// flight is one in-progress computation that later identical requests join.
type flight struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
}

// entry is one cached result.
type entry struct {
	key string
	val []byte
}

// Cache is a content-addressed LRU result cache with singleflight: at most
// one computation per key runs at a time, concurrent identical requests
// wait for it, and successful results are retained up to the entry bound.
// Errors are never cached — a failed computation reruns on the next request.
type Cache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List // front = most recent; values are *entry
	byKey   map[string]*list.Element
	flights map[string]*flight
}

// NewCache returns a cache bounded to max entries (max < 1 keeps 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:     max,
		lru:     list.New(),
		byKey:   map[string]*list.Element{},
		flights: map[string]*flight{},
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// flightWaiters reports how many callers are blocked on the key's in-flight
// computation (tests use it to make the singleflight race deterministic).
func (c *Cache) flightWaiters(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f.waiters
	}
	return 0
}

// Do returns the cached value for key, or computes it with load. Concurrent
// calls with one key share a single load (singleflight); the caller that
// ran it reports Miss, the ones that joined report Coalesced. The returned
// bytes are shared — callers must not mutate them.
func (c *Cache) Do(key string, load func() ([]byte, error)) ([]byte, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		f.waiters++
		c.mu.Unlock()
		<-f.done
		return f.val, Coalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	f.val, f.err = load()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.byKey[key] = c.lru.PushFront(&entry{key: key, val: f.val})
		for c.lru.Len() > c.max {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.byKey, oldest.Value.(*entry).key)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, Miss, f.err
}
