// Package service is the analysis-as-a-service layer behind cmd/addsd: a
// content-addressed result cache with singleflight deduplication, a bounded
// worker pool behind an admission queue, HTTP handlers for the whole
// pipeline (analyze, software pipelining, experiments), and a
// Prometheus-text observability surface.
//
// The cache key is the SHA-256 of the request's canonical encoding plus the
// engine version (pathmatrix.EngineVersion), so a result can never outlive
// the engine that produced it, and two requests differing only in field
// order still share one entry.
package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"
)

// Outcome classifies how a cache lookup was served.
type Outcome int

// Lookup outcomes. Coalesced requests joined an in-flight computation for
// the same key: the analysis ran once for the whole group.
const (
	Hit Outcome = iota
	Miss
	Coalesced
)

// String names the outcome for the X-Cache response header.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	}
	return "?"
}

// Key derives the content address for the given parts: SHA-256 over the
// parts with NUL separators (parts are length-prefixed by the separator
// discipline only; callers pass canonical encodings, never raw user input
// containing NULs that must stay distinct from separators).
func Key(parts ...string) string {
	h := sha256.New()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// flight is one in-progress computation that later identical requests join.
// The computation runs in its own goroutine on a context detached from any
// requester, bounded only by the cache's flight timeout and the reference
// count: refs counts the live waiters (leader included), and the last
// waiter to abandon the flight cancels the computation.
type flight struct {
	done   chan struct{} // closed after val/err are set
	cancel context.CancelFunc
	val    []byte // write-once before close(done)
	err    error  // write-once before close(done)
	refs   int    // guarded by Cache.mu
}

// entry is one cached result.
type entry struct {
	key string
	val []byte
}

// Cache is a content-addressed LRU result cache with singleflight: at most
// one computation per key runs at a time, concurrent identical requests
// wait for it, and successful results are retained up to the entry bound.
// Errors are never cached — a failed computation reruns on the next request.
//
// Flights are cancellation-safe: the computation runs on a detached context
// bounded by FlightTimeout, so one waiter's cancellation (a disconnected
// client) never poisons the result for the others. Each waiter selects on
// its own context and leaves with its own error; only when the last waiter
// leaves is the shared computation cancelled.
type Cache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List // front = most recent; values are *entry
	byKey   map[string]*list.Element
	flights map[string]*flight

	// FlightTimeout bounds each detached computation (zero = unbounded).
	// Set once before the first Do; the server wires it to RequestTimeout.
	FlightTimeout time.Duration
}

// NewCache returns a cache bounded to max entries (max < 1 keeps 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:     max,
		lru:     list.New(),
		byKey:   map[string]*list.Element{},
		flights: map[string]*flight{},
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Peek returns the cached bytes for key without computing anything — the
// cluster cache-peek endpoint (GET /v1/cache/{key}): a peer asking "do you
// already have this?" before deciding to forward the full request. A found
// entry is refreshed in the LRU — a peer's interest is evidence of reuse.
// The returned bytes are shared; callers must not mutate them.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// flightRefs reports how many live waiters (leader included) the key's
// in-flight computation has (tests use it to make races deterministic).
func (c *Cache) flightRefs(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f.refs
	}
	return 0
}

// Do returns the cached value for key, or computes it with load. Concurrent
// calls with one key share a single load (singleflight); the caller that
// started it reports Miss, the ones that joined report Coalesced. The
// returned bytes are shared — callers must not mutate them.
//
// load runs in a detached goroutine on a context bounded by FlightTimeout,
// never by ctx: if this caller's ctx expires, Do returns ctx.Err() for this
// caller only, and the computation keeps serving the remaining waiters.
// When the last waiter leaves, the flight's context is cancelled so a
// cooperative load stops early; a load that ignores cancellation still has
// its successful result cached for the next identical request.
//
// onRefs, when non-nil, observes every waiter join (+1) and leave (-1) of
// the flight this call participates in — the server feeds it the
// per-endpoint flight-refcount gauge.
func (c *Cache) Do(ctx context.Context, key string, load func(context.Context) ([]byte, error), onRefs func(delta int)) ([]byte, Outcome, error) {
	// A dead request must not start (or hold a reference on) a flight.
	if err := ctx.Err(); err != nil {
		return nil, Miss, err
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		f.refs++
		c.mu.Unlock()
		if onRefs != nil {
			onRefs(1)
		}
		return c.wait(ctx, key, f, Coalesced, onRefs)
	}
	fctx, cancel := c.flightContext()
	f := &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
	c.flights[key] = f
	c.mu.Unlock()
	if onRefs != nil {
		onRefs(1)
	}
	go c.runFlight(key, f, fctx, load)
	return c.wait(ctx, key, f, Miss, onRefs)
}

// flightContext builds the detached context one computation runs under.
func (c *Cache) flightContext() (context.Context, context.CancelFunc) {
	if c.FlightTimeout > 0 {
		return context.WithTimeout(context.Background(), c.FlightTimeout)
	}
	return context.WithCancel(context.Background())
}

// runFlight executes one detached computation and publishes its result.
func (c *Cache) runFlight(key string, f *flight, fctx context.Context, load func(context.Context) ([]byte, error)) {
	defer f.cancel() // release the timeout's timer
	val, err := load(fctx)

	c.mu.Lock()
	// The guard matters when every waiter left early: wait() already
	// unlinked this flight so a fresh request could start over, and the
	// key may now map to a successor flight that must not be removed.
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	f.val, f.err = val, err
	if err == nil {
		// An abandoned flight can race a successor for the same key: keep
		// whichever result landed first rather than double-inserting.
		if el, ok := c.byKey[key]; ok {
			c.lru.MoveToFront(el)
		} else {
			c.byKey[key] = c.lru.PushFront(&entry{key: key, val: val})
			for c.lru.Len() > c.max {
				oldest := c.lru.Back()
				c.lru.Remove(oldest)
				delete(c.byKey, oldest.Value.(*entry).key)
			}
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// wait blocks one caller on the flight, selecting on the caller's own
// context: a cancelled waiter gets its own ctx.Err() immediately and the
// flight keeps running for the rest — unless this waiter was the last one,
// in which case it cancels the computation on the way out.
func (c *Cache) wait(ctx context.Context, key string, f *flight, outcome Outcome, onRefs func(delta int)) ([]byte, Outcome, error) {
	select {
	case <-f.done:
		c.mu.Lock()
		f.refs--
		c.mu.Unlock()
		if onRefs != nil {
			onRefs(-1)
		}
		return f.val, outcome, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.refs--
		last := f.refs == 0
		if last && c.flights[key] == f {
			// Unlink now so the next identical request starts a fresh
			// flight instead of joining this dying one.
			delete(c.flights, key)
		}
		c.mu.Unlock()
		if onRefs != nil {
			onRefs(-1)
		}
		if last {
			f.cancel()
		}
		return nil, outcome, ctx.Err()
	}
}
