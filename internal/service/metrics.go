package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alias/smg"
	"repro/internal/core/pathmatrix"
)

// Metrics collects the daemon's counters. Everything is monotone except the
// gauges (inflight, cache entries, pool slots), and rendering is the
// Prometheus text exposition format, so any scraper — or curl — can read it.
type Metrics struct {
	mu         sync.Mutex
	requests   map[[2]string]uint64 // {endpoint, code} -> count
	shedBy     map[string]uint64    // endpoint -> shed count
	flightRefs map[string]int64     // endpoint -> live flight waiters
	phases     map[string]*histogram

	fixpointIters histogram

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	shed      atomic.Uint64

	inflight atomic.Int64
	latNanos atomic.Int64
	latCount atomic.Uint64

	// Cluster counters. The requester side: peek answered from the owner's
	// cache (peerHits), clean peek miss then full forward (forwarded), owner
	// unreachable/shedding so computed locally (fallbacks). The serving
	// side: peeks this process answered (peekHits/peekMisses). ringPeers is
	// a config gauge (0 = single-process).
	peerHits   atomic.Uint64
	peerMisses atomic.Uint64
	forwarded  atomic.Uint64
	fallbacks  atomic.Uint64
	peekHits   atomic.Uint64
	peekMisses atomic.Uint64
	ringPeers  atomic.Int64

	batchRequests atomic.Uint64
	batchItems    atomic.Uint64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	m := &Metrics{
		requests:   map[[2]string]uint64{},
		shedBy:     map[string]uint64{},
		flightRefs: map[string]int64{},
		phases:     map[string]*histogram{},
	}
	m.fixpointIters.bounds = iterBounds
	return m
}

// phaseBounds buckets phase durations (seconds): the pipeline's phases run
// from microseconds (parse) to tens of milliseconds (fixpoints on large
// functions), with the +Inf bucket catching pathological runs.
var phaseBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 5}

// iterBounds buckets fixpoint iteration counts per analysis.
var iterBounds = []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// maxPhaseSeries bounds the phase label set; span names come from a fixed
// in-tree vocabulary, so the cap only guards against an instrumentation bug
// minting names dynamically.
const maxPhaseSeries = 64

// histogram is a fixed-bucket Prometheus histogram (cumulative buckets plus
// sum and count). The zero value needs bounds before first Observe.
type histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

func (h *histogram) observe(v float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(h.bounds)+1)
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// writeProm renders the histogram with cumulative le buckets. labels is the
// rendered label pairs without the le label ("" or `phase="parse"`).
func (h *histogram) writeProm(w io.Writer, name, labels string) {
	set := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		}
		return "{" + labels + "," + extra + "}"
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		if h.counts != nil {
			cum += h.counts[i]
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, set(fmt.Sprintf("le=%q", trimFloat(b))), cum)
	}
	if h.counts != nil {
		cum += h.counts[len(h.bounds)]
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, set(`le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, set(""), h.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, set(""), h.total)
}

// trimFloat renders bucket bounds the Prometheus way (no trailing zeros).
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ObservePhase records one finished pipeline phase (span) duration.
func (m *Metrics) ObservePhase(phase string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.phases[phase]
	if h == nil {
		if len(m.phases) >= maxPhaseSeries {
			return
		}
		h = &histogram{bounds: phaseBounds}
		m.phases[phase] = h
	}
	h.observe(d.Seconds())
}

// ObserveFixpointIters records the iteration count of one fixpoint run.
func (m *Metrics) ObserveFixpointIters(n int) {
	m.mu.Lock()
	m.fixpointIters.observe(float64(n))
	m.mu.Unlock()
}

// PhaseCount reports how many observations a phase histogram holds (tests
// and the smoke job assert phases actually record).
func (m *Metrics) PhaseCount(phase string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.phases[phase]; h != nil {
		return h.total
	}
	return 0
}

// ObserveRequest records one finished request.
func (m *Metrics) ObserveRequest(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	m.requests[[2]string{endpoint, fmt.Sprint(code)}]++
	m.mu.Unlock()
	m.latNanos.Add(int64(d))
	m.latCount.Add(1)
}

// ObserveCache records one cache lookup outcome.
func (m *Metrics) ObserveCache(o Outcome) {
	switch o {
	case Hit:
		m.hits.Add(1)
	case Miss:
		m.misses.Add(1)
	case Coalesced:
		m.coalesced.Add(1)
	}
}

// CacheHits returns the hit counter (tests and the smoke job assert on it).
func (m *Metrics) CacheHits() uint64 { return m.hits.Load() }

// CacheMisses returns the miss counter.
func (m *Metrics) CacheMisses() uint64 { return m.misses.Load() }

// CacheCoalesced returns the singleflight-join counter.
func (m *Metrics) CacheCoalesced() uint64 { return m.coalesced.Load() }

// ObserveShed records one request shed by the admission queue.
func (m *Metrics) ObserveShed(endpoint string) {
	m.shed.Add(1)
	m.mu.Lock()
	m.shedBy[endpoint]++
	m.mu.Unlock()
}

// ShedTotal returns the process-wide shed counter (the overload tests and
// the smoke job assert on it).
func (m *Metrics) ShedTotal() uint64 { return m.shed.Load() }

// FlightRefs moves the endpoint's flight-refcount gauge: +1 when a request
// joins (or starts) a flight, -1 when it leaves. The cache calls it through
// the per-endpoint hook the server installs.
func (m *Metrics) FlightRefs(endpoint string, delta int) {
	m.mu.Lock()
	m.flightRefs[endpoint] += int64(delta)
	m.mu.Unlock()
}

// FlightRefsFor reads the endpoint's flight-refcount gauge (tests use it to
// sequence waiters deterministically and to prove refs drain to zero).
func (m *Metrics) FlightRefsFor(endpoint string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flightRefs[endpoint]
}

// ClusterPeerHit records a request answered from a peer's cache via the
// peek protocol — the cross-process dedup the ring exists for.
func (m *Metrics) ClusterPeerHit() { m.peerHits.Add(1) }

// ClusterPeerHits reads the peer-hit counter (tests and the cluster-smoke
// job assert it grows).
func (m *Metrics) ClusterPeerHits() uint64 { return m.peerHits.Load() }

// ClusterPeerMiss records a clean peek miss (the owner will get the
// forwarded request instead).
func (m *Metrics) ClusterPeerMiss() { m.peerMisses.Add(1) }

// ClusterForwarded records a request proxied in full to its owning shard.
func (m *Metrics) ClusterForwarded() { m.forwarded.Add(1) }

// ClusterForwards reads the forwarded counter.
func (m *Metrics) ClusterForwards() uint64 { return m.forwarded.Load() }

// ClusterFallback records a local computation of a remotely-owned key
// because the owner was unreachable or shedding.
func (m *Metrics) ClusterFallback() { m.fallbacks.Add(1) }

// ClusterFallbacks reads the fallback counter (the dead-peer tests assert
// availability won over partitioning).
func (m *Metrics) ClusterFallbacks() uint64 { return m.fallbacks.Load() }

// ClusterPeekServed records one answered GET /v1/cache/{key}.
func (m *Metrics) ClusterPeekServed(found bool) {
	if found {
		m.peekHits.Add(1)
	} else {
		m.peekMisses.Add(1)
	}
}

// SetRingPeers publishes the configured cluster size (0 = single-process).
func (m *Metrics) SetRingPeers(n int) { m.ringPeers.Store(int64(n)) }

// BatchRequest records one /v1/batch request carrying n items.
func (m *Metrics) BatchRequest(n int) {
	m.batchRequests.Add(1)
	m.batchItems.Add(uint64(n))
}

// RequestStarted/RequestDone maintain the inflight gauge.
func (m *Metrics) RequestStarted() { m.inflight.Add(1) }

// RequestDone decrements the inflight gauge.
func (m *Metrics) RequestDone() { m.inflight.Add(-1) }

// sortedKeys returns the map's keys in sorted order so scrapes are
// deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteProm renders every counter in Prometheus text format. cacheLen and
// the pool/queue gauges are read at scrape time; engine counters come from
// the pathmatrix engine itself.
func (m *Metrics) WriteProm(w io.Writer, cacheLen, poolInUse, poolCap, queued, queueCap int) {
	fmt.Fprintf(w, "# HELP addsd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE addsd_requests_total counter\n")
	m.mu.Lock()
	keys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "addsd_requests_total{endpoint=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE addsd_cache_hits_total counter\n")
	fmt.Fprintf(w, "addsd_cache_hits_total %d\n", m.hits.Load())
	fmt.Fprintf(w, "# TYPE addsd_cache_misses_total counter\n")
	fmt.Fprintf(w, "addsd_cache_misses_total %d\n", m.misses.Load())
	fmt.Fprintf(w, "# TYPE addsd_cache_coalesced_total counter\n")
	fmt.Fprintf(w, "addsd_cache_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(w, "# TYPE addsd_cache_entries gauge\n")
	fmt.Fprintf(w, "addsd_cache_entries %d\n", cacheLen)

	fmt.Fprintf(w, "# HELP addsd_shed_total Requests shed by the admission queue (429).\n")
	fmt.Fprintf(w, "# TYPE addsd_shed_total counter\n")
	fmt.Fprintf(w, "addsd_shed_total %d\n", m.shed.Load())
	m.mu.Lock()
	fmt.Fprintf(w, "# TYPE addsd_endpoint_shed_total counter\n")
	for _, k := range sortedKeys(m.shedBy) {
		fmt.Fprintf(w, "addsd_endpoint_shed_total{endpoint=%q} %d\n", k, m.shedBy[k])
	}
	fmt.Fprintf(w, "# HELP addsd_flight_refs Live waiters per endpoint across in-flight computations.\n")
	fmt.Fprintf(w, "# TYPE addsd_flight_refs gauge\n")
	for _, k := range sortedKeys(m.flightRefs) {
		fmt.Fprintf(w, "addsd_flight_refs{endpoint=%q} %d\n", k, m.flightRefs[k])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP addsd_cluster_peer_hit_total Requests answered from a peer shard's cache (peek protocol).\n")
	fmt.Fprintf(w, "# TYPE addsd_cluster_peer_hit_total counter\n")
	fmt.Fprintf(w, "addsd_cluster_peer_hit_total %d\n", m.peerHits.Load())
	fmt.Fprintf(w, "# TYPE addsd_cluster_peer_miss_total counter\n")
	fmt.Fprintf(w, "addsd_cluster_peer_miss_total %d\n", m.peerMisses.Load())
	fmt.Fprintf(w, "# HELP addsd_cluster_forwarded_total Requests proxied in full to their owning shard.\n")
	fmt.Fprintf(w, "# TYPE addsd_cluster_forwarded_total counter\n")
	fmt.Fprintf(w, "addsd_cluster_forwarded_total %d\n", m.forwarded.Load())
	fmt.Fprintf(w, "# HELP addsd_cluster_fallback_total Remotely-owned keys computed locally because the owner was unreachable or shedding.\n")
	fmt.Fprintf(w, "# TYPE addsd_cluster_fallback_total counter\n")
	fmt.Fprintf(w, "addsd_cluster_fallback_total %d\n", m.fallbacks.Load())
	fmt.Fprintf(w, "# TYPE addsd_cluster_peek_hit_total counter\n")
	fmt.Fprintf(w, "addsd_cluster_peek_hit_total %d\n", m.peekHits.Load())
	fmt.Fprintf(w, "# TYPE addsd_cluster_peek_miss_total counter\n")
	fmt.Fprintf(w, "addsd_cluster_peek_miss_total %d\n", m.peekMisses.Load())
	fmt.Fprintf(w, "# TYPE addsd_cluster_ring_peers gauge\n")
	fmt.Fprintf(w, "addsd_cluster_ring_peers %d\n", m.ringPeers.Load())

	fmt.Fprintf(w, "# TYPE addsd_batch_requests_total counter\n")
	fmt.Fprintf(w, "addsd_batch_requests_total %d\n", m.batchRequests.Load())
	fmt.Fprintf(w, "# TYPE addsd_batch_items_total counter\n")
	fmt.Fprintf(w, "addsd_batch_items_total %d\n", m.batchItems.Load())

	fmt.Fprintf(w, "# TYPE addsd_inflight_requests gauge\n")
	fmt.Fprintf(w, "addsd_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# TYPE addsd_pool_in_use gauge\n")
	fmt.Fprintf(w, "addsd_pool_in_use %d\n", poolInUse)
	fmt.Fprintf(w, "# TYPE addsd_pool_capacity gauge\n")
	fmt.Fprintf(w, "addsd_pool_capacity %d\n", poolCap)
	fmt.Fprintf(w, "# TYPE addsd_queue_depth gauge\n")
	fmt.Fprintf(w, "addsd_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# TYPE addsd_queue_capacity gauge\n")
	fmt.Fprintf(w, "addsd_queue_capacity %d\n", queueCap)

	fmt.Fprintf(w, "# TYPE addsd_request_duration_seconds_sum counter\n")
	fmt.Fprintf(w, "addsd_request_duration_seconds_sum %g\n",
		time.Duration(m.latNanos.Load()).Seconds())
	fmt.Fprintf(w, "# TYPE addsd_request_duration_seconds_count counter\n")
	fmt.Fprintf(w, "addsd_request_duration_seconds_count %d\n", m.latCount.Load())

	m.mu.Lock()
	fmt.Fprintf(w, "# HELP addsd_phase_duration_seconds Time per pipeline phase (span durations).\n")
	fmt.Fprintf(w, "# TYPE addsd_phase_duration_seconds histogram\n")
	for _, phase := range sortedKeys(m.phases) {
		m.phases[phase].writeProm(w, "addsd_phase_duration_seconds", fmt.Sprintf("phase=%q", phase))
	}
	fmt.Fprintf(w, "# HELP addsd_fixpoint_iterations Worklist iterations per path-matrix fixpoint run.\n")
	fmt.Fprintf(w, "# TYPE addsd_fixpoint_iterations histogram\n")
	m.fixpointIters.writeProm(w, "addsd_fixpoint_iterations", "")
	m.mu.Unlock()

	es := pathmatrix.ReadStats()
	fmt.Fprintf(w, "# HELP addsd_engine_analyses_total Completed path-matrix analyses (process-wide).\n")
	fmt.Fprintf(w, "# TYPE addsd_engine_analyses_total counter\n")
	fmt.Fprintf(w, "addsd_engine_analyses_total %d\n", es.Analyses)
	fmt.Fprintf(w, "# TYPE addsd_engine_iterations_total counter\n")
	fmt.Fprintf(w, "addsd_engine_iterations_total %d\n", es.Iterations)
	fmt.Fprintf(w, "# TYPE addsd_engine_widenings_total counter\n")
	fmt.Fprintf(w, "addsd_engine_widenings_total %d\n", es.Widenings)
	fmt.Fprintf(w, "# TYPE addsd_engine_matrix_clones_total counter\n")
	fmt.Fprintf(w, "addsd_engine_matrix_clones_total %d\n", es.Clones)
	fmt.Fprintf(w, "# TYPE addsd_engine_interned_paths gauge\n")
	fmt.Fprintf(w, "addsd_engine_interned_paths %d\n", es.InternedPaths)
	fmt.Fprintf(w, "# HELP addsd_engine_memo_hits_total Transfer-function results served from the dedup memo.\n")
	fmt.Fprintf(w, "# TYPE addsd_engine_memo_hits_total counter\n")
	fmt.Fprintf(w, "addsd_engine_memo_hits_total %d\n", es.MemoHits)
	fmt.Fprintf(w, "# TYPE addsd_engine_memo_misses_total counter\n")
	fmt.Fprintf(w, "addsd_engine_memo_misses_total %d\n", es.MemoMisses)
	fmt.Fprintf(w, "# TYPE addsd_engine_memo_entries gauge\n")
	fmt.Fprintf(w, "addsd_engine_memo_entries %d\n", es.MemoEntries)
	fmt.Fprintf(w, "# TYPE addsd_engine_shared_rows_total counter\n")
	fmt.Fprintf(w, "addsd_engine_shared_rows_total %d\n", es.SharedRows)
	fmt.Fprintf(w, "# TYPE addsd_engine_dedup_rows_total counter\n")
	fmt.Fprintf(w, "addsd_engine_dedup_rows_total %d\n", es.DedupRows)
	fmt.Fprintf(w, "# TYPE addsd_engine_dropped_rows_total counter\n")
	fmt.Fprintf(w, "addsd_engine_dropped_rows_total %d\n", es.DroppedRows)
	fmt.Fprintf(w, "# HELP addsd_engine_summary_computed_total Function summaries computed (content-addressed cache misses).\n")
	fmt.Fprintf(w, "# TYPE addsd_engine_summary_computed_total counter\n")
	fmt.Fprintf(w, "addsd_engine_summary_computed_total %d\n", es.SummaryComputed)
	fmt.Fprintf(w, "# TYPE addsd_engine_summary_reused_total counter\n")
	fmt.Fprintf(w, "addsd_engine_summary_reused_total %d\n", es.SummaryReused)
	fmt.Fprintf(w, "# TYPE addsd_engine_summary_entries gauge\n")
	fmt.Fprintf(w, "addsd_engine_summary_entries %d\n", es.SummaryEntries)
	fmt.Fprintf(w, "# TYPE addsd_engine_summary_applied_total counter\n")
	fmt.Fprintf(w, "addsd_engine_summary_applied_total %d\n", es.SummaryApplied)
	fmt.Fprintf(w, "# TYPE addsd_engine_summary_fallbacks_total counter\n")
	fmt.Fprintf(w, "addsd_engine_summary_fallbacks_total %d\n", es.SummaryFallbacks)

	ss := smg.ReadStats()
	fmt.Fprintf(w, "# HELP addsd_engine_smg_analyses_total Completed SMG-lite analyses (process-wide).\n")
	fmt.Fprintf(w, "# TYPE addsd_engine_smg_analyses_total counter\n")
	fmt.Fprintf(w, "addsd_engine_smg_analyses_total %d\n", ss.Analyses)
	fmt.Fprintf(w, "# TYPE addsd_engine_smg_nodes_total counter\n")
	fmt.Fprintf(w, "addsd_engine_smg_nodes_total %d\n", ss.Nodes)
	fmt.Fprintf(w, "# TYPE addsd_engine_smg_segments_total counter\n")
	fmt.Fprintf(w, "addsd_engine_smg_segments_total %d\n", ss.Segments)
	fmt.Fprintf(w, "# TYPE addsd_engine_smg_materializations_total counter\n")
	fmt.Fprintf(w, "addsd_engine_smg_materializations_total %d\n", ss.Materializations)
}
