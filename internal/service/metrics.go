package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/pathmatrix"
)

// Metrics collects the daemon's counters. Everything is monotone except the
// gauges (inflight, cache entries, pool slots), and rendering is the
// Prometheus text exposition format, so any scraper — or curl — can read it.
type Metrics struct {
	mu         sync.Mutex
	requests   map[[2]string]uint64 // {endpoint, code} -> count
	shedBy     map[string]uint64    // endpoint -> shed count
	flightRefs map[string]int64     // endpoint -> live flight waiters

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	shed      atomic.Uint64

	inflight atomic.Int64
	latNanos atomic.Int64
	latCount atomic.Uint64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:   map[[2]string]uint64{},
		shedBy:     map[string]uint64{},
		flightRefs: map[string]int64{},
	}
}

// ObserveRequest records one finished request.
func (m *Metrics) ObserveRequest(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	m.requests[[2]string{endpoint, fmt.Sprint(code)}]++
	m.mu.Unlock()
	m.latNanos.Add(int64(d))
	m.latCount.Add(1)
}

// ObserveCache records one cache lookup outcome.
func (m *Metrics) ObserveCache(o Outcome) {
	switch o {
	case Hit:
		m.hits.Add(1)
	case Miss:
		m.misses.Add(1)
	case Coalesced:
		m.coalesced.Add(1)
	}
}

// CacheHits returns the hit counter (tests and the smoke job assert on it).
func (m *Metrics) CacheHits() uint64 { return m.hits.Load() }

// CacheMisses returns the miss counter.
func (m *Metrics) CacheMisses() uint64 { return m.misses.Load() }

// CacheCoalesced returns the singleflight-join counter.
func (m *Metrics) CacheCoalesced() uint64 { return m.coalesced.Load() }

// ObserveShed records one request shed by the admission queue.
func (m *Metrics) ObserveShed(endpoint string) {
	m.shed.Add(1)
	m.mu.Lock()
	m.shedBy[endpoint]++
	m.mu.Unlock()
}

// ShedTotal returns the process-wide shed counter (the overload tests and
// the smoke job assert on it).
func (m *Metrics) ShedTotal() uint64 { return m.shed.Load() }

// FlightRefs moves the endpoint's flight-refcount gauge: +1 when a request
// joins (or starts) a flight, -1 when it leaves. The cache calls it through
// the per-endpoint hook the server installs.
func (m *Metrics) FlightRefs(endpoint string, delta int) {
	m.mu.Lock()
	m.flightRefs[endpoint] += int64(delta)
	m.mu.Unlock()
}

// FlightRefsFor reads the endpoint's flight-refcount gauge (tests use it to
// sequence waiters deterministically and to prove refs drain to zero).
func (m *Metrics) FlightRefsFor(endpoint string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flightRefs[endpoint]
}

// RequestStarted/RequestDone maintain the inflight gauge.
func (m *Metrics) RequestStarted() { m.inflight.Add(1) }

// RequestDone decrements the inflight gauge.
func (m *Metrics) RequestDone() { m.inflight.Add(-1) }

// sortedKeys returns the map's keys in sorted order so scrapes are
// deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteProm renders every counter in Prometheus text format. cacheLen and
// the pool/queue gauges are read at scrape time; engine counters come from
// the pathmatrix engine itself.
func (m *Metrics) WriteProm(w io.Writer, cacheLen, poolInUse, poolCap, queued, queueCap int) {
	fmt.Fprintf(w, "# HELP addsd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE addsd_requests_total counter\n")
	m.mu.Lock()
	keys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "addsd_requests_total{endpoint=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE addsd_cache_hits_total counter\n")
	fmt.Fprintf(w, "addsd_cache_hits_total %d\n", m.hits.Load())
	fmt.Fprintf(w, "# TYPE addsd_cache_misses_total counter\n")
	fmt.Fprintf(w, "addsd_cache_misses_total %d\n", m.misses.Load())
	fmt.Fprintf(w, "# TYPE addsd_cache_coalesced_total counter\n")
	fmt.Fprintf(w, "addsd_cache_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(w, "# TYPE addsd_cache_entries gauge\n")
	fmt.Fprintf(w, "addsd_cache_entries %d\n", cacheLen)

	fmt.Fprintf(w, "# HELP addsd_shed_total Requests shed by the admission queue (429).\n")
	fmt.Fprintf(w, "# TYPE addsd_shed_total counter\n")
	fmt.Fprintf(w, "addsd_shed_total %d\n", m.shed.Load())
	m.mu.Lock()
	fmt.Fprintf(w, "# TYPE addsd_endpoint_shed_total counter\n")
	for _, k := range sortedKeys(m.shedBy) {
		fmt.Fprintf(w, "addsd_endpoint_shed_total{endpoint=%q} %d\n", k, m.shedBy[k])
	}
	fmt.Fprintf(w, "# HELP addsd_flight_refs Live waiters per endpoint across in-flight computations.\n")
	fmt.Fprintf(w, "# TYPE addsd_flight_refs gauge\n")
	for _, k := range sortedKeys(m.flightRefs) {
		fmt.Fprintf(w, "addsd_flight_refs{endpoint=%q} %d\n", k, m.flightRefs[k])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE addsd_inflight_requests gauge\n")
	fmt.Fprintf(w, "addsd_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# TYPE addsd_pool_in_use gauge\n")
	fmt.Fprintf(w, "addsd_pool_in_use %d\n", poolInUse)
	fmt.Fprintf(w, "# TYPE addsd_pool_capacity gauge\n")
	fmt.Fprintf(w, "addsd_pool_capacity %d\n", poolCap)
	fmt.Fprintf(w, "# TYPE addsd_queue_depth gauge\n")
	fmt.Fprintf(w, "addsd_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# TYPE addsd_queue_capacity gauge\n")
	fmt.Fprintf(w, "addsd_queue_capacity %d\n", queueCap)

	fmt.Fprintf(w, "# TYPE addsd_request_duration_seconds_sum counter\n")
	fmt.Fprintf(w, "addsd_request_duration_seconds_sum %g\n",
		time.Duration(m.latNanos.Load()).Seconds())
	fmt.Fprintf(w, "# TYPE addsd_request_duration_seconds_count counter\n")
	fmt.Fprintf(w, "addsd_request_duration_seconds_count %d\n", m.latCount.Load())

	es := pathmatrix.ReadStats()
	fmt.Fprintf(w, "# HELP addsd_engine_analyses_total Completed path-matrix analyses (process-wide).\n")
	fmt.Fprintf(w, "# TYPE addsd_engine_analyses_total counter\n")
	fmt.Fprintf(w, "addsd_engine_analyses_total %d\n", es.Analyses)
	fmt.Fprintf(w, "# TYPE addsd_engine_iterations_total counter\n")
	fmt.Fprintf(w, "addsd_engine_iterations_total %d\n", es.Iterations)
	fmt.Fprintf(w, "# TYPE addsd_engine_widenings_total counter\n")
	fmt.Fprintf(w, "addsd_engine_widenings_total %d\n", es.Widenings)
	fmt.Fprintf(w, "# TYPE addsd_engine_interned_paths gauge\n")
	fmt.Fprintf(w, "addsd_engine_interned_paths %d\n", es.InternedPaths)
}
