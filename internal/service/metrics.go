package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/pathmatrix"
)

// Metrics collects the daemon's counters. Everything is monotone except the
// gauges (inflight, cache entries, pool slots), and rendering is the
// Prometheus text exposition format, so any scraper — or curl — can read it.
type Metrics struct {
	mu       sync.Mutex
	requests map[[2]string]uint64 // {endpoint, code} -> count

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64

	inflight atomic.Int64
	latNanos atomic.Int64
	latCount atomic.Uint64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{requests: map[[2]string]uint64{}}
}

// ObserveRequest records one finished request.
func (m *Metrics) ObserveRequest(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	m.requests[[2]string{endpoint, fmt.Sprint(code)}]++
	m.mu.Unlock()
	m.latNanos.Add(int64(d))
	m.latCount.Add(1)
}

// ObserveCache records one cache lookup outcome.
func (m *Metrics) ObserveCache(o Outcome) {
	switch o {
	case Hit:
		m.hits.Add(1)
	case Miss:
		m.misses.Add(1)
	case Coalesced:
		m.coalesced.Add(1)
	}
}

// CacheHits returns the hit counter (tests and the smoke job assert on it).
func (m *Metrics) CacheHits() uint64 { return m.hits.Load() }

// CacheMisses returns the miss counter.
func (m *Metrics) CacheMisses() uint64 { return m.misses.Load() }

// CacheCoalesced returns the singleflight-join counter.
func (m *Metrics) CacheCoalesced() uint64 { return m.coalesced.Load() }

// RequestStarted/RequestDone maintain the inflight gauge.
func (m *Metrics) RequestStarted() { m.inflight.Add(1) }

// RequestDone decrements the inflight gauge.
func (m *Metrics) RequestDone() { m.inflight.Add(-1) }

// WriteProm renders every counter in Prometheus text format. cacheLen and
// poolInUse are read at scrape time; engine counters come from the
// pathmatrix engine itself.
func (m *Metrics) WriteProm(w io.Writer, cacheLen, poolInUse, poolCap int) {
	fmt.Fprintf(w, "# HELP addsd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE addsd_requests_total counter\n")
	m.mu.Lock()
	keys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "addsd_requests_total{endpoint=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE addsd_cache_hits_total counter\n")
	fmt.Fprintf(w, "addsd_cache_hits_total %d\n", m.hits.Load())
	fmt.Fprintf(w, "# TYPE addsd_cache_misses_total counter\n")
	fmt.Fprintf(w, "addsd_cache_misses_total %d\n", m.misses.Load())
	fmt.Fprintf(w, "# TYPE addsd_cache_coalesced_total counter\n")
	fmt.Fprintf(w, "addsd_cache_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(w, "# TYPE addsd_cache_entries gauge\n")
	fmt.Fprintf(w, "addsd_cache_entries %d\n", cacheLen)

	fmt.Fprintf(w, "# TYPE addsd_inflight_requests gauge\n")
	fmt.Fprintf(w, "addsd_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# TYPE addsd_pool_in_use gauge\n")
	fmt.Fprintf(w, "addsd_pool_in_use %d\n", poolInUse)
	fmt.Fprintf(w, "# TYPE addsd_pool_capacity gauge\n")
	fmt.Fprintf(w, "addsd_pool_capacity %d\n", poolCap)

	fmt.Fprintf(w, "# TYPE addsd_request_duration_seconds_sum counter\n")
	fmt.Fprintf(w, "addsd_request_duration_seconds_sum %g\n",
		time.Duration(m.latNanos.Load()).Seconds())
	fmt.Fprintf(w, "# TYPE addsd_request_duration_seconds_count counter\n")
	fmt.Fprintf(w, "addsd_request_duration_seconds_count %d\n", m.latCount.Load())

	es := pathmatrix.ReadStats()
	fmt.Fprintf(w, "# HELP addsd_engine_analyses_total Completed path-matrix analyses (process-wide).\n")
	fmt.Fprintf(w, "# TYPE addsd_engine_analyses_total counter\n")
	fmt.Fprintf(w, "addsd_engine_analyses_total %d\n", es.Analyses)
	fmt.Fprintf(w, "# TYPE addsd_engine_iterations_total counter\n")
	fmt.Fprintf(w, "addsd_engine_iterations_total %d\n", es.Iterations)
	fmt.Fprintf(w, "# TYPE addsd_engine_widenings_total counter\n")
	fmt.Fprintf(w, "addsd_engine_widenings_total %d\n", es.Widenings)
	fmt.Fprintf(w, "# TYPE addsd_engine_interned_paths gauge\n")
	fmt.Fprintf(w, "addsd_engine_interned_paths %d\n", es.InternedPaths)
}
