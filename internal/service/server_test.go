package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core/pathmatrix"
)

const shiftSrc = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
`

// Mirror structs for decoding responses in tests.
type matrixT struct {
	Vars  []string `json:"vars"`
	Cells []struct {
		P    string `json:"p"`
		Q    string `json:"q"`
		Rels []struct {
			Kind    string `json:"kind"`
			Certain bool   `json:"certain"`
			Path    string `json:"path"`
		} `json:"rels"`
	} `json:"cells"`
	Valid bool `json:"valid"`
}

type analyzeRespT struct {
	EngineVersion string `json:"engineVersion"`
	Functions     []struct {
		Name     string  `json:"name"`
		Loops    int     `json:"loops"`
		Exit     matrixT `json:"exitMatrix"`
		LoopData []struct {
			Index           int             `json:"index"`
			Matrix          matrixT         `json:"matrix"`
			Dependences     json.RawMessage `json:"dependences"`
			CarriedMemEdges int             `json:"carriedMemEdges"`
		} `json:"loopResults"`
		Validation struct {
			ValidEverywhere bool     `json:"validEverywhere"`
			Intervals       []string `json:"intervals"`
		} `json:"validation"`
		Oracles []struct {
			Oracle          string `json:"oracle"`
			Loop            int    `json:"loop"`
			CarriedMemEdges int    `json:"carriedMemEdges"`
		} `json:"oracleComparison"`
	} `json:"functions"`
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestAnalyzeHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: shiftSrc, Fn: "shift"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	var out analyzeRespT
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, data)
	}
	if out.EngineVersion != pathmatrix.EngineVersion {
		t.Errorf("engineVersion = %q, want %q", out.EngineVersion, pathmatrix.EngineVersion)
	}
	if len(out.Functions) != 1 || out.Functions[0].Name != "shift" {
		t.Fatalf("functions = %+v", out.Functions)
	}
	fn := out.Functions[0]
	if fn.Loops != 1 || len(fn.LoopData) != 1 {
		t.Fatalf("loops = %d, loopResults = %d", fn.Loops, len(fn.LoopData))
	}
	// The paper's fixed-point entry: PM(hd, p) = next+.
	found := false
	for _, c := range fn.LoopData[0].Matrix.Cells {
		if c.P == "hd" && c.Q == "p" {
			for _, r := range c.Rels {
				if r.Kind == "path" && r.Path == "next+" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("PM(hd, p) = next+ missing from loop matrix")
	}
	if !fn.Validation.ValidEverywhere {
		t.Errorf("shift should validate everywhere")
	}
	// GPM removes every carried memory dependence; conservative keeps some.
	byOracle := map[string]int{}
	for _, oc := range fn.Oracles {
		byOracle[oc.Oracle] = oc.CarriedMemEdges
	}
	if byOracle["gpm"] != 0 {
		t.Errorf("gpm carried mem edges = %d, want 0", byOracle["gpm"])
	}
	if byOracle["conservative"] == 0 {
		t.Errorf("conservative carried mem edges = 0, want > 0")
	}
}

func TestAnalyzeAllFunctionsSourceOrder(t *testing.T) {
	src := shiftSrc + `
void initlist(TwoWayLL *p) {
    while (p != NULL) {
        p->data = 0;
        p = p->next;
    }
}
`
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var out analyzeRespT
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Functions) != 2 || out.Functions[0].Name != "shift" || out.Functions[1].Name != "initlist" {
		t.Fatalf("functions out of source order: %+v", out.Functions)
	}
}

func TestAnalyzeMalformedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestAnalyzeUnknownFieldRejected: a typoed key must be a loud 400 naming
// the field, never a silent fall-through to the default oracle.
func TestAnalyzeUnknownFieldRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/analyze",
		map[string]string{"source": shiftSrc, "orcale": "classic"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, data)
	}
	var body struct {
		Error string `json:"error"`
		Field string `json:"field"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body.Field != "orcale" {
		t.Errorf("field = %q, want the offending %q; error %q", body.Field, "orcale", body.Error)
	}
	if !strings.Contains(body.Error, "orcale") {
		t.Errorf("error %q does not name the field", body.Error)
	}
}

func TestAnalyzeUnknownFunction(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: shiftSrc, Fn: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404; body %s", resp.StatusCode, data)
	}
}

func TestAnalyzeSourceErrorHasPosition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: "void f() { x = ; }"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", resp.StatusCode, data)
	}
	var body struct {
		Error string `json:"error"`
		Line  int    `json:"line"`
		Col   int    `json:"col"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body.Line == 0 || body.Error == "" {
		t.Errorf("source error missing position: %+v", body)
	}
}

func TestAnalyzeUnknownOracle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: shiftSrc, Oracle: "psychic"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, data)
	}
}

func TestAnalyzeTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: shiftSrc, Fn: "shift"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, data)
	}
}

func TestAnalyzeCancelledContext(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, _ := json.Marshal(AnalyzeRequest{Source: shiftSrc, Fn: "shift"})
	req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d; body %s", rec.Code, StatusClientClosedRequest, rec.Body)
	}
}

func TestAnalyzeCacheHitOnRepeat(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{Source: shiftSrc, Fn: "shift"}
	resp1, data1 := postJSON(t, ts.URL+"/v1/analyze", req)
	resp2, data2 := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("statuses = %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(data1, data2) {
		t.Errorf("cached response differs from computed response")
	}
	if h := s.Metrics().CacheHits(); h != 1 {
		t.Errorf("cache hits = %d, want 1", h)
	}
	if m := s.Metrics().CacheMisses(); m != 1 {
		t.Errorf("cache misses = %d, want 1", m)
	}
}

// TestAnalyzeConcurrentIdenticalRequests drives N identical requests
// through the HTTP layer at once: whatever mix of coalesced waits and cache
// hits the schedule produces, the analysis itself must run exactly once
// (exactly one miss).
func TestAnalyzeConcurrentIdenticalRequests(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, Config{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: shiftSrc})
			if resp.StatusCode != 200 {
				t.Errorf("status = %d, body %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	if m := s.Metrics().CacheMisses(); m != 1 {
		t.Errorf("cache misses = %d, want 1 (analysis must run once)", m)
	}
	total := s.Metrics().CacheMisses() + s.Metrics().CacheHits() + s.Metrics().CacheCoalesced()
	if total != n {
		t.Errorf("outcomes = %d, want %d", total, n)
	}
}

func TestPipelineHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/pipeline",
		PipelineRequest{Source: shiftSrc, Fn: "shift", Loop: 0, Width: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var out struct {
		Info struct {
			II        int     `json:"ii"`
			Theoretic float64 `json:"theoreticalSpeedup"`
			OK        bool    `json:"ok"`
		} `json:"info"`
		VLIW string `json:"vliw"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Info.OK || out.Info.Theoretic != 5.0 {
		t.Errorf("info = %+v, want ok with theoretical speedup 5", out.Info)
	}
	if !strings.Contains(out.VLIW, "kernel") {
		t.Errorf("vliw missing kernel:\n%s", out.VLIW)
	}
}

func TestPipelineNoSuchLoop(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/pipeline",
		PipelineRequest{Source: shiftSrc, Fn: "shift", Loop: 7})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404; body %s", resp.StatusCode, data)
	}
}

func TestPipelineBadWidth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/pipeline",
		PipelineRequest{Source: shiftSrc, Fn: "shift", Width: -3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, data)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var defs []ExperimentDef
	if err := json.NewDecoder(resp.Body).Decode(&defs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(defs) != 10 || defs[0].ID != "E1" {
		t.Fatalf("defs = %+v", defs)
	}

	resp, err = http.Get(ts.URL + "/v1/experiments/E4")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		ID      string     `json:"id"`
		Rows    [][]string `json:"rows"`
		Figures []string   `json:"figures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.ID != "E4" || len(rep.Figures) == 0 {
		t.Fatalf("report = %+v", rep)
	}

	resp, err = http.Get(ts.URL + "/v1/experiments/E99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment status = %d, want 404", resp.StatusCode)
	}
}

// TestOracleListPinned pins GET /v1/oracles byte-for-byte: the rows come
// from the registry in rank order, so this golden is the contract that new
// oracles append (never reorder) and existing descriptions hold still.
func TestOracleListPinned(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/oracles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"name":"gpm","description":"general path matrix analysis with ADDS declarations (the paper's analysis; default)","acceptsK":false},` +
		`{"name":"classic","description":"path matrix analysis with the ADDS declarations stripped","acceptsK":false},` +
		`{"name":"conservative","description":"worst-case baseline: same-type pointers may always alias","acceptsK":false},` +
		`{"name":"klimit","description":"k-limited storage graphs (Jones & Muchnick); -k bounds per-site materialization","acceptsK":true},` +
		`{"name":"smg","description":"SMG-lite symbolic memory graphs (Predator-style segments with materialization)","acceptsK":false}]` + "\n"
	if string(data) != want {
		t.Errorf("/v1/oracles body drifted:\n got %s\nwant %s", data, want)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["engine"] != pathmatrix.EngineVersion {
		t.Fatalf("body = %v", body)
	}
}

func TestMetricsScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{Source: shiftSrc, Fn: "shift"}
	postJSON(t, ts.URL+"/v1/analyze", req)
	postJSON(t, ts.URL+"/v1/analyze", req)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"addsd_requests_total{endpoint=\"analyze\",code=\"200\"} 2",
		"addsd_cache_hits_total 1",
		"addsd_cache_misses_total 1",
		"addsd_cache_entries 1",
		"addsd_inflight_requests",
		"addsd_request_duration_seconds_count 2",
		"addsd_engine_analyses_total",
		"addsd_engine_smg_analyses_total",
		"addsd_engine_smg_nodes_total",
		"addsd_engine_smg_segments_total",
		"addsd_engine_smg_materializations_total",
		"addsd_pool_capacity",
		"addsd_shed_total 0",
		"addsd_queue_depth 0",
		"addsd_queue_capacity",
		"addsd_flight_refs{endpoint=\"analyze\"} 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestPprofLive(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
}

// TestStatusWriterFlushPassthrough: the metrics middleware must not
// swallow http.Flusher — streaming endpoints (pprof trace) depend on it.
func TestStatusWriterFlushPassthrough(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, code: http.StatusOK}
	var _ http.Flusher = sw
	sw.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if sw.Unwrap() != http.ResponseWriter(rec) {
		t.Error("Unwrap must expose the underlying writer for ResponseController")
	}
	// And the stdlib's discovery path works end to end.
	rec2 := httptest.NewRecorder()
	sw2 := &statusWriter{ResponseWriter: rec2, code: http.StatusOK}
	if err := http.NewResponseController(sw2).Flush(); err != nil {
		t.Errorf("ResponseController.Flush = %v", err)
	}
	if !rec2.Flushed {
		t.Error("ResponseController flush did not reach the underlying writer")
	}
}

func TestEndpointLabelBounded(t *testing.T) {
	cases := map[string]string{
		"/v1/analyze":        "analyze",
		"/v1/pipeline":       "pipeline",
		"/v1/experiments":    "experiments",
		"/v1/experiments/E4": "experiments",
		"/v1/oracles":        "oracles",
		"/healthz":           "healthz",
		"/metrics":           "metrics",
		"/debug/pprof/heap":  "pprof",
		"/anything/else":     "other",
	}
	for path, want := range cases {
		if got := endpointLabel(path); got != want {
			t.Errorf("endpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
