package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func postBatch(t *testing.T, base string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

func batchBody(t *testing.T, sources ...string) []byte {
	t.Helper()
	req := BatchRequest{}
	for _, s := range sources {
		req.Items = append(req.Items, AnalyzeRequest{Source: s})
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A batch mixing good and bad programs streams one NDJSON line per item,
// in item order, with per-item error envelopes — a parse error in the
// middle never costs the other items their answers.
func TestBatchMixedResults(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := batchBody(t, shiftSrc, "not a program {", shiftSrc+"\nvoid extra(TwoWayLL *q) { q = NULL; }\n")
	resp, out := postBatch(t, ts.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("batch = %d %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := strings.Split(strings.TrimSuffix(string(out), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("batch produced %d lines, want 3:\n%s", len(lines), out)
	}
	wantStatus := []int{200, 422, 200}
	for i, line := range lines {
		var res BatchItemResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if res.Index != i {
			t.Errorf("line %d has index %d (must stream in item order)", i, res.Index)
		}
		if res.Status != wantStatus[i] {
			t.Errorf("item %d status = %d, want %d", i, res.Status, wantStatus[i])
		}
		if wantStatus[i] == 200 {
			if res.Error != nil || !bytes.Contains(res.Response, []byte("engineVersion")) {
				t.Errorf("item %d: want a response payload, got error %v", i, res.Error)
			}
		} else {
			if res.Error == nil || res.Error.Error == "" {
				t.Errorf("item %d: want an error envelope, got %s", i, line)
			}
			if res.Error != nil && res.Error.Line == 0 {
				t.Errorf("item %d: parse-error envelope missing source position: %s", i, line)
			}
		}
	}
}

// The same batch must produce byte-identical NDJSON however warm the cache
// is, and a batch item must answer byte-identically to the standalone
// /v1/analyze for the same request.
func TestBatchDeterministicBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := batchBody(t, shiftSrc, "garbage {", shiftSrc)

	_, first := postBatch(t, ts.URL, body)
	_, second := postBatch(t, ts.URL, body) // all cache hits now
	if !bytes.Equal(first, second) {
		t.Fatalf("batch bytes changed between cold and warm runs:\ncold: %s\nwarm: %s", first, second)
	}

	resp, single := postAnalyze(t, ts.URL, shiftSrc)
	if resp.StatusCode != 200 {
		t.Fatal("standalone analyze failed")
	}
	var res BatchItemResult
	if err := json.Unmarshal([]byte(strings.SplitN(string(first), "\n", 2)[0]), &res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Response, bytes.TrimRight(single, "\n")) {
		t.Error("batch item payload differs from standalone /v1/analyze")
	}
}

// Batch items route through the cluster exactly like standalone requests:
// a 3-shard cluster answers the same batch byte-identically to one process.
func TestBatchAcrossCluster(t *testing.T) {
	_, single := newTestServer(t, Config{})
	_, urls := startCluster(t, 3, nil)

	body := batchBody(t, shiftSrc, shiftSrc+"\nvoid touch(TwoWayLL *q) { q = NULL; }\n", "broken {")
	_, want := postBatch(t, single.URL, body)
	for round := 0; round < 2; round++ {
		for ni, u := range urls {
			_, got := postBatch(t, u, body)
			if !bytes.Equal(got, want) {
				t.Fatalf("node %d round %d: batch differs from single process\ncluster: %s\nsingle:  %s",
					ni, round, got, want)
			}
		}
	}
}

func TestBatchRejectsEmptyAndOversized(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2})

	resp, out := postBatch(t, ts.URL, []byte(`{"items":[]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch = %d %s, want 400", resp.StatusCode, out)
	}

	resp, out = postBatch(t, ts.URL, batchBody(t, "a", "b", "c"))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch = %d %s, want 413", resp.StatusCode, out)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(out, &env); err != nil || !strings.Contains(env.Error, "batch items") {
		t.Errorf("413 envelope = %s, want typed TooLargeError naming batch items", out)
	}
}

// Oversized bodies are rejected with 413 + the typed envelope before the
// JSON decoder runs, on batch and single-program endpoints alike.
func TestMaxBodyBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})

	big := strings.Repeat("x", 300)
	req, _ := json.Marshal(map[string]string{"source": big})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized analyze body = %d %s, want 413", resp.StatusCode, out)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(out, &env); err != nil || !strings.Contains(env.Error, "request too large") {
		t.Errorf("413 envelope = %s, want typed TooLargeError", out)
	}

	resp, out = postBatch(t, ts.URL, append([]byte(`{"items":[{"source":"`), append([]byte(big), []byte(`"}]}`)...)...))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch body = %d %s, want 413", resp.StatusCode, out)
	}
}

// Within one batch, duplicate items coalesce onto one computation via the
// regular singleflight; the lines still come back per item.
func TestBatchDuplicateItemsShareOneCompute(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := batchBody(t, shiftSrc, shiftSrc, shiftSrc, shiftSrc)
	resp, out := postBatch(t, ts.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	if n := strings.Count(string(out), "\n"); n != 4 {
		t.Fatalf("lines = %d, want 4", n)
	}
	m := s.Metrics()
	if m.CacheMisses() != 1 {
		t.Errorf("misses = %d, want exactly 1 (duplicates must coalesce or hit)", m.CacheMisses())
	}
	if got := m.CacheHits() + m.CacheCoalesced(); got != 3 {
		t.Errorf("hits+coalesced = %d, want 3", got)
	}
}
