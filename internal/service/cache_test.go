package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// doBg is the no-frills Do call most tests want: background context, no
// refcount observer.
func doBg(c *Cache, key string, load func() ([]byte, error)) ([]byte, Outcome, error) {
	return c.Do(context.Background(), key, func(context.Context) ([]byte, error) {
		return load()
	}, nil)
}

func TestCacheHitSecondLookup(t *testing.T) {
	c := NewCache(4)
	calls := 0
	load := func() ([]byte, error) { calls++; return []byte("result"), nil }

	v, out, err := doBg(c, "k", load)
	if err != nil || string(v) != "result" || out != Miss {
		t.Fatalf("first Do = (%q, %v, %v), want (result, miss, nil)", v, out, err)
	}
	v, out, err = doBg(c, "k", load)
	if err != nil || string(v) != "result" || out != Hit {
		t.Fatalf("second Do = (%q, %v, %v), want (result, hit, nil)", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("loader ran %d times, want 1", calls)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	mk := func(s string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(s), nil }
	}
	doBg(c, "a", mk("A"))
	doBg(c, "b", mk("B"))
	doBg(c, "a", mk("A2")) // refresh a's recency: returns cached "A"
	doBg(c, "c", mk("C"))  // evicts b, the least recently used
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, out, _ := doBg(c, "a", mk("A3")); out != Hit {
		t.Errorf("a evicted, want retained")
	}
	if _, out, _ := doBg(c, "b", mk("B2")); out != Miss {
		t.Errorf("b retained, want evicted")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	calls := 0
	boom := errors.New("boom")
	load := func() ([]byte, error) { calls++; return nil, boom }
	if _, _, err := doBg(c, "k", load); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := doBg(c, "k", load); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("loader ran %d times, want 2 (errors must not be cached)", calls)
	}
}

// TestCacheSingleflight proves N concurrent identical requests run the
// computation once: the loader blocks until every goroutine holds a flight
// reference, so the schedule cannot accidentally serialize.
func TestCacheSingleflight(t *testing.T) {
	const n = 8
	c := NewCache(4)
	var calls atomic.Int32
	release := make(chan struct{})
	load := func() ([]byte, error) {
		calls.Add(1)
		<-release
		return []byte("once"), nil
	}

	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := doBg(c, "k", load)
			if err != nil || string(v) != "once" {
				t.Errorf("Do = (%q, %v), want (once, nil)", v, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Wait until all n goroutines hold a reference on the flight, then let
	// the single loader finish.
	waitForRefs(t, c, "k", n)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times for %d concurrent requests, want 1", got, n)
	}
	misses, coalesced := 0, 0
	for _, out := range outcomes {
		switch out {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Fatalf("outcomes: %d misses, %d coalesced; want 1 and %d", misses, coalesced, n-1)
	}
}

// waitForRefs spins until the key's flight holds exactly want references.
func waitForRefs(t *testing.T, c *Cache, key string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.flightRefs(key) != want {
		if time.Now().After(deadline) {
			t.Fatalf("flight refs = %d, want %d", c.flightRefs(key), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheLeaderCancelDoesNotPoisonWaiters is the heart of the bugfix: the
// leader's context dies mid-computation, and the coalesced waiters must
// still receive the computed value, not the leader's context.Canceled.
func TestCacheLeaderCancelDoesNotPoisonWaiters(t *testing.T) {
	c := NewCache(4)
	release := make(chan struct{})
	started := make(chan struct{})
	load := func(ctx context.Context) ([]byte, error) {
		close(started)
		select {
		case <-release:
			return []byte("survived"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, "k", load, nil)
		leaderErr <- err
	}()
	<-started

	waiterDone := make(chan struct{})
	var wv []byte
	var wout Outcome
	var werr error
	go func() {
		defer close(waiterDone)
		wv, wout, werr = c.Do(context.Background(), "k", load, nil)
	}()
	waitForRefs(t, c, "k", 2)

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want its own context.Canceled", err)
	}
	// The flight must still be alive for the waiter.
	if got := c.flightRefs("k"); got != 1 {
		t.Fatalf("flight refs after leader left = %d, want 1", got)
	}
	close(release)
	<-waiterDone
	if werr != nil || string(wv) != "survived" || wout != Coalesced {
		t.Fatalf("waiter got (%q, %v, %v), want (survived, coalesced, nil)", wv, wout, werr)
	}
	// And the value is cached for the next request.
	if _, out, _ := doBg(c, "k", func() ([]byte, error) { return nil, errors.New("no") }); out != Hit {
		t.Errorf("post-flight lookup = %v, want hit", out)
	}
}

// TestCacheWaiterCancelIsPrompt proves a waiter's own cancellation returns
// its own error immediately without killing the shared flight.
func TestCacheWaiterCancelIsPrompt(t *testing.T) {
	c := NewCache(4)
	release := make(chan struct{})
	load := func(ctx context.Context) ([]byte, error) {
		select {
		case <-release:
			return []byte("v"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", load, nil)
		leaderDone <- err
	}()
	waitForRefs(t, c, "k", 1)

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, out, err := c.Do(waiterCtx, "k", load, nil)
		if out != Coalesced {
			t.Errorf("waiter outcome = %v, want coalesced", out)
		}
		waiterDone <- err
	}()
	waitForRefs(t, c, "k", 2)

	cancelWaiter()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v, want nil (waiter's cancel must not kill the flight)", err)
	}
}

// TestCacheLastWaiterOutCancelsFlight proves the refcount actually cancels
// the computation when the last waiter abandons it.
func TestCacheLastWaiterOutCancelsFlight(t *testing.T) {
	c := NewCache(4)
	cancelled := make(chan struct{})
	load := func(ctx context.Context) ([]byte, error) {
		<-ctx.Done()
		close(cancelled)
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", load, nil)
		done <- err
	}()
	waitForRefs(t, c, "k", 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("last waiter leaving did not cancel the flight's context")
	}
	// The dying flight is unlinked, so a fresh request starts over.
	waitForRefs(t, c, "k", 0)
	if _, out, err := doBg(c, "k", func() ([]byte, error) { return []byte("v"), nil }); err != nil || out != Miss {
		t.Fatalf("post-abandon Do = (%v, %v), want fresh miss", out, err)
	}
}

// TestCacheDeadContextNeverStartsFlight: a request that is already
// cancelled must not spawn a detached computation.
func TestCacheDeadContextNeverStartsFlight(t *testing.T) {
	c := NewCache(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, _, err := c.Do(ctx, "k", func(context.Context) ([]byte, error) {
		ran = true
		return nil, nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("load ran for a dead request")
	}
	if got := c.flightRefs("k"); got != 0 {
		t.Fatalf("flight refs = %d, want 0", got)
	}
}

// TestCacheFlightTimeout: the detached computation is bounded by the
// cache's flight budget even though the caller's context never expires.
func TestCacheFlightTimeout(t *testing.T) {
	c := NewCache(4)
	c.FlightTimeout = 10 * time.Millisecond
	_, _, err := c.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCacheRefObserver: the onRefs hook sees every join and leave and sums
// to zero when the flight drains.
func TestCacheRefObserver(t *testing.T) {
	c := NewCache(4)
	var refs atomic.Int64
	onRefs := func(d int) { refs.Add(int64(d)) }
	release := make(chan struct{})
	load := func(ctx context.Context) ([]byte, error) {
		<-release
		return []byte("v"), nil
	}
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(context.Background(), "k", load, onRefs) //nolint:errcheck
		}()
	}
	waitForRefs(t, c, "k", n)
	if got := refs.Load(); got != n {
		t.Fatalf("observed refs = %d, want %d", got, n)
	}
	close(release)
	wg.Wait()
	if got := refs.Load(); got != 0 {
		t.Fatalf("observed refs after drain = %d, want 0", got)
	}
}

func TestKeyDistinguishesParts(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("part boundaries must be part of the key")
	}
	if Key("a", "b") != Key("a", "b") {
		t.Error("key not deterministic")
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprint(i % 8)
			v, _, err := doBg(c, key, func() ([]byte, error) { return []byte(key), nil })
			if err != nil || string(v) != key {
				t.Errorf("Do(%q) = (%q, %v)", key, v, err)
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want 8", c.Len())
	}
}
