package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitSecondLookup(t *testing.T) {
	c := NewCache(4)
	calls := 0
	load := func() ([]byte, error) { calls++; return []byte("result"), nil }

	v, out, err := c.Do("k", load)
	if err != nil || string(v) != "result" || out != Miss {
		t.Fatalf("first Do = (%q, %v, %v), want (result, miss, nil)", v, out, err)
	}
	v, out, err = c.Do("k", load)
	if err != nil || string(v) != "result" || out != Hit {
		t.Fatalf("second Do = (%q, %v, %v), want (result, hit, nil)", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("loader ran %d times, want 1", calls)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	mk := func(s string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(s), nil }
	}
	c.Do("a", mk("A"))
	c.Do("b", mk("B"))
	c.Do("a", mk("A2")) // refresh a's recency: returns cached "A"
	c.Do("c", mk("C"))  // evicts b, the least recently used
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, out, _ := c.Do("a", mk("A3")); out != Hit {
		t.Errorf("a evicted, want retained")
	}
	if _, out, _ := c.Do("b", mk("B2")); out != Miss {
		t.Errorf("b retained, want evicted")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	calls := 0
	boom := errors.New("boom")
	load := func() ([]byte, error) { calls++; return nil, boom }
	if _, _, err := c.Do("k", load); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.Do("k", load); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("loader ran %d times, want 2 (errors must not be cached)", calls)
	}
}

// TestCacheSingleflight proves N concurrent identical requests run the
// computation once: the loader blocks until every other goroutine is
// waiting on the flight, so the schedule cannot accidentally serialize.
func TestCacheSingleflight(t *testing.T) {
	const n = 8
	c := NewCache(4)
	var calls atomic.Int32
	release := make(chan struct{})
	load := func() ([]byte, error) {
		calls.Add(1)
		<-release
		return []byte("once"), nil
	}

	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do("k", load)
			if err != nil || string(v) != "once" {
				t.Errorf("Do = (%q, %v), want (once, nil)", v, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Wait until the other n-1 goroutines joined the flight, then let the
	// single loader finish.
	deadline := time.Now().Add(10 * time.Second)
	for c.flightWaiters("k") < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters joined the flight", c.flightWaiters("k"))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times for %d concurrent requests, want 1", got, n)
	}
	misses, coalesced := 0, 0
	for _, out := range outcomes {
		switch out {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Fatalf("outcomes: %d misses, %d coalesced; want 1 and %d", misses, coalesced, n-1)
	}
}

func TestKeyDistinguishesParts(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("part boundaries must be part of the key")
	}
	if Key("a", "b") != Key("a", "b") {
		t.Error("key not deterministic")
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprint(i % 8)
			v, _, err := c.Do(key, func() ([]byte, error) { return []byte(key), nil })
			if err != nil || string(v) != key {
				t.Errorf("Do(%q) = (%q, %v)", key, v, err)
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want 8", c.Len())
	}
}
