package service

import "context"

// pool bounds the number of analyses running at once. HTTP handlers acquire
// a slot before computing (cache hits never touch the pool); a request whose
// context expires while queued fails with the context's error instead of
// piling onto a saturated process.
type pool struct {
	sem chan struct{}
}

func newPool(n int) *pool {
	if n < 1 {
		n = 1
	}
	return &pool{sem: make(chan struct{}, n)}
}

// acquire blocks until a slot is free or ctx is done.
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *pool) release() { <-p.sem }

// inUse returns the number of held slots (for the metrics gauge).
func (p *pool) inUse() int { return len(p.sem) }

// capacity returns the pool bound.
func (p *pool) capacity() int { return cap(p.sem) }
