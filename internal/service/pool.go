package service

import (
	"context"
	"errors"
)

// ErrOverloaded reports that the admission queue in front of the worker
// pool is full: the caller is shed immediately (HTTP 429 + Retry-After)
// instead of stacking another goroutine onto a saturated process.
var ErrOverloaded = errors.New("service overloaded")

// pool bounds the number of analyses running at once, with a bounded
// admission queue in front of the run slots. Flights acquire a slot before
// computing (cache hits and coalesced waiters never touch the pool). A
// flight first claims an admission ticket — of which there are
// workers+queue — failing fast with ErrOverloaded when none is free, then
// waits for a run slot or its context. The ticket bound is what keeps an
// overload from accumulating blocked goroutines: at most queue flights are
// ever waiting.
type pool struct {
	sem     chan struct{} // run slots: cap = workers
	tickets chan struct{} // admission: cap = workers + queue depth
}

func newPool(workers, queue int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &pool{
		sem:     make(chan struct{}, workers),
		tickets: make(chan struct{}, workers+queue),
	}
}

// acquire admits the caller and blocks until a run slot is free or ctx is
// done. When the admission queue is already full it returns ErrOverloaded
// without blocking at all.
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.tickets <- struct{}{}:
	default:
		return ErrOverloaded
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-p.tickets
		return ctx.Err()
	}
}

func (p *pool) release() {
	<-p.sem
	<-p.tickets
}

// inUse returns the number of held run slots (for the metrics gauge).
func (p *pool) inUse() int { return len(p.sem) }

// capacity returns the run-slot bound.
func (p *pool) capacity() int { return cap(p.sem) }

// queued returns the number of admitted flights still waiting for a run
// slot. release drops the slot before the ticket, so the difference can
// transiently overshoot; clamp at zero for the gauge.
func (p *pool) queued() int {
	if n := len(p.tickets) - len(p.sem); n > 0 {
		return n
	}
	return 0
}

// queueCapacity returns the admission-queue bound (tickets beyond slots).
func (p *pool) queueCapacity() int { return cap(p.tickets) - cap(p.sem) }

// saturated reports whether the next acquire would shed: every admission
// ticket is held. /readyz turns this into a 503 so a routing layer stops
// sending traffic before it turns into 429s.
func (p *pool) saturated() bool { return len(p.tickets) == cap(p.tickets) }
