package service

import (
	"context"
	"errors"
	"fmt"

	"repro/adds"
	"repro/adds/wire"
	"repro/internal/core/pathmatrix"
)

// ErrBadRequest classifies request-shape failures (unknown oracle, missing
// fields) that are not typed facade errors; handlers map it to 400.
var ErrBadRequest = errors.New("bad request")

// ErrNotFound classifies lookups of resources outside the registry (an
// unknown experiment id); handlers map it to 404.
var ErrNotFound = errors.New("not found")

// UnknownFieldError reports a JSON request body carrying a field no request
// type defines — almost always a typo (an "orcale" that would otherwise
// silently select the default oracle). Handlers map it to 400 and echo the
// offending field in the error envelope.
type UnknownFieldError struct{ Field string }

func (e *UnknownFieldError) Error() string {
	return fmt.Sprintf("bad request: unknown field %q", e.Field)
}

// Unwrap lets errors.Is(err, ErrBadRequest) classify it alongside the other
// request-shape failures.
func (e *UnknownFieldError) Unwrap() error { return ErrBadRequest }

// TooLargeError reports a request that exceeds a configured admission bound
// — a body over -max-body bytes, or a /v1/batch item count over -max-batch.
// Handlers map it to 413 so an oversized body is rejected before the JSON
// decoder reads unbounded input, instead of the generic 400.
type TooLargeError struct {
	What  string // what was measured: "body", "batch items"
	Size  int64  // observed size (0 when only the excess is known)
	Limit int64  // the configured bound
}

func (e *TooLargeError) Error() string {
	if e.Size > 0 {
		return fmt.Sprintf("request too large: %s %d exceeds limit %d", e.What, e.Size, e.Limit)
	}
	return fmt.Sprintf("request too large: %s exceeds limit %d", e.What, e.Limit)
}

// Unwrap classifies an oversized request as a request-shape failure for
// callers that only branch on ErrBadRequest.
func (e *TooLargeError) Unwrap() error { return ErrBadRequest }

// The request/response shapes live in the public adds/wire package so
// clients can share them; the aliases keep every existing reference in this
// package (and the encoded bytes, pinned by the goldens) unchanged.
type (
	AnalyzeRequest    = wire.AnalyzeRequest
	LoopResult        = wire.LoopResult
	OracleComparison  = wire.OracleComparison
	ValidationResult  = wire.ValidationResult
	FunctionResult    = wire.FunctionResult
	AnalyzeResponse   = wire.AnalyzeResponse
	DepgraphRequest   = wire.DepgraphRequest
	LoopDeps          = wire.LoopDeps
	DepgraphResponse  = wire.DepgraphResponse
	PipelineRequest   = wire.PipelineRequest
	PipelineResponse  = wire.PipelineResponse
	ExperimentDef     = wire.ExperimentDef
	OracleInfo        = wire.OracleInfo
	ReanalyzeRequest  = wire.ReanalyzeRequest
	SummaryStats      = wire.SummaryStats
	ReanalyzeResponse = wire.ReanalyzeResponse
	BatchRequest      = wire.BatchRequest
	BatchItemResult   = wire.BatchItemResult
	ErrorEnvelope     = wire.ErrorEnvelope
)

// oracleFor resolves the request's oracle selection against an analysis
// through the registry; unknown names are 400s. The context carries the
// request's tracer so oracle-internal spans land on its trace.
func oracleFor(ctx context.Context, an *adds.Analysis, name string, k int) (adds.Oracle, error) {
	o, err := an.OracleNamed(ctx, name, k)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return o, nil
}

// BuildAnalyze runs the analysis an AnalyzeRequest describes and assembles
// the response. It is the single implementation behind POST /v1/analyze and
// addsc -format json, so the daemon and the CLI can never drift apart.
func BuildAnalyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	if _, err := adds.ParseOracle(req.Oracle); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	unit, err := adds.LoadCtx(ctx, []byte(req.Source))
	if err != nil {
		return nil, err
	}

	var names []string
	analyses := map[string]*adds.Analysis{}
	if req.Fn != "" {
		an, err := unit.AnalyzeOpt(ctx, req.Fn)
		if err != nil {
			return nil, err
		}
		names = []string{req.Fn}
		analyses[req.Fn] = an
	} else {
		analyses, err = unit.AnalyzeAllOpt(ctx, adds.WithWorkers(req.Workers))
		if err != nil {
			return nil, err
		}
		for _, fd := range unit.Prog.Funcs {
			names = append(names, fd.Name)
		}
	}

	resp := &AnalyzeResponse{EngineVersion: pathmatrix.EngineVersion, Functions: []FunctionResult{}}
	for _, name := range names {
		an := analyses[name]
		oracle, err := oracleFor(ctx, an, req.Oracle, req.K)
		if err != nil {
			return nil, err
		}
		fr := FunctionResult{
			Name:     name,
			Loops:    an.Loops(),
			Entry:    an.EntryMatrix(),
			Exit:     an.ExitMatrix(),
			LoopData: []LoopResult{},
			Oracles:  []OracleComparison{},
		}
		val := an.Validation()
		fr.Validation = ValidationResult{ValidEverywhere: val.ValidEverywhere(), Intervals: []string{}}
		for _, iv := range val.Intervals() {
			fr.Validation.Intervals = append(fr.Validation.Intervals, iv.String())
		}
		for i := 0; i < an.Loops(); i++ {
			dg := an.DependencesCtx(ctx, i, oracle)
			fr.LoopData = append(fr.LoopData, LoopResult{
				Index:           i,
				Matrix:          an.LoopMatrix(i),
				Iteration:       an.IterationMatrix(i),
				Dependences:     dg,
				CarriedMemEdges: len(dg.CarriedMemEdges()),
			})
			// The comparison set and its order are part of the wire format
			// (pinned byte-identical by the goldens), so it stays a literal
			// instead of enumerating the registry.
			for _, cmp := range []string{"conservative", "classic", "gpm"} {
				o, err := oracleFor(ctx, an, cmp, req.K)
				if err != nil {
					return nil, err
				}
				fr.Oracles = append(fr.Oracles, OracleComparison{
					Oracle:          cmp,
					Loop:            i,
					CarriedMemEdges: len(an.Dependences(i, o).CarriedMemEdges()),
				})
			}
		}
		resp.Functions = append(resp.Functions, fr)
	}
	return resp, nil
}

// BuildReanalyze re-runs whole-program analysis for a ReanalyzeRequest and
// reports this run's interprocedural summary-cache behavior. It backs POST
// /v1/reanalyze and deliberately bypasses the daemon's response cache: the
// computed/reused counters describe the run that produced them (a cached
// first-run response would keep reporting cold-cache numbers forever).
func BuildReanalyze(ctx context.Context, req *ReanalyzeRequest) (*ReanalyzeResponse, error) {
	unit, err := adds.LoadCtx(ctx, []byte(req.Source))
	if err != nil {
		return nil, err
	}
	analyses, err := unit.AnalyzeAllOpt(ctx, adds.WithWorkers(req.Workers))
	if err != nil {
		return nil, err
	}
	resp := &ReanalyzeResponse{EngineVersion: pathmatrix.EngineVersion, Functions: []string{}}
	for _, fd := range unit.Prog.Funcs {
		resp.Functions = append(resp.Functions, fd.Name)
	}
	// All analyses of one run share the same table; any entry reports it.
	for _, an := range analyses {
		if tab := an.SummaryTable(); tab != nil {
			resp.Summaries = SummaryStats{Computed: tab.Computed, Reused: tab.Reused}
			break
		}
	}
	return resp, nil
}

// BuildDepgraph computes the dependence graphs a DepgraphRequest selects.
// Backs POST /v1/depgraph.
func BuildDepgraph(ctx context.Context, req *DepgraphRequest) (*DepgraphResponse, error) {
	if req.Fn == "" {
		return nil, fmt.Errorf("%w: missing fn", ErrBadRequest)
	}
	oracleName, err := adds.ParseOracle(req.Oracle)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	unit, err := adds.LoadCtx(ctx, []byte(req.Source))
	if err != nil {
		return nil, err
	}
	an, err := unit.AnalyzeOpt(ctx, req.Fn)
	if err != nil {
		return nil, err
	}
	oracle, err := oracleFor(ctx, an, req.Oracle, req.K)
	if err != nil {
		return nil, err
	}
	lo, hi := 0, an.Loops()
	if req.Loop != nil {
		if err := an.CheckLoop(*req.Loop); err != nil {
			return nil, err
		}
		lo, hi = *req.Loop, *req.Loop+1
	}
	resp := &DepgraphResponse{
		EngineVersion: pathmatrix.EngineVersion,
		Fn:            req.Fn,
		Oracle:        oracleName,
		Loops:         []LoopDeps{},
	}
	for i := lo; i < hi; i++ {
		dg := an.DependencesCtx(ctx, i, oracle)
		resp.Loops = append(resp.Loops, LoopDeps{
			Index:           i,
			Dependences:     dg,
			CarriedMemEdges: len(dg.CarriedMemEdges()),
		})
	}
	return resp, nil
}

// BuildPipeline runs the pipelining analysis a PipelineRequest describes.
// Shared by POST /v1/pipeline and addsc -format json -show pipeline.
func BuildPipeline(ctx context.Context, req *PipelineRequest) (*PipelineResponse, error) {
	if req.Fn == "" {
		return nil, fmt.Errorf("%w: missing fn", ErrBadRequest)
	}
	width := req.Width
	if width == 0 {
		width = 8
	}
	if width < 1 {
		return nil, fmt.Errorf("adds: %w: %d", adds.ErrBadWidth, width)
	}
	unit, err := adds.LoadCtx(ctx, []byte(req.Source))
	if err != nil {
		return nil, err
	}
	an, err := unit.AnalyzeOpt(ctx, req.Fn)
	if err != nil {
		return nil, err
	}
	if err := an.CheckLoop(req.Loop); err != nil {
		return nil, err
	}
	oracle, err := oracleFor(ctx, an, req.Oracle, req.K)
	if err != nil {
		return nil, err
	}
	// The raw-loop II bounds under the requested oracle; replaced by the
	// emitted schedule's info when the full paper transformation succeeds.
	resp := &PipelineResponse{
		EngineVersion: pathmatrix.EngineVersion,
		Fn:            req.Fn, Loop: req.Loop, Width: width,
		Info: an.AnalyzePipeline(req.Loop, oracle, width),
	}
	prog, info, err := an.PipelineCtx(ctx, req.Loop, width)
	switch {
	case errors.Is(err, adds.ErrBadWidth) || errors.Is(err, adds.ErrNoSuchLoop):
		return nil, err
	case err != nil:
		resp.PipelineError = err.Error()
	default:
		resp.Info = info
		resp.VLIW = prog.String()
	}
	return resp, nil
}
