package interp

import (
	"strings"
	"testing"

	"repro/internal/source/ast"
	"repro/internal/source/parser"
)

const listDecl = `
type List [X] {
    int data;
    List *next is uniquely forward along X;
    List *prev is backward along X;
};
`

func run(t *testing.T, src, fn string, args ...Value) (Value, *Interp, error) {
	t.Helper()
	prog := parser.MustParse(src)
	in := New(prog)
	v, err := in.Call(fn, args...)
	return v, in, err
}

func TestArithmetic(t *testing.T) {
	v, _, err := run(t, `
int f(int a, int b) {
    int x;
    x = a * b + a - b;
    x = x / 2;
    x = x % 100;
    return x;
}`, "f", IntVal(10), IntVal(4))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != (10*4+10-4)/2%100 {
		t.Errorf("got %d", v.Int)
	}
}

func TestBuildAndSum(t *testing.T) {
	src := listDecl + `
int sum(int n) {
    List *hd, *p, *tmp;
    int i, total;
    hd = NULL;
    i = n;
    while (i > 0) {
        tmp = new List;
        tmp->data = i;
        tmp->next = hd;
        if (hd != NULL) {
            hd->prev = tmp;
        }
        hd = tmp;
        i = i - 1;
    }
    total = 0;
    p = hd;
    while (p != NULL) {
        total = total + p->data;
        p = p->next;
    }
    return total;
}`
	v, in, err := run(t, src, "sum", IntVal(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 55 {
		t.Errorf("sum = %d, want 55", v.Int)
	}
	if in.Heap.Size() != 10 {
		t.Errorf("allocations = %d", in.Heap.Size())
	}
}

func TestShiftOriginSemantics(t *testing.T) {
	// The paper's 5.1.2 loop: subtract hd->data from every later node.
	src := listDecl + `
void build(List *hd, int n) {
    List *p, *tmp;
    int i;
    p = hd;
    i = 1;
    while (i <= n) {
        tmp = new List;
        tmp->data = i * 10;
        p->next = tmp;
        tmp->prev = p;
        p = tmp;
        i = i + 1;
    }
}
void shift(List *hd) {
    List *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
int get(List *hd, int k) {
    List *p;
    int i;
    p = hd;
    i = 0;
    while (i < k) {
        p = p->next;
        i = i + 1;
    }
    return p->data;
}
int main2() {
    List *hd;
    hd = new List;
    hd->data = 7;
    build(hd, 5);
    shift(hd);
    return get(hd, 3);
}`
	v, _, err := run(t, src, "main2")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 30-7 {
		t.Errorf("got %d, want 23", v.Int)
	}
}

func TestNullDereference(t *testing.T) {
	_, _, err := run(t, listDecl+`
int f() {
    List *p;
    p = NULL;
    return p->data;
}`, "f")
	if err == nil || !strings.Contains(err.Error(), "NULL dereference") {
		t.Errorf("err = %v", err)
	}
}

func TestUseAfterFree(t *testing.T) {
	_, _, err := run(t, listDecl+`
int f() {
    List *p;
    p = new List;
    p->data = 1;
    free(p);
    return p->data;
}`, "f")
	if err == nil || !strings.Contains(err.Error(), "use after free") {
		t.Errorf("err = %v", err)
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	prog := parser.MustParse(`void f() { int x; x = 0; while (x == 0) { x = 0; } }`)
	in := New(prog)
	in.MaxSteps = 1000
	_, err := in.Call("f")
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("err = %v", err)
	}
}

func TestUnwrittenFieldsDefault(t *testing.T) {
	v, _, err := run(t, listDecl+`
int f() {
    List *p;
    p = new List;
    if (p->next == NULL) {
        return p->data + 100;
    }
    return 0;
}`, "f")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 100 {
		t.Errorf("got %d: unwritten pointer must read NULL, unwritten int 0", v.Int)
	}
}

func TestShortCircuit(t *testing.T) {
	// p != NULL && p->data > 0 must not dereference NULL.
	v, _, err := run(t, listDecl+`
int f() {
    List *p;
    p = NULL;
    if (p != NULL && p->data > 0) {
        return 1;
    }
    return 2;
}`, "f")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 2 {
		t.Errorf("got %d", v.Int)
	}
}

func TestDivisionByZero(t *testing.T) {
	_, _, err := run(t, `int f(int n) { return 1 / n; }`, "f", IntVal(0))
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestRecursion(t *testing.T) {
	v, _, err := run(t, `
int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}`, "fib", IntVal(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 55 {
		t.Errorf("fib(10) = %d", v.Int)
	}
}

func TestTracerSeesStatements(t *testing.T) {
	prog := parser.MustParse(listDecl + `
void f() {
    List *p;
    p = new List;
    p = NULL;
}`)
	in := New(prog)
	var count int
	in.Tracer = tracerFunc(func(ast.Stmt, map[string]Value) { count++ })
	if _, err := in.Call("f"); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("tracer saw %d statements, want 2", count)
	}
}

type tracerFunc func(ast.Stmt, map[string]Value)

func (f tracerFunc) AtStmt(s ast.Stmt, vars map[string]Value) { f(s, vars) }

func TestReachable(t *testing.T) {
	h := NewHeap()
	a, b, c := h.New("List"), h.New("List"), h.New("List")
	a.Ptrs["next"] = b
	b.Ptrs["next"] = c
	c.Ptrs["prev"] = b
	nodes := Reachable(a)
	if len(nodes) != 3 {
		t.Errorf("reachable = %d nodes", len(nodes))
	}
	if got := Reachable(nil); got != nil {
		t.Errorf("Reachable(nil) = %v", got)
	}
}

func TestFreeNullError(t *testing.T) {
	_, _, err := run(t, listDecl+`void f() { List *p; p = NULL; free(p); }`, "f")
	if err == nil {
		t.Error("free(NULL) must fail")
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	prog := parser.MustParse(`int f(int n) { return f(n + 1); }`)
	in := New(prog)
	in.MaxDepth = 100
	_, err := in.Call("f", IntVal(0))
	if err == nil || !strings.Contains(err.Error(), "depth limit") {
		t.Errorf("err = %v", err)
	}
}
