// Package interp provides the concrete runtime substrate: heap nodes, an
// AST interpreter for mini, and a dynamic checker that tests every ADDS
// property of Section 4 (Defs 4.1-4.10) against a real heap. The machine
// simulators execute over the same nodes, and the property tests use the
// interpreter as ground truth for the static analyses.
package interp

import (
	"fmt"
	"sort"
)

// Node is a dynamically-allocated record instance.
type Node struct {
	Type string // record type name
	ID   int    // unique within a Heap, for reporting
	Ints map[string]int64
	Ptrs map[string]*Node
}

// Heap allocates and tracks nodes.
type Heap struct {
	nodes  []*Node
	nalloc int
	freed  map[*Node]bool
}

// NewHeap returns an empty heap.
func NewHeap() *Heap { return &Heap{freed: map[*Node]bool{}} }

// New allocates a node of the given record type with zeroed fields.
func (h *Heap) New(typeName string) *Node {
	n := &Node{
		Type: typeName,
		ID:   h.nalloc,
		Ints: map[string]int64{},
		Ptrs: map[string]*Node{},
	}
	h.nalloc++
	h.nodes = append(h.nodes, n)
	return n
}

// Free marks a node released. Accessing a freed node afterwards is reported
// by the interpreter as an error.
func (h *Heap) Free(n *Node) {
	if n != nil {
		h.freed[n] = true
	}
}

// Freed reports whether the node has been freed.
func (h *Heap) Freed(n *Node) bool { return h.freed[n] }

// Size returns the number of allocations performed.
func (h *Heap) Size() int { return h.nalloc }

// Live returns all non-freed nodes, in allocation order.
func (h *Heap) Live() []*Node {
	var out []*Node
	for _, n := range h.nodes {
		if !h.freed[n] {
			out = append(out, n)
		}
	}
	return out
}

// String renders a node reference for diagnostics.
func (n *Node) String() string {
	if n == nil {
		return "NULL"
	}
	return fmt.Sprintf("%s#%d", n.Type, n.ID)
}

// Reachable returns every node reachable from the roots (including them),
// in a deterministic order.
func Reachable(roots ...*Node) []*Node {
	seen := map[*Node]bool{}
	var out []*Node
	var visit func(*Node)
	visit = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		out = append(out, n)
		fields := make([]string, 0, len(n.Ptrs))
		for f := range n.Ptrs {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			visit(n.Ptrs[f])
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}
