package interp

import (
	"testing"

	"repro/internal/source/parser"
)

const benchSrc = `
type List [X] {
    int data;
    List *next is uniquely forward along X;
    List *prev is backward along X;
};
int run(int n) {
    List *hd, *p, *tmp;
    int i, total;
    hd = NULL;
    i = n;
    while (i > 0) {
        tmp = new List;
        tmp->data = i;
        tmp->next = hd;
        if (hd != NULL) {
            hd->prev = tmp;
        }
        hd = tmp;
        i = i - 1;
    }
    total = 0;
    p = hd;
    while (p != NULL) {
        total = total + p->data;
        p = p->next;
    }
    return total;
}
`

// BenchmarkInterpreter measures AST interpretation throughput on a
// build-then-sum workload.
func BenchmarkInterpreter(b *testing.B) {
	prog := parser.MustParse(benchSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := New(prog)
		v, err := in.Call("run", IntVal(500))
		if err != nil {
			b.Fatal(err)
		}
		if v.Int != 500*501/2 {
			b.Fatalf("sum = %d", v.Int)
		}
	}
}

// BenchmarkDynamicCheck measures the Defs 4.2-4.9 checker on a 1000-node
// doubly linked list.
func BenchmarkDynamicCheck(b *testing.B) {
	prog := parser.MustParse(benchSrc)
	in := New(prog)
	if _, err := in.Call("run", IntVal(1000)); err != nil {
		b.Fatal(err)
	}
	roots := in.Heap.Live()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := Check(in.Env, roots...); len(vs) != 0 {
			b.Fatal(vs[0])
		}
	}
}
