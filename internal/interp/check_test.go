package interp

import (
	"testing"

	"repro/internal/shape"
	"repro/internal/source/parser"
)

const paperDecls = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
type LOLS [X] [Y] where X || Y {
    int data;
    LOLS *across is uniquely forward along X;
    LOLS *back is backward along X;
    LOLS *down is uniquely forward along Y;
    LOLS *up is backward along Y;
};
type CirL [X] {
    int data;
    CirL *next is circular along X;
};
`

func paperEnv(t *testing.T) *shape.Env {
	t.Helper()
	return shape.MustBuild(parser.MustParse(paperDecls))
}

// list builds a well-formed doubly linked list of n nodes.
func list(h *Heap, n int) *Node {
	var head, prev *Node
	for i := 0; i < n; i++ {
		node := h.New("TwoWayLL")
		node.Ints["data"] = int64(i)
		if prev == nil {
			head = node
		} else {
			prev.Ptrs["next"] = node
			node.Ptrs["prev"] = prev
		}
		prev = node
	}
	return head
}

func TestValidListPasses(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	hd := list(h, 20)
	if vs := Check(env, hd); len(vs) != 0 {
		t.Fatalf("valid list flagged: %v", vs[0])
	}
}

func TestCycleViolatesDef42(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	hd := list(h, 5)
	// Close a next-cycle: last -> first.
	last := hd
	for last.Ptrs["next"] != nil {
		last = last.Ptrs["next"]
	}
	last.Ptrs["next"] = hd
	hd.Ptrs["prev"] = last
	vs := Check(env, hd)
	if len(vs) == 0 {
		t.Fatal("cycle not detected")
	}
	found := false
	for _, v := range vs {
		if v.Def == "4.2" {
			found = true
		}
	}
	if !found {
		t.Errorf("want Def 4.2 violation, got %v", vs)
	}
}

func TestSharedTailViolatesDef43(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	a := list(h, 3)
	b := list(h, 3)
	// Both lists' second node point at one shared node.
	shared := h.New("TwoWayLL")
	a.Ptrs["next"].Ptrs["next"] = shared
	b.Ptrs["next"].Ptrs["next"] = shared
	vs := Check(env, a, b)
	found := false
	for _, v := range vs {
		if v.Def == "4.3" {
			found = true
		}
	}
	if !found {
		t.Errorf("want Def 4.3 violation, got %v", vs)
	}
}

func TestBadPrevViolatesDef46(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	hd := list(h, 4)
	second := hd.Ptrs["next"]
	third := second.Ptrs["next"]
	// third.prev should be second; point it at hd instead.
	third.Ptrs["prev"] = hd
	vs := Check(env, hd)
	found := false
	for _, v := range vs {
		if v.Def == "4.6" {
			found = true
		}
	}
	if !found {
		t.Errorf("want Def 4.6 violation, got %v", vs)
	}
}

// tree builds a perfect binary tree of the given depth with parent links.
func tree(h *Heap, depth int) *Node {
	root := h.New("PBinTree")
	if depth > 1 {
		l := tree(h, depth-1)
		r := tree(h, depth-1)
		root.Ptrs["left"] = l
		root.Ptrs["right"] = r
		l.Ptrs["parent"] = root
		r.Ptrs["parent"] = root
	}
	return root
}

func TestValidTreePasses(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	root := tree(h, 4)
	if vs := Check(env, root); len(vs) != 0 {
		t.Fatalf("valid tree flagged: %v", vs[0])
	}
}

func TestSharedSubtreeViolatesDef47(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	root := tree(h, 3)
	// Share: root.right.left = root.left.left (reached by two left edges —
	// caught by 4.3) and also root.right = root.left (group violation).
	root.Ptrs["right"] = root.Ptrs["left"]
	vs := Check(env, root)
	found := false
	for _, v := range vs {
		if v.Def == "4.7" {
			found = true
		}
	}
	if !found {
		t.Errorf("want Def 4.7 violation, got %v", vs)
	}
}

// lols builds a list of lists with independent dimensions.
func lols(h *Heap, rows, cols int) *Node {
	var firstRow *Node
	var prevRow *Node
	for r := 0; r < rows; r++ {
		rowHead := h.New("LOLS")
		if prevRow == nil {
			firstRow = rowHead
		} else {
			prevRow.Ptrs["down"] = rowHead
			rowHead.Ptrs["up"] = prevRow
		}
		prev := rowHead
		for c := 1; c < cols; c++ {
			n := h.New("LOLS")
			prev.Ptrs["across"] = n
			n.Ptrs["back"] = prev
			prev = n
		}
		prevRow = rowHead
	}
	return firstRow
}

func TestValidLOLSPasses(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	m := lols(h, 4, 5)
	if vs := Check(env, m); len(vs) != 0 {
		t.Fatalf("valid LOLS flagged: %v", vs[0])
	}
}

func TestCrossDimensionSharingViolatesDef49(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	m := lols(h, 3, 3)
	// Make a down edge point into the middle of a row (also reachable by
	// across): forward entry along two independent dims.
	row2 := m.Ptrs["down"]
	mid := m.Ptrs["across"]
	row2.Ptrs["down"] = mid
	vs := Check(env, m)
	found := false
	for _, v := range vs {
		if v.Def == "4.9" {
			found = true
		}
	}
	if !found {
		t.Errorf("want Def 4.9 violation, got %v", vs)
	}
}

func TestCircularListNotFlagged(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	// A ring of CirL nodes: circular is declared, so no acyclicity check.
	first := h.New("CirL")
	cur := first
	for i := 0; i < 5; i++ {
		n := h.New("CirL")
		cur.Ptrs["next"] = n
		cur = n
	}
	cur.Ptrs["next"] = first
	if vs := Check(env, first); len(vs) != 0 {
		t.Fatalf("circular list wrongly flagged: %v", vs[0])
	}
}

func TestCheckEmptyHeap(t *testing.T) {
	env := paperEnv(t)
	if vs := Check(env); len(vs) != 0 {
		t.Fatal("empty heap must pass")
	}
	if vs := Check(env, nil); len(vs) != 0 {
		t.Fatal("nil root must pass")
	}
}

func TestViolationString(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	hd := list(h, 2)
	hd.Ptrs["next"].Ptrs["next"] = hd
	hd.Ptrs["prev"] = hd.Ptrs["next"]
	vs := Check(env, hd)
	if len(vs) == 0 {
		t.Fatal("want violations")
	}
	s := vs[0].String()
	if s == "" {
		t.Error("empty violation string")
	}
}

func TestRhoShapeViolatesCircular(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	// a -> b -> c -> b : the traversal from a never returns to a.
	a, b, c := h.New("CirL"), h.New("CirL"), h.New("CirL")
	a.Ptrs["next"] = b
	b.Ptrs["next"] = c
	c.Ptrs["next"] = b
	vs := Check(env, a)
	found := false
	for _, v := range vs {
		if v.Def == "3.1-circular" {
			found = true
		}
	}
	if !found {
		t.Errorf("rho shape not detected: %v", vs)
	}
}

func TestUnderConstructionRingOK(t *testing.T) {
	env := paperEnv(t)
	h := NewHeap()
	// NULL-terminated chain of CirL nodes: a ring under construction.
	a, b := h.New("CirL"), h.New("CirL")
	a.Ptrs["next"] = b
	if vs := Check(env, a); len(vs) != 0 {
		t.Errorf("unterminated circular chain wrongly flagged: %v", vs)
	}
}
