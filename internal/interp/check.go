package interp

import (
	"fmt"

	"repro/internal/shape"
)

// CheckViolation reports one dynamic failure of an ADDS property on a
// concrete heap.
type CheckViolation struct {
	Def   string // "4.2", "4.3", ...
	Type  string
	Field string
	Node  *Node
	Msg   string
}

func (v CheckViolation) String() string {
	return fmt.Sprintf("Def %s violated on %s.%s at %s: %s",
		v.Def, v.Type, v.Field, v.Node, v.Msg)
}

// Check verifies every ADDS property of Section 4 against the part of the
// heap reachable from roots. It is the run-time validation the paper
// proposes as a debugging aid ("the compiler's ability to generate run-time
// checks to ensure proper use of dynamic data structures").
func Check(env *shape.Env, roots ...*Node) []CheckViolation {
	nodes := Reachable(roots...)
	var out []CheckViolation
	out = append(out, checkAcyclic(env, nodes)...)
	out = append(out, checkUnique(env, nodes)...)
	out = append(out, checkGroups(env, nodes)...)
	out = append(out, checkBackward(env, nodes)...)
	out = append(out, checkIndependent(env, nodes)...)
	out = append(out, checkIndependentCycles(env, nodes)...)
	out = append(out, checkCircular(env, nodes)...)
	return out
}

// checkCircular gives the circular direction the executable semantics the
// paper leaves to run time (Section 3.1: accurate analysis of circular
// fields "implies information must be collected and maintained at
// run-time"): traversing a circular field from any node either terminates
// at NULL (a ring under construction) or returns to the starting node — a
// rho shape (entering a cycle the start is not on) is a violation.
func checkCircular(env *shape.Env, nodes []*Node) []CheckViolation {
	var out []CheckViolation
	for _, n := range nodes {
		t := env.Type(n.Type)
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			if f.Dir != shape.Circular {
				continue
			}
			seen := map[*Node]bool{}
			cur := n.Ptrs[f.Name]
			bad := false
			for cur != nil && cur != n {
				if seen[cur] {
					bad = true
					break
				}
				seen[cur] = true
				cur = cur.Ptrs[f.Name]
			}
			if bad {
				out = append(out, CheckViolation{
					Def: "3.1-circular", Type: n.Type, Field: f.Name, Node: n,
					Msg: "traversal enters a cycle that does not return to the start (rho shape)",
				})
			}
		}
	}
	return out
}

// checkAcyclic enforces Def 4.2 (forward fields, including uniquely forward)
// and the backward half of Def 4.5: traversing a single acyclic field from
// any node terminates.
func checkAcyclic(env *shape.Env, nodes []*Node) []CheckViolation {
	var out []CheckViolation
	for _, n := range nodes {
		t := env.Type(n.Type)
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			if !f.Acyclic() {
				continue
			}
			// Follow f from n; a revisit of any node is a cycle.
			seen := map[*Node]bool{}
			cur := n
			for cur != nil {
				if seen[cur] {
					out = append(out, CheckViolation{
						Def: "4.2", Type: n.Type, Field: f.Name, Node: n,
						Msg: fmt.Sprintf("traversal revisits %s", cur),
					})
					break
				}
				seen[cur] = true
				cur = cur.Ptrs[f.Name]
			}
		}
	}
	return out
}

// checkUnique enforces Def 4.3: at most one f-edge enters any node.
func checkUnique(env *shape.Env, nodes []*Node) []CheckViolation {
	var out []CheckViolation
	indeg := map[string]map[*Node]*Node{} // field -> target -> first source
	for _, n := range nodes {
		t := env.Type(n.Type)
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			if f.Dir != shape.UniquelyForward {
				continue
			}
			target := n.Ptrs[f.Name]
			if target == nil {
				continue
			}
			if indeg[f.Name] == nil {
				indeg[f.Name] = map[*Node]*Node{}
			}
			if prev, ok := indeg[f.Name][target]; ok {
				out = append(out, CheckViolation{
					Def: "4.3", Type: n.Type, Field: f.Name, Node: target,
					Msg: fmt.Sprintf("reached by %s from both %s and %s", f.Name, prev, n),
				})
			} else {
				indeg[f.Name][target] = n
			}
		}
	}
	return out
}

// checkGroups enforces Defs 4.7-4.8: for a combined group, at most one edge
// over any of the group's fields enters a node.
func checkGroups(env *shape.Env, nodes []*Node) []CheckViolation {
	var out []CheckViolation
	type groupKey struct {
		typ string
		gid int
	}
	indeg := map[groupKey]map[*Node][2]string{} // -> target -> (source, field)
	for _, n := range nodes {
		t := env.Type(n.Type)
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			if f.Group < 0 {
				continue
			}
			target := n.Ptrs[f.Name]
			if target == nil {
				continue
			}
			k := groupKey{typ: n.Type, gid: f.Group}
			if indeg[k] == nil {
				indeg[k] = map[*Node][2]string{}
			}
			if prev, ok := indeg[k][target]; ok {
				out = append(out, CheckViolation{
					Def: "4.7", Type: n.Type, Field: f.Name, Node: target,
					Msg: fmt.Sprintf("reached by group edges %s (from %s) and %s (from %s)",
						prev[1], prev[0], f.Name, n),
				})
			} else {
				indeg[k][target] = [2]string{n.String(), f.Name}
			}
		}
	}
	return out
}

// checkBackward enforces Def 4.6: for a uniquely forward f with backward
// partner b along the same dimension, n.f.b is n or NULL.
func checkBackward(env *shape.Env, nodes []*Node) []CheckViolation {
	var out []CheckViolation
	for _, n := range nodes {
		t := env.Type(n.Type)
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			if f.Dir != shape.UniquelyForward {
				continue
			}
			for _, b := range t.BackwardAlong(f.Dim) {
				child := n.Ptrs[f.Name]
				if child == nil {
					continue
				}
				back := child.Ptrs[b.Name]
				if back != nil && back != n {
					out = append(out, CheckViolation{
						Def: "4.6", Type: n.Type, Field: f.Name, Node: n,
						Msg: fmt.Sprintf("%s.%s.%s = %s, want %s or NULL",
							n, f.Name, b.Name, back, n),
					})
				}
			}
		}
	}
	return out
}

// checkIndependent enforces Def 4.9(a): no node is entered forward along
// two independent dimensions.
func checkIndependent(env *shape.Env, nodes []*Node) []CheckViolation {
	var out []CheckViolation
	// target -> set of (dim) with an incoming forward edge, with a witness.
	type in struct {
		dim    string
		source *Node
		field  string
	}
	incoming := map[*Node][]in{}
	for _, n := range nodes {
		t := env.Type(n.Type)
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			if f.Dir != shape.Forward && f.Dir != shape.UniquelyForward {
				continue
			}
			target := n.Ptrs[f.Name]
			if target == nil {
				continue
			}
			incoming[target] = append(incoming[target], in{dim: f.Dim, source: n, field: f.Name})
		}
	}
	for target, ins := range incoming {
		t := env.Type(target.Type)
		if t == nil {
			continue
		}
		for i, a := range ins {
			for _, b := range ins[i+1:] {
				if t.Independent(a.dim, b.dim) {
					out = append(out, CheckViolation{
						Def: "4.9", Type: target.Type, Field: a.field, Node: target,
						Msg: fmt.Sprintf("entered forward along independent dims %s (%s from %s) and %s (%s from %s)",
							a.dim, a.field, a.source, b.dim, b.field, b.source),
					})
				}
			}
		}
	}
	return out
}

// checkIndependentCycles enforces Def 4.9(b): for uf uniquely forward along
// di with backward partner b, every node reached from n.uf by forward steps
// along dimensions independent of di has b equal to n or NULL.
func checkIndependentCycles(env *shape.Env, nodes []*Node) []CheckViolation {
	var out []CheckViolation
	for _, n := range nodes {
		t := env.Type(n.Type)
		if t == nil {
			continue
		}
		for _, uf := range t.Fields {
			if uf.Dir != shape.UniquelyForward {
				continue
			}
			backs := t.BackwardAlong(uf.Dim)
			if len(backs) == 0 {
				continue
			}
			start := n.Ptrs[uf.Name]
			if start == nil {
				continue
			}
			region := forwardClosure(env, start, func(f *shape.Field) bool {
				return (f.Dir == shape.Forward || f.Dir == shape.UniquelyForward) &&
					t.Independent(f.Dim, uf.Dim)
			})
			for _, m := range region {
				for _, b := range backs {
					back := m.Ptrs[b.Name]
					if back != nil && back != n {
						out = append(out, CheckViolation{
							Def: "4.9b", Type: n.Type, Field: uf.Name, Node: m,
							Msg: fmt.Sprintf("%s.%s = %s, want %s or NULL (across independent dims)",
								m, b.Name, back, n),
						})
					}
				}
			}
		}
	}
	return out
}

// forwardClosure collects start plus every node reachable by fields the
// filter accepts.
func forwardClosure(env *shape.Env, start *Node, accept func(*shape.Field) bool) []*Node {
	seen := map[*Node]bool{start: true}
	stack := []*Node{start}
	out := []*Node{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := env.Type(n.Type)
		if t == nil {
			continue
		}
		for _, f := range t.Fields {
			if !accept(f) {
				continue
			}
			m := n.Ptrs[f.Name]
			if m != nil && !seen[m] {
				seen[m] = true
				out = append(out, m)
				stack = append(stack, m)
			}
		}
	}
	return out
}
