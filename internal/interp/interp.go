package interp

import (
	"fmt"

	"repro/internal/shape"
	"repro/internal/source/ast"
	"repro/internal/source/token"
)

// Value is a runtime value: an int64 or a *Node (nil for NULL).
type Value struct {
	IsPtr bool
	Int   int64
	Ptr   *Node
}

// IntVal and PtrVal construct values.
func IntVal(v int64) Value { return Value{Int: v} }
func PtrVal(n *Node) Value { return Value{IsPtr: true, Ptr: n} }

// String renders the value.
func (v Value) String() string {
	if v.IsPtr {
		return v.Ptr.String()
	}
	return fmt.Sprintf("%d", v.Int)
}

// RuntimeError is an execution failure (nil dereference, use after free,
// step budget exhausted, ...).
type RuntimeError struct {
	Pos token.Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// Tracer observes pointer-relevant events during interpretation. The
// soundness property tests implement it to compare dynamic truth against
// static predictions.
type Tracer interface {
	// AtStmt fires before each statement with the current frame bindings.
	AtStmt(s ast.Stmt, vars map[string]Value)
}

// Interp executes mini programs over a Heap.
type Interp struct {
	Prog     *ast.Program
	Env      *shape.Env
	Heap     *Heap
	Tracer   Tracer
	MaxSteps int // 0 means the default budget
	MaxDepth int // 0 means DefaultMaxDepth

	steps int
	depth int
}

// DefaultMaxSteps bounds execution so buggy fixtures cannot hang tests.
const DefaultMaxSteps = 1 << 22

// DefaultMaxDepth bounds mini call recursion so runaway recursive fixtures
// report an error instead of overflowing the Go stack.
const DefaultMaxDepth = 10000

// New returns an interpreter for the program with a fresh heap. The shape
// environment is rebuilt from the program's declarations; well-formedness
// problems are ignored here (the type checker reports them).
func New(prog *ast.Program) *Interp {
	env, _ := shape.Build(prog)
	return &Interp{Prog: prog, Env: env, Heap: NewHeap()}
}

type frame struct {
	vars map[string]Value
}

type returned struct{ val Value }

// Call invokes a declared function with the given arguments and returns its
// return value (zero Value for void functions).
func (in *Interp) Call(name string, args ...Value) (Value, error) {
	fd := in.Prog.FuncByName(name)
	if fd == nil {
		return Value{}, &RuntimeError{Msg: "undefined function " + name}
	}
	if len(args) != len(fd.Params) {
		return Value{}, &RuntimeError{Pos: fd.NamePos,
			Msg: fmt.Sprintf("%s expects %d arguments, got %d", name, len(fd.Params), len(args))}
	}
	maxDepth := in.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	if in.depth >= maxDepth {
		return Value{}, &RuntimeError{Pos: fd.NamePos,
			Msg: fmt.Sprintf("call depth limit (%d) exceeded in %s", maxDepth, name)}
	}
	in.depth++
	defer func() { in.depth-- }()
	f := &frame{vars: map[string]Value{}}
	for i, p := range fd.Params {
		f.vars[p.Name] = args[i]
	}
	for _, vd := range fd.Body.Vars {
		for _, n := range vd.Names {
			if vd.Pointer {
				f.vars[n] = PtrVal(nil)
			} else {
				f.vars[n] = IntVal(0)
			}
		}
	}
	var ret Value
	err := in.execBlock(fd.Body, f)
	if r, ok := err.(*returned); ok {
		ret = r.val
		err = nil
	}
	return ret, err
}

func (*returned) Error() string { return "returned" }

func (in *Interp) budget(pos token.Pos) error {
	in.steps++
	max := in.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	if in.steps > max {
		return &RuntimeError{Pos: pos, Msg: "step budget exhausted (infinite loop?)"}
	}
	return nil
}

func (in *Interp) execBlock(blk *ast.Block, f *frame) error {
	for _, s := range blk.Stmts {
		if err := in.execStmt(s, f); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execStmt(s ast.Stmt, f *frame) error {
	if err := in.budget(s.Pos()); err != nil {
		return err
	}
	if in.Tracer != nil {
		in.Tracer.AtStmt(s, f.vars)
	}
	switch s := s.(type) {
	case *ast.Block:
		return in.execBlock(s, f)
	case *ast.AssignStmt:
		val, err := in.evalExpr(s.RHS, f)
		if err != nil {
			return err
		}
		return in.assign(s.LHS, val, f)
	case *ast.WhileStmt:
		for {
			if err := in.budget(s.WhilePos); err != nil {
				return err
			}
			c, err := in.evalExpr(s.Cond, f)
			if err != nil {
				return err
			}
			if !truthy(c) {
				return nil
			}
			if err := in.execStmt(s.Body, f); err != nil {
				return err
			}
		}
	case *ast.IfStmt:
		c, err := in.evalExpr(s.Cond, f)
		if err != nil {
			return err
		}
		if truthy(c) {
			return in.execStmt(s.Then, f)
		}
		if s.Else != nil {
			return in.execStmt(s.Else, f)
		}
		return nil
	case *ast.ReturnStmt:
		var v Value
		if s.Value != nil {
			var err error
			v, err = in.evalExpr(s.Value, f)
			if err != nil {
				return err
			}
		}
		return &returned{val: v}
	case *ast.CallStmt:
		_, err := in.evalExpr(s.Call, f)
		return err
	case *ast.FreeStmt:
		v, err := in.evalExpr(s.Target, f)
		if err != nil {
			return err
		}
		if !v.IsPtr || v.Ptr == nil {
			return &RuntimeError{Pos: s.FreePos, Msg: "free of NULL or non-pointer"}
		}
		in.Heap.Free(v.Ptr)
		return nil
	}
	return &RuntimeError{Pos: s.Pos(), Msg: fmt.Sprintf("unknown statement %T", s)}
}

func truthy(v Value) bool {
	if v.IsPtr {
		return v.Ptr != nil
	}
	return v.Int != 0
}

// assign writes a value through an lvalue path.
func (in *Interp) assign(lhs *ast.Path, val Value, f *frame) error {
	if lhs.IsVar() {
		if _, ok := f.vars[lhs.Var]; !ok {
			return &RuntimeError{Pos: lhs.VarPos, Msg: "undefined variable " + lhs.Var}
		}
		f.vars[lhs.Var] = val
		return nil
	}
	base, err := in.walkPath(lhs, len(lhs.Fields)-1, f)
	if err != nil {
		return err
	}
	if base.Ptr == nil {
		return &RuntimeError{Pos: lhs.VarPos, Msg: "store through NULL pointer"}
	}
	if in.Heap.Freed(base.Ptr) {
		return &RuntimeError{Pos: lhs.VarPos, Msg: "store through freed node"}
	}
	field := lhs.Fields[len(lhs.Fields)-1]
	if val.IsPtr {
		base.Ptr.Ptrs[field] = val.Ptr
	} else {
		base.Ptr.Ints[field] = val.Int
	}
	return nil
}

// walkPath evaluates the first n dereferences of a path.
func (in *Interp) walkPath(p *ast.Path, n int, f *frame) (Value, error) {
	v, ok := f.vars[p.Var]
	if !ok {
		return Value{}, &RuntimeError{Pos: p.VarPos, Msg: "undefined variable " + p.Var}
	}
	for i := 0; i < n; i++ {
		if !v.IsPtr {
			return Value{}, &RuntimeError{Pos: p.VarPos, Msg: "dereference of non-pointer"}
		}
		if v.Ptr == nil {
			return Value{}, &RuntimeError{Pos: p.VarPos,
				Msg: fmt.Sprintf("NULL dereference at ->%s", p.Fields[i])}
		}
		if in.Heap.Freed(v.Ptr) {
			return Value{}, &RuntimeError{Pos: p.VarPos, Msg: "use after free"}
		}
		field := p.Fields[i]
		if iv, ok := v.Ptr.Ints[field]; ok {
			v = IntVal(iv)
		} else if pv, ok := v.Ptr.Ptrs[field]; ok {
			v = PtrVal(pv)
		} else {
			// Field never written: an int field reads 0, a pointer field
			// reads NULL, per the declaration.
			st := in.Env.Type(v.Ptr.Type)
			switch {
			case st == nil:
				return Value{}, &RuntimeError{Pos: p.VarPos,
					Msg: "node of undeclared type " + v.Ptr.Type}
			case st.HasIntField(field):
				v = IntVal(0)
			case st.Field(field) != nil:
				v = PtrVal(nil)
			default:
				return Value{}, &RuntimeError{Pos: p.VarPos,
					Msg: fmt.Sprintf("type %s has no field %s", v.Ptr.Type, field)}
			}
		}
	}
	return v, nil
}

func (in *Interp) evalExpr(e ast.Expr, f *frame) (Value, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return IntVal(e.Value), nil
	case *ast.NullLit:
		return PtrVal(nil), nil
	case *ast.NewExpr:
		return PtrVal(in.Heap.New(e.TypeName)), nil
	case *ast.Path:
		return in.walkPath(e, len(e.Fields), f)
	case *ast.UnExpr:
		v, err := in.evalExpr(e.X, f)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case token.MINUS:
			return IntVal(-v.Int), nil
		case token.NOT:
			if truthy(v) {
				return IntVal(0), nil
			}
			return IntVal(1), nil
		}
		return Value{}, &RuntimeError{Pos: e.OpPos, Msg: "bad unary operator"}
	case *ast.BinExpr:
		return in.evalBin(e, f)
	case *ast.CallExpr:
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			v, err := in.evalExpr(a, f)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return in.Call(e.Name, args...)
	}
	return Value{}, &RuntimeError{Pos: e.Pos(), Msg: fmt.Sprintf("unknown expression %T", e)}
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func (in *Interp) evalBin(e *ast.BinExpr, f *frame) (Value, error) {
	// Short-circuit logicals first.
	if e.Op == token.AND || e.Op == token.OR {
		x, err := in.evalExpr(e.X, f)
		if err != nil {
			return Value{}, err
		}
		if e.Op == token.AND && !truthy(x) {
			return IntVal(0), nil
		}
		if e.Op == token.OR && truthy(x) {
			return IntVal(1), nil
		}
		y, err := in.evalExpr(e.Y, f)
		if err != nil {
			return Value{}, err
		}
		return boolVal(truthy(y)), nil
	}

	x, err := in.evalExpr(e.X, f)
	if err != nil {
		return Value{}, err
	}
	y, err := in.evalExpr(e.Y, f)
	if err != nil {
		return Value{}, err
	}

	if x.IsPtr || y.IsPtr {
		switch e.Op {
		case token.EQ:
			return boolVal(x.Ptr == y.Ptr), nil
		case token.NEQ:
			return boolVal(x.Ptr != y.Ptr), nil
		}
		return Value{}, &RuntimeError{Pos: e.X.Pos(), Msg: "arithmetic on pointers"}
	}

	switch e.Op {
	case token.PLUS:
		return IntVal(x.Int + y.Int), nil
	case token.MINUS:
		return IntVal(x.Int - y.Int), nil
	case token.STAR:
		return IntVal(x.Int * y.Int), nil
	case token.SLASH:
		if y.Int == 0 {
			return Value{}, &RuntimeError{Pos: e.X.Pos(), Msg: "division by zero"}
		}
		return IntVal(x.Int / y.Int), nil
	case token.PCT:
		if y.Int == 0 {
			return Value{}, &RuntimeError{Pos: e.X.Pos(), Msg: "modulo by zero"}
		}
		return IntVal(x.Int % y.Int), nil
	case token.EQ:
		return boolVal(x.Int == y.Int), nil
	case token.NEQ:
		return boolVal(x.Int != y.Int), nil
	case token.LT:
		return boolVal(x.Int < y.Int), nil
	case token.LE:
		return boolVal(x.Int <= y.Int), nil
	case token.GT:
		return boolVal(x.Int > y.Int), nil
	case token.GE:
		return boolVal(x.Int >= y.Int), nil
	}
	return Value{}, &RuntimeError{Pos: e.X.Pos(), Msg: "bad binary operator"}
}
