package ir

import (
	"strings"
	"testing"

	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const twoWayLL = `
type TwoWayLL [X] {
    int x;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

// shiftSrc matches the paper's Section 5.2 loop (field named x as there).
const shiftSrc = twoWayLL + `
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->x = p->x - hd->x;
        p = p->next;
    }
}
`

func build(t *testing.T, src, fn string) *Program {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("func %s missing", fn)
	}
	return Build(fi, info.Env)
}

// TestPaperLoopShape reproduces the pseudo-assembly of Section 5.2:
//
//	S1 if p==NULL goto done
//	S2 load p->x, R1
//	S3 load hd->x, R2
//	S4 sub R1, R2, R3
//	S5 store R3, p->x
//	S6 load p->next, p
//	S7 goto S1
func TestPaperLoopShape(t *testing.T) {
	p := build(t, shiftSrc, "shift")
	if len(p.Loops) != 1 {
		t.Fatalf("loops = %d", len(p.Loops))
	}
	l := p.Loops[0]
	var got []string
	for _, in := range p.Instrs[l.TestStart : l.BodyEnd+1] {
		got = append(got, in.String())
	}
	want := []string{
		"if p == NULL goto " + l.ExitLabel,
		"load p->x, R1",
		"load hd->x, R2",
		"sub R1, R2, R3",
		"store R3, p->x",
		"load p->next, p",
		"goto " + l.HeadLabel,
	}
	if len(got) != len(want) {
		t.Fatalf("body:\n%s", strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("instr %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

func TestDefsAndUses(t *testing.T) {
	cases := []struct {
		in   Instr
		def  string
		uses []string
	}{
		{Instr{Op: Load, Dst: "R1", Src1: "p", Field: "x"}, "R1", []string{"p"}},
		{Instr{Op: Store, Src1: "p", Src2: "R3", Field: "x"}, "", []string{"p", "R3"}},
		{Instr{Op: Sub, Src1: "R1", Src2: "R2", Dst: "R3"}, "R3", []string{"R1", "R2"}},
		{Instr{Op: Br, Rel: EQ, Src1: "p", Src2: ""}, "", []string{"p"}},
		{Instr{Op: Move, Src1: "a", Dst: "b"}, "b", []string{"a"}},
		{Instr{Op: LoadImm, Imm: 4, Dst: "c"}, "c", nil},
		{Instr{Op: New, TypeName: "T", Dst: "n"}, "n", nil},
		{Instr{Op: Goto, Target: "L"}, "", nil},
	}
	for _, c := range cases {
		if got := c.in.Defs(); got != c.def {
			t.Errorf("%s: def %q want %q", c.in.String(), got, c.def)
		}
		got := c.in.Uses()
		if len(got) != len(c.uses) {
			t.Errorf("%s: uses %v want %v", c.in.String(), got, c.uses)
			continue
		}
		for i := range got {
			if got[i] != c.uses[i] {
				t.Errorf("%s: uses %v want %v", c.in.String(), got, c.uses)
			}
		}
	}
}

func TestRelNegate(t *testing.T) {
	pairs := map[Rel]Rel{EQ: NE, NE: EQ, LT: GE, LE: GT, GT: LE, GE: LT}
	for r, want := range pairs {
		if got := r.Negate(); got != want {
			t.Errorf("%s.Negate() = %s, want %s", r, got, want)
		}
	}
}

func TestIfElseLowering(t *testing.T) {
	p := build(t, `
int f(int a) {
    int x;
    if (a > 0) {
        x = 1;
    } else {
        x = 2;
    }
    return x;
}`, "f")
	s := p.String()
	for _, frag := range []string{"if a <= R1 goto", "li 1, x", "li 2, x", "goto endif"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q in:\n%s", frag, s)
		}
	}
}

func TestShortCircuitAnd(t *testing.T) {
	// In a branch-if-false context, && splits into two negated tests.
	p := build(t, `
void f(int a, int b) {
    int x;
    while (a > 0 && b > 0) {
        x = 1;
        a = a - 1;
    }
}`, "f")
	l := p.Loops[0]
	tests := p.Instrs[l.TestStart:l.BodyStart]
	brs := 0
	for _, in := range tests {
		if in.Op == Br {
			brs++
		}
	}
	if brs != 2 {
		t.Errorf("want 2 negated branch tests for &&, got %d:\n%s", brs, p.String())
	}
}

func TestMultiDerefLoads(t *testing.T) {
	p := build(t, twoWayLL+`
void f(TwoWayLL *p) {
    int v;
    v = p->next->x;
}`, "f")
	s := p.String()
	if !strings.Contains(s, "load p->next, R1") || !strings.Contains(s, "load R1->x, v") {
		t.Errorf("bad multi-deref lowering:\n%s", s)
	}
}

func TestStoreNull(t *testing.T) {
	p := build(t, twoWayLL+`
void f(TwoWayLL *p) {
    p->next = NULL;
}`, "f")
	if !strings.Contains(p.String(), "store NULL, p->next") {
		t.Errorf("bad null store:\n%s", p.String())
	}
}

func TestNewAndFree(t *testing.T) {
	p := build(t, twoWayLL+`
void f() {
    TwoWayLL *p;
    p = new TwoWayLL;
    free(p);
}`, "f")
	s := p.String()
	if !strings.Contains(s, "new TwoWayLL, p") || !strings.Contains(s, "free p") {
		t.Errorf("bad lowering:\n%s", s)
	}
}

func TestNestedLoopInfos(t *testing.T) {
	p := build(t, `
void f(int n) {
    int i, j;
    i = 0;
    while (i < n) {
        j = 0;
        while (j < n) {
            j = j + 1;
        }
        i = i + 1;
    }
}`, "f")
	if len(p.Loops) != 2 {
		t.Fatalf("loops = %d", len(p.Loops))
	}
	outer, inner := p.Loops[0], p.Loops[1]
	if outer.SrcID != 0 || inner.SrcID != 1 {
		t.Errorf("SrcIDs = %d, %d", outer.SrcID, inner.SrcID)
	}
	if !(outer.BodyStart < inner.TestStart && inner.BodyEnd <= outer.BodyEnd) {
		t.Errorf("inner loop not nested in outer: %+v %+v", outer, inner)
	}
}

func TestBodySlice(t *testing.T) {
	p := build(t, shiftSrc, "shift")
	body := p.Body(p.Loops[0])
	if len(body) != 5 {
		t.Errorf("body has %d instrs, want 5:\n%s", len(body), p.String())
	}
}

func TestFindLabel(t *testing.T) {
	p := build(t, shiftSrc, "shift")
	if p.FindLabel(p.Loops[0].HeadLabel) < 0 {
		t.Error("head label not found")
	}
	if p.FindLabel("nope") != -1 {
		t.Error("bogus label found")
	}
}

func TestBuildWithTypes(t *testing.T) {
	info := types.MustCheck(parser.MustParse(twoWayLL + `
void f(TwoWayLL *p) {
    int v;
    v = p->next->x;
}`))
	_, vt := BuildWithTypes(info.Func("f"), info.Env)
	if vt["R1"].Record != "TwoWayLL" {
		t.Errorf("R1 type = %v, want TwoWayLL pointer", vt["R1"])
	}
}
