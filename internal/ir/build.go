package ir

import (
	"fmt"

	"repro/internal/shape"
	"repro/internal/source/ast"
	"repro/internal/source/token"
	"repro/internal/source/types"
)

// builder generates pseudo-assembly from a checked function.
type builder struct {
	prog   *Program
	fi     *types.FuncInfo
	env    *shape.Env
	vtypes map[string]types.Type
	nreg   int
	nlabel int
}

// Build lowers a checked function to pseudo-assembly.
func Build(fi *types.FuncInfo, env *shape.Env) *Program {
	p, _ := BuildWithTypes(fi, env)
	return p
}

func (b *builder) emit(i *Instr) int {
	b.prog.Instrs = append(b.prog.Instrs, i)
	return len(b.prog.Instrs) - 1
}

func (b *builder) reg() string {
	b.nreg++
	return fmt.Sprintf("R%d", b.nreg)
}

func (b *builder) ptrReg(record string) string {
	r := b.reg()
	b.vtypes[r] = types.PointerTo(record)
	return r
}

func (b *builder) label(prefix string) string {
	b.nlabel++
	return fmt.Sprintf("%s%d", prefix, b.nlabel)
}

func (b *builder) recordOf(reg string) string {
	if t, ok := b.vtypes[reg]; ok && t.Kind == types.KindPointer {
		return t.Record
	}
	return ""
}

func (b *builder) block(blk *ast.Block) {
	for _, s := range blk.Stmts {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		b.block(s)
	case *ast.AssignStmt:
		b.assign(s)
	case *ast.WhileStmt:
		b.while(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ReturnStmt:
		if s.Value != nil {
			r := b.expr(s.Value)
			b.emit(&Instr{Op: Ret, Src1: r})
		} else {
			b.emit(&Instr{Op: Ret})
		}
	case *ast.CallStmt:
		for _, a := range s.Call.Args {
			b.expr(a)
		}
		b.emit(&Instr{Op: Call, Name: s.Call.Name})
	case *ast.FreeStmt:
		r := b.expr(s.Target)
		b.emit(&Instr{Op: FreeOp, Src1: r})
	}
}

// base lowers all but the last field of a path and returns the register
// holding the base node plus that node's record type.
func (b *builder) base(p *ast.Path) (string, string) {
	reg := p.Var
	for i := 0; i+1 < len(p.Fields); i++ {
		record := b.recordOf(reg)
		st := b.env.Type(record)
		var next string
		if st != nil {
			if pf := st.Field(p.Fields[i]); pf != nil {
				next = b.ptrReg(pf.Target)
			}
		}
		if next == "" {
			next = b.reg()
		}
		b.emit(&Instr{Op: Load, Dst: next, Src1: reg, Field: p.Fields[i],
			TypeName: record})
		reg = next
	}
	return reg, b.recordOf(reg)
}

func (b *builder) assign(s *ast.AssignStmt) {
	if s.LHS.IsVar() {
		// Evaluate directly into the variable's register.
		b.exprInto(s.RHS, s.LHS.Var)
		return
	}
	baseReg, record := b.base(s.LHS)
	field := s.LHS.Fields[len(s.LHS.Fields)-1]
	if _, isNull := s.RHS.(*ast.NullLit); isNull {
		b.emit(&Instr{Op: Store, Src1: baseReg, Src2: "", Field: field, TypeName: record})
		return
	}
	val := b.expr(s.RHS)
	b.emit(&Instr{Op: Store, Src1: baseReg, Src2: val, Field: field, TypeName: record})
}

// expr lowers an expression into a fresh (or reused variable) register.
// Operands are evaluated before the destination register is allocated, so
// "p->x - hd->x" yields the paper's R1, R2 then sub into R3.
func (b *builder) expr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Path:
		if e.IsVar() {
			return e.Var
		}
		baseReg, record := b.base(e)
		t := b.pathResultType(e)
		var dst string
		if t.Kind == types.KindPointer {
			dst = b.ptrReg(t.Record)
		} else {
			dst = b.reg()
		}
		b.emit(&Instr{Op: Load, Dst: dst, Src1: baseReg,
			Field: e.Fields[len(e.Fields)-1], TypeName: record})
		return dst
	case *ast.BinExpr:
		if op, ok := binOps[e.Op]; ok {
			x := b.expr(e.X)
			y := b.expr(e.Y)
			dst := b.reg()
			b.emit(&Instr{Op: op, Src1: x, Src2: y, Dst: dst})
			return dst
		}
		if rel, ok := relOps[e.Op]; ok {
			x := b.expr(e.X)
			y := ""
			if _, isNull := e.Y.(*ast.NullLit); !isNull {
				y = b.expr(e.Y)
			}
			dst := b.reg()
			b.emit(&Instr{Op: Set, Rel: rel, Src1: x, Src2: y, Dst: dst})
			return dst
		}
	}
	r := b.reg()
	b.exprInto(e, r)
	return r
}

// pathResultType returns the type of the full path expression.
func (b *builder) pathResultType(p *ast.Path) types.Type {
	t := b.vtypes[p.Var]
	for _, f := range p.Fields {
		if t.Kind != types.KindPointer {
			return types.Invalid
		}
		st := b.env.Type(t.Record)
		if st == nil {
			return types.Invalid
		}
		if st.HasIntField(f) {
			t = types.Int
		} else if pf := st.Field(f); pf != nil {
			t = types.PointerTo(pf.Target)
		} else {
			return types.Invalid
		}
	}
	return t
}

// exprInto lowers an expression into the named register.
func (b *builder) exprInto(e ast.Expr, dst string) {
	switch e := e.(type) {
	case *ast.IntLit:
		b.emit(&Instr{Op: LoadImm, Imm: e.Value, Dst: dst})
	case *ast.NullLit:
		b.emit(&Instr{Op: LoadImm, Imm: 0, Dst: dst}) // NULL is the zero ref
	case *ast.NewExpr:
		b.emit(&Instr{Op: New, TypeName: e.TypeName, Dst: dst})
	case *ast.Path:
		if e.IsVar() {
			if e.Var != dst {
				b.emit(&Instr{Op: Move, Src1: e.Var, Dst: dst})
			}
			return
		}
		baseReg, record := b.base(e)
		b.emit(&Instr{Op: Load, Dst: dst, Src1: baseReg,
			Field: e.Fields[len(e.Fields)-1], TypeName: record})
	case *ast.UnExpr:
		switch e.Op {
		case token.MINUS:
			r := b.expr(e.X)
			b.emit(&Instr{Op: Neg, Src1: r, Dst: dst})
		case token.NOT:
			r := b.expr(e.X)
			b.emit(&Instr{Op: Set, Rel: EQ, Src1: r, Src2: "", Dst: dst})
		}
	case *ast.BinExpr:
		b.binInto(e, dst)
	case *ast.CallExpr:
		for _, a := range e.Args {
			b.expr(a)
		}
		b.emit(&Instr{Op: Call, Name: e.Name})
		b.emit(&Instr{Op: LoadImm, Imm: 0, Dst: dst}) // opaque result
	}
}

var binOps = map[token.Kind]Op{
	token.PLUS:  Add,
	token.MINUS: Sub,
	token.STAR:  Mul,
	token.SLASH: Div,
	token.PCT:   Rem,
}

var relOps = map[token.Kind]Rel{
	token.EQ:  EQ,
	token.NEQ: NE,
	token.LT:  LT,
	token.LE:  LE,
	token.GT:  GT,
	token.GE:  GE,
}

func (b *builder) binInto(e *ast.BinExpr, dst string) {
	if op, ok := binOps[e.Op]; ok {
		x := b.expr(e.X)
		y := b.expr(e.Y)
		b.emit(&Instr{Op: op, Src1: x, Src2: y, Dst: dst})
		return
	}
	if rel, ok := relOps[e.Op]; ok {
		x := b.expr(e.X)
		y := ""
		if _, isNull := e.Y.(*ast.NullLit); !isNull {
			y = b.expr(e.Y)
		}
		b.emit(&Instr{Op: Set, Rel: rel, Src1: x, Src2: y, Dst: dst})
		return
	}
	// Logical && and || via short-circuit branches into dst.
	switch e.Op {
	case token.AND, token.OR:
		lEnd := b.label("L")
		b.exprInto(e.X, dst)
		if e.Op == token.AND {
			b.emit(&Instr{Op: Br, Rel: EQ, Src1: dst, Src2: "", Target: lEnd})
		} else {
			b.emit(&Instr{Op: Br, Rel: NE, Src1: dst, Src2: "", Target: lEnd})
		}
		b.exprInto(e.Y, dst)
		b.emit(&Instr{Op: Label, Name: lEnd})
	}
}

// branchIfFalse emits code that jumps to target when the condition is
// false. Simple comparisons compile to a single negated branch, matching
// the paper's "S1 if p==NULL goto done".
func (b *builder) branchIfFalse(cond ast.Expr, target string) {
	if bin, ok := cond.(*ast.BinExpr); ok {
		if rel, isRel := relOps[bin.Op]; isRel {
			x := b.expr(bin.X)
			y := ""
			if _, isNull := bin.Y.(*ast.NullLit); !isNull {
				y = b.expr(bin.Y)
			}
			b.emit(&Instr{Op: Br, Rel: rel.Negate(), Src1: x, Src2: y, Target: target})
			return
		}
		if bin.Op == token.AND {
			b.branchIfFalse(bin.X, target)
			b.branchIfFalse(bin.Y, target)
			return
		}
	}
	r := b.expr(cond)
	b.emit(&Instr{Op: Br, Rel: EQ, Src1: r, Src2: "", Target: target})
}

func (b *builder) while(s *ast.WhileStmt) {
	head := b.label("loop")
	exit := b.label("done")
	li := &LoopInfo{HeadLabel: head, ExitLabel: exit, SrcID: len(b.prog.Loops)}
	b.prog.Loops = append(b.prog.Loops, li)

	b.emit(&Instr{Op: Label, Name: head})
	li.TestStart = len(b.prog.Instrs)
	b.branchIfFalse(s.Cond, exit)
	li.BodyStart = len(b.prog.Instrs)
	b.stmt(s.Body)
	li.BodyEnd = len(b.prog.Instrs)
	b.emit(&Instr{Op: Goto, Target: head})
	b.emit(&Instr{Op: Label, Name: exit})
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	elseL := b.label("else")
	b.branchIfFalse(s.Cond, elseL)
	b.stmt(s.Then)
	if s.Else != nil {
		endL := b.label("endif")
		b.emit(&Instr{Op: Goto, Target: endL})
		b.emit(&Instr{Op: Label, Name: elseL})
		b.stmt(s.Else)
		b.emit(&Instr{Op: Label, Name: endL})
		return
	}
	b.emit(&Instr{Op: Label, Name: elseL})
}

// BuildWithTypes lowers the function and also returns the register type
// table (source variables plus generated pointer temporaries).
func BuildWithTypes(fi *types.FuncInfo, env *shape.Env) (*Program, map[string]types.Type) {
	b := &builder{
		prog:   &Program{Name: fi.Decl.Name},
		fi:     fi,
		env:    env,
		vtypes: map[string]types.Type{},
	}
	for v, t := range fi.Vars {
		b.vtypes[v] = t
	}
	for _, p := range fi.Decl.Params {
		b.prog.Params = append(b.prog.Params, p.Name)
	}
	b.block(fi.Decl.Body)
	b.emit(&Instr{Op: Ret})
	return b.prog, b.vtypes
}
