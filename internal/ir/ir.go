// Package ir defines the pseudo-assembly intermediate representation the
// paper uses in Section 5.2 (the S1..S7 loop), a code generator from mini
// ASTs, and loop metadata. The dependence-graph builder, the loop
// transformations and the machine simulators all operate on this IR.
//
// Registers are named: source-level variables keep their names (p, hd), and
// generated temporaries are R1, R2, ... Values are 64-bit integers or node
// references; the machine package gives them meaning.
package ir

import (
	"fmt"
	"strings"
)

// Op is an instruction opcode.
type Op int

// Opcodes. Load and Store move values between registers and node fields.
const (
	Nop Op = iota
	Label
	Goto  // goto Target
	Br    // if Src1 Rel Src2 goto Target (Src2 "" compares against NULL/0)
	Load  // Dst = [Src1.Field]
	Store // [Src1.Field] = Src2 (Src2 "" stores NULL)
	LoadImm
	Move // Dst = Src1
	Add  // Dst = Src1 + Src2
	Sub
	Mul
	Div
	Rem
	Neg // Dst = -Src1
	Set // Dst = (Src1 Rel Src2) as 0/1
	New // Dst = new TypeName
	FreeOp
	Call // opaque call (not pipelined)
	Ret
)

var opNames = map[Op]string{
	Nop: "nop", Label: "label", Goto: "goto", Br: "br", Load: "load",
	Store: "store", LoadImm: "li", Move: "move", Add: "add", Sub: "sub",
	Mul: "mul", Div: "div", Rem: "rem", Neg: "neg", Set: "set", New: "new",
	FreeOp: "free", Call: "call", Ret: "ret",
}

// String returns the mnemonic.
func (o Op) String() string { return opNames[o] }

// Rel is a comparison relation for Br and Set.
type Rel int

// Relations.
const (
	EQ Rel = iota
	NE
	LT
	LE
	GT
	GE
)

var relNames = map[Rel]string{EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">="}

// String returns the source spelling.
func (r Rel) String() string { return relNames[r] }

// Negate returns the complementary relation.
func (r Rel) Negate() Rel {
	switch r {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	}
	return LT
}

// Instr is one pseudo-assembly instruction.
type Instr struct {
	Op       Op
	Dst      string
	Src1     string
	Src2     string
	Field    string // Load/Store
	TypeName string // New, and record type of Src1 for Load/Store
	Imm      int64  // LoadImm
	Rel      Rel    // Br, Set
	Target   string // Goto, Br; Label name for Label
	Name     string // label name (Label), function name (Call)
}

// Clone returns a copy of the instruction.
func (i *Instr) Clone() *Instr {
	c := *i
	return &c
}

// Defs returns the register the instruction writes, or "".
func (i *Instr) Defs() string {
	switch i.Op {
	case Load, LoadImm, Move, Add, Sub, Mul, Div, Rem, Neg, Set, New:
		return i.Dst
	}
	return ""
}

// Uses returns the registers the instruction reads.
func (i *Instr) Uses() []string {
	var out []string
	add := func(r string) {
		if r != "" {
			out = append(out, r)
		}
	}
	switch i.Op {
	case Load:
		add(i.Src1)
	case Store:
		add(i.Src1)
		add(i.Src2)
	case Move, Neg:
		add(i.Src1)
	case Add, Sub, Mul, Div, Rem, Set:
		add(i.Src1)
		add(i.Src2)
	case Br:
		add(i.Src1)
		add(i.Src2)
	case FreeOp, Ret:
		add(i.Src1)
	}
	return out
}

// IsMem reports whether the instruction accesses the heap.
func (i *Instr) IsMem() bool { return i.Op == Load || i.Op == Store }

// String renders the instruction in the paper's style.
func (i *Instr) String() string {
	switch i.Op {
	case Nop:
		return "nop"
	case Label:
		return i.Name + ":"
	case Goto:
		return "goto " + i.Target
	case Br:
		rhs := i.Src2
		if rhs == "" {
			rhs = "NULL"
		}
		return fmt.Sprintf("if %s %s %s goto %s", i.Src1, i.Rel, rhs, i.Target)
	case Load:
		return fmt.Sprintf("load %s->%s, %s", i.Src1, i.Field, i.Dst)
	case Store:
		src := i.Src2
		if src == "" {
			src = "NULL"
		}
		return fmt.Sprintf("store %s, %s->%s", src, i.Src1, i.Field)
	case LoadImm:
		return fmt.Sprintf("li %d, %s", i.Imm, i.Dst)
	case Move:
		return fmt.Sprintf("move %s, %s", i.Src1, i.Dst)
	case Add, Sub, Mul, Div, Rem:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Src1, i.Src2, i.Dst)
	case Neg:
		return fmt.Sprintf("neg %s, %s", i.Src1, i.Dst)
	case Set:
		rhs := i.Src2
		if rhs == "" {
			rhs = "NULL"
		}
		return fmt.Sprintf("set%s %s, %s, %s", i.Rel, i.Src1, rhs, i.Dst)
	case New:
		return fmt.Sprintf("new %s, %s", i.TypeName, i.Dst)
	case FreeOp:
		return fmt.Sprintf("free %s", i.Src1)
	case Call:
		return "call " + i.Name
	case Ret:
		if i.Src1 != "" {
			return "ret " + i.Src1
		}
		return "ret"
	}
	return "?"
}

// LoopInfo describes one while loop in a Program: instruction index ranges
// for its test and body.
type LoopInfo struct {
	HeadLabel string // target of the back edge
	ExitLabel string
	// TestStart..BodyEnd are indices into Program.Instrs:
	// [TestStart, BodyStart) is the condition test, [BodyStart, BodyEnd) the
	// body, with the back-edge goto at BodyEnd (exclusive of it).
	TestStart int
	BodyStart int
	BodyEnd   int
	SrcID     int // order of the source while statement (matches norm loop order)
}

// Program is a linear instruction sequence for one function.
type Program struct {
	Name   string
	Instrs []*Instr
	Loops  []*LoopInfo
	Params []string // parameter register names, in order
}

// String renders the program with instruction numbers S0, S1, ...
func (p *Program) String() string {
	var b strings.Builder
	for idx, in := range p.Instrs {
		if in.Op == Label {
			fmt.Fprintf(&b, "%s\n", in)
			continue
		}
		fmt.Fprintf(&b, "S%-3d %s\n", idx, in)
	}
	return b.String()
}

// Body returns the instructions of a loop body (excluding the back edge).
func (p *Program) Body(l *LoopInfo) []*Instr {
	return p.Instrs[l.BodyStart:l.BodyEnd]
}

// FindLabel returns the index of a label instruction.
func (p *Program) FindLabel(name string) int {
	for i, in := range p.Instrs {
		if in.Op == Label && in.Name == name {
			return i
		}
	}
	return -1
}
