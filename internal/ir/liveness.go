package ir

// Backward live-register analysis over the linear pseudo-assembly. The
// dependence and scheduling passes use it to reason about register lifetimes;
// it mirrors the CFG-level pass in internal/norm (which drives the path
// matrix engine's row dropping) at the instruction level.

// Liveness holds per-instruction live-register sets for one Program.
type Liveness struct {
	regs []string
	idx  map[string]int
	in   []regset // live before Instrs[i] executes
	out  []regset // live after Instrs[i] executes
}

type regset []uint64

func newRegset(n int) regset { return make(regset, (n+63)/64) }

func (b regset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b regset) add(i int)      { b[i/64] |= 1 << (i % 64) }

func (b regset) orWith(o regset) bool {
	changed := false
	for i, w := range o {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

// succs returns the instruction indices control can reach from index i.
func succs(p *Program, labels map[string]int, i int) []int {
	in := p.Instrs[i]
	switch in.Op {
	case Goto:
		if t, ok := labels[in.Target]; ok {
			return []int{t}
		}
		return nil
	case Br:
		out := make([]int, 0, 2)
		if i+1 < len(p.Instrs) {
			out = append(out, i+1)
		}
		if t, ok := labels[in.Target]; ok {
			out = append(out, t)
		}
		return out
	case Ret:
		return nil
	}
	if i+1 < len(p.Instrs) {
		return []int{i + 1}
	}
	return nil
}

// ComputeLiveness runs backward live-register dataflow to a fixed point
// using each instruction's Uses and Defs.
func ComputeLiveness(p *Program) *Liveness {
	// Register universe: everything any instruction reads or writes.
	l := &Liveness{idx: map[string]int{}}
	seen := func(r string) {
		if r == "" {
			return
		}
		if _, ok := l.idx[r]; !ok {
			l.idx[r] = len(l.regs)
			l.regs = append(l.regs, r)
		}
	}
	for _, in := range p.Instrs {
		seen(in.Defs())
		for _, r := range in.Uses() {
			seen(r)
		}
	}
	nr := len(l.regs)

	labels := make(map[string]int, len(p.Instrs))
	for i, in := range p.Instrs {
		if in.Op == Label {
			labels[in.Name] = i
		}
	}

	use := make([]regset, len(p.Instrs))
	def := make([]int, len(p.Instrs))
	l.in = make([]regset, len(p.Instrs))
	l.out = make([]regset, len(p.Instrs))
	for i, in := range p.Instrs {
		u := newRegset(nr)
		for _, r := range in.Uses() {
			u.add(l.idx[r])
		}
		use[i] = u
		def[i] = -1
		if d := in.Defs(); d != "" {
			def[i] = l.idx[d]
		}
		l.in[i] = newRegset(nr)
		l.out[i] = newRegset(nr)
	}

	// Predecessor lists, inverted from succs.
	preds := make([][]int, len(p.Instrs))
	for i := range p.Instrs {
		for _, s := range succs(p, labels, i) {
			preds[s] = append(preds[s], i)
		}
	}

	work := make([]int, 0, len(p.Instrs))
	inWork := make([]bool, len(p.Instrs))
	for i := len(p.Instrs) - 1; i >= 0; i-- {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false

		out := l.out[i]
		for _, s := range succs(p, labels, i) {
			out.orWith(l.in[s])
		}
		in := l.in[i]
		changed := false
		di := def[i]
		for w := range in {
			nw := out[w]
			if di >= 0 && di/64 == w {
				nw &^= 1 << (di % 64)
			}
			nw |= use[i][w]
			if nw|in[w] != in[w] {
				in[w] |= nw
				changed = true
			}
		}
		if !changed {
			continue
		}
		for _, pi := range preds[i] {
			if !inWork[pi] {
				work = append(work, pi)
				inWork[pi] = true
			}
		}
	}
	return l
}

// Regs returns the tracked registers in index order.
func (l *Liveness) Regs() []string { return l.regs }

// LiveIn reports whether r may be read before being rewritten starting at
// Instrs[i]. Unknown registers are conservatively live.
func (l *Liveness) LiveIn(i int, r string) bool {
	ri, ok := l.idx[r]
	if !ok || i < 0 || i >= len(l.in) {
		return true
	}
	return l.in[i].has(ri)
}

// LiveOut reports whether r is live immediately after Instrs[i] executes.
// Unknown registers are conservatively live.
func (l *Liveness) LiveOut(i int, r string) bool {
	ri, ok := l.idx[r]
	if !ok || i < 0 || i >= len(l.out) {
		return true
	}
	return l.out[i].has(ri)
}
