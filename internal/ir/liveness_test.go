package ir

import "testing"

func TestLivenessLoopRegisters(t *testing.T) {
	p := build(t, shiftSrc, "shift")
	l := ComputeLiveness(p)
	if len(p.Loops) != 1 {
		t.Fatalf("loops = %d", len(p.Loops))
	}
	loop := p.Loops[0]

	// At the loop test, both hd and p are read on every iteration.
	if !l.LiveIn(loop.TestStart, "p") {
		t.Errorf("p dead at loop test; the branch reads it")
	}
	if !l.LiveIn(loop.TestStart, "hd") {
		t.Errorf("hd dead at loop test; the body loads hd->x")
	}

	// Find "sub R1, R2, R3": R1 and R2 are consumed there and die; R3 is
	// born and lives until the store.
	sub := -1
	for i, in := range p.Instrs {
		if in.Op == Sub && in.Dst == "R3" {
			sub = i
			break
		}
	}
	if sub < 0 {
		t.Fatalf("no sub instruction in:\n%s", p)
	}
	if !l.LiveIn(sub, "R1") || !l.LiveIn(sub, "R2") {
		t.Errorf("R1/R2 dead before sub; it reads both")
	}
	if l.LiveOut(sub, "R1") || l.LiveOut(sub, "R2") {
		t.Errorf("R1/R2 live after sub; nothing reads them again")
	}
	if !l.LiveOut(sub, "R3") {
		t.Errorf("R3 dead after sub; the store reads it")
	}

	// Registers local to the body never cross the back edge.
	if l.LiveIn(loop.TestStart, "R1") || l.LiveIn(loop.TestStart, "R3") {
		t.Errorf("body-local registers live across the loop test")
	}
}

func TestLivenessUnknownRegisterConservative(t *testing.T) {
	p := build(t, shiftSrc, "shift")
	l := ComputeLiveness(p)
	if !l.LiveIn(0, "nosuch") || !l.LiveOut(len(p.Instrs)-1, "nosuch") {
		t.Errorf("unknown registers must be conservatively live")
	}
	if !l.LiveIn(-1, "p") || !l.LiveOut(len(p.Instrs), "p") {
		t.Errorf("out-of-range indices must be conservatively live")
	}
}
