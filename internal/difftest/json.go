package difftest

import "encoding/json"

// marshalReportJSON renders a value the way every addsfuzz artifact is
// written: two-space indent, trailing newline, deterministic key order
// (encoding/json sorts map keys). Reports and corpus records must be
// byte-identical across runs with the same inputs.
func marshalReportJSON(v interface{}) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// MarshalReport renders a campaign report in the canonical artifact form
// (what addsfuzz prints to stdout and CI archives).
func MarshalReport(r *Report) ([]byte, error) { return marshalReportJSON(r) }
