package difftest

import "repro/internal/gen"

// Shrink delta-debugs a failing program down to a minimal statement list:
// the smallest variant for which failing still holds. It alternates two
// structure-aware passes to a fixed point — chunked statement removal
// (ddmin-style, halving chunk sizes) and compound unwrapping (replacing a
// loop or guard by its body, which plain line deletion cannot reach
// without breaking syntax) — under a hard budget of failing-checks, so a
// pathological divergence cannot stall a campaign.
func Shrink(p *gen.Program, failing func(*gen.Program) bool, maxChecks int) *gen.Program {
	if maxChecks <= 0 {
		maxChecks = 400
	}
	cur := p
	checks := 0
	// try adopts the candidate statement list if it still fails.
	try := func(stmts []gen.Stmt) bool {
		if checks >= maxChecks {
			return false
		}
		checks++
		q := cur.WithStmts(stmts)
		if !failing(q) {
			return false
		}
		cur = q
		return true
	}
	without := func(stmts []gen.Stmt, i, j int) []gen.Stmt {
		out := make([]gen.Stmt, 0, len(stmts)-(j-i))
		out = append(out, stmts[:i]...)
		return append(out, stmts[j:]...)
	}
	for changed := true; changed && checks < maxChecks; {
		changed = false
		// Pass 1: remove chunks, largest first.
		for size := (len(cur.Stmts) + 1) / 2; size >= 1; size /= 2 {
			for i := 0; i+size <= len(cur.Stmts); {
				if try(without(cur.Stmts, i, i+size)) {
					changed = true // the next chunk shifted into place at i
				} else {
					i++
				}
			}
		}
		// Pass 2: splice compound bodies in place of their wrapper.
		for i := 0; i < len(cur.Stmts); i++ {
			s := cur.Stmts[i]
			if len(s.Body) == 0 {
				continue
			}
			cand := make([]gen.Stmt, 0, len(cur.Stmts)+len(s.Body)-1)
			cand = append(cand, cur.Stmts[:i]...)
			cand = append(cand, s.Body...)
			cand = append(cand, cur.Stmts[i+1:]...)
			if try(cand) {
				changed = true
				i-- // the spliced body may unwrap or shrink further
			}
		}
	}
	return cur
}
