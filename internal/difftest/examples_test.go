package difftest

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/source/parser"
	"repro/internal/source/types"
)

// extractSrc pulls the `const src = ` backtick literal out of an example's
// main.go. Every example embeds exactly one such block.
func extractSrc(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const marker = "const src = `"
	i := strings.Index(string(data), marker)
	if i < 0 {
		t.Fatalf("%s: no `const src = ` block", path)
	}
	rest := string(data)[i+len(marker):]
	j := strings.IndexByte(rest, '`')
	if j < 0 {
		t.Fatalf("%s: unterminated src block", path)
	}
	return rest[:j]
}

// TestExamplesXformEquivalence aims oracle pair 2 (the transformation
// observational-equivalence check) at every function of every shipped
// example: Unroll k=2,3 on the scalar machine and LICM plus software
// pipelining on the VLIW machine must preserve the final heap on the
// example programs the paper's narrative is built around, not just on
// generated ones.
func TestExamplesXformEquivalence(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}
	for _, path := range dirs {
		name := filepath.Base(filepath.Dir(path))
		t.Run(name, func(t *testing.T) {
			src := extractSrc(t, path)
			prog, err := parser.Parse([]byte(src))
			if err != nil {
				t.Fatalf("example source does not parse: %v", err)
			}
			info, errs := types.Check(prog)
			if len(errs) > 0 {
				t.Fatalf("example source does not check: %v", errs[0])
			}
			fns := make([]string, 0, len(info.Funcs))
			for fn := range info.Funcs {
				fns = append(fns, fn)
			}
			sort.Strings(fns)
			for _, fn := range fns {
				for _, d := range XformCheck(info, fn, 1, nil) {
					t.Errorf("%s: %s", fn, d)
				}
			}
		})
	}
}
