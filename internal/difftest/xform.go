package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/alias"
	"repro/internal/depgraph"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/norm"
	"repro/internal/source/types"
	"repro/internal/structures"
	"repro/internal/xform"
)

// XformCheck is oracle pair 2: observational equivalence of the original
// function against every GPM-enabled transformation of each of its loops —
// Unroll (k=2, 3) on the scalar machine, LICM and software pipelining on
// the VLIW machine (hoisted loads are speculative, the paper's Section 3.2
// model, so they may execute when the loop body never would).
//
// For every size the check builds two identical fresh heaps from the same
// sub-seed, runs original and transformed to completion, and compares the
// final heap signatures. It returns sorted human-readable divergence
// details, or nil when every variant agrees. Functions the machine model
// cannot execute (calls, no loops, unbuildable parameter structures) are
// skipped, not failed — the check only compares what both sides can run.
//
// It is exported (rather than private to checkXform) so the examples
// equivalence test can aim the same oracle pair at every shipped example.
func XformCheck(info *types.Info, fn string, seed int64, sizes []int) []string {
	fi := info.Func(fn)
	if fi == nil {
		return nil
	}
	prog := ir.Build(fi, info.Env)
	for _, in := range prog.Instrs {
		if in.Op == ir.Call {
			return nil // the machine model has no call support
		}
	}
	if len(prog.Loops) == 0 {
		return nil
	}
	if len(sizes) == 0 {
		sizes = []int{1, 2, 5, 9}
	}
	g := norm.Build(fi, info.Env)
	oracle := alias.NewGPM(g, info.Env)

	var details []string
	diverge := func(format string, args ...interface{}) {
		details = append(details, "xform: "+fmt.Sprintf(format, args...))
	}

	// compare runs baseline and variant on identical fresh heaps for every
	// size and reports the first disagreement per (variant, size).
	type runner func(h *interp.Heap, args map[string]machine.Word) (*interp.Heap, error)
	compare := func(what string, base, variant runner) {
		for _, size := range sizes {
			bh, berr := runOn(base, fi, info, seed, size)
			if berr != nil {
				continue // baseline cannot run this input: nothing to compare
			}
			vh, verr := runOn(variant, fi, info, seed, size)
			if verr != nil {
				diverge("%s: size %d: transformed run failed where original succeeded: %v",
					what, size, verr)
				return
			}
			if bs, vs := heapSig(bh), heapSig(vh); bs != vs {
				diverge("%s: size %d: final heaps differ\n--- original\n%s\n--- transformed\n%s",
					what, size, bs, vs)
				return
			}
		}
	}

	scalar := func(p *ir.Program) runner {
		return func(h *interp.Heap, args map[string]machine.Word) (*interp.Heap, error) {
			_, err := machine.RunScalar(p, machine.DefaultScalar(), h, args)
			return h, err
		}
	}
	vliw := func(p *machine.VLIWProgram) runner {
		return func(h *interp.Heap, args map[string]machine.Word) (*interp.Heap, error) {
			_, err := machine.RunVLIW(p, machine.DefaultVLIW(), h, args)
			return h, err
		}
	}

	for li, l := range prog.Loops {
		if l.SrcID < 0 || l.SrcID >= len(g.Loops) {
			continue
		}
		opt := depgraph.Options{
			Oracle:   oracle,
			NormLoop: g.Loops[l.SrcID],
			Env:      info.Env,
			VarTypes: fi.Vars,
		}
		for _, k := range []int{2, 3} {
			un, err := xform.Unroll(prog, l, k, opt)
			if err != nil {
				continue
			}
			compare(fmt.Sprintf("loop %d unroll k=%d", li, k), scalar(prog), scalar(un))
		}
		if hoisted, _, moved := xform.LICM(prog, l, opt); len(moved) > 0 {
			compare(fmt.Sprintf("loop %d licm", li),
				vliw(machine.Sequentialize(prog)), vliw(machine.Sequentialize(hoisted)))
		}
		if pl, err := xform.EmitPipelined(prog, l, opt, 8); err == nil {
			compare(fmt.Sprintf("loop %d pipeline", li),
				vliw(machine.Sequentialize(prog)), vliw(pl.Prog))
		}
	}
	sort.Strings(details)
	return details
}

// runOn builds the deterministic input heap for (seed, size), binds one
// argument per parameter (a random well-formed structure for pointers, the
// size for ints), and invokes the runner. A parameter structure the
// builder cannot produce skips the run.
func runOn(run func(*interp.Heap, map[string]machine.Word) (*interp.Heap, error),
	fi *types.FuncInfo, info *types.Info, seed int64, size int) (*interp.Heap, error) {
	h := interp.NewHeap()
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(size)))
	args := map[string]machine.Word{}
	for _, p := range fi.Decl.Params {
		switch t := fi.Vars[p.Name]; t.Kind {
		case types.KindPointer:
			roots, err := structures.Random(h, rng, t.Record, size)
			if err != nil || len(roots) == 0 {
				return nil, errSkip
			}
			args[p.Name] = machine.RefWord(roots[0])
		case types.KindInt:
			args[p.Name] = machine.IntWord(int64(size))
		}
	}
	return run(h, args)
}

var errSkip = fmt.Errorf("input structure not buildable")

// heapSig renders a canonical signature of a heap: every live node in
// allocation order, with only non-zero int fields and non-nil pointer
// fields (the machine reads absent fields as zero/NULL, so a written NULL
// and a never-written field must collapse to the same signature).
func heapSig(h *interp.Heap) string {
	nodes := h.Live()
	idx := make(map[*interp.Node]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	var b strings.Builder
	for i, n := range nodes {
		fmt.Fprintf(&b, "#%d:%s{", i, n.Type)
		var fields []string
		for f, v := range n.Ints {
			if v != 0 {
				fields = append(fields, fmt.Sprintf("%s=%d", f, v))
			}
		}
		for f, t := range n.Ptrs {
			if t != nil {
				ti, ok := idx[t]
				if !ok {
					ti = -1 // a dangling reference to a freed node
				}
				fields = append(fields, fmt.Sprintf("%s=#%d", f, ti))
			}
		}
		sort.Strings(fields)
		b.WriteString(strings.Join(fields, " "))
		b.WriteString("}\n")
	}
	return b.String()
}

// checkXform adapts XformCheck to the generated-program check interface.
func checkXform(p *gen.Program, cfg Config) string {
	_, info, msg := load(p)
	if msg != "" {
		return msg
	}
	if details := XformCheck(info, p.Entry(), p.Seed, nil); len(details) > 0 {
		return details[0]
	}
	return ""
}
