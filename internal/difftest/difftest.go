// Package difftest is the differential-testing half of the addsfuzz
// subsystem. For every program the generator emits it orchestrates the
// oracle pairs:
//
//  1. soundness — concrete interpreter traces vs. the static alias
//     oracles: every dynamically observed alias must be admitted
//     (the paper's core claim, Defs 4.1-4.10);
//  2. transformation equivalence — the original program vs. its
//     xform-transformed variants (Unroll, LICM, software pipelining) must
//     be observationally equivalent on concrete inputs;
//  3. analysis consistency — the path-matrix engine must produce identical
//     results regardless of worker count (the hash-consed parallel engine
//     vs. the sequential path);
//  4. smg — the SMG-lite oracle vs. the path-matrix oracle: a must-alias
//     either derives that the other refutes is always a fatal bug in one of
//     them, while bare may-alias disagreements are precision deltas,
//     counted (Config.Deltas) but never failures.
//
// A cheaper check runs the addslint validation over every generated
// program: lint coverage on inputs no human would write.
//
// Failures are classified as Divergences, content-addressed with the same
// SHA-256 scheme as internal/service, and delta-debugged down to minimal
// statement lists by a structure-aware shrinker (Shrink).
package difftest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/alias"
	"repro/internal/alias/klimit"
	"repro/internal/alias/smg"
	"repro/internal/core/pathmatrix"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/norm"
	"repro/internal/service"
	"repro/internal/source/ast"
	"repro/internal/source/parser"
	"repro/internal/source/token"
	"repro/internal/source/types"
)

// Check names, in the order DiffOne runs them.
const (
	CheckLint        = "lint"
	CheckSoundness   = "soundness"
	CheckXform       = "xform"
	CheckConsistency = "consistency"
	CheckSMG         = "smg"
)

// noCancel is the context for in-process analyses that are bounded by
// construction (tiny generated programs) and never need cancellation.
var noCancel = context.Background()

// AllChecks returns every check name in canonical order.
func AllChecks() []string {
	return []string{CheckLint, CheckSoundness, CheckXform, CheckConsistency, CheckSMG}
}

// Config tunes one differential run.
type Config struct {
	// Checks selects which oracle pairs run; nil means all.
	Checks []string
	// Runs are the main() size arguments each program executes under;
	// nil means {2, 3, 5}.
	Runs []int64
	// MaxSteps bounds each interpretation (0 = 1<<16, matching the
	// soundness fuzz budget).
	MaxSteps int
	// WrapOracle, when set, wraps every alias oracle before the soundness
	// comparison. It is the fault-injection seam: tests wrap a correct
	// oracle in one that drops matrix relations and assert the harness
	// catches and shrinks the planted bug.
	WrapOracle func(alias.Oracle) alias.Oracle
	// ShrinkBudget caps shrinker check executions per divergence
	// (0 = 400).
	ShrinkBudget int
	// Deltas, when set, accumulates precision deltas from the smg check:
	// program points where one oracle admits a may-alias the other refutes.
	// Deltas are triage signal, never failures — only must-alias conflicts
	// fail the check.
	Deltas *DeltaCounter
}

// DeltaCounter tallies precision deltas by kind, safely across campaign
// workers. The keys name which oracle was the permissive one
// ("smg_may_only", "gpm_may_only").
type DeltaCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

// Add increments one delta kind.
func (d *DeltaCounter) Add(key string, n int) {
	if n == 0 {
		return
	}
	d.mu.Lock()
	if d.counts == nil {
		d.counts = map[string]int{}
	}
	d.counts[key] += n
	d.mu.Unlock()
}

// Snapshot copies the tallies (nil when nothing was counted).
func (d *DeltaCounter) Snapshot() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.counts) == 0 {
		return nil
	}
	out := make(map[string]int, len(d.counts))
	for k, v := range d.counts {
		out[k] = v
	}
	return out
}

func (c Config) runs() []int64 {
	if len(c.Runs) == 0 {
		return []int64{2, 3, 5}
	}
	return c.Runs
}

func (c Config) maxSteps() int {
	if c.MaxSteps == 0 {
		return 1 << 16
	}
	return c.MaxSteps
}

func (c Config) checks() []string {
	if len(c.Checks) == 0 {
		return AllChecks()
	}
	return c.Checks
}

func (c Config) shrinkBudget() int {
	if c.ShrinkBudget == 0 {
		return 400
	}
	return c.ShrinkBudget
}

// Divergence is one confirmed disagreement between a pair of oracles,
// minimized and content-addressed for triage.
type Divergence struct {
	Seed      int64  `json:"seed"`
	Profile   string `json:"profile"`
	Structure string `json:"structure"`
	Check     string `json:"check"`
	Detail    string `json:"detail"`
	// Hash content-addresses the original source (service.Key scheme).
	Hash   string `json:"hash"`
	Source string `json:"source"`
	// Minimized is the shrunk repro; MinHash its content address;
	// MinStmts the statement count of the shrunk fuzzed body.
	Minimized string `json:"minimized"`
	MinHash   string `json:"minHash"`
	MinStmts  int    `json:"minStmts"`
}

// DiffOne generates the program for (seed, profile), runs every configured
// check, and returns one shrunk divergence per failing check. A clean
// program returns nil.
func DiffOne(seed int64, pr gen.Profile, cfg Config) []Divergence {
	p := gen.Generate(seed, pr)
	var out []Divergence
	for _, name := range cfg.checks() {
		check := checkFn(name)
		if check == nil {
			continue
		}
		detail := check(p, cfg)
		if detail == "" {
			continue
		}
		min := Shrink(p, func(q *gen.Program) bool { return check(q, cfg) != "" }, cfg.shrinkBudget())
		src := string(p.Source())
		minSrc := string(min.Source())
		out = append(out, Divergence{
			Seed:      seed,
			Profile:   pr.Name,
			Structure: p.TypeName,
			Check:     name,
			Detail:    detail,
			Hash:      service.Key(src),
			Source:    src,
			Minimized: minSrc,
			MinHash:   service.Key(minSrc),
			MinStmts:  min.NumStmts(),
		})
	}
	return out
}

// checkFn maps a check name to its implementation. Every check returns ""
// when the program is clean, or a deterministic description of the first
// (in a sorted order) divergence.
func checkFn(name string) func(*gen.Program, Config) string {
	switch name {
	case CheckLint:
		return checkLint
	case CheckSoundness:
		return checkSoundness
	case CheckXform:
		return checkXform
	case CheckConsistency:
		return checkConsistency
	case CheckSMG:
		return checkSMG
	}
	return nil
}

// load parses and type-checks a generated program. Generated programs are
// well-typed by construction, so a failure here is itself a divergence
// (a generator bug), reported by every check as "does not load".
func load(p *gen.Program) (*ast.Program, *types.Info, string) {
	src := p.Source()
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, fmt.Sprintf("generated program does not parse: %v", err)
	}
	info, errs := types.Check(prog)
	if len(errs) > 0 {
		return nil, nil, fmt.Sprintf("generated program does not check: %v", errs[0])
	}
	return prog, info, ""
}

// tolerated reports interpreter errors that are expected consequences of
// random mutation (cycles exhaust the step budget; a shuffled structure
// dereferences NULL behind a stale guard) rather than harness findings.
func tolerated(err error) bool {
	return err == nil ||
		strings.Contains(err.Error(), "step budget") ||
		strings.Contains(err.Error(), "NULL")
}

// ---------------------------------------------------------------------------
// Check 1: lint (the addslint pair — run main, validate the final heap)

// checkLint interprets the self-contained main for every run size and
// fails on any runtime error: generated programs guard every dereference
// and bound every loop, so an execution failure means the generator and
// the interpreter disagree about the language. For profiles that never
// mutate pointer fields the final heap must additionally satisfy every
// ADDS declaration (Defs 4.2-4.9), exactly as cmd/addslint checks it.
func checkLint(p *gen.Program, cfg Config) string {
	prog, info, msg := load(p)
	if msg != "" {
		return msg
	}
	for _, n := range cfg.runs() {
		in := interp.New(prog)
		in.MaxSteps = cfg.maxSteps()
		if _, err := in.Call(p.Main(), interp.IntVal(n)); err != nil {
			return fmt.Sprintf("lint: main(%d) failed: %v", n, err)
		}
		if p.Profile.Mutate {
			continue
		}
		if vs := interp.Check(info.Env, in.Heap.Live()...); len(vs) > 0 {
			return fmt.Sprintf("lint: main(%d) left an invalid heap under a read-only profile: %s",
				n, vs[0].String())
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// Check 2: soundness (interpreter traces vs. static alias oracles)

// tracer records observed aliases keyed by statement position (the same
// ground-truth instrument the soundness property tests use).
type tracer struct {
	ptrVars  []string
	observed map[token.Pos]map[[2]string]bool
}

func (tr *tracer) AtStmt(s ast.Stmt, vars map[string]interp.Value) {
	pos := s.Pos()
	for i, p := range tr.ptrVars {
		vp, ok := vars[p]
		if !ok || !vp.IsPtr || vp.Ptr == nil {
			continue
		}
		for _, q := range tr.ptrVars[i+1:] {
			vq, ok := vars[q]
			if !ok || !vq.IsPtr || vq.Ptr == nil {
				continue
			}
			if vp.Ptr == vq.Ptr {
				if tr.observed[pos] == nil {
					tr.observed[pos] = map[[2]string]bool{}
				}
				tr.observed[pos][[2]string{p, q}] = true
			}
		}
	}
}

// nodeAtPos returns the earliest CFG node lowered from a statement at the
// position (the program point "before the statement").
func nodeAtPos(g *norm.Graph, pos token.Pos) *norm.Node {
	for _, n := range g.Nodes {
		if n.Kind == norm.NodeStmt && n.Stmt.Pos == pos {
			return n
		}
	}
	return nil
}

// checkSoundness executes main (which builds the structure in mini and
// calls the fuzzed function), records every alias the run actually
// produced inside fuzzed, and requires every static oracle to admit each
// one. An alias an oracle rules out is a soundness divergence — the class
// of bug the whole subsystem exists to catch.
func checkSoundness(p *gen.Program, cfg Config) string {
	prog, info, msg := load(p)
	if msg != "" {
		return msg
	}
	fi := info.Func(p.Entry())
	if fi == nil {
		return "" // entry shrunk away: nothing to check
	}
	g := norm.Build(fi, info.Env)
	// The path-matrix oracles take interprocedural summary tables when the
	// engine-wide knob is on, so the differential run exercises the summary
	// call transfer against the interpreter's ground truth. The classic
	// oracle's table is computed under the stripped environment it analyzes
	// with (summary rows are environment-dependent).
	var gpmTab, classicTab *pathmatrix.SummaryTable
	if pathmatrix.Summarize {
		gpmTab = pathmatrix.ComputeSummaries(info, info.Env)
		classicTab = pathmatrix.ComputeSummaries(info, info.Env.Stripped())
	}
	oracles := []alias.Oracle{
		alias.NewGPMWith(g, info.Env, gpmTab),
		alias.NewClassicWith(g, info.Env, classicTab),
		alias.NewConservative(g),
		klimit.Analyze(g, info.Env, 2),
		smg.Analyze(g, info.Env),
	}
	if cfg.WrapOracle != nil {
		for i, o := range oracles {
			oracles[i] = cfg.WrapOracle(o)
		}
	}

	var misses []string
	for _, n := range cfg.runs() {
		in := interp.New(prog)
		in.MaxSteps = cfg.maxSteps()
		tr := &tracer{ptrVars: fi.PointerVars(), observed: map[token.Pos]map[[2]string]bool{}}
		in.Tracer = tr
		if _, err := in.Call(p.Main(), interp.IntVal(n)); !tolerated(err) {
			return fmt.Sprintf("soundness: main(%d) failed: %v", n, err)
		}
		for pos, pairs := range tr.observed {
			node := nodeAtPos(g, pos)
			if node == nil {
				continue
			}
			for pair := range pairs {
				for _, o := range oracles {
					if !o.MayAlias(node, pair[0], pair[1]) {
						misses = append(misses, fmt.Sprintf(
							"soundness: oracle %s misses real alias %s==%s before %s (main(%d))",
							o.Name(), pair[0], pair[1], pos, n))
					}
				}
			}
		}
	}
	if len(misses) == 0 {
		return ""
	}
	sort.Strings(misses) // map iteration order must not leak into reports
	return misses[0]
}

// ---------------------------------------------------------------------------
// Check 4: analysis consistency (sequential vs. parallel engine)

// checkConsistency analyzes the whole program twice — one worker vs. four
// — and requires byte-identical matrices for every function: the interned,
// hash-consed parallel engine must be observationally indistinguishable
// from the sequential one.
func checkConsistency(p *gen.Program, cfg Config) string {
	_, info, msg := load(p)
	if msg != "" {
		return msg
	}
	seq, err := pathmatrix.AnalyzeProgramCtx(noCancel, info, info.Env, 1)
	if err != nil {
		return fmt.Sprintf("consistency: sequential analysis failed: %v", err)
	}
	par, err := pathmatrix.AnalyzeProgramCtx(noCancel, info, info.Env, 4)
	if err != nil {
		return fmt.Sprintf("consistency: parallel analysis failed: %v", err)
	}
	names := make([]string, 0, len(seq))
	for name := range seq {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pr, ok := par[name]
		if !ok {
			return fmt.Sprintf("consistency: function %s missing from parallel result", name)
		}
		if a, b := seq[name].Result.String(), pr.Result.String(); a != b {
			return fmt.Sprintf("consistency: %s: sequential and parallel matrices differ:\n--- seq\n%s\n--- par\n%s",
				name, a, b)
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// Check 5: smg (SMG-lite vs. path matrices — cross-domain differential)

// checkSMG runs the GPM and SMG-lite oracles over the same function and
// compares every unordered pointer-variable pair at every statement node the
// SMG analysis reached. The two domains approximate the heap completely
// differently (declared path relations vs. segment summaries), so the triage
// policy is asymmetric:
//
//   - a must-alias one oracle derives that the other refutes outright
//     (must on one side, no may on the other) is a fatal divergence —
//     whichever direction it goes, one of the two analyses is unsound.
//     The one exemption is definitional, not a precision gap: the path
//     matrix's must-alias means "same value", which both variables being
//     NULL satisfies, while SMG aliasing is about shared non-nil objects —
//     so a GPM must-alias only contradicts an SMG may-refutation when the
//     SMG shows the common value cannot be nil;
//   - a bare may-alias disagreement is an expected precision delta (each
//     domain refutes pairs the other cannot) and is only counted into
//     Config.Deltas, keyed by which oracle was the permissive one.
func checkSMG(p *gen.Program, cfg Config) string {
	_, info, msg := load(p)
	if msg != "" {
		return msg
	}
	fi := info.Func(p.Entry())
	if fi == nil {
		return "" // entry shrunk away: nothing to check
	}
	g := norm.Build(fi, info.Env)
	var gpmTab *pathmatrix.SummaryTable
	if pathmatrix.Summarize {
		gpmTab = pathmatrix.ComputeSummaries(info, info.Env)
	}
	// WrapOracle wraps the path-matrix side only: the SMG side must stay the
	// concrete analysis because the triage consults its MayBeNil refinement.
	var gpm alias.Oracle = alias.NewGPMWith(g, info.Env, gpmTab)
	if cfg.WrapOracle != nil {
		gpm = cfg.WrapOracle(gpm)
	}
	sm := smg.Analyze(g, info.Env)

	vars := fi.PointerVars()
	var fatal []string
	smgMayOnly, gpmMayOnly := 0, 0
	for _, n := range g.Nodes {
		if n.Kind != norm.NodeStmt || sm.Before[n.ID] == nil {
			continue
		}
		for i, a := range vars {
			for _, b := range vars[i+1:] {
				sMay, gMay := sm.MayAlias(n, a, b), gpm.MayAlias(n, a, b)
				switch {
				case sm.MustAlias(n, a, b) && !gMay:
					fatal = append(fatal, fmt.Sprintf(
						"smg: smg derives must-alias %s==%s before node %d but gpm refutes may", a, b, n.ID))
				case gpm.MustAlias(n, a, b) && !sMay && !(sm.MayBeNil(n, a) && sm.MayBeNil(n, b)):
					// Same value per GPM, no shared object per SMG, and the
					// vacuous both-NULL valuation is ruled out: contradiction.
					fatal = append(fatal, fmt.Sprintf(
						"smg: gpm derives must-alias %s==%s before node %d but smg refutes may", a, b, n.ID))
				case sMay && !gMay:
					smgMayOnly++
				case gMay && !sMay:
					gpmMayOnly++
				}
			}
		}
	}
	if cfg.Deltas != nil {
		cfg.Deltas.Add("smg_may_only", smgMayOnly)
		cfg.Deltas.Add("gpm_may_only", gpmMayOnly)
	}
	if len(fatal) == 0 {
		return ""
	}
	sort.Strings(fatal)
	return fatal[0]
}
