package difftest

import (
	"testing"

	"repro/internal/gen"
)

// BenchmarkGenerate measures raw program generation (the cheap half every
// campaign iteration pays).
func BenchmarkGenerate(b *testing.B) {
	pr := gen.Profiles()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := gen.Generate(int64(i), pr)
		if len(p.Source()) == 0 {
			b.Fatal("empty source")
		}
	}
}

// BenchmarkDiffOne measures one full differential iteration — generation
// plus all checks — which bounds campaign throughput (execs/sec).
func BenchmarkDiffOne(b *testing.B) {
	pr, err := gen.ProfileByName("mixed") // rotates structures
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Runs: []int64{2, 3}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if divs := DiffOne(int64(i), pr, cfg); len(divs) > 0 {
			b.Fatalf("unexpected divergence at seed %d: %s", i, divs[0].Detail)
		}
	}
}
