package difftest

import (
	"testing"

	"repro/internal/gen"
)

// FuzzDiffOne is the Go-native entry into the differential harness: the
// fuzzer explores (seed, profile) space and any check divergence is a
// crash. The seed corpus under testdata/fuzz pins one seed per profile.
func FuzzDiffOne(f *testing.F) {
	for i, pr := range gen.Profiles() {
		f.Add(int64(i*101), pr.Name)
	}
	cfg := Config{Runs: []int64{2, 3}}
	f.Fuzz(func(t *testing.T, seed int64, profile string) {
		pr, err := gen.ProfileByName(profile)
		if err != nil {
			t.Skip()
		}
		for _, d := range DiffOne(seed, pr, cfg) {
			t.Fatalf("seed %d profile %s check %s:\n%s\nminimized (%d stmts):\n%s",
				seed, profile, d.Check, d.Detail, d.MinStmts, d.Minimized)
		}
	})
}
