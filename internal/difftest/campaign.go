package difftest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"repro/internal/gen"
)

// Campaign describes one fuzzing run: Budget programs total, rotating
// round-robin through the profiles, diffed by Jobs workers.
type Campaign struct {
	// Seed is the base seed; program i uses Seed + i.
	Seed int64
	// Budget is the total number of programs.
	Budget int
	// Jobs is the worker count (<= 0 means GOMAXPROCS).
	Jobs int
	// Profiles selects generation profiles by name; empty means all.
	Profiles []string
	// CorpusDir, when set, receives minimized repros and their triage
	// records, named by content hash.
	CorpusDir string
	// Config tunes the per-program checks.
	Config Config
	// Progress, when set, is called after each program with the number
	// completed so far (serialized; keep it cheap).
	Progress func(done, total int)
}

// Report is the deterministic triage summary of a campaign: identical
// (seed, budget, profiles, config) inputs produce byte-identical marshaled
// reports, whatever the job count — timing lives on stderr, never here.
type Report struct {
	Seed        int64          `json:"seed"`
	Budget      int            `json:"budget"`
	Profiles    []string       `json:"profiles"`
	Programs    int            `json:"programs"`
	ByCheck     map[string]int `json:"byCheck"`
	Divergences []Divergence   `json:"divergences"`
	// Deltas tallies the smg check's precision deltas — may-alias
	// disagreements that are informational, never failures. Deterministic
	// for a given (seed, budget, profiles, config) whatever the job count.
	Deltas map[string]int `json:"deltas,omitempty"`
}

// Run executes the campaign. The returned report orders divergences by
// (profile, seed, check) regardless of worker interleaving.
func (c Campaign) Run(ctx context.Context) (*Report, error) {
	profiles, err := c.profiles()
	if err != nil {
		return nil, err
	}
	jobs := c.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if c.Budget < 0 {
		return nil, fmt.Errorf("negative budget %d", c.Budget)
	}

	if c.Config.Deltas == nil {
		c.Config.Deltas = &DeltaCounter{}
	}

	total := c.Budget
	work := make(chan int)
	results := make([][]Divergence, total)

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					continue // drain without working
				}
				results[i] = DiffOne(c.Seed+int64(i), profiles[i%len(profiles)], c.Config)
				if c.Progress != nil {
					mu.Lock()
					done++
					c.Progress(done, total)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{
		Seed:     c.Seed,
		Budget:   c.Budget,
		Programs: total,
		ByCheck:  map[string]int{},
		Deltas:   c.Config.Deltas.Snapshot(),
	}
	for _, pr := range profiles {
		rep.Profiles = append(rep.Profiles, pr.Name)
	}
	for i := 0; i < total; i++ {
		for _, d := range results[i] {
			rep.ByCheck[d.Check]++
			rep.Divergences = append(rep.Divergences, d)
		}
	}
	sort.SliceStable(rep.Divergences, func(i, j int) bool {
		a, b := rep.Divergences[i], rep.Divergences[j]
		if a.Profile != b.Profile {
			return a.Profile < b.Profile
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Check < b.Check
	})
	if c.CorpusDir != "" {
		if err := writeCorpus(c.CorpusDir, rep.Divergences); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

func (c Campaign) profiles() ([]gen.Profile, error) {
	if len(c.Profiles) == 0 {
		return gen.Profiles(), nil
	}
	var out []gen.Profile
	for _, name := range c.Profiles {
		pr, err := gen.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// writeCorpus persists each divergence as <minhash>.mini (the minimized
// repro source, directly runnable by the CLIs) plus <minhash>.json (the
// full triage record). Content addressing (the service.Key scheme)
// deduplicates repros across seeds and campaigns for free.
func writeCorpus(dir string, divs []Divergence) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range divs {
		short := d.MinHash
		if len(short) > 16 {
			short = short[:16]
		}
		if err := os.WriteFile(filepath.Join(dir, short+".mini"), []byte(d.Minimized), 0o644); err != nil {
			return err
		}
		js, err := marshalReportJSON(d)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, short+".json"), js, 0o644); err != nil {
			return err
		}
	}
	return nil
}
