package difftest

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/gen"
	"repro/internal/norm"
)

// TestDiffOneCleanSeeds: on a healthy tree every check passes over a seed
// range for every profile — the baseline the CI smoke job scales up.
func TestDiffOneCleanSeeds(t *testing.T) {
	for _, pr := range gen.Profiles() {
		for seed := int64(0); seed < 15; seed++ {
			for _, d := range DiffOne(seed, pr, Config{}) {
				t.Fatalf("profile %s seed %d check %s:\n%s\nminimized (%d stmts):\n%s",
					pr.Name, seed, d.Check, d.Detail, d.MinStmts, d.Minimized)
			}
		}
	}
}

// dropOracle wraps a correct oracle but denies one specific alias pair —
// the planted soundness bug the acceptance criteria require the harness to
// catch and shrink.
type dropOracle struct {
	alias.Oracle
	p, q string
}

func (d dropOracle) MayAlias(n *norm.Node, a, b string) bool {
	if (a == d.p && b == d.q) || (a == d.q && b == d.p) {
		return false
	}
	return d.Oracle.MayAlias(n, a, b)
}

// TestInjectedBugCaughtAndShrunk plants a dropped matrix relation behind
// the WrapOracle hook and requires the harness to flag it as a soundness
// divergence and delta-debug the repro to at most 8 statements.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	cfg := Config{
		Checks:     []string{CheckSoundness},
		WrapOracle: func(o alias.Oracle) alias.Oracle { return dropOracle{Oracle: o, p: "b", q: "d"} },
	}
	pr, err := gen.ProfileByName("list")
	if err != nil {
		t.Fatal(err)
	}
	divs := DiffOne(1, pr, cfg)
	if len(divs) == 0 {
		t.Fatal("planted soundness bug was not caught")
	}
	d := divs[0]
	if d.Check != CheckSoundness {
		t.Fatalf("check = %s, want %s", d.Check, CheckSoundness)
	}
	if !strings.Contains(d.Detail, "misses real alias") {
		t.Fatalf("detail does not describe a missed alias:\n%s", d.Detail)
	}
	if d.MinStmts > 8 {
		t.Fatalf("minimized repro has %d statements, want <= 8:\n%s", d.MinStmts, d.Minimized)
	}
	if d.MinHash == "" || d.Hash == "" {
		t.Fatal("divergence is not content-addressed")
	}
}

// TestSMGCheckCatchesPlantedBug: drop one pair's may-alias answer from the
// path-matrix oracle; wherever the SMG derives a must-alias for that pair
// the smg cross-check must flag a fatal divergence (must on one side, no
// may on the other is never a precision delta).
func TestSMGCheckCatchesPlantedBug(t *testing.T) {
	cfg := Config{
		Checks:     []string{CheckSMG},
		WrapOracle: func(o alias.Oracle) alias.Oracle { return dropOracle{Oracle: o, p: "b", q: "c"} },
	}
	pr, err := gen.ProfileByName("list")
	if err != nil {
		t.Fatal(err)
	}
	// A fresh region copied into both variables: the SMG derives
	// must-alias(b, c), which the planted drop of gpm's may answer turns
	// into a fatal cross-domain conflict.
	p := gen.Generate(1, pr).WithStmts([]gen.Stmt{
		{Head: []string{"b = new TwoWayLL;"}},
		{Head: []string{"c = b;"}},
		{Head: []string{"d = c;"}},
	})
	detail := checkSMG(p, cfg)
	if detail == "" {
		t.Fatal("planted path-matrix bug did not conflict with the SMG must-alias")
	}
	if !strings.Contains(detail, "but gpm refutes may") {
		t.Fatalf("detail does not describe the must/may conflict:\n%s", detail)
	}
}

// TestSMGCheckCountsDeltas: on a healthy tree the hostile profiles run the
// smg check clean while producing may-alias disagreements in both
// directions — those land in the counter, never in the divergence list.
func TestSMGCheckCountsDeltas(t *testing.T) {
	deltas := &DeltaCounter{}
	cfg := Config{Checks: []string{CheckSMG}, Deltas: deltas}
	for _, name := range []string{"ptree", "skiplist", "ringlol", "repair"} {
		pr, err := gen.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 10; seed++ {
			for _, d := range DiffOne(seed, pr, cfg) {
				t.Fatalf("profile %s seed %d: %s", name, seed, d.Detail)
			}
		}
	}
	snap := deltas.Snapshot()
	if snap["smg_may_only"]+snap["gpm_may_only"] == 0 {
		t.Fatal("forty hostile programs produced no precision deltas")
	}
}

// TestCampaignReportsDeltas: the campaign plumbs the delta counter through
// to the report even when the caller did not provide one.
func TestCampaignReportsDeltas(t *testing.T) {
	c := Campaign{
		Seed:     3,
		Budget:   12,
		Profiles: []string{"skiplist", "repair"},
		Config:   Config{Checks: []string{CheckSMG}},
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("hostile profiles diverged: %+v", rep.Divergences[0])
	}
	if len(rep.Deltas) == 0 {
		t.Fatal("campaign report carries no precision deltas")
	}
}

// TestShrinkHostileProfiles: the shrinker's statement model covers the new
// grammars — the multi-statement splice and promotion idioms unwrap, so a
// predicate on one seeded statement shrinks to exactly that statement.
func TestShrinkHostileProfiles(t *testing.T) {
	for _, name := range []string{"ptree", "skiplist", "ringlol", "repair"} {
		pr, err := gen.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := gen.Generate(5, pr)
		failing := func(q *gen.Program) bool {
			return bytes.Contains(q.Source(), []byte("b = a;"))
		}
		min := Shrink(p, failing, 0)
		if min.NumStmts() != 1 {
			t.Errorf("%s: shrunk to %d statements, want 1:\n%s", name, min.NumStmts(), min.Source())
		}
	}
}

// TestShrinkToSingleStatement: a predicate satisfied by one specific
// statement must shrink to exactly that statement.
func TestShrinkToSingleStatement(t *testing.T) {
	p := gen.Generate(7, gen.Profiles()[0])
	failing := func(q *gen.Program) bool {
		return bytes.Contains(q.Source(), []byte("b = a;"))
	}
	min := Shrink(p, failing, 0)
	if min.NumStmts() != 1 {
		t.Fatalf("shrunk to %d statements, want 1:\n%s", min.NumStmts(), min.Source())
	}
	if !failing(min) {
		t.Fatal("shrunk program no longer fails")
	}
}

// TestShrinkUnwrapsCompounds: when only a nested statement matters, the
// shrinker must strip the enclosing loop or guard.
func TestShrinkUnwrapsCompounds(t *testing.T) {
	p := gen.Generate(3, gen.Profiles()[0])
	p = p.WithStmts([]gen.Stmt{{
		Head: []string{"if (a != NULL) {"},
		Body: []gen.Stmt{{Head: []string{"b = a;"}}},
		Tail: "}",
	}})
	failing := func(q *gen.Program) bool {
		return bytes.Contains(q.Source(), []byte("b = a;"))
	}
	min := Shrink(p, failing, 0)
	if min.NumStmts() != 1 {
		t.Fatalf("shrunk to %d statements, want the unwrapped single statement:\n%s",
			min.NumStmts(), min.Source())
	}
	if bytes.Contains(min.Source(), []byte("if (a != NULL) {")) {
		t.Fatalf("guard survived shrinking:\n%s", min.Source())
	}
}

// TestCampaignDeterministic: identical seed + profile + budget produce
// byte-identical marshaled reports whatever the worker count — the
// acceptance criterion that makes triage diffs trustworthy.
func TestCampaignDeterministic(t *testing.T) {
	base := Campaign{Seed: 11, Budget: 24, Config: Config{Runs: []int64{2, 3}}}
	a := base
	a.Jobs = 1
	b := base
	b.Jobs = 4
	ra, err := a.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := marshalReportJSON(ra)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := marshalReportJSON(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("reports differ across job counts:\n--- jobs=1\n%s\n--- jobs=4\n%s", ja, jb)
	}
}

// TestCampaignWritesCorpus: an injected bug produces .mini and .json
// artifacts named by content hash.
func TestCampaignWritesCorpus(t *testing.T) {
	dir := t.TempDir()
	c := Campaign{
		Seed:      1,
		Budget:    2,
		Jobs:      2,
		Profiles:  []string{"list"},
		CorpusDir: dir,
		Config: Config{
			Checks:     []string{CheckSoundness},
			WrapOracle: func(o alias.Oracle) alias.Oracle { return dropOracle{Oracle: o, p: "b", q: "c"} },
		},
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) == 0 {
		t.Fatal("campaign found nothing despite the planted bug")
	}
	d := rep.Divergences[0]
	for _, suffix := range []string{".mini", ".json"} {
		if _, err := os.ReadFile(filepath.Join(dir, d.MinHash[:16]+suffix)); err != nil {
			t.Fatalf("missing corpus artifact %s: %v", suffix, err)
		}
	}
}

// TestCampaignUnknownProfile is the config-error path.
func TestCampaignUnknownProfile(t *testing.T) {
	if _, err := (Campaign{Budget: 1, Profiles: []string{"nope"}}).Run(context.Background()); err == nil {
		t.Fatal("want error for unknown profile")
	}
}
