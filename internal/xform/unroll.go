package xform

import (
	"fmt"

	"repro/internal/depgraph"
	"repro/internal/ir"
)

// Unroll replicates a loop body k times for the scalar machine, the [HG92]
// experiment the paper cites (47% speedup for 3-unrolling a length-100 list
// loop on MIPS).
//
// For recognized list-traversal loops it emits the scheduled form: each
// copy's pointer advance is placed early and the next copy's exit test is
// pushed past the current copy's computation, so the load-use delay of the
// scalar pipeline is hidden and only one back-edge goto remains per k
// elements. Pointer copies rotate through renamed registers v, v$1, ...,
// v$k-1.
//
// Loops that do not match fall back to plain replication (test + body,
// k times, one back edge), which still removes most branch overhead.
func Unroll(p *ir.Program, l *ir.LoopInfo, k int, opt depgraph.Options) (*ir.Program, error) {
	if k < 1 {
		return nil, fmt.Errorf("unroll factor %d", k)
	}
	if k == 1 {
		return cloneProgram(p), nil
	}
	if pat, err := matchListLoop(p, l); err == nil {
		if out, err := unrollScheduled(p, l, pat, k, opt); err == nil {
			return out, nil
		}
	}
	return unrollPlain(p, l, k), nil
}

// unrollScheduled emits the latency-hiding unrolled form for pattern loops.
func unrollScheduled(p *ir.Program, l *ir.LoopInfo, pat *listPattern, k int, opt depgraph.Options) (*ir.Program, error) {
	// Hoisting the invariant loads requires the oracle to prove the loads
	// never conflict with the loop's stores — exactly the paper's E1/E4
	// question. Without that proof, keep them inside every copy.
	dg := depgraph.Build(p, l, opt)
	hoistOK := map[*ir.Instr]bool{}
	body := p.Instrs[l.TestStart : l.BodyEnd+1]
	for bi, in := range body {
		conflict := false
		for _, e := range dg.Edges {
			if e.Mem && (e.From == bi || e.To == bi) {
				conflict = true
			}
		}
		if !conflict {
			hoistOK[in] = true
		}
	}

	out := &ir.Program{Name: p.Name + "_unroll", Params: append([]string(nil), p.Params...)}
	emit := func(in *ir.Instr) { out.Instrs = append(out.Instrs, in) }

	// Code before the loop.
	headIdx := p.FindLabel(l.HeadLabel)
	for _, in := range p.Instrs[:headIdx] {
		emit(in.Clone())
	}
	// Hoisted invariant loads (once), others stay per copy.
	var perCopy []*ir.Instr
	for _, in := range pat.hoisted {
		if hoistOK[in] {
			emit(in.Clone())
		} else {
			perCopy = append(perCopy, in)
		}
	}

	v := pat.v
	name := func(i int) string {
		if i%k == 0 {
			return v
		}
		return fmt.Sprintf("%s$%d", v, i%k)
	}

	head := l.HeadLabel + "_u"
	exit := l.ExitLabel

	// Entry test once; copies re-test the freshly advanced pointer.
	emit(&ir.Instr{Op: ir.Br, Rel: ir.EQ, Src1: v, Src2: "", Target: exit})
	emit(&ir.Instr{Op: ir.Label, Name: head})
	for c := 0; c < k; c++ {
		cur, next := name(c), name(c+1)
		for _, in := range perCopy {
			emit(in.Clone())
		}
		if pat.load != nil {
			ld := pat.load.Clone()
			ld.Src1 = cur
			emit(ld)
		}
		// Early advance: fills the compute load's delay slot.
		emit(&ir.Instr{Op: ir.Load, Dst: next, Src1: cur, Field: pat.adv})
		if pat.arith != nil {
			emit(pat.arith.Clone())
		}
		st := pat.store.Clone()
		st.Src1 = cur
		emit(st)
		emit(&ir.Instr{Op: ir.Br, Rel: ir.EQ, Src1: next, Src2: "", Target: exit})
	}
	emit(&ir.Instr{Op: ir.Goto, Target: head})
	// Code from the exit label on.
	exitIdx := p.FindLabel(l.ExitLabel)
	for _, in := range p.Instrs[exitIdx:] {
		emit(in.Clone())
	}
	return out, nil
}

// unrollPlain replicates test + body k times with one back edge. Labels
// defined inside the body (an if/else lowers to internal labels) are
// renamed per copy and their branches retargeted, so every copy branches
// within itself — without this, all copies would share one label name and
// any body branch would resolve into a different copy.
func unrollPlain(p *ir.Program, l *ir.LoopInfo, k int) *ir.Program {
	out := &ir.Program{Name: p.Name + "_unroll", Params: append([]string(nil), p.Params...)}
	emit := func(in *ir.Instr) { out.Instrs = append(out.Instrs, in) }

	headIdx := p.FindLabel(l.HeadLabel)
	for _, in := range p.Instrs[:headIdx] {
		emit(in.Clone())
	}
	body := p.Instrs[l.TestStart:l.BodyEnd]
	internal := map[string]bool{}
	for _, in := range body {
		if in.Op == ir.Label {
			internal[in.Name] = true
		}
	}
	head := l.HeadLabel + "_u"
	emit(&ir.Instr{Op: ir.Label, Name: head})
	for c := 0; c < k; c++ {
		suffix := fmt.Sprintf("$%d", c)
		for _, in := range body {
			cl := in.Clone()
			if cl.Op == ir.Label && internal[cl.Name] {
				cl.Name += suffix
			}
			if (cl.Op == ir.Br || cl.Op == ir.Goto) && internal[cl.Target] {
				cl.Target += suffix
			}
			emit(cl)
		}
	}
	emit(&ir.Instr{Op: ir.Goto, Target: head})
	exitIdx := p.FindLabel(l.ExitLabel)
	for _, in := range p.Instrs[exitIdx:] {
		emit(in.Clone())
	}
	return out
}
