package xform

import (
	"repro/internal/ir"
)

// FindAdvance returns the body-relative index of the loop's pointer-advance
// instruction ("load v->f, v") and the variable/field, or ok=false.
func FindAdvance(p *ir.Program, l *ir.LoopInfo) (idx int, v, field string, ok bool) {
	body := p.Instrs[l.TestStart : l.BodyEnd+1]
	for i, in := range body {
		if in.Op == ir.Load && in.Dst == in.Src1 {
			return i, in.Dst, in.Field, true
		}
	}
	return 0, "", "", false
}

// RenameAdvance performs the paper's first pipelining step: the advance
// "S6 load p->next, p" at the end of the body becomes an early
// "S1.6 load p->next, p'" placed right after the exit test, with a copy
// "S6 move p', p" in its old position. This shrinks the critical recurrence
// from the whole body to the single early load.
//
// Returns the transformed program, refreshed loop info, and the new
// register's name; ok=false when the loop has no advance.
func RenameAdvance(p *ir.Program, l *ir.LoopInfo) (*ir.Program, *ir.LoopInfo, string, bool) {
	out := cloneProgram(p)
	loop := out.Loops[l.SrcID]
	idx, v, field, ok := FindAdvance(out, loop)
	if !ok {
		return p, l, "", false
	}
	primed := v + "'"
	abs := loop.TestStart + idx
	typeName := out.Instrs[abs].TypeName
	// Replace the advance with the copy.
	out.Instrs[abs] = &ir.Instr{Op: ir.Move, Src1: primed, Dst: v}
	// Insert the renamed load right after the exit test (body start).
	insertAt(out, loop.BodyStart, &ir.Instr{
		Op: ir.Load, Dst: primed, Src1: v, Field: field, TypeName: typeName,
	})
	return out, loop, primed, true
}

// SpeculativeHoist performs the paper's second step: because every ADDS
// structure is speculatively traversable (Def 4.1 — traversing past NULL is
// safe), the renamed advance load may move above the exit test, exposing the
// next iteration's load before the current one finishes. The caller must
// target a machine with non-faulting loads (machine.VLIWConfig
// SpeculativeLoads) — the hoisted load executes with a possibly-NULL base.
//
// It moves a "load v->f, v2" (v2 != v) found at the body start to just
// before the loop's exit test. ok=false if the pattern is absent.
func SpeculativeHoist(p *ir.Program, l *ir.LoopInfo) (*ir.Program, *ir.LoopInfo, bool) {
	out := cloneProgram(p)
	loop := out.Loops[l.SrcID]
	if loop.BodyStart >= len(out.Instrs) {
		return p, l, false
	}
	in := out.Instrs[loop.BodyStart]
	if in.Op != ir.Load || in.Dst == in.Src1 {
		return p, l, false
	}
	instr := removeAt(out, loop.BodyStart)
	insertAt(out, loop.TestStart, instr)
	return out, loop, true
}

// CopyPropagate removes "move a, b" instructions in the loop body when a is
// not redefined between the move and b's uses, rewriting those uses — the
// (enhanced) copy propagation [NPW91] the paper applies while pipelining.
// It only handles the common case produced by RenameAdvance: the move is
// the last body instruction and b's uses are at the top of the next
// iteration, which cannot be rewritten without pipelining; so this function
// instead removes moves that became dead (b never used before redefinition).
func CopyPropagate(p *ir.Program, l *ir.LoopInfo) (*ir.Program, *ir.LoopInfo) {
	out := cloneProgram(p)
	loop := out.Loops[l.SrcID]
	for i := loop.TestStart; i <= loop.BodyEnd && i < len(out.Instrs); i++ {
		in := out.Instrs[i]
		if in.Op != ir.Move {
			continue
		}
		// Dead if Dst is redefined before any use within the body after i
		// and not live around the back edge (conservatively: redefined
		// before use from the body start too).
		if deadAfter(out, loop, i, in.Dst) {
			removeAt(out, i)
			i--
		}
	}
	return out, loop
}

// deadAfter reports whether reg's value assigned at abs is never used before
// being redefined, scanning forward through the body and around the back
// edge once.
func deadAfter(p *ir.Program, l *ir.LoopInfo, abs int, reg string) bool {
	scan := func(from, to int) (used, redefined bool) {
		for i := from; i < to; i++ {
			in := p.Instrs[i]
			for _, u := range in.Uses() {
				if u == reg {
					return true, false
				}
			}
			if in.Defs() == reg {
				return false, true
			}
		}
		return false, false
	}
	if used, redef := scan(abs+1, l.BodyEnd+1); used {
		return false
	} else if redef {
		return true
	}
	used, redef := scan(l.TestStart, abs)
	if used {
		return false
	}
	return redef
}
