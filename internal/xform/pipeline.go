package xform

import (
	"fmt"

	"repro/internal/depgraph"
	"repro/internal/ir"
	"repro/internal/machine"
)

// PipelineInfo summarizes the software-pipelining analysis of a loop.
type PipelineInfo struct {
	BodyOps    int // schedulable operations per iteration (no goto/moves)
	ResMII     int // resource-constrained minimum initiation interval
	RecMII     int // recurrence-constrained minimum initiation interval
	II         int // achieved initiation interval
	Stages     int
	Theoretic  float64 // the paper's "theoretical speedup": BodyOps / II
	CarriedMem []*depgraph.Edge
	OK         bool // a pipelined schedule is legal
}

// AnalyzePipeline computes the initiation-interval bounds for a loop under a
// given alias oracle and machine width. Under conservative aliasing the
// false carried memory dependences drive RecMII up to the body length
// (no overlap, speedup ~1); under ADDS + GPM only the pointer-advance
// recurrence remains and II collapses to 1 — the paper's "theoretical
// speedup of 5" for the five-operation shift loop.
func AnalyzePipeline(p *ir.Program, l *ir.LoopInfo, opt depgraph.Options, width int) PipelineInfo {
	dg := depgraph.Build(p, l, opt)
	body := dg.Body

	// Schedulable ops: exclude the back-edge goto and copies (the paper
	// removes the move by copy propagation during pipelining).
	ops := 0
	for _, in := range body {
		switch in.Op {
		case ir.Goto, ir.Move, ir.Label, ir.Nop:
		default:
			ops++
		}
	}

	info := PipelineInfo{BodyOps: ops}
	if width < 1 {
		width = 1
	}
	info.ResMII = (ops + width - 1) / width
	info.CarriedMem = dg.CarriedMemEdges()

	// Longest intra-iteration dependence path between body instructions,
	// weighted by producer latency: real operations take a cycle, copies
	// are free (the paper's copy propagation removes them; the kernel's
	// shift moves are free under VLIW read-before-write semantics), and
	// anti/output edges only impose ordering.
	latency := func(i int) int {
		switch body[i].Op {
		case ir.Move, ir.Goto, ir.Label, ir.Nop:
			return 0
		default:
			return 1
		}
	}
	weight := func(e *depgraph.Edge) int {
		if e.Kind != depgraph.Flow {
			return 0
		}
		return latency(e.From)
	}
	n := len(body)
	lp := make([][]int, n)
	for i := range lp {
		lp[i] = make([]int, n)
		for j := range lp[i] {
			lp[i][j] = -1
		}
		lp[i][i] = 0
	}
	// Relax in index order; intra edges always go forward (From < To).
	// Only flow edges participate: anti and output dependences are renamed
	// away by modulo variable expansion (the emitter's shift registers),
	// exactly as the paper's overlapping kernel assumes.
	for from := 0; from < n; from++ {
		for _, e := range dg.Edges {
			if e.Carried || e.Kind != depgraph.Flow || e.From != from {
				continue
			}
			for src := 0; src <= from; src++ {
				if lp[src][from] >= 0 && lp[src][from]+weight(e) > lp[src][e.To] {
					lp[src][e.To] = lp[src][from] + weight(e)
				}
			}
		}
	}

	info.RecMII = 1 // the advance recurrence itself
	for _, e := range dg.Edges {
		if !e.Carried || e.Kind != depgraph.Flow {
			continue
		}
		cycle := weight(e)
		if e.To <= e.From && lp[e.To][e.From] > 0 {
			cycle += lp[e.To][e.From]
		}
		if cycle > info.RecMII {
			info.RecMII = cycle
		}
	}

	info.II = info.ResMII
	if info.RecMII > info.II {
		info.II = info.RecMII
	}
	if info.II < 1 {
		info.II = 1
	}
	info.Stages = (ops + info.II - 1) / info.II
	info.Theoretic = float64(ops) / float64(info.II)
	info.OK = len(info.CarriedMem) == 0
	return info
}

// listPattern is the recognized shape of a pipelinable list-traversal loop:
//
//	loop:  if v == NULL goto exit
//	       [load v->df, r1]          (optional: chain-1 form)
//	       [op r1, inv, r3]          (optional, with the load)
//	       store r3|inv, v->sf
//	       load v->adv, v            (the advance)
//	       goto loop
//
// plus any number of loop-invariant loads, which the emitter hoists.
type listPattern struct {
	v       string // traversal pointer
	adv     string // advance field
	brIdx   int
	hoisted []*ir.Instr // invariant loads moved to the preheader
	load    *ir.Instr   // compute load (nil for chain-0)
	arith   *ir.Instr   // single arithmetic op (nil for chain-0)
	store   *ir.Instr
}

// matchListLoop classifies the loop body, or returns an error describing
// why it does not fit.
func matchListLoop(p *ir.Program, l *ir.LoopInfo) (*listPattern, error) {
	body := p.Instrs[l.TestStart : l.BodyEnd+1]
	if len(body) < 3 {
		return nil, fmt.Errorf("body too small")
	}
	br := body[0]
	if br.Op != ir.Br || br.Rel != ir.EQ || br.Src2 != "" || br.Target != l.ExitLabel {
		return nil, fmt.Errorf("loop does not start with a NULL exit test")
	}
	pat := &listPattern{v: br.Src1}

	defined := map[string]bool{}
	for _, in := range body {
		if d := in.Defs(); d != "" {
			defined[d] = true
		}
	}

	for _, in := range body[1:] {
		switch in.Op {
		case ir.Goto:
			if in.Target != l.HeadLabel {
				return nil, fmt.Errorf("unexpected goto %s", in.Target)
			}
		case ir.Load:
			switch {
			case in.Dst == in.Src1 && in.Src1 == pat.v:
				if pat.adv != "" {
					return nil, fmt.Errorf("multiple advances")
				}
				pat.adv = in.Field
			case in.Src1 == pat.v:
				if pat.load != nil {
					return nil, fmt.Errorf("more than one compute load")
				}
				pat.load = in
			case !defined[in.Src1]:
				pat.hoisted = append(pat.hoisted, in)
			default:
				return nil, fmt.Errorf("load from computed pointer %s", in.Src1)
			}
		case ir.LoadImm:
			// Constant setup (e.g. "li 0, R4" feeding the store) is
			// loop-invariant by construction; hoist it.
			pat.hoisted = append(pat.hoisted, in)
		case ir.Store:
			if in.Src1 != pat.v {
				return nil, fmt.Errorf("store through %s, not the traversal pointer", in.Src1)
			}
			if pat.store != nil {
				return nil, fmt.Errorf("more than one store")
			}
			pat.store = in
		case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem:
			if pat.arith != nil {
				return nil, fmt.Errorf("more than one arithmetic op")
			}
			pat.arith = in
		case ir.Br:
			return nil, fmt.Errorf("internal control flow")
		default:
			return nil, fmt.Errorf("unsupported op %s", in.Op)
		}
	}
	if pat.adv == "" {
		return nil, fmt.Errorf("no pointer advance")
	}
	if pat.store == nil {
		return nil, fmt.Errorf("no store (nothing to pipeline)")
	}
	if (pat.load == nil) != (pat.arith == nil) {
		return nil, fmt.Errorf("compute load and arithmetic must appear together")
	}
	if pat.arith != nil {
		usesLoad := pat.arith.Src1 == pat.load.Dst || pat.arith.Src2 == pat.load.Dst
		if !usesLoad || pat.store.Src2 != pat.arith.Dst {
			return nil, fmt.Errorf("compute chain does not flow load -> op -> store")
		}
		if (pat.arith.Op == ir.Div || pat.arith.Op == ir.Rem) && pat.arith.Src2 == pat.load.Dst {
			// The pipeline executes the op speculatively on the drained
			// iteration with a zero operand — a division would fault.
			return nil, fmt.Errorf("division by a loaded value cannot be speculated")
		}
	}
	return pat, nil
}

// Pipelined is an emitted software-pipelined loop.
type Pipelined struct {
	Prog *machine.VLIWProgram
	Info PipelineInfo
	// KernelOps is the kernel bundle width actually needed.
	KernelOps int
}

// EmitPipelined software-pipelines a list-traversal loop for a VLIW of the
// given width, following Section 5.2 exactly: invariant loads hoist to the
// preheader, the advance is renamed and speculatively hoisted (legal by
// Def 4.1), and the body folds into a one-cycle kernel whose shift copies
// are free under VLIW read-before-write semantics. Emission refuses when
// the alias oracle reports carried memory dependences (conservative
// analysis) or an invalid abstraction — reproducing the paper's claim that
// the transformation is enabled by ADDS + GPM.
func EmitPipelined(p *ir.Program, l *ir.LoopInfo, opt depgraph.Options, width int) (*Pipelined, error) {
	// Analyze the loop as it will actually be scheduled: with invariant
	// loads hoisted (the paper counts five body operations after hoisting
	// hd->x).
	hp, hl, _ := LICM(p, l, opt)
	info := AnalyzePipeline(hp, hl, opt, width)
	if !info.OK {
		return nil, fmt.Errorf("pipelining blocked by %d carried memory dependences under oracle %q",
			len(info.CarriedMem), opt.Oracle.Name())
	}
	pat, err := matchListLoop(p, l)
	if err != nil {
		return nil, fmt.Errorf("loop shape: %v", err)
	}

	v := pat.v
	v1, v2 := v+"$1", v+"$2"
	chain1 := pat.load != nil

	kernelOps := 5 // br, store, advance, shift, goto
	if chain1 {
		kernelOps = 8 // br, load, arith, store, advance, 2 shifts, goto
	}
	if width < kernelOps {
		return nil, fmt.Errorf("width %d below kernel size %d", width, kernelOps)
	}

	out := machine.NewVLIWProgram(width)
	// Preamble: everything before the loop head, sequentially.
	headIdx := p.FindLabel(l.HeadLabel)
	for _, in := range p.Instrs[:headIdx] {
		if in.Op == ir.Label {
			out.Mark(in.Name)
			continue
		}
		out.MustAdd(machine.Bundle{in.Clone()})
	}
	// Hoisted invariant loads.
	for _, in := range pat.hoisted {
		out.MustAdd(machine.Bundle{in.Clone()})
	}

	advance := &ir.Instr{Op: ir.Load, Dst: v, Src1: v, Field: pat.adv}
	exitBr := func(target string) *ir.Instr {
		return &ir.Instr{Op: ir.Br, Rel: ir.EQ, Src1: v, Src2: "", Target: target}
	}
	shift1 := &ir.Instr{Op: ir.Move, Src1: v, Dst: v1}
	shift2 := &ir.Instr{Op: ir.Move, Src1: v1, Dst: v2}

	if chain1 {
		// Prologue P1: start iteration A (no arith result yet, no store).
		out.MustAdd(machine.Bundle{
			exitBr(l.ExitLabel),
			pat.load.Clone(),
			advance.Clone(),
			shift1.Clone(),
		})
		// Prologue P2: start B, compute A's result.
		out.MustAdd(machine.Bundle{
			exitBr("drain$" + l.HeadLabel),
			pat.load.Clone(),
			pat.arith.Clone(),
			advance.Clone(),
			shift1.Clone(),
			shift2.Clone(),
		})
		// Kernel: one bundle, one iteration per cycle.
		out.Mark("kernel$" + l.HeadLabel)
		st := pat.store.Clone()
		st.Src1 = v2
		out.MustAdd(machine.Bundle{
			exitBr("drain$" + l.HeadLabel),
			pat.load.Clone(),
			pat.arith.Clone(),
			st,
			advance.Clone(),
			shift1.Clone(),
			shift2.Clone(),
			&ir.Instr{Op: ir.Goto, Target: "kernel$" + l.HeadLabel},
		})
		// Drain: one iteration still in flight (pointer in v2, result in
		// the arith destination).
		out.Mark("drain$" + l.HeadLabel)
		dst := pat.store.Clone()
		dst.Src1 = v2
		out.MustAdd(machine.Bundle{
			&ir.Instr{Op: ir.Br, Rel: ir.EQ, Src1: v2, Src2: "", Target: l.ExitLabel},
		})
		out.MustAdd(machine.Bundle{dst})
	} else {
		// Chain-0 (e.g. list initialization): store lags one stage.
		out.MustAdd(machine.Bundle{ // prologue: start A
			exitBr(l.ExitLabel),
			advance.Clone(),
			shift1.Clone(),
		})
		out.Mark("kernel$" + l.HeadLabel)
		st := pat.store.Clone()
		st.Src1 = v1
		out.MustAdd(machine.Bundle{
			exitBr(l.ExitLabel),
			st,
			advance.Clone(),
			shift1.Clone(),
			&ir.Instr{Op: ir.Goto, Target: "kernel$" + l.HeadLabel},
		})
	}

	// Postamble: everything after the loop's exit label.
	exitIdx := p.FindLabel(l.ExitLabel)
	out.Mark(l.ExitLabel)
	for _, in := range p.Instrs[exitIdx+1:] {
		if in.Op == ir.Label {
			out.Mark(in.Name)
			continue
		}
		out.MustAdd(machine.Bundle{in.Clone()})
	}

	return &Pipelined{Prog: out, Info: info, KernelOps: kernelOps}, nil
}
