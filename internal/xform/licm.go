// Package xform implements the transformations of Section 5.2 and [HG92]:
// loop-invariant code motion, the renaming + speculative-hoist sequence that
// breaks the pointer-advance recurrence, software pipelining of list
// traversal loops for a VLIW target, per-iteration VLIW compaction, and
// loop unrolling for scalar machines. All transformations are
// legality-checked against a dependence graph built with a caller-chosen
// alias oracle, so the same code demonstrates both the paper's enabled
// transformations (under ADDS + GPM) and their rejection under conservative
// analysis.
package xform

import (
	"repro/internal/depgraph"
	"repro/internal/ir"
)

// cloneProgram deep-copies a program so transformations never mutate their
// input.
func cloneProgram(p *ir.Program) *ir.Program {
	out := &ir.Program{Name: p.Name, Params: append([]string(nil), p.Params...)}
	for _, in := range p.Instrs {
		out.Instrs = append(out.Instrs, in.Clone())
	}
	for _, l := range p.Loops {
		c := *l
		out.Loops = append(out.Loops, &c)
	}
	return out
}

// insertAt inserts instructions at pos and fixes loop metadata. Inserting
// exactly at a region's start places the new instructions inside that
// region (its start does not shift; its end does).
func insertAt(p *ir.Program, pos int, ins ...*ir.Instr) {
	p.Instrs = append(p.Instrs[:pos], append(append([]*ir.Instr{}, ins...), p.Instrs[pos:]...)...)
	n := len(ins)
	for _, l := range p.Loops {
		if l.TestStart > pos {
			l.TestStart += n
		}
		if l.BodyStart > pos {
			l.BodyStart += n
		}
		if l.BodyEnd >= pos {
			l.BodyEnd += n
		}
	}
}

// removeAt removes the instruction at pos and fixes loop metadata.
func removeAt(p *ir.Program, pos int) *ir.Instr {
	in := p.Instrs[pos]
	p.Instrs = append(p.Instrs[:pos], p.Instrs[pos+1:]...)
	for _, l := range p.Loops {
		if l.TestStart > pos {
			l.TestStart--
		}
		if l.BodyStart > pos {
			l.BodyStart--
		}
		if l.BodyEnd > pos {
			l.BodyEnd--
		}
	}
	return in
}

// LICM hoists loop-invariant loads out of the loop into the preheader (the
// paper's motion of "load hd->x, R2" above the loop). A load is hoisted
// when its base register is never redefined in the loop, its destination
// has no other definition in the loop, and the dependence graph shows no
// memory dependence between the load and any store in the loop (so the
// loaded location is never written — the aliasing question the paper's
// analysis answers). The hoisted load executes even when the loop does not,
// which is safe under the speculative-traversability assumption of
// Section 3.2.
//
// It returns the transformed program, the refreshed loop metadata, and the
// hoisted instructions.
func LICM(p *ir.Program, l *ir.LoopInfo, opt depgraph.Options) (*ir.Program, *ir.LoopInfo, []*ir.Instr) {
	out := cloneProgram(p)
	loop := out.Loops[l.SrcID]
	dg := depgraph.Build(out, loop, opt)

	region := func() []*ir.Instr { return out.Instrs[loop.TestStart : loop.BodyEnd+1] }

	defCount := func(reg string) int {
		n := 0
		for _, in := range region() {
			if in.Defs() == reg {
				n++
			}
		}
		return n
	}

	var hoisted []*ir.Instr
	for {
		moved := false
		for bi, in := range region() {
			if in.Op != ir.Load {
				continue
			}
			if defCount(in.Src1) != 0 || defCount(in.Dst) != 1 {
				continue
			}
			conflict := false
			for _, e := range dg.Edges {
				if e.Mem && (e.From == bi || e.To == bi) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			// Hoist: remove from the body, insert before the head label.
			abs := loop.TestStart + bi
			instr := removeAt(out, abs)
			headIdx := out.FindLabel(loop.HeadLabel)
			insertAt(out, headIdx, instr)
			hoisted = append(hoisted, instr)
			dg = depgraph.Build(out, loop, opt)
			moved = true
			break
		}
		if !moved {
			break
		}
	}
	return out, loop, hoisted
}
