package xform

import "encoding/json"

// pipelineInfoJSON is the wire form of a PipelineInfo. Carried memory
// dependences are rendered as their display strings; the structured edges
// are available through the dependence-graph encoding when needed.
type pipelineInfoJSON struct {
	BodyOps    int      `json:"bodyOps"`
	ResMII     int      `json:"resMII"`
	RecMII     int      `json:"recMII"`
	II         int      `json:"ii"`
	Stages     int      `json:"stages"`
	Theoretic  float64  `json:"theoreticalSpeedup"`
	CarriedMem []string `json:"carriedMem"`
	OK         bool     `json:"ok"`
}

// MarshalJSON renders the pipelining analysis in the encoding shared by
// addsd responses and addsc -format json.
func (i PipelineInfo) MarshalJSON() ([]byte, error) {
	out := pipelineInfoJSON{
		BodyOps: i.BodyOps, ResMII: i.ResMII, RecMII: i.RecMII,
		II: i.II, Stages: i.Stages, Theoretic: i.Theoretic,
		CarriedMem: []string{}, OK: i.OK,
	}
	for _, e := range i.CarriedMem {
		out.CarriedMem = append(out.CarriedMem, e.String())
	}
	return json.Marshal(out)
}
