package xform

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// Compact packs a linear IR program into VLIW bundles block by block
// (no software pipelining): within each straight-line block, independent
// operations share a cycle, respecting register dependences under the
// machine's read-before-write semantics and keeping memory operations on
// the same field ordered. This is the paper's baseline "fine-grain
// parallelism without crossing iterations" against which pipelining is
// compared at small widths.
func Compact(p *ir.Program, width int) *machine.VLIWProgram {
	out := machine.NewVLIWProgram(width)
	var block []*ir.Instr
	flush := func() {
		if len(block) == 0 {
			return
		}
		for _, b := range scheduleBlock(block, width) {
			out.MustAdd(b)
		}
		block = nil
	}
	for _, in := range p.Instrs {
		switch in.Op {
		case ir.Label:
			flush()
			out.Mark(in.Name)
		case ir.Br, ir.Goto, ir.Ret:
			block = append(block, in)
			flush()
		case ir.Nop:
		default:
			block = append(block, in)
		}
	}
	flush()
	return out
}

// scheduleBlock list-schedules one straight-line block.
func scheduleBlock(block []*ir.Instr, width int) []machine.Bundle {
	n := len(block)
	cycle := make([]int, n)
	used := map[int]int{} // cycle -> ops scheduled

	// depDelta returns whether instruction i depends on earlier j and the
	// minimum cycle distance: 1 for value flow and ordered writes (reads
	// see pre-cycle values), 0 for anti dependences (same cycle is fine —
	// reads happen before writes commit).
	depDelta := func(j, i int) (bool, int) {
		a, b := block[j], block[i]
		dep, delta := false, 0
		if d := a.Defs(); d != "" {
			for _, u := range b.Uses() {
				if u == d {
					return true, 1
				}
			}
			if b.Defs() == d {
				return true, 1
			}
		}
		for _, u := range a.Uses() {
			if b.Defs() == u {
				dep = true // anti
			}
		}
		if a.IsMem() && b.IsMem() && a.Field == b.Field &&
			(a.Op == ir.Store || b.Op == ir.Store) {
			if a.Op == ir.Store {
				return true, 1 // store then load/store: order visible
			}
			dep = true // load then store: same cycle is fine
		}
		return dep, delta
	}

	for i := range block {
		earliest := 0
		for j := 0; j < i; j++ {
			if dep, delta := depDelta(j, i); dep {
				if c := cycle[j] + delta; c > earliest {
					earliest = c
				}
			}
		}
		for used[earliest] >= width {
			earliest++
		}
		cycle[i] = earliest
		used[earliest]++
	}

	max := 0
	for _, c := range cycle {
		if c > max {
			max = c
		}
	}
	// A trailing control transfer must sit in the final bundle: later
	// bundles would never execute.
	if last := block[n-1]; last.Op == ir.Br || last.Op == ir.Goto || last.Op == ir.Ret {
		if cycle[n-1] != max {
			used[cycle[n-1]]--
			if used[max] >= width {
				max++
			}
			cycle[n-1] = max
			used[max]++
		}
	}
	bundles := make([]machine.Bundle, max+1)
	for i, in := range block {
		bundles[cycle[i]] = append(bundles[cycle[i]], in.Clone())
	}
	// Drop empty bundles (possible when width pushes ops past gaps).
	var out []machine.Bundle
	for _, b := range bundles {
		if len(b) > 0 {
			out = append(out, b)
		}
	}
	return out
}
