package xform

import (
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/depgraph"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const twoWayLL = `
type TwoWayLL [X] {
    int x;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

// shiftSrc is the paper's Section 5.2 loop.
const shiftSrc = twoWayLL + `
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->x = p->x - hd->x;
        p = p->next;
    }
}
`

// initSrc is [HG92]'s list initialization loop.
const initSrc = twoWayLL + `
void initlist(TwoWayLL *p) {
    while (p != NULL) {
        p->x = 0;
        p = p->next;
    }
}
`

type fixture struct {
	info *types.Info
	fi   *types.FuncInfo
	prog *ir.Program
	loop *ir.LoopInfo
	g    *norm.Graph
}

func setup(t *testing.T, src, fn string) *fixture {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("func %s missing", fn)
	}
	prog := ir.Build(fi, info.Env)
	g := norm.Build(fi, info.Env)
	return &fixture{info: info, fi: fi, prog: prog, loop: prog.Loops[0], g: g}
}

func (f *fixture) gpmOpts() depgraph.Options {
	return depgraph.Options{
		Oracle:   alias.NewGPM(f.g, f.info.Env),
		NormLoop: f.g.Loops[f.loop.SrcID],
		Env:      f.info.Env,
		VarTypes: f.fi.Vars,
	}
}

func (f *fixture) consOpts() depgraph.Options {
	return depgraph.Options{
		Oracle:   alias.NewConservative(f.g),
		NormLoop: f.g.Loops[f.loop.SrcID],
		Env:      f.info.Env,
		VarTypes: f.fi.Vars,
	}
}

// buildList makes a concrete list: values 10, 20, 30, ...
func buildList(h *interp.Heap, n int) *interp.Node {
	var head, prev *interp.Node
	for i := 0; i < n; i++ {
		node := h.New("TwoWayLL")
		node.Ints["x"] = int64(10 * (i + 1))
		if prev == nil {
			head = node
		} else {
			prev.Ptrs["next"] = node
			node.Ptrs["prev"] = prev
		}
		prev = node
	}
	return head
}

// listValues reads the x fields along next.
func listValues(hd *interp.Node) []int64 {
	var out []int64
	for n := hd; n != nil; n = n.Ptrs["next"] {
		out = append(out, n.Ints["x"])
	}
	return out
}

func TestLICMHoistsInvariantLoadUnderGPM(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	out, loop, hoisted := LICM(f.prog, f.loop, f.gpmOpts())
	if len(hoisted) != 1 || hoisted[0].Field != "x" || hoisted[0].Src1 != "hd" {
		t.Fatalf("hoisted = %v\n%s", hoisted, out.String())
	}
	// The hoisted load sits before the loop head label.
	headIdx := out.FindLabel(loop.HeadLabel)
	found := false
	for _, in := range out.Instrs[:headIdx] {
		if in.Op == ir.Load && in.Src1 == "hd" {
			found = true
		}
	}
	if !found {
		t.Errorf("load hd->x not in preheader:\n%s", out.String())
	}
	// Semantics preserved.
	assertSameSemantics(t, f.prog, out, 9)
}

func TestLICMBlockedUnderConservative(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	_, _, hoisted := LICM(f.prog, f.loop, f.consOpts())
	if len(hoisted) != 0 {
		t.Errorf("conservative aliasing must block hoisting hd->x (it may alias p->x), got %v", hoisted)
	}
}

// assertSameSemantics runs both programs on identical fresh lists and
// compares the resulting heaps.
func assertSameSemantics(t *testing.T, a, b *ir.Program, n int) {
	t.Helper()
	h1 := interp.NewHeap()
	hd1 := buildList(h1, n)
	if _, err := machine.RunScalar(a, machine.DefaultScalar(), h1, map[string]machine.Word{"hd": machine.RefWord(hd1), "p": machine.RefWord(hd1)}); err != nil {
		t.Fatalf("original: %v", err)
	}
	h2 := interp.NewHeap()
	hd2 := buildList(h2, n)
	if _, err := machine.RunScalar(b, machine.DefaultScalar(), h2, map[string]machine.Word{"hd": machine.RefWord(hd2), "p": machine.RefWord(hd2)}); err != nil {
		t.Fatalf("transformed: %v\n%s", err, b.String())
	}
	v1, v2 := listValues(hd1), listValues(hd2)
	if len(v1) != len(v2) {
		t.Fatalf("list lengths differ: %v vs %v", v1, v2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("heaps differ at %d: %v vs %v", i, v1, v2)
		}
	}
}

func TestRenameAdvance(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	out, loop, primed, ok := RenameAdvance(f.prog, f.loop)
	if !ok || primed != "p'" {
		t.Fatalf("rename failed: %v %q", ok, primed)
	}
	if first := out.Instrs[loop.BodyStart]; first.Op != ir.Load || first.Dst != "p'" {
		t.Errorf("renamed load not at body start:\n%s", out.String())
	}
	if last := out.Instrs[loop.BodyEnd-1]; last.Op != ir.Move || last.Src1 != "p'" || last.Dst != "p" {
		t.Errorf("copy not at body end:\n%s", out.String())
	}
	assertSameSemantics(t, f.prog, out, 8)
}

func TestSpeculativeHoist(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	renamed, loop, _, ok := RenameAdvance(f.prog, f.loop)
	if !ok {
		t.Fatal("rename failed")
	}
	out, loop2, ok := SpeculativeHoist(renamed, loop)
	if !ok {
		t.Fatal("hoist failed")
	}
	// The advance load now precedes the exit test.
	test := out.Instrs[loop2.TestStart]
	if test.Op != ir.Load || test.Dst != "p'" {
		t.Errorf("advance not hoisted above the test:\n%s", out.String())
	}
	// The scalar machine faults on the speculative NULL load, so validate
	// on the VLIW machine with speculative loads instead.
	h1 := interp.NewHeap()
	hd1 := buildList(h1, 6)
	if _, err := machine.RunScalar(f.prog, machine.DefaultScalar(), h1, map[string]machine.Word{"hd": machine.RefWord(hd1)}); err != nil {
		t.Fatal(err)
	}
	h2 := interp.NewHeap()
	hd2 := buildList(h2, 6)
	if _, err := machine.RunVLIW(machine.Sequentialize(out), machine.DefaultVLIW(), h2, map[string]machine.Word{"hd": machine.RefWord(hd2)}); err != nil {
		t.Fatalf("hoisted program: %v\n%s", err, out.String())
	}
	v1, v2 := listValues(hd1), listValues(hd2)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("heaps differ: %v vs %v", v1, v2)
		}
	}
}

// TestPaperTheoreticalSpeedup reproduces the Section 5.2 headline. The
// paper's sequence — hoist hd->x, rename the advance, speculatively hoist
// it — leaves five operations (S1..S5) that pipeline at II=1 under
// ADDS+GPM: a theoretical speedup of 5. Under conservative analysis the
// carried store->load dependences keep the recurrence long.
func TestPaperTheoreticalSpeedup(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	p1, l1, hoisted := LICM(f.prog, f.loop, f.gpmOpts())
	if len(hoisted) != 1 {
		t.Fatalf("LICM hoisted %d loads", len(hoisted))
	}
	p2, l2, _, ok := RenameAdvance(p1, l1)
	if !ok {
		t.Fatal("rename failed")
	}
	p3, l3, ok := SpeculativeHoist(p2, l2)
	if !ok {
		t.Fatal("hoist failed")
	}

	info := AnalyzePipeline(p3, l3, f.gpmOpts(), 8)
	if !info.OK {
		t.Fatalf("pipelining should be legal under GPM: %+v", info)
	}
	if info.BodyOps != 5 {
		t.Errorf("BodyOps = %d, want 5 (S1..S5)\n%s", info.BodyOps, p3.String())
	}
	if info.II != 1 {
		t.Errorf("II = %d, want 1", info.II)
	}
	if info.Theoretic != 5.0 {
		t.Errorf("theoretical speedup = %.1f, want 5.0", info.Theoretic)
	}

	// The raw loop under conservative aliasing: blocked and serialized.
	cons := AnalyzePipeline(f.prog, f.loop, f.consOpts(), 8)
	if cons.OK {
		t.Error("conservative analysis must block pipelining")
	}
	if cons.RecMII < 3 {
		t.Errorf("conservative RecMII = %d, want >= 3 (serialized)", cons.RecMII)
	}
}

func TestEmitPipelinedCorrectness(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	pl, err := EmitPipelined(f.prog, f.loop, f.gpmOpts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, 3, 5, 10, 50} {
		h1 := interp.NewHeap()
		hd1 := buildList(h1, n+1) // +1: hd itself is not processed
		if _, err := machine.RunScalar(f.prog, machine.DefaultScalar(), h1, map[string]machine.Word{"hd": machine.RefWord(hd1)}); err != nil {
			t.Fatal(err)
		}
		h2 := interp.NewHeap()
		hd2 := buildList(h2, n+1)
		if _, err := machine.RunVLIW(pl.Prog, machine.DefaultVLIW(), h2, map[string]machine.Word{"hd": machine.RefWord(hd2)}); err != nil {
			t.Fatalf("n=%d: %v\n%s", n, err, pl.Prog.String())
		}
		v1, v2 := listValues(hd1), listValues(hd2)
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("n=%d: heaps differ at %d: %v vs %v", n, i, v1, v2)
			}
		}
	}
}

func TestEmitPipelinedSpeedupMeasured(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	pl, err := EmitPipelined(f.prog, f.loop, f.gpmOpts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	n := 200
	h1 := interp.NewHeap()
	hd1 := buildList(h1, n)
	seq, err := machine.RunVLIW(machine.Sequentialize(f.prog), machine.DefaultVLIW(), h1, map[string]machine.Word{"hd": machine.RefWord(hd1)})
	if err != nil {
		t.Fatal(err)
	}
	h2 := interp.NewHeap()
	hd2 := buildList(h2, n)
	pip, err := machine.RunVLIW(pl.Prog, machine.DefaultVLIW(), h2, map[string]machine.Word{"hd": machine.RefWord(hd2)})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(seq.Cycles) / float64(pip.Cycles)
	if speedup < 4.5 {
		t.Errorf("measured speedup %.2f (seq %d, pipelined %d cycles); want >= 4.5 "+
			"(paper claims theoretical 5)", speedup, seq.Cycles, pip.Cycles)
	}
}

func TestEmitPipelinedRejectedConservative(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	if _, err := EmitPipelined(f.prog, f.loop, f.consOpts(), 8); err == nil {
		t.Fatal("conservative oracle must block pipelining")
	}
}

func TestEmitPipelinedWidthTooSmall(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	if _, err := EmitPipelined(f.prog, f.loop, f.gpmOpts(), 4); err == nil {
		t.Fatal("width 4 cannot hold the 8-op kernel")
	}
}

func TestEmitPipelinedChain0(t *testing.T) {
	f := setup(t, initSrc, "initlist")
	pl, err := EmitPipelined(f.prog, f.loop, f.gpmOpts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, 7, 30} {
		h1 := interp.NewHeap()
		hd1 := buildList(h1, n)
		args := map[string]machine.Word{"p": machine.RefWord(hd1)}
		if _, err := machine.RunScalar(f.prog, machine.DefaultScalar(), h1, args); err != nil {
			t.Fatal(err)
		}
		h2 := interp.NewHeap()
		hd2 := buildList(h2, n)
		if _, err := machine.RunVLIW(pl.Prog, machine.DefaultVLIW(), h2, map[string]machine.Word{"p": machine.RefWord(hd2)}); err != nil {
			t.Fatalf("n=%d: %v\n%s", n, err, pl.Prog.String())
		}
		v1, v2 := listValues(hd1), listValues(hd2)
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("n=%d: differ: %v vs %v", n, v1, v2)
			}
		}
	}
}

func TestUnrollCorrectness(t *testing.T) {
	f := setup(t, initSrc, "initlist")
	for _, k := range []int{1, 2, 3, 4, 8} {
		u, err := Unroll(f.prog, f.loop, k, f.gpmOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, 2, 3, 7, 100} {
			h1 := interp.NewHeap()
			hd1 := buildList(h1, n)
			args1 := map[string]machine.Word{"p": machine.RefWord(hd1)}
			if _, err := machine.RunScalar(f.prog, machine.DefaultScalar(), h1, args1); err != nil {
				t.Fatal(err)
			}
			h2 := interp.NewHeap()
			hd2 := buildList(h2, n)
			args2 := map[string]machine.Word{"p": machine.RefWord(hd2)}
			if _, err := machine.RunScalar(u, machine.DefaultScalar(), h2, args2); err != nil {
				t.Fatalf("k=%d n=%d: %v\n%s", k, n, err, u.String())
			}
			v1, v2 := listValues(hd1), listValues(hd2)
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("k=%d n=%d: differ: %v vs %v", k, n, v1, v2)
				}
			}
		}
	}
}

// TestUnrollSpeedupShape reproduces [HG92]: 3-unrolling a length-100 list
// loop on the scalar machine gives a substantial speedup (the paper cites
// 47%; the exact number depends on the machine, the shape must hold).
func TestUnrollSpeedupShape(t *testing.T) {
	f := setup(t, initSrc, "initlist")
	u3, err := Unroll(f.prog, f.loop, 3, f.gpmOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := 100
	h1 := interp.NewHeap()
	hd1 := buildList(h1, n)
	base, err := machine.RunScalar(f.prog, machine.DefaultScalar(), h1, map[string]machine.Word{"p": machine.RefWord(hd1)})
	if err != nil {
		t.Fatal(err)
	}
	h2 := interp.NewHeap()
	hd2 := buildList(h2, n)
	fast, err := machine.RunScalar(u3, machine.DefaultScalar(), h2, map[string]machine.Word{"p": machine.RefWord(hd2)})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(base.Cycles)/float64(fast.Cycles) - 1
	if speedup < 0.25 {
		t.Errorf("3-unroll speedup = %.0f%%, want >= 25%% (paper cites 47%%); base %d fast %d",
			speedup*100, base.Cycles, fast.Cycles)
	}
}

func TestCompactCorrectnessAndSpeedup(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	for _, w := range []int{1, 2, 4} {
		c := Compact(f.prog, w)
		h1 := interp.NewHeap()
		hd1 := buildList(h1, 12)
		if _, err := machine.RunScalar(f.prog, machine.DefaultScalar(), h1, map[string]machine.Word{"hd": machine.RefWord(hd1)}); err != nil {
			t.Fatal(err)
		}
		h2 := interp.NewHeap()
		hd2 := buildList(h2, 12)
		if _, err := machine.RunVLIW(c, machine.DefaultVLIW(), h2, map[string]machine.Word{"hd": machine.RefWord(hd2)}); err != nil {
			t.Fatalf("w=%d: %v\n%s", w, err, c.String())
		}
		v1, v2 := listValues(hd1), listValues(hd2)
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("w=%d: heaps differ", w)
			}
		}
	}
	// Wider compaction should not be slower.
	run := func(w int) int64 {
		h := interp.NewHeap()
		hd := buildList(h, 50)
		r, err := machine.RunVLIW(Compact(f.prog, w), machine.DefaultVLIW(), h, map[string]machine.Word{"hd": machine.RefWord(hd)})
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if run(4) > run(1) {
		t.Error("width-4 compaction slower than width-1")
	}
}

func TestCopyPropagateRemovesDeadMove(t *testing.T) {
	// A move whose destination is immediately overwritten is dead.
	p := &ir.Program{
		Instrs: []*ir.Instr{
			{Op: ir.Label, Name: "L"},
			{Op: ir.Br, Rel: ir.EQ, Src1: "p", Src2: "", Target: "done"},
			{Op: ir.Move, Src1: "a", Dst: "b"},
			{Op: ir.LoadImm, Imm: 1, Dst: "b"},
			{Op: ir.Goto, Target: "L"},
			{Op: ir.Label, Name: "done"},
			{Op: ir.Ret},
		},
		Loops: []*ir.LoopInfo{{HeadLabel: "L", ExitLabel: "done", TestStart: 1, BodyStart: 2, BodyEnd: 4, SrcID: 0}},
	}
	out, _ := CopyPropagate(p, p.Loops[0])
	for _, in := range out.Instrs {
		if in.Op == ir.Move {
			t.Errorf("dead move survived:\n%s", out.String())
		}
	}
}

func TestMatchListLoopRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
		fn   string
	}{
		{"inner-branch", twoWayLL + `
void f(TwoWayLL *p) {
    while (p != NULL) {
        if (p->x > 0) { p->x = 0; }
        p = p->next;
    }
}`, "f"},
		{"no-store", twoWayLL + `
void f(TwoWayLL *p) {
    int s;
    s = 0;
    while (p != NULL) {
        s = s + p->x;
        p = p->next;
    }
}`, "f"},
	}
	for _, c := range cases {
		f := setup(t, c.src, c.fn)
		if _, err := matchListLoop(f.prog, f.loop); err == nil {
			t.Errorf("%s: pattern should be rejected", c.name)
		}
	}
}

func TestPipelineInfoString(t *testing.T) {
	f := setup(t, shiftSrc, "shift")
	info := AnalyzePipeline(f.prog, f.loop, f.gpmOpts(), 8)
	if info.Stages < 1 || info.ResMII != 1 {
		t.Errorf("info = %+v", info)
	}
	if !strings.Contains(f.prog.String(), "load p->next, p") {
		t.Error("program print sanity")
	}
}

// TestUnrollPlainLabelRenaming: a loop whose body lowers to internal labels
// (an if/else) takes the plain-replication path, where every copy's labels
// must be renamed and its branches retargeted within that copy. Without the
// renaming all copies share one label name, so a body branch in copy 0
// resolves into a later copy and the unrolled program skips work.
func TestUnrollPlainLabelRenaming(t *testing.T) {
	src := twoWayLL + `
void f(TwoWayLL *p) {
    while (p != NULL) {
        if (p->x > 15) {
            p->x = p->x - 100;
        } else {
            p->x = p->x + 1;
        }
        p = p->next;
    }
}
`
	f := setup(t, src, "f")
	if _, err := matchListLoop(f.prog, f.loop); err == nil {
		t.Fatal("fixture must take the plain-unroll path")
	}
	for _, k := range []int{2, 3} {
		u, err := Unroll(f.prog, f.loop, k, f.gpmOpts())
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, in := range u.Instrs {
			if in.Op == ir.Label {
				if seen[in.Name] {
					t.Fatalf("k=%d: duplicate label %q\n%s", k, in.Name, u.String())
				}
				seen[in.Name] = true
			}
		}
		for _, n := range []int{0, 1, 2, 3, 5, 10} {
			h1 := interp.NewHeap()
			hd1 := buildList(h1, n)
			if _, err := machine.RunScalar(f.prog, machine.DefaultScalar(), h1, map[string]machine.Word{"p": machine.RefWord(hd1)}); err != nil {
				t.Fatal(err)
			}
			h2 := interp.NewHeap()
			hd2 := buildList(h2, n)
			if _, err := machine.RunScalar(u, machine.DefaultScalar(), h2, map[string]machine.Word{"p": machine.RefWord(hd2)}); err != nil {
				t.Fatalf("k=%d n=%d: %v\n%s", k, n, err, u.String())
			}
			v1, v2 := listValues(hd1), listValues(hd2)
			if len(v1) != len(v2) {
				t.Fatalf("k=%d n=%d: list lengths differ", k, n)
			}
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("k=%d n=%d: values differ: %v vs %v", k, n, v1, v2)
				}
			}
		}
	}
}
