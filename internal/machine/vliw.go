package machine

import (
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
)

// Bundle is one VLIW instruction word: up to Width operations issued
// together. Within a bundle every operation reads register values from
// before the cycle; writes commit at the end of the cycle. This
// read-before-write semantics makes the software-pipelining shift registers
// of Section 5.2 free.
type Bundle []*ir.Instr

// VLIWProgram is a sequence of bundles with bundle-level labels.
type VLIWProgram struct {
	Width   int
	Bundles []Bundle
	Labels  map[string]int // label -> bundle index
}

// NewVLIWProgram returns an empty program of the given width.
func NewVLIWProgram(width int) *VLIWProgram {
	return &VLIWProgram{Width: width, Labels: map[string]int{}}
}

// Add appends a bundle, checking the width.
func (p *VLIWProgram) Add(b Bundle) error {
	if len(b) > p.Width {
		return fmt.Errorf("bundle of %d ops exceeds width %d", len(b), p.Width)
	}
	p.Bundles = append(p.Bundles, b)
	return nil
}

// MustAdd appends a bundle and panics on overflow (generator-internal).
func (p *VLIWProgram) MustAdd(b Bundle) {
	if err := p.Add(b); err != nil {
		panic(err)
	}
}

// Mark labels the next bundle to be added.
func (p *VLIWProgram) Mark(label string) { p.Labels[label] = len(p.Bundles) }

// String renders the program.
func (p *VLIWProgram) String() string {
	var sb strings.Builder
	byIdx := map[int][]string{}
	for l, i := range p.Labels {
		byIdx[i] = append(byIdx[i], l)
	}
	for i, b := range p.Bundles {
		for _, l := range byIdx[i] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		parts := make([]string, len(b))
		for j, in := range b {
			parts[j] = in.String()
		}
		fmt.Fprintf(&sb, "C%-3d [ %s ]\n", i, strings.Join(parts, " | "))
	}
	for l, i := range p.Labels {
		if i == len(p.Bundles) {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
	}
	return sb.String()
}

// VLIWConfig parameterizes the VLIW machine.
type VLIWConfig struct {
	// SpeculativeLoads makes loads through NULL yield NULL instead of
	// faulting — the non-faulting loads that let the paper hoist S6 above
	// the exit test (Section 3.2, speculative traversability).
	SpeculativeLoads bool
	MaxCycles        int64
}

// DefaultVLIW enables speculative loads (the paper's setting).
func DefaultVLIW() VLIWConfig {
	return VLIWConfig{SpeculativeLoads: true, MaxCycles: 1 << 26}
}

// RunVLIW executes the bundle program: one bundle per cycle.
func RunVLIW(p *VLIWProgram, cfg VLIWConfig, heap *interp.Heap, args map[string]Word) (*Result, error) {
	regs := map[string]Word{}
	for k, v := range args {
		regs[k] = v
	}
	get := func(r string) Word {
		if r == "" {
			return Null
		}
		return regs[r]
	}

	res := &Result{}
	pc := 0
	for pc < len(p.Bundles) {
		if cfg.MaxCycles > 0 && res.Cycles > cfg.MaxCycles {
			return nil, &Fault{PC: pc, Msg: "cycle budget exhausted"}
		}
		res.Cycles++
		bundle := p.Bundles[pc]

		// Phase 1: read and compute with pre-cycle values.
		type write struct {
			reg string
			val Word
		}
		type memwrite struct {
			node  *interp.Node
			field string
			val   Word
		}
		var writes []write
		var memwrites []memwrite
		jump := ""
		done := false
		for _, in := range bundle {
			res.Instrs++
			switch in.Op {
			case ir.Nop:
			case ir.Goto:
				// A bundle may pair a conditional exit with the back-edge
				// goto; the first taken transfer in bundle order wins.
				if jump == "" {
					jump = in.Target
				}
			case ir.Br:
				if jump == "" && evalRel(in.Rel, get(in.Src1), get(in.Src2)) {
					jump = in.Target
				}
			case ir.Load:
				base := get(in.Src1)
				if !base.IsRef || base.Ref == nil {
					if !cfg.SpeculativeLoads {
						return nil, &Fault{PC: pc, Msg: "load through NULL: " + in.String()}
					}
					writes = append(writes, write{in.Dst, Null})
					continue
				}
				writes = append(writes, write{in.Dst, readField(base.Ref, in.Field)})
			case ir.Store:
				base := get(in.Src1)
				if !base.IsRef || base.Ref == nil {
					return nil, &Fault{PC: pc, Msg: "store through NULL: " + in.String()}
				}
				memwrites = append(memwrites, memwrite{base.Ref, in.Field, get(in.Src2)})
			case ir.LoadImm:
				writes = append(writes, write{in.Dst, IntWord(in.Imm)})
			case ir.Move:
				writes = append(writes, write{in.Dst, get(in.Src1)})
			case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem:
				v, err := arith(in.Op, get(in.Src1), get(in.Src2), pc)
				if err != nil {
					return nil, err
				}
				writes = append(writes, write{in.Dst, v})
			case ir.Neg:
				writes = append(writes, write{in.Dst, IntWord(-get(in.Src1).Int)})
			case ir.Set:
				v := IntWord(0)
				if evalRel(in.Rel, get(in.Src1), get(in.Src2)) {
					v = IntWord(1)
				}
				writes = append(writes, write{in.Dst, v})
			case ir.New:
				writes = append(writes, write{in.Dst, RefWord(heap.New(in.TypeName))})
			case ir.Ret:
				res.Ret = get(in.Src1)
				done = true
			default:
				return nil, &Fault{PC: pc, Msg: "unsupported op " + in.Op.String()}
			}
		}

		// Phase 2: commit.
		for _, mw := range memwrites {
			writeField(mw.node, mw.field, mw.val)
		}
		for _, w := range writes {
			regs[w.reg] = w.val
		}
		if done {
			break
		}
		if jump != "" {
			t, ok := p.Labels[jump]
			if !ok {
				return nil, &Fault{PC: pc, Msg: "undefined label " + jump}
			}
			pc = t
			continue
		}
		pc++
	}
	res.Regs = regs
	return res, nil
}

// Sequentialize turns a linear IR program into one-op bundles — the
// baseline "unpipelined VLIW" execution for speedup comparisons.
func Sequentialize(p *ir.Program) *VLIWProgram {
	out := NewVLIWProgram(1)
	for _, in := range p.Instrs {
		if in.Op == ir.Label {
			out.Mark(in.Name)
			continue
		}
		out.MustAdd(Bundle{in})
	}
	return out
}
