package machine

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const listDecl = `
type List [X] {
    int x;
    List *next is uniquely forward along X;
};
`

func compile(t *testing.T, src, fn string) *ir.Program {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	return ir.Build(info.Func(fn), info.Env)
}

// buildList allocates a concrete list of n nodes with x = 10*(i+1).
func buildList(h *interp.Heap, n int) *interp.Node {
	var head, prev *interp.Node
	for i := 0; i < n; i++ {
		node := h.New("List")
		node.Ints["x"] = int64(10 * (i + 1))
		if prev == nil {
			head = node
		} else {
			prev.Ptrs["next"] = node
		}
		prev = node
	}
	return head
}

func TestScalarArithmetic(t *testing.T) {
	p := compile(t, `int f(int a, int b) { return a * b + a - b; }`, "f")
	res, err := RunScalar(p, DefaultScalar(), interp.NewHeap(), map[string]Word{
		"a": IntWord(6), "b": IntWord(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Int != 6*7+6-7 {
		t.Errorf("ret = %d", res.Ret.Int)
	}
}

func TestScalarListSum(t *testing.T) {
	p := compile(t, listDecl+`
int sum(List *hd) {
    List *p;
    int total;
    total = 0;
    p = hd;
    while (p != NULL) {
        total = total + p->x;
        p = p->next;
    }
    return total;
}`, "sum")
	h := interp.NewHeap()
	hd := buildList(h, 5)
	res, err := RunScalar(p, DefaultScalar(), h, map[string]Word{"hd": RefWord(hd)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Int != 10+20+30+40+50 {
		t.Errorf("sum = %d", res.Ret.Int)
	}
	if res.Cycles <= res.Instrs {
		t.Errorf("expected stalls/penalties: cycles=%d instrs=%d", res.Cycles, res.Instrs)
	}
}

func TestScalarLoadUseStall(t *testing.T) {
	// load immediately followed by a use must stall; an independent
	// instruction in between hides the latency.
	h := interp.NewHeap()
	n := h.New("List")
	n.Ints["x"] = 5

	direct := &ir.Program{Instrs: []*ir.Instr{
		{Op: ir.Load, Dst: "R1", Src1: "p", Field: "x"},
		{Op: ir.Add, Src1: "R1", Src2: "R1", Dst: "R2"},
		{Op: ir.Ret, Src1: "R2"},
	}}
	hidden := &ir.Program{Instrs: []*ir.Instr{
		{Op: ir.Load, Dst: "R1", Src1: "p", Field: "x"},
		{Op: ir.LoadImm, Imm: 1, Dst: "R9"},
		{Op: ir.Add, Src1: "R1", Src2: "R1", Dst: "R2"},
		{Op: ir.Ret, Src1: "R2"},
	}}
	args := map[string]Word{"p": RefWord(n)}
	r1, err := RunScalar(direct, DefaultScalar(), h, args)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScalar(hidden, DefaultScalar(), h, args)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stalls == 0 {
		t.Error("direct use after load must stall")
	}
	if r2.Stalls != 0 {
		t.Error("independent instruction must hide the load latency")
	}
	if r1.Ret.Int != 10 || r2.Ret.Int != 10 {
		t.Error("wrong results")
	}
}

func TestScalarBranchPenalty(t *testing.T) {
	// A taken goto costs BranchPenalty extra cycles.
	p := &ir.Program{Instrs: []*ir.Instr{
		{Op: ir.Goto, Target: "L"},
		{Op: ir.Label, Name: "skipped"},
		{Op: ir.Label, Name: "L"},
		{Op: ir.Ret},
	}}
	cfg := DefaultScalar()
	res, err := RunScalar(p, cfg, interp.NewHeap(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != int64(2+cfg.BranchPenalty) {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestScalarNullLoadFaults(t *testing.T) {
	p := &ir.Program{Instrs: []*ir.Instr{
		{Op: ir.Load, Dst: "R1", Src1: "p", Field: "x"},
		{Op: ir.Ret},
	}}
	_, err := RunScalar(p, DefaultScalar(), interp.NewHeap(), map[string]Word{"p": Null})
	if err == nil || !strings.Contains(err.Error(), "NULL") {
		t.Errorf("err = %v", err)
	}
}

func TestScalarCycleBudget(t *testing.T) {
	p := &ir.Program{Instrs: []*ir.Instr{
		{Op: ir.Label, Name: "L"},
		{Op: ir.Goto, Target: "L"},
	}}
	cfg := DefaultScalar()
	cfg.MaxCycles = 100
	_, err := RunScalar(p, cfg, interp.NewHeap(), nil)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v", err)
	}
}

func TestScalarNewAndStore(t *testing.T) {
	p := compile(t, listDecl+`
int f() {
    List *p;
    p = new List;
    p->x = 42;
    return p->x;
}`, "f")
	h := interp.NewHeap()
	res, err := RunScalar(p, DefaultScalar(), h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Int != 42 || h.Size() != 1 {
		t.Errorf("ret=%d allocs=%d", res.Ret.Int, h.Size())
	}
}

func TestVLIWReadBeforeWrite(t *testing.T) {
	// A swap in one bundle must work: both moves read old values.
	prog := NewVLIWProgram(4)
	prog.MustAdd(Bundle{
		{Op: ir.Move, Src1: "a", Dst: "b"},
		{Op: ir.Move, Src1: "b", Dst: "a"},
	})
	prog.MustAdd(Bundle{{Op: ir.Ret, Src1: "a"}})
	res, err := RunVLIW(prog, DefaultVLIW(), interp.NewHeap(), map[string]Word{
		"a": IntWord(1), "b": IntWord(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Int != 2 || res.Regs["b"].Int != 1 {
		t.Errorf("swap failed: a=%v b=%v", res.Regs["a"], res.Regs["b"])
	}
	if res.Cycles != 2 {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestVLIWSpeculativeLoad(t *testing.T) {
	prog := NewVLIWProgram(2)
	prog.MustAdd(Bundle{{Op: ir.Load, Dst: "R1", Src1: "p", Field: "next"}})
	prog.MustAdd(Bundle{{Op: ir.Ret, Src1: "R1"}})
	res, err := RunVLIW(prog, DefaultVLIW(), interp.NewHeap(), map[string]Word{"p": Null})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ret.IsRef || res.Ret.Ref != nil {
		t.Errorf("speculative NULL load should yield NULL, got %v", res.Ret)
	}
	cfg := DefaultVLIW()
	cfg.SpeculativeLoads = false
	if _, err := RunVLIW(prog, cfg, interp.NewHeap(), map[string]Word{"p": Null}); err == nil {
		t.Error("non-speculative machine must fault")
	}
}

func TestVLIWStoreNeverSpeculative(t *testing.T) {
	prog := NewVLIWProgram(2)
	prog.MustAdd(Bundle{{Op: ir.Store, Src1: "p", Src2: "R1", Field: "x"}})
	_, err := RunVLIW(prog, DefaultVLIW(), interp.NewHeap(), map[string]Word{"p": Null})
	if err == nil {
		t.Error("store through NULL must fault even with speculation on")
	}
}

func TestVLIWBranchAndLabels(t *testing.T) {
	prog := NewVLIWProgram(2)
	prog.Mark("top")
	prog.MustAdd(Bundle{
		{Op: ir.Sub, Src1: "n", Src2: "one", Dst: "n"},
		{Op: ir.Br, Rel: ir.GT, Src1: "n", Src2: "one", Target: "top"},
	})
	prog.MustAdd(Bundle{{Op: ir.Ret, Src1: "n"}})
	res, err := RunVLIW(prog, DefaultVLIW(), interp.NewHeap(), map[string]Word{
		"n": IntWord(10), "one": IntWord(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Branch reads the OLD n each cycle: loop exits when old n-1... trace:
	// it decrements until the pre-cycle n is <= 1.
	if res.Ret.Int != 0 {
		t.Errorf("n = %d", res.Ret.Int)
	}
	if res.Cycles != 10+1 {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestVLIWWidthEnforced(t *testing.T) {
	prog := NewVLIWProgram(1)
	err := prog.Add(Bundle{{Op: ir.Nop}, {Op: ir.Nop}})
	if err == nil {
		t.Error("over-wide bundle accepted")
	}
}

func TestSequentializeMatchesScalarResults(t *testing.T) {
	src := listDecl + `
int f(List *hd) {
    List *p;
    int total;
    total = 0;
    p = hd;
    while (p != NULL) {
        total = total + p->x;
        p = p->next;
    }
    return total;
}`
	p := compile(t, src, "f")
	h1 := interp.NewHeap()
	hd1 := buildList(h1, 7)
	rs, err := RunScalar(p, DefaultScalar(), h1, map[string]Word{"hd": RefWord(hd1)})
	if err != nil {
		t.Fatal(err)
	}
	h2 := interp.NewHeap()
	hd2 := buildList(h2, 7)
	rv, err := RunVLIW(Sequentialize(p), DefaultVLIW(), h2, map[string]Word{"hd": RefWord(hd2)})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ret.Int != rv.Ret.Int {
		t.Errorf("scalar %d != vliw %d", rs.Ret.Int, rv.Ret.Int)
	}
}

func TestWordHelpers(t *testing.T) {
	if !Null.IsZero() || !IntWord(0).IsZero() || IntWord(3).IsZero() {
		t.Error("IsZero wrong")
	}
	if !IntWord(3).Equal(IntWord(3)) || IntWord(3).Equal(IntWord(4)) {
		t.Error("Equal wrong")
	}
	h := interp.NewHeap()
	n := h.New("List")
	if !RefWord(n).Equal(RefWord(n)) || RefWord(n).Equal(Null) {
		t.Error("ref Equal wrong")
	}
	if Null.String() != "NULL" || IntWord(7).String() != "7" {
		t.Error("String wrong")
	}
}

func TestVLIWProgramString(t *testing.T) {
	prog := NewVLIWProgram(2)
	prog.Mark("kernel")
	prog.MustAdd(Bundle{{Op: ir.Nop}, {Op: ir.Move, Src1: "a", Dst: "b"}})
	s := prog.String()
	if !strings.Contains(s, "kernel:") || !strings.Contains(s, "nop | move a, b") {
		t.Errorf("String:\n%s", s)
	}
}
