package machine

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const benchSrc = `
type List [X] {
    int x;
    List *next is uniquely forward along X;
};
int sum(List *hd) {
    List *p;
    int total;
    total = 0;
    p = hd;
    while (p != NULL) {
        total = total + p->x;
        p = p->next;
    }
    return total;
}
`

func benchProgram(b *testing.B) *ir.Program {
	b.Helper()
	info := types.MustCheck(parser.MustParse(benchSrc))
	return ir.Build(info.Func("sum"), info.Env)
}

func benchList(h *interp.Heap, n int) *interp.Node {
	var head, prev *interp.Node
	for i := 0; i < n; i++ {
		node := h.New("List")
		node.Ints["x"] = int64(i)
		if prev == nil {
			head = node
		} else {
			prev.Ptrs["next"] = node
		}
		prev = node
	}
	return head
}

// BenchmarkScalarSimulator measures simulated instructions per wall second.
func BenchmarkScalarSimulator(b *testing.B) {
	p := benchProgram(b)
	h := interp.NewHeap()
	hd := benchList(h, 1000)
	args := map[string]Word{"hd": RefWord(hd)}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		res, err := RunScalar(p, DefaultScalar(), h, args)
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instrs
	}
	b.ReportMetric(float64(instrs), "sim-instrs/op")
}

// BenchmarkVLIWSimulator measures bundle execution throughput.
func BenchmarkVLIWSimulator(b *testing.B) {
	p := Sequentialize(benchProgram(b))
	h := interp.NewHeap()
	hd := benchList(h, 1000)
	args := map[string]Word{"hd": RefWord(hd)}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := RunVLIW(p, DefaultVLIW(), h, args)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles/op")
}
