// Package machine provides the execution substrates for the paper's
// performance claims: a scalar in-order machine (MIPS-like, with a load-use
// delay and a taken-branch penalty) for the [HG92] unrolling experiment, and
// a W-wide VLIW for the Section 5.2 software-pipelining experiment. Both
// execute the pseudo-assembly IR over concrete heap nodes, so speedups are
// measured, not asserted.
package machine

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
)

// Word is a register value: an integer or a node reference.
type Word struct {
	IsRef bool
	Int   int64
	Ref   *interp.Node
}

// IntWord and RefWord construct register values.
func IntWord(v int64) Word        { return Word{Int: v} }
func RefWord(n *interp.Node) Word { return Word{IsRef: true, Ref: n} }

// Null is the NULL reference.
var Null = Word{IsRef: true}

// IsZero reports whether the word is NULL or integer zero.
func (w Word) IsZero() bool {
	if w.IsRef {
		return w.Ref == nil
	}
	return w.Int == 0
}

// Equal compares two words.
func (w Word) Equal(o Word) bool {
	if w.IsRef || o.IsRef {
		return w.Ref == o.Ref
	}
	return w.Int == o.Int
}

// String renders the word.
func (w Word) String() string {
	if w.IsRef {
		return w.Ref.String()
	}
	return fmt.Sprintf("%d", w.Int)
}

// Fault is a machine execution error.
type Fault struct {
	PC  int
	Msg string
}

func (f *Fault) Error() string { return fmt.Sprintf("pc %d: %s", f.PC, f.Msg) }

// Result reports an execution.
type Result struct {
	Cycles int64
	Instrs int64
	Stalls int64
	Regs   map[string]Word
	Ret    Word
}

// ScalarConfig parameterizes the scalar machine.
type ScalarConfig struct {
	LoadLatency   int // cycles until a loaded value is usable (>= 1)
	BranchPenalty int // extra cycles for a taken branch
	MaxCycles     int64
}

// DefaultScalar models a simple pipelined RISC: loads usable after one
// delay cycle, taken branches cost one bubble.
func DefaultScalar() ScalarConfig {
	return ScalarConfig{LoadLatency: 2, BranchPenalty: 1, MaxCycles: 1 << 26}
}

// evalRel applies a branch/set relation.
func evalRel(r ir.Rel, a, b Word) bool {
	if a.IsRef || b.IsRef {
		switch r {
		case ir.EQ:
			return a.Ref == b.Ref
		case ir.NE:
			return a.Ref != b.Ref
		}
		return false
	}
	switch r {
	case ir.EQ:
		return a.Int == b.Int
	case ir.NE:
		return a.Int != b.Int
	case ir.LT:
		return a.Int < b.Int
	case ir.LE:
		return a.Int <= b.Int
	case ir.GT:
		return a.Int > b.Int
	case ir.GE:
		return a.Int >= b.Int
	}
	return false
}

// scalar is the in-order machine state.
type scalar struct {
	cfg   ScalarConfig
	heap  *interp.Heap
	regs  map[string]Word
	ready map[string]int64 // cycle at which a register's value is usable
	now   int64
	res   Result
}

// RunScalar executes the program on the scalar machine. args seeds the
// parameter registers; heap provides the nodes the references point into.
func RunScalar(p *ir.Program, cfg ScalarConfig, heap *interp.Heap, args map[string]Word) (*Result, error) {
	m := &scalar{
		cfg:   cfg,
		heap:  heap,
		regs:  map[string]Word{},
		ready: map[string]int64{},
	}
	for k, v := range args {
		m.regs[k] = v
	}
	labels := map[string]int{}
	for i, in := range p.Instrs {
		if in.Op == ir.Label {
			labels[in.Name] = i
		}
	}

	pc := 0
	for pc < len(p.Instrs) {
		if m.cfg.MaxCycles > 0 && m.now > m.cfg.MaxCycles {
			return nil, &Fault{PC: pc, Msg: "cycle budget exhausted"}
		}
		in := p.Instrs[pc]
		if in.Op == ir.Label || in.Op == ir.Nop {
			pc++
			continue
		}
		// Stall until every used register is ready.
		issue := m.now
		for _, u := range in.Uses() {
			if r := m.ready[u]; r > issue {
				issue = r
			}
		}
		m.res.Stalls += issue - m.now
		m.now = issue + 1
		m.res.Instrs++

		jump, done, err := m.exec(in, pc, issue)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if jump != "" {
			t, ok := labels[jump]
			if !ok {
				return nil, &Fault{PC: pc, Msg: "undefined label " + jump}
			}
			m.now += int64(m.cfg.BranchPenalty)
			pc = t
			continue
		}
		pc++
	}
	m.res.Cycles = m.now
	m.res.Regs = m.regs
	return &m.res, nil
}

func (m *scalar) get(r string) Word {
	if r == "" {
		return Null
	}
	return m.regs[r]
}

// exec performs one instruction; returns a jump label, a done flag, or an
// error.
func (m *scalar) exec(in *ir.Instr, pc int, issue int64) (string, bool, error) {
	switch in.Op {
	case ir.Goto:
		return in.Target, false, nil
	case ir.Br:
		if evalRel(in.Rel, m.get(in.Src1), m.get(in.Src2)) {
			return in.Target, false, nil
		}
		return "", false, nil
	case ir.Load:
		base := m.get(in.Src1)
		if !base.IsRef || base.Ref == nil {
			return "", false, &Fault{PC: pc, Msg: "load through NULL: " + in.String()}
		}
		m.regs[in.Dst] = readField(base.Ref, in.Field)
		m.ready[in.Dst] = issue + int64(m.cfg.LoadLatency)
		return "", false, nil
	case ir.Store:
		base := m.get(in.Src1)
		if !base.IsRef || base.Ref == nil {
			return "", false, &Fault{PC: pc, Msg: "store through NULL: " + in.String()}
		}
		writeField(base.Ref, in.Field, m.get(in.Src2))
		return "", false, nil
	case ir.LoadImm:
		m.regs[in.Dst] = IntWord(in.Imm)
	case ir.Move:
		m.regs[in.Dst] = m.get(in.Src1)
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem:
		a, b := m.get(in.Src1), m.get(in.Src2)
		v, err := arith(in.Op, a, b, pc)
		if err != nil {
			return "", false, err
		}
		m.regs[in.Dst] = v
	case ir.Neg:
		m.regs[in.Dst] = IntWord(-m.get(in.Src1).Int)
	case ir.Set:
		if evalRel(in.Rel, m.get(in.Src1), m.get(in.Src2)) {
			m.regs[in.Dst] = IntWord(1)
		} else {
			m.regs[in.Dst] = IntWord(0)
		}
	case ir.New:
		m.regs[in.Dst] = RefWord(m.heap.New(in.TypeName))
	case ir.FreeOp:
		v := m.get(in.Src1)
		if v.Ref != nil {
			m.heap.Free(v.Ref)
		}
	case ir.Call:
		return "", false, &Fault{PC: pc, Msg: "call not supported by the machine model"}
	case ir.Ret:
		m.res.Ret = m.get(in.Src1)
		return "", true, nil
	}
	return "", false, nil
}

func arith(op ir.Op, a, b Word, pc int) (Word, error) {
	switch op {
	case ir.Add:
		return IntWord(a.Int + b.Int), nil
	case ir.Sub:
		return IntWord(a.Int - b.Int), nil
	case ir.Mul:
		return IntWord(a.Int * b.Int), nil
	case ir.Div:
		if b.Int == 0 {
			return Word{}, &Fault{PC: pc, Msg: "division by zero"}
		}
		return IntWord(a.Int / b.Int), nil
	case ir.Rem:
		if b.Int == 0 {
			return Word{}, &Fault{PC: pc, Msg: "modulo by zero"}
		}
		return IntWord(a.Int % b.Int), nil
	}
	return Word{}, &Fault{PC: pc, Msg: "bad arith"}
}

// readField reads a node field as a Word: pointer fields give references,
// int fields integers, unwritten fields NULL/0.
func readField(n *interp.Node, field string) Word {
	if v, ok := n.Ints[field]; ok {
		return IntWord(v)
	}
	if p, ok := n.Ptrs[field]; ok {
		return RefWord(p)
	}
	// Unwritten: the consumer decides by usage; a NULL reference behaves as
	// zero in arithmetic contexts too.
	return Null
}

func writeField(n *interp.Node, field string, v Word) {
	if v.IsRef {
		n.Ptrs[field] = v.Ref
	} else {
		n.Ints[field] = v.Int
	}
}
