// Package obs is the observability spine shared by the adds facade, the
// analysis engine, the service layer, and the CLIs: a context-carried
// tracer (spans with parent links and W3C traceparent interop), a bounded
// ring of recently finished traces, and log/slog construction helpers so
// every tool spells -log-level and -log-format the same way.
//
// Tracing is strictly opt-in and free when off: Start on a context that
// carries no tracer returns a nil *Span, and every *Span method is a no-op
// on a nil receiver, so instrumented code pays one context lookup and one
// nil check per phase — nothing else.
package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are kept as any and
// rendered with %v; spans carry engine stats (iteration counts, interned
// paths), not user payloads.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed phase of a trace. Spans are created by Tracer.Start
// (usually via the package-level Start) and finished with End; attributes
// may be attached any time in between. All methods are nil-safe so callers
// never branch on whether tracing is enabled.
type Span struct {
	tracer *Tracer
	trace  *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
}

// SetAttr attaches one attribute to the span. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End finishes the span and records it on its trace. Ending the trace's
// root span flushes the trace to the tracer's ring and OnEnd hook; spans
// that end later (detached flights finishing after their request) still
// land on the same trace record. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	attrs := s.attrs
	s.attrs = nil
	s.mu.Unlock()
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    end.Sub(s.start),
		Attrs:  attrs,
	}
	s.trace.add(rec)
	if s.tracer != nil {
		if h := s.tracer.OnEnd; h != nil {
			h(rec)
		}
		if s.parent == (SpanID{}) {
			s.tracer.finish(s.trace)
		}
	}
}

// TraceID reports the span's trace identity (for response headers and
// request-scoped log fields). Nil receivers report the zero id.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace.ID
}

// ID reports the span id (the parent id for traceparent propagation
// downstream). Nil receivers report the zero id.
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SpanRecord is one finished span as stored on a trace. Wire renderings
// (the /debug/trace endpoint, addsc -trace) go through the explicit DTOs
// in render.go rather than marshaling this struct directly.
type SpanRecord struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Trace collects the finished spans of one trace. The record stays live
// while detached work ends spans after the root finished, so reads go
// through Snapshot.
type Trace struct {
	ID TraceID

	mu    sync.Mutex
	spans []SpanRecord
}

func (t *Trace) add(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Snapshot returns the finished spans ordered by start time (ties broken
// by name so renderings are deterministic).
func (t *Trace) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Tracer mints spans and keeps the ring of recently finished traces. The
// zero value is usable; construct with NewTracer to size the ring.
type Tracer struct {
	// OnEnd, when set, observes every finished span (the service feeds
	// phase-duration histograms from it). It runs on the goroutine that
	// called End; keep it cheap and concurrency-safe.
	OnEnd func(SpanRecord)

	ring *Ring
}

// NewTracer returns a tracer whose ring keeps the last n finished traces
// (n <= 0 selects DefaultRingSize).
func NewTracer(n int) *Tracer {
	return &Tracer{ring: NewRing(n)}
}

// Ring exposes the finished-trace ring (nil until a trace finished when
// the tracer was not built by NewTracer).
func (t *Tracer) Ring() *Ring { return t.ring }

func (t *Tracer) finish(tr *Trace) {
	if t.ring != nil {
		t.ring.Put(tr)
	}
}

// StartRoot opens a root span under the given trace id, minting a fresh
// trace id when the argument is zero (no incoming traceparent). It is the
// entry point for request boundaries; in-process phases use Start.
func (t *Tracer) StartRoot(ctx context.Context, name string, id TraceID) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if id == (TraceID{}) {
		id = NewTraceID()
	}
	sp := &Span{
		tracer: t,
		trace:  &Trace{ID: id},
		id:     NewSpanID(),
		name:   name,
		start:  time.Now(),
	}
	ctx = context.WithValue(ctx, tracerKey{}, t)
	ctx = context.WithValue(ctx, spanKey{}, sp)
	return ctx, sp
}

type (
	tracerKey struct{}
	spanKey   struct{}
)

// With attaches a tracer to the context so Start opens real spans below.
func With(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's tracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a child span of the context's current span (a root span when
// the context carries a tracer but no span yet). When the context carries
// no tracer it returns (ctx, nil) without allocating — the nil-tracer fast
// path every instrumented phase relies on.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx)
	if parent == nil {
		return t.StartRoot(ctx, name, TraceID{})
	}
	sp := &Span{
		tracer: t,
		trace:  parent.trace,
		id:     NewSpanID(),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Adopt grafts the trace context of from onto ctx: the returned context
// carries from's tracer and current span but ctx's deadline and values
// otherwise. It is how a detached computation (a cache flight outliving
// any one request) keeps its spans on the trace of the request that
// started it.
func Adopt(ctx, from context.Context) context.Context {
	t := FromContext(from)
	if t == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, tracerKey{}, t)
	if sp := SpanFromContext(from); sp != nil {
		ctx = context.WithValue(ctx, spanKey{}, sp)
	}
	return ctx
}
