package obs

import "sync"

// DefaultRingSize is how many finished traces the ring keeps when the
// caller does not size it.
const DefaultRingSize = 128

// Ring is a bounded buffer of recently finished traces, indexed by trace
// id so /debug/trace/{id} can explain a slow request after the fact. The
// oldest trace is evicted when a new one arrives at capacity.
type Ring struct {
	mu    sync.Mutex
	cap   int
	order []TraceID
	byID  map[TraceID]*Trace
}

// NewRing returns a ring keeping the last n traces (n <= 0 selects
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{cap: n, byID: make(map[TraceID]*Trace, n)}
}

// Put records a finished trace, evicting the oldest at capacity. A trace
// finishing twice (or two roots sharing one trace id) replaces in place.
func (r *Ring) Put(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[t.ID]; ok {
		r.byID[t.ID] = t
		return
	}
	if len(r.order) >= r.cap {
		oldest := r.order[0]
		r.order = r.order[1:]
		delete(r.byID, oldest)
	}
	r.order = append(r.order, t.ID)
	r.byID[t.ID] = t
}

// Get returns the trace by id, or nil when it has been evicted or never
// finished here.
func (r *Ring) Get(id TraceID) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Len reports how many traces the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}
