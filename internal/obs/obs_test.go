package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerFastPath(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "phase")
	if sp != nil {
		t.Fatalf("Start without a tracer: got span %v, want nil", sp)
	}
	if ctx2 != ctx {
		t.Fatalf("Start without a tracer should return the context unchanged")
	}
	// Every span method must be a no-op on nil.
	sp.SetAttr("k", 1)
	sp.End()
	if got := sp.TraceID(); got != (TraceID{}) {
		t.Fatalf("nil span TraceID = %v, want zero", got)
	}
	if got := sp.ID(); got != (SpanID{}) {
		t.Fatalf("nil span ID = %v, want zero", got)
	}
}

func TestSpanTreeParentLinks(t *testing.T) {
	tr := NewTracer(4)
	ctx := With(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.SetAttr("iterations", 42)
	grand.End()
	child.End()
	// A sibling opened from the root context, after the first child ended.
	_, sib := Start(ctx, "sibling")
	sib.End()
	root.End()

	trace := tr.Ring().Get(root.TraceID())
	if trace == nil {
		t.Fatalf("finished trace %s not in ring", root.TraceID())
	}
	spans := trace.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %s, want root %s", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %s, want child %s", byName["grandchild"].Parent, byName["child"].ID)
	}
	if byName["sibling"].Parent != byName["root"].ID {
		t.Errorf("sibling parent = %s, want root %s", byName["sibling"].Parent, byName["root"].ID)
	}

	js := ToJSON(trace)
	if js.TraceID != root.TraceID().String() {
		t.Errorf("ToJSON trace id = %s, want %s", js.TraceID, root.TraceID())
	}
	if len(js.Spans) != 1 || js.Spans[0].Name != "root" {
		t.Fatalf("want one root span, got %+v", js.Spans)
	}
	if len(js.Spans[0].Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(js.Spans[0].Children))
	}
	var b strings.Builder
	WriteTree(&b, trace)
	out := b.String()
	for _, want := range []string{"root", "  child", "    grandchild", "iterations=42", "  sibling"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree rendering missing %q:\n%s", want, out)
		}
	}
}

func TestLateSpanAfterRootEnds(t *testing.T) {
	// A detached flight may end its spans after the request's root span
	// already flushed the trace to the ring; the late span must still land
	// on the same record.
	tr := NewTracer(4)
	ctx := With(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, late := Start(ctx, "flight")
	root.End()
	late.End()
	trace := tr.Ring().Get(root.TraceID())
	if got := len(trace.Snapshot()); got != 2 {
		t.Fatalf("got %d spans after late End, want 2", got)
	}
}

func TestStartRootAdoptsIncomingTraceID(t *testing.T) {
	tr := NewTracer(4)
	want, err := ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	if err != nil {
		t.Fatal(err)
	}
	_, sp := tr.StartRoot(context.Background(), "http", want)
	sp.End()
	if sp.TraceID() != want {
		t.Fatalf("root trace id = %s, want %s", sp.TraceID(), want)
	}
	if tr.Ring().Get(want) == nil {
		t.Fatalf("trace %s not in ring", want)
	}
}

func TestAdoptCarriesTraceAcrossContexts(t *testing.T) {
	tr := NewTracer(4)
	reqCtx := With(context.Background(), tr)
	reqCtx, root := Start(reqCtx, "request")

	flightCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	flightCtx = Adopt(flightCtx, reqCtx)
	_, sp := Start(flightCtx, "compute")
	sp.End()
	root.End()

	if sp.TraceID() != root.TraceID() {
		t.Fatalf("adopted span trace = %s, want %s", sp.TraceID(), root.TraceID())
	}
	spans := tr.Ring().Get(root.TraceID()).Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(2)
	ids := make([]TraceID, 3)
	for i := range ids {
		ids[i] = NewTraceID()
		r.Put(&Trace{ID: ids[i]})
	}
	if r.Len() != 2 {
		t.Fatalf("ring len = %d, want 2", r.Len())
	}
	if r.Get(ids[0]) != nil {
		t.Errorf("oldest trace should be evicted")
	}
	if r.Get(ids[1]) == nil || r.Get(ids[2]) == nil {
		t.Errorf("newest traces should survive")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(4)
	ctx := With(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Start(ctx, "worker")
			sp.SetAttr("n", 1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Ring().Get(root.TraceID()).Snapshot()); got != 17 {
		t.Fatalf("got %d spans, want 17", got)
	}
}

func TestPhaseTotals(t *testing.T) {
	trace := &Trace{ID: NewTraceID()}
	trace.add(SpanRecord{ID: NewSpanID(), Name: "fixpoint", Dur: 3 * time.Millisecond})
	trace.add(SpanRecord{ID: NewSpanID(), Name: "fixpoint", Dur: 2 * time.Millisecond})
	trace.add(SpanRecord{ID: NewSpanID(), Name: "parse", Dur: time.Millisecond})
	totals := PhaseTotals(trace)
	if totals["fixpoint"] != 5*time.Millisecond || totals["parse"] != time.Millisecond {
		t.Fatalf("totals = %v", totals)
	}
}
