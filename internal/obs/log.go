package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the CLI -log-level spelling to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (known: debug, info, warn, error)", s)
}

// NewLogger builds the slog logger every adds tool shares: format "json"
// (one object per line, machine-first — the daemon default) or "text"
// (slog's key=value form, the CLI default), filtered at level.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (known: text, json)", format)
}

// Nop returns a logger that discards everything — the default when a
// component is constructed without one, so call sites never nil-check.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
