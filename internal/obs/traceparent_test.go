package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	h := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tp, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if tp.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id = %s", tp.TraceID)
	}
	if tp.Parent.String() != "b7ad6b7169203331" {
		t.Errorf("parent = %s", tp.Parent)
	}
	if tp.Flags != 0x01 {
		t.Errorf("flags = %02x", tp.Flags)
	}
	if got := tp.Format(); got != h {
		t.Errorf("Format = %q, want %q", got, h)
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// A future version with extra fields must still yield the level-1 parts.
	h := "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"
	tp, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if tp.TraceID == (TraceID{}) {
		t.Error("future version should parse the trace id")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",      // missing flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // version ff
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",   // zero parent
		"00-0af7651916cd43dd8448eb211c80319x-b7ad6b7169203331-01",   // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x", // v00 extra field
		"00-0af7651916cd43dd8448eb211c80319c22-b7ad6b7169203331-01", // long trace id
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) should fail", h)
		}
	}
}

func TestNewIDsUnique(t *testing.T) {
	seenT := map[TraceID]bool{}
	seenS := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid == (TraceID{}) || seenT[tid] {
			t.Fatalf("duplicate or zero trace id %s", tid)
		}
		if sid == (SpanID{}) || seenS[sid] {
			t.Fatalf("duplicate or zero span id %s", sid)
		}
		seenT[tid], seenS[sid] = true, true
	}
}

func TestLoggerConstruction(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", 1)
	if !strings.Contains(b.String(), `"msg":"hello"`) {
		t.Errorf("json log = %q", b.String())
	}
	if _, err := NewLogger(&b, "nope", "json"); err == nil {
		t.Error("bad level should fail")
	}
	if _, err := NewLogger(&b, "info", "yaml"); err == nil {
		t.Error("bad format should fail")
	}
	Nop().Error("dropped") // must not panic, must not write anywhere visible
}

func TestOutbound(t *testing.T) {
	if got := Outbound(context.Background()); got != "" {
		t.Errorf("Outbound without a span = %q, want empty", got)
	}
	tr := NewTracer(4)
	ctx, span := tr.StartRoot(context.Background(), "http test", TraceID{})
	h := Outbound(ctx)
	tp, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("Outbound produced unparseable header %q: %v", h, err)
	}
	if tp.TraceID != span.TraceID() || tp.Parent != span.ID() {
		t.Errorf("Outbound = %q, want trace %s parent %s", h, span.TraceID(), span.ID())
	}
	span.End()
}
