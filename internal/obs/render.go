package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// SpanJSON is the wire form of one span in a rendered trace: ids as hex,
// the duration in both nanoseconds (exact) and milliseconds (human), and
// attributes as an object.
type SpanJSON struct {
	ID       string         `json:"id"`
	Parent   string         `json:"parent,omitempty"`
	Name     string         `json:"name"`
	StartRFC string         `json:"start"`
	DurNanos int64          `json:"durNanos"`
	DurMS    float64        `json:"durMs"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

// TraceJSON is the wire form of GET /debug/trace/{id} and addsc
// -trace -format json: the trace id plus the span forest (roots in start
// order, children nested).
type TraceJSON struct {
	TraceID string      `json:"traceId"`
	Spans   []*SpanJSON `json:"spans"`
}

// ToJSON builds the nested wire form of a trace snapshot.
func ToJSON(t *Trace) *TraceJSON {
	if t == nil {
		return nil
	}
	out := &TraceJSON{TraceID: t.ID.String(), Spans: buildForest(t.Snapshot(), toSpanJSON)}
	return out
}

func toSpanJSON(rec SpanRecord, children []*SpanJSON) *SpanJSON {
	sp := &SpanJSON{
		ID:       rec.ID.String(),
		Name:     rec.Name,
		StartRFC: rec.Start.UTC().Format(time.RFC3339Nano),
		DurNanos: rec.Dur.Nanoseconds(),
		DurMS:    float64(rec.Dur) / float64(time.Millisecond),
		Children: children,
	}
	if rec.Parent != (SpanID{}) {
		sp.Parent = rec.Parent.String()
	}
	if len(rec.Attrs) > 0 {
		sp.Attrs = make(map[string]any, len(rec.Attrs))
		for _, a := range rec.Attrs {
			sp.Attrs[a.Key] = a.Value
		}
	}
	return sp
}

// buildForest nests spans under their parents. Orphans (parent not in the
// snapshot, e.g. evicted or still open) surface as roots, never vanish.
func buildForest[T any](spans []SpanRecord, mk func(SpanRecord, []T) T) []T {
	children := map[SpanID][]SpanRecord{}
	present := map[SpanID]bool{}
	for _, s := range spans {
		present[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range spans {
		if s.Parent != (SpanID{}) && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var build func(s SpanRecord) T
	build = func(s SpanRecord) T {
		kids := children[s.ID]
		out := make([]T, 0, len(kids))
		for _, k := range kids {
			out = append(out, build(k))
		}
		if len(out) == 0 {
			out = nil
		}
		return mk(s, out)
	}
	out := make([]T, 0, len(roots))
	for _, r := range roots {
		out = append(out, build(r))
	}
	return out
}

// WriteTree renders the trace as an indented text span tree:
//
//	analyze                         12.40ms
//	  parse                          1.02ms
//	  fixpoint                       9.31ms  iterations=42
//
// Durations are right-padded per line; attributes print key=value in
// insertion order.
func WriteTree(w io.Writer, t *Trace) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "trace %s\n", t.ID)
	var walk func(sp *spanText, depth int)
	walk = func(sp *spanText, depth int) {
		indent := strings.Repeat("  ", depth)
		line := fmt.Sprintf("%s%s", indent, sp.rec.Name)
		if pad := 32 - len(line); pad > 0 {
			line += strings.Repeat(" ", pad)
		}
		fmt.Fprintf(w, "%s %9.2fms", line, float64(sp.rec.Dur)/float64(time.Millisecond))
		for _, a := range sp.rec.Attrs {
			fmt.Fprintf(w, "  %s=%v", a.Key, a.Value)
		}
		fmt.Fprintln(w)
		for _, c := range sp.children {
			walk(c, depth+1)
		}
	}
	for _, root := range buildForest(t.Snapshot(), func(rec SpanRecord, children []*spanText) *spanText {
		return &spanText{rec: rec, children: children}
	}) {
		walk(root, 0)
	}
}

type spanText struct {
	rec      SpanRecord
	children []*spanText
}

// PhaseTotals sums span durations by name — the "do the phases explain the
// total" check addsc -trace and the tests lean on.
func PhaseTotals(t *Trace) map[string]time.Duration {
	out := map[string]time.Duration{}
	if t == nil {
		return out
	}
	for _, s := range t.Snapshot() {
		out[s.Name] += s.Dur
	}
	return out
}

// PhaseNames returns the distinct span names of a trace in first-start
// order (deterministic for snapshot tests).
func PhaseNames(t *Trace) []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range t.Snapshot() {
		if !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	return names
}
