package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"
)

// TraceID is the 16-byte W3C trace identity (rendered as 32 hex digits).
type TraceID [16]byte

// SpanID is the 8-byte W3C parent/span identity (16 hex digits).
type SpanID [8]byte

// String renders the id as lowercase hex, the traceparent spelling.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the id as lowercase hex.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// idCounter sequences NewTraceID/NewSpanID so ids stay unique even if the
// random source ever repeats; the low 8 bytes of a trace id and the low 4
// of a span id carry randomness, the top carries the sequence.
var idCounter atomic.Uint64

// NewTraceID mints a random, non-zero trace id.
func NewTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], idCounter.Add(1))
	rand.Read(id[8:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	return id
}

// NewSpanID mints a random, non-zero span id.
func NewSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint32(id[:4], uint32(idCounter.Add(1)))
	rand.Read(id[4:]) //nolint:errcheck
	return id
}

// ParseTraceID parses 32 lowercase/uppercase hex digits.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace id %q: want 32 hex digits", s)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("obs: trace id %q: %v", s, err)
	}
	copy(id[:], b)
	return id, nil
}

// Traceparent is the parsed W3C trace-context header
// (version-traceid-parentid-flags, e.g.
// 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01).
type Traceparent struct {
	TraceID TraceID
	Parent  SpanID
	Flags   byte
}

// ParseTraceparent parses the header per the W3C trace-context level 1
// grammar: a 2-digit version (ff invalid), 32-digit non-zero trace id,
// 16-digit non-zero parent id, 2-digit flags, dash-separated. Unknown
// versions are accepted if the level-1 prefix parses, as the spec asks.
func ParseTraceparent(h string) (Traceparent, error) {
	var tp Traceparent
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return tp, fmt.Errorf("obs: traceparent %q: want version-traceid-parentid-flags", h)
	}
	ver, id, par, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isHex(ver) || strings.EqualFold(ver, "ff") {
		return tp, fmt.Errorf("obs: traceparent %q: bad version %q", h, ver)
	}
	if ver == "00" && len(parts) != 4 {
		return tp, fmt.Errorf("obs: traceparent %q: version 00 takes exactly 4 fields", h)
	}
	tid, err := ParseTraceID(id)
	if err != nil {
		return tp, err
	}
	if tid == (TraceID{}) {
		return tp, fmt.Errorf("obs: traceparent %q: all-zero trace id", h)
	}
	if len(par) != 16 || !isHex(par) {
		return tp, fmt.Errorf("obs: traceparent %q: bad parent id %q", h, par)
	}
	pb, _ := hex.DecodeString(par)
	copy(tp.Parent[:], pb)
	if tp.Parent == (SpanID{}) {
		return tp, fmt.Errorf("obs: traceparent %q: all-zero parent id", h)
	}
	if len(flags) != 2 || !isHex(flags) {
		return tp, fmt.Errorf("obs: traceparent %q: bad flags %q", h, flags)
	}
	fb, _ := hex.DecodeString(flags)
	tp.TraceID, tp.Flags = tid, fb[0]
	return tp, nil
}

// Format renders the level-1 header for propagation downstream.
func (tp Traceparent) Format() string {
	return fmt.Sprintf("00-%s-%s-%02x", tp.TraceID, tp.Parent, tp.Flags)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// Outbound renders the traceparent header an outbound hop (a cluster proxy
// to a peer shard) should carry so the downstream process's spans land on
// the same distributed trace: the current span becomes the parent. Returns
// "" when the context carries no live span — callers simply omit the
// header, as with every other nil-safe obs entry point.
func Outbound(ctx context.Context) string {
	s := SpanFromContext(ctx)
	if s == nil {
		return ""
	}
	tid, sid := s.TraceID(), s.ID()
	if tid == (TraceID{}) || sid == (SpanID{}) {
		return ""
	}
	return Traceparent{TraceID: tid, Parent: sid, Flags: 0x01}.Format()
}
