package depgraph

import "encoding/json"

// edgeJSON is the wire form of one dependence edge.
type edgeJSON struct {
	From    int    `json:"from"`
	To      int    `json:"to"`
	Kind    string `json:"kind"`
	Carried bool   `json:"carried,omitempty"`
	Must    bool   `json:"must,omitempty"`
	Mem     bool   `json:"mem,omitempty"`
	Loc     string `json:"loc"`
}

// graphJSON is the wire form of a dependence graph. Body instructions keep
// their S-numbered rendering; edges appear in construction order, which is
// deterministic for a given program and oracle.
type graphJSON struct {
	Oracle string     `json:"oracle"`
	Body   []string   `json:"body"`
	Edges  []edgeJSON `json:"edges"`
}

// MarshalJSON renders the graph in the encoding shared by addsd responses
// and addsc -format json. Control edges are included (unlike String, which
// drops them as listing noise) so consumers can rebuild the full graph.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{Oracle: g.Oracle, Body: []string{}, Edges: []edgeJSON{}}
	for _, in := range g.Body {
		out.Body = append(out.Body, in.String())
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, edgeJSON{
			From: e.From, To: e.To, Kind: e.Kind.String(),
			Carried: e.Carried, Must: e.Must, Mem: e.Mem, Loc: e.Loc,
		})
	}
	return json.Marshal(out)
}
