// Package depgraph builds data-dependence graphs for loop bodies of the
// pseudo-assembly IR, using a pluggable alias oracle for memory
// disambiguation. It reproduces the paper's Figure 2: with conservative
// aliasing the shift-origin loop carries false dependences from the store
// S5 back to the loads S2 and S3; with ADDS + general path matrix analysis
// those edges disappear and the loop pipelines.
package depgraph

import (
	"fmt"
	"strings"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/norm"
	"repro/internal/shape"
	"repro/internal/source/types"
)

// Kind classifies a dependence edge.
type Kind int

// Edge kinds.
const (
	Flow    Kind = iota // write then read
	Anti                // read then write
	Output              // write then write
	Control             // branch ordering
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Control:
		return "control"
	}
	return "?"
}

// Edge is one dependence between two body instructions (indices into Body).
type Edge struct {
	From, To int
	Kind     Kind
	Carried  bool   // crosses the back edge (From at iter i, To at iter i+1)
	Must     bool   // definitely the same location/value
	Mem      bool   // memory dependence (false: register or control)
	Loc      string // register name or "base->field" description
}

// String renders the edge.
func (e *Edge) String() string {
	tag := ""
	if e.Carried {
		tag = " (carried)"
	}
	if e.Must {
		tag += " (must)"
	}
	return fmt.Sprintf("S%d -> S%d %s on %s%s", e.From, e.To, e.Kind, e.Loc, tag)
}

// Graph is the dependence graph of one loop body.
type Graph struct {
	Prog   *ir.Program
	Loop   *ir.LoopInfo
	Body   []*ir.Instr // test + body + back-edge goto
	Edges  []*Edge
	Oracle string // oracle name used
}

// Options configures dependence construction.
type Options struct {
	Oracle   alias.Oracle
	NormLoop *norm.Loop            // loop in the normalized CFG (oracle's world)
	Env      *shape.Env            // for self-advance field info (display only)
	VarTypes map[string]types.Type // IR register types; unknown bases are conservative
}

// Build constructs the dependence graph for a loop: instructions from the
// condition test through the back-edge goto, matching the paper's S1..S7
// numbering for the shift loop.
func Build(p *ir.Program, l *ir.LoopInfo, opt Options) *Graph {
	body := p.Instrs[l.TestStart : l.BodyEnd+1]
	g := &Graph{Prog: p, Loop: l, Body: body, Oracle: opt.Oracle.Name()}
	b := &builder{g: g, opt: opt}
	b.registerDeps()
	b.memoryDeps()
	b.controlDeps()
	return g
}

type builder struct {
	g   *Graph
	opt Options
}

func (b *builder) addEdge(e *Edge) { b.g.Edges = append(b.g.Edges, e) }

// registerDeps computes flow/anti/output dependences on registers, both
// within an iteration and across the back edge.
func (b *builder) registerDeps() {
	body := b.g.Body
	defsBetween := func(reg string, from, to int) bool {
		for k := from; k < to; k++ {
			if body[k].Defs() == reg {
				return true
			}
		}
		return false
	}
	for i, a := range body {
		if d := a.Defs(); d != "" {
			// Same-iteration flow: first uses after i with no kill between.
			for j := i + 1; j < len(body); j++ {
				for _, u := range body[j].Uses() {
					if u == d && !defsBetween(d, i+1, j) {
						b.addEdge(&Edge{From: i, To: j, Kind: Flow, Loc: d, Must: true})
					}
				}
				if body[j].Defs() == d && !defsBetween(d, i+1, j) {
					b.addEdge(&Edge{From: i, To: j, Kind: Output, Loc: d, Must: true})
				}
			}
			// Carried flow: def live across the back edge into earlier uses.
			if !defsBetween(d, i+1, len(body)) {
				for j := 0; j <= i; j++ {
					for _, u := range body[j].Uses() {
						if u == d && !defsBetween(d, 0, j) {
							b.addEdge(&Edge{From: i, To: j, Kind: Flow, Loc: d,
								Carried: true, Must: true})
						}
					}
				}
			}
		}
		// Anti: a use followed by a def.
		for _, u := range a.Uses() {
			for j := i + 1; j < len(body); j++ {
				if body[j].Defs() == u {
					if !defsBetween(u, i+1, j) {
						b.addEdge(&Edge{From: i, To: j, Kind: Anti, Loc: u, Must: true})
					}
					break
				}
			}
		}
	}
}

// access describes one memory access in the body.
type access struct {
	idx     int
	base    string
	field   string
	write   bool
	version int // defs of base before this instruction (within the body)
}

// memoryDeps computes load/store dependences using the alias oracle.
func (b *builder) memoryDeps() {
	body := b.g.Body
	var accs []access
	vers := map[string]int{}
	for i, in := range body {
		if in.IsMem() {
			accs = append(accs, access{
				idx: i, base: in.Src1, field: in.Field,
				write: in.Op == ir.Store, version: vers[in.Src1],
			})
		}
		if d := in.Defs(); d != "" {
			vers[d]++
		}
	}
	advances := b.selfAdvances(vers)

	for i, a := range accs {
		for _, c := range accs[i+1:] {
			if !a.write && !c.write {
				continue
			}
			if a.field != c.field {
				continue
			}
			if may, must := b.sameIter(a, c); may {
				b.addEdge(&Edge{From: a.idx, To: c.idx, Kind: depKind(a, c),
					Mem: true, Must: must, Loc: a.base + "->" + a.field})
			}
		}
		// Carried: a at iteration i against every access at iteration i+1.
		for _, c := range accs {
			if !a.write && !c.write {
				continue
			}
			if a.field != c.field {
				continue
			}
			if may, must := b.crossIter(a, c, advances); may {
				b.addEdge(&Edge{From: a.idx, To: c.idx, Kind: depKind(a, c),
					Carried: true, Mem: true, Must: must,
					Loc: a.base + "->" + a.field})
			}
		}
	}
}

func depKind(a, c access) Kind {
	switch {
	case a.write && c.write:
		return Output
	case a.write:
		return Flow
	default:
		return Anti
	}
}

// selfAdvance describes how a base register changes per iteration.
type selfAdvance struct {
	count  int  // number of defs in the body
	simple bool // every def is "load v->f, v" over one field
	field  string
}

func (b *builder) selfAdvances(vers map[string]int) map[string]selfAdvance {
	out := map[string]selfAdvance{}
	for v, count := range vers {
		sa := selfAdvance{count: count, simple: true}
		for _, in := range b.g.Body {
			if in.Defs() != v {
				continue
			}
			if in.Op == ir.Load && in.Src1 == v && (sa.field == "" || sa.field == in.Field) {
				sa.field = in.Field
				continue
			}
			sa.simple = false
		}
		out[v] = sa
	}
	return out
}

// known reports whether the base register is a pointer variable the oracle
// can reason about (IR temporaries are not).
func (b *builder) known(base string) bool {
	if b.opt.VarTypes == nil {
		return false
	}
	t, ok := b.opt.VarTypes[base]
	return ok && t.Kind == types.KindPointer && !strings.HasPrefix(base, "R")
}

// queryPoint returns the CFG node for oracle MayAlias queries: the loop head
// (whose fixed-point matrix covers every iteration).
func (b *builder) queryPoint() *norm.Node {
	if b.opt.NormLoop != nil && len(b.opt.NormLoop.Branch.Succs) > 0 {
		return b.opt.NormLoop.Branch.Succs[0]
	}
	return nil
}

// sameIter decides whether two accesses in one iteration may (and must)
// touch the same location.
func (b *builder) sameIter(a, c access) (may, must bool) {
	if a.base == c.base {
		if a.version == c.version {
			return true, true
		}
		// The base was redefined between the accesses: same node only if
		// the advance can revisit (oracle's loop-carried self query).
		if b.known(a.base) && b.opt.NormLoop != nil {
			return b.opt.Oracle.LoopCarried(b.opt.NormLoop, a.base, a.base), false
		}
		return true, false
	}
	if !b.known(a.base) || !b.known(c.base) {
		return true, false // unknown temporaries: conservative
	}
	n := b.queryPoint()
	if n == nil {
		return true, false
	}
	if !b.opt.Oracle.Valid(n) {
		return true, false
	}
	if b.opt.Oracle.MustAlias(n, a.base, c.base) && a.version == c.version {
		return true, true
	}
	return b.opt.Oracle.MayAlias(n, a.base, c.base), false
}

// crossIter decides whether access a at iteration i and access c at
// iteration i+1 may (and must) touch the same location.
func (b *builder) crossIter(a, c access, advances map[string]selfAdvance) (may, must bool) {
	if a.base == c.base {
		sa := advances[a.base]
		if sa.simple && a.version == sa.count+c.version {
			// a's value this iteration IS c's value next iteration
			// (e.g. the post-advance p equals next iteration's p).
			return true, true
		}
		if b.known(a.base) && b.opt.NormLoop != nil {
			if sa.simple && !b.opt.Oracle.LoopCarried(b.opt.NormLoop, a.base, a.base) {
				return false, false
			}
			return b.opt.Oracle.LoopCarried(b.opt.NormLoop, a.base, a.base), false
		}
		return true, false
	}
	if !b.known(a.base) || !b.known(c.base) || b.opt.NormLoop == nil {
		return true, false
	}
	n := b.queryPoint()
	if n != nil && !b.opt.Oracle.Valid(n) {
		return true, false
	}
	if b.opt.Oracle.LoopCarried(b.opt.NormLoop, a.base, c.base) {
		return true, false
	}
	// Also admit aliasing visible at the head across iterations.
	if n != nil && b.opt.Oracle.MayAlias(n, a.base, c.base) {
		return true, false
	}
	return false, false
}

// controlDeps orders every instruction after the loop's exit test: nothing
// moves above the branch without an explicit speculation decision by a
// transformation.
func (b *builder) controlDeps() {
	for i, in := range b.g.Body {
		if in.Op != ir.Br {
			continue
		}
		for j := i + 1; j < len(b.g.Body); j++ {
			b.addEdge(&Edge{From: i, To: j, Kind: Control, Loc: "branch", Must: true})
		}
	}
}

// ---------------------------------------------------------------------------
// Queries and rendering

// CarriedMemEdges returns the loop-carried memory dependences — the edges
// whose absence enables software pipelining.
func (g *Graph) CarriedMemEdges() []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.Carried && e.Mem {
			out = append(out, e)
		}
	}
	return out
}

// HasEdge reports whether a dependence of the kind exists between body
// indices.
func (g *Graph) HasEdge(from, to int, kind Kind, carried bool) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to && e.Kind == kind && e.Carried == carried {
			return true
		}
	}
	return false
}

// String renders the graph as a list.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dependences (%s):\n", g.Oracle)
	for i, in := range g.Body {
		fmt.Fprintf(&b, "  S%d: %s\n", i, in)
	}
	for _, e := range g.Edges {
		if e.Kind == Control {
			continue // noise in listings; kept in the graph for scheduling
		}
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// DOT renders the graph in Graphviz format (control edges dashed).
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph deps {\n")
	for i, in := range g.Body {
		fmt.Fprintf(&b, "  S%d [label=%q];\n", i, fmt.Sprintf("S%d: %s", i, in))
	}
	for _, e := range g.Edges {
		style := "solid"
		if e.Kind == Control {
			style = "dotted"
		}
		color := "black"
		if e.Carried {
			color = "red"
		}
		fmt.Fprintf(&b, "  S%d -> S%d [label=%q, style=%s, color=%s];\n",
			e.From, e.To, e.Kind.String(), style, color)
	}
	b.WriteString("}\n")
	return b.String()
}
