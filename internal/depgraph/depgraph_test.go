package depgraph

import (
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/norm"
	"repro/internal/source/parser"
	"repro/internal/source/types"
)

const twoWayLL = `
type TwoWayLL [X] {
    int x;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

const shiftSrc = twoWayLL + `
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->x = p->x - hd->x;
        p = p->next;
    }
}
`

// setup builds IR + norm CFG for a function and returns what Build needs.
func setup(t *testing.T, src, fn string) (*ir.Program, *ir.LoopInfo, *norm.Graph, *types.Info) {
	t.Helper()
	info := types.MustCheck(parser.MustParse(src))
	fi := info.Func(fn)
	if fi == nil {
		t.Fatalf("func %s missing", fn)
	}
	prog := ir.Build(fi, info.Env)
	g := norm.Build(fi, info.Env)
	if len(prog.Loops) == 0 || len(g.Loops) == 0 {
		t.Fatal("no loops")
	}
	return prog, prog.Loops[0], g, info
}

func buildGraph(t *testing.T, src, fn string, mk func(*norm.Graph, *types.Info) alias.Oracle) *Graph {
	t.Helper()
	prog, loop, g, info := setup(t, src, fn)
	o := mk(g, info)
	return Build(prog, loop, Options{
		Oracle:   o,
		NormLoop: g.Loops[loop.SrcID],
		Env:      info.Env,
		VarTypes: info.Func(fn).Vars,
	})
}

func conservative(g *norm.Graph, _ *types.Info) alias.Oracle { return alias.NewConservative(g) }
func gpm(g *norm.Graph, info *types.Info) alias.Oracle       { return alias.NewGPM(g, info.Env) }

// Body indices for the shift loop (matching the paper's numbering shifted
// to 0-based): 0 br, 1 load p->x, 2 load hd->x, 3 sub, 4 store p->x,
// 5 load p->next,p, 6 goto.
const (
	sBr = iota
	sLoadPX
	sLoadHdX
	sSub
	sStorePX
	sAdvance
	sGoto
)

// TestFigure2Conservative reproduces the false loop-carried dependences of
// Figure 2: S5 -> S2 and S5 -> S3 (store back to both loads).
func TestFigure2Conservative(t *testing.T) {
	g := buildGraph(t, shiftSrc, "shift", conservative)
	if !g.HasEdge(sStorePX, sLoadPX, Flow, true) {
		t.Errorf("missing carried S5->S2 under conservative aliasing:\n%s", g)
	}
	if !g.HasEdge(sStorePX, sLoadHdX, Flow, true) {
		t.Errorf("missing carried S5->S3 under conservative aliasing:\n%s", g)
	}
}

// TestFigure2ADDS shows the paper's headline: with ADDS + GPM the false
// carried memory dependences disappear.
func TestFigure2ADDS(t *testing.T) {
	g := buildGraph(t, shiftSrc, "shift", gpm)
	if len(g.CarriedMemEdges()) != 0 {
		t.Errorf("ADDS+GPM should remove all carried memory deps, got:\n%s", g)
	}
}

// TestRealRegisterDeps checks the true dependences survive: S2->S4->S5
// register flow and the carried S6->S1 on p.
func TestRealRegisterDeps(t *testing.T) {
	g := buildGraph(t, shiftSrc, "shift", gpm)
	if !g.HasEdge(sLoadPX, sSub, Flow, false) {
		t.Error("missing flow S2->S4 (R1)")
	}
	if !g.HasEdge(sLoadHdX, sSub, Flow, false) {
		t.Error("missing flow S3->S4 (R2)")
	}
	if !g.HasEdge(sSub, sStorePX, Flow, false) {
		t.Error("missing flow S4->S5 (R3)")
	}
	if !g.HasEdge(sAdvance, sBr, Flow, true) {
		t.Error("missing carried flow S6->S1 on p (the loop's real recurrence)")
	}
}

// TestSameIterationAntiDep: the load of p->x precedes the store to p->x in
// the same iteration — an anti dependence that must be present for any
// oracle (it is a must dependence: same node).
func TestSameIterationAntiDep(t *testing.T) {
	for _, mk := range []func(*norm.Graph, *types.Info) alias.Oracle{conservative, gpm} {
		g := buildGraph(t, shiftSrc, "shift", mk)
		if !g.HasEdge(sLoadPX, sStorePX, Anti, false) {
			t.Errorf("%s: missing same-iteration anti dep S2->S5", g.Oracle)
		}
	}
}

// TestPostAdvanceCarriedMust: an access after the pointer advance at
// iteration i touches the same node as a pre-advance access at i+1 — a real
// carried dependence the dep builder must keep even under ADDS.
func TestPostAdvanceCarriedMust(t *testing.T) {
	src := twoWayLL + `
void f(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p = p->next;
        p->x = 1;
    }
}
`
	g := buildGraph(t, src, "f", gpm)
	// store p->x (version 1) at iter i vs store p->x (version 1) at i+1:
	// version 1 vs advances(1)+1 = 2 — not equal, and GPM proves no revisit,
	// so no carried dep between the stores themselves. But the store at
	// version 1 (iter i) IS the node of version... check the self-carried
	// output dep is absent under GPM:
	foundMust := false
	for _, e := range g.CarriedMemEdges() {
		if e.Must {
			foundMust = true
		}
	}
	_ = foundMust // no must carried dep expected in this particular loop
	// Sanity: conservative still reports carried deps.
	gc := buildGraph(t, src, "f", conservative)
	if len(gc.CarriedMemEdges()) == 0 {
		t.Error("conservative must report carried mem deps")
	}
}

// TestExactAdvanceMatch: store through post-advance pointer vs load through
// pre-advance pointer next iteration is a MUST carried dependence.
func TestExactAdvanceMatch(t *testing.T) {
	src := twoWayLL + `
void f(TwoWayLL *hd) {
    TwoWayLL *p;
    int v;
    p = hd->next;
    while (p != NULL) {
        v = p->x;
        p = p->next;
        p->x = v;
    }
}
`
	g := buildGraph(t, src, "f", gpm)
	// Body: 0 br, 1 load p->x,v ; 2 load p->next,p ; 3 store v,p->x ; 4 goto
	// Store at version 1 (iter i) vs load at version 0 (iter i+1):
	// 1 == advances(1) + 0 -> must carried flow dep.
	if !g.HasEdge(3, 1, Flow, true) {
		t.Errorf("missing must carried dep store->load across advance:\n%s", g)
	}
	var must bool
	for _, e := range g.CarriedMemEdges() {
		if e.From == 3 && e.To == 1 && e.Must {
			must = true
		}
	}
	if !must {
		t.Error("the carried dep should be a must dependence")
	}
}

func TestControlDeps(t *testing.T) {
	g := buildGraph(t, shiftSrc, "shift", gpm)
	for j := sLoadPX; j <= sGoto; j++ {
		if !g.HasEdge(sBr, j, Control, false) {
			t.Errorf("missing control dep S1->S%d", j+1)
		}
	}
}

func TestInvalidAbstractionConservative(t *testing.T) {
	// A loop whose body breaks the abstraction (cycle store) must fall back
	// to conservative memory dependences even under GPM.
	src := twoWayLL + `
void f(TwoWayLL *hd) {
    TwoWayLL *p, *q;
    p = hd->next;
    while (p != NULL) {
        q = p->next;
        q->next = p;
        p->x = 0;
        p = q;
    }
}
`
	g := buildGraph(t, src, "f", gpm)
	if len(g.CarriedMemEdges()) == 0 {
		t.Error("broken abstraction must yield conservative carried deps")
	}
}

func TestDifferentFieldsNoDep(t *testing.T) {
	src := twoWayLL + `
void f(TwoWayLL *a, TwoWayLL *b) {
    while (a != NULL) {
        a->x = b->x;
        a = a->next;
    }
}
`
	// a->x store vs b->x load: same field x -> dep possible; but the
	// internal register loads use distinct registers; check that no
	// dependence is created between accesses of *different* fields by
	// making one: none here share distinct fields, so just ensure builder
	// runs and respects field filtering via the unique-field loop below.
	g := buildGraph(t, src, "f", conservative)
	for _, e := range g.Edges {
		if e.Mem && !strings.Contains(e.Loc, "->x") {
			t.Errorf("unexpected mem dep on %s", e.Loc)
		}
	}
}

func TestDOTAndString(t *testing.T) {
	g := buildGraph(t, shiftSrc, "shift", conservative)
	dot := g.DOT()
	if !strings.Contains(dot, "digraph deps") || !strings.Contains(dot, "S0 ->") {
		t.Errorf("bad DOT:\n%s", dot)
	}
	s := g.String()
	if !strings.Contains(s, "dependences (conservative)") {
		t.Errorf("bad String:\n%s", s)
	}
}
