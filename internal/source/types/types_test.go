package types

import (
	"strings"
	"testing"

	"repro/internal/source/parser"
)

const listDecl = `
type List [X] {
    int data;
    List *next is uniquely forward along X;
};
`

func check(t *testing.T, src string) (*Info, []*Error) {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	_, errs := check(t, src)
	if len(errs) == 0 {
		t.Fatalf("want error containing %q, got none", fragment)
	}
	for _, e := range errs {
		if strings.Contains(e.Msg, fragment) {
			return
		}
	}
	t.Fatalf("no error contains %q; first: %v", fragment, errs[0])
}

func TestOKProgram(t *testing.T) {
	info, errs := check(t, listDecl+`
void walk(List *hd) {
    List *p;
    int sum;
    sum = 0;
    p = hd;
    while (p != NULL) {
        sum = sum + p->data;
        p = p->next;
    }
}
`)
	if len(errs) > 0 {
		t.Fatalf("unexpected: %v", errs[0])
	}
	fi := info.Func("walk")
	if fi == nil {
		t.Fatal("walk missing")
	}
	if got := fi.Vars["p"]; !got.Equal(PointerTo("List")) {
		t.Errorf("p : %s", got)
	}
	if got := fi.Vars["sum"]; !got.Equal(Int) {
		t.Errorf("sum : %s", got)
	}
	pv := fi.PointerVars()
	if len(pv) != 2 || pv[0] != "hd" || pv[1] != "p" {
		t.Errorf("PointerVars = %v", pv)
	}
}

func TestUndeclaredVariable(t *testing.T) {
	wantErr(t, listDecl+`void f() { q = NULL; }`, "undeclared variable q")
}

func TestUndeclaredField(t *testing.T) {
	wantErr(t, listDecl+`void f(List *p) { p = p->prev; }`, "no field prev")
}

func TestDerefNonPointer(t *testing.T) {
	wantErr(t, listDecl+`void f(List *p) { int x; x = p->data->data; }`, "not a pointer")
}

func TestAssignIntToPointer(t *testing.T) {
	wantErr(t, listDecl+`void f(List *p) { p = 3; }`, "cannot assign")
}

func TestAssignPointerToInt(t *testing.T) {
	wantErr(t, listDecl+`void f(List *p) { int x; x = p; }`, "cannot assign")
}

func TestNullToPointerOK(t *testing.T) {
	_, errs := check(t, listDecl+`void f(List *p) { p = NULL; p->next = NULL; }`)
	if len(errs) > 0 {
		t.Fatalf("unexpected: %v", errs[0])
	}
}

func TestNullToIntBad(t *testing.T) {
	wantErr(t, listDecl+`void f() { int x; x = NULL; }`, "cannot assign NULL")
}

func TestPointerComparisonOK(t *testing.T) {
	_, errs := check(t, listDecl+`
void f(List *p, List *q) {
    if (p == q) { p = NULL; }
    while (p != NULL) { p = p->next; }
}`)
	if len(errs) > 0 {
		t.Fatalf("unexpected: %v", errs[0])
	}
}

func TestMixedTypePointerComparison(t *testing.T) {
	src := listDecl + `
type Tree [d] {
    Tree *kid is forward along d;
};
void f(List *p, Tree *t) { if (p == t) { p = NULL; } }
`
	wantErr(t, src, "cannot compare")
}

func TestPointerArithmeticBad(t *testing.T) {
	wantErr(t, listDecl+`void f(List *p, List *q) { int x; x = p + q; }`, "requires int")
}

func TestConditionMustBeInt(t *testing.T) {
	wantErr(t, listDecl+`void f(List *p) { while (p) { p = p->next; } }`, "condition must be int")
}

func TestNewUndeclaredType(t *testing.T) {
	wantErr(t, listDecl+`void f() { List *p; p = new Nothing; }`, "undeclared type Nothing")
}

func TestNewOK(t *testing.T) {
	_, errs := check(t, listDecl+`void f() { List *p; p = new List; p->data = 1; }`)
	if len(errs) > 0 {
		t.Fatalf("unexpected: %v", errs[0])
	}
}

func TestCallArityAndTypes(t *testing.T) {
	src := listDecl + `
void callee(List *p, int n) { n = n; }
void caller(List *q) { callee(q, 3); callee(q); }
`
	wantErr(t, src, "has 1 arguments, want 2")
}

func TestCallArgTypeMismatch(t *testing.T) {
	src := listDecl + `
void callee(int n) { n = n; }
void caller(List *q) { callee(q); }
`
	wantErr(t, src, "got List*, want int")
}

func TestCallNullArgOK(t *testing.T) {
	src := listDecl + `
void callee(List *p) { p = NULL; }
void caller() { callee(NULL); }
`
	_, errs := check(t, src)
	if len(errs) > 0 {
		t.Fatalf("unexpected: %v", errs[0])
	}
}

func TestUndeclaredFunction(t *testing.T) {
	wantErr(t, `void f() { g(); }`, "undeclared function g")
}

func TestReturnTypeChecks(t *testing.T) {
	wantErr(t, `int f() { return; }
void g() { return 3; }`, "void function g returns a value")
}

func TestRedeclaredVariable(t *testing.T) {
	wantErr(t, listDecl+`void f() { int x; int x; x = 1; }`, "variable x redeclared")
}

func TestRedeclaredFunction(t *testing.T) {
	wantErr(t, `void f() { } void f() { }`, "function f redeclared")
}

func TestShapeProblemSurfaces(t *testing.T) {
	wantErr(t, `
type Bad [X] {
    Bad *prev is backward along X;
};
void f() { }`, "Def 4.5")
}

func TestFreeChecksPointer(t *testing.T) {
	wantErr(t, listDecl+`void f() { int x; x = 1; free(x); }`, "free requires a pointer")
}

func TestRecordByValueRejected(t *testing.T) {
	// The grammar itself forbids record-by-value parameters.
	_, err := parser.Parse([]byte(listDecl + `void f(List p) { }`))
	if err == nil {
		t.Fatal("want parse error for record-by-value parameter")
	}
}

func TestMultiDerefPath(t *testing.T) {
	_, errs := check(t, listDecl+`
void f(List *p) {
    int x;
    x = p->next->next->data;
}`)
	if len(errs) > 0 {
		t.Fatalf("unexpected: %v", errs[0])
	}
}
