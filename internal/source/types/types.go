// Package types implements the static semantics of mini: name resolution and
// type checking. Checking a program yields an Info table mapping every
// function to its variable types, which later phases (normalization, IR
// building, analysis) rely on instead of re-deriving types.
package types

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/shape"
	"repro/internal/source/ast"
	"repro/internal/source/token"
)

// Kind classifies a mini type.
type Kind int

// Type kinds. KindInvalid marks expressions whose type could not be
// determined; errors are reported once at the point of failure and
// KindInvalid silences cascades.
const (
	KindInvalid Kind = iota
	KindInt
	KindPointer
	KindVoid
)

// Type is a mini type: int, void, or pointer-to-record.
type Type struct {
	Kind   Kind
	Record string // record type name when Kind == KindPointer
}

// Int, Void and Invalid are the singleton non-pointer types.
var (
	Int     = Type{Kind: KindInt}
	Void    = Type{Kind: KindVoid}
	Invalid = Type{Kind: KindInvalid}
)

// PointerTo returns the pointer type for a record name.
func PointerTo(record string) Type { return Type{Kind: KindPointer, Record: record} }

// String renders the type.
func (t Type) String() string {
	switch t.Kind {
	case KindInt:
		return "int"
	case KindPointer:
		return t.Record + "*"
	case KindVoid:
		return "void"
	}
	return "invalid"
}

// Equal reports type identity.
func (t Type) Equal(o Type) bool { return t.Kind == o.Kind && t.Record == o.Record }

// Error is a semantic error at a position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// FuncInfo holds the checked symbol table of one function.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Vars map[string]Type // parameters and locals
}

// PointerVars returns the names of all pointer-typed variables, in a stable
// order (parameters first, then locals, declaration order).
func (fi *FuncInfo) PointerVars() []string {
	var out []string
	add := func(name string) {
		if fi.Vars[name].Kind == KindPointer {
			out = append(out, name)
		}
	}
	for _, p := range fi.Decl.Params {
		add(p.Name)
	}
	for _, vd := range fi.Decl.Body.Vars {
		for _, n := range vd.Names {
			add(n)
		}
	}
	return out
}

// Info is the result of checking a program.
type Info struct {
	Prog  *ast.Program
	Env   *shape.Env
	Funcs map[string]*FuncInfo
}

// Func returns the info for a function name, or nil.
func (in *Info) Func(name string) *FuncInfo { return in.Funcs[name] }

// checker carries state during checking.
type checker struct {
	prog *ast.Program
	env  *shape.Env
	errs []*Error
	fn   *FuncInfo
}

// Check builds the shape environment, resolves names and types, and returns
// the info table. Shape well-formedness problems are reported as errors at
// the type declaration's position.
func Check(prog *ast.Program) (*Info, []*Error) {
	return CheckCtx(context.Background(), prog)
}

// CheckCtx is Check under a context, opening "shape" and "typecheck" spans
// when the context carries a tracer (and costing two nil checks when not).
func CheckCtx(ctx context.Context, prog *ast.Program) (*Info, []*Error) {
	_, span := obs.Start(ctx, "shape")
	env, probs := shape.Build(prog)
	span.End()
	_, span = obs.Start(ctx, "typecheck")
	defer span.End()
	c := &checker{prog: prog, env: env}
	for _, p := range probs {
		pos := token.Pos{}
		if td := prog.TypeByName(p.Type); td != nil {
			pos = td.NamePos
		}
		c.errorf(pos, "%s", p.Error())
	}

	info := &Info{Prog: prog, Env: env, Funcs: map[string]*FuncInfo{}}
	for _, fd := range prog.Funcs {
		if _, dup := info.Funcs[fd.Name]; dup {
			c.errorf(fd.NamePos, "function %s redeclared", fd.Name)
			continue
		}
		info.Funcs[fd.Name] = c.checkFunc(fd)
	}
	// Resolve calls after all signatures are known.
	for _, fd := range prog.Funcs {
		c.fn = info.Funcs[fd.Name]
		if c.fn != nil {
			c.checkCalls(fd.Body, info)
		}
	}
	return info, c.errs
}

// MustCheck checks and panics on error. For fixtures and tests.
func MustCheck(prog *ast.Program) *Info {
	info, errs := Check(prog)
	if len(errs) > 0 {
		panic("types.MustCheck: " + errs[0].Error())
	}
	return info
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) resolveTypeName(pos token.Pos, name string, pointer bool) Type {
	if name == "int" {
		if pointer {
			c.errorf(pos, "pointers to int are not supported")
			return Invalid
		}
		return Int
	}
	if c.env.Type(name) == nil {
		c.errorf(pos, "undeclared type %s", name)
		return Invalid
	}
	if !pointer {
		c.errorf(pos, "record type %s must be used through a pointer", name)
		return Invalid
	}
	return PointerTo(name)
}

func (c *checker) checkFunc(fd *ast.FuncDecl) *FuncInfo {
	fi := &FuncInfo{Decl: fd, Vars: map[string]Type{}}
	c.fn = fi
	for _, p := range fd.Params {
		if _, dup := fi.Vars[p.Name]; dup {
			c.errorf(p.NamePos, "parameter %s redeclared", p.Name)
			continue
		}
		fi.Vars[p.Name] = c.resolveTypeName(p.NamePos, p.TypeName, p.Pointer)
	}
	for _, vd := range fd.Body.Vars {
		for _, n := range vd.Names {
			if _, dup := fi.Vars[n]; dup {
				c.errorf(vd.DeclPos, "variable %s redeclared", n)
				continue
			}
			fi.Vars[n] = c.resolveTypeName(vd.DeclPos, vd.TypeName, vd.Pointer)
		}
	}
	c.checkBlock(fd.Body)
	return fi
}

func (c *checker) checkBlock(blk *ast.Block) {
	for _, s := range blk.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.checkBlock(s)
	case *ast.AssignStmt:
		lt := c.checkPath(s.LHS)
		rt := c.checkExpr(s.RHS)
		c.checkAssignable(s.LHS.Pos(), lt, rt, s.RHS)
	case *ast.WhileStmt:
		c.requireInt(s.Cond)
		c.checkStmt(s.Body)
	case *ast.IfStmt:
		c.requireInt(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.ReturnStmt:
		if s.Value != nil {
			vt := c.checkExpr(s.Value)
			if c.fn.Decl.RetInt && vt.Kind != KindInt && vt.Kind != KindInvalid {
				c.errorf(s.RetPos, "function %s returns int, got %s", c.fn.Decl.Name, vt)
			}
			if !c.fn.Decl.RetInt && vt.Kind != KindInvalid {
				c.errorf(s.RetPos, "void function %s returns a value", c.fn.Decl.Name)
			}
		}
	case *ast.CallStmt:
		c.checkExpr(s.Call)
	case *ast.FreeStmt:
		t := c.checkPath(s.Target)
		if t.Kind != KindPointer && t.Kind != KindInvalid {
			c.errorf(s.FreePos, "free requires a pointer, got %s", t)
		}
	}
}

// checkAssignable verifies lt = rt is legal. NULL assigns to any pointer.
func (c *checker) checkAssignable(pos token.Pos, lt, rt Type, rhs ast.Expr) {
	if lt.Kind == KindInvalid || rt.Kind == KindInvalid {
		return
	}
	if _, isNull := rhs.(*ast.NullLit); isNull {
		if lt.Kind != KindPointer {
			c.errorf(pos, "cannot assign NULL to %s", lt)
		}
		return
	}
	if !lt.Equal(rt) {
		c.errorf(pos, "cannot assign %s to %s", rt, lt)
	}
}

func (c *checker) requireInt(e ast.Expr) {
	t := c.checkExpr(e)
	if t.Kind != KindInt && t.Kind != KindInvalid {
		c.errorf(e.Pos(), "condition must be int, got %s", t)
	}
}

// checkPath types a variable-with-fields path: p, p->f, p->f->g.
func (c *checker) checkPath(p *ast.Path) Type {
	t, ok := c.fn.Vars[p.Var]
	if !ok {
		c.errorf(p.VarPos, "undeclared variable %s", p.Var)
		return Invalid
	}
	for i, f := range p.Fields {
		if t.Kind == KindInvalid {
			return Invalid
		}
		if t.Kind != KindPointer {
			c.errorf(p.VarPos, "%s is not a pointer (dereference %d of %s)",
				t, i+1, p.Var)
			return Invalid
		}
		rt := c.env.Type(t.Record)
		if rt == nil {
			return Invalid
		}
		if rt.HasIntField(f) {
			t = Int
		} else if pf := rt.Field(f); pf != nil {
			t = PointerTo(pf.Target)
		} else {
			c.errorf(p.VarPos, "type %s has no field %s", t.Record, f)
			return Invalid
		}
	}
	return t
}

func (c *checker) checkExpr(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.Path:
		return c.checkPath(e)
	case *ast.IntLit:
		return Int
	case *ast.NullLit:
		// NULL adopts the pointer type of its context; callers special-case it.
		return Type{Kind: KindPointer}
	case *ast.NewExpr:
		if c.env.Type(e.TypeName) == nil {
			c.errorf(e.NewPos, "new of undeclared type %s", e.TypeName)
			return Invalid
		}
		return PointerTo(e.TypeName)
	case *ast.UnExpr:
		xt := c.checkExpr(e.X)
		if xt.Kind != KindInt && xt.Kind != KindInvalid {
			c.errorf(e.OpPos, "unary %s requires int, got %s", e.Op, xt)
			return Invalid
		}
		return Int
	case *ast.BinExpr:
		return c.checkBin(e)
	case *ast.CallExpr:
		// Signature checking happens in checkCalls; here we only type it.
		fd := c.prog.FuncByName(e.Name)
		if fd == nil {
			c.errorf(e.NamePos, "call to undeclared function %s", e.Name)
			return Invalid
		}
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		if fd.RetInt {
			return Int
		}
		return Void
	}
	return Invalid
}

func (c *checker) checkBin(e *ast.BinExpr) Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	if xt.Kind == KindInvalid || yt.Kind == KindInvalid {
		return Invalid
	}
	switch e.Op {
	case token.EQ, token.NEQ:
		// Pointers compare against pointers of the same type or NULL.
		_, xNull := e.X.(*ast.NullLit)
		_, yNull := e.Y.(*ast.NullLit)
		if xt.Kind == KindPointer || yt.Kind == KindPointer {
			ok := xNull || yNull ||
				(xt.Kind == KindPointer && yt.Kind == KindPointer && xt.Record == yt.Record)
			if !ok {
				c.errorf(e.X.Pos(), "cannot compare %s with %s", xt, yt)
			}
			return Int
		}
		if xt.Kind != KindInt || yt.Kind != KindInt {
			c.errorf(e.X.Pos(), "cannot compare %s with %s", xt, yt)
		}
		return Int
	case token.LT, token.GT, token.LE, token.GE,
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PCT,
		token.AND, token.OR:
		if xt.Kind != KindInt || yt.Kind != KindInt {
			c.errorf(e.X.Pos(), "operator %s requires int operands, got %s and %s",
				e.Op, xt, yt)
			return Invalid
		}
		return Int
	}
	c.errorf(e.X.Pos(), "unsupported operator %s", e.Op)
	return Invalid
}

// checkCalls verifies call-site arity and argument types once all
// signatures are known.
func (c *checker) checkCalls(blk *ast.Block, info *Info) {
	for _, s := range blk.Stmts {
		ast.WalkExprs(s, func(e ast.Expr) {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return
			}
			fd := c.prog.FuncByName(call.Name)
			if fd == nil {
				return // already reported
			}
			if len(call.Args) != len(fd.Params) {
				c.errorf(call.NamePos, "call to %s has %d arguments, want %d",
					call.Name, len(call.Args), len(fd.Params))
				return
			}
			for i, a := range call.Args {
				at := c.checkExprQuiet(a)
				p := fd.Params[i]
				want := Int
				if p.Pointer {
					want = PointerTo(p.TypeName)
				}
				if _, isNull := a.(*ast.NullLit); isNull && want.Kind == KindPointer {
					continue
				}
				if at.Kind != KindInvalid && !at.Equal(want) {
					c.errorf(a.Pos(), "argument %d of %s: got %s, want %s",
						i+1, call.Name, at, want)
				}
			}
		})
	}
}

// checkExprQuiet types an expression without emitting duplicate errors.
func (c *checker) checkExprQuiet(e ast.Expr) Type {
	saved := c.errs
	t := c.checkExpr(e)
	c.errs = saved
	return t
}
