// Package lexer turns mini source text into a stream of tokens.
//
// The lexer accepts both C-style comments (/* ... */ and //) and the paper's
// "<>" spelling of the not-equal operator, which it reports as token.NEQ.
package lexer

import (
	"fmt"

	"repro/internal/source/token"
)

// Error is a lexical error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans a source buffer. Create one with New and call Next until it
// returns an EOF token.
type Lexer struct {
	src    []byte
	offset int // byte offset of current character
	line   int
	col    int
	errs   []*Error
}

// New returns a lexer over src.
func New(src []byte) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns all lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{Line: l.line, Column: l.col, Offset: l.offset}
}

func (l *Lexer) peek() byte {
	if l.offset >= len(l.src) {
		return 0
	}
	return l.src[l.offset]
}

func (l *Lexer) peek2() byte {
	if l.offset+1 >= len(l.src) {
		return 0
	}
	return l.src[l.offset+1]
}

func (l *Lexer) advance() byte {
	ch := l.src[l.offset]
	l.offset++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func (l *Lexer) skipSpaceAndComments() {
	for l.offset < len(l.src) {
		switch ch := l.peek(); {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '/' && l.peek2() == '/':
			for l.offset < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.offset < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isLetter(ch byte) bool {
	return 'a' <= ch && ch <= 'z' || 'A' <= ch && ch <= 'Z' || ch == '_'
}

func isDigit(ch byte) bool { return '0' <= ch && ch <= '9' }

// Next returns the next token. After the end of input it returns EOF tokens
// forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.offset >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	ch := l.advance()

	switch {
	case isLetter(ch):
		start := pos.Offset
		for l.offset < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := string(l.src[start:l.offset])
		kind := token.Lookup(lit)
		if kind == token.IDENT {
			return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: kind, Lit: lit, Pos: pos}

	case isDigit(ch):
		start := pos.Offset
		for l.offset < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.INT, Lit: string(l.src[start:l.offset]), Pos: pos}
	}

	two := func(next byte, yes, no token.Kind) token.Kind {
		if l.peek() == next {
			l.advance()
			return yes
		}
		return no
	}

	var kind token.Kind
	switch ch {
	case '=':
		kind = two('=', token.EQ, token.ASSIGN)
	case '+':
		kind = token.PLUS
	case '-':
		kind = two('>', token.ARROW, token.MINUS)
	case '*':
		kind = token.STAR
	case '/':
		kind = token.SLASH
	case '%':
		kind = token.PCT
	case '!':
		kind = two('=', token.NEQ, token.NOT)
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			kind = token.LE
		case '>': // the paper's "p <> NULL"
			l.advance()
			kind = token.NEQ
		default:
			kind = token.LT
		}
	case '>':
		kind = two('=', token.GE, token.GT)
	case '&':
		kind = two('&', token.AND, token.AMP)
	case '|':
		kind = two('|', token.OR, token.BAR)
	case '.':
		kind = token.DOT
	case ',':
		kind = token.COMMA
	case ';':
		kind = token.SEMI
	case '(':
		kind = token.LPAREN
	case ')':
		kind = token.RPAREN
	case '{':
		kind = token.LBRACE
	case '}':
		kind = token.RBRACE
	case '[':
		kind = token.LBRACK
	case ']':
		kind = token.RBRACK
	default:
		l.errorf(pos, "illegal character %q", ch)
		return token.Token{Kind: token.ILLEGAL, Lit: string(ch), Pos: pos}
	}
	return token.Token{Kind: kind, Pos: pos}
}

// All scans the entire input and returns every token up to and including the
// first EOF. It is a convenience for tests and tools.
func All(src []byte) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
