package lexer

import (
	"testing"

	"repro/internal/source/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := All([]byte(src))
	if len(errs) > 0 {
		t.Fatalf("lex %q: %v", src, errs[0])
	}
	var ks []token.Kind
	for _, tok := range toks {
		ks = append(ks, tok.Kind)
	}
	return ks
}

func TestSimpleTokens(t *testing.T) {
	got := kinds(t, "p = q->next;")
	want := []token.Kind{token.IDENT, token.ASSIGN, token.IDENT, token.ARROW,
		token.IDENT, token.SEMI, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestPaperNotEqual(t *testing.T) {
	// The paper writes "while p <> NULL"; <> must lex as NEQ.
	got := kinds(t, "p <> NULL")
	want := []token.Kind{token.IDENT, token.NEQ, token.KwNull, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestADDSKeywords(t *testing.T) {
	got := kinds(t, "is uniquely forward along X where backward unknown circular")
	want := []token.Kind{token.KwIs, token.KwUniquely, token.KwForward,
		token.KwAlong, token.IDENT, token.KwWhere, token.KwBackward,
		token.KwUnknown, token.KwCircular, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestComparisonOperators(t *testing.T) {
	got := kinds(t, "== != < > <= >= && || ! =")
	want := []token.Kind{token.EQ, token.NEQ, token.LT, token.GT, token.LE,
		token.GE, token.AND, token.OR, token.NOT, token.ASSIGN, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
p = 1; /* block
   comment */ q = 2;`
	got := kinds(t, src)
	want := []token.Kind{token.IDENT, token.ASSIGN, token.INT, token.SEMI,
		token.IDENT, token.ASSIGN, token.INT, token.SEMI, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestUnterminatedComment(t *testing.T) {
	_, errs := All([]byte("p = 1; /* never closed"))
	if len(errs) == 0 {
		t.Fatal("want error for unterminated comment")
	}
}

func TestIllegalChar(t *testing.T) {
	toks, errs := All([]byte("p = #;"))
	if len(errs) == 0 {
		t.Fatal("want error for illegal character")
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("want an ILLEGAL token in stream")
	}
}

func TestPositions(t *testing.T) {
	l := New([]byte("ab\n cd"))
	t1 := l.Next()
	if t1.Pos.Line != 1 || t1.Pos.Column != 1 {
		t.Errorf("ab at %v, want 1:1", t1.Pos)
	}
	t2 := l.Next()
	if t2.Pos.Line != 2 || t2.Pos.Column != 2 {
		t.Errorf("cd at %v, want 2:2", t2.Pos)
	}
}

func TestIntLiteral(t *testing.T) {
	toks, _ := All([]byte("12345"))
	if toks[0].Kind != token.INT || toks[0].Lit != "12345" {
		t.Errorf("got %v", toks[0])
	}
}

func TestNullSpellings(t *testing.T) {
	for _, s := range []string{"NULL", "null", "nil"} {
		toks, _ := All([]byte(s))
		if toks[0].Kind != token.KwNull {
			t.Errorf("%s: got %v want KwNull", s, toks[0].Kind)
		}
	}
}

func TestEOFForever(t *testing.T) {
	l := New(nil)
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d: got %v want EOF", i, tok.Kind)
		}
	}
}
