package token

import "testing"

func TestLookup(t *testing.T) {
	cases := map[string]Kind{
		"type": KwType, "while": KwWhile, "uniquely": KwUniquely,
		"forward": KwForward, "NULL": KwNull, "nil": KwNull,
		"somename": IDENT, "Next": IDENT,
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		ARROW: "->", NEQ: "!=", KwAlong: "along", EOF: "EOF",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestClassifiers(t *testing.T) {
	if !KwType.IsKeyword() || ARROW.IsKeyword() {
		t.Error("IsKeyword wrong")
	}
	if !ARROW.IsOperator() || KwType.IsOperator() {
		t.Error("IsOperator wrong")
	}
	for _, k := range []Kind{EQ, NEQ, LT, GT, LE, GE} {
		if !k.IsComparison() {
			t.Errorf("%v should be a comparison", k)
		}
	}
	if PLUS.IsComparison() {
		t.Error("PLUS is not a comparison")
	}
}

func TestPos(t *testing.T) {
	p := Pos{Line: 3, Column: 7}
	if p.String() != "3:7" || !p.IsValid() {
		t.Errorf("pos = %v", p)
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos should be invalid")
	}
}

func TestTokenString(t *testing.T) {
	if got := (Token{Kind: IDENT, Lit: "p"}).String(); got != `IDENT("p")` {
		t.Errorf("token string = %q", got)
	}
	if got := (Token{Kind: ARROW}).String(); got != "->" {
		t.Errorf("token string = %q", got)
	}
}
