// Package token defines the lexical tokens of the mini language, a small
// C-like imperative language extended with the ADDS data-structure
// description syntax of Hendren, Hummel and Nicolau (PLDI 1992).
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The ADDS keywords (IS, ALONG, WHERE, UNIQUELY, FORWARD,
// BACKWARD, UNKNOWN, CIRCULAR) appear only inside type declarations but are
// reserved everywhere for simplicity.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT // p, TwoWayLL, data
	INT   // 123

	// Operators and delimiters.
	ASSIGN // =
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	PCT    // %

	EQ  // ==
	NEQ // != (the paper also writes <>)
	LT  // <
	GT  // >
	LE  // <=
	GE  // >=

	AND // &&
	OR  // ||
	NOT // !
	AMP // &
	BAR // | (half of ||, illegal alone; kept for error reporting)

	ARROW  // ->
	DOT    // .
	COMMA  // ,
	SEMI   // ;
	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	LBRACK // [
	RBRACK // ]

	// General keywords.
	KwType
	KwInt
	KwVoid
	KwFunc
	KwWhile
	KwFor
	KwIf
	KwElse
	KwReturn
	KwNull
	KwNew
	KwFree

	// ADDS keywords.
	KwIs
	KwAlong
	KwWhere
	KwUniquely
	KwForward
	KwBackward
	KwUnknown
	KwCircular
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	IDENT:   "IDENT",
	INT:     "INT",

	ASSIGN: "=",
	PLUS:   "+",
	MINUS:  "-",
	STAR:   "*",
	SLASH:  "/",
	PCT:    "%",

	EQ:  "==",
	NEQ: "!=",
	LT:  "<",
	GT:  ">",
	LE:  "<=",
	GE:  ">=",

	AND: "&&",
	OR:  "||",
	NOT: "!",
	AMP: "&",
	BAR: "|",

	ARROW:  "->",
	DOT:    ".",
	COMMA:  ",",
	SEMI:   ";",
	LPAREN: "(",
	RPAREN: ")",
	LBRACE: "{",
	RBRACE: "}",
	LBRACK: "[",
	RBRACK: "]",

	KwType:   "type",
	KwInt:    "int",
	KwVoid:   "void",
	KwFunc:   "func",
	KwWhile:  "while",
	KwFor:    "for",
	KwIf:     "if",
	KwElse:   "else",
	KwReturn: "return",
	KwNull:   "NULL",
	KwNew:    "new",
	KwFree:   "free",

	KwIs:       "is",
	KwAlong:    "along",
	KwWhere:    "where",
	KwUniquely: "uniquely",
	KwForward:  "forward",
	KwBackward: "backward",
	KwUnknown:  "unknown",
	KwCircular: "circular",
}

// String returns the source spelling of punctuation and keywords, or the
// class name for IDENT, INT, EOF and ILLEGAL.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"type":     KwType,
	"int":      KwInt,
	"void":     KwVoid,
	"func":     KwFunc,
	"while":    KwWhile,
	"for":      KwFor,
	"if":       KwIf,
	"else":     KwElse,
	"return":   KwReturn,
	"NULL":     KwNull,
	"null":     KwNull,
	"nil":      KwNull,
	"new":      KwNew,
	"free":     KwFree,
	"is":       KwIs,
	"along":    KwAlong,
	"where":    KwWhere,
	"uniquely": KwUniquely,
	"forward":  KwForward,
	"backward": KwBackward,
	"unknown":  KwUnknown,
	"circular": KwCircular,
}

// Lookup maps an identifier to its keyword kind, or IDENT if it is not a
// reserved word.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column plus byte offset.
type Pos struct {
	Line   int
	Column int
	Offset int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Column) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexical token with its source text and position.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT and INT; empty otherwise
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, ILLEGAL:
		return fmt.Sprintf("%s(%q)", names[t.Kind], t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsKeyword reports whether the kind is any reserved word.
func (k Kind) IsKeyword() bool { return k >= KwType && k <= KwCircular }

// IsOperator reports whether the kind is an operator or delimiter.
func (k Kind) IsOperator() bool { return k >= ASSIGN && k <= RBRACK }

// IsComparison reports whether the kind is a relational operator.
func (k Kind) IsComparison() bool {
	switch k {
	case EQ, NEQ, LT, GT, LE, GE:
		return true
	}
	return false
}
