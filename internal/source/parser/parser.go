// Package parser builds a mini AST from source text.
//
// The grammar (EBNF, terminals quoted):
//
//	Program    = { TypeDecl | FuncDecl } .
//	TypeDecl   = "type" ident { "[" ident "]" } [ "where" Indep { "," Indep } ]
//	             "{" { FieldDecl } "}" [ ";" ] .
//	Indep      = ident "||" ident .
//	FieldDecl  = "int" ident { "," ident } ";"
//	           | ident "*" ident { "," "*" ident } [ ADDSClause ] ";" .
//	ADDSClause = "is" Direction [ "along" ident ] .
//	Direction  = [ "uniquely" ] "forward" | "backward" | "unknown" | "circular" .
//	FuncDecl   = ( "void" | "int" | "func" ) ident "(" [ Params ] ")" Block .
//	Params     = Param { "," Param } .
//	Param      = "int" ident | ident "*" ident .
//	Block      = "{" { VarDecl } { Stmt } "}" .
//	VarDecl    = "int" ident { "," ident } ";"
//	           | ident "*" ident { "," "*" ident } ";" .
//	Stmt       = Path "=" Expr ";" | "while" "(" Expr ")" Stmt
//	           | "if" "(" Expr ")" Stmt [ "else" Stmt ] | Block
//	           | "return" [ Expr ] ";" | ident "(" Args ")" ";"
//	           | "free" "(" Path ")" ";" .
//	Path       = ident { "->" ident } .
//
// Expressions use C precedence: || < && < comparisons < + - < * / % < unary.
package parser

import (
	"fmt"

	"repro/internal/source/ast"
	"repro/internal/source/lexer"
	"repro/internal/source/token"
)

// Error is a syntax error at a position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a non-empty list of parse errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 1 {
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

type parser struct {
	lex   *lexer.Lexer
	tok   token.Token // current
	ahead *token.Token
	errs  ErrorList
}

// Parse parses a full program.
func Parse(src []byte) (*ast.Program, error) {
	p := &parser{lex: lexer.New(src)}
	p.next()
	prog := p.parseProgram()
	for _, le := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

// MustParse parses src and panics on error. For tests and fixed fixtures.
func MustParse(src string) *ast.Program {
	prog, err := Parse([]byte(src))
	if err != nil {
		panic("parser.MustParse: " + err.Error())
	}
	return prog
}

func (p *parser) next() {
	if p.ahead != nil {
		p.tok = *p.ahead
		p.ahead = nil
		return
	}
	p.tok = p.lex.Next()
}

// peek returns the token after the current one without consuming anything.
func (p *parser) peek() token.Token {
	if p.ahead == nil {
		t := p.lex.Next()
		p.ahead = &t
	}
	return *p.ahead
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: the caller's recovery loop handles skipping.
		return token.Token{Kind: k, Pos: t.Pos}
	}
	p.next()
	return t
}

func (p *parser) expectIdent() (string, token.Pos) {
	t := p.tok
	if t.Kind != token.IDENT {
		p.errorf(t.Pos, "expected identifier, found %s", t)
		p.skipTo(token.SEMI, token.RBRACE)
		return "_error_", t.Pos
	}
	p.next()
	return t.Lit, t.Pos
}

// skipTo advances until one of the kinds (or EOF) is current.
func (p *parser) skipTo(kinds ...token.Kind) {
	for p.tok.Kind != token.EOF {
		for _, k := range kinds {
			if p.tok.Kind == k {
				return
			}
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.KwType:
			if td := p.parseTypeDecl(); td != nil {
				prog.Types = append(prog.Types, td)
			}
		case token.KwVoid, token.KwFunc, token.KwInt:
			if fd := p.parseFuncDecl(); fd != nil {
				prog.Funcs = append(prog.Funcs, fd)
			}
		case token.SEMI:
			p.next()
		default:
			p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
			p.next()
			p.skipTo(token.KwType, token.KwVoid, token.KwFunc, token.KwInt)
		}
	}
	return prog
}

func (p *parser) parseTypeDecl() *ast.TypeDecl {
	p.expect(token.KwType)
	name, pos := p.expectIdent()
	td := &ast.TypeDecl{NamePos: pos, Name: name}

	for p.tok.Kind == token.LBRACK {
		p.next()
		dim, _ := p.expectIdent()
		p.expect(token.RBRACK)
		td.Dims = append(td.Dims, dim)
	}
	if p.tok.Kind == token.KwWhere {
		p.next()
		for {
			a, _ := p.expectIdent()
			p.expect(token.OR)
			b, _ := p.expectIdent()
			td.Indep = append(td.Indep, [2]string{a, b})
			if p.tok.Kind != token.COMMA {
				break
			}
			p.next()
		}
	}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if fd := p.parseFieldDecl(); fd != nil {
			td.Fields = append(td.Fields, fd)
		}
	}
	p.expect(token.RBRACE)
	if p.tok.Kind == token.SEMI {
		p.next()
	}
	return td
}

func (p *parser) parseFieldDecl() *ast.FieldDecl {
	pos := p.tok.Pos
	fd := &ast.FieldDecl{FieldPos: pos}
	switch p.tok.Kind {
	case token.KwInt:
		p.next()
		fd.TypeName = "int"
		for {
			name, _ := p.expectIdent()
			fd.Names = append(fd.Names, name)
			if p.tok.Kind != token.COMMA {
				break
			}
			p.next()
		}
	case token.IDENT:
		fd.TypeName = p.tok.Lit
		p.next()
		fd.Pointer = true
		for {
			p.expect(token.STAR)
			name, _ := p.expectIdent()
			fd.Names = append(fd.Names, name)
			if p.tok.Kind != token.COMMA {
				break
			}
			p.next()
		}
		if p.tok.Kind == token.KwIs {
			p.next()
			fd.Dir = p.parseDirection()
			if p.tok.Kind == token.KwAlong {
				p.next()
				fd.Dim, _ = p.expectIdent()
			}
		}
	default:
		p.errorf(pos, "expected field declaration, found %s", p.tok)
		p.next()
		p.skipTo(token.SEMI, token.RBRACE)
		if p.tok.Kind == token.SEMI {
			p.next()
		}
		return nil
	}
	p.expect(token.SEMI)
	return fd
}

func (p *parser) parseDirection() ast.Direction {
	switch p.tok.Kind {
	case token.KwUniquely:
		p.next()
		p.expect(token.KwForward)
		return ast.DirUniquelyForward
	case token.KwForward:
		p.next()
		return ast.DirForward
	case token.KwBackward:
		p.next()
		return ast.DirBackward
	case token.KwUnknown:
		p.next()
		return ast.DirUnknown
	case token.KwCircular:
		p.next()
		return ast.DirCircular
	default:
		p.errorf(p.tok.Pos, "expected direction, found %s", p.tok)
		p.skipTo(token.SEMI, token.RBRACE)
		return ast.DirUnknown
	}
}

func (p *parser) parseFuncDecl() *ast.FuncDecl {
	retInt := p.tok.Kind == token.KwInt
	p.next() // void | func | int
	name, pos := p.expectIdent()
	fd := &ast.FuncDecl{NamePos: pos, Name: name, RetInt: retInt}
	p.expect(token.LPAREN)
	if p.tok.Kind != token.RPAREN {
		for {
			fd.Params = append(fd.Params, p.parseParam())
			if p.tok.Kind != token.COMMA {
				break
			}
			p.next()
		}
	}
	p.expect(token.RPAREN)
	fd.Body = p.parseBlock()
	return fd
}

func (p *parser) parseParam() *ast.Param {
	switch p.tok.Kind {
	case token.KwInt:
		p.next()
		name, pos := p.expectIdent()
		return &ast.Param{NamePos: pos, TypeName: "int", Name: name}
	case token.IDENT:
		tn := p.tok.Lit
		p.next()
		p.expect(token.STAR)
		name, pos := p.expectIdent()
		return &ast.Param{NamePos: pos, TypeName: tn, Pointer: true, Name: name}
	default:
		p.errorf(p.tok.Pos, "expected parameter, found %s", p.tok)
		p.skipTo(token.COMMA, token.RPAREN)
		return &ast.Param{NamePos: p.tok.Pos, TypeName: "int", Name: "_error_"}
	}
}

func (p *parser) parseBlock() *ast.Block {
	blk := &ast.Block{Lbrace: p.tok.Pos}
	p.expect(token.LBRACE)
	// Leading variable declarations: "int x, y;" or "T *p, *q;".
	for {
		if p.tok.Kind == token.KwInt && p.peek().Kind == token.IDENT {
			pos := p.tok.Pos
			p.next()
			vd := &ast.VarDecl{DeclPos: pos, TypeName: "int"}
			for {
				name, _ := p.expectIdent()
				vd.Names = append(vd.Names, name)
				if p.tok.Kind != token.COMMA {
					break
				}
				p.next()
			}
			p.expect(token.SEMI)
			blk.Vars = append(blk.Vars, vd)
			continue
		}
		if p.tok.Kind == token.IDENT && p.peek().Kind == token.STAR {
			pos := p.tok.Pos
			tn := p.tok.Lit
			p.next()
			vd := &ast.VarDecl{DeclPos: pos, TypeName: tn, Pointer: true}
			for {
				p.expect(token.STAR)
				name, _ := p.expectIdent()
				vd.Names = append(vd.Names, name)
				if p.tok.Kind != token.COMMA {
					break
				}
				p.next()
			}
			p.expect(token.SEMI)
			blk.Vars = append(blk.Vars, vd)
			continue
		}
		break
	}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if s := p.parseStmt(); s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.expect(token.RBRACE)
	return blk
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.KwWhile:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		body := p.parseStmt()
		return &ast.WhileStmt{WhilePos: pos, Cond: cond, Body: body}
	case token.KwIf:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		then := p.parseStmt()
		var els ast.Stmt
		if p.tok.Kind == token.KwElse {
			p.next()
			els = p.parseStmt()
		}
		return &ast.IfStmt{IfPos: pos, Cond: cond, Then: then, Else: els}
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		pos := p.tok.Pos
		p.next()
		var val ast.Expr
		if p.tok.Kind != token.SEMI {
			val = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{RetPos: pos, Value: val}
	case token.KwFree:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		target := p.parsePath()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.FreeStmt{FreePos: pos, Target: target}
	case token.IDENT:
		if p.peek().Kind == token.LPAREN {
			call := p.parseCall()
			p.expect(token.SEMI)
			return &ast.CallStmt{Call: call}
		}
		lhs := p.parsePath()
		p.expect(token.ASSIGN)
		rhs := p.parseExpr()
		p.expect(token.SEMI)
		return &ast.AssignStmt{LHS: lhs, RHS: rhs}
	case token.SEMI:
		p.next()
		return nil
	default:
		p.errorf(p.tok.Pos, "expected statement, found %s", p.tok)
		p.next()
		p.skipTo(token.SEMI, token.RBRACE)
		if p.tok.Kind == token.SEMI {
			p.next()
		}
		return nil
	}
}

// parseFor desugars "for (init; cond; post) body" into
// "{ init; while (cond) { body; post; } }". Any clause may be empty; an
// empty condition means true.
func (p *parser) parseFor() ast.Stmt {
	pos := p.tok.Pos
	p.next()
	p.expect(token.LPAREN)

	var init ast.Stmt
	if p.tok.Kind != token.SEMI {
		lhs := p.parsePath()
		p.expect(token.ASSIGN)
		init = &ast.AssignStmt{LHS: lhs, RHS: p.parseExpr()}
	}
	p.expect(token.SEMI)

	var cond ast.Expr
	if p.tok.Kind != token.SEMI {
		cond = p.parseExpr()
	} else {
		cond = &ast.IntLit{LitPos: p.tok.Pos, Value: 1}
	}
	p.expect(token.SEMI)

	var post ast.Stmt
	if p.tok.Kind != token.RPAREN {
		lhs := p.parsePath()
		p.expect(token.ASSIGN)
		post = &ast.AssignStmt{LHS: lhs, RHS: p.parseExpr()}
	}
	p.expect(token.RPAREN)

	body := p.parseStmt()
	inner := &ast.Block{Lbrace: pos, Stmts: []ast.Stmt{}}
	if body != nil {
		inner.Stmts = append(inner.Stmts, body)
	}
	if post != nil {
		inner.Stmts = append(inner.Stmts, post)
	}
	loop := &ast.WhileStmt{WhilePos: pos, Cond: cond, Body: inner}
	if init == nil {
		return loop
	}
	return &ast.Block{Lbrace: pos, Stmts: []ast.Stmt{init, loop}}
}

func (p *parser) parsePath() *ast.Path {
	name, pos := p.expectIdent()
	path := &ast.Path{VarPos: pos, Var: name}
	for p.tok.Kind == token.ARROW || p.tok.Kind == token.DOT {
		p.next()
		f, _ := p.expectIdent()
		path.Fields = append(path.Fields, f)
	}
	return path
}

func (p *parser) parseCall() *ast.CallExpr {
	name, pos := p.expectIdent()
	call := &ast.CallExpr{NamePos: pos, Name: name}
	p.expect(token.LPAREN)
	if p.tok.Kind != token.RPAREN {
		for {
			call.Args = append(call.Args, p.parseExpr())
			if p.tok.Kind != token.COMMA {
				break
			}
			p.next()
		}
	}
	p.expect(token.RPAREN)
	return call
}

// Expression parsing, precedence climbing.

func (p *parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *parser) parseOr() ast.Expr {
	x := p.parseAnd()
	for p.tok.Kind == token.OR {
		p.next()
		y := p.parseAnd()
		x = &ast.BinExpr{Op: token.OR, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAnd() ast.Expr {
	x := p.parseCmp()
	for p.tok.Kind == token.AND {
		p.next()
		y := p.parseCmp()
		x = &ast.BinExpr{Op: token.AND, X: x, Y: y}
	}
	return x
}

func (p *parser) parseCmp() ast.Expr {
	x := p.parseAdd()
	for p.tok.Kind.IsComparison() {
		op := p.tok.Kind
		p.next()
		y := p.parseAdd()
		x = &ast.BinExpr{Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAdd() ast.Expr {
	x := p.parseMul()
	for p.tok.Kind == token.PLUS || p.tok.Kind == token.MINUS {
		op := p.tok.Kind
		p.next()
		y := p.parseMul()
		x = &ast.BinExpr{Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseMul() ast.Expr {
	x := p.parseUnary()
	for p.tok.Kind == token.STAR || p.tok.Kind == token.SLASH || p.tok.Kind == token.PCT {
		op := p.tok.Kind
		p.next()
		y := p.parseUnary()
		x = &ast.BinExpr{Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.MINUS, token.NOT:
		pos := p.tok.Pos
		op := p.tok.Kind
		p.next()
		return &ast.UnExpr{OpPos: pos, Op: op, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.tok.Kind {
	case token.INT:
		var v int64
		for _, c := range p.tok.Lit {
			v = v*10 + int64(c-'0')
		}
		e := &ast.IntLit{LitPos: p.tok.Pos, Value: v}
		p.next()
		return e
	case token.KwNull:
		e := &ast.NullLit{LitPos: p.tok.Pos}
		p.next()
		return e
	case token.KwNew:
		pos := p.tok.Pos
		p.next()
		tn, _ := p.expectIdent()
		return &ast.NewExpr{NewPos: pos, TypeName: tn}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case token.IDENT:
		if p.peek().Kind == token.LPAREN {
			return p.parseCall()
		}
		return p.parsePath()
	default:
		p.errorf(p.tok.Pos, "expected expression, found %s", p.tok)
		pos := p.tok.Pos
		p.next()
		return &ast.IntLit{LitPos: pos}
	}
}
