package parser

import (
	"strings"
	"testing"

	"repro/internal/source/ast"
)

// twoWayLL is the paper's Section 3.1 declaration, verbatim modulo spelling.
const twoWayLL = `
type TwoWayLL [X] {
    int data;
    TwoWayLL *next is uniquely forward along X;
    TwoWayLL *prev is backward along X;
};
`

func TestParseTwoWayLL(t *testing.T) {
	prog := MustParse(twoWayLL)
	if len(prog.Types) != 1 {
		t.Fatalf("got %d types", len(prog.Types))
	}
	td := prog.Types[0]
	if td.Name != "TwoWayLL" {
		t.Errorf("name = %q", td.Name)
	}
	if len(td.Dims) != 1 || td.Dims[0] != "X" {
		t.Errorf("dims = %v", td.Dims)
	}
	if len(td.Fields) != 3 {
		t.Fatalf("fields = %d", len(td.Fields))
	}
	next := td.Fields[1]
	if next.Names[0] != "next" || next.Dir != ast.DirUniquelyForward || next.Dim != "X" {
		t.Errorf("next = %+v", next)
	}
	prev := td.Fields[2]
	if prev.Names[0] != "prev" || prev.Dir != ast.DirBackward {
		t.Errorf("prev = %+v", prev)
	}
}

func TestParsePBinTreeCombined(t *testing.T) {
	src := `
type PBinTree [down] {
    int data;
    PBinTree *left, *right is uniquely forward along down;
    PBinTree *parent is backward along down;
};
`
	prog := MustParse(src)
	td := prog.Types[0]
	group := td.Fields[1]
	if len(group.Names) != 2 || group.Names[0] != "left" || group.Names[1] != "right" {
		t.Fatalf("combined group = %v", group.Names)
	}
	if group.Dir != ast.DirUniquelyForward || group.Dim != "down" {
		t.Errorf("group clause = %v along %q", group.Dir, group.Dim)
	}
}

func TestParseIndependentDims(t *testing.T) {
	src := `
type TwoDRT [down] [sub] [leaves] where sub || down, sub || leaves {
    int data;
    TwoDRT *left, *right is uniquely forward along down;
    TwoDRT *subtree is uniquely forward along sub;
    TwoDRT *next is uniquely forward along leaves;
    TwoDRT *prev is backward along leaves;
};
`
	prog := MustParse(src)
	td := prog.Types[0]
	if len(td.Dims) != 3 {
		t.Fatalf("dims = %v", td.Dims)
	}
	if len(td.Indep) != 2 {
		t.Fatalf("indep = %v", td.Indep)
	}
	if td.Indep[0] != [2]string{"sub", "down"} || td.Indep[1] != [2]string{"sub", "leaves"} {
		t.Errorf("indep = %v", td.Indep)
	}
}

func TestParseCircular(t *testing.T) {
	src := `
type CirL [X] {
    int data;
    CirL *next is circular along X;
};
`
	prog := MustParse(src)
	if got := prog.Types[0].Fields[1].Dir; got != ast.DirCircular {
		t.Errorf("dir = %v", got)
	}
}

func TestParseNoClauseDefaults(t *testing.T) {
	src := `
type BinTree {
    int data;
    BinTree *left;
    BinTree *right;
};
`
	prog := MustParse(src)
	td := prog.Types[0]
	if len(td.Dims) != 0 {
		t.Errorf("dims = %v", td.Dims)
	}
	if td.Fields[1].Dir != ast.DirNone {
		t.Errorf("left dir = %v, want DirNone", td.Fields[1].Dir)
	}
}

// shiftOrigin is the paper's Section 5.1.2 loop.
const shiftOrigin = twoWayLL + `
void shift(TwoWayLL *hd) {
    TwoWayLL *p;
    p = hd->next;
    while (p != NULL) {
        p->data = p->data - hd->data;
        p = p->next;
    }
}
`

func TestParseShiftOrigin(t *testing.T) {
	prog := MustParse(shiftOrigin)
	fn := prog.FuncByName("shift")
	if fn == nil {
		t.Fatal("shift not found")
	}
	if len(fn.Params) != 1 || fn.Params[0].Name != "hd" || !fn.Params[0].Pointer {
		t.Fatalf("params = %+v", fn.Params[0])
	}
	if len(fn.Body.Vars) != 1 || fn.Body.Vars[0].Names[0] != "p" {
		t.Fatalf("vars = %+v", fn.Body.Vars)
	}
	if len(fn.Body.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(fn.Body.Stmts))
	}
	w, ok := fn.Body.Stmts[1].(*ast.WhileStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", fn.Body.Stmts[1])
	}
	body, ok := w.Body.(*ast.Block)
	if !ok || len(body.Stmts) != 2 {
		t.Fatalf("while body = %T", w.Body)
	}
	step, ok := body.Stmts[1].(*ast.AssignStmt)
	if !ok {
		t.Fatalf("step = %T", body.Stmts[1])
	}
	rhs, ok := step.RHS.(*ast.Path)
	if !ok || rhs.Var != "p" || len(rhs.Fields) != 1 || rhs.Fields[0] != "next" {
		t.Fatalf("step rhs = %s", ast.ExprString(step.RHS))
	}
}

func TestParsePaperNotEqualSpelling(t *testing.T) {
	src := twoWayLL + `
void f(TwoWayLL *p) {
    while (p <> NULL) {
        p = p->next;
    }
}
`
	prog := MustParse(src)
	fn := prog.FuncByName("f")
	w := fn.Body.Stmts[0].(*ast.WhileStmt)
	if got := ast.ExprString(w.Cond); got != "p != NULL" {
		t.Errorf("cond = %q", got)
	}
}

func TestParseNewAndNullAssign(t *testing.T) {
	src := twoWayLL + `
void g() {
    TwoWayLL *p, *q;
    p = new TwoWayLL;
    p->next = NULL;
    q = p;
    q->data = 5;
}
`
	prog := MustParse(src)
	fn := prog.FuncByName("g")
	if len(fn.Body.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(fn.Body.Stmts))
	}
	alloc := fn.Body.Stmts[0].(*ast.AssignStmt)
	if _, ok := alloc.RHS.(*ast.NewExpr); !ok {
		t.Errorf("rhs = %T", alloc.RHS)
	}
	store := fn.Body.Stmts[1].(*ast.AssignStmt)
	if store.LHS.Var != "p" || store.LHS.Fields[0] != "next" {
		t.Errorf("lhs = %v", store.LHS)
	}
	if _, ok := store.RHS.(*ast.NullLit); !ok {
		t.Errorf("rhs = %T", store.RHS)
	}
}

func TestParseIfElseAndCalls(t *testing.T) {
	src := `
void h(int n) {
    int x;
    if (n > 0 && n < 10) {
        x = n * 2;
    } else {
        x = helper(n, 3) + 1;
    }
    emit(x);
    return;
}
`
	prog := MustParse(src)
	fn := prog.FuncByName("h")
	ifs, ok := fn.Body.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 0 = %T", fn.Body.Stmts[0])
	}
	if ifs.Else == nil {
		t.Error("else missing")
	}
	if _, ok := fn.Body.Stmts[1].(*ast.CallStmt); !ok {
		t.Errorf("stmt 1 = %T", fn.Body.Stmts[1])
	}
	if _, ok := fn.Body.Stmts[2].(*ast.ReturnStmt); !ok {
		t.Errorf("stmt 2 = %T", fn.Body.Stmts[2])
	}
}

func TestPrecedence(t *testing.T) {
	src := `void f() { int x; x = 1 + 2 * 3; }`
	prog := MustParse(src)
	assign := prog.Funcs[0].Body.Stmts[0].(*ast.AssignStmt)
	bin := assign.RHS.(*ast.BinExpr)
	if got := ast.ExprString(bin.Y); got != "2 * 3" {
		t.Errorf("rhs of + = %q", got)
	}
}

func TestFreeStmt(t *testing.T) {
	src := twoWayLL + `void f(TwoWayLL *p) { free(p); }`
	prog := MustParse(src)
	if _, ok := prog.Funcs[0].Body.Stmts[0].(*ast.FreeStmt); !ok {
		t.Fatalf("stmt = %T", prog.Funcs[0].Body.Stmts[0])
	}
}

func TestErrorRecovery(t *testing.T) {
	src := `
void f() {
    int x;
    x = ;
    x = 2;
}
`
	prog, err := Parse([]byte(src))
	if err == nil {
		t.Fatal("want syntax error")
	}
	if prog == nil || len(prog.Funcs) != 1 {
		t.Fatal("want partial program despite errors")
	}
}

func TestRoundTripPrint(t *testing.T) {
	// Print then reparse; the second print must be identical (fixpoint).
	prog1 := MustParse(shiftOrigin)
	text1 := ast.Print(prog1)
	prog2, err := Parse([]byte(text1))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	text2 := ast.Print(prog2)
	if text1 != text2 {
		t.Errorf("print not stable:\n--- first\n%s\n--- second\n%s", text1, text2)
	}
	if !strings.Contains(text1, "is uniquely forward along X") {
		t.Errorf("ADDS clause lost:\n%s", text1)
	}
}

func TestWalkStmtsVisitsNested(t *testing.T) {
	prog := MustParse(shiftOrigin)
	fn := prog.FuncByName("shift")
	var count int
	ast.WalkStmts(fn.Body, func(ast.Stmt) bool { count++; return true })
	// p=hd->next; while; block; p->data=..; p=p->next
	if count != 5 {
		t.Errorf("visited %d statements, want 5", count)
	}
}

func TestWalkExprs(t *testing.T) {
	prog := MustParse(`void f() { int x; x = 1 + g(2, 3); }`)
	var paths, lits int
	for _, s := range prog.Funcs[0].Body.Stmts {
		ast.WalkExprs(s, func(e ast.Expr) {
			switch e.(type) {
			case *ast.Path:
				paths++
			case *ast.IntLit:
				lits++
			}
		})
	}
	if paths != 1 || lits != 3 {
		t.Errorf("paths=%d lits=%d", paths, lits)
	}
}

func TestForLoopDesugar(t *testing.T) {
	src := twoWayLL + `
void f(TwoWayLL *hd) {
    TwoWayLL *p;
    for (p = hd; p != NULL; p = p->next) {
        p->data = 0;
    }
}
`
	prog := MustParse(src)
	fn := prog.FuncByName("f")
	blk, ok := fn.Body.Stmts[0].(*ast.Block)
	if !ok || len(blk.Stmts) != 2 {
		t.Fatalf("for not desugared to {init; while}: %T", fn.Body.Stmts[0])
	}
	if _, ok := blk.Stmts[0].(*ast.AssignStmt); !ok {
		t.Errorf("init = %T", blk.Stmts[0])
	}
	w, ok := blk.Stmts[1].(*ast.WhileStmt)
	if !ok {
		t.Fatalf("loop = %T", blk.Stmts[1])
	}
	if got := ast.ExprString(w.Cond); got != "p != NULL" {
		t.Errorf("cond = %q", got)
	}
	inner := w.Body.(*ast.Block)
	if len(inner.Stmts) != 2 {
		t.Fatalf("while body should be {body; post}, got %d stmts", len(inner.Stmts))
	}
	post := inner.Stmts[1].(*ast.AssignStmt)
	if got := ast.ExprString(post.RHS); got != "p->next" {
		t.Errorf("post = %q", got)
	}
}

func TestForLoopEmptyClauses(t *testing.T) {
	src := `
void f(int n) {
    int i;
    i = 0;
    for (; i < n;) {
        i = i + 1;
    }
}
`
	prog := MustParse(src)
	fn := prog.FuncByName("f")
	if _, ok := fn.Body.Stmts[1].(*ast.WhileStmt); !ok {
		t.Fatalf("for without init should be a bare while, got %T", fn.Body.Stmts[1])
	}
}

func TestForLoopInfiniteCondition(t *testing.T) {
	prog := MustParse(`void f() { int i; for (i = 0; ; i = i + 1) { return; } }`)
	fn := prog.FuncByName("f")
	blk := fn.Body.Stmts[0].(*ast.Block)
	w := blk.Stmts[1].(*ast.WhileStmt)
	lit, ok := w.Cond.(*ast.IntLit)
	if !ok || lit.Value != 1 {
		t.Errorf("empty condition should be literal 1, got %s", ast.ExprString(w.Cond))
	}
}
