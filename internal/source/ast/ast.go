// Package ast defines the abstract syntax tree of the mini language.
//
// The tree mirrors the paper's code fragments: C-like record declarations
// extended with ADDS dimension/direction clauses, plus a small statement and
// expression language sufficient for the pointer-manipulating programs the
// paper analyses.
package ast

import "repro/internal/source/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Declarations

// Program is a parsed compilation unit.
type Program struct {
	Types []*TypeDecl
	Funcs []*FuncDecl
}

// TypeByName returns the declared type with the given name, or nil.
func (p *Program) TypeByName(name string) *TypeDecl {
	for _, t := range p.Types {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// FuncByName returns the declared function with the given name, or nil.
func (p *Program) FuncByName(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Direction is an ADDS traversal direction for a recursive pointer field.
type Direction int

// Directions, in increasing order of knowledge. DirNone marks a field with
// no ADDS clause at all (equivalent to DirUnknown along the default
// dimension, per Section 3.3 of the paper).
const (
	DirNone Direction = iota
	DirUnknown
	DirCircular
	DirBackward
	DirForward
	DirUniquelyForward
)

// String returns the ADDS source spelling of the direction.
func (d Direction) String() string {
	switch d {
	case DirNone:
		return "none"
	case DirUnknown:
		return "unknown"
	case DirCircular:
		return "circular"
	case DirBackward:
		return "backward"
	case DirForward:
		return "forward"
	case DirUniquelyForward:
		return "uniquely forward"
	}
	return "?"
}

// TypeDecl is a record type declaration with optional ADDS annotations:
//
//	type LOLS [X] [Y] where X || Y {
//	    int data;
//	    LOLS *across is uniquely forward along X;
//	    ...
//	};
type TypeDecl struct {
	NamePos token.Pos
	Name    string
	Dims    []string    // declared dimensions, in order; empty means default
	Indep   [][2]string // pairs declared independent via "where A || B"
	Fields  []*FieldDecl
}

func (d *TypeDecl) Pos() token.Pos { return d.NamePos }

// FieldDecl declares one or more fields. A pointer field group declared
// together ("PBinTree *left, *right is uniquely forward along down;")
// shares a single FieldDecl, which is how ADDS expresses combined
// uniquely-forward traversal (Defs 4.7-4.8).
type FieldDecl struct {
	FieldPos token.Pos
	TypeName string   // "int" or a record type name
	Pointer  bool     // true for recursive pointer fields
	Names    []string // one or more field names
	Dir      Direction
	Dim      string // dimension name; empty if no clause
}

func (d *FieldDecl) Pos() token.Pos { return d.FieldPos }

// Param is a function parameter.
type Param struct {
	NamePos  token.Pos
	TypeName string // "int" or record type name
	Pointer  bool
	Name     string
}

func (p *Param) Pos() token.Pos { return p.NamePos }

// FuncDecl is a function definition. Mini functions return nothing or int;
// the analyses only care about their bodies.
type FuncDecl struct {
	NamePos token.Pos
	Name    string
	Params  []*Param
	RetInt  bool // true if declared "int f(...)", false for void/func
	Body    *Block
}

func (d *FuncDecl) Pos() token.Pos { return d.NamePos }

// VarDecl is a local variable declaration inside a block.
type VarDecl struct {
	DeclPos  token.Pos
	TypeName string
	Pointer  bool
	Names    []string
}

func (d *VarDecl) Pos() token.Pos { return d.DeclPos }

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a braced sequence of declarations and statements.
type Block struct {
	Lbrace token.Pos
	Vars   []*VarDecl
	Stmts  []Stmt
}

func (s *Block) Pos() token.Pos { return s.Lbrace }
func (s *Block) stmtNode()      {}

// AssignStmt is "lvalue = expr;". The left side is a variable or a field
// path (p, p->f, p->f->g, ...).
type AssignStmt struct {
	LHS *Path
	RHS Expr
}

func (s *AssignStmt) Pos() token.Pos { return s.LHS.Pos() }
func (s *AssignStmt) stmtNode()      {}

// WhileStmt is "while (cond) body".
type WhileStmt struct {
	WhilePos token.Pos
	Cond     Expr
	Body     Stmt
}

func (s *WhileStmt) Pos() token.Pos { return s.WhilePos }
func (s *WhileStmt) stmtNode()      {}

// IfStmt is "if (cond) then [else els]".
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

func (s *IfStmt) Pos() token.Pos { return s.IfPos }
func (s *IfStmt) stmtNode()      {}

// ReturnStmt is "return [expr];".
type ReturnStmt struct {
	RetPos token.Pos
	Value  Expr // may be nil
}

func (s *ReturnStmt) Pos() token.Pos { return s.RetPos }
func (s *ReturnStmt) stmtNode()      {}

// CallStmt is a call used as a statement: "f(a, b);".
type CallStmt struct {
	Call *CallExpr
}

func (s *CallStmt) Pos() token.Pos { return s.Call.Pos() }
func (s *CallStmt) stmtNode()      {}

// FreeStmt is "free(p);" — it releases the node p points to.
type FreeStmt struct {
	FreePos token.Pos
	Target  *Path
}

func (s *FreeStmt) Pos() token.Pos { return s.FreePos }
func (s *FreeStmt) stmtNode()      {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Path is a variable optionally followed by field dereferences:
// p, p->next, p->next->data. It appears both as an lvalue and an rvalue.
type Path struct {
	VarPos token.Pos
	Var    string
	Fields []string // dereference chain, outermost first
}

func (e *Path) Pos() token.Pos { return e.VarPos }
func (e *Path) exprNode()      {}

// IsVar reports whether the path is a bare variable.
func (e *Path) IsVar() bool { return len(e.Fields) == 0 }

// IntLit is an integer literal.
type IntLit struct {
	LitPos token.Pos
	Value  int64
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *IntLit) exprNode()      {}

// NullLit is the NULL pointer literal.
type NullLit struct {
	LitPos token.Pos
}

func (e *NullLit) Pos() token.Pos { return e.LitPos }
func (e *NullLit) exprNode()      {}

// NewExpr is "new T": allocation of a fresh node of record type T.
type NewExpr struct {
	NewPos   token.Pos
	TypeName string
}

func (e *NewExpr) Pos() token.Pos { return e.NewPos }
func (e *NewExpr) exprNode()      {}

// BinExpr is a binary operation. Op is one of the arithmetic, relational or
// logical token kinds.
type BinExpr struct {
	Op   token.Kind
	X, Y Expr
}

func (e *BinExpr) Pos() token.Pos { return e.X.Pos() }
func (e *BinExpr) exprNode()      {}

// UnExpr is unary minus or logical not.
type UnExpr struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

func (e *UnExpr) Pos() token.Pos { return e.OpPos }
func (e *UnExpr) exprNode()      {}

// CallExpr is a function call.
type CallExpr struct {
	NamePos token.Pos
	Name    string
	Args    []Expr
}

func (e *CallExpr) Pos() token.Pos { return e.NamePos }
func (e *CallExpr) exprNode()      {}
