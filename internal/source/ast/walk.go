package ast

// WalkStmts calls fn for every statement in the block, recursing into nested
// blocks, while bodies and if arms, in source order. If fn returns false the
// walk stops.
func WalkStmts(blk *Block, fn func(Stmt) bool) bool {
	for _, s := range blk.Stmts {
		if !walkStmt(s, fn) {
			return false
		}
	}
	return true
}

func walkStmt(s Stmt, fn func(Stmt) bool) bool {
	if !fn(s) {
		return false
	}
	switch s := s.(type) {
	case *Block:
		return WalkStmts(s, fn)
	case *WhileStmt:
		return walkStmt(s.Body, fn)
	case *IfStmt:
		if !walkStmt(s.Then, fn) {
			return false
		}
		if s.Else != nil {
			return walkStmt(s.Else, fn)
		}
	}
	return true
}

// WalkExprs calls fn for every expression contained in the statement,
// including nested subexpressions, in source order.
func WalkExprs(s Stmt, fn func(Expr)) {
	switch s := s.(type) {
	case *Block:
		for _, inner := range s.Stmts {
			WalkExprs(inner, fn)
		}
	case *AssignStmt:
		walkExpr(s.LHS, fn)
		walkExpr(s.RHS, fn)
	case *WhileStmt:
		walkExpr(s.Cond, fn)
		WalkExprs(s.Body, fn)
	case *IfStmt:
		walkExpr(s.Cond, fn)
		WalkExprs(s.Then, fn)
		if s.Else != nil {
			WalkExprs(s.Else, fn)
		}
	case *ReturnStmt:
		if s.Value != nil {
			walkExpr(s.Value, fn)
		}
	case *CallStmt:
		walkExpr(s.Call, fn)
	case *FreeStmt:
		walkExpr(s.Target, fn)
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *BinExpr:
		walkExpr(e.X, fn)
		walkExpr(e.Y, fn)
	case *UnExpr:
		walkExpr(e.X, fn)
	case *CallExpr:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	}
}
