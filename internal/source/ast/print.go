package ast

import (
	"fmt"
	"strings"

	"repro/internal/source/token"
)

// Print renders a program back to mini source. The output parses to an
// equivalent tree (modulo positions), which the parser tests rely on.
func Print(p *Program) string {
	var b strings.Builder
	for i, t := range p.Types {
		if i > 0 {
			b.WriteByte('\n')
		}
		printTypeDecl(&b, t)
	}
	for _, f := range p.Funcs {
		b.WriteByte('\n')
		printFuncDecl(&b, f)
	}
	return b.String()
}

func printTypeDecl(b *strings.Builder, t *TypeDecl) {
	fmt.Fprintf(b, "type %s", t.Name)
	for _, d := range t.Dims {
		fmt.Fprintf(b, " [%s]", d)
	}
	if len(t.Indep) > 0 {
		b.WriteString(" where ")
		for i, pr := range t.Indep {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s || %s", pr[0], pr[1])
		}
	}
	b.WriteString(" {\n")
	for _, f := range t.Fields {
		b.WriteString("    ")
		if f.Pointer {
			fmt.Fprintf(b, "%s ", f.TypeName)
			for i, n := range f.Names {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(b, "*%s", n)
			}
			if f.Dir != DirNone {
				fmt.Fprintf(b, " is %s along %s", f.Dir, f.Dim)
			}
		} else {
			fmt.Fprintf(b, "%s %s", f.TypeName, strings.Join(f.Names, ", "))
		}
		b.WriteString(";\n")
	}
	b.WriteString("};\n")
}

// FuncString renders one function declaration to mini source. The output is
// canonical for a given tree (modulo positions), which the engine's
// content-addressed summary cache keys on.
func FuncString(f *FuncDecl) string {
	var b strings.Builder
	printFuncDecl(&b, f)
	return b.String()
}

func printFuncDecl(b *strings.Builder, f *FuncDecl) {
	ret := "void"
	if f.RetInt {
		ret = "int"
	}
	fmt.Fprintf(b, "%s %s(", ret, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.Pointer {
			fmt.Fprintf(b, "%s *%s", p.TypeName, p.Name)
		} else {
			fmt.Fprintf(b, "%s %s", p.TypeName, p.Name)
		}
	}
	b.WriteString(") ")
	printBlock(b, f.Body, 0)
	b.WriteByte('\n')
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func printBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, v := range blk.Vars {
		indent(b, depth+1)
		if v.Pointer {
			fmt.Fprintf(b, "%s ", v.TypeName)
			for i, n := range v.Names {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(b, "*%s", n)
			}
		} else {
			fmt.Fprintf(b, "%s %s", v.TypeName, strings.Join(v.Names, ", "))
		}
		b.WriteString(";\n")
	}
	for _, s := range blk.Stmts {
		printStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *Block:
		indent(b, depth)
		printBlock(b, s, depth)
		b.WriteByte('\n')
	case *AssignStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s = %s;\n", ExprString(s.LHS), ExprString(s.RHS))
	case *WhileStmt:
		indent(b, depth)
		fmt.Fprintf(b, "while (%s) ", ExprString(s.Cond))
		printNestedStmt(b, s.Body, depth)
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "if (%s) ", ExprString(s.Cond))
		printNestedStmt(b, s.Then, depth)
		if s.Else != nil {
			indent(b, depth)
			b.WriteString("else ")
			printNestedStmt(b, s.Else, depth)
		}
	case *ReturnStmt:
		indent(b, depth)
		if s.Value != nil {
			fmt.Fprintf(b, "return %s;\n", ExprString(s.Value))
		} else {
			b.WriteString("return;\n")
		}
	case *CallStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s;\n", ExprString(s.Call))
	case *FreeStmt:
		indent(b, depth)
		fmt.Fprintf(b, "free(%s);\n", ExprString(s.Target))
	default:
		indent(b, depth)
		fmt.Fprintf(b, "/* unknown stmt %T */\n", s)
	}
}

// printNestedStmt prints the body of a while/if. Blocks stay on the same
// line; other statements go on the next line, indented.
func printNestedStmt(b *strings.Builder, s Stmt, depth int) {
	if blk, ok := s.(*Block); ok {
		printBlock(b, blk, depth)
		b.WriteByte('\n')
		return
	}
	b.WriteByte('\n')
	printStmt(b, s, depth+1)
}

// ExprString renders an expression to source form.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *Path:
		parts := append([]string{e.Var}, e.Fields...)
		return strings.Join(parts, "->")
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *NullLit:
		return "NULL"
	case *NewExpr:
		return "new " + e.TypeName
	case *BinExpr:
		return fmt.Sprintf("%s %s %s", parenIfBin(e.X), e.Op, parenIfBin(e.Y))
	case *UnExpr:
		if e.Op == token.NOT {
			return "!" + parenIfBin(e.X)
		}
		return "-" + parenIfBin(e.X)
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	case nil:
		return "<nil>"
	}
	return fmt.Sprintf("<%T>", e)
}

func parenIfBin(e Expr) string {
	if _, ok := e.(*BinExpr); ok {
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}
