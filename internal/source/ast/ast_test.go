package ast

import (
	"strings"
	"testing"

	"repro/internal/source/token"
)

func pos(line int) token.Pos { return token.Pos{Line: line, Column: 1} }

func TestExprStringForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&IntLit{Value: 42}, "42"},
		{&NullLit{}, "NULL"},
		{&NewExpr{TypeName: "List"}, "new List"},
		{&Path{Var: "p"}, "p"},
		{&Path{Var: "p", Fields: []string{"next", "data"}}, "p->next->data"},
		{&UnExpr{Op: token.NOT, X: &Path{Var: "p"}}, "!p"},
		{&UnExpr{Op: token.MINUS, X: &IntLit{Value: 3}}, "-3"},
		{&BinExpr{Op: token.PLUS, X: &IntLit{Value: 1}, Y: &IntLit{Value: 2}}, "1 + 2"},
		{&BinExpr{Op: token.STAR,
			X: &BinExpr{Op: token.PLUS, X: &IntLit{Value: 1}, Y: &IntLit{Value: 2}},
			Y: &IntLit{Value: 3}}, "(1 + 2) * 3"},
		{&CallExpr{Name: "f", Args: []Expr{&IntLit{Value: 1}, &Path{Var: "p"}}}, "f(1, p)"},
		{nil, "<nil>"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString(%T) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestDirectionStrings(t *testing.T) {
	want := map[Direction]string{
		DirNone:            "none",
		DirUnknown:         "unknown",
		DirCircular:        "circular",
		DirBackward:        "backward",
		DirForward:         "forward",
		DirUniquelyForward: "uniquely forward",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), s)
		}
	}
}

func TestProgramLookups(t *testing.T) {
	p := &Program{
		Types: []*TypeDecl{{Name: "A"}, {Name: "B"}},
		Funcs: []*FuncDecl{{Name: "f"}, {Name: "g"}},
	}
	if p.TypeByName("B") == nil || p.TypeByName("C") != nil {
		t.Error("TypeByName wrong")
	}
	if p.FuncByName("g") == nil || p.FuncByName("h") != nil {
		t.Error("FuncByName wrong")
	}
}

func TestPrintAllStatementForms(t *testing.T) {
	body := &Block{Stmts: []Stmt{
		&AssignStmt{LHS: &Path{Var: "p"}, RHS: &NullLit{}},
		&WhileStmt{WhilePos: pos(2), Cond: &IntLit{Value: 1},
			Body: &AssignStmt{LHS: &Path{Var: "x"}, RHS: &IntLit{Value: 1}}},
		&IfStmt{IfPos: pos(3), Cond: &IntLit{Value: 1},
			Then: &Block{Stmts: []Stmt{&ReturnStmt{}}},
			Else: &ReturnStmt{Value: &IntLit{Value: 2}}},
		&CallStmt{Call: &CallExpr{Name: "g"}},
		&FreeStmt{Target: &Path{Var: "p"}},
	}}
	prog := &Program{
		Types: []*TypeDecl{{
			Name: "T", Dims: []string{"X", "Y"}, Indep: [][2]string{{"X", "Y"}},
			Fields: []*FieldDecl{
				{TypeName: "int", Names: []string{"a", "b"}},
				{TypeName: "T", Pointer: true, Names: []string{"f", "g"},
					Dir: DirUniquelyForward, Dim: "X"},
			},
		}},
		Funcs: []*FuncDecl{{
			Name:   "m",
			RetInt: true,
			Params: []*Param{
				{TypeName: "int", Name: "n"},
				{TypeName: "T", Pointer: true, Name: "p"},
			},
			Body: body,
		}},
	}
	out := Print(prog)
	for _, frag := range []string{
		"type T [X] [Y] where X || Y {",
		"int a, b;",
		"T *f, *g is uniquely forward along X;",
		"int m(int n, T *p)",
		"p = NULL;",
		"while (1)",
		"if (1)",
		"else",
		"return 2;",
		"g();",
		"free(p);",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Print missing %q:\n%s", frag, out)
		}
	}
}

func TestWalkStmtsEarlyStop(t *testing.T) {
	blk := &Block{Stmts: []Stmt{
		&ReturnStmt{},
		&ReturnStmt{},
		&ReturnStmt{},
	}}
	count := 0
	WalkStmts(blk, func(Stmt) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("visited %d, want early stop at 2", count)
	}
}

func TestWalkExprsCoversAllStatements(t *testing.T) {
	stmts := []Stmt{
		&AssignStmt{LHS: &Path{Var: "p"}, RHS: &IntLit{Value: 1}},
		&WhileStmt{Cond: &IntLit{Value: 2}, Body: &Block{}},
		&IfStmt{Cond: &IntLit{Value: 3}, Then: &Block{},
			Else: &Block{Stmts: []Stmt{&ReturnStmt{Value: &IntLit{Value: 4}}}}},
		&CallStmt{Call: &CallExpr{Name: "f", Args: []Expr{&IntLit{Value: 5}}}},
		&FreeStmt{Target: &Path{Var: "q"}},
	}
	var lits, paths int
	for _, s := range stmts {
		WalkExprs(s, func(e Expr) {
			switch e.(type) {
			case *IntLit:
				lits++
			case *Path:
				paths++
			}
		})
	}
	if lits != 5 {
		t.Errorf("lits = %d, want 5", lits)
	}
	if paths != 2 {
		t.Errorf("paths = %d, want 2", paths)
	}
}

func TestPathIsVar(t *testing.T) {
	if !(&Path{Var: "p"}).IsVar() {
		t.Error("bare var")
	}
	if (&Path{Var: "p", Fields: []string{"f"}}).IsVar() {
		t.Error("field path")
	}
}
