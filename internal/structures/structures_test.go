package structures

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interp"
)

func TestDeclsWellFormed(t *testing.T) {
	env := Env()
	for _, name := range Names() {
		if env.Type(name) == nil {
			t.Errorf("declaration %s missing", name)
		}
	}
}

func TestTwoWayListBasics(t *testing.T) {
	h := interp.NewHeap()
	hd := TwoWayList(h, []int64{1, 2, 3}, 5)
	if got := ListValues(hd); len(got) != 5 || got[0] != 1 || got[3] != 1 {
		t.Errorf("values = %v", got)
	}
	if ListLen(hd) != 5 {
		t.Errorf("len = %d", ListLen(hd))
	}
	if TwoWayList(h, nil, 0) != nil {
		t.Error("empty list should be nil")
	}
	if vs := interp.Check(Env(), hd); len(vs) != 0 {
		t.Fatalf("invalid list: %v", vs[0])
	}
}

func TestBinTreeInOrderSorted(t *testing.T) {
	h := interp.NewHeap()
	root := BinTree(h, []int64{5, 2, 8, 1, 9, 3, 7})
	got := InOrder(root)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("in-order not sorted: %v", got)
		}
	}
	if TreeSize(root) != 7 {
		t.Errorf("size = %d", TreeSize(root))
	}
	if vs := interp.Check(Env(), root); len(vs) != 0 {
		t.Fatalf("invalid tree: %v", vs[0])
	}
}

func TestPerfectTree(t *testing.T) {
	h := interp.NewHeap()
	root := PerfectTree(h, 4)
	if TreeSize(root) != 15 {
		t.Errorf("size = %d", TreeSize(root))
	}
	if vs := interp.Check(Env(), root); len(vs) != 0 {
		t.Fatalf("invalid: %v", vs[0])
	}
	if PerfectTree(h, 0) != nil {
		t.Error("depth 0 should be nil")
	}
}

func TestOrthogonalSums(t *testing.T) {
	h := interp.NewHeap()
	dense := [][]int64{
		{1, 0, 2},
		{0, 0, 3},
		{4, 5, 0},
	}
	m := Orthogonal(h, dense)
	if m.RowSum(0) != 3 || m.RowSum(1) != 3 || m.RowSum(2) != 9 {
		t.Errorf("row sums: %d %d %d", m.RowSum(0), m.RowSum(1), m.RowSum(2))
	}
	if m.ColSum(0) != 5 || m.ColSum(1) != 5 || m.ColSum(2) != 5 {
		t.Errorf("col sums: %d %d %d", m.ColSum(0), m.ColSum(1), m.ColSum(2))
	}
	var roots []*interp.Node
	for _, n := range append(append([]*interp.Node{}, m.RowHead...), m.ColHead...) {
		if n != nil {
			roots = append(roots, n)
		}
	}
	if vs := interp.Check(Env(), roots...); len(vs) != 0 {
		t.Fatalf("invalid orthogonal list: %v", vs[0])
	}
}

func TestListOfListsValid(t *testing.T) {
	h := interp.NewHeap()
	m := ListOfLists(h, 4, 6)
	if vs := interp.Check(Env(), m); len(vs) != 0 {
		t.Fatalf("invalid LOLS: %v", vs[0])
	}
	// Every node reachable exactly once via down* then across*.
	count := 0
	for row := m; row != nil; row = row.Ptrs["down"] {
		for n := row; n != nil; n = n.Ptrs["across"] {
			count++
		}
	}
	if count != 24 {
		t.Errorf("visited %d nodes, want 24", count)
	}
}

func TestRangeTreeQuery(t *testing.T) {
	h := interp.NewHeap()
	pts := []Point{{5, 50}, {1, 10}, {9, 90}, {3, 30}, {7, 70}}
	root := RangeTree(h, pts)
	if vs := interp.Check(Env(), root); len(vs) != 0 {
		t.Fatalf("invalid range tree: %v", vs[0])
	}
	got := RangeQuery1D(root, 3, 7)
	want := []int64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("query = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query = %v, want %v", got, want)
		}
	}
	if RangeTree(h, nil) != nil {
		t.Error("empty range tree should be nil")
	}
}

func TestCircularRing(t *testing.T) {
	h := interp.NewHeap()
	c := Circular(h, 6)
	if RingLen(c) != 6 {
		t.Errorf("ring len = %d", RingLen(c))
	}
	if vs := interp.Check(Env(), c); len(vs) != 0 {
		t.Fatalf("circular list flagged: %v", vs[0])
	}
	if Circular(h, 0) != nil || RingLen(nil) != 0 {
		t.Error("empty ring handling")
	}
}

// TestPropertyAllStructuresValid is the E2 property: every randomly
// generated instance of every example structure satisfies its ADDS
// declaration's dynamic checks (Defs 4.2-4.9).
func TestPropertyAllStructuresValid(t *testing.T) {
	env := Env()
	for _, name := range Names() {
		name := name
		f := func(seed int64, sz uint8) bool {
			h := interp.NewHeap()
			rng := rand.New(rand.NewSource(seed))
			roots, err := Random(h, rng, name, int(sz%64)+1)
			if err != nil {
				return false
			}
			return len(interp.Check(env, roots...)) == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestPropertyListMutationPreservesValidity: random well-behaved splices of
// a two-way list (the operations the paper's validation pass certifies)
// keep the declaration valid.
func TestPropertyListMutationPreservesValidity(t *testing.T) {
	env := Env()
	f := func(seed int64, n uint8, ops uint8) bool {
		h := interp.NewHeap()
		rng := rand.New(rand.NewSource(seed))
		hd := TwoWayList(h, nil, int(n%20)+2)
		for i := 0; i < int(ops%10); i++ {
			// Remove a random interior node, repairing both directions —
			// the well-behaved idiom.
			k := rng.Intn(ListLen(hd))
			node := hd
			for j := 0; j < k; j++ {
				node = node.Ptrs["next"]
			}
			prev, next := node.Ptrs["prev"], node.Ptrs["next"]
			if prev == nil || next == nil {
				continue // keep head/tail for simplicity
			}
			prev.Ptrs["next"] = next
			next.Ptrs["prev"] = prev
			node.Ptrs["next"], node.Ptrs["prev"] = nil, nil
		}
		return len(interp.Check(env, hd)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBrokenListDetected: breaking a list (shared node) is always
// detected by the dynamic checker.
func TestPropertyBrokenListDetected(t *testing.T) {
	env := Env()
	f := func(seed int64, n uint8) bool {
		size := int(n%16) + 3
		h := interp.NewHeap()
		rng := rand.New(rand.NewSource(seed))
		hd := TwoWayList(h, nil, size)
		// Point a random node's next at another random non-successor node.
		i := rng.Intn(size - 2)
		j := i + 2 + rng.Intn(size-i-2)
		a, b := hd, hd
		for k := 0; k < i; k++ {
			a = a.Ptrs["next"]
		}
		for k := 0; k < j; k++ {
			b = b.Ptrs["next"]
		}
		a.Ptrs["next"] = b // b now has two next-predecessors (or a skip)
		return len(interp.Check(env, hd)) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomUnknownName(t *testing.T) {
	h := interp.NewHeap()
	if _, err := Random(h, rand.New(rand.NewSource(1)), "Nope", 3); err == nil {
		t.Error("unknown structure must error")
	}
}

func TestRangeTreeLeafOrder(t *testing.T) {
	h := interp.NewHeap()
	pts := []Point{{4, 1}, {2, 2}, {8, 3}, {6, 4}, {1, 5}, {3, 6}, {9, 7}}
	root := RangeTree(h, pts)
	// Descend to leftmost leaf; leaf chain must be X-sorted.
	cur := root
	for cur.Ptrs["left"] != nil {
		cur = cur.Ptrs["left"]
	}
	var xs []int64
	for n := cur; n != nil; n = n.Ptrs["next"] {
		xs = append(xs, n.Ints["data"])
	}
	if len(xs) != len(pts) {
		t.Fatalf("leaf chain covers %d of %d points", len(xs), len(pts))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("leaves not sorted: %v", xs)
		}
	}
}
